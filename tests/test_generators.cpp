#include "matrix/generators.hpp"

#include <gtest/gtest.h>

#include "matrix/stats.hpp"

namespace acs {
namespace {

TEST(Generators, UniformRandomShapeAndValidity) {
  const auto m = gen_uniform_random<double>(500, 400, 8.0, 3.0, 123);
  EXPECT_EQ(m.validate(), "");
  EXPECT_EQ(m.rows, 500);
  EXPECT_EQ(m.cols, 400);
  const auto s = row_stats(m);
  EXPECT_NEAR(s.avg_len, 8.0, 1.0);
  EXPECT_LE(s.max_len, 12);
}

TEST(Generators, UniformRandomIsDeterministic) {
  const auto a = gen_uniform_random<double>(100, 100, 5.0, 2.0, 7);
  const auto b = gen_uniform_random<double>(100, 100, 5.0, 2.0, 7);
  EXPECT_TRUE(a.equals_exact(b));
}

TEST(Generators, DifferentSeedsDiffer) {
  const auto a = gen_uniform_random<double>(100, 100, 5.0, 2.0, 7);
  const auto b = gen_uniform_random<double>(100, 100, 5.0, 2.0, 8);
  EXPECT_FALSE(a.equals_exact(b));
}

TEST(Generators, PowerlawHitsTargetAverage) {
  const auto m = gen_powerlaw<double>(2000, 2000, 6.0, 1.8, 500, 99);
  EXPECT_EQ(m.validate(), "");
  const auto s = row_stats(m);
  EXPECT_NEAR(s.avg_len, 6.0, 1.5);
  EXPECT_GT(s.max_len, 5 * s.avg_len);  // heavy tail present
}

TEST(Generators, BandedStructure) {
  const auto m = gen_banded<double>(100, 3, 1);
  EXPECT_EQ(m.validate(), "");
  const auto s = row_stats(m);
  EXPECT_EQ(s.max_len, 7);
  EXPECT_EQ(s.min_len, 4);  // boundary rows
  // Diagonal dominance by construction.
  for (index_t r = 0; r < m.rows; ++r) {
    for (index_t k = m.row_ptr[usize(r)]; k < m.row_ptr[usize(r) + 1]; ++k) {
      if (m.col_idx[usize(k)] == r) {
        EXPECT_GT(m.values[usize(k)], 1.0);
      }
    }
  }
}

TEST(Generators, Stencil2dRowLengths) {
  const auto m = gen_stencil_2d<double>(10, 10, 1);
  EXPECT_EQ(m.validate(), "");
  EXPECT_EQ(m.rows, 100);
  const auto s = row_stats(m);
  EXPECT_EQ(s.min_len, 3);  // corner
  EXPECT_EQ(s.max_len, 5);  // interior
}

TEST(Generators, Stencil3dRowLengths) {
  const auto m = gen_stencil_3d<double>(6, 6, 6, 1);
  EXPECT_EQ(m.validate(), "");
  EXPECT_EQ(m.rows, 216);
  const auto s = row_stats(m);
  EXPECT_EQ(s.min_len, 4);  // corner
  EXPECT_EQ(s.max_len, 7);  // interior
}

TEST(Generators, RmatHeavyTail) {
  const auto m = gen_rmat<double>(10, 8.0, 0.57, 0.19, 0.19, 5);
  EXPECT_EQ(m.validate(), "");
  EXPECT_EQ(m.rows, 1024);
  const auto s = row_stats(m);
  EXPECT_GT(s.max_len, 4 * s.avg_len);
}

TEST(Generators, BlockDenseRows) {
  const auto m = gen_block_dense<double>(50, 300, 32, 2, 3);
  EXPECT_EQ(m.validate(), "");
  const auto s = row_stats(m);
  EXPECT_GE(s.max_len, 32);
  EXPECT_LE(s.max_len, 64);
}

TEST(Generators, InjectLongRows) {
  const auto base = gen_uniform_random<double>(300, 1000, 4.0, 1.0, 21);
  const auto m = inject_long_rows(base, 3, 600, 22);
  EXPECT_EQ(m.validate(), "");
  const auto s = row_stats(m);
  EXPECT_EQ(s.max_len, 600);
  index_t long_rows = 0;
  for (index_t r = 0; r < m.rows; ++r)
    if (m.row_length(r) == 600) ++long_rows;
  EXPECT_EQ(long_rows, 3);
}

TEST(Generators, UniformLocalRespectsWindow) {
  const auto m = gen_uniform_local<double>(1000, 1000, 6.0, 2.0, 64, 44);
  EXPECT_EQ(m.validate(), "");
  for (index_t r = 0; r < m.rows; ++r) {
    const index_t begin = m.row_ptr[usize(r)], end = m.row_ptr[usize(r) + 1];
    if (begin == end) continue;
    EXPECT_LE(m.col_idx[usize(end) - 1] - m.col_idx[usize(begin)], 64)
        << "row " << r;
  }
}

TEST(Generators, UniformLocalIsDeterministic) {
  const auto a = gen_uniform_local<double>(200, 200, 5.0, 1.0, 32, 45);
  const auto b = gen_uniform_local<double>(200, 200, 5.0, 1.0, 32, 45);
  EXPECT_TRUE(a.equals_exact(b));
}

TEST(Generators, UniformLocalWindowWiderThanColsClamped) {
  const auto m = gen_uniform_local<double>(50, 10, 4.0, 1.0, 1000, 46);
  EXPECT_EQ(m.validate(), "");
}

TEST(Generators, RmatIsDeterministic) {
  const auto a = gen_rmat<double>(8, 4.0, 0.57, 0.19, 0.19, 47);
  const auto b = gen_rmat<double>(8, 4.0, 0.57, 0.19, 0.19, 47);
  EXPECT_TRUE(a.equals_exact(b));
}

TEST(Generators, PowerlawRowsAreAtLeastOne) {
  const auto m = gen_powerlaw<double>(500, 500, 3.0, 2.5, 100, 48);
  for (index_t r = 0; r < m.rows; ++r) EXPECT_GE(m.row_length(r), 1);
}

TEST(Generators, RowLengthNeverExceedsCols) {
  const auto m = gen_uniform_random<double>(50, 6, 10.0, 4.0, 17);
  EXPECT_EQ(m.validate(), "");
  EXPECT_LE(row_stats(m).max_len, 6);
}

}  // namespace
}  // namespace acs
