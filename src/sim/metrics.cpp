#include "sim/metrics.hpp"

namespace acs::sim {

MetricCounters& MetricCounters::operator+=(const MetricCounters& other) {
  global_bytes_coalesced += other.global_bytes_coalesced;
  global_bytes_scattered += other.global_bytes_scattered;
  scratch_ops += other.scratch_ops;
  sort_pass_elements += other.sort_pass_elements;
  scan_elements += other.scan_elements;
  hash_probes += other.hash_probes;
  atomic_ops += other.atomic_ops;
  flops += other.flops;
  compute_ops += other.compute_ops;
  return *this;
}

MetricCounters MetricCounters::operator+(const MetricCounters& other) const {
  MetricCounters out = *this;
  out += other;
  return out;
}

std::vector<MetricCounters> uniform_block_split(std::size_t count,
                                                const MetricCounters& total) {
  if (count == 0) return {};
  const auto div = static_cast<std::uint64_t>(count);
  std::vector<MetricCounters> blocks(count);
  const auto split = [&](std::uint64_t MetricCounters::* field,
                         std::uint64_t value) {
    const std::uint64_t base = value / div;
    const std::uint64_t rem = value % div;
    for (std::size_t i = 0; i < count; ++i)
      blocks[i].*field = base + (static_cast<std::uint64_t>(i) < rem ? 1 : 0);
  };
  split(&MetricCounters::global_bytes_coalesced, total.global_bytes_coalesced);
  split(&MetricCounters::global_bytes_scattered, total.global_bytes_scattered);
  split(&MetricCounters::scratch_ops, total.scratch_ops);
  split(&MetricCounters::sort_pass_elements, total.sort_pass_elements);
  split(&MetricCounters::scan_elements, total.scan_elements);
  split(&MetricCounters::hash_probes, total.hash_probes);
  split(&MetricCounters::atomic_ops, total.atomic_ops);
  split(&MetricCounters::flops, total.flops);
  split(&MetricCounters::compute_ops, total.compute_ops);
  return blocks;
}

}  // namespace acs::sim
