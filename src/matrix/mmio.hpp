#pragma once
/// \file mmio.hpp
/// Matrix Market (.mtx) I/O, mirroring the paper artifact's ability to parse
/// SuiteSparse matrices. Supports `coordinate` matrices with `real`,
/// `integer` or `pattern` fields and `general`/`symmetric`/`skew-symmetric`
/// symmetry.

#include <iosfwd>
#include <string>

#include "matrix/coo.hpp"
#include "matrix/csr.hpp"

namespace acs {

/// Parse a Matrix Market stream into COO triplets (symmetry expanded,
/// pattern entries given value 1). Throws std::runtime_error on malformed
/// input.
template <class T>
Coo<T> read_matrix_market(std::istream& in);

/// Parse a Matrix Market file into CSR (duplicates combined).
template <class T>
Csr<T> read_matrix_market_file(const std::string& path);

/// Write a CSR matrix as a `coordinate real general` Matrix Market stream.
template <class T>
void write_matrix_market(std::ostream& out, const Csr<T>& m);

/// Write a CSR matrix to a Matrix Market file.
template <class T>
void write_matrix_market_file(const std::string& path, const Csr<T>& m);

extern template Coo<float> read_matrix_market<float>(std::istream&);
extern template Coo<double> read_matrix_market<double>(std::istream&);
extern template Csr<float> read_matrix_market_file<float>(const std::string&);
extern template Csr<double> read_matrix_market_file<double>(const std::string&);
extern template void write_matrix_market(std::ostream&, const Csr<float>&);
extern template void write_matrix_market(std::ostream&, const Csr<double>&);
extern template void write_matrix_market_file(const std::string&, const Csr<float>&);
extern template void write_matrix_market_file(const std::string&, const Csr<double>&);

}  // namespace acs
