file(REMOVE_RECURSE
  "libacs_sim.a"
)
