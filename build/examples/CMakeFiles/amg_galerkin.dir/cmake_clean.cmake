file(REMOVE_RECURSE
  "CMakeFiles/amg_galerkin.dir/amg_galerkin.cpp.o"
  "CMakeFiles/amg_galerkin.dir/amg_galerkin.cpp.o.d"
  "amg_galerkin"
  "amg_galerkin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amg_galerkin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
