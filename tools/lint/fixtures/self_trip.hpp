#pragma once
// Fixture: not self-sufficient — uses std::vector and std::size_t without
// including <vector>/<cstddef>; must fail to compile standalone.
inline std::size_t total(const std::vector<std::size_t>& v) {
  std::size_t sum = 0;
  for (std::size_t x : v) sum += x;
  return sum;
}
