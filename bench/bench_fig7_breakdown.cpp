/// \file bench_fig7_breakdown.cpp
/// Reproduces Figure 7: relative runtime of AC-SpGEMM's stages — global
/// load balancing (GLB), chunk-based ESC (ESC), merge-case assignment
/// (MCC), Multi Merge (MM), Path Merge (PM), Search Merge (SM), and chunk
/// copy (CC) — per showcase matrix. Paper shape: ESC dominates under ideal
/// conditions; merge grows for matrices with long rows / many shared rows;
/// GLB is negligible everywhere.

#include <iostream>

#include "core/acspgemm.hpp"
#include "matrix/transpose.hpp"
#include "suite/suite.hpp"
#include "suite/table.hpp"

int main() {
  using namespace acs;
  const char* stages[] = {"GLB", "ESC", "MCC", "MM", "PM", "SM", "CC"};

  std::cout << "Figure 7: relative runtime of AC-SpGEMM's stages (fraction "
               "of total simulated time)\n\n";

  std::vector<std::string> header{"matrix"};
  for (const char* s : stages) header.push_back(s);
  TextTable table(header);
  CsvWriter csv("fig7_breakdown.csv");
  csv.write_row(header);

  for (const auto& entry : showcase_suite()) {
    const auto a = build_matrix<double>(entry);
    const auto b = entry.square ? a : transpose(a);
    SpgemmStats stats;
    multiply(a, b, Config{}, &stats);

    double total = 0.0;
    for (const char* s : stages) total += stats.stage_time(s);
    std::vector<std::string> row{entry.name};
    for (const char* s : stages)
      row.push_back(TextTable::num(stats.stage_time(s) / total, 3));
    table.add_row(row);
    csv.write_row(row);
  }
  std::cout << table.str();
  std::cout << "\nwrote fig7_breakdown.csv\n";
  return 0;
}
