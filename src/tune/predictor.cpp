#include "tune/predictor.hpp"

#include <algorithm>
#include <cmath>

#include "sim/block_primitives.hpp"

namespace acs::tune {
namespace {

constexpr double kIdx = static_cast<double>(sizeof(index_t));

double clamp01(double x) { return std::min(1.0, std::max(0.0, x)); }

/// Fraction of A's rows whose estimated output length exceeds `limit`,
/// read off the row-length quantiles (piecewise-constant survival curve).
double row_fraction_above(const RowLengthProfile& p, double limit,
                          double scale) {
  if (static_cast<double>(p.max) * scale <= limit) return 0.0;
  if (static_cast<double>(p.p99) * scale > limit) {
    if (static_cast<double>(p.p90) * scale > limit) {
      if (static_cast<double>(p.p50) * scale > limit) return 0.5;
      return 0.1;
    }
    return 0.01;
  }
  return 0.001;
}

/// Device makespan of `blocks` copies of the aggregate counters `total`
/// (the same uniform-split treatment the pipeline gives its utility
/// kernels) — the kLatency objective's currency.
double kernel_makespan_s(const sim::MetricCounters& total, double blocks,
                         const sim::DeviceConfig& dev) {
  const auto n = static_cast<std::size_t>(std::max(1.0, std::round(blocks)));
  return sim::schedule_blocks(sim::uniform_block_split(n, total), dev).time_s;
}

/// Host-calibrated work of one stage — the kThroughput objective's currency.
/// The engine's jobs/s is bounded by what the *host* scheduler chews
/// through, and the host's relative costs differ from the device model's:
/// an LSD radix-sort pass really touches every element (~1.5 ns each,
/// against the device model's 4 overlapped ops), bytes are nearly free
/// under the host caches, and every simulated block / written chunk costs
/// microseconds of dispatch and allocator work that the device model rolls
/// into bandwidth. Weights were fitted against wall-clock stage profiles of
/// the reference structures in bench_autotune (see DESIGN.md §9); they need
/// only rank configurations, not predict absolute seconds.
double host_work_s(const sim::MetricCounters& m, double blocks,
                   double chunks, double per_block_us) {
  const double ns =
      static_cast<double>(m.sort_pass_elements) * 1.5 +
      static_cast<double>(m.scan_elements) * 2.0 +
      static_cast<double>(m.flops) * 0.5 +
      static_cast<double>(m.compute_ops) * 0.5 +
      static_cast<double>(m.scratch_ops) * 0.1 +
      static_cast<double>(m.hash_probes) * 1.0 +
      static_cast<double>(m.global_bytes_coalesced) * 0.05 +
      static_cast<double>(m.global_bytes_scattered) * 0.2 +
      static_cast<double>(m.atomic_ops) * 1.0;
  return ns * 1e-9 + blocks * per_block_us * 1e-6 + chunks * 0.15e-6 +
         1.0e-6;
}

/// Per-simulated-block host cost by stage: an ESC block sets up row maps,
/// work distribution and product buffers (~2.5 us of allocator and
/// dispatch work); a merge task only gathers into three flat vectors
/// (~1 us); utility passes (GLB, MCC, CC) are plain loops.
constexpr double kEscBlockUs = 2.5;
constexpr double kMergeBlockUs = 1.0;
constexpr double kPassUs = 0.1;

}  // namespace

CostBreakdown predict_cost(const TuneFeatures& f, const Config& cfg,
                           std::size_t value_bytes,
                           double products_override, bool simulate_makespan) {
  CostBreakdown out;
  const sim::DeviceConfig& dev = cfg.device;
  const double vb = static_cast<double>(value_bytes);
  const double nnz_a = std::max(1.0, static_cast<double>(f.nnz_a));
  const double rows_a = std::max(1.0, static_cast<double>(f.rows_a));
  const double cols_b = std::max(1.0, static_cast<double>(f.cols_b));
  const double avg_b = f.b_rows.avg;
  const double npb = static_cast<double>(cfg.nnz_per_block);
  const double threads = static_cast<double>(cfg.threads);
  const double cap = static_cast<double>(cfg.temp_capacity());
  const double retain_cap = static_cast<double>(cfg.retain_capacity());

  const double products =
      products_override > 0.0 ? products_override : f.est_products;

  // Long-row diversion under this candidate's threshold (Section 3.4):
  // products in B rows at least `t` long never enter the ESC sort.
  const index_t t = cfg.effective_long_row_threshold();
  double long_products = 0.0;
  if (cfg.long_row_handling) {
    long_products = std::min(products, f.products_in_rows_at_least(t));
    out.long_entries = f.entries_in_rows_at_least(t);
  }
  const double esc_products = std::max(0.0, products - long_products);
  out.esc_products = esc_products;

  // Output-size estimate: the paper's uniform-row collision model, scaled
  // to the (possibly measured) product count.
  const double p_b = avg_b / cols_b;
  const double avg_a = nnz_a / rows_a;
  const double collision =
      p_b < 1e-12 ? avg_a : (1.0 - std::pow(1.0 - p_b, avg_a)) / p_b;
  out.est_nnz_c = std::min(products, rows_a * avg_b * collision);
  const double compaction = out.est_nnz_c / std::max(1.0, products);

  // --- GLB (Algorithm 1): one pass over A's row pointer. ------------------
  out.blocks = std::ceil(nnz_a / npb);
  {
    sim::MetricCounters m;
    m.global_bytes_coalesced =
        static_cast<std::uint64_t>((rows_a + out.blocks) * kIdx);
    m.scan_elements = static_cast<std::uint64_t>(rows_a);
    if (simulate_makespan)
      out.glb_s = kernel_makespan_s(m, std::ceil(rows_a / threads), dev);
    // One pass over the row pointer on the host, however it is blocked.
    out.serial_s += host_work_s(m, 1.0, 0.0, kPassUs);
  }

  // --- ESC: iterations, sort work, chunk writes. --------------------------
  // A carried row averages half the retain budget, shrinking the products
  // consumed per iteration; every block runs at least one iteration.
  const double consume = std::max(1.0, cap - retain_cap * 0.5);
  const double products_pb = esc_products / out.blocks;
  const double iters_pb = std::max(1.0, std::ceil(products_pb / consume));
  out.iterations = iters_pb * out.blocks;

  // Sort key width: local-row ids are entry indices (≤ nnz_per_block), but
  // dynamic bit reduction narrows them to the entries one iteration spans;
  // column bits span B's full width for structure-agnostic inputs.
  const double entries_per_iter = consume / std::max(1.0, avg_b);
  const int lrow_bits = sim::bits_for(static_cast<std::uint64_t>(std::max(
      0.0, (cfg.dynamic_bits ? std::min(npb, entries_per_iter) : npb) - 1)));
  const int col_bits =
      sim::bits_for(static_cast<std::uint64_t>(std::max(0.0, cols_b - 1)));
  const int passes = sim::radix_passes(lrow_bits + col_bits);

  // Chunks: roughly one write per iteration, plus the pointer chunks.
  const double esc_chunk_entries = esc_products * compaction;
  out.chunks = out.iterations + out.long_entries;
  const double rows_pb = std::max(1.0, rows_a * npb / nnz_a);
  {
    sim::MetricCounters m;
    const double sorted =
        esc_products + out.iterations * retain_cap * 0.5;  // carried resort
    m.sort_pass_elements = static_cast<std::uint64_t>(
        sorted * static_cast<double>(std::max(passes, 1)));
    m.scan_elements = static_cast<std::uint64_t>(
        sorted + out.iterations * threads + nnz_a);
    m.flops = static_cast<std::uint64_t>(2.0 * esc_products);
    m.global_bytes_coalesced = static_cast<std::uint64_t>(
        nnz_a * (kIdx + vb)                       // fetch A
        + (rows_a + out.blocks) * kIdx            // row-pointer windows
        + nnz_a * kIdx                            // B row-length lookups
        + esc_products * (kIdx + vb)              // expand loads from B
        + esc_chunk_entries * (kIdx + vb)         // chunk payload writes
        + out.chunks * 32.0 + out.long_entries * 48.0);
    m.global_bytes_scattered = static_cast<std::uint64_t>(
        nnz_a * kIdx        // row-length pointer lookups
        + nnz_a * 32.0);    // B-row segment starts
    m.scratch_ops = static_cast<std::uint64_t>(2.0 * esc_chunk_entries);
    m.atomic_ops = static_cast<std::uint64_t>(out.chunks * 3.0 + rows_pb +
                                              out.long_entries * 4.0);
    if (simulate_makespan) out.esc_s = kernel_makespan_s(m, out.blocks, dev);
    out.serial_s += host_work_s(m, out.blocks, out.chunks, kEscBlockUs);
  }

  // --- Merge: boundary rows + oversized rows + long-row rows. -------------
  const double avg_c = out.est_nnz_c / rows_a;
  // Every block boundary cuts one row into two chunks (Multi Merge unless
  // the row is large); rows whose compacted length overflows the retain
  // budget flush mid-block and split into ~length/cap chunks.
  const double boundary_rows = std::max(0.0, out.blocks - 1.0);
  const double big_frac =
      row_fraction_above(f.a_rows, std::max(retain_cap, 1.0),
                         avg_b * compaction);
  const double big_rows = rows_a * big_frac;
  const double big_len = std::max(
      avg_c, static_cast<double>(f.a_rows.p99) * avg_b * compaction);
  const double big_chunks = std::max(2.0, big_len / cap);
  // Long-row pointer chunks merge only when their row has other segments
  // (an unshared pointer chunk goes straight to CC). Rows holding at least
  // one diverted entry, by the same collision model as the output estimate:
  const double long_frac = out.long_entries / nnz_a;
  const double rows_with_long =
      out.long_entries > 0.0
          ? std::max(1.0, rows_a * (1.0 - std::pow(1.0 - long_frac, avg_a)))
          : 0.0;
  const double long_merge_rows = rows_with_long * clamp01(f.a_rows.avg - 1.0);
  // Composition of one such merged row: `lpr` diverted entries contribute
  // full B rows, the remaining entries contribute already-compacted ESC
  // products.
  const double lpr =
      rows_with_long > 0.0 ? out.long_entries / rows_with_long : 0.0;
  const double short_per_entry =
      esc_products / std::max(1.0, nnz_a - out.long_entries);
  const double long_row_len =
      (out.long_entries > 0.0
           ? lpr * f.products_in_rows_at_least(t) / out.long_entries
           : 0.0) +
      std::max(0.0, avg_a - lpr) * short_per_entry * compaction;
  // Segments: each diverted entry is its own chunk; the short products sit
  // in one or two ESC chunks.
  const double long_segs = lpr + 2.0;
  out.merged_rows = boundary_rows + big_rows + long_merge_rows;

  if (out.merged_rows > 0.5) {
    const double pmc = static_cast<double>(cfg.path_merge_max_chunks);
    // Case split: boundary rows go to Multi (2 chunks, small); big and
    // long rows go to Path up to the chunk cutoff, then Search.
    const double multi_rows = boundary_rows;
    const double big_path = big_chunks <= pmc ? big_rows : 0.0;
    const double big_search = big_chunks <= pmc ? 0.0 : big_rows;
    const double long_path = long_segs <= pmc ? long_merge_rows : 0.0;
    const double long_search = long_segs <= pmc ? 0.0 : long_merge_rows;

    double merge_s = 0.0;
    const auto add = [&](const sim::MetricCounters& m, double blocks,
                         double windows, double per_block_us) {
      if (simulate_makespan) merge_s += kernel_makespan_s(m, blocks, dev);
      out.serial_s += host_work_s(m, blocks, windows, per_block_us);
    };
    {  // Merge-case assignment scan (MCC).
      sim::MetricCounters m;
      m.scan_elements = static_cast<std::uint64_t>(out.merged_rows);
      m.global_bytes_coalesced =
          static_cast<std::uint64_t>(out.merged_rows * 2.0 * kIdx);
      add(m, std::ceil(out.merged_rows / threads), 0.0, kPassUs);
    }
    // Gathered buffers are re-sorted by (local row, column) before
    // compaction (merge.cpp); local-row ids are tiny, so the pass count is
    // set by the column bits.
    const int merge_passes = sim::radix_passes(col_bits);
    const auto traffic = [&](sim::MetricCounters& m, double rows,
                             double len_per_row, double segs_per_row) {
      const double elems = rows * len_per_row;
      m.global_bytes_coalesced += static_cast<std::uint64_t>(
          2.0 * elems * (kIdx + vb) + rows * segs_per_row * 32.0);
      m.global_bytes_scattered +=
          static_cast<std::uint64_t>(rows * segs_per_row * 32.0);
      m.scan_elements += static_cast<std::uint64_t>(elems);
      m.sort_pass_elements += static_cast<std::uint64_t>(
          elems * static_cast<double>(std::max(merge_passes, 1)));
      return elems;
    };
    if (multi_rows > 0.0) {
      sim::MetricCounters m;
      const double elems = traffic(m, multi_rows, std::min(avg_c, cap), 2.0);
      const double batches = std::max(1.0, std::ceil(elems / cap));
      add(m, batches, 0.0, kMergeBlockUs);
    }
    if (big_path + long_path > 0.0) {
      sim::MetricCounters m;
      double windows = 0.0;
      if (big_path > 0.0) {
        windows += big_path * std::ceil(big_len / cap);
        traffic(m, big_path, big_len, big_chunks);
      }
      if (long_path > 0.0) {
        windows += long_path * std::ceil(std::max(1.0, long_row_len / cap));
        traffic(m, long_path, long_row_len, long_segs);
      }
      // Sample-sort cut discovery per window (merge.cpp Path branch).
      m.sort_pass_elements +=
          static_cast<std::uint64_t>(windows * threads * 4.0);
      m.scan_elements += static_cast<std::uint64_t>(windows * threads);
      out.chunks += windows;
      add(m, std::max(1.0, big_path + long_path), windows, kMergeBlockUs);
    }
    if (big_search + long_search > 0.0) {
      sim::MetricCounters m;
      double windows = 0.0;
      if (big_search > 0.0) {
        windows += big_search * std::ceil(big_len / cap);
        traffic(m, big_search, big_len, big_chunks);
      }
      if (long_search > 0.0) {
        windows +=
            long_search * std::ceil(std::max(1.0, long_row_len / cap));
        traffic(m, long_search, long_row_len, long_segs);
      }
      // Binary-search sampling over the column range per window.
      const double probes =
          std::max(1.0, std::ceil(std::log2(std::max(2.0, cols_b))));
      m.compute_ops +=
          static_cast<std::uint64_t>(windows * threads * probes);
      m.scan_elements += static_cast<std::uint64_t>(windows * threads);
      out.chunks += windows;
      add(m, std::max(1.0, big_search + long_search), windows,
          kMergeBlockUs);
    }
    out.merge_s = merge_s;
  }

  // --- CC: row-pointer scan + one copy block per live chunk. --------------
  {
    sim::MetricCounters m;
    m.scan_elements = static_cast<std::uint64_t>(rows_a);
    m.global_bytes_coalesced = static_cast<std::uint64_t>(
        rows_a * kIdx * 2.0 + 2.0 * out.est_nnz_c * (kIdx + vb) +
        2.0 * long_products * (kIdx + vb));
    m.flops = static_cast<std::uint64_t>(2.0 * long_products);
    if (simulate_makespan)
      out.cc_s = kernel_makespan_s(m, std::max(1.0, out.chunks), dev);
    // On the host CC is one pass over rows and their segment lists; the
    // per-live-chunk bookkeeping rides on the chunk term.
    out.serial_s += host_work_s(m, 1.0, out.chunks, kPassUs);
  }

  out.total_s = out.glb_s + out.esc_s + out.merge_s + out.cc_s;
  return out;
}

double predict_makespan_s(const TuneFeatures& f, const Config& cfg,
                          std::size_t value_bytes,
                          double products_override) {
  return predict_cost(f, cfg, value_bytes, products_override).total_s;
}

}  // namespace acs::tune
