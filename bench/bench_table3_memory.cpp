/// \file bench_table3_memory.cpp
/// Reproduces Table 3: AC-SpGEMM memory consumption per showcase matrix —
/// helper structures, allocated chunk pool, actually used chunk memory, the
/// used/output ratio (u/o), the number of restarts (R), and the lowest
/// multiprocessor load (mpL). Paper shape: used chunk memory is only
/// slightly larger than C itself (local ESC iterations produce essentially
/// completed chunks); the 100 MB pool lower bound inflates tiny matrices
/// (bibd-like); restarts are rare; mpL is near-perfect.

#include <iostream>

#include "core/acspgemm.hpp"
#include "matrix/transpose.hpp"
#include "suite/suite.hpp"
#include "suite/table.hpp"

int main() {
  using namespace acs;
  std::cout << "Table 3: AC-SpGEMM memory consumption (MB), restarts and "
               "multiprocessor load\n\n";

  TextTable table({"matrix", "helper", "chunk", "used", "used %", "u/o", "R",
                   "mpL"});
  CsvWriter csv("table3_memory.csv");
  csv.write_row({"matrix", "helper_mb", "chunk_mb", "used_mb", "used_pct",
                 "used_over_output", "restarts", "mp_load"});

  for (const auto& entry : showcase_suite()) {
    const auto a = build_matrix<double>(entry);
    const auto b = entry.square ? a : transpose(a);
    SpgemmStats stats;
    const auto c = multiply(a, b, Config{}, &stats);

    const double mb = 1.0 / (1024.0 * 1024.0);
    const double used_pct =
        100.0 * static_cast<double>(stats.pool_used_bytes) /
        static_cast<double>(stats.pool_bytes);
    const double u_over_o = static_cast<double>(stats.pool_used_bytes) /
                            static_cast<double>(c.byte_size());

    table.add_row({entry.name,
                   TextTable::num(static_cast<double>(stats.helper_bytes) * mb, 2),
                   TextTable::num(static_cast<double>(stats.pool_bytes) * mb, 1),
                   TextTable::num(static_cast<double>(stats.pool_used_bytes) * mb, 2),
                   TextTable::num(used_pct, 2) + "%",
                   TextTable::num(u_over_o, 2), std::to_string(stats.restarts),
                   TextTable::num(100.0 * stats.multiprocessor_load, 2) + "%"});
    csv.write_row({entry.name,
                   TextTable::num(static_cast<double>(stats.helper_bytes) * mb, 4),
                   TextTable::num(static_cast<double>(stats.pool_bytes) * mb, 2),
                   TextTable::num(static_cast<double>(stats.pool_used_bytes) * mb, 4),
                   TextTable::num(used_pct, 3), TextTable::num(u_over_o, 3),
                   std::to_string(stats.restarts),
                   TextTable::num(stats.multiprocessor_load, 4)});
  }
  std::cout << table.str();
  std::cout << "\nwrote table3_memory.csv\n";
  return 0;
}
