/// \file bench_hybrid_extension.cpp
/// Evaluates the paper's proposed future-work extension (Conclusion):
/// adaptively choosing between ESC (AC-SpGEMM) and hashing depending on the
/// load. The hybrid should match AC-SpGEMM on highly sparse matrices and
/// match nsparse on high-compaction dense ones — taking the best of both
/// columns of Table 1.

#include <iostream>

#include "baselines/nsparse_like.hpp"
#include "suite/bench_runner.hpp"
#include "suite/hybrid.hpp"
#include "suite/registry.hpp"
#include "suite/table.hpp"

int main() {
  using namespace acs;
  std::cout << "Hybrid extension: adaptive ESC/hashing dispatch "
               "(paper Conclusion)\n\n";

  AcSpgemmAlgorithm<double> ac;
  NsparseLike<double> ns;
  HybridSpgemm<double> hybrid;

  TextTable table({"matrix", "avg len", "choice", "AC us", "nsparse us",
                   "hybrid us", "hybrid vs best"});
  CsvWriter csv("hybrid_extension.csv");
  csv.write_row({"matrix", "avg_len", "choice", "ac_us", "nsparse_us",
                 "hybrid_us", "hybrid_vs_best"});

  int optimal = 0, total = 0;
  double hybrid_sum = 0.0, best_sum = 0.0, ac_sum = 0.0;
  for (const auto& entry : full_suite()) {
    const auto r_ac = run_benchmark<double>(entry, ac);
    const auto r_ns = run_benchmark<double>(entry, ns);
    const auto r_hy = run_benchmark<double>(entry, hybrid);
    const double best = std::min(r_ac.sim_time_s, r_ns.sim_time_s);
    const char* choice =
        hybrid.last_choice() == HybridSpgemm<double>::Choice::Hash ? "hash"
                                                                   : "ESC";
    ++total;
    if (r_hy.sim_time_s <= 1.02 * best) ++optimal;
    hybrid_sum += r_hy.sim_time_s;
    best_sum += best;
    ac_sum += r_ac.sim_time_s;

    std::vector<std::string> row{
        entry.name,
        TextTable::num(r_ac.avg_row_len_a, 1),
        choice,
        TextTable::num(r_ac.sim_time_s * 1e6, 1),
        TextTable::num(r_ns.sim_time_s * 1e6, 1),
        TextTable::num(r_hy.sim_time_s * 1e6, 1),
        TextTable::num(r_hy.sim_time_s / best, 2) + "x"};
    table.add_row(row);
    csv.write_row(row);
  }
  std::cout << table.str() << "\n";
  std::cout << "hybrid within 2% of the better of {AC, nsparse} on "
            << optimal << "/" << total << " matrices\n";
  std::cout << "total time: hybrid " << TextTable::num(hybrid_sum * 1e3, 2)
            << " ms vs oracle-best " << TextTable::num(best_sum * 1e3, 2)
            << " ms vs always-AC " << TextTable::num(ac_sum * 1e3, 2)
            << " ms\nwrote hybrid_extension.csv\n";
  return 0;
}
