file(REMOVE_RECURSE
  "CMakeFiles/acs_baselines.dir/bhsparse.cpp.o"
  "CMakeFiles/acs_baselines.dir/bhsparse.cpp.o.d"
  "CMakeFiles/acs_baselines.dir/cusparse_like.cpp.o"
  "CMakeFiles/acs_baselines.dir/cusparse_like.cpp.o.d"
  "CMakeFiles/acs_baselines.dir/esc_global.cpp.o"
  "CMakeFiles/acs_baselines.dir/esc_global.cpp.o.d"
  "CMakeFiles/acs_baselines.dir/kokkos_like.cpp.o"
  "CMakeFiles/acs_baselines.dir/kokkos_like.cpp.o.d"
  "CMakeFiles/acs_baselines.dir/nsparse_like.cpp.o"
  "CMakeFiles/acs_baselines.dir/nsparse_like.cpp.o.d"
  "CMakeFiles/acs_baselines.dir/rmerge.cpp.o"
  "CMakeFiles/acs_baselines.dir/rmerge.cpp.o.d"
  "CMakeFiles/acs_baselines.dir/spa_gustavson.cpp.o"
  "CMakeFiles/acs_baselines.dir/spa_gustavson.cpp.o.d"
  "libacs_baselines.a"
  "libacs_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acs_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
