#pragma once
/// \file cost_model.hpp
/// Analytic timing model turning MetricCounters into simulated kernel time.
///
/// A block's time is max(memory time, compute time) — GPUs overlap the two —
/// where memory time charges coalesced bytes at peak bandwidth and scattered
/// bytes at `scatter_efficiency` of peak, and compute time charges scans,
/// radix-sort passes, hash probes and generic ALU ops at
/// `ops_per_clock_per_sm`. Kernel time list-schedules the per-block times
/// onto `num_sms × blocks_per_sm` slots in block order (matching the
/// deterministic hardware dispatch the paper relies on) and adds the launch
/// overhead. The per-SM busy times also yield the paper's "multiprocessor
/// load" metric (Table 3, last column).

#include <vector>

#include "sim/device_config.hpp"
#include "sim/metrics.hpp"

namespace acs::sim {

/// Simulated execution time of one block's worth of counters, in seconds.
double block_time_s(const MetricCounters& m, const DeviceConfig& dev);

struct KernelTiming {
  double time_s = 0.0;
  /// min(SM busy) / max(SM busy): 1.0 means perfectly balanced SMs.
  double multiprocessor_load = 1.0;
};

/// Schedule per-block times onto the device and return makespan + balance.
/// `blocks` may be empty (returns just the launch overhead).
KernelTiming schedule_blocks(const std::vector<double>& block_times_s,
                             const DeviceConfig& dev);

/// Convenience: schedule blocks given their metric sets.
KernelTiming schedule_blocks(const std::vector<MetricCounters>& blocks,
                             const DeviceConfig& dev);

}  // namespace acs::sim
