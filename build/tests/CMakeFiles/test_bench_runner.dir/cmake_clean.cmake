file(REMOVE_RECURSE
  "CMakeFiles/test_bench_runner.dir/test_bench_runner.cpp.o"
  "CMakeFiles/test_bench_runner.dir/test_bench_runner.cpp.o.d"
  "test_bench_runner"
  "test_bench_runner.pdb"
  "test_bench_runner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bench_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
