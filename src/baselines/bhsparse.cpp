#include "baselines/bhsparse.hpp"

#include <algorithm>
#include <chrono>

#include "baselines/detail.hpp"
#include "matrix/stats.hpp"
#include "sim/block_primitives.hpp"
#include "sim/cost_model.hpp"

namespace acs {
namespace {

/// Scratchpad bound: rows with more intermediate products than this use the
/// iterative global merge path.
constexpr offset_t kScratchBound = 2048;

}  // namespace

template <class T>
Csr<T> bhsparse_multiply(const Csr<T>& a, const Csr<T>& b, SpgemmStats* stats) {
  if (a.cols != b.rows)
    throw std::invalid_argument("bhsparse: dimension mismatch");
  const auto t0 = std::chrono::steady_clock::now();
  const sim::DeviceConfig dev{};

  // --- Row analysis: intermediate products per row, then binning.
  const auto per_row = intermediate_products_per_row(a, b);
  sim::MetricCounters setup;
  setup.global_bytes_coalesced +=
      static_cast<std::uint64_t>(a.nnz()) * sizeof(index_t);
  setup.global_bytes_scattered +=
      static_cast<std::uint64_t>(a.nnz()) * 2 * sizeof(index_t);
  setup.scan_elements += static_cast<std::uint64_t>(a.rows);
  setup.atomic_ops += static_cast<std::uint64_t>(a.rows);

  // Bins by power of two of the product count: 1, 2, 3-4, 5-8, ... The
  // original uses 37 bins plus special cases; the pow2 ladder reproduces
  // the same per-row method selection.
  std::vector<std::vector<index_t>> bins(1);
  for (index_t r = 0; r < a.rows; ++r) {
    const offset_t p = per_row[static_cast<std::size_t>(r)];
    if (p == 0) continue;
    std::size_t bin = 1;
    for (offset_t s = 1; s < p; s <<= 1) ++bin;
    if (bins.size() <= bin) bins.resize(bin + 1);
    bins[bin].push_back(r);
  }

  Csr<T> c;
  c.rows = a.rows;
  c.cols = b.cols;
  c.row_ptr.assign(static_cast<std::size_t>(a.rows) + 1, 0);
  std::vector<std::vector<index_t>> row_cols(static_cast<std::size_t>(a.rows));
  std::vector<std::vector<T>> row_vals(static_cast<std::size_t>(a.rows));

  std::vector<std::pair<std::string, std::vector<sim::MetricCounters>>> kernels;
  std::vector<baseline_detail::Product<T>> prods;
  std::size_t upper_bound_bytes = 0;

  for (std::size_t bin = 1; bin < bins.size(); ++bin) {
    if (bins[bin].empty()) continue;
    std::vector<sim::MetricCounters> blocks;
    sim::MetricCounters bm;
    std::size_t rows_in_block = 0;
    const std::size_t rows_per_block =
        std::max<std::size_t>(1, 256 >> std::min<std::size_t>(bin, 8));

    for (index_t r : bins[bin]) {
      baseline_detail::gather_row_products(a, b, r, prods);
      const auto n = static_cast<std::uint64_t>(prods.size());
      upper_bound_bytes += prods.size() * (sizeof(index_t) + sizeof(T));

      std::stable_sort(prods.begin(), prods.end(),
                       [](const auto& p, const auto& q) { return p.col < q.col; });
      auto& cols = row_cols[static_cast<std::size_t>(r)];
      auto& vals = row_vals[static_cast<std::size_t>(r)];
      for (std::size_t i = 0; i < prods.size();) {
        std::size_t j = i;
        T sum{};
        while (j < prods.size() && prods[j].col == prods[i].col)
          sum += prods[j++].val;
        cols.push_back(prods[i].col);
        vals.push_back(sum);
        i = j;
      }
      c.row_ptr[static_cast<std::size_t>(r) + 1] =
          static_cast<index_t>(cols.size());

      // Cost model per selected method. Every row expands its products into
      // the pre-allocated upper-bound buffer before sorting/merging — one
      // extra global round trip over the expanded data.
      bm.global_bytes_coalesced += 3 * n * (sizeof(index_t) + sizeof(T));
      bm.global_bytes_scattered +=
          32 * static_cast<std::uint64_t>(a.row_length(r));
      bm.flops += 2 * n;
      const offset_t p = per_row[static_cast<std::size_t>(r)];
      if (p <= 1) {
        // Trivial: direct copy.
      } else if (p <= kScratchBound) {
        // Heap/bitonic ESC in scratchpad: n · log²(n)/2 comparator steps.
        const auto logn = static_cast<std::uint64_t>(
            std::max(1, sim::bits_for(n)));
        bm.compute_ops += n * logn * logn / 2;
        bm.scratch_ops += 2 * n;
      } else {
        // Iterative global merge: sequences of scratchpad size are merged
        // pairwise; each round makes a full global round trip over the
        // row's data.
        const auto sequences = static_cast<std::uint64_t>(
            divup<offset_t>(p, kScratchBound));
        const auto rounds =
            static_cast<std::uint64_t>(std::max(1, sim::bits_for(sequences)));
        bm.global_bytes_coalesced +=
            2 * n * (sizeof(index_t) + sizeof(T)) * rounds;
        bm.compute_ops += n * rounds;
      }
      bm.global_bytes_coalesced += static_cast<std::uint64_t>(cols.size()) *
                                   (sizeof(index_t) + sizeof(T));

      if (++rows_in_block == rows_per_block) {
        blocks.push_back(bm);
        bm = {};
        rows_in_block = 0;
      }
    }
    if (rows_in_block > 0) blocks.push_back(bm);
    // Each bin launches a symbolic and a numeric kernel; the work above
    // covers both, the second launch adds its overhead.
    kernels.emplace_back("bin" + std::to_string(bin), std::move(blocks));
    kernels.emplace_back("bin" + std::to_string(bin) + "-2",
                         std::vector<sim::MetricCounters>{});
  }

  for (index_t r = 0; r < a.rows; ++r)
    c.row_ptr[usize(r) + 1] += c.row_ptr[usize(r)];
  for (index_t r = 0; r < a.rows; ++r) {
    c.col_idx.insert(c.col_idx.end(), row_cols[static_cast<std::size_t>(r)].begin(),
                     row_cols[static_cast<std::size_t>(r)].end());
    c.values.insert(c.values.end(), row_vals[static_cast<std::size_t>(r)].begin(),
                    row_vals[static_cast<std::size_t>(r)].end());
  }

  if (stats) {
    *stats = SpgemmStats{};
    stats->intermediate_products = intermediate_products(a, b);
    {
      std::vector<sim::MetricCounters> setup_blocks(
          std::max<std::size_t>(1, static_cast<std::size_t>(a.rows) / 256));
      for (auto& m : setup_blocks) {
        m = setup;
        m.global_bytes_coalesced /= setup_blocks.size();
        m.global_bytes_scattered /= setup_blocks.size();
        m.scan_elements /= setup_blocks.size();
        m.atomic_ops /= setup_blocks.size();
      }
      const auto t = sim::schedule_blocks(setup_blocks, dev);
      stats->stage_times_s.emplace_back("analysis", t.time_s);
      stats->sim_time_s += t.time_s;
      for (const auto& m : setup_blocks) stats->metrics += m;
      // Bin-size scan and row-id scatter are separate launches.
      for (const char* pass : {"analysis-scan", "analysis-scatter"}) {
        stats->stage_times_s.emplace_back(pass, dev.kernel_launch_us * 1e-6);
        stats->sim_time_s += dev.kernel_launch_us * 1e-6;
      }
    }
    for (auto& [name, blocks] : kernels) {
      const auto t = sim::schedule_blocks(blocks, dev);
      stats->stage_times_s.emplace_back(name, t.time_s);
      stats->sim_time_s += t.time_s;
      for (const auto& m : blocks) stats->metrics += m;
      if (blocks.size() >= static_cast<std::size_t>(dev.num_sms))
        stats->multiprocessor_load =
            std::min(stats->multiprocessor_load, t.multiprocessor_load);
    }
    // bhSparse allocates upper-bound buffers for the expanded products.
    stats->pool_bytes = upper_bound_bytes;
    stats->pool_used_bytes = upper_bound_bytes;
    stats->helper_bytes =
        static_cast<std::size_t>(a.rows) * 2 * sizeof(index_t);
    stats->wall_time_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  return c;
}

template Csr<float> bhsparse_multiply(const Csr<float>&, const Csr<float>&,
                                      SpgemmStats*);
template Csr<double> bhsparse_multiply(const Csr<double>&, const Csr<double>&,
                                       SpgemmStats*);
template class BhSparse<float>;
template class BhSparse<double>;

}  // namespace acs
