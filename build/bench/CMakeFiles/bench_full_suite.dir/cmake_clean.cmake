file(REMOVE_RECURSE
  "CMakeFiles/bench_full_suite.dir/bench_full_suite.cpp.o"
  "CMakeFiles/bench_full_suite.dir/bench_full_suite.cpp.o.d"
  "bench_full_suite"
  "bench_full_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_full_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
