#pragma once
/// \file scheduler.hpp
/// Weighted-fair dispatch for the serving layer: deficit round robin (DRR)
/// over per-tenant FIFO queues, with job "sizes" measured in predicted
/// cost seconds — the same currency as admission — so a tenant submitting
/// few large multiplications and one submitting many small ones drain the
/// device at the ratio of their weights, not of their request counts.
///
/// Deterministic: tenant visiting order is registration order, the deficit
/// arithmetic uses only the enqueued costs and configured weights, and
/// ties never consult a clock. Not thread-safe — the server serializes
/// access under its planner mutex.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace acs::serve {

/// One admitted job waiting for dispatch, as the scheduler sees it.
struct QueuedJob {
  std::uint64_t id = 0;     ///< server-side submission sequence number
  double cost_s = 0.0;      ///< predicted (safety-scaled) service time
  int priority = 0;         ///< shed victims are picked lowest-first
  double arrival_s = 0.0;   ///< virtual arrival (shed tie-break: latest)
};

class DrrScheduler {
 public:
  /// `quantum_s`: deficit credit granted per round-robin visit, scaled by
  /// the tenant weight. Any positive value is fair asymptotically; it
  /// bounds the burst one tenant can serve before the pointer moves on.
  explicit DrrScheduler(double quantum_s = 1e-3);

  /// Register a tenant; returns its dense index. Weight is its DRR share
  /// relative to the other tenants (must be > 0).
  std::size_t add_tenant(double weight);

  [[nodiscard]] std::size_t tenants() const { return states_.size(); }
  [[nodiscard]] std::size_t queued_jobs() const { return queued_; }
  /// Summed predicted cost of every queued job.
  [[nodiscard]] double queued_cost_s() const { return queued_cost_s_; }
  [[nodiscard]] std::size_t queued_jobs_of(std::size_t tenant) const {
    return states_[tenant].queue.size();
  }

  void enqueue(std::size_t tenant, QueuedJob job);

  /// Dequeue the next job under weighted DRR. Returns false when no job is
  /// queued. `tenant_out` (optional) receives the serving tenant.
  bool pop_next(QueuedJob& out, std::size_t* tenant_out = nullptr);

  /// Undo the most natural follow-up to a pop the caller could not act on
  /// (e.g. memory backpressure): the job returns to the *front* of its
  /// tenant's queue and the deficit it consumed is restored.
  void requeue_front(std::size_t tenant, QueuedJob job);

  /// Remove the queued job with the lowest priority (ties: latest arrival,
  /// then highest id) — the backpressure shed victim. False when empty.
  bool shed_lowest_priority(QueuedJob& out, std::size_t* tenant_out = nullptr);

 private:
  struct TenantState {
    std::deque<QueuedJob> queue;
    double weight = 1.0;
    double deficit_s = 0.0;
    /// True while the tenant's once-per-visit quantum grant is live (the
    /// cursor is parked on it serving within the same deficit).
    bool granted = false;
  };

  double quantum_s_;
  std::vector<TenantState> states_;
  /// Round-robin pointer into `states_` (skips empty queues).
  std::size_t cursor_ = 0;
  std::size_t queued_ = 0;
  double queued_cost_s_ = 0.0;
};

}  // namespace acs::serve
