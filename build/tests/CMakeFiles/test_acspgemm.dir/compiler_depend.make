# Empty compiler generated dependencies file for test_acspgemm.
# This may be replaced when dependencies are built.
