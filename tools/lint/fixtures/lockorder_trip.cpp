// Trip fixture for lock-order: two methods acquire low_m/high_m in
// opposite orders (one rank violation + one cycle), one mutex is missing
// from the registry, and the registry names a mutex that does not exist
// (4 findings).
#include "core/thread_annotations.hpp"

struct Pair {
  void forward() ACS_EXCLUDES(low_m, high_m) {
    acs::MutexLock first(low_m);
    acs::MutexLock second(high_m);
    a = b;
  }
  void backward() ACS_EXCLUDES(low_m, high_m) {
    acs::MutexLock first(high_m);
    acs::MutexLock second(low_m);  // finding: inversion (and the cycle)
    b = a;
  }
  acs::Mutex low_m;
  acs::Mutex high_m;
  int a ACS_GUARDED_BY(low_m) = 0;
  int b ACS_GUARDED_BY(high_m) = 0;
  acs::Mutex stray_m;  // finding: not ranked in the registry
  int c ACS_GUARDED_BY(stray_m) = 0;
};
