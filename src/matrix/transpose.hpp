#pragma once
/// \file transpose.hpp
/// CSR transpose. The paper evaluates A·Aᵀ for non-square matrices with a
/// precomputed transpose; this provides that precomputation.

#include "matrix/csr.hpp"

namespace acs {

/// Return the transpose of `m` in CSR form (counting-sort based, O(nnz)).
template <class T>
Csr<T> transpose(const Csr<T>& m);

extern template Csr<float> transpose(const Csr<float>&);
extern template Csr<double> transpose(const Csr<double>&);

}  // namespace acs
