#pragma once
/// \file fingerprint.hpp
/// Structure fingerprint of a multiplication job. The plan cache
/// (plan_cache.hpp) keys execution plans on it: two jobs with equal
/// fingerprints share A's sparsity structure (row-pointer hash, shape, nnz)
/// and B's shape/nnz, so they run the same global load balancing and need
/// statistically the same chunk pool. The fingerprint deliberately does not
/// hash values or B's full structure — a collision there can only cost a
/// pool restart (which the restart protocol absorbs), never correctness,
/// because plans shortcut setup work without changing results.

#include <cstdint>

#include "arch/arch_id.hpp"
#include "matrix/csr.hpp"
#include "matrix/types.hpp"

namespace acs::runtime {

struct Fingerprint {
  std::uint64_t row_ptr_hash = 0;  ///< FNV-1a over A's row-pointer array
  index_t rows_a = 0;
  index_t cols_a = 0;
  offset_t nnz_a = 0;
  index_t rows_b = 0;
  index_t cols_b = 0;
  offset_t nnz_b = 0;
  /// Backend the plan was built for (`arch::ArchId` value). Plans are
  /// arch-specific — load balancing is structural, but learned pool sizes
  /// and tuned overlays are chosen under one device's constants and grid —
  /// so two engines on different backends must never share an entry.
  /// 0 (kSimTitanXp) keeps pre-arch fingerprints stable.
  std::uint32_t arch = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;

  /// Mix of all fields, suitable for unordered containers.
  [[nodiscard]] std::uint64_t hash() const;
};

struct FingerprintHash {
  std::size_t operator()(const Fingerprint& f) const {
    return static_cast<std::size_t>(f.hash());
  }
};

/// FNV-1a over an index array (exposed for tests).
std::uint64_t hash_indices(const index_t* data, std::size_t count);

/// Fingerprint of the job C = A·B on the default backend (kSimTitanXp).
template <class T>
Fingerprint fingerprint(const Csr<T>& a, const Csr<T>& b) {
  Fingerprint f;
  f.row_ptr_hash = hash_indices(a.row_ptr.data(), a.row_ptr.size());
  f.rows_a = a.rows;
  f.cols_a = a.cols;
  f.nnz_a = a.nnz();
  f.rows_b = b.rows;
  f.cols_b = b.cols;
  f.nnz_b = b.nnz();
  return f;
}

/// Fingerprint of the job C = A·B executed on backend `id`. The engine
/// keys its plan cache (and the persistent tune cache) with this overload,
/// so the same structure tuned under two archs occupies two entries.
template <class T>
Fingerprint fingerprint(const Csr<T>& a, const Csr<T>& b, arch::ArchId id) {
  Fingerprint f = fingerprint(a, b);
  f.arch = static_cast<std::uint32_t>(id);
  return f;
}

}  // namespace acs::runtime
