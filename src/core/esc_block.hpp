#pragma once
/// \file esc_block.hpp
/// One thread block's execution of the adaptive chunk-based ESC stage
/// (Section 3.2): fetch the block's slice of A, create pointer chunks for
/// long rows, then run work-distribution-driven iterations of local
/// expand–sort–compress, carrying the last (possibly incomplete) row between
/// iterations and writing completed rows out as chunks. Supports the restart
/// protocol: on chunk-pool exhaustion the block stops, and a relaunch
/// resumes from the committed work-distribution position.

#include <cstdint>
#include <span>
#include <vector>

#include "core/chunk.hpp"
#include "core/config.hpp"
#include "matrix/csr.hpp"
#include "sim/metrics.hpp"

namespace acs {

/// Persistent per-block restart state ("restart information" of
/// Section 3.2.4), updated only at successful chunk writes so a relaunch
/// replays exactly the uncommitted work.
struct BlockState {
  /// Work-distribution elements fully represented in written chunks.
  offset_t committed = 0;
  /// Long-row pointer chunks already created (idempotent replay).
  index_t long_rows_done = 0;
  /// Per-block running chunk number (global chunk ordering).
  std::uint32_t chunk_counter = 0;
  bool finished = false;
};

template <class T>
struct EscBlockResult {
  /// Chunks successfully written this launch, in creation order.
  std::vector<Chunk<T>> chunks;
  sim::MetricCounters metrics;
  bool needs_restart = false;
  int iterations = 0;
};

/// Execute (or resume) block `block_id` of the AC-ESC stage.
/// `block_row_starts` is the global-load-balancing output (Algorithm 1).
template <class T>
EscBlockResult<T> run_esc_block(const Csr<T>& a, const Csr<T>& b,
                                std::span<const index_t> block_row_starts,
                                std::size_t block_id, const Config& cfg,
                                ChunkPool& pool, BlockState& state);

extern template EscBlockResult<float> run_esc_block(
    const Csr<float>&, const Csr<float>&, std::span<const index_t>,
    std::size_t, const Config&, ChunkPool&, BlockState&);
extern template EscBlockResult<double> run_esc_block(
    const Csr<double>&, const Csr<double>&, std::span<const index_t>,
    std::size_t, const Config&, ChunkPool&, BlockState&);

}  // namespace acs
