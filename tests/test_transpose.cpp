#include "matrix/transpose.hpp"

#include <gtest/gtest.h>

#include "matrix/generators.hpp"

namespace acs {
namespace {

TEST(Transpose, SmallKnown) {
  Csr<double> m;
  m.rows = 2;
  m.cols = 3;
  m.row_ptr = {0, 2, 3};
  m.col_idx = {0, 2, 1};
  m.values = {1, 2, 3};

  const auto t = transpose(m);
  EXPECT_EQ(t.validate(), "");
  EXPECT_EQ(t.rows, 3);
  EXPECT_EQ(t.cols, 2);
  ASSERT_EQ(t.nnz(), 3);
  // t = [1 0; 0 3; 2 0]
  EXPECT_EQ(t.row_ptr, (std::vector<index_t>{0, 1, 2, 3}));
  EXPECT_EQ(t.col_idx, (std::vector<index_t>{0, 1, 0}));
  EXPECT_EQ(t.values, (std::vector<double>{1, 3, 2}));
}

TEST(Transpose, DoubleTransposeIsIdentity) {
  const auto m = gen_uniform_random<double>(200, 120, 7.0, 3.0, 42);
  const auto tt = transpose(transpose(m));
  EXPECT_TRUE(m.equals_exact(tt));
}

TEST(Transpose, EmptyMatrix) {
  Csr<float> m;
  m.rows = 4;
  m.cols = 2;
  m.row_ptr.assign(5, 0);
  const auto t = transpose(m);
  EXPECT_EQ(t.validate(), "");
  EXPECT_EQ(t.rows, 2);
  EXPECT_EQ(t.cols, 4);
  EXPECT_EQ(t.nnz(), 0);
}

TEST(Transpose, OutputIsValidCsr) {
  const auto m = gen_powerlaw<double>(300, 150, 5.0, 1.5, 100, 7);
  EXPECT_EQ(transpose(m).validate(), "");
}

}  // namespace
}  // namespace acs
