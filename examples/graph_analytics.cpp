/// \file graph_analytics.cpp
/// Graph analytics via SpGEMM — the paper's data-analytics motivation
/// (betweenness centrality [6], cycle detection [26]). On an R-MAT graph:
///  * counts triangles with the masked product A·A (paths of length 2 that
///    close into an edge), and
///  * detects short directed cycles by checking diag(A·A) and diag(A·A·A),
///    the Yuster–Zwick rectangular-product idea at power 2/3.
///
/// Run:  ./graph_analytics [scale] [edge_factor]

#include <cstdlib>
#include <iostream>

#include "core/acspgemm.hpp"
#include "matrix/coo.hpp"
#include "matrix/generators.hpp"
#include "matrix/stats.hpp"

namespace {

/// Symmetrize and clean an adjacency matrix: undirected simple graph with
/// unit weights and no self loops.
acs::Csr<double> to_undirected(const acs::Csr<double>& g) {
  acs::Coo<double> coo;
  coo.rows = g.rows;
  coo.cols = g.cols;
  for (acs::index_t r = 0; r < g.rows; ++r) {
    for (acs::index_t k = g.row_ptr[acs::usize(r)];
         k < g.row_ptr[acs::usize(r) + 1]; ++k) {
      const acs::index_t c = g.col_idx[acs::usize(k)];
      if (c == r) continue;
      coo.push(r, c, 1.0);
      coo.push(c, r, 1.0);
    }
  }
  auto csr = coo.to_csr();
  for (auto& v : csr.values) v = 1.0;  // collapse duplicate edges
  return csr;
}

}  // namespace

int main(int argc, char** argv) {
  const int scale = argc > 1 ? std::atoi(argv[1]) : 12;
  const double ef = argc > 2 ? std::atof(argv[2]) : 8.0;

  const auto directed = acs::gen_rmat<double>(scale, ef, 0.57, 0.19, 0.19, 11);
  const auto a = to_undirected(directed);
  std::cout << "graph: " << a.rows << " vertices, "
            << a.nnz() / 2 << " undirected edges\n";

  // --- Triangle counting: sum over edges (u,v) of (A·A)[u][v], i.e. the
  // number of length-2 paths u→w→v closing each edge; every triangle is
  // counted 6 times.
  acs::SpgemmStats stats;
  const auto a2 = acs::multiply(a, a, acs::Config{}, &stats);
  double closed_wedges = 0.0;
  for (acs::index_t r = 0; r < a.rows; ++r) {
    acs::index_t ka = a.row_ptr[acs::usize(r)], k2 = a2.row_ptr[acs::usize(r)];
    while (ka < a.row_ptr[acs::usize(r) + 1] &&
           k2 < a2.row_ptr[acs::usize(r) + 1]) {
      if (a.col_idx[acs::usize(ka)] == a2.col_idx[acs::usize(k2)]) {
        closed_wedges += a2.values[acs::usize(k2)];
        ++ka;
        ++k2;
      } else if (a.col_idx[acs::usize(ka)] < a2.col_idx[acs::usize(k2)]) {
        ++ka;
      } else {
        ++k2;
      }
    }
  }
  std::cout << "triangles: " << static_cast<long long>(closed_wedges / 6.0)
            << "  (A*A simulated in " << stats.sim_time_s * 1e3 << " ms, "
            << stats.gflops() << " GFLOPS)\n";

  // --- Directed short cycles on the original graph: a non-zero k-th power
  // diagonal entry means a length-k cycle through that vertex.
  auto d2_cycles = 0, d3_cycles = 0;
  const auto d2 = acs::multiply(directed, directed);
  for (acs::index_t r = 0; r < d2.rows; ++r)
    for (acs::index_t k = d2.row_ptr[acs::usize(r)];
         k < d2.row_ptr[acs::usize(r) + 1]; ++k)
      if (d2.col_idx[acs::usize(k)] == r && d2.values[acs::usize(k)] != 0.0)
        ++d2_cycles;
  const auto d3 = acs::multiply(d2, directed);
  for (acs::index_t r = 0; r < d3.rows; ++r)
    for (acs::index_t k = d3.row_ptr[acs::usize(r)];
         k < d3.row_ptr[acs::usize(r) + 1]; ++k)
      if (d3.col_idx[acs::usize(k)] == r && d3.values[acs::usize(k)] != 0.0)
        ++d3_cycles;
  std::cout << "vertices on directed 2-cycles: " << d2_cycles << "\n";
  std::cout << "vertices on directed 3-cycles: " << d3_cycles << "\n";

  // --- 2-hop neighbourhood statistics (the A*A sparsity pattern itself).
  const auto s2 = acs::row_stats(a2);
  std::cout << "2-hop neighbourhood size: avg " << s2.avg_len << ", max "
            << s2.max_len << "\n";
  return 0;
}
