file(REMOVE_RECURSE
  "CMakeFiles/test_coo.dir/test_coo.cpp.o"
  "CMakeFiles/test_coo.dir/test_coo.cpp.o.d"
  "test_coo"
  "test_coo.pdb"
  "test_coo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
