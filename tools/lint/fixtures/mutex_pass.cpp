// Pass fixture for mutex-annotated: every mutex is an acs::Mutex and
// either guards annotated state or carries a justification.
#include "core/thread_annotations.hpp"

class Guarded {
 public:
  void bump();

 private:
  mutable acs::Mutex m_;
  int count_ ACS_GUARDED_BY(m_) = 0;
  acs::Mutex phase_m_;  // lint: allow(mutex-annotated) — orders phases, guards no data
};
