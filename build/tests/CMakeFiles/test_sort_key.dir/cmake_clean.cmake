file(REMOVE_RECURSE
  "CMakeFiles/test_sort_key.dir/test_sort_key.cpp.o"
  "CMakeFiles/test_sort_key.dir/test_sort_key.cpp.o.d"
  "test_sort_key"
  "test_sort_key.pdb"
  "test_sort_key[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sort_key.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
