/// \file test_arch.cpp
/// The arch layer's contracts (docs/BACKENDS.md):
///  * tag sanity — every compiled-in tag round-trips through ArchId,
///    to_string/parse_arch, arch_info and dispatch_arch, and SimTitanXp's
///    induced device equals the pre-arch simulator defaults exactly;
///  * the native block primitives (arch/native_exec.hpp) are drop-in
///    equivalents of the simulated ones: same sort permutation, same
///    compaction layout, same left-to-right value association;
///  * the NativeCpu backend is bit-identical to the simulated pipeline on
///    a full differential generator sweep — float and double, one and many
///    scheduler threads, long rows, shrunken block shapes;
///  * `apply_arch` resolves EngineConfig backends into runnable Configs,
///    and an Engine on NativeCpu produces bit-identical results with zero
///    simulated time;
///  * SimBigDevice's widened tuner grid selects block shapes SimTitanXp's
///    feasibility check must reject (the point of the per-arch grids).

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "arch/arch.hpp"
#include "arch/native_exec.hpp"
#include "core/acspgemm.hpp"
#include "core/compaction.hpp"
#include "core/sort_key.hpp"
#include "matrix/generators.hpp"
#include "runtime/engine.hpp"
#include "sim/block_primitives.hpp"
#include "tune/features.hpp"
#include "tune/tuner.hpp"

namespace acs {
namespace {

// --- Tag sanity -----------------------------------------------------------

TEST(ArchTags, EveryTagRoundTripsThroughIdNameAndInfo) {
  const auto& infos = arch::all_arch_infos();
  ASSERT_EQ(infos.size(), 3u);
  EXPECT_EQ(infos[0].id, arch::ArchId::kSimTitanXp);
  EXPECT_EQ(infos[1].id, arch::ArchId::kSimBigDevice);
  EXPECT_EQ(infos[2].id, arch::ArchId::kNativeCpu);

  for (const arch::ArchInfo& info : infos) {
    EXPECT_STREQ(arch::to_string(info.id), info.name);
    arch::ArchId parsed{};
    ASSERT_TRUE(arch::parse_arch(info.name, parsed)) << info.name;
    EXPECT_EQ(parsed, info.id) << info.name;
    // arch_info agrees with the tag the id dispatches to.
    const arch::ArchInfo direct = arch::arch_info(info.id);
    EXPECT_EQ(direct.exec, info.exec);
    EXPECT_EQ(direct.device, info.device);
  }

  arch::ArchId out = arch::ArchId::kNativeCpu;
  EXPECT_FALSE(arch::parse_arch("no-such-backend", out));
  EXPECT_FALSE(arch::parse_arch(nullptr, out));
  EXPECT_EQ(out, arch::ArchId::kNativeCpu);  // untouched on failure

  EXPECT_STREQ(arch::to_string(arch::ExecKind::kSimulated), "simulated");
  EXPECT_STREQ(arch::to_string(arch::ExecKind::kNative), "native");
}

TEST(ArchTags, SimTitanXpIsBitCompatibleWithPreArchDefaults) {
  // The default tag must induce exactly the simulator's default device —
  // this is what keeps pre-arch fingerprints, plans and cost predictions
  // stable after the refactor.
  EXPECT_EQ(arch::device_config<arch::SimTitanXp>(), sim::DeviceConfig{});
  EXPECT_EQ(Config{}.exec, arch::ExecKind::kSimulated);
}

TEST(ArchTags, NativeCpuMirrorsTitanGeometryAndBigDeviceWidens) {
  // NativeCpu: same block geometry as the titan (bit-identity depends on
  // it), different execution kind.
  EXPECT_EQ(arch::device_config<arch::NativeCpu>(),
            arch::device_config<arch::SimTitanXp>());
  EXPECT_EQ(arch::NativeCpu::kExec, arch::ExecKind::kNative);
  // SimBigDevice: double the scratchpad, more SMs — the widened feasible
  // region the per-arch tuner grid exploits.
  EXPECT_EQ(arch::SimBigDevice::kScratchpadBytes, 96 * 1024);
  EXPECT_GT(arch::SimBigDevice::kNumSms, arch::SimTitanXp::kNumSms);
}

TEST(ArchTags, UnknownIdsDispatchAsTheDefaultBackend) {
  const auto unknown = static_cast<arch::ArchId>(0xdeadu);
  const arch::ArchInfo info = arch::arch_info(unknown);
  EXPECT_EQ(info.id, arch::ArchId::kSimTitanXp);
  EXPECT_STREQ(arch::to_string(unknown), "?");
}

// --- Native primitive equivalence -----------------------------------------

TEST(NativePrimitives, RadixSortMatchesSimPermutationIncludingStability) {
  std::mt19937_64 rng(42);
  for (const int bits : {1, 4, 11, 13, 22, 31}) {
    const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
    std::vector<std::uint64_t> keys(777);
    // Payloads are unique, so stable sorts of duplicate-heavy keys must
    // agree element-for-element, not just key-for-key.
    std::vector<double> vals(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      keys[i] = rng() & mask & 0xff;  // few distinct keys -> many duplicates
      vals[i] = static_cast<double>(i);
    }
    auto sim_keys = keys;
    auto sim_vals = vals;
    sim::MetricCounters m;
    sim::block_radix_sort(std::span(sim_keys), std::span(sim_vals), bits, m);

    auto nat_keys = keys;
    auto nat_vals = vals;
    arch::NativeSortScratch<std::uint64_t, double> scratch;
    arch::native_radix_sort(std::span(nat_keys), std::span(nat_vals), bits,
                            scratch);
    EXPECT_EQ(nat_keys, sim_keys) << "bits=" << bits;
    EXPECT_EQ(nat_vals, sim_vals) << "bits=" << bits;
  }
}

TEST(NativePrimitives, CompactionMatchesSimLayoutAndAssociation) {
  // Rows of varying duplication, sorted, compacted by both paths.
  const KeyCodec codec = KeyCodec::make(0, 30, 0, 1000, true, 255, 1023);
  std::vector<std::uint64_t> keys;
  std::vector<double> vals;
  std::mt19937_64 rng(7);
  for (index_t row = 0; row <= 30; ++row) {
    index_t col = 0;
    while (col < 900) {
      const int dups = 1 + static_cast<int>(rng() % 5);
      for (int d = 0; d < dups; ++d) {
        keys.push_back(codec.encode(row, col));
        // 0.1 is not exactly representable: any change in association or
        // combine order shows up in the low mantissa bits.
        vals.push_back(0.1 * static_cast<double>(rng() % 97) + 0.1);
      }
      col += 1 + static_cast<index_t>(rng() % 200);
    }
  }

  sim::MetricCounters m;
  const CompactionOutput<double> simc = compact_sorted<double>(
      std::span<const std::uint64_t>(keys), std::span<const double>(vals),
      codec, m);
  CompactionOutput<double> natc;
  arch::native_compact_sorted(std::span<const std::uint64_t>(keys),
                              std::span<const double>(vals), codec, natc);
  EXPECT_EQ(natc.keys, simc.keys);
  EXPECT_EQ(natc.vals, simc.vals);  // element-exact: same association
  EXPECT_EQ(natc.rows, simc.rows);
}

TEST(NativePrimitives, CompactionEnforcesTheSameCounterBound) {
  const KeyCodec codec = KeyCodec::make(0, 0, 0, 0, false, 255, 1 << 20);
  std::vector<std::uint64_t> keys(arch::kNativeCompactMaxElements + 1);
  for (std::size_t i = 0; i < keys.size(); ++i)
    keys[i] = codec.encode(0, static_cast<index_t>(i));
  const std::vector<double> vals(keys.size(), 1.0);
  CompactionOutput<double> out;
  EXPECT_THROW(arch::native_compact_sorted(std::span<const std::uint64_t>(keys),
                                           std::span<const double>(vals),
                                           codec, out),
               std::length_error);
}

// --- NativeCpu differential sweep -----------------------------------------

/// Multiply under the simulated default and under NativeCpu (one and four
/// scheduler threads); all three results must be bit-identical. No
/// quantization: the native backend promises the exact same floating-point
/// program, so even untamed values must match to the last bit.
template <class T>
void expect_native_matches_sim(const Csr<T>& a, const Csr<T>& b, Config cfg,
                               const std::string& label) {
  const Csr<T> sim_out = multiply(a, b, cfg);

  Config nat = cfg;
  nat.exec = arch::ExecKind::kNative;
  nat.device = arch::device_config<arch::NativeCpu>();
  const Csr<T> nat1 = multiply(a, b, nat);
  EXPECT_TRUE(nat1.equals_exact(sim_out)) << label << ": native-1 vs sim";

  nat.scheduler_threads = 4;
  const Csr<T> nat4 = multiply(a, b, nat);
  EXPECT_TRUE(nat4.equals_exact(sim_out)) << label << ": native-4 vs sim";
}

TEST(NativeBackend, GeneratorSweepDoubleIsBitIdentical) {
  struct Case {
    std::string name;
    Csr<double> a;
  };
  std::vector<Case> cases;
  cases.push_back({"uniform", gen_uniform_random<double>(300, 300, 6.0, 2.0, 201)});
  cases.push_back({"local", gen_uniform_local<double>(300, 300, 8.0, 2.0, 40, 202)});
  cases.push_back({"powerlaw", gen_powerlaw<double>(300, 300, 5.0, 1.6, 120, 203)});
  cases.push_back({"banded", gen_banded<double>(256, 4, 204)});
  cases.push_back({"stencil2d", gen_stencil_2d<double>(20, 20, 205)});
  cases.push_back({"stencil3d", gen_stencil_3d<double>(8, 8, 8, 206)});
  cases.push_back({"blockdense", gen_block_dense<double>(200, 200, 12, 2, 207)});
  for (const auto& c : cases)
    expect_native_matches_sim(c.a, c.a, Config{}, c.name + " A*A");
}

TEST(NativeBackend, GeneratorSweepFloatIsBitIdentical) {
  const auto u = gen_uniform_random<float>(250, 250, 5.0, 1.0, 211);
  const auto p = gen_powerlaw<float>(250, 250, 4.0, 1.5, 80, 212);
  expect_native_matches_sim(u, u, Config{}, "uniform float A*A");
  expect_native_matches_sim(p, p, Config{}, "powerlaw float A*A");
}

TEST(NativeBackend, SmallBlocksAndLongRowsStayBitIdentical) {
  // Shrunken block resources force multi-chunk rows, carries and restarts
  // through the Path/Search merge paths; long rows of B exercise the
  // pointer-chunk special case. The native pipeline must track every one.
  const auto a = gen_powerlaw<double>(300, 300, 6.0, 1.5, 120, 221);
  for (int nnz_per_block : {32, 64}) {
    Config cfg;
    cfg.nnz_per_block = nnz_per_block;
    expect_native_matches_sim(a, a, cfg,
                              "nnz_per_block=" + std::to_string(nnz_per_block));
  }
  const auto base = gen_uniform_random<double>(200, 200, 4.0, 1.0, 222);
  const auto lr = inject_long_rows(base, 3, 1200, 223);
  expect_native_matches_sim(lr, lr, Config{}, "long rows");
}

// --- apply_arch and the engine --------------------------------------------

TEST(ApplyArch, DefaultArchLeavesTheConfigUntouched) {
  runtime::EngineConfig ec;  // arch = kSimTitanXp
  Config cfg;
  cfg.nnz_per_block = 512;
  const Config before = cfg;
  runtime::apply_arch(cfg, ec);
  EXPECT_EQ(cfg.exec, before.exec);
  EXPECT_EQ(cfg.device, before.device);
  EXPECT_EQ(cfg.nnz_per_block, 512);
}

TEST(ApplyArch, NativeCpuResolvesExecAndThreads) {
  runtime::EngineConfig ec;
  ec.arch = arch::ArchId::kNativeCpu;
  ec.native_threads = 3;
  Config cfg;
  runtime::apply_arch(cfg, ec);
  EXPECT_EQ(cfg.exec, arch::ExecKind::kNative);
  EXPECT_EQ(cfg.device, arch::device_config<arch::NativeCpu>());
  EXPECT_EQ(cfg.scheduler_threads, 3u);

  // native_threads = 0: resolved from the host (never left at zero).
  ec.native_threads = 0;
  Config auto_cfg;
  runtime::apply_arch(auto_cfg, ec);
  EXPECT_GE(auto_cfg.scheduler_threads, 1u);
}

TEST(ApplyArch, SimBigDeviceSwapsTheSimulatedDevice) {
  runtime::EngineConfig ec;
  ec.arch = arch::ArchId::kSimBigDevice;
  Config cfg;
  runtime::apply_arch(cfg, ec);
  EXPECT_EQ(cfg.exec, arch::ExecKind::kSimulated);
  EXPECT_EQ(cfg.device, arch::device_config<arch::SimBigDevice>());
  EXPECT_EQ(cfg.scheduler_threads, 1u);  // simulated default untouched
}

TEST(Engine, NativeCpuEngineIsBitIdenticalWithZeroSimulatedTime) {
  const auto a = gen_powerlaw<double>(300, 300, 5.0, 1.5, 120, 231);
  const auto b = gen_uniform_random<double>(300, 300, 4.0, 1.0, 232);
  std::vector<std::pair<Csr<double>, Csr<double>>> pairs;
  pairs.emplace_back(a, a);
  pairs.emplace_back(a, b);
  pairs.emplace_back(a, a);  // repeat fingerprint: warm plan on the native side too

  runtime::Engine<double> sim_engine;
  const auto sim_res = sim_engine.multiply_batch(pairs);

  runtime::EngineConfig nat_ec;
  nat_ec.arch = arch::ArchId::kNativeCpu;
  nat_ec.native_threads = 2;
  runtime::Engine<double> nat_engine(nat_ec);
  const auto nat_res = nat_engine.multiply_batch(pairs);

  ASSERT_EQ(nat_res.size(), sim_res.size());
  for (std::size_t i = 0; i < nat_res.size(); ++i) {
    ASSERT_FALSE(nat_res[i].failed()) << "job " << i;
    EXPECT_TRUE(nat_res[i].c.equals_exact(sim_res[i].c)) << "job " << i;
    EXPECT_EQ(nat_res[i].stats.sim_time_s, 0.0) << "job " << i;
    EXPECT_GT(sim_res[i].stats.sim_time_s, 0.0) << "job " << i;
  }
  EXPECT_TRUE(nat_res[2].plan_hit);  // repeat hit the native arch's entry
}

// --- SimBigDevice tuner ----------------------------------------------------

TEST(BigDeviceTuner, SelectsBlockShapesTitanMustReject) {
  // On the big device the widened grid wins with nnz_per_block >= 1024 —
  // a shape whose double-width ESC working set exceeds the Titan Xp's
  // 48 KiB scratchpad, so its feasibility check must prune it.
  const auto a = gen_uniform_random<double>(600, 600, 12.0, 3.0, 241);
  const auto f = tune::extract_features(a, a);

  Config big_base;
  big_base.device = arch::device_config<arch::SimBigDevice>();
  const tune::AutoTuner big_tuner(
      tune::default_tuner_options(arch::ArchId::kSimBigDevice));
  const TunedParams winner = big_tuner.choose(f, big_base, sizeof(double));
  ASSERT_TRUE(winner.valid);
  EXPECT_GE(winner.nnz_per_block, 1024);

  // The winning overlay fits the big device but not the titan.
  Config on_big = big_base;
  winner.apply(on_big);
  EXPECT_TRUE(tune::fits_device(on_big, sizeof(double)));
  Config on_titan;
  on_titan.device = arch::device_config<arch::SimTitanXp>();
  winner.apply(on_titan);
  EXPECT_FALSE(tune::fits_device(on_titan, sizeof(double)));

  // And the titan's own default grid never offers that shape: its best
  // candidate under the same features stays feasible on the titan.
  const tune::AutoTuner titan_tuner(
      tune::default_tuner_options(arch::ArchId::kSimTitanXp));
  const TunedParams titan_winner = titan_tuner.choose(f, Config{}, sizeof(double));
  ASSERT_TRUE(titan_winner.valid);
  Config titan_cfg;
  titan_winner.apply(titan_cfg);
  EXPECT_TRUE(tune::fits_device(titan_cfg, sizeof(double)));
}

}  // namespace
}  // namespace acs
