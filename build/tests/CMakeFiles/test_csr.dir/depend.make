# Empty dependencies file for test_csr.
# This may be replaced when dependencies are built.
