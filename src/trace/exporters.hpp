#pragma once
/// \file exporters.hpp
/// Serialization of a `TraceSession` for three consumers:
///  * `to_chrome_json` — Chrome `trace_event` JSON (load in Perfetto /
///    chrome://tracing). Spans are laid out on the *simulated* timeline:
///    a span's duration is its attributed simulated time plus that of its
///    children, so the per-stage totals visible in the viewer equal the
///    Fig. 7 breakdown exactly. Wall-clock times ride along in `args`.
///  * `to_flat_json` — flat per-span-name aggregation plus all counters,
///    the machine-readable form the benches embed in their reports.
///  * `to_table` — human-readable text table for examples and debugging.

#include <array>
#include <string>
#include <vector>

#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace acs::trace {

struct ExportOptions {
  /// Include host wall-clock fields. Wall times vary run to run; switch
  /// them off to get byte-identical output for golden tests.
  bool include_wall = true;
};

[[nodiscard]] std::string to_chrome_json(const TraceSession& session,
                                         const ExportOptions& opts = {});
[[nodiscard]] std::string to_flat_json(const TraceSession& session,
                                       const ExportOptions& opts = {});
[[nodiscard]] std::string to_table(const TraceSession& session);

/// Serving-layer view of a `MetricsSnapshot` (serve::Server::metrics()):
/// the aggregate serve counters plus one row per tenant. Deterministic —
/// no wall-clock fields — so both are golden-testable.
[[nodiscard]] std::string to_table(const MetricsSnapshot& m);
[[nodiscard]] std::string to_flat_json(const MetricsSnapshot& m);

/// Simulated time summed per canonical stage (see `kStageNames`) over all
/// spans that are `root` or descendants of `root`; `root == kNoSpan` sums
/// the whole session.
[[nodiscard]] std::array<double, kNumStages> sim_stage_totals(
    const std::vector<SpanRecord>& spans, SpanId root = kNoSpan);

/// Stage totals, pipeline counters and span-derived wall/sim sums of a
/// session, as one aggregatable snapshot (jobs is the number of root spans).
[[nodiscard]] MetricsSnapshot session_metrics(const TraceSession& session);

}  // namespace acs::trace
