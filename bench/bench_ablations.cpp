/// \file bench_ablations.cpp
/// Ablations of the design choices DESIGN.md calls out:
///  * multi-iteration local ESC vs flush-every-iteration (retain = 4 vs 0)
///    — the paper's "considerably reducing memory bandwidth, global sorting
///    and compaction costs" claim;
///  * dynamic sort-bit reduction vs static key width — the radix-sort work
///    saving of Section 3.2.3;
///  * long-row special handling on/off — Section 3.4's "avoid these
///    unnecessary computations".

#include <iostream>

#include "core/acspgemm.hpp"
#include "matrix/transpose.hpp"
#include "suite/suite.hpp"
#include "suite/table.hpp"

namespace {

using namespace acs;

void compare(const char* title, const char* metric_label,
             const std::vector<const SuiteEntry*>& entries, const Config& on,
             const Config& off,
             std::uint64_t sim::MetricCounters::* metric) {
  std::cout << title << "\n";
  TextTable table({"matrix", "sim ms (on)", "sim ms (off)", "speedup",
                   std::string(metric_label) + " (on)",
                   std::string(metric_label) + " (off)"});
  for (const SuiteEntry* entry : entries) {
    const auto a = build_matrix<double>(*entry);
    const auto b = entry->square ? a : transpose(a);
    SpgemmStats s_on, s_off;
    multiply(a, b, on, &s_on);
    multiply(a, b, off, &s_off);
    table.add_row({entry->name, TextTable::num(s_on.sim_time_s * 1e3, 3),
                   TextTable::num(s_off.sim_time_s * 1e3, 3),
                   TextTable::num(s_off.sim_time_s / s_on.sim_time_s, 2) + "x",
                   TextTable::si(static_cast<double>(s_on.metrics.*metric)),
                   TextTable::si(static_cast<double>(s_off.metrics.*metric))});
  }
  std::cout << table.str() << "\n";
}

}  // namespace

int main() {
  std::vector<const SuiteEntry*> picks;
  for (const auto& entry : showcase_suite())
    if (entry.name == "scircuit-like" || entry.name == "144-like" ||
        entry.name == "filter3D-like" || entry.name == "cant-like" ||
        entry.name == "webbase-like")
      picks.push_back(&entry);

  {
    Config on, off;
    off.retain_per_thread = 0;
    compare("Ablation 1: multi-iteration local ESC (retain=4) vs "
            "flush-every-iteration (retain=0, prior-work behaviour)",
            "global bytes", picks, on, off,
            &sim::MetricCounters::global_bytes_coalesced);
  }
  {
    Config on, off;
    off.dynamic_bits = false;
    compare("Ablation 2: dynamic sort-bit reduction vs static key width",
            "sort work", picks, on, off,
            &sim::MetricCounters::sort_pass_elements);
  }
  {
    std::vector<const SuiteEntry*> longrow_picks;
    for (const auto& entry : showcase_suite())
      if (entry.name == "webbase-like" || entry.name == "language-like" ||
          entry.name == "bibd-like")
        longrow_picks.push_back(&entry);
    Config on, off;
    off.long_row_handling = false;
    compare("Ablation 3: long-row pointer chunks vs processing long rows "
            "through ESC",
            "sort work", longrow_picks, on, off,
            &sim::MetricCounters::sort_pass_elements);
  }
  return 0;
}
