/// Differential testing of the full AC-SpGEMM pipeline against the two
/// reference implementations: `spa_multiply` (Gustavson row-by-row with a
/// dense accumulator) and `esc_global_multiply` (global-memory ESC). All
/// operands are quantized (values in multiples of 0.25, see test_util.hpp)
/// so any accumulation order produces bit-identical sums — the three
/// algorithms must then agree exactly, not just approximately.
///
/// Beyond the generator sweep, dedicated cases shrink `nnz_per_block` so
/// rows split across three or more chunks, driving the Path and Search
/// merge paths; trace counters prove the intended merge case actually ran.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "baselines/esc_global.hpp"
#include "baselines/spa_gustavson.hpp"
#include "core/acspgemm.hpp"
#include "matrix/generators.hpp"
#include "matrix/transpose.hpp"
#include "test_util.hpp"
#include "trace/trace.hpp"

namespace acs {
namespace {

template <class T>
void expect_all_agree(const Csr<T>& a, const Csr<T>& b, const Config& cfg,
                      const std::string& label) {
  const Csr<T> adaptive = multiply(a, b, cfg);
  const Csr<T> spa = spa_multiply(a, b);
  const Csr<T> esc = esc_global_multiply(a, b);
  EXPECT_TRUE(adaptive.equals_exact(spa)) << label << ": vs spa_gustavson";
  EXPECT_TRUE(adaptive.equals_exact(esc)) << label << ": vs esc_global";
}

TEST(Differential, GeneratorSweepDouble) {
  struct Case {
    std::string name;
    Csr<double> a;
  };
  std::vector<Case> cases;
  cases.push_back({"uniform", gen_uniform_random<double>(300, 300, 6.0, 2.0, 101)});
  cases.push_back({"local", gen_uniform_local<double>(300, 300, 8.0, 2.0, 40, 102)});
  cases.push_back({"powerlaw", gen_powerlaw<double>(300, 300, 5.0, 1.6, 120, 103)});
  cases.push_back({"banded", gen_banded<double>(256, 4, 104)});
  cases.push_back({"stencil2d", gen_stencil_2d<double>(20, 20, 105)});
  cases.push_back({"stencil3d", gen_stencil_3d<double>(8, 8, 8, 106)});
  cases.push_back({"blockdense", gen_block_dense<double>(200, 200, 12, 2, 107)});

  for (auto& c : cases) {
    c.a = testutil::quantize(std::move(c.a));
    expect_all_agree(c.a, c.a, Config{}, c.name + " A*A");
  }
}

TEST(Differential, GeneratorSweepFloat) {
  auto a = testutil::quantize(gen_uniform_random<float>(250, 250, 5.0, 1.0, 111));
  auto g = testutil::quantize(gen_powerlaw<float>(250, 250, 4.0, 1.5, 80, 112));
  expect_all_agree(a, a, Config{}, "uniform float A*A");
  expect_all_agree(g, g, Config{}, "powerlaw float A*A");
}

TEST(Differential, RectangularAxAt) {
  // The paper's non-square setup: A * A^T through a precomputed transpose.
  auto a = testutil::quantize(gen_uniform_random<double>(220, 150, 5.0, 2.0, 121));
  const auto at = transpose(a);
  expect_all_agree(a, at, Config{}, "rect A*At");
}

TEST(Differential, ConfigSweepSmallBlocks) {
  // Shrunken block resources change chunking, iteration counts and merge
  // batching — the result must not.
  auto a = testutil::quantize(gen_powerlaw<double>(300, 300, 6.0, 1.5, 120, 131));
  for (int nnz_per_block : {32, 64, 128}) {
    Config cfg;
    cfg.nnz_per_block = nnz_per_block;
    expect_all_agree(a, a, cfg,
                     "nnz_per_block=" + std::to_string(nnz_per_block));
  }
  Config tiny;
  tiny.threads = 32;
  tiny.elements_per_thread = 4;
  tiny.retain_per_thread = 2;
  expect_all_agree(a, a, tiny, "tiny block shape");
}

/// Multiply under `cfg` with a trace session attached and return the
/// per-merge-case row counts — the proof a given merge path actually ran.
template <class T>
std::array<std::uint64_t, 3> traced_merge_rows(const Csr<T>& a, const Csr<T>& b,
                                               Config cfg) {
  trace::TraceSession session;
  cfg.trace = &session;
  const Csr<T> adaptive = multiply(a, b, cfg);
  EXPECT_TRUE(adaptive.equals_exact(spa_multiply(a, b)));
  EXPECT_TRUE(adaptive.equals_exact(esc_global_multiply(a, b)));
  return session.counters_snapshot().merge_case_rows;
}

TEST(Differential, RowsAcrossManyChunksExercisePathMerge) {
  // avg row length ~60 with 16 nnz per block: rows span >= 3 chunks, within
  // path_merge_max_chunks (8) — Path Merge territory.
  auto a = testutil::quantize(gen_uniform_random<double>(120, 120, 60.0, 8.0, 141));
  Config cfg;
  cfg.nnz_per_block = 16;
  const auto rows = traced_merge_rows(a, a, cfg);
  EXPECT_GT(rows[trace::kPathMerge], 0u);
}

TEST(Differential, ChunkCountBeyondPathLimitFallsToSearchMerge) {
  auto a = testutil::quantize(gen_uniform_random<double>(120, 120, 60.0, 8.0, 142));
  Config cfg;
  cfg.nnz_per_block = 16;
  cfg.path_merge_max_chunks = 2;  // >2 chunks per row -> Search Merge
  const auto rows = traced_merge_rows(a, a, cfg);
  EXPECT_GT(rows[trace::kSearchMerge], 0u);
}

TEST(Differential, LongRowsOfBMatchBaselines) {
  const auto base = gen_uniform_random<double>(200, 200, 4.0, 1.0, 151);
  auto a = testutil::quantize(inject_long_rows(base, 3, 1200, 152));
  Config cfg;
  EXPECT_TRUE(cfg.long_row_handling);
  expect_all_agree(a, a, cfg, "long rows");
}

}  // namespace
}  // namespace acs
