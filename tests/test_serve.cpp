#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <limits>
#include <thread>
#include <string>
#include <utility>
#include <vector>

#include "core/acspgemm.hpp"
#include "matrix/generators.hpp"
#include "serve/server.hpp"
#include "tune/features.hpp"
#include "tune/predictor.hpp"

namespace acs::serve {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The serving layer's price for C = A·B under `cfg` — same features, same
/// predictor, same defaults as Server::submit (safety factor 1 assumed).
double probe_cost(const Csr<double>& a, const Csr<double>& b,
                  const Config& cfg = {}) {
  const tune::TunerOptions opts;
  const auto f =
      tune::extract_features(a, b, opts.sample_stride, opts.min_samples);
  return tune::predict_makespan_s(f, cfg, sizeof(double));
}

// --- ServeQuota (token bucket) --------------------------------------------

TEST(ServeQuota, UnmeteredBucketAlwaysAdmits) {
  TokenBucket b;  // default: rate 0 = unmetered
  EXPECT_TRUE(b.unmetered());
  EXPECT_TRUE(b.try_consume(0.0, 1e9));
  EXPECT_TRUE(b.try_consume(0.0, 1e9));
  TokenBucket zero_rate(0.0, 5.0);
  EXPECT_TRUE(zero_rate.unmetered());
  EXPECT_TRUE(zero_rate.try_consume(0.0, 123.0));
}

TEST(ServeQuota, BurstBoundsUpfrontSpending) {
  TokenBucket b(1.0, 2.0);  // 1 cost-s/s refill, 2 cost-s capacity
  EXPECT_FALSE(b.unmetered());
  EXPECT_TRUE(b.try_consume(0.0, 1.5));   // initial fill = burst
  EXPECT_FALSE(b.try_consume(0.0, 1.0));  // only 0.5 left
  EXPECT_TRUE(b.try_consume(0.0, 0.5));
  EXPECT_FALSE(b.try_consume(0.0, 0.1));
}

TEST(ServeQuota, RefillsOverVirtualTimeAndCapsAtBurst) {
  TokenBucket b(1.0, 2.0);
  ASSERT_TRUE(b.try_consume(0.0, 2.0));  // empty the bucket
  EXPECT_FALSE(b.try_consume(0.5, 1.0));  // only 0.5 refilled
  EXPECT_TRUE(b.try_consume(1.5, 1.0));   // 1.5 virtual seconds elapsed
  // Idle for ages: capped at burst, not rate * elapsed.
  EXPECT_NEAR(b.available(100.0), 2.0, 1e-12);
  EXPECT_FALSE(b.try_consume(100.0, 2.5));
}

TEST(ServeQuota, ClockNeverRunsBackwards) {
  TokenBucket b(1.0, 4.0);
  ASSERT_TRUE(b.try_consume(10.0, 4.0));
  // An earlier timestamp neither refills nor rewinds.
  EXPECT_NEAR(b.available(3.0), 0.0, 1e-12);
  EXPECT_NEAR(b.available(11.0), 1.0, 1e-12);
}

TEST(ServeQuota, SlackAdmitsExactlySizedBurst) {
  // burst sized for exactly ten jobs: accumulated subtraction error must
  // not starve the tenth.
  TokenBucket b(1e-9, 10 * 0.1);
  for (int i = 0; i < 10; ++i)
    EXPECT_TRUE(b.try_consume(0.0, 0.1)) << "job " << i;
  EXPECT_FALSE(b.try_consume(0.0, 0.1));
}

// --- ServeDrr (deficit round robin) ---------------------------------------

std::vector<std::size_t> pop_order(DrrScheduler& drr, std::size_t n) {
  std::vector<std::size_t> order;
  QueuedJob j;
  std::size_t t = 0;
  while (order.size() < n && drr.pop_next(j, &t)) order.push_back(t);
  return order;
}

TEST(ServeDrr, EqualWeightsShareServiceEvenly) {
  DrrScheduler drr(0.25);
  const std::size_t a = drr.add_tenant(1.0);
  const std::size_t b = drr.add_tenant(1.0);
  for (std::uint64_t i = 0; i < 8; ++i) {
    drr.enqueue(a, QueuedJob{i, 1.0, 0, 0.0});
    drr.enqueue(b, QueuedJob{100 + i, 1.0, 0, 0.0});
  }
  EXPECT_EQ(drr.queued_jobs(), 16u);
  EXPECT_NEAR(drr.queued_cost_s(), 16.0, 1e-12);

  const auto order = pop_order(drr, 16);
  ASSERT_EQ(order.size(), 16u);
  // Any 8-dispatch prefix splits close to evenly between equal weights
  // (DRR's service lag is bounded by one job plus one quantum).
  const auto head_a = static_cast<std::size_t>(
      std::count(order.begin(), order.begin() + 8, a));
  EXPECT_GE(head_a, 3u);
  EXPECT_LE(head_a, 5u);
  EXPECT_EQ(std::count(order.begin(), order.end(), a), 8);
  EXPECT_EQ(drr.queued_jobs(), 0u);
}

TEST(ServeDrr, WeightsSkewServiceProportionally) {
  DrrScheduler drr(0.25);
  const std::size_t heavy = drr.add_tenant(3.0);
  const std::size_t light = drr.add_tenant(1.0);
  for (std::uint64_t i = 0; i < 8; ++i) {
    drr.enqueue(heavy, QueuedJob{i, 1.0, 0, 0.0});
    drr.enqueue(light, QueuedJob{100 + i, 1.0, 0, 0.0});
  }
  const auto order = pop_order(drr, 16);
  ASSERT_EQ(order.size(), 16u);
  const auto head_heavy = static_cast<std::size_t>(
      std::count(order.begin(), order.begin() + 8, heavy));
  // 3:1 weights: about six of the first eight dispatches are heavy's.
  EXPECT_GE(head_heavy, 5u);
  EXPECT_LE(head_heavy, 7u);
}

TEST(ServeDrr, FifoWithinTenantAndDeterministicReplay) {
  const auto run = [] {
    DrrScheduler drr(0.5);
    const std::size_t t0 = drr.add_tenant(1.0);
    const std::size_t t1 = drr.add_tenant(2.0);
    drr.enqueue(t0, QueuedJob{0, 0.7, 0, 0.0});
    drr.enqueue(t0, QueuedJob{1, 0.2, 0, 0.1});
    drr.enqueue(t1, QueuedJob{2, 1.4, 0, 0.0});
    drr.enqueue(t1, QueuedJob{3, 0.3, 0, 0.2});
    std::vector<std::uint64_t> ids;
    QueuedJob j;
    while (drr.pop_next(j)) ids.push_back(j.id);
    return ids;
  };
  const auto ids = run();
  ASSERT_EQ(ids.size(), 4u);
  // FIFO within each tenant, whatever the interleaving.
  EXPECT_LT(std::find(ids.begin(), ids.end(), 0),
            std::find(ids.begin(), ids.end(), 1));
  EXPECT_LT(std::find(ids.begin(), ids.end(), 2),
            std::find(ids.begin(), ids.end(), 3));
  EXPECT_EQ(run(), ids);  // byte-identical replay
}

TEST(ServeDrr, RequeueFrontRestoresHeadAndDeficit) {
  DrrScheduler drr(1.0);
  const std::size_t t = drr.add_tenant(1.0);
  drr.enqueue(t, QueuedJob{7, 0.5, 0, 0.0});
  drr.enqueue(t, QueuedJob{8, 0.5, 0, 0.0});
  QueuedJob j;
  ASSERT_TRUE(drr.pop_next(j));
  EXPECT_EQ(j.id, 7u);
  drr.requeue_front(t, j);  // could not dispatch: put it back
  EXPECT_EQ(drr.queued_jobs(), 2u);
  ASSERT_TRUE(drr.pop_next(j));
  EXPECT_EQ(j.id, 7u);  // still the head, not reordered behind 8
}

TEST(ServeDrr, ShedPicksLowestPriorityLatestArrivalHighestId) {
  DrrScheduler drr(1.0);
  const std::size_t t0 = drr.add_tenant(1.0);
  const std::size_t t1 = drr.add_tenant(1.0);
  drr.enqueue(t0, QueuedJob{0, 1.0, 5, 0.0});
  drr.enqueue(t0, QueuedJob{1, 1.0, 1, 0.0});
  drr.enqueue(t1, QueuedJob{2, 1.0, 1, 2.0});
  drr.enqueue(t1, QueuedJob{3, 1.0, 1, 2.0});

  QueuedJob victim;
  std::size_t vt = 0;
  // Priority 1 ties; arrival 2.0 ties between ids 2 and 3; highest id loses.
  ASSERT_TRUE(drr.shed_lowest_priority(victim, &vt));
  EXPECT_EQ(victim.id, 3u);
  EXPECT_EQ(vt, t1);
  ASSERT_TRUE(drr.shed_lowest_priority(victim, &vt));
  EXPECT_EQ(victim.id, 2u);  // next-latest arrival at priority 1
  ASSERT_TRUE(drr.shed_lowest_priority(victim, &vt));
  EXPECT_EQ(victim.id, 1u);
  ASSERT_TRUE(drr.shed_lowest_priority(victim, &vt));
  EXPECT_EQ(victim.id, 0u);
  EXPECT_FALSE(drr.shed_lowest_priority(victim, &vt));
  EXPECT_EQ(drr.queued_jobs(), 0u);
  EXPECT_NEAR(drr.queued_cost_s(), 0.0, 1e-12);
}

// --- ServeAdmission (virtual-time admission model) ------------------------

TEST(ServeAdmission, AdmitsIdleAndPricesBacklog) {
  AdmissionModel model(AdmissionConfig{1, 1.0, 0});
  const auto d1 = model.evaluate(0.0, kInf, 1.0);
  EXPECT_TRUE(d1.admitted());
  EXPECT_EQ(d1.backlog_jobs, 0u);
  EXPECT_DOUBLE_EQ(d1.predicted_wait_s, 0.0);
  EXPECT_DOUBLE_EQ(d1.predicted_finish_s, 1.0);

  const auto d2 = model.evaluate(0.0, kInf, 1.0);
  EXPECT_TRUE(d2.admitted());
  EXPECT_EQ(d2.backlog_jobs, 1u);
  EXPECT_DOUBLE_EQ(d2.predicted_wait_s, 1.0);  // queued behind the first
  EXPECT_DOUBLE_EQ(d2.predicted_finish_s, 2.0);
}

TEST(ServeAdmission, RejectsDeadlineBlowersWithoutCommitting) {
  AdmissionModel model(AdmissionConfig{1, 1.0, 0});
  ASSERT_TRUE(model.evaluate(0.0, kInf, 1.0).admitted());
  const auto rej = model.evaluate(0.0, 1.5, 1.0);  // finish 2.0 > 1.5
  EXPECT_EQ(rej.outcome, AdmissionOutcome::kRejectedDeadline);
  EXPECT_DOUBLE_EQ(rej.predicted_finish_s, 2.0);
  // The rejection did not occupy the model: the same request with a
  // workable deadline is admitted at the same predicted slot.
  const auto ok = model.evaluate(0.0, 2.0, 1.0);
  EXPECT_TRUE(ok.admitted());
  EXPECT_DOUBLE_EQ(ok.predicted_finish_s, 2.0);
}

TEST(ServeAdmission, QueueCapRejectsWhenBacklogFull) {
  AdmissionModel model(AdmissionConfig{1, 1.0, 2});
  ASSERT_TRUE(model.evaluate(0.0, kInf, 1.0).admitted());
  ASSERT_TRUE(model.evaluate(0.0, kInf, 1.0).admitted());
  const auto rej = model.evaluate(0.0, kInf, 1.0);
  EXPECT_EQ(rej.outcome, AdmissionOutcome::kRejectedQueueFull);
  EXPECT_EQ(rej.backlog_jobs, 2u);
  // The backlog drains on the virtual clock: the same submission later is
  // admitted again.
  EXPECT_TRUE(model.evaluate(2.5, kInf, 1.0).admitted());
}

TEST(ServeAdmission, BacklogDrainsWithVirtualClock) {
  AdmissionModel model(AdmissionConfig{1, 1.0, 0});
  ASSERT_TRUE(model.evaluate(0.0, kInf, 1.0).admitted());
  EXPECT_EQ(model.backlog_jobs(0.5), 1u);
  EXPECT_EQ(model.backlog_jobs(1.0), 0u);  // finish times <= now drop out
  const auto d = model.evaluate(3.0, kInf, 1.0);
  EXPECT_DOUBLE_EQ(d.predicted_wait_s, 0.0);  // idle again by then
  EXPECT_DOUBLE_EQ(d.predicted_finish_s, 4.0);
}

TEST(ServeAdmission, SafetyFactorScalesPricesNotRawCosts) {
  AdmissionModel model(AdmissionConfig{1, 2.0, 0});
  const auto d = model.evaluate(0.0, 1.5, 1.0);
  EXPECT_EQ(d.outcome, AdmissionOutcome::kRejectedDeadline);
  EXPECT_DOUBLE_EQ(d.predicted_cost_s, 2.0);  // 1.0 * safety 2.0
  EXPECT_TRUE(model.evaluate(0.0, 2.0, 1.0).admitted());
}

TEST(ServeAdmission, MultipleExecutorsServeInParallel) {
  AdmissionModel model(AdmissionConfig{2, 1.0, 0});
  const auto d1 = model.evaluate(0.0, kInf, 1.0);
  const auto d2 = model.evaluate(0.0, kInf, 1.0);
  EXPECT_DOUBLE_EQ(d1.predicted_wait_s, 0.0);
  EXPECT_DOUBLE_EQ(d2.predicted_wait_s, 0.0);  // second modeled executor
  const auto d3 = model.evaluate(0.0, kInf, 1.0);
  EXPECT_DOUBLE_EQ(d3.predicted_wait_s, 1.0);  // both busy until t=1
}

// --- ServeServer (end to end) ---------------------------------------------

TEST(ServeServer, ServedResultsBitIdenticalToDirectMultiply) {
  const auto m0 = gen_uniform_random<double>(150, 150, 5.0, 1.5, 91);
  const auto m1 = gen_powerlaw<double>(150, 150, 5.0, 1.6, 80, 92);
  ServerConfig scfg;
  scfg.engine.workers = 2;
  scfg.tuning = false;  // plain path first; tuned overlays tested below
  Server<double> server(scfg);

  auto h0 = server.submit(m0, m0, SubmitInfo{"alpha", 0, 0.0, kInf});
  auto h1 = server.submit(m1, m1, SubmitInfo{"beta", 0, 0.0, kInf});
  auto h2 = server.submit(m0, m1, SubmitInfo{"alpha", 0, 0.1, kInf});
  server.drain();

  for (auto* h : {&h0, &h1, &h2}) {
    ASSERT_TRUE(h->valid());
    EXPECT_TRUE(h->ready());
    EXPECT_EQ(h->result().status, ServeStatus::kDone);
    EXPECT_FALSE(h->result().degraded);
    EXPECT_FALSE(h->result().tuned_applied.valid);
  }
  EXPECT_TRUE(h0.result().job.c.equals_exact(multiply(m0, m0)));
  EXPECT_TRUE(h1.result().job.c.equals_exact(multiply(m1, m1)));
  EXPECT_TRUE(h2.result().job.c.equals_exact(multiply(m0, m1)));

  const auto s = server.stats();
  EXPECT_EQ(s.submitted, 3u);
  EXPECT_EQ(s.admitted, 3u);
  EXPECT_EQ(s.completed, 3u);
  EXPECT_EQ(s.rejected + s.shed + s.failed, 0u);
}

TEST(ServeServer, DegradedAndTunedPathsBothReconstructBitIdentically) {
  const auto a = gen_powerlaw<double>(200, 200, 6.0, 1.6, 100, 93);
  const double c = probe_cost(a, a);
  ASSERT_GT(c, 0.0);

  ServerConfig scfg;
  scfg.engine.workers = 2;
  scfg.tuning = true;
  scfg.tune_latency_s = 4.0 * c;
  Server<double> server(scfg);

  // Cold fingerprint: served immediately on the predictor-only overlay.
  auto cold = server.submit(a, a, SubmitInfo{"alpha", 0, 0.0, kInf});
  EXPECT_TRUE(cold.decision().degraded_plan);
  // Still inside the modeled tune latency: degraded as well.
  auto tepid = server.submit(a, a, SubmitInfo{"alpha", 0, 2.0 * c, kInf});
  EXPECT_TRUE(tepid.decision().degraded_plan);
  // Past the modeled latency: runs with the full tuned overlay.
  auto warm = server.submit(a, a, SubmitInfo{"alpha", 0, 5.0 * c, kInf});
  EXPECT_FALSE(warm.decision().degraded_plan);
  server.drain();

  ASSERT_EQ(cold.result().status, ServeStatus::kDone);
  ASSERT_EQ(tepid.result().status, ServeStatus::kDone);
  ASSERT_EQ(warm.result().status, ServeStatus::kDone);
  EXPECT_TRUE(cold.result().degraded);
  EXPECT_TRUE(tepid.result().degraded);
  EXPECT_FALSE(warm.result().degraded);

  // Degraded jobs ran the budgeted predictor-only cold overlay — reported
  // on tuned_applied and equal to what choose_budgeted picks directly...
  const tune::AutoTuner tuner(scfg.tuner);
  const auto feats = tune::extract_features(a, a, scfg.tuner.sample_stride,
                                            scfg.tuner.min_samples);
  const TunedParams expect_cold = tuner.choose_budgeted(
      feats, Config{}, sizeof(double), scfg.engine.cold_tune_candidate_budget);
  EXPECT_TRUE(cold.result().tuned_applied.valid);
  EXPECT_EQ(cold.result().tuned_applied, expect_cold);
  EXPECT_EQ(tepid.result().tuned_applied, expect_cold);

  // ...and every job — degraded or warm — is reconstructible by applying
  // the reported overlay to the submitted Config.
  for (auto* h : {&cold, &tepid, &warm}) {
    Config eff;
    h->result().tuned_applied.apply(eff);
    EXPECT_TRUE(h->result().job.c.equals_exact(multiply(a, a, eff)));
  }

  const auto s = server.stats();
  EXPECT_EQ(s.degraded, 2u);
  EXPECT_EQ(s.completed, 3u);
  // The cold overlay was computed once and the metrics report it.
  EXPECT_EQ(server.metrics().counters.cold_tunes, 1u);
}

TEST(ServeServer, DeadlineRejectionIsStructuredAndResubmissionServes) {
  const auto a = gen_uniform_random<double>(180, 180, 6.0, 1.5, 94);
  const double c = probe_cost(a, a);
  ASSERT_GT(c, 0.0);

  ServerConfig scfg;
  scfg.engine.workers = 1;
  scfg.tuning = false;
  scfg.admission.executors = 1;
  Server<double> server(scfg);

  auto first = server.submit(a, a, SubmitInfo{"alpha", 0, 0.0, kInf});
  ASSERT_TRUE(first.decision().admitted());
  // Behind the backlog, a deadline tighter than one service time cannot
  // hold: rejected up front, resolved before submit returns.
  auto doomed = server.submit(a, a, SubmitInfo{"alpha", 0, 0.0, 0.5 * c});
  EXPECT_TRUE(doomed.ready());
  const auto& d = doomed.decision();
  EXPECT_EQ(d.outcome, AdmissionOutcome::kRejectedDeadline);
  EXPECT_EQ(d.backlog_jobs, 1u);
  EXPECT_GT(d.predicted_wait_s, 0.0);
  EXPECT_GT(d.predicted_finish_s, 0.5 * c);
  EXPECT_EQ(doomed.result().status, ServeStatus::kRejected);

  // The classic client reaction: resubmit later with a workable deadline.
  // The backlog has drained by then, and the served result is bit-identical
  // to the direct multiply.
  auto retry = server.submit(a, a, SubmitInfo{"alpha", 0, 3.0 * c, 10.0 * c});
  EXPECT_TRUE(retry.decision().admitted());
  server.drain();
  ASSERT_EQ(retry.result().status, ServeStatus::kDone);
  EXPECT_TRUE(retry.result().job.c.equals_exact(multiply(a, a)));
  EXPECT_TRUE(first.result().job.c.equals_exact(retry.result().job.c));

  const auto s = server.stats();
  EXPECT_EQ(s.submitted, 3u);
  EXPECT_EQ(s.admitted, 2u);
  EXPECT_EQ(s.rejected, 1u);
  ASSERT_EQ(s.tenants.size(), 1u);
  EXPECT_EQ(s.tenants[0].rejected_deadline, 1u);
}

TEST(ServeServer, QuotaMetersPredictedCostSeconds) {
  const auto a = gen_uniform_random<double>(150, 150, 5.0, 1.5, 95);
  const double c = probe_cost(a, a);
  ASSERT_GT(c, 0.0);

  ServerConfig scfg;
  scfg.engine.workers = 2;
  scfg.tuning = false;
  // "metered" can afford one job up front and earns one more every 10
  // virtual seconds; "free" is unmetered.
  scfg.tenants = {TenantConfig{"metered", 1.0, c / 10.0, 1.01 * c},
                  TenantConfig{"free", 1.0, 0.0, 0.0}};
  Server<double> server(scfg);

  auto m1 = server.submit(a, a, SubmitInfo{"metered", 0, 0.0, kInf});
  EXPECT_TRUE(m1.decision().admitted());
  auto m2 = server.submit(a, a, SubmitInfo{"metered", 0, 0.0, kInf});
  EXPECT_EQ(m2.decision().outcome, AdmissionOutcome::kRejectedQuota);
  EXPECT_TRUE(m2.ready());
  EXPECT_EQ(m2.result().status, ServeStatus::kRejected);
  // The unmetered tenant is untouched by its neighbour's empty bucket.
  auto f1 = server.submit(a, a, SubmitInfo{"free", 0, 0.0, kInf});
  EXPECT_TRUE(f1.decision().admitted());
  // Refilled by virtual t=20: admitted again.
  auto m3 = server.submit(a, a, SubmitInfo{"metered", 0, 20.0, kInf});
  EXPECT_TRUE(m3.decision().admitted());
  server.drain();

  EXPECT_TRUE(m3.result().job.c.equals_exact(multiply(a, a)));
  const auto s = server.stats();
  ASSERT_EQ(s.tenants.size(), 2u);
  EXPECT_EQ(s.tenants[0].name, "metered");
  EXPECT_EQ(s.tenants[0].rejected_quota, 1u);
  EXPECT_EQ(s.tenants[0].admitted, 2u);
  EXPECT_EQ(s.tenants[1].rejected_quota, 0u);
}

TEST(ServeServer, ArenaCeilingShedsOversizedJobsOutright) {
  const auto a = gen_uniform_random<double>(150, 150, 5.0, 1.5, 96);
  const Config cfg;
  const std::size_t pool = estimate_chunk_pool_bytes(a, a, cfg);
  ASSERT_GT(pool, 0u);

  ServerConfig scfg;
  scfg.engine.workers = 1;
  scfg.tuning = false;
  scfg.arena_ceiling_bytes = pool / 2;  // no job can ever fit
  Server<double> server(scfg);

  auto h = server.submit(a, a, SubmitInfo{"alpha", 0, 0.0, kInf});
  EXPECT_TRUE(h.decision().admitted());  // admission saw no memory problem
  server.drain();  // must terminate: shed, not stalled
  ASSERT_EQ(h.result().status, ServeStatus::kShed);
  EXPECT_EQ(h.result().admission.outcome, AdmissionOutcome::kShedMemory);
  const auto s = server.stats();
  EXPECT_EQ(s.shed, 1u);
  EXPECT_EQ(s.completed, 0u);
}

TEST(ServeServer, MemoryPressureShedsLowestPriorityAndKeepsServing) {
  const auto a = gen_uniform_random<double>(150, 150, 5.0, 1.5, 97);
  const Config cfg;
  const std::size_t pool = estimate_chunk_pool_bytes(a, a, cfg);
  ASSERT_GT(pool, 0u);

  ServerConfig scfg;
  scfg.engine.workers = 2;
  scfg.tuning = false;
  scfg.admission.executors = 2;
  // Two modeled executors but room for only one job's pool: the virtual
  // timeline is permanently memory-gated, so the queue cap sheds.
  scfg.arena_ceiling_bytes = pool + pool / 2;
  scfg.shed_queue_jobs = 2;
  Server<double> server(scfg);

  const int priorities[6] = {9, 9, 3, 1, 2, 0};
  std::vector<ServeHandle<double>> handles;
  for (int i = 0; i < 6; ++i)
    handles.push_back(
        server.submit(a, a, SubmitInfo{"alpha", priorities[i], 0.0, kInf}));
  server.drain();  // terminates: serves what fits, sheds the overflow

  std::vector<int> shed_priorities;
  int done = 0;
  for (auto& h : handles) {
    const auto& r = h.result();
    if (r.status == ServeStatus::kShed)
      shed_priorities.push_back(r.priority);
    else if (r.status == ServeStatus::kDone) {
      ++done;
      EXPECT_TRUE(r.job.c.equals_exact(multiply(a, a)));
    }
  }
  // The two lowest-priority jobs are the victims; everything else serves.
  std::sort(shed_priorities.begin(), shed_priorities.end());
  EXPECT_EQ(shed_priorities, (std::vector<int>{0, 1}));
  EXPECT_EQ(done, 4);
  const auto s = server.stats();
  EXPECT_EQ(s.shed, 2u);
  EXPECT_EQ(s.completed, 4u);
}

TEST(ServeServer, WeightedFairShareOrdersVirtualDispatch) {
  const auto a = gen_uniform_random<double>(120, 120, 4.0, 1.0, 98);
  const double c = probe_cost(a, a);
  ASSERT_GT(c, 0.0);

  ServerConfig scfg;
  scfg.engine.workers = 2;
  scfg.tuning = false;
  scfg.admission.executors = 1;  // one modeled executor serializes dispatch
  scfg.drr_quantum_s = c / 4.0;
  scfg.tenants = {TenantConfig{"heavy", 3.0, 0.0, 0.0},
                  TenantConfig{"light", 1.0, 0.0, 0.0}};
  Server<double> server(scfg);

  std::vector<ServeHandle<double>> heavy, light;
  for (int i = 0; i < 8; ++i) {
    heavy.push_back(server.submit(a, a, SubmitInfo{"heavy", 0, 0.0, kInf}));
    light.push_back(server.submit(a, a, SubmitInfo{"light", 0, 0.0, kInf}));
  }
  server.drain();

  // Dispatch order on the single modeled executor = virtual_start order.
  std::vector<std::pair<double, int>> order;  // (start, is_heavy)
  for (auto& h : heavy) order.emplace_back(h.result().virtual_start_s, 1);
  for (auto& h : light) order.emplace_back(h.result().virtual_start_s, 0);
  std::sort(order.begin(), order.end());
  int head_heavy = 0;
  for (int i = 0; i < 8; ++i) head_heavy += order[static_cast<std::size_t>(i)].second;
  // 3:1 weights: roughly six of the first eight virtual dispatches belong
  // to the heavy tenant.
  EXPECT_GE(head_heavy, 5);
  EXPECT_LE(head_heavy, 7);

  // Everyone drains eventually; the fair-share currency balances exactly.
  const auto s = server.stats();
  ASSERT_EQ(s.tenants.size(), 2u);
  EXPECT_NEAR(s.tenants[0].served_cost_s, s.tenants[1].served_cost_s,
              1e-9 * std::max(1.0, s.tenants[0].served_cost_s));
  EXPECT_EQ(s.completed, 16u);
  EXPECT_EQ(s.deadline_misses, 0u);
}

TEST(ServeServer, StatsMetricsAndDestructorDrainAgree) {
  const auto a = gen_uniform_random<double>(150, 150, 5.0, 1.5, 99);
  const double c = probe_cost(a, a);
  ASSERT_GT(c, 0.0);

  std::vector<ServeHandle<double>> handles;
  trace::MetricsSnapshot m;
  {
    ServerConfig scfg;
    scfg.engine.workers = 2;
    scfg.tuning = false;
    Server<double> server(scfg);
    for (int i = 0; i < 4; ++i)
      handles.push_back(
          server.submit(a, a, SubmitInfo{i % 2 ? "beta" : "alpha", 0,
                                         0.1 * i, kInf}));
    // One guaranteed rejection for the counters: deadline == arrival.
    handles.push_back(
        server.submit(a, a, SubmitInfo{"beta", 0, 0.4, 0.4}));
    server.drain();
    m = server.metrics();
    const auto s = server.stats();
    EXPECT_EQ(s.submitted, 5u);
    EXPECT_EQ(s.admitted, 4u);
    EXPECT_EQ(s.rejected, 1u);
    EXPECT_EQ(s.completed, 4u);
    EXPECT_EQ(s.queued_jobs, 0u);
    EXPECT_EQ(s.in_flight_jobs, 0u);
    EXPECT_GE(s.queue_depth_peak, 1u);
    // Tenant rows add up to the totals.
    std::uint64_t sub = 0, adm = 0;
    for (const auto& t : s.tenants) {
      sub += t.submitted;
      adm += t.admitted;
    }
    EXPECT_EQ(sub, s.submitted);
    EXPECT_EQ(adm, s.admitted);
  }  // destructor drains + joins (everything already resolved here)

  for (auto& h : handles) EXPECT_TRUE(h.ready());
  // The metrics snapshot carries the serve counter block and tenant rows.
  EXPECT_EQ(m.counters.serve_submitted, 5u);
  EXPECT_EQ(m.counters.serve_admitted, 4u);
  EXPECT_EQ(m.counters.serve_rejected, 1u);
  EXPECT_EQ(m.jobs, 4u);  // engine side saw only the admitted jobs
  ASSERT_EQ(m.serve_tenants.size(), 2u);
  std::uint64_t row_sub = 0;
  for (const auto& r : m.serve_tenants) row_sub += r.submitted;
  EXPECT_EQ(row_sub, 5u);
}

TEST(ServeServer, DestructorResolvesQueuedJobsWithoutExplicitDrain) {
  const auto a = gen_uniform_random<double>(150, 150, 5.0, 1.5, 100);
  std::vector<ServeHandle<double>> handles;
  {
    ServerConfig scfg;
    scfg.engine.workers = 1;
    scfg.tuning = false;
    Server<double> server(scfg);
    for (int i = 0; i < 6; ++i)
      handles.push_back(server.submit(a, a, SubmitInfo{"alpha", 0, 0.0, kInf}));
    // No drain: the destructor must flush the virtual timeline itself.
  }
  const auto direct = multiply(a, a);
  for (auto& h : handles) {
    ASSERT_TRUE(h.ready());
    ASSERT_EQ(h.result().status, ServeStatus::kDone);
    EXPECT_TRUE(h.result().job.c.equals_exact(direct));
  }
}

// --- ServeProperty (decision-stream determinism) --------------------------

struct TraceEvent {
  int matrix;
  const char* tenant;
  int priority;
  double arrival;
  double deadline;
};

struct RunOutput {
  std::vector<ServeHandle<double>> handles;
  ServeStats stats;
};

RunOutput run_trace(const std::vector<Csr<double>>& mats,
                    const std::vector<TraceEvent>& trace, unsigned workers,
                    std::size_t dispatch_slack, double cbar, std::size_t pool,
                    std::chrono::milliseconds pace = {}, Config job_cfg = {}) {
  ServerConfig scfg;
  scfg.engine.workers = workers;
  scfg.dispatch_slack = dispatch_slack;
  scfg.tuning = true;
  scfg.tune_latency_s = 2.0 * cbar;
  scfg.admission.executors = 2;
  scfg.admission.deadline_safety = 1.0;
  scfg.drr_quantum_s = cbar / 4.0;
  scfg.arena_ceiling_bytes = pool + pool / 2;
  scfg.shed_queue_jobs = 3;
  scfg.tenants = {TenantConfig{"alpha", 2.0, 0.0, 0.0},
                  TenantConfig{"beta", 1.0, cbar / 4.0, 2.5 * cbar}};
  RunOutput out;
  Server<double> server(scfg);
  for (const TraceEvent& e : trace) {
    if (pace.count() > 0) std::this_thread::sleep_for(pace);
    const auto& am = mats[static_cast<std::size_t>(e.matrix)];
    out.handles.push_back(server.submit(
        am, am, SubmitInfo{e.tenant, e.priority, e.arrival, e.deadline},
        job_cfg));
  }
  server.drain();
  out.stats = server.stats();
  return out;
}

TEST(ServeProperty, DecisionStreamIndependentOfWorkerCount) {
  std::vector<Csr<double>> mats;
  mats.push_back(gen_uniform_random<double>(120, 120, 5.0, 1.5, 101));
  mats.push_back(gen_powerlaw<double>(160, 160, 5.0, 1.6, 80, 102));
  mats.push_back(gen_uniform_random<double>(140, 140, 4.0, 1.0, 103));
  const double c0 = probe_cost(mats[0], mats[0]);
  ASSERT_GT(c0, 0.0);
  std::size_t pool = 0;
  for (const auto& m : mats)
    pool = std::max(pool, estimate_chunk_pool_bytes(m, m, Config{}));

  // A deliberately messy open-loop trace: quota pressure on beta, an
  // impossible deadline, priority spread for the shed path, repeats of the
  // same fingerprint across the tune latency.
  const std::vector<TraceEvent> trace = {
      {0, "alpha", 5, 0.0, kInf},
      {1, "beta", 0, 0.0, kInf},
      {0, "beta", 1, 0.0, kInf},
      {2, "alpha", 2, 0.0, kInf},
      {0, "beta", 0, 0.0, kInf},      // quota bites somewhere around here
      {1, "alpha", 3, 0.1 * c0, 0.1 * c0},  // deadline == arrival: rejected
      {0, "alpha", 0, 0.5 * c0, kInf},
      {2, "beta", 4, 1.0 * c0, kInf},
      {0, "alpha", 1, 1.5 * c0, kInf},
      {1, "alpha", 2, 2.0 * c0, kInf},
      {0, "beta", 0, 3.0 * c0, 20.0 * c0},
      {2, "alpha", 5, 3.5 * c0, kInf},
      {0, "alpha", 0, 4.0 * c0, kInf},  // past tune latency: tuned plan
      {1, "beta", 1, 5.0 * c0, kInf},
  };

  auto r1 = run_trace(mats, trace, 1, 1, c0, pool);
  auto r4 = run_trace(mats, trace, 4, 3, c0, pool);

  ASSERT_EQ(r1.handles.size(), trace.size());
  ASSERT_EQ(r4.handles.size(), trace.size());
  int admitted = 0, rejected = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    auto& a = r1.handles[i].result();
    auto& b = r4.handles[i].result();
    EXPECT_EQ(a.admission, b.admission) << "submission " << i;
    EXPECT_EQ(a.status, b.status) << "submission " << i;
    EXPECT_EQ(a.degraded, b.degraded) << "submission " << i;
    EXPECT_EQ(a.tuned_applied, b.tuned_applied) << "submission " << i;
    EXPECT_EQ(a.virtual_start_s, b.virtual_start_s) << "submission " << i;
    EXPECT_EQ(a.virtual_finish_s, b.virtual_finish_s) << "submission " << i;
    EXPECT_EQ(a.deadline_missed, b.deadline_missed) << "submission " << i;
    if (a.served()) {
      // Bit-identical payloads across worker counts, and against a direct
      // multiply under the reconstructed effective Config.
      EXPECT_TRUE(a.job.c.equals_exact(b.job.c)) << "submission " << i;
      const auto& m = mats[static_cast<std::size_t>(trace[i].matrix)];
      Config eff;
      a.tuned_applied.apply(eff);
      EXPECT_TRUE(a.job.c.equals_exact(multiply(m, m, eff)))
          << "submission " << i;
    }
    admitted += a.admission.admitted() ? 1 : 0;
    rejected += a.status == ServeStatus::kRejected ? 1 : 0;
  }
  EXPECT_GT(admitted, 0);
  EXPECT_GT(rejected, 0);  // the trace exercised a rejection path

  // Full counter state matches field by field, tenants included.
  const ServeStats &s1 = r1.stats, &s4 = r4.stats;
  EXPECT_EQ(s1.submitted, s4.submitted);
  EXPECT_EQ(s1.admitted, s4.admitted);
  EXPECT_EQ(s1.rejected, s4.rejected);
  EXPECT_EQ(s1.shed, s4.shed);
  EXPECT_EQ(s1.completed, s4.completed);
  EXPECT_EQ(s1.failed, s4.failed);
  EXPECT_EQ(s1.degraded, s4.degraded);
  EXPECT_EQ(s1.deadline_misses, s4.deadline_misses);
  EXPECT_EQ(s1.queue_depth_peak, s4.queue_depth_peak);
  ASSERT_EQ(s1.tenants.size(), s4.tenants.size());
  for (std::size_t t = 0; t < s1.tenants.size(); ++t) {
    const TenantStats &ta = s1.tenants[t], &tb = s4.tenants[t];
    EXPECT_EQ(ta.name, tb.name);
    EXPECT_EQ(ta.submitted, tb.submitted);
    EXPECT_EQ(ta.admitted, tb.admitted);
    EXPECT_EQ(ta.rejected_deadline, tb.rejected_deadline);
    EXPECT_EQ(ta.rejected_quota, tb.rejected_quota);
    EXPECT_EQ(ta.rejected_queue_full, tb.rejected_queue_full);
    EXPECT_EQ(ta.shed, tb.shed);
    EXPECT_EQ(ta.degraded, tb.degraded);
    EXPECT_EQ(ta.deadline_misses, tb.deadline_misses);
    EXPECT_EQ(ta.served_cost_s, tb.served_cost_s);
    // completed/failed are post-drain, so they are deterministic too.
    EXPECT_EQ(ta.completed, tb.completed);
    EXPECT_EQ(ta.failed, tb.failed);
  }
}

/// Sampling-based pool sizing (Config::PoolSizing::kSampled) is a pure
/// function of the submitted matrices, so admission pricing and the
/// arena-ceiling backpressure it feeds must stay replayable: the decision
/// stream is field-exact across worker counts, same as the closed-form
/// default. A regression here means the estimator leaked run-time state
/// (thread timing, RNG, shared caches) into its output.
TEST(ServeProperty, DecisionStreamFieldExactUnderSampledPoolSizing) {
  Config sampled;
  sampled.pool_sizing = PoolSizing::kSampled;
  std::vector<Csr<double>> mats;
  mats.push_back(gen_uniform_random<double>(120, 120, 5.0, 1.5, 101));
  mats.push_back(gen_powerlaw<double>(160, 160, 5.0, 1.6, 80, 102));
  mats.push_back(gen_block_dense<double>(144, 144, 8, 2, 103));
  const double c0 = probe_cost(mats[0], mats[0]);
  ASSERT_GT(c0, 0.0);
  std::size_t pool = 0;
  for (const auto& m : mats)
    pool = std::max(pool, estimate_chunk_pool_bytes(m, m, sampled));

  const std::vector<TraceEvent> trace = {
      {0, "alpha", 4, 0.0, kInf},
      {1, "beta", 1, 0.0, kInf},
      {2, "alpha", 2, 0.0, kInf},
      {0, "beta", 0, 0.0, kInf},
      {1, "alpha", 3, 0.2 * c0, 0.2 * c0},  // deadline == arrival: rejected
      {2, "beta", 0, 0.5 * c0, kInf},       // quota pressure on beta
      {0, "alpha", 1, 1.0 * c0, kInf},
      {1, "beta", 5, 2.5 * c0, kInf},
      {2, "alpha", 0, 3.0 * c0, kInf},  // past tune latency: tuned plan
      {0, "alpha", 2, 4.0 * c0, kInf},
  };

  auto r1 = run_trace(mats, trace, 1, 1, c0, pool, {}, sampled);
  auto r4 = run_trace(mats, trace, 4, 3, c0, pool, {}, sampled);

  ASSERT_EQ(r1.handles.size(), trace.size());
  ASSERT_EQ(r4.handles.size(), trace.size());
  int admitted = 0, rejected = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    auto& a = r1.handles[i].result();
    auto& b = r4.handles[i].result();
    EXPECT_EQ(a.admission, b.admission) << "submission " << i;
    EXPECT_EQ(a.status, b.status) << "submission " << i;
    EXPECT_EQ(a.degraded, b.degraded) << "submission " << i;
    EXPECT_EQ(a.tuned_applied, b.tuned_applied) << "submission " << i;
    EXPECT_EQ(a.virtual_start_s, b.virtual_start_s) << "submission " << i;
    EXPECT_EQ(a.virtual_finish_s, b.virtual_finish_s) << "submission " << i;
    EXPECT_EQ(a.deadline_missed, b.deadline_missed) << "submission " << i;
    if (a.served()) {
      EXPECT_TRUE(a.job.c.equals_exact(b.job.c)) << "submission " << i;
    }
    admitted += a.admission.admitted() ? 1 : 0;
    rejected += a.status == ServeStatus::kRejected ? 1 : 0;
  }
  EXPECT_GT(admitted, 0);
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(r1.stats.submitted, r4.stats.submitted);
  EXPECT_EQ(r1.stats.admitted, r4.stats.admitted);
  EXPECT_EQ(r1.stats.rejected, r4.stats.rejected);
  EXPECT_EQ(r1.stats.completed, r4.stats.completed);
  EXPECT_EQ(r1.stats.degraded, r4.stats.degraded);
}

/// Decisions are a pure function of the submission trace's *virtual*
/// times, never of wall-clock interleaving. Back-to-back submission (every
/// arrival lands while the engine still churns on the first jobs) and
/// paced submission (each tune/execution completes before, between, or
/// after later arrivals) must produce field-exact decision streams,
/// identical counters, and bit-identical payloads.
TEST(ServeProperty, DecisionStreamInvariantToTunerThreadTiming) {
  std::vector<Csr<double>> mats;
  mats.push_back(gen_uniform_random<double>(120, 120, 5.0, 1.5, 101));
  mats.push_back(gen_powerlaw<double>(160, 160, 5.0, 1.6, 80, 102));
  const double c0 = probe_cost(mats[0], mats[0]);
  ASSERT_GT(c0, 0.0);
  std::size_t pool = 0;
  for (const auto& m : mats)
    pool = std::max(pool, estimate_chunk_pool_bytes(m, m, Config{}));

  // Repeats of both fingerprints straddling tune_latency_s (= 2 c0): the
  // cold budgeted overlay serves the early arrivals, the full-grid one the
  // late arrivals — whichever real thread computed what, whenever.
  const std::vector<TraceEvent> trace = {
      {0, "alpha", 3, 0.0, kInf},
      {1, "beta", 1, 0.0, kInf},
      {0, "beta", 2, 0.5 * c0, kInf},
      {1, "alpha", 0, 1.0 * c0, kInf},
      {0, "alpha", 4, 1.9 * c0, kInf},   // still inside the tune latency
      {1, "beta", 2, 2.5 * c0, kInf},    // past it: tuned plan
      {0, "alpha", 1, 3.0 * c0, kInf},
      {1, "alpha", 5, 4.0 * c0, kInf},
      {0, "beta", 0, 5.0 * c0, kInf},
  };

  auto fast = run_trace(mats, trace, 4, 2, c0, pool);
  auto slow = run_trace(mats, trace, 4, 2, c0, pool,
                        std::chrono::milliseconds(10));

  ASSERT_EQ(fast.handles.size(), trace.size());
  int degraded = 0, tuned = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    auto& a = fast.handles[i].result();
    auto& b = slow.handles[i].result();
    EXPECT_EQ(a.admission, b.admission) << "submission " << i;
    EXPECT_EQ(a.status, b.status) << "submission " << i;
    EXPECT_EQ(a.degraded, b.degraded) << "submission " << i;
    EXPECT_EQ(a.tuned_applied, b.tuned_applied) << "submission " << i;
    EXPECT_EQ(a.virtual_start_s, b.virtual_start_s) << "submission " << i;
    EXPECT_EQ(a.virtual_finish_s, b.virtual_finish_s) << "submission " << i;
    if (a.served()) {
      EXPECT_TRUE(a.job.c.equals_exact(b.job.c)) << "submission " << i;
      degraded += a.degraded ? 1 : 0;
      tuned += (!a.degraded && a.tuned_applied.valid) ? 1 : 0;
    }
  }
  EXPECT_GE(degraded, 2);  // the trace really exercised the cold overlay
  EXPECT_GE(tuned, 2);     // ... and the post-latency tuned path
  EXPECT_EQ(fast.stats.degraded, slow.stats.degraded);
  EXPECT_EQ(fast.stats.completed, slow.stats.completed);
  // Cold tunes are per-fingerprint, not per-degraded-job, and independent
  // of pacing.
  EXPECT_EQ(fast.stats.degraded, static_cast<std::size_t>(degraded));
}

}  // namespace
}  // namespace acs::serve
