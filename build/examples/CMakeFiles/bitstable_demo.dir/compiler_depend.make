# Empty compiler generated dependencies file for bitstable_demo.
# This may be replaced when dependencies are built.
