/// \file amg_galerkin.cpp
/// Algebraic-multigrid coarsening — the paper's first motivating SpGEMM
/// application ("algebraic multigrid solvers [5]"). Builds a 2D Poisson
/// problem, constructs an aggregation-based prolongation P per level, and
/// forms the Galerkin coarse operator A_c = Pᵀ (A P) with two AC-SpGEMM
/// calls per level. Prints the hierarchy and the operator complexity, the
/// quantity AMG practitioners watch.
///
/// Run:  ./amg_galerkin [grid_n] [levels]

#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/acspgemm.hpp"
#include "matrix/coo.hpp"
#include "matrix/generators.hpp"
#include "matrix/transpose.hpp"

namespace {

/// Unsmoothed aggregation prolongation: group every `aggregate` consecutive
/// unknowns into one coarse unknown (pairwise aggregation along the grid
/// ordering — simple but exactly the SpGEMM workload AMG setup produces).
acs::Csr<double> aggregation_prolongation(acs::index_t fine, acs::index_t aggregate) {
  const acs::index_t coarse = acs::divup(fine, aggregate);
  acs::Coo<double> p;
  p.rows = fine;
  p.cols = coarse;
  for (acs::index_t i = 0; i < fine; ++i) p.push(i, i / aggregate, 1.0);
  return p.to_csr();
}

}  // namespace

int main(int argc, char** argv) {
  const acs::index_t n = argc > 1 ? std::atoi(argv[1]) : 128;
  const int levels = argc > 2 ? std::atoi(argv[2]) : 4;

  auto a = acs::gen_stencil_2d<double>(n, n, 7);
  const double fine_nnz = static_cast<double>(a.nnz());
  double total_nnz = fine_nnz;

  std::cout << "AMG hierarchy for " << n << "x" << n << " Poisson problem\n";
  std::cout << "level 0: " << a.rows << " unknowns, " << a.nnz()
            << " non-zeros\n";

  acs::SpgemmStats stats;
  double spgemm_time = 0.0;
  for (int level = 1; level <= levels && a.rows > 16; ++level) {
    const auto p = aggregation_prolongation(a.rows, 4);
    const auto r = acs::transpose(p);

    // Galerkin triple product via two SpGEMMs: A_c = R * (A * P).
    const auto ap = acs::multiply(a, p, acs::Config{}, &stats);
    spgemm_time += stats.sim_time_s;
    a = acs::multiply(r, ap, acs::Config{}, &stats);
    spgemm_time += stats.sim_time_s;

    total_nnz += static_cast<double>(a.nnz());
    std::cout << "level " << level << ": " << a.rows << " unknowns, "
              << a.nnz() << " non-zeros (galerkin product via SpGEMM)\n";
  }

  std::cout << "operator complexity: " << total_nnz / fine_nnz
            << " (sum of all levels' nnz / fine nnz)\n";
  std::cout << "simulated SpGEMM time for the whole setup: "
            << spgemm_time * 1e3 << " ms\n";

  // Sanity: the coarsest operator must still be a valid CSR matrix.
  if (const auto err = a.validate(); !err.empty()) {
    std::cerr << "invalid coarse operator: " << err << "\n";
    return 1;
  }
  std::cout << "hierarchy valid.\n";
  return 0;
}
