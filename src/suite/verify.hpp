#pragma once
/// \file verify.hpp
/// Structured product verification — the artifact's "confirm the resulting
/// output matrix by comparing it to a host-based solution" as a reusable
/// report instead of a bool: structural diff location, value error norms,
/// and a human-readable summary.

#include <string>

#include "matrix/csr.hpp"

namespace acs {

struct VerifyReport {
  bool structure_matches = false;
  bool values_match = false;        ///< within the given tolerance
  /// First structural mismatch (row, position) or (-1, -1).
  index_t first_bad_row = -1;
  index_t first_bad_position = -1;
  double max_rel_error = 0.0;       ///< over matching structure
  double frobenius_error = 0.0;     ///< ||got - want||_F
  [[nodiscard]] bool ok() const { return structure_matches && values_match; }
  [[nodiscard]] std::string summary() const;
};

/// Compare `got` against the reference `want` (tolerance relative per
/// entry). Dimension mismatch yields a report with structure_matches=false.
template <class T>
VerifyReport verify_product(const Csr<T>& got, const Csr<T>& want,
                            double rel_tol = 1e-10);

extern template VerifyReport verify_product(const Csr<float>&, const Csr<float>&, double);
extern template VerifyReport verify_product(const Csr<double>&, const Csr<double>&, double);

}  // namespace acs
