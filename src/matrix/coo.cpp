#include "matrix/coo.hpp"

#include <algorithm>
#include <numeric>

namespace acs {

template <class T>
void Coo<T>::sort_and_combine() {
  const std::size_t n = row_idx.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (row_idx[a] != row_idx[b]) return row_idx[a] < row_idx[b];
    return col_idx[a] < col_idx[b];
  });

  std::vector<index_t> r2, c2;
  std::vector<T> v2;
  r2.reserve(n);
  c2.reserve(n);
  v2.reserve(n);
  for (std::size_t i : order) {
    if (!r2.empty() && r2.back() == row_idx[i] && c2.back() == col_idx[i]) {
      v2.back() += values[i];
    } else {
      r2.push_back(row_idx[i]);
      c2.push_back(col_idx[i]);
      v2.push_back(values[i]);
    }
  }
  row_idx = std::move(r2);
  col_idx = std::move(c2);
  values = std::move(v2);
}

template <class T>
Csr<T> Coo<T>::to_csr() {
  sort_and_combine();
  Csr<T> m;
  m.rows = rows;
  m.cols = cols;
  m.row_ptr.assign(static_cast<std::size_t>(rows) + 1, 0);
  for (index_t r : row_idx) m.row_ptr[static_cast<std::size_t>(r) + 1]++;
  for (index_t r = 0; r < rows; ++r)
    m.row_ptr[usize(r) + 1] += m.row_ptr[usize(r)];
  m.col_idx = col_idx;
  m.values = values;
  return m;
}

template <class T>
Coo<T> Coo<T>::from_csr(const Csr<T>& csr) {
  Coo out;
  out.rows = csr.rows;
  out.cols = csr.cols;
  out.row_idx.reserve(csr.col_idx.size());
  for (index_t r = 0; r < csr.rows; ++r)
    for (index_t k = csr.row_ptr[usize(r)]; k < csr.row_ptr[usize(r) + 1];
         ++k)
      out.row_idx.push_back(r);
  out.col_idx = csr.col_idx;
  out.values = csr.values;
  return out;
}

template struct Coo<float>;
template struct Coo<double>;

}  // namespace acs
