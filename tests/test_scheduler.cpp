#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace acs::sim {
namespace {

TEST(Scheduler, RunsEveryBlockExactlyOnce) {
  BlockScheduler sched(1);
  std::vector<int> hits(100, 0);
  sched.for_each_block(100, [&](std::size_t b) { hits[b]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Scheduler, RunsEveryBlockWithThreadPool) {
  BlockScheduler sched(4);
  std::vector<std::atomic<int>> hits(1000);
  sched.for_each_block(1000, [&](std::size_t b) { hits[b]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Scheduler, ZeroBlocksIsNoop) {
  BlockScheduler sched(2);
  bool called = false;
  sched.for_each_block(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Scheduler, PropagatesExceptions) {
  BlockScheduler sched(2);
  EXPECT_THROW(sched.for_each_block(10,
                                    [&](std::size_t b) {
                                      if (b == 5) throw std::runtime_error("boom");
                                    }),
               std::runtime_error);
}

TEST(Scheduler, PerBlockSlotsGiveDeterministicResults) {
  // The pattern every simulated kernel uses: each block writes only its own
  // slot, so results are independent of interleaving.
  auto run = [](unsigned threads) {
    BlockScheduler sched(threads);
    std::vector<long> out(500);
    sched.for_each_block(500, [&](std::size_t b) {
      out[b] = static_cast<long>(b * b + 1);
    });
    return out;
  };
  EXPECT_EQ(run(1), run(8));
}

/// Regression: workers used to read `num_blocks` unlocked inside the
/// ticket loop, racing the next dispatch's setup under the pool mutex.
/// Alternating dispatch sizes through one persistent pool must run every
/// block of every generation exactly once (TSan covers the load/store).
TEST(Scheduler, AlternatingDispatchSizesReuseThePoolSafely) {
  BlockScheduler sched(4);
  const std::size_t sizes[] = {1000, 7, 513, 1, 64, 999};
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = sizes[round % 6];
    std::vector<std::atomic<int>> hits(n);
    sched.for_each_block(n, [&](std::size_t b) { hits[b]++; });
    for (auto& h : hits) ASSERT_EQ(h.load(), 1) << "round " << round;
  }
}

TEST(Scheduler, ZeroThreadsPicksHardwareConcurrency) {
  BlockScheduler sched(0);
  EXPECT_GE(sched.threads(), 1u);
}

}  // namespace
}  // namespace acs::sim
