file(REMOVE_RECURSE
  "libacs_baselines.a"
)
