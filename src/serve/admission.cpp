#include "serve/admission.hpp"

#include <algorithm>

namespace acs::serve {

const char* to_string(AdmissionOutcome outcome) {
  switch (outcome) {
    case AdmissionOutcome::kAdmitted:
      return "admitted";
    case AdmissionOutcome::kRejectedDeadline:
      return "rejected_deadline";
    case AdmissionOutcome::kRejectedQuota:
      return "rejected_quota";
    case AdmissionOutcome::kRejectedQueueFull:
      return "rejected_queue_full";
    case AdmissionOutcome::kShedMemory:
      return "shed_memory";
  }
  return "unknown";
}

AdmissionModel::AdmissionModel(AdmissionConfig cfg) : cfg_(cfg) {
  free_s_.assign(std::max(1u, cfg_.executors), 0.0);
}

std::size_t AdmissionModel::backlog_jobs(double now_s) {
  finishes_.erase(finishes_.begin(), finishes_.upper_bound(now_s));
  return finishes_.size();
}

AdmissionDecision AdmissionModel::evaluate(double arrival_s, double deadline_s,
                                           double predicted_cost_s) {
  AdmissionDecision d;
  d.predicted_cost_s =
      std::max(0.0, predicted_cost_s) * std::max(1.0, cfg_.deadline_safety);
  d.backlog_jobs = backlog_jobs(arrival_s);

  // Earliest modeled executor; a backlog already drained by `arrival_s`
  // never delays the new job.
  const auto next =
      std::min_element(free_s_.begin(), free_s_.end());
  const double start_s = std::max(arrival_s, *next);
  d.predicted_wait_s = start_s - arrival_s;
  d.predicted_finish_s = start_s + d.predicted_cost_s;

  if (cfg_.max_queue_jobs > 0 && d.backlog_jobs >= cfg_.max_queue_jobs) {
    d.outcome = AdmissionOutcome::kRejectedQueueFull;
    return d;
  }
  if (d.predicted_finish_s > deadline_s) {
    d.outcome = AdmissionOutcome::kRejectedDeadline;
    return d;
  }

  // Commit: the admitted job occupies the earliest executor.
  *next = d.predicted_finish_s;
  finishes_.insert(d.predicted_finish_s);
  d.outcome = AdmissionOutcome::kAdmitted;
  return d;
}

}  // namespace acs::serve
