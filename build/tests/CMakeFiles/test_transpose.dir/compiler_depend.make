# Empty compiler generated dependencies file for test_transpose.
# This may be replaced when dependencies are built.
