// Pass fixture for raii-locks-only: scoped locks everywhere, and the one
// std::condition_variable wait uses the predicate overload.
#include <condition_variable>
#include <mutex>

#include "core/thread_annotations.hpp"

struct Worker {
  acs::Mutex m;
  acs::CondVar cv;
  bool ready ACS_GUARDED_BY(m) = false;

  void wait_ready() ACS_EXCLUDES(m) {
    acs::MutexLock lock(m);
    while (!ready) cv.wait(lock);
  }
};

struct LegacyBridge {
  std::condition_variable legacy_cv;
  bool done = false;

  void wait_done(std::unique_lock<std::mutex>& lk) {
    legacy_cv.wait(lk, [&] { return done; });
  }
};
