file(REMOVE_RECURSE
  "CMakeFiles/test_scratchpad.dir/test_scratchpad.cpp.o"
  "CMakeFiles/test_scratchpad.dir/test_scratchpad.cpp.o.d"
  "test_scratchpad"
  "test_scratchpad.pdb"
  "test_scratchpad[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scratchpad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
