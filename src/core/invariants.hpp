#pragma once
/// \file invariants.hpp
/// Compile-time proofs of the core layer's implicit contracts (DESIGN.md
/// §10). Everything in this header is a static_assert over constexpr
/// mirrors that the algorithms themselves use — if a refactor breaks a bit
/// layout, a header constant or a codec round-trip, the build fails here
/// before any test runs. Included from core/acspgemm.cpp so the proofs are
/// checked in every build of the library, and from tests/test_invariants.cpp
/// which cross-checks them against runtime behaviour.
///
/// Proof groups:
///   1. Compaction packed-state word (Algorithm 3): field layout, the
///      magic end-state constants, pack/unpack round trips at the 15-bit
///      boundaries, and why the kCounterMask capacity bound exists.
///   2. A constexpr execution of the combine-scan operator on a miniature
///      sorted buffer (float and double), proving the operator's counting
///      semantics, not just its bit masks.
///   3. Chunk header accounting: the 32 B header / 48 B pointer-chunk
///      constants against the fields they must hold, via a constexpr
///      byte_size evaluation.
///   4. Sort-key bit reduction: bits_for boundaries, the paper's 9+23=32
///      example, codec round trips at range extremes, and 64-bit key
///      sufficiency for the default block shape.

#include <cstdint>
#include <type_traits>

#include "core/chunk.hpp"
#include "core/compaction.hpp"
#include "core/config.hpp"
#include "core/sort_key.hpp"
#include "sim/block_primitives.hpp"

namespace acs::invariants {

namespace cd = compaction_detail;

// ---------------------------------------------------------------------------
// 1. Packed scan-state word (compaction.hpp, Algorithm 3).
// ---------------------------------------------------------------------------

// Flag bits sit at 0 and 16; each 15-bit counter fills the gap above its
// flag. Layout: [31..17 total][16 row-end][15..1 row count][0 combine-end].
static_assert(cd::kFlagCombineEnd == 1u << 0);
static_assert(cd::kFlagRowEnd == 1u << 16);
static_assert(cd::kRowCountShift == 1);
static_assert(cd::kTotalCountShift == 17);
static_assert(cd::kCounterMask == (1u << 15) - 1);

// The four fields tile the 32-bit word without overlap or gaps.
inline constexpr std::uint32_t kRowCountField = cd::kCounterMask
                                                << cd::kRowCountShift;
inline constexpr std::uint32_t kTotalCountField = cd::kCounterMask
                                                  << cd::kTotalCountShift;
static_assert((kRowCountField & kTotalCountField) == 0);
static_assert((kRowCountField & (cd::kFlagCombineEnd | cd::kFlagRowEnd)) == 0);
static_assert((kTotalCountField & (cd::kFlagCombineEnd | cd::kFlagRowEnd)) ==
              0);
static_assert((cd::kFlagCombineEnd | kRowCountField | cd::kFlagRowEnd |
               kTotalCountField) == 0xFFFFFFFFu);

// The magic end-state constants of Algorithm 3 are exactly "both counters
// 1, combine-end set" (plus row-end for kStateEndRow) — not free numbers.
static_assert(cd::kStateEndComp == cd::pack_state(1, 1, true, false));
static_assert(cd::kStateEndRow == cd::pack_state(1, 1, true, true));
static_assert(cd::kStateEndRow == (cd::kStateEndComp | cd::kFlagRowEnd));

// Pack/unpack round-trips at the boundary values of both counters, with
// every flag combination.
constexpr bool pack_round_trips() {
  constexpr std::uint32_t counters[] = {0, 1, 2, cd::kCounterMask - 1,
                                        cd::kCounterMask};
  for (std::uint32_t row : counters)
    for (std::uint32_t total : counters)
      for (int flags = 0; flags < 4; ++flags) {
        const bool ce = (flags & 1) != 0;
        const bool re = (flags & 2) != 0;
        const std::uint32_t s = cd::pack_state(row, total, ce, re);
        if (cd::row_count_of(s) != row) return false;
        if (cd::total_count_of(s) != total) return false;
        if (((s & cd::kFlagCombineEnd) != 0) != ce) return false;
        if (((s & cd::kFlagRowEnd) != 0) != re) return false;
      }
  return true;
}
static_assert(pack_round_trips());

// Counter addition — the whole point of the packed word: adding two states
// sums both counters independently while the sums stay within 15 bits.
static_assert(cd::row_count_of(cd::pack_state(3, 10, false, false) +
                               cd::pack_state(4, 20, false, false)) == 7);
static_assert(cd::total_count_of(cd::pack_state(3, 10, false, false) +
                                 cd::pack_state(4, 20, false, false)) == 30);
static_assert(cd::row_count_of(cd::pack_state(cd::kCounterMask - 1, 0, false,
                                              false) +
                               cd::pack_state(1, 0, false, false)) ==
              cd::kCounterMask);

// ...and why compact_sorted's kCounterMask bound exists: one element past
// the mask, the row counter's carry lands in the row-end flag bit,
// corrupting the word. This is the overflow the runtime guard throws on.
static_assert(((cd::pack_state(cd::kCounterMask, 0, false, false) +
                cd::pack_state(1, 0, false, false)) &
               cd::kFlagRowEnd) != 0);

// ---------------------------------------------------------------------------
// 2. The combine-scan operator, executed at compile time.
// ---------------------------------------------------------------------------

/// Runs Algorithm 3's inclusive scan over a miniature sorted buffer —
/// rows {0,0,0,2}, columns {5,5,9,1}, so one combine, three compacted
/// elements, row counts {2,1} — and checks every extracted position and
/// count, exactly as compact_sorted does at run time.
template <class T>
constexpr bool scan_operator_counts_correctly() {
  constexpr KeyCodec codec = KeyCodec::make(0, 3, 0, 15, true, 0, 0);
  constexpr int n = 4;
  const std::uint64_t keys[n] = {codec.encode(0, 5), codec.encode(0, 5),
                                 codec.encode(0, 9), codec.encode(2, 1)};
  const T vals[n] = {T(1), T(2), T(4), T(8)};

  cd::ScanElement<T> elems[n] = {};
  for (int i = 0; i < n; ++i) {
    const bool combine_end = (i + 1 == n) || keys[i + 1] != keys[i];
    const bool row_end = (i + 1 == n) || !codec.same_row(keys[i + 1], keys[i]);
    std::uint32_t state = 0;
    if (row_end) {
      state = cd::kStateEndRow;
    } else if (combine_end) {
      state = cd::kStateEndComp;
    }
    elems[i] = {keys[i], vals[i], state};
  }
  for (int i = 1; i < n; ++i)
    elems[i] = cd::combine_scan_operator(elems[i - 1], elems[i], codec);

  // Element 1 ends the combined (0,5) pair: value 1+2, first output slot.
  if (elems[1].value != T(3)) return false;
  if (cd::total_count_of(elems[1].state) != 1) return false;
  // Element 2 ends row 0 with 2 compacted elements, output slot 2.
  if (cd::row_count_of(elems[2].state) != 2) return false;
  if (cd::total_count_of(elems[2].state) != 2) return false;
  // Element 3 is row 2 alone: the row counter restarted at 1 (no leak from
  // row 0), the total kept counting to 3, and the value passed through.
  if (cd::row_count_of(elems[3].state) != 1) return false;
  if (cd::total_count_of(elems[3].state) != 3) return false;
  if (elems[3].value != T(8)) return false;
  return codec.row_of(elems[3].key) == 2 && codec.col_of(elems[3].key) == 1;
}
static_assert(scan_operator_counts_correctly<float>());
static_assert(scan_operator_counts_correctly<double>());

// ---------------------------------------------------------------------------
// 3. Chunk header accounting (chunk.hpp).
// ---------------------------------------------------------------------------

// The 32 B header holds the paper layout's fixed fields (start row, entry
// and row counts, list link) with room to spare, and stays 16-byte aligned
// for coalesced header reads.
static_assert(kChunkHeaderBytes % 16 == 0);
static_assert(kChunkHeaderBytes >= 2 * sizeof(index_t) + 2 * sizeof(void*));
// A pointer chunk extends the header by a B-row reference, a length and a
// double-width scale factor — 48 B covers it, again 16-byte aligned.
static_assert(kPointerChunkBytes % 16 == 0);
static_assert(kPointerChunkBytes - kChunkHeaderBytes >=
              2 * sizeof(index_t) + sizeof(double));

// byte_size, evaluated at compile time (C++20 constexpr std::vector): a
// 2-row, 3-entry chunk pays header + boundaries + payload; a long-row
// chunk pays the fixed record regardless of its materialized length.
template <class T>
constexpr bool chunk_accounting_holds() {
  Chunk<T> c;
  c.rows = {4, 5};
  c.row_offsets = {0, 2, 3};
  c.cols = {7, 9, 7};
  c.vals = {T(1), T(2), T(3)};
  if (c.byte_size() !=
      kChunkHeaderBytes + 2 * sizeof(index_t) + 3 * (sizeof(index_t) + sizeof(T)))
    return false;
  if (c.entry_count() != 3) return false;
  Chunk<T> p;
  p.is_long_row = true;
  p.b_row = 11;
  p.long_len = 100000;
  p.factor = T(2);
  return p.byte_size() == kPointerChunkBytes && p.entry_count() == 100000;
}
static_assert(chunk_accounting_holds<float>());
static_assert(chunk_accounting_holds<double>());

// The shared per-entry pool cost (chunk.hpp kChunkEntryBytes): exactly the
// ESC-global baseline's (row, col, value) temp record...
static_assert(kChunkEntryBytes<float> == 2 * sizeof(index_t) + sizeof(float));
static_assert(kChunkEntryBytes<double> ==
              2 * sizeof(index_t) + sizeof(double));
// ...and an upper bound on the chunk layout's variable cost: charging every
// entry kChunkEntryBytes covers the (index_t + T) payload plus the per-row
// boundary, because a chunk never covers more rows than it has entries.
template <class T>
constexpr bool entry_cost_covers_chunk_payload() {
  Chunk<T> c;
  c.rows = {4, 5};
  c.row_offsets = {0, 2, 3};
  c.cols = {7, 9, 7};
  c.vals = {T(1), T(2), T(3)};
  return c.byte_size() <= kChunkHeaderBytes + 3 * kChunkEntryBytes<T>;
}
static_assert(entry_cost_covers_chunk_payload<float>());
static_assert(entry_cost_covers_chunk_payload<double>());
// The pointer-chunk record is cheaper than materializing even one entry's
// worth of header+payload — diverting a long row can only shrink the pool.
static_assert(kPointerChunkBytes <=
              kChunkHeaderBytes + kChunkEntryBytes<double>);

// The deterministic chunk order must stay a plain 8-byte value type — the
// engine copies it around freely and sorts on it.
static_assert(std::is_trivially_copyable_v<ChunkOrder>);
static_assert(sizeof(ChunkOrder) == 2 * sizeof(std::uint32_t));

// ---------------------------------------------------------------------------
// 4. Sort-key dynamic bit reduction (sort_key.hpp).
// ---------------------------------------------------------------------------

// bits_for boundaries: exact powers of two tip over to the next width.
static_assert(sim::bits_for(0) == 0);
static_assert(sim::bits_for(1) == 1);
static_assert(sim::bits_for(255) == 8);
static_assert(sim::bits_for(256) == 9);
static_assert(sim::bits_for((std::uint64_t{1} << 32) - 1) == 32);

// The paper's Section 3.2.3 example: 512 local rows need 9 bits, leaving
// 23 bits of a 32-bit key for columns — matrices up to 2^23 columns sort
// with half-width keys.
static_assert(sim::bits_for(511) == 9);
static_assert(9 + sim::bits_for((1u << 23) - 1) == 32);

// Radix passes are ceil(bits/4): the dynamic reduction's saving is whole
// 4-bit passes, so width bounds translate directly into work bounds.
static_assert(sim::radix_passes(0) == 0);
static_assert(sim::radix_passes(32) == 8);
static_assert(sim::radix_passes(33) == 9);
static_assert(sim::radix_passes(64) == 16);

// Codec round trip at the extremes of a shifted range (the dynamic path
// subtracts the minima before packing).
constexpr KeyCodec kShifted = KeyCodec::make(5, 37, 100, 1000, true, 0, 0);
static_assert(kShifted.row_of(kShifted.encode(5, 100)) == 5);
static_assert(kShifted.col_of(kShifted.encode(5, 100)) == 100);
static_assert(kShifted.row_of(kShifted.encode(37, 1000)) == 37);
static_assert(kShifted.col_of(kShifted.encode(37, 1000)) == 1000);
static_assert(kShifted.same_row(kShifted.encode(7, 100),
                                kShifted.encode(7, 1000)));
static_assert(!kShifted.same_row(kShifted.encode(7, 100),
                                 kShifted.encode(8, 100)));
// Keys compare in (row, column) order — the property radix sort relies on.
static_assert(kShifted.encode(7, 1000) < kShifted.encode(8, 100));

// The static (ablation) codec must cover the full index range: worst-case
// local row count of the default block shape plus a full 31-bit column
// space still fits a 64-bit key.
inline constexpr Config kDefaultConfig{};
static_assert(kDefaultConfig.temp_capacity() == 2048);
static_assert(kDefaultConfig.temp_capacity() <=
              static_cast<int>(cd::kCounterMask));
constexpr KeyCodec kStaticWorstCase =
    KeyCodec::make(0, 0, 0, 0, false, kDefaultConfig.temp_capacity() - 1,
                   index_t{0x7FFFFFFE});
static_assert(kStaticWorstCase.total_bits() <= 64);
static_assert(kStaticWorstCase.row_of(kStaticWorstCase.encode(
                  2047, 0x7FFFFFFE)) == 2047);
static_assert(kStaticWorstCase.col_of(kStaticWorstCase.encode(
                  2047, 0x7FFFFFFE)) == 0x7FFFFFFE);

}  // namespace acs::invariants
