# Empty dependencies file for test_compaction.
# This may be replaced when dependencies are built.
