#pragma once
/// \file nsparse_like.hpp
/// nsparse-style hash SpGEMM [Nagasaka, Nukada, Matsuoka 2017]: rows are
/// grouped by their intermediate-product count so hash tables of matching
/// size can be built in scratchpad memory, with a global-memory table for
/// rows beyond the largest bin. A symbolic pass sizes C, a numeric pass
/// fills it. The row analysis is the load-balancing cost the paper says can
/// reach 30% of runtime for very sparse matrices; the hash accumulation
/// order depends on the hardware scheduler, so results are not bit-stable
/// (emulated here with a seeded schedule permutation).

#include <cstdint>

#include "baselines/algorithm.hpp"

namespace acs {

template <class T>
Csr<T> nsparse_multiply(const Csr<T>& a, const Csr<T>& b,
                        SpgemmStats* stats = nullptr,
                        std::uint64_t schedule_seed = 0);

template <class T>
class NsparseLike final : public SpgemmAlgorithm<T> {
 public:
  [[nodiscard]] std::string name() const override { return "nsparse"; }
  [[nodiscard]] bool bit_stable() const override { return false; }
  Csr<T> multiply(const Csr<T>& a, const Csr<T>& b,
                  SpgemmStats* stats) const override {
    return nsparse_multiply(a, b, stats, seed_);
  }
  void set_schedule_seed(std::uint64_t seed) override { seed_ = seed; }

 private:
  std::uint64_t seed_ = 0;
};

extern template Csr<float> nsparse_multiply(const Csr<float>&,
                                            const Csr<float>&, SpgemmStats*,
                                            std::uint64_t);
extern template Csr<double> nsparse_multiply(const Csr<double>&,
                                             const Csr<double>&, SpgemmStats*,
                                             std::uint64_t);
extern template class NsparseLike<float>;
extern template class NsparseLike<double>;

}  // namespace acs
