#pragma once
/// \file pool_arena.hpp
/// Recycles chunk-pool capacity across SpGEMM jobs. The GPU library would
/// keep cudaMalloc'd regions alive between calls; the simulator's ChunkPool
/// is an accounting object, so the arena recycles *capacity reservations*
/// with the same high-water-mark policy: a released pool returns to the
/// arena as a slab, `acquire` prefers an existing slab over a fresh
/// allocation (growing the largest one when none is big enough), and slabs
/// are never shrunk or freed. Combined with the plan cache's learned pool
/// sizes, repeated workloads stop allocating entirely and converge to zero
/// restarts. Thread-safe.

#include <cstddef>
#include <set>

#include "core/thread_annotations.hpp"

namespace acs::runtime {

class PoolArena {
 public:
  struct Lease {
    /// Capacity handed to the job's ChunkPool (>= the requested bytes; a
    /// recycled slab is handed out whole — a larger pool never hurts).
    std::size_t bytes = 0;
    /// Portion of the request served from recycled capacity.
    std::size_t reused_bytes = 0;
  };

  /// Reserve at least `bytes` of pool capacity.
  Lease acquire(std::size_t bytes) ACS_EXCLUDES(m_);

  /// Return a lease. `final_bytes` is the pool capacity at the end of the
  /// job — initial lease plus any restart growth — which becomes the slab's
  /// new (high-water) size.
  void release(std::size_t final_bytes) ACS_EXCLUDES(m_);

  struct Counters {
    std::size_t fresh_bytes = 0;    ///< capacity newly allocated
    std::size_t reused_bytes = 0;   ///< request bytes served from slabs
    std::size_t acquires = 0;
    std::size_t reuse_hits = 0;     ///< acquires served at least partly from a slab
    std::size_t high_water_bytes = 0;  ///< largest slab ever released
    std::size_t outstanding = 0;    ///< leases not yet released
  };

  [[nodiscard]] Counters counters() const ACS_EXCLUDES(m_);
  /// Total capacity currently parked in free slabs.
  [[nodiscard]] std::size_t free_bytes() const ACS_EXCLUDES(m_);
  void clear() ACS_EXCLUDES(m_);

 private:
  mutable acs::Mutex m_;
  std::multiset<std::size_t> slabs_ ACS_GUARDED_BY(m_);
  Counters counters_ ACS_GUARDED_BY(m_);
};

}  // namespace acs::runtime
