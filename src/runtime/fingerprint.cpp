#include "runtime/fingerprint.hpp"

namespace acs::runtime {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv1a_step(std::uint64_t h, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (value >> (8 * byte)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::uint64_t hash_indices(const index_t* data, std::size_t count) {
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < count; ++i)
    h = fnv1a_step(h, static_cast<std::uint64_t>(data[i]));
  return h;
}

std::uint64_t Fingerprint::hash() const {
  std::uint64_t h = fnv1a_step(kFnvOffset, row_ptr_hash);
  h = fnv1a_step(h, static_cast<std::uint64_t>(rows_a));
  h = fnv1a_step(h, static_cast<std::uint64_t>(cols_a));
  h = fnv1a_step(h, static_cast<std::uint64_t>(nnz_a));
  h = fnv1a_step(h, static_cast<std::uint64_t>(rows_b));
  h = fnv1a_step(h, static_cast<std::uint64_t>(cols_b));
  h = fnv1a_step(h, static_cast<std::uint64_t>(nnz_b));
  h = fnv1a_step(h, static_cast<std::uint64_t>(arch));
  return h;
}

}  // namespace acs::runtime
