#include "sim/scheduler.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "trace/trace.hpp"

namespace acs::sim {

/// Parked worker threads plus the state of the current dispatch. Workers
/// wake on a generation bump, pull block ids from a shared atomic counter
/// (the GPU's global block dispatcher) and signal completion when the last
/// one runs out of blocks.
struct BlockScheduler::Pool {
  std::mutex m;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::uint64_t generation = 0;
  std::size_t num_blocks = 0;
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::size_t running = 0;
  std::exception_ptr error;
  bool stop = false;
  std::vector<std::thread> workers;

  explicit Pool(unsigned n) {
    workers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
      workers.emplace_back([this] { work_loop(); });
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(m);
      stop = true;
    }
    work_cv.notify_all();
    for (auto& t : workers) t.join();
  }

  void work_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t)>* job;
      {
        std::unique_lock<std::mutex> lock(m);
        work_cv.wait(lock, [&] { return stop || generation != seen; });
        if (stop) return;
        seen = generation;
        job = body;
      }
      for (;;) {
        // mo: work-stealing ticket; block inputs/outputs are published by
        // mo: the generation handshake under the pool mutex, not by this.
        const std::size_t b = next.fetch_add(1, std::memory_order_relaxed);
        if (b >= num_blocks) break;
        try {
          (*job)(b);
        } catch (...) {
          std::lock_guard<std::mutex> lock(m);
          if (!error) error = std::current_exception();
          break;
        }
      }
      {
        std::lock_guard<std::mutex> lock(m);
        if (--running == 0) done_cv.notify_one();
      }
    }
  }
};

BlockScheduler::BlockScheduler(unsigned threads) : threads_(threads) {
  if (threads_ == 0) threads_ = std::max(1u, std::thread::hardware_concurrency());
}

BlockScheduler::~BlockScheduler() = default;

/// Execute one block, feeding its host time into the trace session's block
/// attribution counters when tracing is live.
void BlockScheduler::run_block(const std::function<void(std::size_t)>& body,
                               std::size_t block) const {
  if (!trace_) {
    body(block);
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  body(block);
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  trace::Counters& c = trace_->counters();
  // mo: trace counters; consumers snapshot them after the run joins.
  c.blocks_executed.fetch_add(1, std::memory_order_relaxed);
  // mo: same as above.
  c.block_time_ns_sum.fetch_add(ns, std::memory_order_relaxed);
  trace::Counters::raise(c.block_time_ns_max, ns);
}

void BlockScheduler::for_each_block(
    std::size_t num_blocks, const std::function<void(std::size_t)>& body) const {
  if (num_blocks == 0) return;
  if (threads_ <= 1 || num_blocks == 1) {
    for (std::size_t b = 0; b < num_blocks; ++b) run_block(body, b);
    return;
  }

  if (!pool_) pool_ = std::make_unique<Pool>(threads_);
  Pool& p = *pool_;

  // Route the pool through the same attribution wrapper. The extra
  // std::function hop exists only while tracing (body is forwarded
  // untouched otherwise).
  const std::function<void(std::size_t)> timed =
      trace_ ? std::function<void(std::size_t)>(
                   [&](std::size_t b) { run_block(body, b); })
             : std::function<void(std::size_t)>();

  std::unique_lock<std::mutex> lock(p.m);
  p.num_blocks = num_blocks;
  p.body = trace_ ? &timed : &body;
  // mo: reset is published to workers by the generation bump + cv under
  // mo: the mutex held here; the counter itself needs no ordering.
  p.next.store(0, std::memory_order_relaxed);
  p.running = p.workers.size();
  p.error = nullptr;
  ++p.generation;
  p.work_cv.notify_all();
  p.done_cv.wait(lock, [&] { return p.running == 0; });
  const std::exception_ptr err = p.error;
  p.body = nullptr;
  lock.unlock();
  if (err) std::rethrow_exception(err);
}

}  // namespace acs::sim
