#include "runtime/tune_persist.hpp"

#include <cstdio>
#include <fstream>

namespace acs::runtime {
namespace {

constexpr char kMagic[8] = {'A', 'C', 'S', 'T', 'U', 'N', 'E', '1'};
constexpr std::size_t kHeaderBytes = 8 + 4 + 8;  // magic + version + digest
constexpr std::size_t kRecordFields = 11;  // 8 key + 2 packed overlay + count
constexpr std::size_t kRecordBytes = kRecordFields * 8;

std::uint64_t fnv1a(const unsigned char* data, std::size_t size) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

void put_u64(std::vector<unsigned char>& buf, std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte)
    buf.push_back(static_cast<unsigned char>((v >> (byte * 8)) & 0xffu));
}

void put_i64(std::vector<unsigned char>& buf, std::int64_t v) {
  put_u64(buf, static_cast<std::uint64_t>(v));
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int byte = 0; byte < 8; ++byte)
    v |= static_cast<std::uint64_t>(p[byte]) << (byte * 8);
  return v;
}

std::int64_t get_i64(const unsigned char* p) {
  return static_cast<std::int64_t>(get_u64(p));
}

}  // namespace

const char* to_string(TuneCacheLoad status) {
  switch (status) {
    case TuneCacheLoad::kLoaded: return "loaded";
    case TuneCacheLoad::kMissing: return "missing";
    case TuneCacheLoad::kBadMagic: return "bad-magic";
    case TuneCacheLoad::kBadVersion: return "bad-version";
    case TuneCacheLoad::kTruncated: return "truncated";
    case TuneCacheLoad::kBadDigest: return "bad-digest";
    case TuneCacheLoad::kOptionsMismatch: return "options-mismatch";
  }
  return "?";
}

bool save_tune_cache(const std::string& path, std::uint64_t options_hash,
                     const std::vector<TuneCacheEntry>& entries) {
  std::vector<unsigned char> payload;
  payload.reserve(16 + entries.size() * kRecordBytes);
  put_u64(payload, options_hash);
  put_u64(payload, entries.size());
  for (const TuneCacheEntry& e : entries) {
    put_u64(payload, e.key.row_ptr_hash);
    put_i64(payload, e.key.rows_a);
    put_i64(payload, e.key.cols_a);
    put_i64(payload, e.key.nnz_a);
    put_i64(payload, e.key.rows_b);
    put_i64(payload, e.key.cols_b);
    put_i64(payload, e.key.nnz_b);
    put_u64(payload, e.key.arch);
    // Overlay fields packed two-per-word as u32 halves: {npb, retain} and
    // {threshold, pmc}. Sentinels (-1) round-trip exactly; `valid` is
    // implied — only valid overlays are persisted, the loader re-asserts it.
    const auto pack = [](std::int32_t hi, std::int32_t lo) {
      return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(hi))
              << 32) |
             static_cast<std::uint64_t>(static_cast<std::uint32_t>(lo));
    };
    put_u64(payload, pack(e.tuned.nnz_per_block, e.tuned.retain_per_thread));
    put_u64(payload,
            pack(e.tuned.long_row_threshold, e.tuned.path_merge_max_chunks));
    put_i64(payload, e.measured_products);
  }

  std::vector<unsigned char> file;
  file.reserve(kHeaderBytes + payload.size());
  for (char c : kMagic) file.push_back(static_cast<unsigned char>(c));
  for (int byte = 0; byte < 4; ++byte)
    file.push_back(
        static_cast<unsigned char>((kTuneCacheVersion >> (byte * 8)) & 0xffu));
  put_u64(file, fnv1a(payload.data(), payload.size()));
  file.insert(file.end(), payload.begin(), payload.end());

  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return false;
    os.write(reinterpret_cast<const char*>(file.data()),
             static_cast<std::streamsize>(file.size()));
    if (!os) return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)std::remove(tmp.c_str());
    return false;
  }
  return true;
}

TuneCacheLoad load_tune_cache(const std::string& path,
                              std::uint64_t expected_options_hash,
                              std::vector<TuneCacheEntry>& out) {
  out.clear();
  std::ifstream is(path, std::ios::binary);
  if (!is) return TuneCacheLoad::kMissing;
  std::vector<unsigned char> file((std::istreambuf_iterator<char>(is)),
                                  std::istreambuf_iterator<char>());
  if (is.bad()) return TuneCacheLoad::kMissing;

  if (file.size() < kHeaderBytes) return TuneCacheLoad::kTruncated;
  for (std::size_t i = 0; i < 8; ++i)
    if (file[i] != static_cast<unsigned char>(kMagic[i]))
      return TuneCacheLoad::kBadMagic;
  std::uint32_t version = 0;
  for (int byte = 0; byte < 4; ++byte)
    version |= static_cast<std::uint32_t>(file[8 + static_cast<std::size_t>(
                                                       byte)])
               << (byte * 8);
  if (version != kTuneCacheVersion) return TuneCacheLoad::kBadVersion;

  const std::uint64_t digest = get_u64(file.data() + 12);
  const unsigned char* payload = file.data() + kHeaderBytes;
  const std::size_t payload_size = file.size() - kHeaderBytes;
  if (payload_size < 16) return TuneCacheLoad::kTruncated;
  if (fnv1a(payload, payload_size) != digest) return TuneCacheLoad::kBadDigest;

  if (get_u64(payload) != expected_options_hash)
    return TuneCacheLoad::kOptionsMismatch;
  const std::uint64_t count = get_u64(payload + 8);
  if (payload_size != 16 + count * kRecordBytes)
    return TuneCacheLoad::kTruncated;

  out.reserve(static_cast<std::size_t>(count));
  const unsigned char* p = payload + 16;
  for (std::uint64_t i = 0; i < count; ++i, p += kRecordBytes) {
    TuneCacheEntry e;
    e.key.row_ptr_hash = get_u64(p);
    e.key.rows_a = static_cast<index_t>(get_i64(p + 8));
    e.key.cols_a = static_cast<index_t>(get_i64(p + 16));
    e.key.nnz_a = get_i64(p + 24);
    e.key.rows_b = static_cast<index_t>(get_i64(p + 32));
    e.key.cols_b = static_cast<index_t>(get_i64(p + 40));
    e.key.nnz_b = get_i64(p + 48);
    e.key.arch = static_cast<std::uint32_t>(get_u64(p + 56));
    const std::uint64_t w0 = get_u64(p + 64);
    const std::uint64_t w1 = get_u64(p + 72);
    const auto hi = [](std::uint64_t w) {
      return static_cast<std::int32_t>(static_cast<std::uint32_t>(w >> 32));
    };
    const auto lo = [](std::uint64_t w) {
      return static_cast<std::int32_t>(
          static_cast<std::uint32_t>(w & 0xffffffffull));
    };
    e.tuned.nnz_per_block = hi(w0);
    e.tuned.retain_per_thread = lo(w0);
    e.tuned.long_row_threshold = hi(w1);
    e.tuned.path_merge_max_chunks = lo(w1);
    e.tuned.valid = true;
    e.measured_products = get_i64(p + 80);
    out.push_back(e);
  }
  return TuneCacheLoad::kLoaded;
}

}  // namespace acs::runtime
