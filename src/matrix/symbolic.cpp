#include "matrix/symbolic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace acs {

template <class T>
std::vector<index_t> symbolic_row_nnz(const Csr<T>& a, const Csr<T>& b) {
  if (a.cols != b.rows)
    throw std::invalid_argument("symbolic: dimension mismatch");
  std::vector<index_t> counts(static_cast<std::size_t>(a.rows), 0);
  std::vector<index_t> marker(static_cast<std::size_t>(b.cols), -1);
  for (index_t r = 0; r < a.rows; ++r) {
    index_t count = 0;
    for (index_t ka = a.row_ptr[usize(r)]; ka < a.row_ptr[usize(r) + 1];
         ++ka) {
      const index_t k = a.col_idx[usize(ka)];
      for (index_t kb = b.row_ptr[usize(k)]; kb < b.row_ptr[usize(k) + 1];
           ++kb) {
        const index_t col = b.col_idx[usize(kb)];
        if (marker[usize(col)] != r) {
          marker[usize(col)] = r;
          ++count;
        }
      }
    }
    counts[usize(r)] = count;
  }
  return counts;
}

template <class T>
offset_t symbolic_nnz(const Csr<T>& a, const Csr<T>& b) {
  offset_t total = 0;
  for (index_t c : symbolic_row_nnz(a, b)) total += c;
  return total;
}

template <class T>
double estimated_nnz(const Csr<T>& a, const Csr<T>& b) {
  const double rows_a = std::max<double>(1.0, static_cast<double>(a.rows));
  const double rows_b = std::max<double>(1.0, static_cast<double>(b.rows));
  const double cols_b = std::max<double>(1.0, static_cast<double>(b.cols));
  const double avg_a = static_cast<double>(a.nnz()) / rows_a;
  const double avg_b = static_cast<double>(b.nnz()) / rows_b;
  const double p_b = avg_b / cols_b;
  const double collision_scale =
      p_b < 1e-12 ? avg_a : (1.0 - std::pow(1.0 - p_b, avg_a)) / p_b;
  return rows_a * avg_b * collision_scale;
}

template std::vector<index_t> symbolic_row_nnz(const Csr<float>&, const Csr<float>&);
template std::vector<index_t> symbolic_row_nnz(const Csr<double>&, const Csr<double>&);
template offset_t symbolic_nnz(const Csr<float>&, const Csr<float>&);
template offset_t symbolic_nnz(const Csr<double>&, const Csr<double>&);
template double estimated_nnz(const Csr<float>&, const Csr<float>&);
template double estimated_nnz(const Csr<double>&, const Csr<double>&);

}  // namespace acs
