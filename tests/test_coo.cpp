#include "matrix/coo.hpp"

#include <gtest/gtest.h>

namespace acs {
namespace {

TEST(Coo, SortAndCombineSumsDuplicates) {
  Coo<double> coo;
  coo.rows = 2;
  coo.cols = 2;
  coo.push(1, 1, 1.0);
  coo.push(0, 0, 2.0);
  coo.push(1, 1, 3.0);
  coo.push(0, 1, 4.0);
  coo.sort_and_combine();
  ASSERT_EQ(coo.nnz(), 3);
  EXPECT_EQ(coo.row_idx[0], 0);
  EXPECT_EQ(coo.col_idx[0], 0);
  EXPECT_EQ(coo.values[0], 2.0);
  EXPECT_EQ(coo.values[2], 4.0);
}

TEST(Coo, ToCsrRoundTrip) {
  Coo<double> coo;
  coo.rows = 3;
  coo.cols = 4;
  coo.push(2, 3, 5.0);
  coo.push(0, 1, 1.0);
  coo.push(2, 0, 2.0);
  auto csr = coo.to_csr();
  EXPECT_EQ(csr.validate(), "");
  EXPECT_EQ(csr.rows, 3);
  EXPECT_EQ(csr.cols, 4);
  EXPECT_EQ(csr.nnz(), 3);
  EXPECT_EQ(csr.row_length(1), 0);
  EXPECT_EQ(csr.row_length(2), 2);

  auto back = Coo<double>::from_csr(csr);
  EXPECT_EQ(back.nnz(), 3);
  EXPECT_EQ(back.row_idx[0], 0);
  EXPECT_EQ(back.row_idx[1], 2);
  EXPECT_EQ(back.col_idx[1], 0);
}

TEST(Coo, EmptyToCsr) {
  Coo<float> coo;
  coo.rows = 5;
  coo.cols = 5;
  auto csr = coo.to_csr();
  EXPECT_EQ(csr.validate(), "");
  EXPECT_EQ(csr.nnz(), 0);
  EXPECT_EQ(csr.rows, 5);
}

TEST(Coo, CombineIsDeterministicInInsertionOrder) {
  // Floating-point sums depend on order; sort_and_combine must sum in
  // insertion order so repeated conversion is bit-identical.
  Coo<float> a, b;
  a.rows = b.rows = 1;
  a.cols = b.cols = 1;
  const float vals[4] = {1e8f, 1.0f, -1e8f, 1.0f};
  for (float v : vals) a.push(0, 0, v);
  for (float v : vals) b.push(0, 0, v);
  EXPECT_EQ(a.to_csr().values[0], b.to_csr().values[0]);
}

}  // namespace
}  // namespace acs
