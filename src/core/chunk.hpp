#pragma once
/// \file chunk.hpp
/// Chunk-based storage of partial results of C (Section 3.2.4). Each chunk
/// holds the column ids and values of a contiguous set of output rows
/// produced by one block, plus the per-row boundaries needed for the final
/// copy. Long rows of B are represented by pointer chunks that reference
/// the row of B and carry the scaling factor from A (Section 3.4). The pool
/// tracks allocation against a fixed capacity; exhaustion triggers the
/// restart mechanism.

#include <atomic>
#include <cstdint>
#include <vector>

#include "matrix/types.hpp"

namespace acs {

/// Chunk-pool accounting constants (the paper's layout). Every materialized
/// chunk pays a fixed header — start row, entry/row counts and the list
/// link, padded to 32 B; a long-row pointer chunk is a fixed 48 B record
/// (header + B-row reference, length and scale factor). The relationships
/// between these and the payload element sizes are proven at compile time
/// in core/invariants.hpp.
inline constexpr std::size_t kChunkHeaderBytes = 32;
inline constexpr std::size_t kPointerChunkBytes = 48;

/// Bytes one temporary product costs in every global-memory layout that
/// stores it with its row: two indices (row boundary / row key + column id)
/// plus the value. This is exactly the ESC-global baseline's (row, col,
/// value) temp record, and it dominates the chunk layout's per-entry cost —
/// a chunk charges (index_t + T) payload per entry plus one index_t row
/// boundary per covered row, and a chunk never covers more rows than it has
/// entries. The pool estimators (core/acspgemm.cpp, src/estimate) and
/// baselines/esc_global.cpp all charge this one constant so their byte
/// accounting can never drift apart; core/invariants.hpp proves the layout
/// relations at compile time.
template <class T>
inline constexpr std::size_t kChunkEntryBytes =
    2 * sizeof(index_t) + sizeof(T);

/// Deterministic global chunk order: block id + per-block running chunk
/// number, the paper's replacement for the scheduler-dependent linked-list
/// insertion order ("which yields a global ordering of chunks").
struct ChunkOrder {
  std::uint32_t block = 0;
  std::uint32_t counter = 0;

  friend bool operator<(const ChunkOrder& a, const ChunkOrder& b) {
    if (a.block != b.block) return a.block < b.block;
    return a.counter < b.counter;
  }
  friend bool operator==(const ChunkOrder& a, const ChunkOrder& b) {
    return a.block == b.block && a.counter == b.counter;
  }
};

template <class T>
struct Chunk {
  /// Global row ids covered, ascending. Only the first and last can be
  /// shared with other chunks; interior rows are complete.
  std::vector<index_t> rows;
  /// Entry offsets per covered row: row i owns [row_offsets[i],
  /// row_offsets[i+1]) of cols/vals. Size rows.size()+1.
  std::vector<index_t> row_offsets;
  std::vector<index_t> cols;
  std::vector<T> vals;
  ChunkOrder order;

  /// Long-row pointer chunk: no materialized data; the chunk stands for
  /// `factor` times row `b_row` of B, which has `long_len` entries.
  bool is_long_row = false;
  index_t b_row = -1;
  T factor{};
  index_t long_len = 0;

  [[nodiscard]] constexpr index_t entry_count() const {
    return is_long_row ? long_len : static_cast<index_t>(cols.size());
  }

  /// Bytes charged against the chunk pool: header (start row, counts, list
  /// link — 32 B as in the paper's layout), per-row boundaries, and the
  /// column/value payload. Pointer chunks cost only the fixed 48 B record.
  [[nodiscard]] constexpr std::size_t byte_size() const {
    if (is_long_row) return kPointerChunkBytes;
    return kChunkHeaderBytes + rows.size() * sizeof(index_t) +
           cols.size() * (sizeof(index_t) + sizeof(T));
  }
};

/// One `ChunkPool::try_allocate` attempt as seen by an `AllocationPolicy`.
/// `index` is the 0-based sequence number of the attempt over the pool's
/// lifetime — replayed allocations after a restart draw fresh indices, so a
/// policy that denies attempt N lets the replay of the same chunk through.
struct AllocationRequest {
  std::uint64_t index = 0;  ///< global attempt number (denied or not)
  std::size_t bytes = 0;    ///< requested size
  std::size_t used = 0;     ///< pool usage before this attempt
  std::size_t capacity = 0; ///< pool capacity at this attempt
};

/// Fault-injection hook consulted by `ChunkPool::try_allocate` before the
/// capacity check. Returning false denies the allocation exactly as a real
/// exhaustion would — the caller observes `try_allocate() == false` and
/// enters the restart protocol — which makes every restart path reachable
/// on demand instead of only via undersized pools. Implementations must be
/// safe to call from concurrent scheduler threads; deterministic injectors
/// live in src/fault/ (see DESIGN.md §8).
class AllocationPolicy {
 public:
  virtual ~AllocationPolicy() = default;
  /// True to allow the attempt, false to simulate pool exhaustion.
  virtual bool allow(const AllocationRequest& request) = 0;
};

/// Memory-accounting view of the chunk pool: a bump allocator with a hard
/// capacity. `try_allocate` mirrors the GPU's atomic-counter increment; the
/// actual storage lives in the Chunk objects (the simulator does not need
/// the single flat arena, only its accounting behaviour).
///
/// Restart accounting: a failed `try_allocate` is the *only* trigger of the
/// paper's §3.5 restart protocol. The pool distinguishes its two causes —
/// `capacity_denials()` counts genuine exhaustion, `injected_denials()`
/// counts refusals by the installed `AllocationPolicy` — while
/// `alloc_attempts()` numbers every attempt, which is the index space the
/// fault sweeps in src/fault enumerate. Per-run roll-ups land on
/// `SpgemmStats`: `restarts` counts host round trips (one round may relaunch
/// many blocks) and `pool_denials` the denied block launches of either
/// cause; nonzero `pool_denials` with zero `restarts` is impossible
/// (DESIGN.md §8).
class ChunkPool {
 public:
  explicit ChunkPool(std::size_t capacity_bytes) : capacity_(capacity_bytes) {}

  /// Reserve `bytes`; false means the pool is exhausted (restart needed) —
  /// either genuinely or because the installed policy denied the attempt.
  bool try_allocate(std::size_t bytes) {
    // mo: pure counter ticket; nothing is published under this index.
    const std::uint64_t index =
        alloc_attempts_.fetch_add(1, std::memory_order_relaxed);
    if (AllocationPolicy* policy = policy_) {
      AllocationRequest req;
      req.index = index;
      // mo: advisory snapshots for the policy; staleness only shifts which
      // mo: attempt a threshold policy denies, never correctness.
      req.used = used_.load(std::memory_order_relaxed);
      req.capacity = capacity_.load(std::memory_order_relaxed);  // mo: ditto
      req.bytes = bytes;
      if (!policy->allow(req)) {
        // mo: stat counter, read after the run's blocks join.
        injected_denials_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
    // mo: advisory bound; a stale read only misorders a denial vs. a grow.
    const std::size_t cap = capacity_.load(std::memory_order_relaxed);
    // mo: the RMW itself is the reservation — atomicity alone decides who
    // mo: overshoots; chunk payloads are handed over via the scheduler's
    // mo: joins, not through this counter.
    const std::size_t prev = used_.fetch_add(bytes, std::memory_order_relaxed);
    if (prev + bytes > cap) {
      // mo: rollback of the same counter; same reasoning as the reserve.
      used_.fetch_sub(bytes, std::memory_order_relaxed);
      // mo: stat counter, read after the run's blocks join.
      capacity_denials_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  /// Expand the pool ("as easy as adding another memory region").
  void grow(std::size_t bytes) {
    // mo: called between rounds (no concurrent blocks); a late observer
    // mo: merely retries via the restart protocol.
    capacity_.fetch_add(bytes, std::memory_order_relaxed);
  }

  /// Install (or clear, with nullptr) the fault-injection hook. Non-owning;
  /// the policy must outlive every `try_allocate`. Install before handing
  /// the pool to concurrent blocks — the pointer itself is not synchronized
  /// against in-flight allocations.
  void set_policy(AllocationPolicy* policy) { policy_ = policy; }
  [[nodiscard]] AllocationPolicy* policy() const { return policy_; }

  // mo: every accessor below reads a monotonic counter for reporting; the
  // mo: engine only consumes them after its blocks have joined.
  [[nodiscard]] std::size_t used() const {
    return used_.load(std::memory_order_relaxed);  // mo: see above
  }
  [[nodiscard]] std::size_t capacity() const {
    return capacity_.load(std::memory_order_relaxed);  // mo: see above
  }
  /// try_allocate calls so far, successful or not — the injection-point
  /// space a fault sweep enumerates.
  [[nodiscard]] std::uint64_t alloc_attempts() const {
    return alloc_attempts_.load(std::memory_order_relaxed);  // mo: see above
  }
  /// Denials issued by the installed policy (never by real exhaustion).
  [[nodiscard]] std::uint64_t injected_denials() const {
    return injected_denials_.load(std::memory_order_relaxed);  // mo: above
  }
  /// Denials from genuine capacity exhaustion.
  [[nodiscard]] std::uint64_t capacity_denials() const {
    return capacity_denials_.load(std::memory_order_relaxed);  // mo: above
  }

 private:
  std::atomic<std::size_t> capacity_;
  std::atomic<std::size_t> used_{0};
  std::atomic<std::uint64_t> alloc_attempts_{0};
  std::atomic<std::uint64_t> injected_denials_{0};
  std::atomic<std::uint64_t> capacity_denials_{0};
  AllocationPolicy* policy_ = nullptr;
};

/// A row's reference to part of a chunk, used for merge detection and the
/// final chunk copy. Segments of one row are combined in ChunkOrder.
struct RowSegment {
  std::size_t chunk = 0;   ///< index into the global chunk vector
  index_t begin = 0;       ///< first entry of the row inside the chunk
  index_t length = 0;      ///< entries of the row inside the chunk
  ChunkOrder order;
};

}  // namespace acs
