#include "runtime/engine.hpp"

#include <algorithm>
#include <chrono>

#include "arch/arch.hpp"
#include "runtime/fingerprint.hpp"
#include "runtime/tune_persist.hpp"

namespace acs::runtime {

void apply_arch(Config& cfg, const EngineConfig& ecfg) {
  if (ecfg.arch == arch::ArchId::kSimTitanXp) return;
  const arch::ArchInfo info = arch::arch_info(ecfg.arch);
  cfg.device = info.device;
  cfg.exec = info.exec;
  if (info.exec == arch::ExecKind::kNative) {
    unsigned n = ecfg.native_threads ? ecfg.native_threads
                                     : info.default_scheduler_threads;
    if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
    cfg.scheduler_threads = n;
  }
}

template <class T>
Engine<T>::Engine(EngineConfig config)
    : config_(std::move(config)), cache_(config_.plan_cache_capacity) {
  // Per-arch tuner grids: a tuner left at the stock nnz_per_block grid
  // picks up the arch's default (SimBigDevice extends it upward). An
  // explicitly customized grid wins. Must precede the persisted-tune load
  // below — options_hash covers the grids.
  if (config_.tuner.nnz_per_block == tune::TunerOptions{}.nnz_per_block)
    config_.tuner.nnz_per_block =
        tune::default_tuner_options(config_.arch).nnz_per_block;
  load_persisted_tunes();  // before any thread exists — uncontended
  bg_enabled_ = config_.background_retune &&
                config_.tuning == tune::TuningMode::kFeedback;
  if (bg_enabled_) bg_thread_ = std::thread([this] { bg_loop(); });
  unsigned n = config_.workers;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i)
    workers_.emplace_back([this] { work_loop(); });
}

template <class T>
Engine<T>::~Engine() {
  wait_all();
  if (bg_enabled_) {
    wait_background_tunes();  // every queued re-tune lands before the flush
    {
      acs::MutexLock lock(bg_m_);
      bg_stop_ = true;
    }
    bg_cv_.notify_all();
    bg_thread_.join();
  }
  if (!config_.tune_cache_path.empty()) (void)flush_tune_cache();
  {
    acs::MutexLock lock(m_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

template <class T>
void Engine<T>::load_persisted_tunes() {
  if (config_.tune_cache_path.empty() || !config_.use_plan_cache) return;
  std::vector<TuneCacheEntry> entries;
  const TuneCacheLoad status =
      load_tune_cache(config_.tune_cache_path,
                      tune::options_hash(config_.tuner), entries);
  if (status != TuneCacheLoad::kLoaded) return;  // any failure = cold start
  // The snapshot was saved MRU-first; seeding back-to-front restores the
  // recency order of the writing engine.
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    SpgemmPlan plan;
    plan.tuned = it->tuned;
    plan.measured_products = it->measured_products;
    plan.feedback_runs = 1;  // persisted decisions are final — no re-tune
    cache_.store(it->key, std::move(plan));
  }
  acs::MutexLock lock(m_);  // uncontended (constructor), held for the proof
  stats_.cache_loads = entries.size();
}

template <class T>
bool Engine<T>::flush_tune_cache() {
  if (config_.tune_cache_path.empty()) return false;
  const auto plans = cache_.tuned_entries();
  std::vector<TuneCacheEntry> entries;
  entries.reserve(plans.size());
  for (const auto& p : plans)
    entries.push_back(TuneCacheEntry{p.key, p.tuned, p.measured_products});
  return save_tune_cache(config_.tune_cache_path,
                         tune::options_hash(config_.tuner), entries);
}

template <class T>
void Engine<T>::wait_background_tunes() {
  if (!bg_enabled_) return;
  acs::MutexLock lock(bg_m_);
  ++bg_drainers_;  // overrides the low-priority deferral below
  bg_cv_.notify_all();
  while (!bg_queue_.empty() || bg_busy_) bg_idle_cv_.wait(lock);
  --bg_drainers_;
}

/// How long a queued re-tune may be deferred while foreground jobs keep
/// the workers busy. Long enough that a burst of cold submissions runs
/// uncontended (the whole point of the background path), short enough that
/// sustained saturation cannot starve refinement indefinitely.
constexpr std::chrono::milliseconds kBgTuneMaxDeferral{250};
/// Deferral re-check period — bounds how stale the idleness/age predicates
/// can get when no completion notification arrives.
constexpr std::chrono::milliseconds kBgTunePoll{20};

template <class T>
void Engine<T>::bg_loop() {
  const tune::AutoTuner tuner(config_.tuner);
  for (;;) {
    BgTune task;
    {
      acs::MutexLock lock(bg_m_);
      // Low-priority by deferral: while foreground jobs are in flight the
      // re-tune waits (the predictor-chosen plan keeps serving) until the
      // engine goes idle, the task ages past kBgTuneMaxDeferral, or a
      // drain (wait_background_tunes, shutdown) demands completion.
      for (;;) {
        if (bg_stop_ || (!bg_queue_.empty() &&
                         (bg_drainers_ > 0 || foreground_idle() ||
                          std::chrono::steady_clock::now() -
                                  bg_queue_.front().enqueued >=
                              kBgTuneMaxDeferral)))
          break;
        bg_cv_.wait_for(lock, kBgTunePoll);
      }
      if (bg_queue_.empty()) return;  // bg_stop_ set and queue drained
      task = std::move(bg_queue_.front());
      bg_queue_.pop_front();
      bg_busy_ = true;
    }
    try {
      // Full-fidelity re-rank: whole grid, simulated-execution pricing
      // under the configured objective, full feature sampling, exact
      // measured product count — exactly what the inline feedback pass
      // would have computed, off the job's critical path.
      const auto feats = tune::extract_features(
          task.job->a, task.job->b, config_.tuner.sample_stride,
          config_.tuner.min_samples);
      const TunedParams refined =
          tuner.choose(feats, task.base, sizeof(T),
                       static_cast<double>(task.measured_products));
      if (refined.valid)
        cache_.upgrade_tuned(task.key, refined, task.measured_products);
    } catch (...) {
      // A failed re-tune (allocation pressure) just leaves the cold
      // decision in place; the engine keeps serving it.
    }
    {
      acs::MutexLock lock(m_);
      ++stats_.bg_tunes;
    }
    {
      acs::MutexLock lock(bg_m_);
      bg_busy_ = false;
      task.job.reset();  // release the operands before waking waiters
      if (bg_queue_.empty()) bg_idle_cv_.notify_all();
    }
  }
}

template <class T>
JobHandle<T> Engine<T>::submit(Csr<T> a, Csr<T> b, Config cfg) {
  return submit(std::move(a), std::move(b), cfg, nullptr);
}

template <class T>
JobHandle<T> Engine<T>::submit(
    Csr<T> a, Csr<T> b, Config cfg,
    std::function<void(JobResult<T>&)> on_complete) {
  // The engine's backend is overlaid at submission, so everything
  // downstream — tuning bases, pool estimates, background re-tunes — sees
  // the device the job actually runs on. Under the default arch this is
  // the identity and the submitted Config runs verbatim.
  apply_arch(cfg, config_);
  auto state = std::make_shared<detail::JobState<T>>();
  state->a = std::move(a);
  state->b = std::move(b);
  state->cfg = cfg;
  state->on_complete = std::move(on_complete);
  {
    acs::MutexLock lock(m_);
    state->seq = stats_.jobs_submitted;
    queue_.push_back(state);
    ++in_flight_;
    ++stats_.jobs_submitted;
  }
  work_cv_.notify_one();
  return JobHandle<T>(std::move(state));
}

template <class T>
std::vector<JobResult<T>> Engine<T>::multiply_batch(
    const std::vector<std::pair<Csr<T>, Csr<T>>>& pairs, const Config& cfg) {
  std::vector<JobHandle<T>> handles;
  handles.reserve(pairs.size());
  for (const auto& [a, b] : pairs) handles.push_back(submit(a, b, cfg));
  std::vector<JobResult<T>> results;
  results.reserve(handles.size());
  for (auto& h : handles) {
    // Not h.result(): that rethrows, which would abandon the remaining
    // handles' results. Failures travel on JobResult::error instead.
    h.wait();
    acs::MutexLock lock(h.state_->job_m);
    results.push_back(std::move(h.state_->result));
  }
  return results;
}

template <class T>
void Engine<T>::wait_all() {
  acs::MutexLock lock(m_);
  while (in_flight_ != 0) idle_cv_.wait(lock);
}

template <class T>
EngineStats Engine<T>::stats() const {
  acs::MutexLock lock(m_);
  return stats_;
}

template <class T>
trace::MetricsSnapshot Engine<T>::metrics() const {
  acs::MutexLock lock(m_);
  trace::MetricsSnapshot out = metrics_;
  // Tuning-lifecycle counters are engine-level facts, not per-job trace
  // sums; overlay them the way Server::metrics overlays serve_* traffic.
  out.counters.cold_tunes = stats_.cold_tunes;
  out.counters.bg_tunes = stats_.bg_tunes;
  out.counters.cache_loads = stats_.cache_loads;
  return out;
}

template <class T>
void Engine<T>::work_loop() {
  WorkerContext ctx;
  for (;;) {
    std::shared_ptr<detail::JobState<T>> job;
    {
      acs::MutexLock lock(m_);
      while (!stop_ && queue_.empty()) work_cv_.wait(lock);
      if (queue_.empty()) return;  // stop_ set and nothing left to do
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      run_job(job, ctx);
    } catch (...) {
      // run_job failed outside its own handler (e.g. an allocation while
      // publishing the result). Fail this job only — never the worker: an
      // escaped exception here would leave in_flight_ stuck above zero and
      // wedge wait_all() and the destructor. complete() is idempotent, so
      // re-completing a job that already published is a no-op.
      std::exception_ptr e = std::current_exception();
      {
        acs::MutexLock lock(m_);
        ++stats_.jobs_completed;
        ++stats_.jobs_failed;
      }
      JobResult<T> failed;
      failed.error = e;
      // The completion hook still fires (moved-from if run_job already
      // invoked it before throwing — then this is a no-op).
      if (auto cb = std::exchange(job->on_complete, nullptr)) {
        try {
          cb(failed);
        } catch (...) {
          // A hook that throws while reporting a failure has nothing left
          // to report to; the original error stands.
        }
      }
      job->complete(std::move(failed), e);
    }
    bool idle = false;
    {
      acs::MutexLock lock(m_);
      if (--in_flight_ == 0) {
        idle_cv_.notify_all();
        idle = true;
      }
    }
    // The background tuner defers while work is in flight; tell it the
    // engine just went idle so deferred re-tunes start immediately. Probe
    // bg_enabled_, not bg_thread_.joinable(): the destructor may already
    // be joining bg_thread_ once in_flight_ hit zero, and joinable() on a
    // thread object being joined concurrently is a data race.
    if (idle && bg_enabled_) bg_cv_.notify_all();
  }
}

template <class T>
void Engine<T>::run_job(const std::shared_ptr<detail::JobState<T>>& jobp,
                        WorkerContext& ctx) {
  detail::JobState<T>& job = *jobp;
  JobResult<T> result;
  std::exception_ptr error;
  bool cold_tuned = false;
  bool schedule_bg = false;
  BgTune bg;
  bool leased = false;
  typename PoolArena::Lease lease;
  // One session per job so its counters are the job's alone; a session the
  // caller installed on the Config is left in place (and stays theirs —
  // per-job counters cannot be split out of a shared session).
  std::shared_ptr<trace::TraceSession> session;
  if (config_.collect_job_traces && job.cfg.trace == nullptr) {
    session = std::make_shared<trace::TraceSession>();
    job.cfg.trace = session.get();
  }
  // Per-job fault injection, keyed by submission order so a given job gets
  // the same policy regardless of which worker picks it up. A policy the
  // submitter installed on the job's Config takes precedence.
  std::unique_ptr<AllocationPolicy> injected_policy;
  if (config_.make_alloc_policy && job.cfg.alloc_policy == nullptr) {
    injected_policy = config_.make_alloc_policy(job.seq);
    job.cfg.alloc_policy = injected_policy.get();
  }
  try {
    const Fingerprint key = fingerprint(job.a, job.b, config_.arch);
    SpgemmPlan plan;
    const bool hit = config_.use_plan_cache && cache_.lookup(key, plan);

    // Auto-tuning (src/tune): decide once per structure fingerprint, replay
    // from the cached plan afterwards. The choice is a pure function of
    // structure, so a cache miss recomputes the identical overlay. Cold
    // decisions go through the predictor-only budgeted ranking — no
    // simulated execution on the first job of a structure; the feedback
    // pass (inline or background) restores full-fidelity pricing later.
    const bool tuning_on = config_.tuning != tune::TuningMode::kOff;
    const tune::AutoTuner tuner(config_.tuner);
    if (tuning_on && !plan.tuned.valid) {
      std::size_t stride = config_.tuner.sample_stride;
      std::size_t min_samples = config_.tuner.min_samples;
      if (const std::size_t cap = config_.cold_tune_feature_samples; cap > 0) {
        // Cap the cold sample count: lower the floor to the cap, then raise
        // the stride so ~cap entries of A are inspected (extract_features
        // clamps the stride back down only to nnz / min_samples).
        min_samples = std::min(min_samples, cap);
        const auto nnz = static_cast<std::size_t>(
            std::max<offset_t>(job.a.nnz(), 0));
        stride = std::max(stride, nnz / cap);
      }
      const auto feats = tune::extract_features(job.a, job.b, stride,
                                                min_samples);
      plan.tuned = tuner.choose_budgeted(
          feats, job.cfg, sizeof(T), config_.cold_tune_candidate_budget,
          plan.measured_products > 0
              ? static_cast<double>(plan.measured_products)
              : 0.0);
      cold_tuned = true;
      ACS_TRACE_COUNT(job.cfg.trace, cold_tunes, 1);
    }
    Config cfg = job.cfg;  // job.cfg stays as submitted, for reporting
    plan.tuned.apply(cfg);
    result.tuned = plan.tuned;

    std::size_t want = plan.pool_bytes
                           ? plan.pool_bytes
                           : estimate_chunk_pool_bytes(job.a, job.b, cfg);
    if (config_.use_pool_arena) {
      lease = arena_.acquire(want);
      leased = true;
      want = lease.bytes;
    }
    plan.pool_bytes = want;

    if (!ctx.scheduler || ctx.scheduler_threads != cfg.scheduler_threads) {
      ctx.scheduler =
          std::make_unique<sim::BlockScheduler>(cfg.scheduler_threads);
      ctx.scheduler_threads = cfg.scheduler_threads;
    }

    result.c = multiply_planned(job.a, job.b, cfg, plan, &result.stats,
                                ctx.scheduler.get());
    result.plan_hit = hit;
    result.pool_reused_bytes = lease.reused_bytes;
    result.metrics = to_metrics_snapshot(result.stats);
    if (session) {
      result.metrics.counters = session->counters_snapshot();
      result.trace = session;
    }

    if (leased) {
      // The final capacity (including restart growth) becomes the slab.
      arena_.release(result.stats.pool_bytes);
      leased = false;
    }

    // Feedback refinement: once per fingerprint, swap the sampled product
    // estimate for the exact measured count and re-rank. The measurement is
    // structural (identical for every job sharing the fingerprint), so the
    // refined choice is deterministic and stable — feedback_runs stays at 1.
    // Under background_retune the re-rank leaves the critical path: the
    // tuner thread computes the identical refinement later and swaps it
    // into the cache via PlanCache::upgrade_tuned.
    if (config_.tuning == tune::TuningMode::kFeedback &&
        plan.feedback_runs == 0) {
      plan.measured_products = result.stats.intermediate_products;
      if (config_.background_retune && config_.use_plan_cache) {
        plan.feedback_runs = 1;  // scheduled — later jobs must not re-queue
        bg.key = key;
        bg.job = jobp;
        bg.base = job.cfg;
        bg.base.trace = nullptr;        // engine-injected, job-scoped
        bg.base.alloc_policy = nullptr;  // ditto — and never a tuning input
        bg.measured_products = plan.measured_products;
        bg.enqueued = std::chrono::steady_clock::now();
        schedule_bg = true;
      } else {
        const auto feats =
            tune::extract_features(job.a, job.b, config_.tuner.sample_stride,
                                   config_.tuner.min_samples);
        TunedParams refined =
            tuner.choose(feats, job.cfg, sizeof(T),
                         static_cast<double>(plan.measured_products));
        if (refined.valid && !(refined == plan.tuned)) {
          // The stored load-balancing table and learned pool size were built
          // for the superseded parameters; drop them so the next run rebuilds
          // and re-learns under the refined overlay.
          plan.tuned = refined;
          plan.block_row_starts.clear();
          plan.pool_bytes = 0;
          plan.observed_pool_used = 0;
        }
        plan.feedback_runs = 1;
      }
    }
    if (config_.use_plan_cache) cache_.store(key, std::move(plan));
    if (schedule_bg) {
      {
        acs::MutexLock lock(bg_m_);
        bg_queue_.push_back(std::move(bg));
      }
      bg_cv_.notify_one();
    }
  } catch (...) {
    error = std::current_exception();
    if (leased) arena_.release(lease.bytes);
    result = JobResult<T>{};  // drop any partially-filled output
    result.error = error;
  }

  {
    acs::MutexLock lock(m_);
    ++stats_.jobs_completed;
    if (error) ++stats_.jobs_failed;
    if (cold_tuned && !error) ++stats_.cold_tunes;
    stats_.restarts += static_cast<std::size_t>(
        std::max(0, result.stats.restarts));
    if (!error) metrics_ += result.metrics;
  }
  // Completion hook before publication: the callback owns the result for
  // its duration (no handle waiter can run until complete()). Moving the
  // hook out guarantees exactly-once even if it throws and the work_loop
  // safety net re-reports the job.
  if (auto cb = std::exchange(job.on_complete, nullptr)) cb(result);
  job.complete(std::move(result), error);
}

template class Engine<float>;
template class Engine<double>;

}  // namespace acs::runtime
