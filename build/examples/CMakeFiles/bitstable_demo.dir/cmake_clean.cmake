file(REMOVE_RECURSE
  "CMakeFiles/bitstable_demo.dir/bitstable_demo.cpp.o"
  "CMakeFiles/bitstable_demo.dir/bitstable_demo.cpp.o.d"
  "bitstable_demo"
  "bitstable_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitstable_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
