#include "baselines/rmerge.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "matrix/stats.hpp"
#include "sim/block_primitives.hpp"
#include "sim/cost_model.hpp"

namespace acs {
namespace {

template <class T>
index_t max_row_length(const Csr<T>& m) {
  index_t mx = 0;
  for (index_t r = 0; r < m.rows; ++r) mx = std::max(mx, m.row_length(r));
  return mx;
}

/// Factor `m` = hi · lo where lo's rows are groups of at most K consecutive
/// entries of m (carrying the values) and hi's rows reference their groups
/// with unit coefficients. hi has ceil(len/K) entries per row.
template <class T>
std::pair<Csr<T>, Csr<T>> split_factor(const Csr<T>& m, index_t k) {
  Csr<T> hi, lo;
  index_t groups = 0;
  hi.rows = m.rows;
  hi.row_ptr.assign(static_cast<std::size_t>(m.rows) + 1, 0);
  for (index_t r = 0; r < m.rows; ++r) {
    const index_t len = m.row_length(r);
    const index_t g = divup(len, k);
    groups += g;
    hi.row_ptr[static_cast<std::size_t>(r) + 1] = groups;
  }
  hi.cols = groups;
  hi.col_idx.resize(static_cast<std::size_t>(groups));
  hi.values.assign(static_cast<std::size_t>(groups), T{1});
  for (index_t g = 0; g < groups; ++g) hi.col_idx[static_cast<std::size_t>(g)] = g;

  lo.rows = groups;
  lo.cols = m.cols;
  lo.row_ptr.assign(static_cast<std::size_t>(groups) + 1, 0);
  lo.col_idx.reserve(m.col_idx.size());
  lo.values.reserve(m.values.size());
  index_t g = 0;
  for (index_t r = 0; r < m.rows; ++r) {
    for (index_t off = m.row_ptr[usize(r)]; off < m.row_ptr[usize(r) + 1];
         off += k) {
      const index_t end = std::min(m.row_ptr[usize(r) + 1], off + k);
      for (index_t i = off; i < end; ++i) {
        lo.col_idx.push_back(m.col_idx[usize(i)]);
        lo.values.push_back(m.values[usize(i)]);
      }
      ++g;
      lo.row_ptr[static_cast<std::size_t>(g)] =
          static_cast<index_t>(lo.col_idx.size());
    }
  }
  return {std::move(hi), std::move(lo)};
}

/// One merge pass: f has at most K entries per row; every output row is a
/// K-way merge of rows of x, performed in fast memory. Returns the product
/// and charges one kernel's metrics.
template <class T>
Csr<T> merge_pass(const Csr<T>& f, const Csr<T>& x, int k,
                  std::vector<sim::MetricCounters>& blocks) {
  Csr<T> out;
  out.rows = f.rows;
  out.cols = x.cols;
  out.row_ptr.assign(static_cast<std::size_t>(f.rows) + 1, 0);

  const auto merge_levels = static_cast<std::uint64_t>(
      std::max(1, sim::bits_for(static_cast<std::uint64_t>(k))));
  sim::MetricCounters bm;
  std::size_t rows_in_block = 0;
  std::vector<std::pair<index_t, T>> buf;
  for (index_t r = 0; r < f.rows; ++r) {
    buf.clear();
    for (index_t ka = f.row_ptr[usize(r)]; ka < f.row_ptr[usize(r) + 1];
         ++ka) {
      const index_t src = f.col_idx[usize(ka)];
      const T fv = f.values[usize(ka)];
      for (index_t kb = x.row_ptr[usize(src)]; kb < x.row_ptr[usize(src) + 1];
           ++kb)
        buf.emplace_back(x.col_idx[usize(kb)], fv * x.values[usize(kb)]);
      // Each lane streams one source row: the per-lane streams are
      // sequential but mutually scattered, so a quarter of the traffic
      // misses coalescing.
      bm.global_bytes_coalesced += static_cast<std::uint64_t>(
                                       x.row_length(src)) *
                                   (sizeof(index_t) + sizeof(T));
      bm.global_bytes_scattered += static_cast<std::uint64_t>(
                                       x.row_length(src)) *
                                   (sizeof(index_t) + sizeof(T)) / 2;
      bm.global_bytes_scattered += 64;  // row pointer + first-sector fetch
    }
    std::stable_sort(buf.begin(), buf.end(),
                     [](const auto& p, const auto& q) { return p.first < q.first; });
    for (std::size_t i = 0; i < buf.size();) {
      std::size_t j = i;
      T sum{};
      while (j < buf.size() && buf[j].first == buf[i].first) sum += buf[j++].second;
      out.col_idx.push_back(buf[i].first);
      out.values.push_back(sum);
      i = j;
    }
    out.row_ptr[static_cast<std::size_t>(r) + 1] =
        static_cast<index_t>(out.col_idx.size());
    // Register merge network: ~3 ops (compare/select/shuffle) per element
    // per merge level, and a whole warp is occupied per output row — rows
    // with fewer products than lanes still pay the full warp (the
    // underutilization behind RMerge's weak very-sparse results).
    const auto padded =
        std::max<std::uint64_t>(static_cast<std::uint64_t>(buf.size()), 32);
    bm.compute_ops += 3 * padded * merge_levels;
    bm.global_bytes_scattered += 2 * sizeof(index_t);  // row pointer lookups
    bm.flops += 2 * static_cast<std::uint64_t>(buf.size());
    bm.global_bytes_coalesced +=
        static_cast<std::uint64_t>(out.row_length(r)) *
        (sizeof(index_t) + sizeof(T));
    if (++rows_in_block == 8) {
      blocks.push_back(bm);
      bm = {};
      rows_in_block = 0;
    }
  }
  if (rows_in_block > 0) blocks.push_back(bm);
  return out;
}

}  // namespace

template <class T>
Csr<T> rmerge_multiply(const Csr<T>& a, const Csr<T>& b, SpgemmStats* stats,
                       int merge_width) {
  if (a.cols != b.rows)
    throw std::invalid_argument("rmerge: dimension mismatch");
  const auto t0 = std::chrono::steady_clock::now();
  const sim::DeviceConfig dev{};
  const auto k = static_cast<index_t>(merge_width);

  // Factor A = hi_n · lo_n · ... · lo_1 with every factor's rows <= K.
  std::vector<Csr<T>> factors_lo;
  Csr<T> cur = a;
  std::size_t pool = 0;
  while (max_row_length(cur) > k) {
    auto [hi, lo] = split_factor(cur, k);
    pool += lo.byte_size() + hi.byte_size();
    factors_lo.push_back(std::move(lo));
    cur = std::move(hi);
  }

  // Evaluate right-to-left: x = lo_1 · b, then lo_2 · x, ..., then hi_n · x.
  SpgemmStats local;
  SpgemmStats& s = stats ? *stats : local;
  s = SpgemmStats{};
  auto run_pass = [&](const Csr<T>& f, const Csr<T>& x, const char* name) {
    std::vector<sim::MetricCounters> blocks;
    Csr<T> out = merge_pass(f, x, merge_width, blocks);
    // Symbolic count pass: the output size of every merged row must be
    // known before the merge kernel can run — one more sweep over the
    // source rows (column ids only), then a scan and an allocation sync.
    sim::MetricCounters count;
    count.global_bytes_coalesced +=
        static_cast<std::uint64_t>(intermediate_products(f, x)) *
        sizeof(index_t);
    count.global_bytes_scattered +=
        static_cast<std::uint64_t>(intermediate_products(f, x)) *
            sizeof(index_t) / 2 +
        static_cast<std::uint64_t>(f.nnz()) * 32;
    count.scan_elements += static_cast<std::uint64_t>(f.rows);
    {
      auto count_blocks = std::vector<sim::MetricCounters>(
          std::max<std::size_t>(1, static_cast<std::size_t>(f.rows) / 8));
      for (auto& m : count_blocks) {
        m = count;
        m.global_bytes_coalesced /= count_blocks.size();
        m.global_bytes_scattered /= count_blocks.size();
        m.scan_elements /= count_blocks.size();
      }
      const auto t = sim::schedule_blocks(count_blocks, dev);
      s.stage_times_s.emplace_back(std::string(name) + "-count", t.time_s);
      s.sim_time_s += t.time_s;
      for (const auto& m : count_blocks) s.metrics += m;
    }
    for (const char* extra : {"-scan", "-alloc"}) {
      s.stage_times_s.emplace_back(std::string(name) + extra,
                                   dev.kernel_launch_us * 1e-6);
      s.sim_time_s += dev.kernel_launch_us * 1e-6;
    }
    const auto t = sim::schedule_blocks(blocks, dev);
    s.stage_times_s.emplace_back(name, t.time_s);
    s.sim_time_s += t.time_s;
    for (const auto& m : blocks) s.metrics += m;
    if (blocks.size() >= static_cast<std::size_t>(dev.num_sms))
      s.multiprocessor_load = std::min(s.multiprocessor_load, t.multiprocessor_load);
    return out;
  };

  // A = cur · lo_n · ... · lo_1 with lo_1 created first (rightmost factor).
  Csr<T> x = b;
  for (const Csr<T>& lo : factors_lo) {
    x = run_pass(lo, x, "merge-lo");
    pool += x.byte_size();  // intermediate result in global memory
  }
  Csr<T> c = run_pass(cur, x, "merge-final");

  s.intermediate_products = intermediate_products(a, b);
  s.pool_bytes = pool;
  s.pool_used_bytes = pool;
  s.helper_bytes = static_cast<std::size_t>(a.rows) * sizeof(index_t);
  s.wall_time_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return c;
}

template Csr<float> rmerge_multiply(const Csr<float>&, const Csr<float>&,
                                    SpgemmStats*, int);
template Csr<double> rmerge_multiply(const Csr<double>&, const Csr<double>&,
                                     SpgemmStats*, int);
template class RMerge<float>;
template class RMerge<double>;

}  // namespace acs
