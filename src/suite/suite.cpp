#include "suite/suite.hpp"

#include <stdexcept>

#include "matrix/generators.hpp"
#include "matrix/stats.hpp"

namespace acs {

template <class T>
Csr<T> build_matrix(const SuiteEntry& entry) {
  const GenSpec& g = entry.spec;
  switch (g.kind) {
    case GenSpec::Kind::Uniform:
      return gen_uniform_random<T>(g.rows, g.cols, g.avg, g.spread, g.seed);
    case GenSpec::Kind::UniformLocal:
      return gen_uniform_local<T>(g.rows, g.cols, g.avg, g.spread, g.p1,
                                  g.seed);
    case GenSpec::Kind::Powerlaw:
      return gen_powerlaw<T>(g.rows, g.cols, g.avg, g.spread, g.p1, g.seed);
    case GenSpec::Kind::Banded:
      return gen_banded<T>(g.rows, g.p1, g.seed);
    case GenSpec::Kind::Stencil2D:
      return gen_stencil_2d<T>(g.rows, g.cols, g.seed);
    case GenSpec::Kind::Stencil3D:
      return gen_stencil_3d<T>(g.rows, g.cols, g.p1, g.seed);
    case GenSpec::Kind::Rmat:
      return gen_rmat<T>(static_cast<int>(g.p1), g.avg, 0.57, 0.19, 0.19,
                         g.seed);
    case GenSpec::Kind::BlockDense:
      return gen_block_dense<T>(g.rows, g.cols, g.p1, g.p2, g.seed);
    case GenSpec::Kind::UniformWithLongRows:
      return inject_long_rows<T>(
          gen_uniform_random<T>(g.rows, g.cols, g.avg, g.spread, g.seed), g.p1,
          g.p2, g.seed + 1);
  }
  throw std::logic_error("suite: unknown generator kind");
}

const std::vector<SuiteEntry>& showcase_suite() {
  // Scaled-down structural analogues of the paper's Table 2 matrices. The
  // comments give the paper's (avg len, max len) the regime imitates.
  static const std::vector<SuiteEntry> entries = {
      // language: 0.4M rows, a=3.0, few very long rows (max 11.5k)
      {"language-like", "language graph", true,
       {GenSpec::Kind::UniformWithLongRows, 12000, 12000, 3.0, 1.0, 3, 1500, 101}},
      // scircuit: a=5.6, heavy tail to 353
      {"scircuit-like", "circuit simulation", true,
       {GenSpec::Kind::Powerlaw, 9000, 9000, 5.6, 1.8, 350, 0, 102}},
      // stat96v2: tall-skinny LP matrix, a=98 (non-square -> A·Aᵀ)
      {"stat96v2-like", "linear programming", false,
       {GenSpec::Kind::Uniform, 300, 9600, 98.0, 20.0, 0, 0, 103}},
      // poisson3Da: 3D FEM, a=26
      {"poisson3Da-like", "fluid dynamics", true,
       {GenSpec::Kind::Banded, 2800, 0, 0.0, 0.0, 13, 0, 104}},
      // 144: mesh partitioning, a=14.9, max 26 — mesh matrices are
      // column-local
      {"144-like", "2D/3D mesh", true,
       {GenSpec::Kind::UniformLocal, 6000, 6000, 14.9, 4.0, 1024, 0, 105}},
      // asia_osm: road network, a=2.1, max 9 — extreme locality
      {"asia_osm-like", "road network", true,
       {GenSpec::Kind::UniformLocal, 24000, 24000, 2.1, 1.0, 128, 0, 106}},
      // webbase-1M: web graph, a=3.1 with rows up to 4.7k
      {"webbase-like", "web graph", true,
       {GenSpec::Kind::UniformWithLongRows, 14000, 14000, 3.0, 1.5, 4, 2600, 107}},
      // atmosmodl: 7-point stencil, a=6.9
      {"atmosmodl-like", "atmospheric model", true,
       {GenSpec::Kind::Stencil3D, 16, 16, 0.0, 0.0, 64, 0, 108}},
      // filter3D: a=25.4, max 112 — 3D FEM discretization, column-local
      {"filter3D-like", "3D filter design", true,
       {GenSpec::Kind::UniformLocal, 3500, 3500, 25.4, 6.0, 2048, 0, 109}},
      // bibd_19_9: 171 rows x 92k cols, enormously long rows (non-square)
      {"bibd-like", "combinatorics", false,
       {GenSpec::Kind::BlockDense, 48, 9000, 0.0, 0.0, 600, 3, 110}},
      // TSOPF_RS_b2383: local dense blocks, a=424 (scaled to a=128)
      {"TSOPF-like", "optimal power flow", true,
       {GenSpec::Kind::BlockDense, 400, 400, 0.0, 0.0, 64, 2, 111}},
      // hugebubbles: huge 2D mesh, a=3.0, max 3
      {"hugebubbles-like", "2D mesh", true,
       {GenSpec::Kind::Stencil2D, 160, 160, 0.0, 0.0, 0, 0, 112}},
      // cant: FEM cantilever, a=64, high compaction under A·A
      {"cant-like", "FEM structural", true,
       {GenSpec::Kind::Banded, 2000, 0, 0.0, 0.0, 32, 0, 113}},
      // landmark: tall-skinny least squares, a=16 (non-square)
      {"landmark-like", "least squares", false,
       {GenSpec::Kind::Uniform, 2000, 300, 10.0, 0.5, 0, 0, 114}},
      // hood: FEM car body, a=48.8
      {"hood-like", "FEM structural", true,
       {GenSpec::Kind::Banded, 2600, 0, 0.0, 0.0, 24, 0, 115}},
      // TSC_OPF_1047: a=247.8, very large dense blocks (scaled to a=160)
      {"TSC_OPF-like", "optimal power flow", true,
       {GenSpec::Kind::BlockDense, 250, 250, 0.0, 0.0, 80, 2, 116}},
  };
  return entries;
}

const std::vector<SuiteEntry>& full_suite() {
  static const std::vector<SuiteEntry> entries = [] {
    std::vector<SuiteEntry> v = showcase_suite();
    std::uint64_t seed = 1000;
    auto add = [&](std::string name, std::string domain, bool square,
                   GenSpec spec) {
      spec.seed = ++seed;
      v.push_back({std::move(name), std::move(domain), square, spec});
    };
    // Uniform density ladder (the Fig. 5 trend axis: temporary products
    // grow with avg row length and size).
    // Row counts shrink as density grows to keep intermediate products
    // (which scale with rows × avg²) at a simulator-friendly level. Most
    // entries use column-local draws (window p1), matching the locality of
    // real application matrices; the "-g" variants are fully global.
    struct Uni {
      const char* n;
      double avg;
      index_t rows_s, rows_m;
      index_t window;
    };
    for (const Uni& u : {Uni{"uni-a2", 2, 8000, 20000, 512},
                         Uni{"uni-a4", 4, 8000, 20000, 512},
                         Uni{"uni-a8", 8, 6000, 16000, 1024},
                         Uni{"uni-a12", 12, 5000, 12000, 1024},
                         Uni{"uni-a16", 16, 3000, 9000, 1024},
                         Uni{"uni-a24", 24, 2000, 5000, 2048},
                         Uni{"uni-a32", 32, 1200, 3000, 2048},
                         // Dense entries use tight windows: real dense
                         // application matrices (FEM, power flow) combine
                         // many products per output entry (compaction 10+).
                         Uni{"uni-a48", 48, 1300, 1900, 256},
                         Uni{"uni-a64", 64, 700, 1100, 256},
                         Uni{"uni-a96", 96, 350, 550, 384}}) {
      add(std::string(u.n) + "-s", "synthetic local-uniform", true,
          {GenSpec::Kind::UniformLocal, u.rows_s, u.rows_s, u.avg, u.avg / 4,
           u.window, 0, 0});
      add(std::string(u.n) + "-m", "synthetic local-uniform", true,
          {GenSpec::Kind::UniformLocal, u.rows_m, u.rows_m, u.avg, u.avg / 4,
           u.window, 0, 0});
    }
    add("uni-a8-g", "synthetic global-uniform", true,
        {GenSpec::Kind::Uniform, 6000, 6000, 8.0, 2.0, 0, 0, 0});
    add("uni-a24-g", "synthetic global-uniform", true,
        {GenSpec::Kind::Uniform, 2000, 2000, 24.0, 6.0, 0, 0, 0});
    // Power-law graphs at several scales/exponents (social/web regimes).
    struct Pl {
      const char* n;
      index_t rows;
      double avg, alpha;
      index_t mx;
    };
    for (const Pl& p : {Pl{"pl-web-s", 4000, 4.0, 1.5, 800},
                        Pl{"pl-web-m", 12000, 5.0, 1.5, 800},
                        Pl{"pl-social-s", 5000, 8.0, 1.8, 600},
                        Pl{"pl-social-m", 10000, 12.0, 1.8, 500},
                        Pl{"pl-cite-s", 6000, 6.0, 2.2, 300}}) {
      add(p.n, "power-law graph", true,
          {GenSpec::Kind::Powerlaw, p.rows, p.rows, p.avg, p.alpha, p.mx, 0, 0});
    }
    // R-MAT graphs (Graph500 regime).
    struct Rm {
      const char* n;
      index_t scale;
      double ef;
    };
    for (const Rm& p :
         {Rm{"rmat-s11", 11, 6.0}, Rm{"rmat-s12", 12, 6.0}, Rm{"rmat-s13", 13, 4.0}}) {
      add(p.n, "R-MAT graph", true,
          {GenSpec::Kind::Rmat, 0, 0, p.ef, 0.0, p.scale, 0, 0});
    }
    // FEM/banded ladder (denser regime, crosses the a=42 split).
    struct Fem {
      const char* n;
      index_t rows, band;
    };
    for (const Fem& p : {Fem{"fem-b4", 6000, 4}, Fem{"fem-b8", 4000, 8},
                         Fem{"fem-b16", 2500, 16}, Fem{"fem-b28", 1600, 28},
                         Fem{"fem-b40", 1100, 40}}) {
      add(p.n, "FEM banded", true,
          {GenSpec::Kind::Banded, p.rows, 0, 0.0, 0.0, p.band, 0, 0});
    }
    // Stencils (structured meshes).
    add("mesh2d-s", "2D stencil", true,
        {GenSpec::Kind::Stencil2D, 90, 90, 0, 0, 0, 0, 0});
    add("mesh2d-m", "2D stencil", true,
        {GenSpec::Kind::Stencil2D, 150, 150, 0, 0, 0, 0, 0});
    add("mesh3d-s", "3D stencil", true,
        {GenSpec::Kind::Stencil3D, 18, 18, 0, 0, 18, 0, 0});
    add("mesh3d-m", "3D stencil", true,
        {GenSpec::Kind::Stencil3D, 26, 26, 0, 0, 26, 0, 0});
    // Long-row specials (webbase/wiki regime).
    add("longrow-few", "web graph", true,
        {GenSpec::Kind::UniformWithLongRows, 8000, 8000, 2.5, 1.0, 2, 2200, 0});
    add("longrow-many", "web graph", true,
        {GenSpec::Kind::UniformWithLongRows, 10000, 10000, 3.0, 1.0, 12, 1200, 0});
    // Dense-block specials (TSOPF / quantum chemistry regime).
    add("blocks-narrow", "power flow", true,
        {GenSpec::Kind::BlockDense, 1200, 1200, 0.0, 0.0, 48, 2, 0});
    add("blocks-wide", "power flow", true,
        {GenSpec::Kind::BlockDense, 300, 300, 0.0, 0.0, 64, 2, 0});
    // Tall/skinny LP-style rectangles (A·Aᵀ).
    add("lp-wide", "linear programming", false,
        {GenSpec::Kind::Uniform, 500, 12000, 60.0, 15.0, 0, 0, 0});
    add("lp-tall", "linear programming", false,
        {GenSpec::Kind::Uniform, 6000, 600, 6.0, 2.0, 0, 0, 0});
    // Hypersparse road-network regime (extreme column locality).
    add("road-s", "road network", true,
        {GenSpec::Kind::UniformLocal, 16000, 16000, 2.0, 0.5, 96, 0, 0});
    add("road-m", "road network", true,
        {GenSpec::Kind::UniformLocal, 30000, 30000, 2.2, 0.8, 96, 0, 0});
    return v;
  }();
  return entries;
}

bool is_highly_sparse(const SuiteEntry& entry) {
  // Evaluate the actual average row length of the generated matrix — the
  // paper bins by the measured value, not the target.
  const auto m = build_matrix<double>(entry);
  return row_stats(m).avg_len <= 42.0;
}

template Csr<float> build_matrix<float>(const SuiteEntry&);
template Csr<double> build_matrix<double>(const SuiteEntry&);

}  // namespace acs
