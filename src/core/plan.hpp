#pragma once
/// \file plan.hpp
/// Reusable execution plan for AC-SpGEMM. The first two things every
/// `multiply` does — global load balancing over A's non-zeros (Algorithm 1)
/// and the simplistic chunk-pool estimate (Section 4) — depend only on the
/// operands' sparsity structure, not on their values. A plan captures both,
/// plus the restart feedback of past runs, so repeated multiplications of
/// identically structured matrices (AMG Galerkin chains, iterative graph
/// kernels) skip the setup work and start from a pool size that is known to
/// suffice. `src/runtime` keys plans by a structure fingerprint and caches
/// them across jobs; `multiply_planned` is the core entry point that
/// consumes and refreshes one.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "matrix/types.hpp"

namespace acs {

/// Per-multiply parameters chosen by the auto-tuner (src/tune). A field at
/// its sentinel value leaves the base `Config`'s setting untouched, so a
/// default-constructed TunedParams is a no-op. Parameters are picked from
/// *structural* features only (never from values), which keeps a stored
/// plan applicable to every job sharing the structure fingerprint.
struct TunedParams {
  /// Non-zeros of A per block; 0 = keep `Config::nnz_per_block`.
  int nnz_per_block = 0;
  /// Retained elements per thread between local ESC iterations; -1 = keep
  /// `Config::retain_per_thread`.
  int retain_per_thread = -1;
  /// Long-row cutoff for B; -1 = keep `Config::long_row_threshold`
  /// (0 is a meaningful tuned value: "auto", i.e. temp_capacity()).
  index_t long_row_threshold = -1;
  /// Path-vs-Search merge cutoff; 0 = keep `Config::path_merge_max_chunks`.
  int path_merge_max_chunks = 0;
  /// False = no tuning decision recorded; `apply` is then a no-op.
  bool valid = false;

  friend bool operator==(const TunedParams&, const TunedParams&) = default;

  /// Overlay the tuned values onto `cfg` (sentinel fields leave it alone).
  void apply(Config& cfg) const {
    if (!valid) return;
    if (nnz_per_block > 0) cfg.nnz_per_block = nnz_per_block;
    if (retain_per_thread >= 0) cfg.retain_per_thread = retain_per_thread;
    if (long_row_threshold >= 0) cfg.long_row_threshold = long_row_threshold;
    if (path_merge_max_chunks > 0)
      cfg.path_merge_max_chunks = path_merge_max_chunks;
  }
};

struct SpgemmPlan {
  /// blockRowStarts of Algorithm 1, one entry per block. Empty means the
  /// plan carries no load-balancing table yet and the pipeline builds one.
  std::vector<index_t> block_row_starts;
  /// Decomposition the table was built for; a plan only applies to a run
  /// with the same `Config::nnz_per_block` ...
  int nnz_per_block = 0;
  /// ... and the same nnz(A) (same structure implies same nnz).
  offset_t nnz_a = 0;
  /// Initial chunk-pool capacity to use; 0 = run the paper's estimate.
  /// After a run this holds the final capacity including restart growth, so
  /// replaying the plan needs no restarts.
  std::size_t pool_bytes = 0;

  // --- Feedback from the most recent planned run. ------------------------
  /// Pool bytes actually used (the high-water mark future sizing rests on).
  std::size_t observed_pool_used = 0;
  /// Restarts the last run incurred (0 once the plan has converged).
  int observed_restarts = 0;
  /// Completed runs recorded into this plan.
  std::size_t runs = 0;

  // --- Auto-tuner state (src/tune), carried through the PlanCache. -------
  /// Parameters the tuner chose for this structure; invalid = untuned.
  /// A warm plan-cache hit replays them for free (no feature re-extraction).
  TunedParams tuned;
  /// Exact intermediate-product count measured by the first tuned run
  /// (`SpgemmStats::intermediate_products`). Structure-determined, so it is
  /// identical for every job sharing the fingerprint; the feedback tuning
  /// mode uses it to replace the sampled upfront estimate and re-rank
  /// candidates. 0 = not measured yet.
  offset_t measured_products = 0;
  /// Feedback refinements applied (the refined choice is stable after the
  /// first, because the calibration input is exact and structural).
  std::uint32_t feedback_runs = 0;

  /// True if the stored load-balancing table can be reused for a
  /// multiplication of an A with `nnz` non-zeros under `cfg`.
  [[nodiscard]] bool has_load_balance(const Config& cfg, offset_t nnz) const {
    return !block_row_starts.empty() && nnz_per_block == cfg.nnz_per_block &&
           nnz_a == nnz;
  }
};

}  // namespace acs
