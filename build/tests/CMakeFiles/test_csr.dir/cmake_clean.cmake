file(REMOVE_RECURSE
  "CMakeFiles/test_csr.dir/test_csr.cpp.o"
  "CMakeFiles/test_csr.dir/test_csr.cpp.o.d"
  "test_csr"
  "test_csr.pdb"
  "test_csr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
