#include "trace/trace.hpp"

#include <algorithm>

namespace acs::trace {

CountersSnapshot& CountersSnapshot::operator+=(const CountersSnapshot& o) {
  pool_alloc_bytes += o.pool_alloc_bytes;
  pool_denials += o.pool_denials;
  pool_capacity_bytes = std::max(pool_capacity_bytes, o.pool_capacity_bytes);
  pool_used_bytes = std::max(pool_used_bytes, o.pool_used_bytes);
  pool_estimate_bytes = std::max(pool_estimate_bytes, o.pool_estimate_bytes);
  restarts += o.restarts;
  esc_blocks += o.esc_blocks;
  esc_iterations += o.esc_iterations;
  for (std::size_t i = 0; i < kEscHistBuckets; ++i)
    esc_iteration_hist[i] += o.esc_iteration_hist[i];
  chunks_written += o.chunks_written;
  long_row_chunks += o.long_row_chunks;
  for (std::size_t i = 0; i < merge_case_rows.size(); ++i)
    merge_case_rows[i] += o.merge_case_rows[i];
  merge_windows += o.merge_windows;
  blocks_executed += o.blocks_executed;
  block_time_ns_sum += o.block_time_ns_sum;
  block_time_ns_max = std::max(block_time_ns_max, o.block_time_ns_max);
  serve_submitted += o.serve_submitted;
  serve_admitted += o.serve_admitted;
  serve_rejected += o.serve_rejected;
  serve_shed += o.serve_shed;
  serve_degraded += o.serve_degraded;
  serve_deadline_misses += o.serve_deadline_misses;
  serve_queue_depth_peak =
      std::max(serve_queue_depth_peak, o.serve_queue_depth_peak);
  cold_tunes += o.cold_tunes;
  bg_tunes += o.bg_tunes;
  cache_loads += o.cache_loads;
  return *this;
}

CountersSnapshot Counters::snapshot() const {
  CountersSnapshot s;
  const auto get = [](const std::atomic<std::uint64_t>& a) {
    // mo: snapshot of monotonic counters; exact totals only after joins.
    return a.load(std::memory_order_relaxed);
  };
  s.pool_alloc_bytes = get(pool_alloc_bytes);
  s.pool_denials = get(pool_denials);
  s.pool_capacity_bytes = get(pool_capacity_bytes);
  s.pool_used_bytes = get(pool_used_bytes);
  s.pool_estimate_bytes = get(pool_estimate_bytes);
  s.restarts = get(restarts);
  s.esc_blocks = get(esc_blocks);
  s.esc_iterations = get(esc_iterations);
  for (std::size_t i = 0; i < kEscHistBuckets; ++i)
    s.esc_iteration_hist[i] = get(esc_iteration_hist[i]);
  s.chunks_written = get(chunks_written);
  s.long_row_chunks = get(long_row_chunks);
  for (std::size_t i = 0; i < s.merge_case_rows.size(); ++i)
    s.merge_case_rows[i] = get(merge_case_rows[i]);
  s.merge_windows = get(merge_windows);
  s.blocks_executed = get(blocks_executed);
  s.block_time_ns_sum = get(block_time_ns_sum);
  s.block_time_ns_max = get(block_time_ns_max);
  s.serve_submitted = get(serve_submitted);
  s.serve_admitted = get(serve_admitted);
  s.serve_rejected = get(serve_rejected);
  s.serve_shed = get(serve_shed);
  s.serve_degraded = get(serve_degraded);
  s.serve_deadline_misses = get(serve_deadline_misses);
  s.serve_queue_depth_peak = get(serve_queue_depth_peak);
  s.cold_tunes = get(cold_tunes);
  s.bg_tunes = get(bg_tunes);
  s.cache_loads = get(cache_loads);
  return s;
}

SpanId TraceSession::begin_span(std::string_view name) {
  const double t = now_s();
  acs::MutexLock lock(m_);
  auto [it, inserted] = threads_.try_emplace(std::this_thread::get_id());
  if (inserted) it->second.slot = static_cast<std::uint32_t>(threads_.size() - 1);
  ThreadState& ts = it->second;

  SpanRecord rec;
  rec.name.assign(name);
  rec.parent = ts.stack.empty() ? kNoSpan : ts.stack.back();
  rec.thread = ts.slot;
  rec.start_s = t;
  rec.end_s = t;  // open span: end tracks start until closed
  const auto id = static_cast<SpanId>(spans_.size());
  spans_.push_back(std::move(rec));
  ts.stack.push_back(id);
  return id;
}

void TraceSession::end_span(SpanId id, double sim_time_s) {
  const double t = now_s();
  acs::MutexLock lock(m_);
  if (id >= spans_.size()) return;
  SpanRecord& rec = spans_[id];
  rec.end_s = t;
  rec.sim_time_s += sim_time_s;
  // Pop from the owning thread's stack. Spans close in LIFO order per
  // thread (ScopedSpan enforces it); tolerate out-of-order closes from
  // hand-rolled begin/end pairs by erasing wherever the id sits.
  const auto it = threads_.find(std::this_thread::get_id());
  if (it != threads_.end()) {
    auto& stack = it->second.stack;
    if (!stack.empty() && stack.back() == id) {
      stack.pop_back();
    } else {
      const auto pos = std::find(stack.begin(), stack.end(), id);
      if (pos != stack.end()) stack.erase(pos);
    }
  }
}

void TraceSession::add_sim_time(SpanId id, double sim_time_s) {
  acs::MutexLock lock(m_);
  if (id < spans_.size()) spans_[id].sim_time_s += sim_time_s;
}

std::vector<SpanRecord> TraceSession::spans() const {
  acs::MutexLock lock(m_);
  return spans_;
}

std::size_t TraceSession::span_count() const {
  acs::MutexLock lock(m_);
  return spans_.size();
}

double TraceSession::elapsed_s() const { return now_s(); }

}  // namespace acs::trace
