file(REMOVE_RECURSE
  "CMakeFiles/acs_suite.dir/bench_runner.cpp.o"
  "CMakeFiles/acs_suite.dir/bench_runner.cpp.o.d"
  "CMakeFiles/acs_suite.dir/hybrid.cpp.o"
  "CMakeFiles/acs_suite.dir/hybrid.cpp.o.d"
  "CMakeFiles/acs_suite.dir/registry.cpp.o"
  "CMakeFiles/acs_suite.dir/registry.cpp.o.d"
  "CMakeFiles/acs_suite.dir/suite.cpp.o"
  "CMakeFiles/acs_suite.dir/suite.cpp.o.d"
  "CMakeFiles/acs_suite.dir/table.cpp.o"
  "CMakeFiles/acs_suite.dir/table.cpp.o.d"
  "CMakeFiles/acs_suite.dir/verify.cpp.o"
  "CMakeFiles/acs_suite.dir/verify.cpp.o.d"
  "libacs_suite.a"
  "libacs_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acs_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
