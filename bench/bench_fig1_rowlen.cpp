/// \file bench_fig1_rowlen.cpp
/// Reproduces Figure 1: average non-zeros per row across the matrix
/// collection, with min and max per matrix overlaid. The paper's
/// observation motivating the design: the majority of matrices have average
/// row lengths below 200, so a block holding ~4000 temporaries can cover
/// many rows per ESC iteration.

#include <iostream>

#include "matrix/stats.hpp"
#include "suite/suite.hpp"
#include "suite/table.hpp"

int main() {
  using namespace acs;
  std::cout << "Figure 1: average (min..max) non-zeros per row over the "
               "synthetic SuiteSparse stand-in\n\n";

  TextTable table({"matrix", "domain", "rows", "nnz", "avg", "min", "max"});
  int below_42 = 0, below_200 = 0, total = 0;
  CsvWriter csv("fig1_rowlen.csv");
  csv.write_row({"matrix", "domain", "rows", "nnz", "avg", "min", "max"});
  for (const auto& entry : full_suite()) {
    const auto m = build_matrix<double>(entry);
    const auto s = row_stats(m);
    table.add_row({entry.name, entry.domain, TextTable::si(m.rows),
                   TextTable::si(static_cast<double>(m.nnz())),
                   TextTable::num(s.avg_len, 1), std::to_string(s.min_len),
                   std::to_string(s.max_len)});
    csv.write_row({entry.name, entry.domain, std::to_string(m.rows),
                   std::to_string(m.nnz()), TextTable::num(s.avg_len, 2),
                   std::to_string(s.min_len), std::to_string(s.max_len)});
    ++total;
    if (s.avg_len <= 42.0) ++below_42;
    if (s.avg_len <= 200.0) ++below_200;
  }
  std::cout << table.str() << "\n";
  std::cout << "matrices with avg row length <= 42 (the paper's 'highly "
               "sparse' split): "
            << below_42 << "/" << total << " ("
            << TextTable::num(100.0 * below_42 / total, 0)
            << "%, paper: 80%)\n";
  std::cout << "matrices with avg row length <= 200 (the paper's Fig. 1 "
               "observation): "
            << below_200 << "/" << total << "\n";
  std::cout << "\nwrote fig1_rowlen.csv\n";
  return 0;
}
