/// \file bench_fig7_breakdown.cpp
/// Reproduces Figure 7: relative runtime of AC-SpGEMM's stages — global
/// load balancing (GLB), chunk-based ESC (ESC), merge-case assignment
/// (MCC), Multi Merge (MM), Path Merge (PM), Search Merge (SM), and chunk
/// copy (CC) — per showcase matrix. Paper shape: ESC dominates under ideal
/// conditions; merge grows for matrices with long rows / many shared rows;
/// GLB is negligible everywhere.
///
/// The breakdown is built from the observability layer's real stage spans
/// (src/trace/): every matrix runs under one root span and the fractions
/// are the simulated time attributed to its stage spans. The same numbers
/// are cross-checked against `SpgemmStats::stage_time` — the bench fails if
/// they disagree by more than 5% of the total (they are the same attribution
/// recorded twice, so in practice they match exactly).
///
/// Run:  ./bench_fig7_breakdown [--trace-json out.json]
///   --trace-json writes the whole figure as Chrome trace_event JSON; load
///   it in Perfetto (https://ui.perfetto.dev) or chrome://tracing. Spans sit
///   on the simulated timeline, so the viewer's per-stage totals equal the
///   printed breakdown.

#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>

#include "core/acspgemm.hpp"
#include "matrix/transpose.hpp"
#include "suite/suite.hpp"
#include "suite/table.hpp"
#include "trace/exporters.hpp"
#include "trace/trace.hpp"

int main(int argc, char** argv) {
  using namespace acs;

  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--trace-json" && i + 1 < argc)
      trace_path = argv[++i];
  }

  std::cout << "Figure 7: relative runtime of AC-SpGEMM's stages (fraction "
               "of total simulated time)\n\n";

  std::vector<std::string> header{"matrix"};
  for (const char* s : trace::kStageNames) header.push_back(s);
  TextTable table(header);
  CsvWriter csv("fig7_breakdown.csv");
  csv.write_row(header);

  // One session for the whole figure: each matrix runs under a root span
  // named after it, the pipeline's stage spans nest underneath.
  trace::TraceSession session;
  Config cfg;
  cfg.trace = &session;

  double worst_dev = 0.0;  // spans vs SpgemmStats, fraction of total
  for (const auto& entry : showcase_suite()) {
    const auto a = build_matrix<double>(entry);
    const auto b = entry.square ? a : transpose(a);
    SpgemmStats stats;
    const trace::SpanId root = session.begin_span(entry.name);
    multiply(a, b, cfg, &stats);
    session.end_span(root);

    const auto stage_sim = trace::sim_stage_totals(session.spans(), root);
    double total = 0.0;
    for (double t : stage_sim) total += t;

    std::vector<std::string> row{entry.name};
    for (std::size_t i = 0; i < trace::kNumStages; ++i) {
      row.push_back(TextTable::num(total > 0.0 ? stage_sim[i] / total : 0.0, 3));
      const double dev = std::abs(stage_sim[i] - stats.stage_time(trace::kStageNames[i]));
      if (total > 0.0) worst_dev = std::max(worst_dev, dev / total);
    }
    table.add_row(row);
    csv.write_row(row);
  }
  std::cout << table.str();
  std::cout << "\nwrote fig7_breakdown.csv\n";

  if (!trace_path.empty()) {
    std::ofstream(trace_path) << trace::to_chrome_json(session);
    std::cout << "wrote " << trace_path
              << " (Chrome trace_event JSON, simulated timeline — open in "
                 "Perfetto)\n";
  }

  std::cerr << "trace-span vs stats stage attribution: worst deviation "
            << worst_dev * 100.0 << "% of total"
            << (worst_dev <= 0.05 ? "  [ok]" : "  [MISMATCH]") << "\n";
  return worst_dev <= 0.05 ? 0 : 1;
}
