#include "sim/cost_model.hpp"

#include <algorithm>

namespace acs::sim {

double block_time_s(const MetricCounters& m, const DeviceConfig& dev) {
  const double bw = dev.mem_bandwidth_gb * 1e9;
  // Memory time: the device bandwidth is shared by all SMs; a single block
  // sees roughly 1/num_sms of it when the device is saturated, which is the
  // regime all our kernels run in.
  const double block_bw = bw / static_cast<double>(dev.num_sms);
  const double mem_s =
      (static_cast<double>(m.global_bytes_coalesced) +
       static_cast<double>(m.global_bytes_scattered) / dev.scatter_efficiency) /
      block_bw;

  // Weights are instructions per counted unit: a radix-sort pass costs ~4
  // instructions per element (digit extract, rank scan, scatter), a scan
  // element ~2 (load, combine, store), a hash probe ~1.5 (hash, compare,
  // CAS). These ratios drive the paper's ESC-vs-hashing crossover: at high
  // compaction factors the per-product sort cost exceeds the probe cost.
  const double ops = static_cast<double>(m.scratch_ops) * 0.25 +
                     static_cast<double>(m.sort_pass_elements) * 4.0 +
                     static_cast<double>(m.scan_elements) * 2.0 +
                     static_cast<double>(m.hash_probes) * 1.5 +
                     static_cast<double>(m.compute_ops) * 1.0 +
                     static_cast<double>(m.flops) * 0.25;
  const double compute_s =
      ops / (dev.ops_per_clock_per_sm * dev.clock_ghz * 1e9);
  const double atomic_s = static_cast<double>(m.atomic_ops) * dev.atomic_ns * 1e-9;

  // Every block pays a small scheduling/drain overhead; kernels with many
  // thin blocks (warp-per-row strategies on sparse inputs) feel it most.
  return std::max(mem_s, compute_s) + atomic_s + dev.block_overhead_us * 1e-6;
}

KernelTiming schedule_blocks(const std::vector<double>& block_times_s,
                             const DeviceConfig& dev) {
  KernelTiming out;
  out.time_s = dev.kernel_launch_us * 1e-6;
  if (block_times_s.empty()) return out;

  // Greedy list scheduling in block-id order onto SM slots: each next block
  // goes to the earliest-free slot, mirroring the hardware block dispatcher.
  const int slots = std::max(1, dev.num_sms * dev.blocks_per_sm);
  std::vector<double> slot_busy(static_cast<std::size_t>(slots), 0.0);
  for (double t : block_times_s) {
    auto it = std::min_element(slot_busy.begin(), slot_busy.end());
    *it += t;
  }

  // Resident blocks on one SM overlap (that is what multiple slots model),
  // so the makespan is the busiest slot. The load metric compares total
  // work per SM (each SM aggregates its resident slots).
  const double max_slot = *std::max_element(slot_busy.begin(), slot_busy.end());
  out.time_s += max_slot;

  std::vector<double> sm_busy(static_cast<std::size_t>(dev.num_sms), 0.0);
  for (int s = 0; s < slots; ++s)
    sm_busy[static_cast<std::size_t>(s % dev.num_sms)] +=
        slot_busy[static_cast<std::size_t>(s)];
  const double max_sm = *std::max_element(sm_busy.begin(), sm_busy.end());
  const double min_sm = *std::min_element(sm_busy.begin(), sm_busy.end());
  out.multiprocessor_load = max_sm > 0.0 ? min_sm / max_sm : 1.0;
  return out;
}

KernelTiming schedule_blocks(const std::vector<MetricCounters>& blocks,
                             const DeviceConfig& dev) {
  std::vector<double> times;
  times.reserve(blocks.size());
  for (const auto& b : blocks) times.push_back(block_time_s(b, dev));
  return schedule_blocks(times, dev);
}

}  // namespace acs::sim
