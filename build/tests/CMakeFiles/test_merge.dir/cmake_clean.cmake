file(REMOVE_RECURSE
  "CMakeFiles/test_merge.dir/test_merge.cpp.o"
  "CMakeFiles/test_merge.dir/test_merge.cpp.o.d"
  "test_merge"
  "test_merge.pdb"
  "test_merge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
