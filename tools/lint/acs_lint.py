#!/usr/bin/env python3
"""acs-lint: project-specific static analysis for the AC-SpGEMM repo.

Checks the domain rules that generic tooling cannot know (DESIGN.md §10):

  mo-justify        every std::memory_order_{relaxed,acquire,release,acq_rel}
                    argument carries a `// mo:` justification comment on the
                    same line or in the comment block directly above it.
  trace-span-paired outside src/trace/, raw TraceSession::begin_span calls
                    must be provably paired with an end_span in the same
                    function body; the RAII macros (ACS_TRACE_SPAN/SCOPE)
                    are the sanctioned spelling.
  typed-indices     public headers declare row/column/nnz quantities with
                    the project typedefs (index_t/offset_t, matrix/types.hpp),
                    never raw int/long. Shape knobs and bit/byte counts
                    (e.g. nnz_per_block, row_bits) are exempt.
  banned-calls      library code (src/ outside src/suite/) never calls
                    rand/srand/time or the printf family — determinism and
                    the trace layer are the only sanctioned side channels.
  mutex-annotated   every mutex member is an acs::Mutex (never a raw
                    std::mutex) and guards at least one ACS_GUARDED_BY
                    member, or carries a `lint: allow` justification.
  raii-locks-only   no naked `.lock()`/`.unlock()`/`.try_lock()` calls —
                    lock lifetime is scoped by acs::MutexLock — and
                    std::condition_variable::wait always takes a predicate
                    (acs::CondVar sites spell the while-loop explicitly).
  lock-order        whole-project static deadlock check: builds the
                    acquires-while-holding graph from acs::MutexLock sites,
                    ACS_REQUIRES annotations and the method call graph, and
                    requires every edge to strictly increase the ranks
                    registered in tools/lint/lock_order.toml (cycles,
                    inversions, unranked and stale mutexes all fail).
  self-sufficient   every public header compiles standalone (its includes
                    are complete), checked with `$CXX -fsyntax-only`.

Backends: uses libclang (python `clang.cindex`) for AST-accurate
declaration info when the bindings are installed; otherwise falls back to
the built-in lexer backend, which strips comments and string literals and
applies the same rules textually. Both backends agree on this repo and on
the fixtures (tools/lint/test_acs_lint.py proves the fixture half).

Exit status: 0 when no findings, 1 when findings, 2 on usage errors.
Suppressions: a `// lint: allow(<rule>)` comment on the flagged line.
"""

from __future__ import annotations

import argparse
import os
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]

try:  # pragma: no cover - exercised only where bindings exist
    import clang.cindex  # type: ignore

    HAVE_LIBCLANG = True
except ImportError:
    HAVE_LIBCLANG = False


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        try:
            rel = self.path.relative_to(REPO)
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# Lexer backend: blank out comments and literals, keep geometry identical.
# ---------------------------------------------------------------------------


def lex(text: str) -> tuple[str, dict[int, str]]:
    """Return (code, comments): `code` is `text` with comments and the
    contents of string/char literals replaced by spaces (newlines kept, so
    offsets and line numbers are unchanged); `comments` maps 1-based line
    numbers to the concatenated comment text on that line."""
    code: list[str] = []
    comments: dict[int, str] = {}
    line = 1
    i = 0
    n = len(text)

    def put(ch: str) -> None:
        code.append(ch if ch == "\n" else " ")

    def note(ch: str) -> None:
        comments[line] = comments.get(line, "") + ch

    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                note(text[i])
                put(text[i])
                i += 1
            continue
        if ch == "/" and nxt == "*":
            put(ch)
            put(nxt)
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] == "\n":
                    line += 1
                else:
                    note(text[i])
                put(text[i])
                i += 1
            if i < n:
                put("*")
                put("/")
                i += 2
            continue
        if ch == 'R' and nxt == '"':  # raw string R"delim( ... )delim"
            m = re.match(r'R"([^(\s\\)]{0,16})\(', text[i:])
            if m:
                end = text.find(")" + m.group(1) + '"', i + m.end())
                end = n if end < 0 else end + len(m.group(1)) + 2
                while i < end:
                    if text[i] == "\n":
                        line += 1
                        code.append("\n")
                    else:
                        put(text[i])
                    i += 1
                continue
        if ch in "\"'":
            quote = ch
            code.append(quote)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    put(" ")
                    i += 1
                    if i < n:
                        if text[i] == "\n":
                            line += 1
                            code.append("\n")
                        else:
                            put(" ")
                        i += 1
                    continue
                if text[i] == "\n":  # unterminated; bail on the literal
                    break
                put(" ")
                i += 1
            if i < n and text[i] == quote:
                code.append(quote)
                i += 1
            continue
        if ch == "\n":
            line += 1
        code.append(ch)
        i += 1
    return "".join(code), comments


def line_of(code: str, pos: int) -> int:
    return code.count("\n", 0, pos) + 1


def suppressed(rule: str, lineno: int, comments: dict[int, str]) -> bool:
    c = comments.get(lineno, "")
    return f"allow({rule})" in c and "lint:" in c


# ---------------------------------------------------------------------------
# Rule: mo-justify
# ---------------------------------------------------------------------------

MO_RE = re.compile(r"std\s*::\s*memory_order_(relaxed|acquire|release|acq_rel)")


def rule_mo_justify(path: Path, code: str, comments: dict[int, str],
                    raw_lines: list[str]) -> list[Finding]:
    findings = []
    code_lines = code.split("\n")
    for m in MO_RE.finditer(code):
        lineno = line_of(code, m.start())
        if suppressed("mo-justify", lineno, comments):
            continue
        justified = "mo:" in comments.get(lineno, "")
        # Walk up to the start of the statement (continuation lines carry
        # code but no terminator), then through the attached comment block
        # (max 3 comment lines; a blank line detaches it).
        look = lineno - 1
        while not justified and look >= 1:
            stripped = code_lines[look - 1].strip()
            if stripped == "" or stripped.endswith((";", "{", "}", ":")):
                break  # previous statement ended; leave continuation walk
            if "mo:" in comments.get(look, ""):
                justified = True
            look -= 1
        steps = 0
        while not justified and look >= 1 and steps < 3:
            has_code = code_lines[look - 1].strip() != ""
            if has_code:
                break
            if "mo:" in comments.get(look, ""):
                justified = True
            if raw_lines[look - 1].strip() == "":
                break  # blank line detaches the comment block
            look -= 1
            steps += 1
        if not justified:
            findings.append(Finding(
                path, lineno, "mo-justify",
                f"std::memory_order_{m.group(1)} without a `// mo:` "
                "justification comment (same line or the comment block "
                "directly above)"))
    return findings


# ---------------------------------------------------------------------------
# Rule: trace-span-paired
# ---------------------------------------------------------------------------


def enclosing_function_body(code: str, pos: int) -> tuple[int, int] | None:
    """Byte range of the innermost brace block containing `pos` that looks
    like a function body (its opening brace follows a `)` or a function
    qualifier). Returns None when `pos` sits at namespace/class scope."""
    stack: list[int] = []
    blocks: list[tuple[int, int]] = []
    for i, ch in enumerate(code):
        if ch == "{":
            stack.append(i)
        elif ch == "}" and stack:
            open_i = stack.pop()
            if open_i < pos < i:
                blocks.append((open_i, i))
    qualifier = re.compile(
        r"(\)|const|noexcept|override|final|mutable|->\s*[\w:<>,\s&*]+|try)\s*$")
    for open_i, close_i in blocks:  # innermost first
        before = code[:open_i].rstrip()
        if qualifier.search(before):
            return open_i, close_i
    return None


def rule_trace_span(path: Path, code: str, comments: dict[int, str],
                    raw_lines: list[str]) -> list[Finding]:
    del raw_lines
    if "src/trace" in path.as_posix():
        return []  # the implementation of the RAII wrapper itself
    findings = []
    for m in re.finditer(r"\bbegin_span\s*\(", code):
        before = code[:m.start()].rstrip()
        if not before.endswith((".", ">")):
            continue  # declaration/definition, not a member call
        lineno = line_of(code, m.start())
        if suppressed("trace-span-paired", lineno, comments):
            continue
        body = enclosing_function_body(code, m.start())
        paired = body is not None and re.search(
            r"\bend_span\s*\(", code[m.end():body[1]]) is not None
        if not paired:
            findings.append(Finding(
                path, lineno, "trace-span-paired",
                "raw begin_span without an end_span later in the same "
                "function — use ACS_TRACE_SPAN/ACS_TRACE_SCOPE (RAII) "
                "instead"))
    return findings


# ---------------------------------------------------------------------------
# Rule: typed-indices
# ---------------------------------------------------------------------------

DECL_RE = re.compile(
    r"\b(?P<type>(?:unsigned\s+)?(?:long\s+long|long|int|short)|unsigned)\s+"
    r"(?P<name>[A-Za-z_]\w*)\s*(?==|;|,|\)|\{)")
INDEX_NAME_RE = re.compile(r"(^|_)(rows?|cols?|nnz)(_|$)")
INDEX_EXEMPT_RE = re.compile(
    r"(bits|bytes|per_block|per_thread|chunks|blocks|shift|stride|passes)")


def rule_typed_indices(path: Path, code: str, comments: dict[int, str],
                       raw_lines: list[str]) -> list[Finding]:
    del raw_lines
    if path.suffix not in (".hpp", ".h"):
        return []
    findings = []
    for m in DECL_RE.finditer(code):
        name = m.group("name")
        if not INDEX_NAME_RE.search(name) or INDEX_EXEMPT_RE.search(name):
            continue
        lineno = line_of(code, m.start())
        if suppressed("typed-indices", lineno, comments):
            continue
        findings.append(Finding(
            path, lineno, "typed-indices",
            f"`{m.group('type')} {name}` in a public header: row/column/nnz "
            "quantities must use index_t/offset_t (matrix/types.hpp)"))
    return findings


def rule_typed_indices_clang(path: Path, index) -> list[Finding]:
    """AST-accurate variant of typed-indices used when libclang is
    available: inspects the canonical type of every declaration instead of
    pattern-matching the declaration text."""
    findings = []
    tu = index.parse(str(path), args=["-std=c++20", f"-I{REPO / 'src'}",
                                      "-fsyntax-only"])
    raw_kinds = {
        clang.cindex.TypeKind.INT, clang.cindex.TypeKind.LONG,
        clang.cindex.TypeKind.LONGLONG, clang.cindex.TypeKind.SHORT,
        clang.cindex.TypeKind.UINT, clang.cindex.TypeKind.ULONG,
        clang.cindex.TypeKind.ULONGLONG, clang.cindex.TypeKind.USHORT,
    }
    decl_kinds = {
        clang.cindex.CursorKind.VAR_DECL, clang.cindex.CursorKind.FIELD_DECL,
        clang.cindex.CursorKind.PARM_DECL,
    }
    for cur in tu.cursor.walk_preorder():
        if cur.kind not in decl_kinds:
            continue
        if cur.location.file is None or cur.location.file.name != str(path):
            continue
        name = cur.spelling or ""
        if not INDEX_NAME_RE.search(name) or INDEX_EXEMPT_RE.search(name):
            continue
        t = cur.type
        # A typedef like index_t has kind TYPEDEF at the declared level even
        # though the canonical type is a builtin — only flag spelled-out
        # builtins.
        if t.kind in raw_kinds:
            findings.append(Finding(
                path, cur.location.line, "typed-indices",
                f"`{t.spelling} {name}` in a public header: row/column/nnz "
                "quantities must use index_t/offset_t (matrix/types.hpp)"))
    return findings


# ---------------------------------------------------------------------------
# Rule: banned-calls
# ---------------------------------------------------------------------------

BANNED_RE = re.compile(
    r"(?<![\w.>:])(?:std\s*::\s*)?"
    r"(?P<fn>rand|srand|time|printf|fprintf|sprintf|vprintf|puts)"
    r"\s*\(")


def rule_banned_calls(path: Path, code: str, comments: dict[int, str],
                      raw_lines: list[str]) -> list[Finding]:
    del raw_lines
    parts = set(path.parts)
    exempt_dirs = {"suite", "bench", "tools", "tests", "examples"}
    if "fixtures" not in parts and exempt_dirs & parts:
        return []
    findings = []
    for m in BANNED_RE.finditer(code):
        lineno = line_of(code, m.start())
        if suppressed("banned-calls", lineno, comments):
            continue
        findings.append(Finding(
            path, lineno, "banned-calls",
            f"call of `{m.group('fn')}` in library code: randomness, wall "
            "clocks and stdout are banned outside src/suite, bench and "
            "tools (determinism; use the trace layer for output)"))
    return findings


# ---------------------------------------------------------------------------
# Shared helpers for the concurrency rules
# ---------------------------------------------------------------------------

WRAPPER_HEADER = "core/thread_annotations.hpp"


def exempt_concurrency_path(path: Path) -> bool:
    """Tests, benches and tooling may use raw primitives; the annotation
    wrapper itself necessarily does. Fixtures are never exempt."""
    parts = set(path.parts)
    exempt_dirs = {"suite", "bench", "tools", "tests", "examples"}
    if "fixtures" not in parts and exempt_dirs & parts:
        return True
    return path.as_posix().endswith(WRAPPER_HEADER)


def balanced_args(code: str, open_pos: int) -> tuple[list[str] | None, int]:
    """Split the argument list whose opening bracket sits at `open_pos` into
    top-level arguments. Returns (args, close_pos); args is None when the
    bracket never closes."""
    depth = 0
    args: list[str] = []
    cur: list[str] = []
    for i in range(open_pos, len(code)):
        ch = code[i]
        if ch in "([{":
            depth += 1
            if depth == 1:
                continue
        elif ch in ")]}":
            depth -= 1
            if depth == 0:
                text = "".join(cur).strip()
                if text:
                    args.append(text)
                return args, i
        elif ch == "," and depth == 1:
            args.append("".join(cur).strip())
            cur = []
            continue
        if depth >= 1:
            cur.append(ch)
    return None, len(code)


# ---------------------------------------------------------------------------
# Rule: mutex-annotated
# ---------------------------------------------------------------------------

MUTEX_DECL_RE = re.compile(
    r"(?:\bmutable\s+)?\b(?P<kind>acs\s*::\s*Mutex|std\s*::\s*mutex)\s+"
    r"(?P<name>[A-Za-z_]\w*)\s*;")


def rule_mutex_annotated(path: Path, code: str, comments: dict[int, str],
                         raw_lines: list[str]) -> list[Finding]:
    del raw_lines
    if exempt_concurrency_path(path):
        return []
    findings = []
    for m in MUTEX_DECL_RE.finditer(code):
        lineno = line_of(code, m.start())
        if suppressed("mutex-annotated", lineno, comments):
            continue
        name = m.group("name")
        if m.group("kind").lstrip().startswith("std"):
            findings.append(Finding(
                path, lineno, "mutex-annotated",
                f"raw `std::mutex {name}`: declare acs::Mutex "
                "(core/thread_annotations.hpp) so -Wthread-safety sees the "
                "capability"))
            continue
        guarded = re.search(
            r"ACS_(?:PT_)?GUARDED_BY\(\s*" + re.escape(name) + r"\s*\)", code)
        if not guarded:
            findings.append(Finding(
                path, lineno, "mutex-annotated",
                f"mutex `{name}` guards nothing: annotate at least one "
                f"member with ACS_GUARDED_BY({name}) or justify with "
                "`// lint: allow(mutex-annotated)`"))
    return findings


# ---------------------------------------------------------------------------
# Rule: raii-locks-only
# ---------------------------------------------------------------------------

NAKED_LOCK_RE = re.compile(r"(?:\.|->)\s*(?P<fn>unlock|try_lock|lock)\s*\(\s*\)")
STD_CV_DECL_RE = re.compile(
    r"\bstd\s*::\s*condition_variable(?:_any)?\s+(?P<name>[A-Za-z_]\w*)\s*;")


def rule_raii_locks_only(path: Path, code: str, comments: dict[int, str],
                         raw_lines: list[str]) -> list[Finding]:
    del raw_lines
    if exempt_concurrency_path(path):
        return []
    findings = []
    for m in NAKED_LOCK_RE.finditer(code):
        lineno = line_of(code, m.start())
        if suppressed("raii-locks-only", lineno, comments):
            continue
        findings.append(Finding(
            path, lineno, "raii-locks-only",
            f"naked `.{m.group('fn')}()`: lock lifetime must be scoped by "
            "acs::MutexLock so the capability is released on every path"))
    cv_names = {m.group("name") for m in STD_CV_DECL_RE.finditer(code)}
    for name in sorted(cv_names):
        for m in re.finditer(r"\b" + re.escape(name) + r"\s*\.\s*wait\s*\(",
                             code):
            args, _close = balanced_args(code, m.end() - 1)
            if args is None or len(args) != 1:
                continue
            lineno = line_of(code, m.start())
            if suppressed("raii-locks-only", lineno, comments):
                continue
            findings.append(Finding(
                path, lineno, "raii-locks-only",
                f"`{name}.wait(lock)` without a predicate: spurious wakeups "
                "make the single-argument overload a bug — pass the "
                "predicate (or use acs::CondVar with an explicit while "
                "loop)"))
    return findings


# ---------------------------------------------------------------------------
# Rule: lock-order (whole-project)
# ---------------------------------------------------------------------------

try:  # pragma: no cover - py3.11+ everywhere we run
    import tomllib
except ImportError:  # pragma: no cover
    tomllib = None  # type: ignore

CLASS_RE = re.compile(r"\b(class|struct)\s+([A-Za-z_]\w*(?:\s*::\s*\w+)*)")
CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "do", "else",
    "sizeof", "new", "delete", "throw", "alignof", "decltype",
    "static_assert", "constexpr", "assert",
}
ACQ_RE = re.compile(
    r"\b(?:acs\s*::\s*MutexLock|std\s*::\s*(?:lock_guard|unique_lock|"
    r"scoped_lock)\s*(?:<[^<>]*>)?)\s+[A-Za-z_]\w*\s*[({]")
CALL_RE = re.compile(
    r"(?:(?P<recv>[A-Za-z_]\w*)\s*(?:\.|->)\s*)?(?P<name>~?[A-Za-z_]\w*)\s*\(")
CV_RECV_RE = re.compile(r"cv|cond", re.I)
DECL_REQUIRES_RE = re.compile(
    r"\b(~?[A-Za-z_]\w*)\s*\(([^()]*(?:\([^()]*\)[^()]*)*)\)"
    r"\s*(?:const\s*)?ACS_REQUIRES\(([^()]*)\)\s*;")
LAMBDA_RE = re.compile(
    r"\[[^\[\]]*\]\s*(?:\([^()]*\)\s*)?(?:mutable\s*)?(?:noexcept\s*)?"
    r"(?:->\s*[\w:&<>,\s*]+?)?\s*\{")
QUAL_RE = re.compile(r"\b(const|noexcept|override|final|mutable|try)\s*$")


def _brace_pairs(code: str) -> list[tuple[int, int]]:
    pairs = []
    stack: list[int] = []
    for i, ch in enumerate(code):
        if ch == "{":
            stack.append(i)
        elif ch == "}" and stack:
            pairs.append((stack.pop(), i))
    return pairs


def _class_ranges(code: str) -> list[tuple[str, int, int]]:
    """[(name, body_open, body_close)] for every class/struct definition."""
    pairs = dict(_brace_pairs(code))
    out = []
    n = len(code)
    for m in CLASS_RE.finditer(code):
        if code[:m.start()].rstrip().endswith("enum"):
            continue
        k = m.end()
        while k < n and code[k].isspace():
            k += 1
        if k < n and code[k] in ">,=":
            continue  # `class T` inside a template parameter list
        j, depth, open_i = m.end(), 0, None
        while j < n:
            ch = code[j]
            if ch == "<":
                depth += 1
            elif ch == ">":
                depth = max(0, depth - 1)
            elif depth == 0:
                if ch in ";()}":
                    break
                if ch == "{":
                    open_i = j
                    break
            j += 1
        if open_i is not None and open_i in pairs:
            name = re.sub(r"\s", "", m.group(2)).split("::")[-1]
            out.append((name, open_i, pairs[open_i]))
    return out


def _innermost(ranges: list[tuple[str, int, int]], pos: int) -> str | None:
    best = None
    for name, o, c in ranges:
        if o < pos < c and (best is None or c - o < best[2] - best[1]):
            best = (name, o, c)
    return best[0] if best else None


def _match_paren_back(s: str) -> int | None:
    depth = 0
    for j in range(len(s) - 1, -1, -1):
        if s[j] == ")":
            depth += 1
        elif s[j] == "(":
            depth -= 1
            if depth == 0:
                return j
    return None


def _function_head(code: str, open_i: int):
    """If the `{` at open_i opens a function body, return (cls_or_None,
    name, requires_args). Control blocks, lambdas, classes, initializers
    and namespaces return None."""
    s = code[:open_i].rstrip()
    requires: list[str] = []
    while True:
        if not s or s.endswith("]"):
            return None
        qm = QUAL_RE.search(s)
        if qm:
            s = s[:qm.start()].rstrip()
            continue
        if not s.endswith(")"):
            return None
        j = _match_paren_back(s)
        if j is None or j == 0:
            return None
        head = s[:j].rstrip()
        am = re.search(r"ACS_[A-Z_]*$", head)
        if am:
            if "REQUIRES" in am.group(0):
                requires += [a.strip() for a in s[j + 1:-1].split(",")
                             if a.strip()]
            s = head[:am.start()].rstrip()
            continue
        nm = re.search(r"(?:\b([A-Za-z_]\w*)\s*(?:<[^<>]*>)?\s*::\s*)?"
                       r"(~?[A-Za-z_]\w*)$", head)
        if nm is None:
            return None
        name = nm.group(2)
        if name in CONTROL_KEYWORDS:
            return None
        prefix = head[:nm.start()].rstrip()
        if prefix.endswith((",", ":")) and not prefix.endswith("::"):
            s = prefix[:-1].rstrip()  # constructor initializer-list element
            continue
        return nm.group(1), name, requires


def _find_functions(code: str):
    """[(cls_hint, name, requires_args, body_open, body_close)]; inner
    blocks of an already-claimed body are skipped (lambdas are split out
    later by _units)."""
    out = []
    claimed: list[tuple[int, int]] = []
    for o, c in sorted(_brace_pairs(code)):
        if any(a < o < b for a, b in claimed):
            continue
        head = _function_head(code, o)
        if head is None:
            continue
        claimed.append((o, c))
        out.append((head[0], head[1], head[2], o, c))
    return out


def _lambda_spans(segment: str) -> list[tuple[int, int]]:
    """Top-level lambda body brace ranges within `segment`."""
    spans = []
    i = 0
    while True:
        m = LAMBDA_RE.search(segment, i)
        if m is None:
            return spans
        open_i = m.end() - 1
        depth, close_i = 0, None
        for k in range(open_i, len(segment)):
            if segment[k] == "{":
                depth += 1
            elif segment[k] == "}":
                depth -= 1
                if depth == 0:
                    close_i = k
                    break
        if close_i is None:
            return spans
        spans.append((open_i, close_i))
        i = close_i + 1


def _units(code: str, open_i: int, close_i: int) -> list[tuple[int, str, bool]]:
    """Flatten a function body into analysis units (abs_start, text,
    is_lambda). Lambda bodies become separate units — deferred execution
    means they neither inherit the enclosing held-set nor contribute to the
    enclosing function's acquire-set (mirrors the Clang TSA model)."""
    seg = code[open_i + 1:close_i]
    spans = _lambda_spans(seg)
    blanked = list(seg)
    inner: list[tuple[int, str, bool]] = []
    for o, c in spans:
        for sub_start, sub_text, _ in _units(code, open_i + 1 + o,
                                             open_i + 1 + c):
            inner.append((sub_start, sub_text, True))
        for k in range(o, c + 1):
            if blanked[k] != "\n":
                blanked[k] = " "
    return [(open_i + 1, "".join(blanked), False)] + inner


def _resolve_mutex(expr: str, cls: str | None,
                   mutex_classes: dict[str, set[str]],
                   receivers: dict[str, str]) -> str | None:
    expr = re.sub(r"^this\s*->\s*", "", expr.strip())
    if re.fullmatch(r"[A-Za-z_]\w*", expr):
        if cls and expr in mutex_classes.get(cls, set()):
            return f"{cls}::{expr}"
        return None
    pm = re.match(r"^.*?([A-Za-z_]\w*)\s*(?:\.|->)\s*([A-Za-z_]\w*)$", expr)
    if pm:
        recv, member = pm.group(1), pm.group(2)
        owners = [c for c, ms in mutex_classes.items() if member in ms]
        if len(owners) == 1:
            return f"{owners[0]}::{member}"
        rcls = receivers.get(recv)
        if rcls and member in mutex_classes.get(rcls, set()):
            return f"{rcls}::{member}"
    return None


def _resolve_call(cls: str | None, recv: str | None, name: str,
                  registry: dict, receivers: dict[str, str]):
    if recv is None:
        if cls is not None and (cls, name) in registry:
            return (cls, name)
        return None
    rcls = receivers.get(recv)
    if rcls and (rcls, name) in registry:
        return (rcls, name)
    return None


def _sccs(nodes, adj):
    """Tarjan; deterministic via sorted iteration. Returns components."""
    index: dict = {}
    low: dict = {}
    stack: list = []
    on = set()
    out = []
    counter = [0]

    def dfs(v):
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on.add(v)
        for w in sorted(adj.get(v, ())):
            if w not in index:
                dfs(w)
                low[v] = min(low[v], low[w])
            elif w in on:
                low[v] = min(low[v], index[w])
        if low[v] == index[v]:
            comp = []
            while True:
                w = stack.pop()
                on.discard(w)
                comp.append(w)
                if w == v:
                    break
            out.append(comp)

    for v in sorted(nodes):
        if v not in index:
            dfs(v)
    return out


def rule_lock_order(parsed: list[tuple[Path, str, dict[int, str]]],
                    config_path: Path) -> list[Finding]:
    findings: list[Finding] = []
    if tomllib is None:
        print("acs-lint: note: tomllib unavailable; skipping lock-order",
              file=sys.stderr)
        return []
    if not Path(config_path).exists():
        return [Finding(Path(config_path), 1, "lock-order",
                        "lock-order registry not found (expected a toml "
                        "file with [ranks] and [receivers] tables)")]
    with open(config_path, "rb") as fh:
        cfg = tomllib.load(fh)
    ranks = {str(k): int(v) for k, v in cfg.get("ranks", {}).items()}
    receivers = {str(k): str(v) for k, v in cfg.get("receivers", {}).items()}

    scanned = [(p, code, comments) for p, code, comments in parsed
               if not exempt_concurrency_path(p)]
    comments_of = {p: comments for p, _, comments in scanned}

    # Pass 1: classes and their mutex members.
    mutex_classes: dict[str, set[str]] = {}
    mutex_sites: dict[str, tuple[Path, int]] = {}
    class_names: set[str] = set()
    file_ranges: dict[Path, list] = {}
    for p, code, _comments in scanned:
        ranges = _class_ranges(code)
        file_ranges[p] = ranges
        class_names |= {r[0] for r in ranges}
        for m in MUTEX_DECL_RE.finditer(code):
            cls = _innermost(ranges, m.start())
            if cls is None:
                continue
            mutex_classes.setdefault(cls, set()).add(m.group("name"))
            mutex_sites.setdefault(f"{cls}::{m.group('name')}",
                                   (p, line_of(code, m.start())))

    # Pass 2a: REQUIRES annotations attached to declarations (out-of-line
    # definitions inherit them from the header).
    decl_requires: dict[tuple, set] = {}
    for p, code, _comments in scanned:
        for m in DECL_REQUIRES_RE.finditer(code):
            cls = _innermost(file_ranges[p], m.start())
            if cls is None:
                continue
            req = set()
            for a in m.group(3).split(","):
                mx = _resolve_mutex(a, cls, mutex_classes, receivers)
                if mx:
                    req.add(mx)
            decl_requires.setdefault((cls, m.group(1)), set()).update(req)

    # Pass 2b: function bodies -> direct acquisitions, nesting edges, calls.
    registry: dict[tuple, dict] = {}
    edges: dict[tuple[str, str], tuple[Path, int]] = {}

    def scan_unit(path, code, comments, text, abs_start, cls, entry_held,
                  info):
        events: list[tuple[int, str, object]] = []
        for m in ACQ_RE.finditer(text):
            args, _close = balanced_args(text, m.end() - 1)
            if args:
                events.append((m.start(), "acq", args))
        for m in CALL_RE.finditer(text):
            events.append((m.start(), "call",
                           (m.group("recv"), m.group("name"))))
        for i, ch in enumerate(text):
            if ch in "{}":
                events.append((i, ch, None))
        events.sort(key=lambda e: e[0])
        depth = 0
        held: list[tuple[str, int]] = [(mx, -1) for mx in sorted(entry_held)]
        for pos, kind, payload in events:
            if kind == "{":
                depth += 1
            elif kind == "}":
                depth -= 1
                held = [(mx, d) for mx, d in held if d <= depth]
            elif kind == "acq":
                lineno = line_of(code, abs_start + pos)
                for expr in payload:  # type: ignore[union-attr]
                    if re.match(r"^std\s*::", expr):
                        continue  # defer_lock / adopt_lock tags
                    mx = _resolve_mutex(expr, cls, mutex_classes, receivers)
                    if mx is None:
                        if not suppressed("lock-order", lineno, comments):
                            findings.append(Finding(
                                path, lineno, "lock-order",
                                f"cannot resolve lock argument `{expr}` to "
                                "a known mutex (register the receiver in "
                                "lock_order.toml [receivers])"))
                        continue
                    for hmx, _d in held:
                        if hmx != mx:
                            edges.setdefault((hmx, mx), (path, lineno))
                    held.append((mx, depth))
            else:
                recv, name = payload  # type: ignore[misc]
                if name in CONTROL_KEYWORDS:
                    continue
                if recv and CV_RECV_RE.search(recv):
                    continue  # condvar wait/notify: no new capability
                info["calls"].append(
                    (tuple(sorted({h for h, _ in held})), recv, name, path,
                     line_of(code, abs_start + pos)))
        for m in ACQ_RE.finditer(text):
            args, _close = balanced_args(text, m.end() - 1)
            for expr in args or []:
                mx = _resolve_mutex(expr, cls, mutex_classes, receivers)
                if mx:
                    info["acquires"].add(mx)

    for p, code, comments in scanned:
        ranges = file_ranges[p]
        lam = 0
        for cls_hint, fname, req_args, o, c in _find_functions(code):
            cls = cls_hint or _innermost(ranges, o)
            key = (cls, fname)
            entry = set(decl_requires.get(key, set()))
            for a in req_args:
                mx = _resolve_mutex(a, cls, mutex_classes, receivers)
                if mx:
                    entry.add(mx)
            for abs_start, text, is_lambda in _units(code, o, c):
                if is_lambda:
                    lam += 1
                    ukey = (cls, f"{fname}<lambda#{lam}>")
                    uentry: set[str] = set()
                else:
                    ukey, uentry = key, entry
                info = registry.setdefault(
                    ukey, {"cls": cls, "acquires": set(), "calls": []})
                scan_unit(p, code, comments, text, abs_start, cls, uentry,
                          info)

    # Fixpoint: transitive acquire-sets through the resolvable call graph.
    trans = {k: set(v["acquires"]) for k, v in registry.items()}
    changed = True
    while changed:
        changed = False
        for key, info in registry.items():
            cur = trans[key]
            for _held, recv, name, _p, _ln in info["calls"]:
                callee = _resolve_call(info["cls"], recv, name, registry,
                                       receivers)
                if callee is not None and not trans[callee] <= cur:
                    cur |= trans[callee]
                    changed = True

    # Call-site edges: everything a callee may acquire, acquired while the
    # caller's held-set is live.
    for key, info in registry.items():
        for held, recv, name, p, ln in info["calls"]:
            if not held:
                continue
            callee = _resolve_call(info["cls"], recv, name, registry,
                                   receivers)
            if callee is None:
                continue
            for mx in sorted(trans[callee]):
                for hmx in held:
                    if hmx != mx:
                        edges.setdefault((hmx, mx), (p, ln))

    # Registry drift both ways, then rank monotonicity, then cycles.
    for full, (p, ln) in sorted(mutex_sites.items()):
        if full not in ranks and not suppressed("lock-order", ln,
                                                comments_of.get(p, {})):
            findings.append(Finding(
                p, ln, "lock-order",
                f"mutex `{full}` has no rank in the "
                f"{Path(config_path).name} ranks table"))
    for entry_name in sorted(ranks):
        if entry_name not in mutex_sites:
            findings.append(Finding(
                Path(config_path), 1, "lock-order",
                f"stale rank entry `{entry_name}`: no such mutex in the "
                "scanned tree"))
    for recv, rcls in sorted(receivers.items()):
        if rcls not in class_names:
            findings.append(Finding(
                Path(config_path), 1, "lock-order",
                f"receiver `{recv}` maps to unknown class `{rcls}`"))
    for (hmx, mx), (p, ln) in sorted(edges.items(),
                                     key=lambda kv: (str(kv[1][0]), kv[1][1],
                                                     kv[0])):
        rh, rm = ranks.get(hmx), ranks.get(mx)
        if rh is None or rm is None:
            continue  # unranked is already reported above
        if rh >= rm and not suppressed("lock-order", ln,
                                       comments_of.get(p, {})):
            findings.append(Finding(
                p, ln, "lock-order",
                f"acquires `{mx}` (rank {rm}) while holding `{hmx}` (rank "
                f"{rh}): lock order must strictly increase "
                f"({Path(config_path).name})"))
    adj: dict[str, set[str]] = {}
    nodes: set[str] = set()
    for hmx, mx in edges:
        adj.setdefault(hmx, set()).add(mx)
        nodes |= {hmx, mx}
    for comp in _sccs(nodes, adj):
        if len(comp) < 2:
            continue
        comp_sorted = sorted(comp)
        loc = min(v for e, v in edges.items()
                  if e[0] in comp and e[1] in comp)
        findings.append(Finding(
            loc[0], loc[1], "lock-order",
            "lock-order cycle: " + " -> ".join(comp_sorted +
                                               [comp_sorted[0]])))
    return findings


# ---------------------------------------------------------------------------
# Rule: self-sufficient
# ---------------------------------------------------------------------------


def compiler() -> str | None:
    for cxx in (os.environ.get("CXX"), "g++", "clang++"):
        if cxx and shutil.which(cxx):
            return cxx
    return None


def rule_self_sufficient(headers: list[Path], include_dirs: list[Path],
                         verbose: bool) -> list[Finding]:
    cxx = compiler()
    if cxx is None:
        print("acs-lint: note: no C++ compiler found; skipping "
              "self-sufficient rule", file=sys.stderr)
        return []
    findings = []
    for header in headers:
        cmd = [cxx, "-std=c++20", "-fsyntax-only", "-x", "c++"]
        for inc in include_dirs:
            cmd += [f"-I{inc}"]
        cmd.append(str(header))
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if verbose:
            print(f"acs-lint: {' '.join(cmd)} -> {proc.returncode}",
                  file=sys.stderr)
        if proc.returncode != 0:
            first_error = next(
                (ln for ln in proc.stderr.splitlines() if "error:" in ln),
                proc.stderr.strip().splitlines()[0] if proc.stderr.strip()
                else "compilation failed")
            findings.append(Finding(
                header, 1, "self-sufficient",
                f"header does not compile standalone: {first_error}"))
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

TEXT_RULES = {
    "mo-justify": rule_mo_justify,
    "trace-span-paired": rule_trace_span,
    "typed-indices": rule_typed_indices,
    "banned-calls": rule_banned_calls,
    "mutex-annotated": rule_mutex_annotated,
    "raii-locks-only": rule_raii_locks_only,
}
ALL_RULES = list(TEXT_RULES) + ["lock-order", "self-sufficient"]


def collect_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        if p.is_dir():
            files += sorted(p.rglob("*.hpp")) + sorted(p.rglob("*.h"))
            files += sorted(p.rglob("*.cpp")) + sorted(p.rglob("*.cc"))
        elif p.exists():
            files.append(p)
        else:
            print(f"acs-lint: error: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return files


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="acs_lint.py",
        description="Project-specific static analysis (see module docstring).")
    ap.add_argument("paths", nargs="*", type=Path,
                    default=None, help="files or directories (default: src/)")
    ap.add_argument("--rules", default=",".join(ALL_RULES),
                    help="comma-separated rule subset to run")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--backend", choices=["auto", "lexer", "clang"],
                    default="auto",
                    help="auto = libclang when importable, else lexer")
    ap.add_argument("--include-dir", action="append", type=Path, default=[],
                    help="extra -I directory for self-sufficient checks")
    ap.add_argument("--lock-order-config", type=Path,
                    default=REPO / "tools" / "lint" / "lock_order.toml",
                    help="rank/receiver registry for the lock-order rule")
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for r in ALL_RULES:
            print(r)
        return 0

    rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    unknown = [r for r in rules if r not in ALL_RULES]
    if unknown:
        print(f"acs-lint: error: unknown rule(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2

    if args.backend == "clang" and not HAVE_LIBCLANG:
        print("acs-lint: error: --backend clang requested but the libclang "
              "python bindings are not importable", file=sys.stderr)
        return 2
    use_clang = HAVE_LIBCLANG and args.backend in ("auto", "clang")

    paths = args.paths or [REPO / "src"]
    files = collect_files([p.resolve() for p in paths])
    headers = [f for f in files if f.suffix in (".hpp", ".h")]
    include_dirs = [REPO / "src"] + args.include_dir

    findings: list[Finding] = []
    parsed: list[tuple[Path, str, dict[int, str]]] = []
    clang_index = clang.cindex.Index.create() if use_clang else None
    for f in files:
        text = f.read_text(encoding="utf-8", errors="replace")
        code, comments = lex(text)
        raw_lines = text.split("\n")
        parsed.append((f, code, comments))
        for rule in rules:
            if rule in ("self-sufficient", "lock-order"):
                continue
            if rule == "typed-indices" and clang_index is not None and \
                    f.suffix in (".hpp", ".h"):
                findings += [fd for fd in rule_typed_indices_clang(
                    f, clang_index)
                    if not suppressed(rule, fd.line, comments)]
            else:
                findings += TEXT_RULES[rule](f, code, comments, raw_lines)
    if "lock-order" in rules:
        findings += rule_lock_order(parsed, args.lock_order_config)
    if "self-sufficient" in rules:
        findings += rule_self_sufficient(headers, include_dirs, args.verbose)

    findings.sort(key=lambda fd: (str(fd.path), fd.line))
    for fd in findings:
        print(fd)
    active = ", ".join(rules)
    backend = "libclang" if use_clang else "lexer"
    print(f"acs-lint: {len(findings)} finding(s) over {len(files)} file(s) "
          f"[backend: {backend}; rules: {active}]", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
