#include "baselines/nsparse_like.hpp"

#include <algorithm>
#include <chrono>

#include "baselines/detail.hpp"
#include "baselines/hash_table.hpp"
#include "matrix/stats.hpp"
#include "sim/block_primitives.hpp"
#include "sim/cost_model.hpp"

namespace acs {
namespace {

using baseline_detail::HashAccumulator;
using baseline_detail::next_pow2;
using baseline_detail::Product;

/// nsparse's row bins: scratchpad tables up to 8192 slots, global beyond.
constexpr std::size_t kMaxScratchSlots = 8192;

}  // namespace

template <class T>
Csr<T> nsparse_multiply(const Csr<T>& a, const Csr<T>& b, SpgemmStats* stats,
                        std::uint64_t schedule_seed) {
  if (a.cols != b.rows)
    throw std::invalid_argument("nsparse: dimension mismatch");
  const auto t0 = std::chrono::steady_clock::now();
  const sim::DeviceConfig dev{};

  // --- Row analysis (the costly load-balancing step the paper quotes at up
  // to 30% of runtime on very sparse inputs): count intermediate products
  // per row, prefix-scan the bin sizes, scatter row ids into bins. Three
  // kernel launches on the device.
  const auto per_row = intermediate_products_per_row(a, b);
  sim::MetricCounters count_m, scan_m, scatter_m;
  count_m.global_bytes_coalesced +=
      static_cast<std::uint64_t>(a.nnz()) * sizeof(index_t);
  count_m.global_bytes_scattered +=
      static_cast<std::uint64_t>(a.nnz()) * 2 * sizeof(index_t);
  scan_m.scan_elements += static_cast<std::uint64_t>(a.rows);
  scan_m.global_bytes_coalesced +=
      2 * static_cast<std::uint64_t>(a.rows) * sizeof(index_t);
  scatter_m.global_bytes_scattered +=
      static_cast<std::uint64_t>(a.rows) * sizeof(index_t);
  scatter_m.atomic_ops += static_cast<std::uint64_t>(a.rows);

  // Bin rows by symbolic table size (the product count is an upper bound on
  // the distinct columns, so a table of next_pow2(products) slots has load
  // factor <= 1 and usually far less).
  std::vector<std::vector<index_t>> bins;
  for (index_t r = 0; r < a.rows; ++r) {
    const offset_t prods = per_row[static_cast<std::size_t>(r)];
    if (prods == 0) continue;
    const std::size_t slots = std::max<std::size_t>(
        32, next_pow2(static_cast<std::size_t>(prods)));
    std::size_t bin = 0;
    for (std::size_t s = 32; s < slots; s <<= 1) ++bin;
    if (bins.size() <= bin) bins.resize(bin + 1);
    bins[bin].push_back(r);
  }

  Csr<T> c;
  c.rows = a.rows;
  c.cols = b.cols;
  c.row_ptr.assign(static_cast<std::size_t>(a.rows) + 1, 0);
  std::vector<std::vector<index_t>> row_cols(static_cast<std::size_t>(a.rows));
  std::vector<std::vector<T>> row_vals(static_cast<std::size_t>(a.rows));

  // --- Two kernels per non-empty bin (symbolic, then numeric with tables
  // sized to the now-known row nnz — almost always back in scratchpad, the
  // key advantage on high-compaction matrices).
  std::vector<std::pair<std::string, std::vector<sim::MetricCounters>>> kernels;
  std::vector<Product<T>> prods;
  std::size_t global_table_bytes = 0;
  for (std::size_t bin = 0; bin < bins.size(); ++bin) {
    if (bins[bin].empty()) continue;
    const std::size_t sym_slots = std::size_t{32} << bin;
    const bool sym_global = sym_slots > kMaxScratchSlots;
    std::vector<sim::MetricCounters> sym_blocks, num_blocks;
    const std::size_t rows_per_block = std::max<std::size_t>(
        1, static_cast<std::size_t>(dev.threads_per_block) * 4 / sym_slots);

    sim::MetricCounters sym, num;
    std::size_t rows_in_block = 0;
    for (index_t r : bins[bin]) {
      baseline_detail::gather_row_products(a, b, r, prods);
      baseline_detail::permute_schedule(prods, schedule_seed, r);

      // Symbolic: column ids only, count distinct.
      HashAccumulator<T> sym_table(sym_slots);
      bool overflow = false;
      std::uint64_t sym_probes = 0;
      for (const auto& p : prods)
        sym_probes += sym_table.accumulate(p.col, T{}, overflow);
      const std::size_t row_nnz = sym_table.size();
      sym.global_bytes_coalesced +=
          static_cast<std::uint64_t>(prods.size()) * sizeof(index_t);
      sym.global_bytes_scattered +=
          8 * static_cast<std::uint64_t>(a.row_length(r));
      sym.hash_probes += sym_probes;
      // Per-row warp management: bin lookup, cooperative table init
      // barriers, output-cursor atomics.
      sym.compute_ops += 150;
      if (sym_global) {
        // Global tables at low occupancy stay L2-resident; charge
        // bandwidth-rate traffic rather than fully scattered sectors.
        sym.global_bytes_coalesced += sym_probes * sizeof(index_t) / 2;
        global_table_bytes += sym_slots * sizeof(index_t);
      } else {
        sym.scratch_ops += sym_probes + sym_slots;  // probes + table init
      }

      // Numeric: table sized to the row's actual nnz.
      const std::size_t num_slots = std::max<std::size_t>(
          32, next_pow2(2 * std::max<std::size_t>(row_nnz, 1)));
      const bool num_global = num_slots > kMaxScratchSlots;
      HashAccumulator<T> num_table(num_slots);
      std::uint64_t num_probes = 0;
      for (const auto& p : prods)
        num_probes += num_table.accumulate(p.col, p.val, overflow);
      num_table.extract_sorted(row_cols[static_cast<std::size_t>(r)],
                               row_vals[static_cast<std::size_t>(r)]);
      c.row_ptr[static_cast<std::size_t>(r) + 1] =
          static_cast<index_t>(row_nnz);

      num.global_bytes_coalesced += static_cast<std::uint64_t>(prods.size()) *
                                    (sizeof(index_t) + sizeof(T));
      num.global_bytes_scattered +=
          8 * static_cast<std::uint64_t>(a.row_length(r));
      num.hash_probes += num_probes;
      num.compute_ops += 150;
      if (num_global) {
        num.global_bytes_coalesced +=
            num_probes * (sizeof(index_t) + sizeof(T));
        global_table_bytes += num_slots * (sizeof(index_t) + sizeof(T));
      } else {
        num.scratch_ops += num_probes + num_slots;
      }
      num.flops += 2 * static_cast<std::uint64_t>(prods.size());
      // Output sort (bitonic over the table contents) + write-out.
      const auto out_n = static_cast<std::uint64_t>(row_nnz);
      num.sort_pass_elements +=
          out_n * static_cast<std::uint64_t>(
                      std::max(1, sim::bits_for(out_n) / 2));
      num.global_bytes_coalesced += out_n * (sizeof(index_t) + sizeof(T));

      if (++rows_in_block == rows_per_block) {
        sym_blocks.push_back(sym);
        num_blocks.push_back(num);
        sym = num = {};
        rows_in_block = 0;
      }
    }
    if (rows_in_block > 0) {
      sym_blocks.push_back(sym);
      num_blocks.push_back(num);
    }
    kernels.emplace_back("bin" + std::to_string(bin) + "-sym",
                         std::move(sym_blocks));
    kernels.emplace_back("bin" + std::to_string(bin) + "-num",
                         std::move(num_blocks));
  }

  // Assemble C.
  for (index_t r = 0; r < a.rows; ++r)
    c.row_ptr[usize(r) + 1] += c.row_ptr[usize(r)];
  c.col_idx.reserve(static_cast<std::size_t>(c.row_ptr[usize(a.rows)]));
  c.values.reserve(static_cast<std::size_t>(c.row_ptr[usize(a.rows)]));
  for (index_t r = 0; r < a.rows; ++r) {
    c.col_idx.insert(c.col_idx.end(), row_cols[static_cast<std::size_t>(r)].begin(),
                     row_cols[static_cast<std::size_t>(r)].end());
    c.values.insert(c.values.end(), row_vals[static_cast<std::size_t>(r)].begin(),
                    row_vals[static_cast<std::size_t>(r)].end());
  }

  if (stats) {
    *stats = SpgemmStats{};
    stats->intermediate_products = intermediate_products(a, b);
    const auto record = [&](const char* name, const sim::MetricCounters& m,
                            std::size_t nblocks) {
      std::vector<sim::MetricCounters> blocks(std::max<std::size_t>(nblocks, 1));
      for (auto& bm : blocks) {
        bm = m;
        bm.global_bytes_coalesced /= blocks.size();
        bm.global_bytes_scattered /= blocks.size();
        bm.scan_elements /= blocks.size();
        bm.atomic_ops /= blocks.size();
      }
      const auto t = sim::schedule_blocks(blocks, dev);
      stats->stage_times_s.emplace_back(name, t.time_s);
      stats->sim_time_s += t.time_s;
      for (const auto& bm : blocks) stats->metrics += bm;
    };
    const auto row_blocks = static_cast<std::size_t>(a.rows) /
                                static_cast<std::size_t>(dev.threads_per_block) +
                            1;
    record("analysis-count", count_m,
           static_cast<std::size_t>(a.nnz()) /
                   static_cast<std::size_t>(dev.threads_per_block) +
               1);
    record("analysis-scan", scan_m, row_blocks);
    record("analysis-scatter", scatter_m, row_blocks);
    // Bin boundaries are resolved on the host: a device->host copy plus a
    // synchronization before the bin kernels can launch.
    for (const char* sync : {"analysis-d2h", "analysis-sync"}) {
      stats->stage_times_s.emplace_back(sync, dev.kernel_launch_us * 1e-6);
      stats->sim_time_s += dev.kernel_launch_us * 1e-6;
    }
    for (auto& [name, blocks] : kernels) {
      const auto t = sim::schedule_blocks(blocks, dev);
      stats->stage_times_s.emplace_back(name, t.time_s);
      stats->sim_time_s += t.time_s;
      for (const auto& bm : blocks) stats->metrics += bm;
      if (blocks.size() >= static_cast<std::size_t>(dev.num_sms))
        stats->multiprocessor_load =
            std::min(stats->multiprocessor_load, t.multiprocessor_load);
    }
    stats->pool_bytes = global_table_bytes;
    stats->pool_used_bytes = global_table_bytes;
    stats->helper_bytes =
        static_cast<std::size_t>(a.rows) * 2 * sizeof(index_t);
    stats->wall_time_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  return c;
}

template Csr<float> nsparse_multiply(const Csr<float>&, const Csr<float>&,
                                     SpgemmStats*, std::uint64_t);
template Csr<double> nsparse_multiply(const Csr<double>&, const Csr<double>&,
                                      SpgemmStats*, std::uint64_t);
template class NsparseLike<float>;
template class NsparseLike<double>;

}  // namespace acs
