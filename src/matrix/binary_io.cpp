#include "matrix/binary_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace acs {
namespace {

constexpr char kMagic[4] = {'A', 'C', 'S', 'B'};
constexpr std::uint32_t kVersion = 1;

template <class V>
void write_raw(std::ostream& out, const V* data, std::size_t count) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(V)));
}

template <class V>
void read_raw(std::istream& in, V* data, std::size_t count) {
  in.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(count * sizeof(V)));
  if (!in) throw std::runtime_error("acsb: truncated file");
}

}  // namespace

template <class T>
void write_binary_file(const std::string& path, const Csr<T>& m) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("acsb: cannot open " + path + " for write");
  out.write(kMagic, 4);
  const std::uint32_t vw = sizeof(T);
  const std::int64_t nnz = m.nnz();
  write_raw(out, &kVersion, 1);
  write_raw(out, &vw, 1);
  write_raw(out, &m.rows, 1);
  write_raw(out, &m.cols, 1);
  write_raw(out, &nnz, 1);
  write_raw(out, m.row_ptr.data(), m.row_ptr.size());
  write_raw(out, m.col_idx.data(), m.col_idx.size());
  write_raw(out, m.values.data(), m.values.size());
  if (!out) throw std::runtime_error("acsb: write failed for " + path);
}

template <class T>
Csr<T> read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("acsb: cannot open " + path);
  char magic[4];
  read_raw(in, magic, 4);
  if (std::memcmp(magic, kMagic, 4) != 0)
    throw std::runtime_error("acsb: bad magic in " + path);
  std::uint32_t version = 0, vw = 0;
  std::int64_t nnz = 0;
  Csr<T> m;
  read_raw(in, &version, 1);
  read_raw(in, &vw, 1);
  read_raw(in, &m.rows, 1);
  read_raw(in, &m.cols, 1);
  read_raw(in, &nnz, 1);
  if (version != kVersion) throw std::runtime_error("acsb: unknown version");
  if (vw != sizeof(T)) throw std::runtime_error("acsb: value width mismatch");
  if (m.rows < 0 || nnz < 0) throw std::runtime_error("acsb: negative sizes");
  m.row_ptr.resize(static_cast<std::size_t>(m.rows) + 1);
  m.col_idx.resize(static_cast<std::size_t>(nnz));
  m.values.resize(static_cast<std::size_t>(nnz));
  read_raw(in, m.row_ptr.data(), m.row_ptr.size());
  read_raw(in, m.col_idx.data(), m.col_idx.size());
  read_raw(in, m.values.data(), m.values.size());
  return m;
}

template void write_binary_file(const std::string&, const Csr<float>&);
template void write_binary_file(const std::string&, const Csr<double>&);
template Csr<float> read_binary_file<float>(const std::string&);
template Csr<double> read_binary_file<double>(const std::string&);

}  // namespace acs
