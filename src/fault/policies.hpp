#pragma once
/// \file policies.hpp
/// Deterministic chunk-pool fault injectors (ISSUE 3 tentpole). Each policy
/// implements the `acs::AllocationPolicy` hook consulted by
/// `ChunkPool::try_allocate` (core/chunk.hpp): returning false makes the
/// attempt fail exactly like real pool exhaustion, driving the affected
/// block into the paper's §3.5 restart protocol. Because denial decisions
/// key off the pool's global attempt index (and, for the byte-budget
/// schedule, cumulative granted bytes), they are reproducible run-to-run
/// and — except for which attempt carries which index — independent of
/// scheduler interleaving. Install via `Config::alloc_policy` for one
/// multiplication or `runtime::EngineConfig::make_alloc_policy` per job.
///
/// All policies are safe to call from concurrent scheduler threads and
/// count their own denials for test assertions.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/chunk.hpp"
#include "core/thread_annotations.hpp"

namespace acs::fault {

/// Allows every attempt while counting them — the clean-run pass the
/// injection-point enumerator (sweep.hpp) uses to size its sweep.
class CountingPolicy final : public AllocationPolicy {
 public:
  bool allow(const AllocationRequest& request) override {
    // mo: monotonic tallies; read for reporting after the run joins.
    attempts_.fetch_add(1, std::memory_order_relaxed);
    // mo: same as above.
    bytes_requested_.fetch_add(request.bytes, std::memory_order_relaxed);
    return true;
  }

  [[nodiscard]] std::uint64_t attempts() const {
    return attempts_.load(std::memory_order_relaxed);  // mo: post-join read
  }
  [[nodiscard]] std::uint64_t bytes_requested() const {
    return bytes_requested_.load(std::memory_order_relaxed);  // mo: post-join
  }

 private:
  std::atomic<std::uint64_t> attempts_{0};
  std::atomic<std::uint64_t> bytes_requested_{0};
};

/// Denies exactly allocation attempt `n` (0-based), allowing everything
/// else — the sweep's "deny exactly allocation i" probe. The replayed
/// allocation after the restart draws a fresh index and goes through.
class DenyNthPolicy final : public AllocationPolicy {
 public:
  explicit DenyNthPolicy(std::uint64_t n) : n_(n) {}

  bool allow(const AllocationRequest& request) override {
    if (request.index != n_) return true;
    // mo: monotonic tally; read for reporting after the run joins.
    denials_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  [[nodiscard]] std::uint64_t denials() const {
    return denials_.load(std::memory_order_relaxed);  // mo: post-join read
  }

 private:
  const std::uint64_t n_;
  std::atomic<std::uint64_t> denials_{0};
};

/// Denies every K-th attempt: indices k-1, 2k-1, ... (shifted by `offset`),
/// i.e. periodic pressure that keeps forcing restarts as the run proceeds.
class DenyEveryKthPolicy final : public AllocationPolicy {
 public:
  explicit DenyEveryKthPolicy(std::uint64_t k, std::uint64_t offset = 0)
      : k_(k == 0 ? 1 : k), offset_(offset) {}

  bool allow(const AllocationRequest& request) override {
    if ((request.index + 1 + offset_) % k_ != 0) return true;
    // mo: monotonic tally; read for reporting after the run joins.
    denials_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  [[nodiscard]] std::uint64_t denials() const {
    return denials_.load(std::memory_order_relaxed);  // mo: post-join read
  }

 private:
  const std::uint64_t k_;
  const std::uint64_t offset_;
  std::atomic<std::uint64_t> denials_{0};
};

/// Denies each attempt independently with probability `deny_rate`, decided
/// by a splitmix64 hash of (seed, attempt index): per-index deterministic,
/// so two runs with the same seed deny the same attempt numbers regardless
/// of which thread issues them.
class SeededProbabilisticPolicy final : public AllocationPolicy {
 public:
  SeededProbabilisticPolicy(std::uint64_t seed, double deny_rate);

  bool allow(const AllocationRequest& request) override;

  [[nodiscard]] std::uint64_t denials() const {
    return denials_.load(std::memory_order_relaxed);  // mo: post-join read
  }

 private:
  const std::uint64_t seed_;
  const std::uint64_t threshold_;  ///< deny iff hash < threshold
  std::atomic<std::uint64_t> denials_{0};
};

/// Byte-budget schedule: behaves like a pool whose true capacity is
/// `budgets[0]` bytes — the first attempt that would push the cumulative
/// granted bytes past the current budget is denied, and the schedule
/// advances to the next (larger) budget, mirroring one resize-and-restart
/// round. Past the final budget every attempt is allowed. This reproduces
/// specific exhaustion *sizes* (e.g. "deny once 1 MB of chunks exist")
/// independent of how many allocations got there.
class ByteBudgetPolicy final : public AllocationPolicy {
 public:
  explicit ByteBudgetPolicy(std::vector<std::size_t> budgets);

  bool allow(const AllocationRequest& request) override ACS_EXCLUDES(m_);

  [[nodiscard]] std::uint64_t denials() const ACS_EXCLUDES(m_);
  /// Budgets already exhausted (== denials issued, one per stage).
  [[nodiscard]] std::size_t stages_passed() const ACS_EXCLUDES(m_);

 private:
  const std::vector<std::size_t> budgets_;
  mutable acs::Mutex m_;
  std::size_t granted_ ACS_GUARDED_BY(m_) = 0;
  std::size_t stage_ ACS_GUARDED_BY(m_) = 0;
};

}  // namespace acs::fault
