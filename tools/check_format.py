#!/usr/bin/env python3
"""Check (or apply) the repo's .clang-format style over src/, tests/, bench/,
examples/ and src-adjacent tools fixtures.

Usage: tools/check_format.py [--fix] [--strict]

Default mode is check-only: exits 1 and prints the offending files when any
file would be reformatted. --fix rewrites in place. When clang-format is not
installed the script prints a notice and exits 0 so local workflows keep
working in minimal containers — pass --strict (CI does) to turn a missing
tool into a failure.
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
DIRS = ("src", "tests", "bench", "examples")

CANDIDATES = ("clang-format", "clang-format-18", "clang-format-17",
              "clang-format-16", "clang-format-15", "clang-format-14")


def find_tool() -> str | None:
    for name in CANDIDATES:
        if shutil.which(name):
            return name
    return None


def sources() -> list[Path]:
    files: list[Path] = []
    for d in DIRS:
        root = REPO / d
        for pattern in ("*.hpp", "*.h", "*.cpp", "*.cc"):
            files += root.rglob(pattern)
    return sorted(files)


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(prog="check_format.py")
    ap.add_argument("--fix", action="store_true", help="rewrite in place")
    ap.add_argument("--strict", action="store_true",
                    help="fail (exit 3) when clang-format is not installed")
    args = ap.parse_args(argv)

    tool = find_tool()
    if tool is None:
        msg = "check_format: clang-format not found"
        if args.strict:
            print(f"{msg} (--strict)", file=sys.stderr)
            return 3
        print(f"{msg}; skipping (install clang-format or run in CI's lint "
              "job)", file=sys.stderr)
        return 0

    files = sources()
    if args.fix:
        subprocess.run([tool, "-i", *map(str, files)], check=True)
        print(f"check_format: formatted {len(files)} file(s) [{tool}]",
              file=sys.stderr)
        return 0

    drifted: list[Path] = []
    for f in files:
        proc = subprocess.run([tool, "--dry-run", "-Werror", str(f)],
                              capture_output=True, text=True)
        if proc.returncode != 0:
            drifted.append(f)
    for f in drifted:
        print(f"would reformat: {f.relative_to(REPO)}")
    print(f"check_format: {len(files) - len(drifted)}/{len(files)} clean "
          f"[{tool}]", file=sys.stderr)
    return 1 if drifted else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
