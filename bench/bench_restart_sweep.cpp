/// \file bench_restart_sweep.cpp
/// Reproduces the Section 4.3 restart-cost experiment: the webbase-like
/// matrix is multiplied with progressively smaller chunk pools, forcing
/// more host round trips. The paper measured 22.0 / 23.6 / 24.5 / 26.6 /
/// 30.8 / 39.7 / 48.6 ms for 0 / 3 / 5 / 10 / 21 / 42 / 63 restarts —
/// i.e. graceful degradation; even at 63 restarts it still beat nsparse
/// by 2x. The nsparse reference time is printed for the same comparison.

#include <iostream>

#include "baselines/nsparse_like.hpp"
#include "core/acspgemm.hpp"
#include "suite/suite.hpp"
#include "suite/table.hpp"

int main() {
  using namespace acs;

  const SuiteEntry* webbase = nullptr;
  for (const auto& entry : showcase_suite())
    if (entry.name == "webbase-like") webbase = &entry;
  const auto a = build_matrix<double>(*webbase);

  // Baseline run with the default (ample) pool.
  SpgemmStats full;
  multiply(a, a, Config{}, &full);
  std::cout << "restart sweep on webbase-like (" << a.rows << "^2, "
            << a.nnz() << " nnz)\n";
  std::cout << "chunk memory actually needed: "
            << full.pool_used_bytes / 1024 << " KB\n\n";

  SpgemmStats ns;
  nsparse_multiply(a, a, &ns);

  TextTable table({"pool KB", "restarts", "sim ms", "slowdown vs 0 restarts",
                   "vs nsparse"});
  CsvWriter csv("restart_sweep.csv");
  csv.write_row({"pool_kb", "restarts", "sim_ms", "slowdown", "vs_nsparse"});

  // Sweep the pool from ample down to a small fraction of the needed size.
  const double base_time = full.sim_time_s;
  for (double fraction : {2.0, 1.0, 0.5, 0.25, 0.125, 0.0625, 0.03125, 0.015625}) {
    Config cfg;
    cfg.pool_override_bytes = std::max<std::size_t>(
        16 * 1024,
        static_cast<std::size_t>(fraction *
                                 static_cast<double>(full.pool_used_bytes)));
    SpgemmStats stats;
    multiply(a, a, cfg, &stats);
    table.add_row({std::to_string(cfg.pool_override_bytes / 1024),
                   std::to_string(stats.restarts),
                   TextTable::num(stats.sim_time_s * 1e3, 3),
                   TextTable::num(stats.sim_time_s / base_time, 2) + "x",
                   TextTable::num(ns.sim_time_s / stats.sim_time_s, 2) + "x"});
    csv.write_row({std::to_string(cfg.pool_override_bytes / 1024),
                   std::to_string(stats.restarts),
                   TextTable::num(stats.sim_time_s * 1e3, 4),
                   TextTable::num(stats.sim_time_s / base_time, 3),
                   TextTable::num(ns.sim_time_s / stats.sim_time_s, 3)});
  }
  std::cout << table.str();
  std::cout << "\nnsparse reference: " << TextTable::num(ns.sim_time_s * 1e3, 3)
            << " ms\nwrote restart_sweep.csv\n";
  return 0;
}
