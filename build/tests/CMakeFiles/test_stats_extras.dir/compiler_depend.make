# Empty compiler generated dependencies file for test_stats_extras.
# This may be replaced when dependencies are built.
