#pragma once
/// \file ops.hpp
/// Element-wise and structural operations on CSR matrices: the utility set
/// a downstream SpGEMM user needs around the multiply itself (AMG setup,
/// graph analytics masks, residual checks).

#include "matrix/csr.hpp"

namespace acs {

/// alpha*A + beta*B (same dimensions; structural union).
template <class T>
Csr<T> add(const Csr<T>& a, const Csr<T>& b, T alpha = T{1}, T beta = T{1});

/// In-place scalar scale.
template <class T>
void scale(Csr<T>& m, T factor);

/// Hadamard (element-wise) product restricted to the intersection pattern —
/// the "masked" operation triangle counting uses (A .* (A*A)).
template <class T>
Csr<T> hadamard(const Csr<T>& a, const Csr<T>& b);

/// Keep only entries where `mask` has an entry (values from `m`).
template <class T>
Csr<T> structural_mask(const Csr<T>& m, const Csr<T>& mask);

/// Frobenius norm of (a - b); matrices must share dimensions. Useful for
/// comparing products across algorithms with a single scalar.
template <class T>
double frobenius_distance(const Csr<T>& a, const Csr<T>& b);

/// Extract the main diagonal as a dense vector (missing entries are zero).
template <class T>
std::vector<T> diagonal(const Csr<T>& m);

/// Sum of all values (e.g. closed-wedge counting after a mask).
template <class T>
T value_sum(const Csr<T>& m);

/// True if the matrix equals its transpose structurally and numerically.
template <class T>
bool is_symmetric(const Csr<T>& m);

extern template Csr<float> add(const Csr<float>&, const Csr<float>&, float, float);
extern template Csr<double> add(const Csr<double>&, const Csr<double>&, double, double);
extern template void scale(Csr<float>&, float);
extern template void scale(Csr<double>&, double);
extern template Csr<float> hadamard(const Csr<float>&, const Csr<float>&);
extern template Csr<double> hadamard(const Csr<double>&, const Csr<double>&);
extern template Csr<float> structural_mask(const Csr<float>&, const Csr<float>&);
extern template Csr<double> structural_mask(const Csr<double>&, const Csr<double>&);
extern template double frobenius_distance(const Csr<float>&, const Csr<float>&);
extern template double frobenius_distance(const Csr<double>&, const Csr<double>&);
extern template std::vector<float> diagonal(const Csr<float>&);
extern template std::vector<double> diagonal(const Csr<double>&);
extern template float value_sum(const Csr<float>&);
extern template double value_sum(const Csr<double>&);
extern template bool is_symmetric(const Csr<float>&);
extern template bool is_symmetric(const Csr<double>&);

}  // namespace acs
