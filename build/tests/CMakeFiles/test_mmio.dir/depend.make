# Empty dependencies file for test_mmio.
# This may be replaced when dependencies are built.
