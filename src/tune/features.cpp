#include "tune/features.hpp"

#include <algorithm>

namespace acs::tune {

double TuneFeatures::products_in_rows_at_least(index_t t) const {
  // sampled_b_lens is sorted ascending; sum the tail.
  auto it = std::lower_bound(sampled_b_lens.begin(), sampled_b_lens.end(), t);
  double sum = 0.0;
  for (; it != sampled_b_lens.end(); ++it) sum += static_cast<double>(*it);
  return sum * static_cast<double>(stride);
}

double TuneFeatures::entries_in_rows_at_least(index_t t) const {
  auto it = std::lower_bound(sampled_b_lens.begin(), sampled_b_lens.end(), t);
  return static_cast<double>(sampled_b_lens.end() - it) *
         static_cast<double>(stride);
}

RowLengthProfile row_length_profile(const std::vector<index_t>& row_ptr,
                                    index_t rows) {
  RowLengthProfile p;
  if (rows <= 0) return p;
  std::vector<index_t> lens(static_cast<std::size_t>(rows));
  for (index_t r = 0; r < rows; ++r)
    lens[static_cast<std::size_t>(r)] =
        row_ptr[static_cast<std::size_t>(r) + 1] -
        row_ptr[static_cast<std::size_t>(r)];
  std::sort(lens.begin(), lens.end());
  const auto at = [&](double q) {
    const auto i = static_cast<std::size_t>(
        q * static_cast<double>(lens.size() - 1));
    return lens[i];
  };
  p.p50 = at(0.50);
  p.p90 = at(0.90);
  p.p99 = at(0.99);
  p.max = lens.back();
  p.avg = static_cast<double>(row_ptr[static_cast<std::size_t>(rows)]) /
          static_cast<double>(rows);
  return p;
}

template <class T>
TuneFeatures extract_features(const Csr<T>& a, const Csr<T>& b,
                              std::size_t sample_stride,
                              std::size_t min_samples) {
  TuneFeatures f;
  f.rows_a = a.rows;
  f.cols_a = a.cols;
  f.rows_b = b.rows;
  f.cols_b = b.cols;
  f.nnz_a = a.nnz();
  f.nnz_b = b.nnz();
  f.a_rows = row_length_profile(a.row_ptr, a.rows);
  f.b_rows = row_length_profile(b.row_ptr, b.rows);

  const auto nnz = static_cast<std::size_t>(f.nnz_a);
  std::size_t stride = std::max<std::size_t>(1, sample_stride);
  if (min_samples > 0 && nnz > 0)
    stride = std::min(stride, std::max<std::size_t>(1, nnz / min_samples));
  f.stride = stride;
  f.products_exact = stride == 1;

  // Strided sample of A's column ids against B's row lengths. The scaled
  // sum is the expected-value estimate; the conservative variant charges
  // each window the larger of its two bounding samples, so locally heavy
  // stretches of B rows are not diluted by the stride.
  f.sampled_b_lens.reserve(nnz / stride + 1);
  double sum = 0.0, upper = 0.0;
  index_t prev = 0;
  for (std::size_t i = 0; i < nnz; i += stride) {
    const index_t blen = b.row_length(a.col_idx[i]);
    f.sampled_b_lens.push_back(blen);
    sum += static_cast<double>(blen);
    const std::size_t window = std::min(stride, nnz - i);
    upper += static_cast<double>(std::max(prev, blen)) *
             static_cast<double>(window);
    prev = blen;
  }
  f.sampled = f.sampled_b_lens.size();
  f.est_products = f.products_exact ? sum : sum * static_cast<double>(stride);
  f.est_products_upper = f.products_exact ? sum : upper;
  std::sort(f.sampled_b_lens.begin(), f.sampled_b_lens.end());
  return f;
}

template TuneFeatures extract_features(const Csr<float>&, const Csr<float>&,
                                       std::size_t, std::size_t);
template TuneFeatures extract_features(const Csr<double>&, const Csr<double>&,
                                       std::size_t, std::size_t);

}  // namespace acs::tune
