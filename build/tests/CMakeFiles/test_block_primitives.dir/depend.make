# Empty dependencies file for test_block_primitives.
# This may be replaced when dependencies are built.
