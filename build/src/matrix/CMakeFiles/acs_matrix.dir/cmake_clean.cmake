file(REMOVE_RECURSE
  "CMakeFiles/acs_matrix.dir/binary_io.cpp.o"
  "CMakeFiles/acs_matrix.dir/binary_io.cpp.o.d"
  "CMakeFiles/acs_matrix.dir/coo.cpp.o"
  "CMakeFiles/acs_matrix.dir/coo.cpp.o.d"
  "CMakeFiles/acs_matrix.dir/csr.cpp.o"
  "CMakeFiles/acs_matrix.dir/csr.cpp.o.d"
  "CMakeFiles/acs_matrix.dir/generators.cpp.o"
  "CMakeFiles/acs_matrix.dir/generators.cpp.o.d"
  "CMakeFiles/acs_matrix.dir/mmio.cpp.o"
  "CMakeFiles/acs_matrix.dir/mmio.cpp.o.d"
  "CMakeFiles/acs_matrix.dir/ops.cpp.o"
  "CMakeFiles/acs_matrix.dir/ops.cpp.o.d"
  "CMakeFiles/acs_matrix.dir/stats.cpp.o"
  "CMakeFiles/acs_matrix.dir/stats.cpp.o.d"
  "CMakeFiles/acs_matrix.dir/symbolic.cpp.o"
  "CMakeFiles/acs_matrix.dir/symbolic.cpp.o.d"
  "CMakeFiles/acs_matrix.dir/transpose.cpp.o"
  "CMakeFiles/acs_matrix.dir/transpose.cpp.o.d"
  "libacs_matrix.a"
  "libacs_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acs_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
