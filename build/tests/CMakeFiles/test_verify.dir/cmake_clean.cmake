file(REMOVE_RECURSE
  "CMakeFiles/test_verify.dir/test_verify.cpp.o"
  "CMakeFiles/test_verify.dir/test_verify.cpp.o.d"
  "test_verify"
  "test_verify.pdb"
  "test_verify[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
