#pragma once
/// \file plan_cache.hpp
/// LRU cache of SpGEMM execution plans keyed by structure fingerprint.
/// Repeated-pattern workloads (AMG Galerkin chains, iterative graph
/// kernels) hit the cache and skip global load balancing and the memory
/// estimate; the learned pool size makes warm runs restart-free. Lookups
/// copy the plan out and `store` writes the refreshed plan back, so two
/// jobs with the same pattern can run concurrently without serializing on
/// a shared plan object. Thread-safe; all operations take one internal
/// mutex (plans are small — a blockRowStarts table plus a few counters).

#include <cstddef>
#include <list>
#include <unordered_map>
#include <vector>

#include "core/plan.hpp"
#include "core/thread_annotations.hpp"
#include "runtime/fingerprint.hpp"

namespace acs::runtime {

class PlanCache {
 public:
  /// `capacity` = maximum cached plans; at least 1.
  explicit PlanCache(std::size_t capacity = 64);

  /// Copy the cached plan for `key` into `plan` and mark the entry
  /// most-recently-used. Returns false (and counts a miss) when absent.
  bool lookup(const Fingerprint& key, SpgemmPlan& plan) ACS_EXCLUDES(m_);

  /// Insert or refresh the plan for `key` (moves `plan` in), evicting the
  /// least-recently-used entry beyond capacity. A tuned upgrade recorded by
  /// `upgrade_tuned` always wins over the incoming plan's tune state: a
  /// worker that looked its plan up before the background re-tune landed
  /// cannot clobber the refined overlay when it stores the plan back.
  void store(const Fingerprint& key, SpgemmPlan plan) ACS_EXCLUDES(m_);

  /// Atomically swap the refined overlay chosen by a background re-tune
  /// into the cached plan for `key` (and remember it, so in-flight stale
  /// stores re-apply it — see `store`). When the overlay differs from the
  /// cached one, the stored load-balancing table and learned pool size are
  /// dropped (they were built for the superseded parameters); either way
  /// the entry's `measured_products` is updated and `feedback_runs` raised
  /// to 1 so no further refinement is scheduled. LRU order is untouched —
  /// an upgrade is maintenance, not a use. Returns false when `key` is not
  /// cached (the upgrade is still remembered for stale stores).
  bool upgrade_tuned(const Fingerprint& key, const TunedParams& refined,
                     offset_t measured_products) ACS_EXCLUDES(m_);

  struct Counters {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t insertions = 0;
    std::size_t refreshes = 0;
    std::size_t evictions = 0;

    [[nodiscard]] double hit_rate() const {
      const std::size_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  [[nodiscard]] Counters counters() const ACS_EXCLUDES(m_);
  [[nodiscard]] std::size_t size() const ACS_EXCLUDES(m_);
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  void clear() ACS_EXCLUDES(m_);

  /// Every cached plan whose tuner overlay is valid, as persistable
  /// records (runtime/tune_persist.hpp consumes this shape). Snapshot
  /// order is MRU-first — deterministic for a deterministic access
  /// history.
  struct TunedEntry {
    Fingerprint key;
    TunedParams tuned;
    offset_t measured_products = 0;
  };
  [[nodiscard]] std::vector<TunedEntry> tuned_entries() const ACS_EXCLUDES(m_);

 private:
  struct Entry {
    Fingerprint key;
    SpgemmPlan plan;
  };

  struct Upgrade {
    TunedParams tuned;
    offset_t measured_products = 0;
  };

  /// Overwrite `plan`'s tune state with `up`'s, invalidating the derived
  /// tables when the overlay actually changes. Caller holds m_.
  static void apply_upgrade_locked(SpgemmPlan& plan, const Upgrade& up);

  mutable acs::Mutex m_;
  std::size_t capacity_;  ///< const after construction
  /// Most-recently-used at the front.
  std::list<Entry> lru_ ACS_GUARDED_BY(m_);
  std::unordered_map<Fingerprint, std::list<Entry>::iterator, FingerprintHash>
      index_ ACS_GUARDED_BY(m_);
  /// Background re-tune results, kept until their entry is evicted so a
  /// stale in-flight store cannot roll the refined overlay back.
  std::unordered_map<Fingerprint, Upgrade, FingerprintHash> upgrades_
      ACS_GUARDED_BY(m_);
  Counters counters_ ACS_GUARDED_BY(m_);
};

}  // namespace acs::runtime
