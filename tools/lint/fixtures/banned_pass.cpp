// Fixture: library code with no banned calls — names that merely *contain*
// a banned identifier, or banned names in comments/strings, stay silent.
#include <string>

double sim_time_s() { return 0.0; }

struct Clock {
  double time_s = 0.0;
};

// printf( in a comment is not a call; neither is time( here.
std::string describe() {
  return "rand() and printf() in a string literal do not count";
}

double runtime(const Clock& c) { return c.time_s + sim_time_s(); }
