/// Direct unit tests of the merge block (run_merge_block): the three merge
/// kinds, window splitting, pointer-chunk materialization, restart/resume.

#include "core/merge.hpp"

#include <gtest/gtest.h>

#include "matrix/coo.hpp"

namespace acs {
namespace {

/// A chunk holding one row's (col, val) entries.
Chunk<double> row_chunk(index_t row, std::vector<index_t> cols,
                        std::vector<double> vals, std::uint32_t block,
                        std::uint32_t counter) {
  Chunk<double> c;
  c.rows = {row};
  c.row_offsets = {0, static_cast<index_t>(cols.size())};
  c.cols = std::move(cols);
  c.vals = std::move(vals);
  c.order = {block, counter};
  return c;
}

MergeBatch single_row_batch(index_t row, const std::vector<Chunk<double>>& chunks) {
  MergeBatch batch;
  batch.rows = {row};
  batch.segments.emplace_back();
  for (std::size_t i = 0; i < chunks.size(); ++i)
    batch.segments[0].push_back(
        {i, 0, chunks[i].entry_count(), chunks[i].order});
  return batch;
}

Csr<double> empty_b() {
  Csr<double> b;
  b.rows = b.cols = 100;
  b.row_ptr.assign(101, 0);
  return b;
}

TEST(Merge, TwoChunksCombineOverlappingColumns) {
  std::vector<Chunk<double>> chunks;
  chunks.push_back(row_chunk(3, {1, 5, 9}, {1.0, 2.0, 3.0}, 0, 0));
  chunks.push_back(row_chunk(3, {5, 7}, {10.0, 20.0}, 1, 0));
  const auto batch = single_row_batch(3, chunks);
  ChunkPool pool(1 << 20);
  Config cfg;
  const auto out = run_merge_block<double>(batch, chunks, empty_b(), cfg, pool,
                                           MergeKind::Multi, 0, 99);
  ASSERT_EQ(out.chunks.size(), 1u);
  const auto& m = out.chunks[0];
  EXPECT_EQ(m.rows, (std::vector<index_t>{3}));
  EXPECT_EQ(m.cols, (std::vector<index_t>{1, 5, 7, 9}));
  EXPECT_EQ(m.vals, (std::vector<double>{1.0, 12.0, 20.0, 3.0}));
}

TEST(Merge, CombinesInChunkOrderForDeterminism) {
  // Equal columns must sum in ChunkOrder: (a + b) with a from the earlier
  // chunk — checked with values whose float sum is order-sensitive.
  std::vector<Chunk<double>> chunks;
  chunks.push_back(row_chunk(0, {4}, {1e16}, 2, 1));
  chunks.push_back(row_chunk(0, {4}, {1.0}, 0, 0));   // earliest order
  chunks.push_back(row_chunk(0, {4}, {-1e16}, 2, 5));
  // Segments sorted by order: 1.0, 1e16, -1e16 -> ((1.0 + 1e16) - 1e16) = 0.
  MergeBatch batch;
  batch.rows = {0};
  batch.segments.emplace_back();
  batch.segments[0].push_back({1, 0, 1, chunks[1].order});
  batch.segments[0].push_back({0, 0, 1, chunks[0].order});
  batch.segments[0].push_back({2, 0, 1, chunks[2].order});
  ChunkPool pool(1 << 20);
  Config cfg;
  const auto out = run_merge_block<double>(batch, chunks, empty_b(), cfg, pool,
                                           MergeKind::Search, 0, 99);
  ASSERT_EQ(out.chunks.size(), 1u);
  EXPECT_EQ(out.chunks[0].vals[0], (1.0 + 1e16) - 1e16);
}

TEST(Merge, MultiBatchSeveralRows) {
  std::vector<Chunk<double>> chunks;
  chunks.push_back(row_chunk(1, {0, 2}, {1.0, 1.0}, 0, 0));
  chunks.push_back(row_chunk(1, {2, 4}, {1.0, 1.0}, 1, 0));
  chunks.push_back(row_chunk(6, {3}, {5.0}, 0, 1));
  chunks.push_back(row_chunk(6, {3}, {7.0}, 1, 1));
  MergeBatch batch;
  batch.rows = {1, 6};
  batch.segments.resize(2);
  batch.segments[0] = {{0, 0, 2, chunks[0].order}, {1, 0, 2, chunks[1].order}};
  batch.segments[1] = {{2, 0, 1, chunks[2].order}, {3, 0, 1, chunks[3].order}};
  ChunkPool pool(1 << 20);
  Config cfg;
  const auto out = run_merge_block<double>(batch, chunks, empty_b(), cfg, pool,
                                           MergeKind::Multi, 0, 99);
  ASSERT_EQ(out.chunks.size(), 1u);
  const auto& m = out.chunks[0];
  EXPECT_EQ(m.rows, (std::vector<index_t>{1, 6}));
  EXPECT_EQ(m.row_offsets, (std::vector<index_t>{0, 3, 4}));
  EXPECT_EQ(m.cols, (std::vector<index_t>{0, 2, 4, 3}));
  EXPECT_EQ(m.vals, (std::vector<double>{1.0, 2.0, 1.0, 12.0}));
}

TEST(Merge, WindowsSplitLargeRows) {
  // A row larger than the block capacity must produce multiple window
  // chunks with ascending, non-overlapping column ranges.
  Config cfg;
  cfg.threads = 8;
  cfg.elements_per_thread = 4;  // capacity 32
  cfg.retain_per_thread = 2;
  std::vector<Chunk<double>> chunks;
  std::vector<index_t> cols_a, cols_b;
  std::vector<double> vals_a, vals_b;
  for (index_t c = 0; c < 50; ++c) {
    cols_a.push_back(2 * c);
    vals_a.push_back(1.0);
    cols_b.push_back(2 * c + 1);
    vals_b.push_back(2.0);
  }
  chunks.push_back(row_chunk(0, cols_a, vals_a, 0, 0));
  chunks.push_back(row_chunk(0, cols_b, vals_b, 1, 0));
  const auto batch = single_row_batch(0, chunks);
  ChunkPool pool(1 << 20);
  const auto out = run_merge_block<double>(batch, chunks, empty_b(), cfg, pool,
                                           MergeKind::Path, 0, 99);
  ASSERT_GT(out.chunks.size(), 1u);
  index_t total = 0;
  index_t prev_last = -1;
  for (const auto& w : out.chunks) {
    EXPECT_GT(w.cols.front(), prev_last);
    prev_last = w.cols.back();
    total += w.entry_count();
  }
  EXPECT_EQ(total, 100);
}

TEST(Merge, PointerChunksMaterializeFromB) {
  Coo<double> bcoo;
  bcoo.rows = bcoo.cols = 100;
  for (index_t c = 10; c < 20; ++c) bcoo.push(7, c, 0.5 * (c - 9));
  const auto b = bcoo.to_csr();

  std::vector<Chunk<double>> chunks;
  Chunk<double> pointer;
  pointer.is_long_row = true;
  pointer.rows = {2};
  pointer.b_row = 7;
  pointer.factor = 2.0;
  pointer.long_len = 10;
  pointer.order = {0, 0};
  chunks.push_back(std::move(pointer));
  chunks.push_back(row_chunk(2, {12, 50}, {100.0, 1.0}, 1, 0));

  const auto batch = single_row_batch(2, chunks);
  ChunkPool pool(1 << 20);
  Config cfg;
  const auto out = run_merge_block<double>(batch, chunks, b, cfg, pool,
                                           MergeKind::Search, 0, 99);
  ASSERT_EQ(out.chunks.size(), 1u);
  const auto& m = out.chunks[0];
  ASSERT_EQ(m.entry_count(), 11);  // cols 10..19 plus 50
  // col 12 combines 2.0*1.5 (scaled B) + 100.0 (regular chunk).
  for (std::size_t i = 0; i < m.cols.size(); ++i) {
    if (m.cols[i] == 12) {
      EXPECT_EQ(m.vals[i], 2.0 * 1.5 + 100.0);
    }
  }
}

TEST(Merge, DegenerateOversizedGroupChargesFlops) {
  // Regression (ISSUE 3 satellite): a key group with more duplicates of one
  // (row, col) than kCounterMask allows takes the sequential-accumulation
  // branch, which previously charged no flops at all — wn values summed with
  // wn-1 additions must show up in the metrics like the compaction path's
  // combines do.
  constexpr std::size_t kDup = 33000;  // > compaction_detail::kCounterMask
  std::vector<Chunk<double>> chunks;
  chunks.push_back(row_chunk(4, std::vector<index_t>(kDup, 17),
                             std::vector<double>(kDup, 0.25), 0, 0));
  const auto batch = single_row_batch(4, chunks);
  ChunkPool pool(1 << 20);
  Config cfg;
  const auto out = run_merge_block<double>(batch, chunks, empty_b(), cfg, pool,
                                           MergeKind::Multi, 0, 99);
  ASSERT_EQ(out.chunks.size(), 1u);
  EXPECT_EQ(out.chunks[0].cols, (std::vector<index_t>{17}));
  EXPECT_EQ(out.chunks[0].vals, (std::vector<double>{kDup * 0.25}));
  EXPECT_GE(out.metrics.flops, kDup - 1);
}

TEST(Merge, RestartResumesAtWindow) {
  Config cfg;
  cfg.threads = 8;
  cfg.elements_per_thread = 4;  // capacity 32: several windows
  cfg.retain_per_thread = 2;
  std::vector<Chunk<double>> chunks;
  std::vector<index_t> cols1, cols2;
  std::vector<double> vals1, vals2;
  for (index_t c = 0; c < 60; ++c) {
    cols1.push_back(c);
    vals1.push_back(1.0);
    cols2.push_back(c);
    vals2.push_back(2.0);
  }
  chunks.push_back(row_chunk(0, cols1, vals1, 0, 0));
  chunks.push_back(row_chunk(0, cols2, vals2, 1, 0));
  const auto batch = single_row_batch(0, chunks);

  ChunkPool tiny(700);  // fits roughly one window chunk
  std::vector<Chunk<double>> produced;
  std::size_t windows_done = 0;
  int rounds = 0;
  for (;;) {
    const auto out = run_merge_block<double>(batch, chunks, empty_b(), Config(cfg),
                                             tiny, MergeKind::Search,
                                             windows_done, 99);
    for (const auto& c : out.chunks) produced.push_back(c);
    windows_done = out.windows_done;
    if (!out.needs_restart) break;
    tiny.grow(700);
    ASSERT_LT(++rounds, 50);
  }
  EXPECT_GT(rounds, 0);
  index_t total = 0;
  for (const auto& w : produced) total += w.entry_count();
  EXPECT_EQ(total, 60);  // every column combined exactly once
  for (const auto& w : produced)
    for (const auto& v : w.vals) EXPECT_EQ(v, 3.0);
}

}  // namespace
}  // namespace acs
