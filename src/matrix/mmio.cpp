#include "matrix/mmio.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace acs {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

struct Header {
  bool pattern = false;
  bool symmetric = false;
  bool skew = false;
};

Header parse_header(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("mmio: empty stream");
  std::istringstream hs(line);
  std::string banner, object, format, field, symmetry;
  hs >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket") throw std::runtime_error("mmio: missing banner");
  if (lower(object) != "matrix") throw std::runtime_error("mmio: not a matrix");
  if (lower(format) != "coordinate")
    throw std::runtime_error("mmio: only coordinate format supported");
  Header h;
  const std::string f = lower(field);
  if (f == "pattern") {
    h.pattern = true;
  } else if (f != "real" && f != "integer") {
    throw std::runtime_error("mmio: unsupported field '" + f + "'");
  }
  const std::string s = lower(symmetry);
  if (s == "symmetric") {
    h.symmetric = true;
  } else if (s == "skew-symmetric") {
    h.symmetric = h.skew = true;
  } else if (s != "general") {
    throw std::runtime_error("mmio: unsupported symmetry '" + s + "'");
  }
  return h;
}

}  // namespace

template <class T>
Coo<T> read_matrix_market(std::istream& in) {
  const Header h = parse_header(in);

  std::string line;
  // Skip comments and blank lines up to the size line.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream sz(line);
  long long rows = 0, cols = 0, entries = 0;
  if (!(sz >> rows >> cols >> entries))
    throw std::runtime_error("mmio: malformed size line");

  Coo<T> coo;
  coo.rows = static_cast<index_t>(rows);
  coo.cols = static_cast<index_t>(cols);
  coo.row_idx.reserve(static_cast<std::size_t>(entries));

  for (long long i = 0; i < entries; ++i) {
    long long r = 0, c = 0;
    double v = 1.0;
    if (!(in >> r >> c)) throw std::runtime_error("mmio: truncated entry list");
    if (!h.pattern && !(in >> v))
      throw std::runtime_error("mmio: truncated value");
    if (r < 1 || r > rows || c < 1 || c > cols)
      throw std::runtime_error("mmio: coordinate out of range");
    coo.push(static_cast<index_t>(r - 1), static_cast<index_t>(c - 1),
             static_cast<T>(v));
    if (h.symmetric && r != c)
      coo.push(static_cast<index_t>(c - 1), static_cast<index_t>(r - 1),
               static_cast<T>(h.skew ? -v : v));
  }
  return coo;
}

template <class T>
Csr<T> read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("mmio: cannot open " + path);
  return read_matrix_market<T>(in).to_csr();
}

template <class T>
void write_matrix_market(std::ostream& out, const Csr<T>& m) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << m.rows << " " << m.cols << " " << m.nnz() << "\n";
  out << std::setprecision(17);
  for (index_t r = 0; r < m.rows; ++r)
    for (index_t k = m.row_ptr[usize(r)]; k < m.row_ptr[usize(r) + 1]; ++k)
      out << r + 1 << " " << m.col_idx[usize(k)] + 1 << " "
          << m.values[usize(k)] << "\n";
}

template <class T>
void write_matrix_market_file(const std::string& path, const Csr<T>& m) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("mmio: cannot open " + path + " for write");
  write_matrix_market(out, m);
}

template Coo<float> read_matrix_market<float>(std::istream&);
template Coo<double> read_matrix_market<double>(std::istream&);
template Csr<float> read_matrix_market_file<float>(const std::string&);
template Csr<double> read_matrix_market_file<double>(const std::string&);
template void write_matrix_market(std::ostream&, const Csr<float>&);
template void write_matrix_market(std::ostream&, const Csr<double>&);
template void write_matrix_market_file(const std::string&, const Csr<float>&);
template void write_matrix_market_file(const std::string&, const Csr<double>&);

}  // namespace acs
