#pragma once
/// \file merge.hpp
/// Chunk merging (Section 3.3): rows shared between chunks are combined into
/// new chunks. Three algorithms with different cut-discovery costs but
/// identical (deterministic) results:
///  * Multi Merge — many small 2-chunk rows batched into one block;
///  * Path Merge — up to a predefined chunk count; sample-sort based cuts;
///  * Search Merge — arbitrary chunk counts; binary-search sampling over the
///    column-id range.
/// Merging always combines segments in global chunk order, so floating-point
/// accumulation remains a left-to-right sum in consumption order — the
/// bit-stability guarantee extends across the merge.

#include <cstdint>
#include <vector>

#include "core/chunk.hpp"
#include "core/config.hpp"
#include "matrix/csr.hpp"
#include "sim/metrics.hpp"

namespace acs {

enum class MergeKind { Multi, Path, Search };

/// One merge work unit: a set of rows (one row for Path/Search; possibly
/// many for Multi Merge), each with its ordered shared segments.
struct MergeBatch {
  std::vector<index_t> rows;
  /// segments[i] are row rows[i]'s segments, sorted by ChunkOrder.
  std::vector<std::vector<RowSegment>> segments;
};

template <class T>
struct MergeOutcome {
  /// New chunks, one per window; each covers one or more complete rows
  /// (Multi Merge) or one column-range window of a single row (Path/Search).
  std::vector<Chunk<T>> chunks;
  sim::MetricCounters metrics;
  bool needs_restart = false;
  /// Windows successfully written (resume point after a restart).
  std::size_t windows_done = 0;
};

/// Execute one merge block. `windows_done_start` resumes a restarted task;
/// windows before it are skipped (their chunks already exist).
template <class T>
MergeOutcome<T> run_merge_block(const MergeBatch& batch,
                                const std::vector<Chunk<T>>& chunks,
                                const Csr<T>& b, const Config& cfg,
                                ChunkPool& pool, MergeKind kind,
                                std::size_t windows_done_start,
                                std::uint32_t order_block);

extern template MergeOutcome<float> run_merge_block(
    const MergeBatch&, const std::vector<Chunk<float>>&, const Csr<float>&,
    const Config&, ChunkPool&, MergeKind, std::size_t, std::uint32_t);
extern template MergeOutcome<double> run_merge_block(
    const MergeBatch&, const std::vector<Chunk<double>>&, const Csr<double>&,
    const Config&, ChunkPool&, MergeKind, std::size_t, std::uint32_t);

}  // namespace acs
