#!/usr/bin/env python3
"""acs-lint: project-specific static analysis for the AC-SpGEMM repo.

Checks the domain rules that generic tooling cannot know (DESIGN.md §10):

  mo-justify        every std::memory_order_{relaxed,acquire,release,acq_rel}
                    argument carries a `// mo:` justification comment on the
                    same line or in the comment block directly above it.
  trace-span-paired outside src/trace/, raw TraceSession::begin_span calls
                    must be provably paired with an end_span in the same
                    function body; the RAII macros (ACS_TRACE_SPAN/SCOPE)
                    are the sanctioned spelling.
  typed-indices     public headers declare row/column/nnz quantities with
                    the project typedefs (index_t/offset_t, matrix/types.hpp),
                    never raw int/long. Shape knobs and bit/byte counts
                    (e.g. nnz_per_block, row_bits) are exempt.
  banned-calls      library code (src/ outside src/suite/) never calls
                    rand/srand/time or the printf family — determinism and
                    the trace layer are the only sanctioned side channels.
  self-sufficient   every public header compiles standalone (its includes
                    are complete), checked with `$CXX -fsyntax-only`.

Backends: uses libclang (python `clang.cindex`) for AST-accurate
declaration info when the bindings are installed; otherwise falls back to
the built-in lexer backend, which strips comments and string literals and
applies the same rules textually. Both backends agree on this repo and on
the fixtures (tools/lint/test_acs_lint.py proves the fixture half).

Exit status: 0 when no findings, 1 when findings, 2 on usage errors.
Suppressions: a `// lint: allow(<rule>)` comment on the flagged line.
"""

from __future__ import annotations

import argparse
import os
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]

try:  # pragma: no cover - exercised only where bindings exist
    import clang.cindex  # type: ignore

    HAVE_LIBCLANG = True
except ImportError:
    HAVE_LIBCLANG = False


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        try:
            rel = self.path.relative_to(REPO)
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# Lexer backend: blank out comments and literals, keep geometry identical.
# ---------------------------------------------------------------------------


def lex(text: str) -> tuple[str, dict[int, str]]:
    """Return (code, comments): `code` is `text` with comments and the
    contents of string/char literals replaced by spaces (newlines kept, so
    offsets and line numbers are unchanged); `comments` maps 1-based line
    numbers to the concatenated comment text on that line."""
    code: list[str] = []
    comments: dict[int, str] = {}
    line = 1
    i = 0
    n = len(text)

    def put(ch: str) -> None:
        code.append(ch if ch == "\n" else " ")

    def note(ch: str) -> None:
        comments[line] = comments.get(line, "") + ch

    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                note(text[i])
                put(text[i])
                i += 1
            continue
        if ch == "/" and nxt == "*":
            put(ch)
            put(nxt)
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] == "\n":
                    line += 1
                else:
                    note(text[i])
                put(text[i])
                i += 1
            if i < n:
                put("*")
                put("/")
                i += 2
            continue
        if ch == 'R' and nxt == '"':  # raw string R"delim( ... )delim"
            m = re.match(r'R"([^(\s\\)]{0,16})\(', text[i:])
            if m:
                end = text.find(")" + m.group(1) + '"', i + m.end())
                end = n if end < 0 else end + len(m.group(1)) + 2
                while i < end:
                    if text[i] == "\n":
                        line += 1
                        code.append("\n")
                    else:
                        put(text[i])
                    i += 1
                continue
        if ch in "\"'":
            quote = ch
            code.append(quote)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    put(" ")
                    i += 1
                    if i < n:
                        if text[i] == "\n":
                            line += 1
                            code.append("\n")
                        else:
                            put(" ")
                        i += 1
                    continue
                if text[i] == "\n":  # unterminated; bail on the literal
                    break
                put(" ")
                i += 1
            if i < n and text[i] == quote:
                code.append(quote)
                i += 1
            continue
        if ch == "\n":
            line += 1
        code.append(ch)
        i += 1
    return "".join(code), comments


def line_of(code: str, pos: int) -> int:
    return code.count("\n", 0, pos) + 1


def suppressed(rule: str, lineno: int, comments: dict[int, str]) -> bool:
    c = comments.get(lineno, "")
    return f"allow({rule})" in c and "lint:" in c


# ---------------------------------------------------------------------------
# Rule: mo-justify
# ---------------------------------------------------------------------------

MO_RE = re.compile(r"std\s*::\s*memory_order_(relaxed|acquire|release|acq_rel)")


def rule_mo_justify(path: Path, code: str, comments: dict[int, str],
                    raw_lines: list[str]) -> list[Finding]:
    findings = []
    code_lines = code.split("\n")
    for m in MO_RE.finditer(code):
        lineno = line_of(code, m.start())
        if suppressed("mo-justify", lineno, comments):
            continue
        justified = "mo:" in comments.get(lineno, "")
        # Walk up to the start of the statement (continuation lines carry
        # code but no terminator), then through the attached comment block
        # (max 3 comment lines; a blank line detaches it).
        look = lineno - 1
        while not justified and look >= 1:
            stripped = code_lines[look - 1].strip()
            if stripped == "" or stripped.endswith((";", "{", "}", ":")):
                break  # previous statement ended; leave continuation walk
            if "mo:" in comments.get(look, ""):
                justified = True
            look -= 1
        steps = 0
        while not justified and look >= 1 and steps < 3:
            has_code = code_lines[look - 1].strip() != ""
            if has_code:
                break
            if "mo:" in comments.get(look, ""):
                justified = True
            if raw_lines[look - 1].strip() == "":
                break  # blank line detaches the comment block
            look -= 1
            steps += 1
        if not justified:
            findings.append(Finding(
                path, lineno, "mo-justify",
                f"std::memory_order_{m.group(1)} without a `// mo:` "
                "justification comment (same line or the comment block "
                "directly above)"))
    return findings


# ---------------------------------------------------------------------------
# Rule: trace-span-paired
# ---------------------------------------------------------------------------


def enclosing_function_body(code: str, pos: int) -> tuple[int, int] | None:
    """Byte range of the innermost brace block containing `pos` that looks
    like a function body (its opening brace follows a `)` or a function
    qualifier). Returns None when `pos` sits at namespace/class scope."""
    stack: list[int] = []
    blocks: list[tuple[int, int]] = []
    for i, ch in enumerate(code):
        if ch == "{":
            stack.append(i)
        elif ch == "}" and stack:
            open_i = stack.pop()
            if open_i < pos < i:
                blocks.append((open_i, i))
    qualifier = re.compile(
        r"(\)|const|noexcept|override|final|mutable|->\s*[\w:<>,\s&*]+|try)\s*$")
    for open_i, close_i in blocks:  # innermost first
        before = code[:open_i].rstrip()
        if qualifier.search(before):
            return open_i, close_i
    return None


def rule_trace_span(path: Path, code: str, comments: dict[int, str],
                    raw_lines: list[str]) -> list[Finding]:
    del raw_lines
    if "src/trace" in path.as_posix():
        return []  # the implementation of the RAII wrapper itself
    findings = []
    for m in re.finditer(r"\bbegin_span\s*\(", code):
        before = code[:m.start()].rstrip()
        if not before.endswith((".", ">")):
            continue  # declaration/definition, not a member call
        lineno = line_of(code, m.start())
        if suppressed("trace-span-paired", lineno, comments):
            continue
        body = enclosing_function_body(code, m.start())
        paired = body is not None and re.search(
            r"\bend_span\s*\(", code[m.end():body[1]]) is not None
        if not paired:
            findings.append(Finding(
                path, lineno, "trace-span-paired",
                "raw begin_span without an end_span later in the same "
                "function — use ACS_TRACE_SPAN/ACS_TRACE_SCOPE (RAII) "
                "instead"))
    return findings


# ---------------------------------------------------------------------------
# Rule: typed-indices
# ---------------------------------------------------------------------------

DECL_RE = re.compile(
    r"\b(?P<type>(?:unsigned\s+)?(?:long\s+long|long|int|short)|unsigned)\s+"
    r"(?P<name>[A-Za-z_]\w*)\s*(?==|;|,|\)|\{)")
INDEX_NAME_RE = re.compile(r"(^|_)(rows?|cols?|nnz)(_|$)")
INDEX_EXEMPT_RE = re.compile(
    r"(bits|bytes|per_block|per_thread|chunks|blocks|shift|stride|passes)")


def rule_typed_indices(path: Path, code: str, comments: dict[int, str],
                       raw_lines: list[str]) -> list[Finding]:
    del raw_lines
    if path.suffix not in (".hpp", ".h"):
        return []
    findings = []
    for m in DECL_RE.finditer(code):
        name = m.group("name")
        if not INDEX_NAME_RE.search(name) or INDEX_EXEMPT_RE.search(name):
            continue
        lineno = line_of(code, m.start())
        if suppressed("typed-indices", lineno, comments):
            continue
        findings.append(Finding(
            path, lineno, "typed-indices",
            f"`{m.group('type')} {name}` in a public header: row/column/nnz "
            "quantities must use index_t/offset_t (matrix/types.hpp)"))
    return findings


def rule_typed_indices_clang(path: Path, index) -> list[Finding]:
    """AST-accurate variant of typed-indices used when libclang is
    available: inspects the canonical type of every declaration instead of
    pattern-matching the declaration text."""
    findings = []
    tu = index.parse(str(path), args=["-std=c++20", f"-I{REPO / 'src'}",
                                      "-fsyntax-only"])
    raw_kinds = {
        clang.cindex.TypeKind.INT, clang.cindex.TypeKind.LONG,
        clang.cindex.TypeKind.LONGLONG, clang.cindex.TypeKind.SHORT,
        clang.cindex.TypeKind.UINT, clang.cindex.TypeKind.ULONG,
        clang.cindex.TypeKind.ULONGLONG, clang.cindex.TypeKind.USHORT,
    }
    decl_kinds = {
        clang.cindex.CursorKind.VAR_DECL, clang.cindex.CursorKind.FIELD_DECL,
        clang.cindex.CursorKind.PARM_DECL,
    }
    for cur in tu.cursor.walk_preorder():
        if cur.kind not in decl_kinds:
            continue
        if cur.location.file is None or cur.location.file.name != str(path):
            continue
        name = cur.spelling or ""
        if not INDEX_NAME_RE.search(name) or INDEX_EXEMPT_RE.search(name):
            continue
        t = cur.type
        # A typedef like index_t has kind TYPEDEF at the declared level even
        # though the canonical type is a builtin — only flag spelled-out
        # builtins.
        if t.kind in raw_kinds:
            findings.append(Finding(
                path, cur.location.line, "typed-indices",
                f"`{t.spelling} {name}` in a public header: row/column/nnz "
                "quantities must use index_t/offset_t (matrix/types.hpp)"))
    return findings


# ---------------------------------------------------------------------------
# Rule: banned-calls
# ---------------------------------------------------------------------------

BANNED_RE = re.compile(
    r"(?<![\w.>:])(?:std\s*::\s*)?"
    r"(?P<fn>rand|srand|time|printf|fprintf|sprintf|vprintf|puts)"
    r"\s*\(")


def rule_banned_calls(path: Path, code: str, comments: dict[int, str],
                      raw_lines: list[str]) -> list[Finding]:
    del raw_lines
    parts = set(path.parts)
    exempt_dirs = {"suite", "bench", "tools", "tests", "examples"}
    if "fixtures" not in parts and exempt_dirs & parts:
        return []
    findings = []
    for m in BANNED_RE.finditer(code):
        lineno = line_of(code, m.start())
        if suppressed("banned-calls", lineno, comments):
            continue
        findings.append(Finding(
            path, lineno, "banned-calls",
            f"call of `{m.group('fn')}` in library code: randomness, wall "
            "clocks and stdout are banned outside src/suite, bench and "
            "tools (determinism; use the trace layer for output)"))
    return findings


# ---------------------------------------------------------------------------
# Rule: self-sufficient
# ---------------------------------------------------------------------------


def compiler() -> str | None:
    for cxx in (os.environ.get("CXX"), "g++", "clang++"):
        if cxx and shutil.which(cxx):
            return cxx
    return None


def rule_self_sufficient(headers: list[Path], include_dirs: list[Path],
                         verbose: bool) -> list[Finding]:
    cxx = compiler()
    if cxx is None:
        print("acs-lint: note: no C++ compiler found; skipping "
              "self-sufficient rule", file=sys.stderr)
        return []
    findings = []
    for header in headers:
        cmd = [cxx, "-std=c++20", "-fsyntax-only", "-x", "c++"]
        for inc in include_dirs:
            cmd += [f"-I{inc}"]
        cmd.append(str(header))
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if verbose:
            print(f"acs-lint: {' '.join(cmd)} -> {proc.returncode}",
                  file=sys.stderr)
        if proc.returncode != 0:
            first_error = next(
                (ln for ln in proc.stderr.splitlines() if "error:" in ln),
                proc.stderr.strip().splitlines()[0] if proc.stderr.strip()
                else "compilation failed")
            findings.append(Finding(
                header, 1, "self-sufficient",
                f"header does not compile standalone: {first_error}"))
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

TEXT_RULES = {
    "mo-justify": rule_mo_justify,
    "trace-span-paired": rule_trace_span,
    "typed-indices": rule_typed_indices,
    "banned-calls": rule_banned_calls,
}
ALL_RULES = list(TEXT_RULES) + ["self-sufficient"]


def collect_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        if p.is_dir():
            files += sorted(p.rglob("*.hpp")) + sorted(p.rglob("*.h"))
            files += sorted(p.rglob("*.cpp")) + sorted(p.rglob("*.cc"))
        elif p.exists():
            files.append(p)
        else:
            print(f"acs-lint: error: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return files


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="acs_lint.py",
        description="Project-specific static analysis (see module docstring).")
    ap.add_argument("paths", nargs="*", type=Path,
                    default=None, help="files or directories (default: src/)")
    ap.add_argument("--rules", default=",".join(ALL_RULES),
                    help="comma-separated rule subset to run")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--backend", choices=["auto", "lexer", "clang"],
                    default="auto",
                    help="auto = libclang when importable, else lexer")
    ap.add_argument("--include-dir", action="append", type=Path, default=[],
                    help="extra -I directory for self-sufficient checks")
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for r in ALL_RULES:
            print(r)
        return 0

    rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    unknown = [r for r in rules if r not in ALL_RULES]
    if unknown:
        print(f"acs-lint: error: unknown rule(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2

    if args.backend == "clang" and not HAVE_LIBCLANG:
        print("acs-lint: error: --backend clang requested but the libclang "
              "python bindings are not importable", file=sys.stderr)
        return 2
    use_clang = HAVE_LIBCLANG and args.backend in ("auto", "clang")

    paths = args.paths or [REPO / "src"]
    files = collect_files([p.resolve() for p in paths])
    headers = [f for f in files if f.suffix in (".hpp", ".h")]
    include_dirs = [REPO / "src"] + args.include_dir

    findings: list[Finding] = []
    clang_index = clang.cindex.Index.create() if use_clang else None
    for f in files:
        text = f.read_text(encoding="utf-8", errors="replace")
        code, comments = lex(text)
        raw_lines = text.split("\n")
        for rule in rules:
            if rule == "self-sufficient":
                continue
            if rule == "typed-indices" and clang_index is not None and \
                    f.suffix in (".hpp", ".h"):
                findings += [fd for fd in rule_typed_indices_clang(
                    f, clang_index)
                    if not suppressed(rule, fd.line, comments)]
            else:
                findings += TEXT_RULES[rule](f, code, comments, raw_lines)
    if "self-sufficient" in rules:
        findings += rule_self_sufficient(headers, include_dirs, args.verbose)

    findings.sort(key=lambda fd: (str(fd.path), fd.line))
    for fd in findings:
        print(fd)
    active = ", ".join(rules)
    backend = "libclang" if use_clang else "lexer"
    print(f"acs-lint: {len(findings)} finding(s) over {len(files)} file(s) "
          f"[backend: {backend}; rules: {active}]", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
