/// Tests of the stage-level observability layer (src/trace/): span tree
/// nesting and ordering, cross-thread counter aggregation, exporter golden
/// output, metrics snapshots, and the zero-side-effects guarantee of
/// disabled tracing on the core pipeline.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/acspgemm.hpp"
#include "matrix/generators.hpp"
#include "trace/exporters.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace acs::trace {
namespace {

// --- Span tree ------------------------------------------------------------

TEST(TraceSession, SpansNestPerThreadAndRecordSimTime) {
  TraceSession s;
  const SpanId root = s.begin_span("multiply");
  const SpanId glb = s.begin_span("GLB");
  s.end_span(glb, 0.25);
  const SpanId esc = s.begin_span("ESC");
  const SpanId inner = s.begin_span("esc.iteration");
  s.end_span(inner, 0.125);
  s.end_span(esc, 0.5);
  s.end_span(root);

  const auto spans = s.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[root].name, "multiply");
  EXPECT_EQ(spans[root].parent, kNoSpan);
  EXPECT_EQ(spans[glb].parent, root);
  EXPECT_EQ(spans[esc].parent, root);
  EXPECT_EQ(spans[inner].parent, esc);
  EXPECT_DOUBLE_EQ(spans[glb].sim_time_s, 0.25);
  EXPECT_DOUBLE_EQ(spans[esc].sim_time_s, 0.5);
  // Same thread => same slot; wall times are monotone within the thread.
  for (const auto& sp : spans) {
    EXPECT_EQ(sp.thread, 0u);
    EXPECT_GE(sp.end_s, sp.start_s);
  }
  EXPECT_LE(spans[root].start_s, spans[glb].start_s);
  EXPECT_LE(spans[glb].end_s, spans[esc].start_s);
}

TEST(TraceSession, AddSimTimeAccumulatesOnOpenSpan) {
  TraceSession s;
  const SpanId id = s.begin_span("ESC");
  s.add_sim_time(id, 0.5);
  s.add_sim_time(id, 0.25);
  s.end_span(id, 0.25);
  EXPECT_DOUBLE_EQ(s.spans()[id].sim_time_s, 1.0);
}

TEST(TraceSession, ScopedSpanOnNullSessionIsNoop) {
  ScopedSpan span(nullptr, "anything");
  span.add_sim_time(1.0);
  EXPECT_EQ(span.session(), nullptr);
  EXPECT_EQ(span.id(), kNoSpan);
}

TEST(TraceSession, ThreadsKeepIndependentParentStacks) {
  TraceSession s;
  constexpr int kThreads = 4;
  constexpr int kBumps = 1000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&s] {
      ScopedSpan outer(&s, "worker");
      for (int i = 0; i < kBumps; ++i) {
        ACS_TRACE_COUNT(&s, esc_iterations, 1);
        Counters::raise(s.counters().pool_used_bytes,
                        static_cast<std::uint64_t>(i));
      }
      ScopedSpan inner(&s, "inner");
    });
  }
  for (auto& w : workers) w.join();

  const auto spans = s.spans();
  ASSERT_EQ(spans.size(), 2u * kThreads);
  // Every "inner" span's parent is a "worker" span on the *same* thread
  // slot — concurrent spans never nest under another thread's open span.
  int inners = 0;
  for (const auto& sp : spans) {
    if (sp.name != "inner") continue;
    ++inners;
    ASSERT_NE(sp.parent, kNoSpan);
    EXPECT_EQ(spans[sp.parent].name, "worker");
    EXPECT_EQ(spans[sp.parent].thread, sp.thread);
  }
  EXPECT_EQ(inners, kThreads);

  // Counter sums aggregate across threads; gauges keep the max.
  const CountersSnapshot c = s.counters_snapshot();
  EXPECT_EQ(c.esc_iterations, static_cast<std::uint64_t>(kThreads * kBumps));
  EXPECT_EQ(c.pool_used_bytes, static_cast<std::uint64_t>(kBumps - 1));
}

TEST(Counters, EscHistogramBucketsAndSnapshotSum) {
  Counters c;
  c.record_esc_block(1);
  c.record_esc_block(2);
  c.record_esc_block(2);
  c.record_esc_block(7);
  c.record_esc_block(50);  // beyond the last bucket -> clamped into it
  const CountersSnapshot s = c.snapshot();
  EXPECT_EQ(s.esc_blocks, 5u);
  EXPECT_EQ(s.esc_iterations, 62u);
  EXPECT_EQ(s.esc_iteration_hist[1], 1u);
  EXPECT_EQ(s.esc_iteration_hist[2], 2u);
  EXPECT_EQ(s.esc_iteration_hist[kEscHistBuckets - 1], 2u);

  CountersSnapshot sum = s;
  sum += s;
  EXPECT_EQ(sum.esc_blocks, 10u);
  EXPECT_EQ(sum.esc_iterations, 124u);
}

// --- Exporters (golden output, wall-clock fields excluded) ----------------

/// The deterministic fixture the golden strings below are written against.
TraceSession& golden_session() {
  static TraceSession* s = [] {
    auto* t = new TraceSession;
    const SpanId root = t->begin_span("multiply");
    const SpanId glb = t->begin_span("GLB");
    t->end_span(glb, 0.25);
    const SpanId esc = t->begin_span("ESC");
    t->end_span(esc, 0.5);
    t->end_span(root);
    t->counters().restarts.fetch_add(2);
    t->counters().record_esc_block(3);
    return t;
  }();
  return *s;
}

TEST(Exporters, ChromeJsonGolden) {
  ExportOptions o;
  o.include_wall = false;
  // Spans are laid out on the simulated timeline: the root's duration is
  // the sim time of its subtree, children placed in creation order.
  const std::string expected =
      "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n"
      "  {\"ph\": \"M\", \"pid\": 0, \"name\": \"process_name\", \"args\": "
      "{\"name\": \"acspgemm sim timeline\"}},\n"
      "  {\"name\": \"multiply\", \"ph\": \"X\", \"pid\": 0, \"tid\": 0, "
      "\"ts\": 0.000, \"dur\": 750000.000, \"args\": {\"sim_s\": 0}},\n"
      "  {\"name\": \"GLB\", \"ph\": \"X\", \"pid\": 0, \"tid\": 0, "
      "\"ts\": 0.000, \"dur\": 250000.000, \"args\": {\"sim_s\": 0.25}},\n"
      "  {\"name\": \"ESC\", \"ph\": \"X\", \"pid\": 0, \"tid\": 0, "
      "\"ts\": 250000.000, \"dur\": 500000.000, \"args\": {\"sim_s\": 0.5}}\n"
      "]}\n";
  EXPECT_EQ(to_chrome_json(golden_session(), o), expected);
}

TEST(Exporters, FlatJsonGolden) {
  ExportOptions o;
  o.include_wall = false;
  const std::string expected =
      "{\n"
      "  \"spans\": {\"multiply\": {\"count\": 1, \"sim_s\": 0}, "
      "\"GLB\": {\"count\": 1, \"sim_s\": 0.25}, "
      "\"ESC\": {\"count\": 1, \"sim_s\": 0.5}},\n"
      "  \"stage_sim_s\": {\"GLB\": 0.25, \"ESC\": 0.5, \"MCC\": 0, "
      "\"MM\": 0, \"PM\": 0, \"SM\": 0, \"CC\": 0},\n"
      "  \"counters\": {\"pool_alloc_bytes\": 0, \"pool_denials\": 0, "
      "\"pool_capacity_bytes\": 0, \"pool_used_bytes\": 0, "
      "\"pool_estimate_bytes\": 0, \"restarts\": 2, "
      "\"esc_blocks\": 1, \"esc_iterations\": 3, "
      "\"esc_iteration_hist\": [0, 0, 0, 1, 0, 0, 0, 0], "
      "\"chunks_written\": 0, \"long_row_chunks\": 0, "
      "\"merge_case_rows\": {\"multi\": 0, \"path\": 0, \"search\": 0}, "
      "\"merge_windows\": 0, \"blocks_executed\": 0, "
      "\"block_time_ns_sum\": 0, \"block_time_ns_max\": 0, "
      "\"serve\": {\"submitted\": 0, \"admitted\": 0, \"rejected\": 0, "
      "\"shed\": 0, \"degraded\": 0, \"deadline_misses\": 0, "
      "\"queue_depth_peak\": 0}, "
      "\"tune\": {\"cold_tunes\": 0, \"bg_tunes\": 0, \"cache_loads\": 0}}\n"
      "}\n";
  EXPECT_EQ(to_flat_json(golden_session(), o), expected);
}

TEST(Exporters, TableListsSpansAndCounters) {
  const std::string table = to_table(golden_session());
  EXPECT_NE(table.find("multiply"), std::string::npos);
  EXPECT_NE(table.find("GLB"), std::string::npos);
  EXPECT_NE(table.find("restarts=2"), std::string::npos);
  EXPECT_NE(table.find("esc_iterations=3"), std::string::npos);
}

TEST(Exporters, SimStageTotalsFiltersBySubtree) {
  TraceSession s;
  const SpanId r1 = s.begin_span("job1");
  const SpanId e1 = s.begin_span("ESC");
  s.end_span(e1, 1.0);
  s.end_span(r1);
  const SpanId r2 = s.begin_span("job2");
  const SpanId e2 = s.begin_span("ESC");
  s.end_span(e2, 2.0);
  const SpanId cc = s.begin_span("CC");
  s.end_span(cc, 0.5);
  s.end_span(r2);

  const auto spans = s.spans();
  const auto all = sim_stage_totals(spans);
  EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(stage_index("ESC"))], 3.0);
  const auto only2 = sim_stage_totals(spans, r2);
  EXPECT_DOUBLE_EQ(only2[static_cast<std::size_t>(stage_index("ESC"))], 2.0);
  EXPECT_DOUBLE_EQ(only2[static_cast<std::size_t>(stage_index("CC"))], 0.5);
  const auto only1 = sim_stage_totals(spans, r1);
  EXPECT_DOUBLE_EQ(only1[static_cast<std::size_t>(stage_index("ESC"))], 1.0);
}

TEST(Metrics, SessionMetricsCountsRootsAndStages) {
  TraceSession s;
  for (int j = 0; j < 3; ++j) {
    const SpanId root = s.begin_span("multiply");
    const SpanId esc = s.begin_span("ESC");
    s.end_span(esc, 0.5);
    s.end_span(root);
  }
  const MetricsSnapshot m = session_metrics(s);
  EXPECT_EQ(m.jobs, 3u);
  EXPECT_DOUBLE_EQ(m.stage_sim_time_s[static_cast<std::size_t>(stage_index("ESC"))],
                   1.5);
}

TEST(Metrics, SnapshotAggregationSumsCountsAndMaxesGauges) {
  MetricsSnapshot a;
  a.jobs = 1;
  a.sim_time_s = 1.0;
  a.restarts = 2;
  a.pool_bytes = 100;
  MetricsSnapshot b;
  b.jobs = 2;
  b.sim_time_s = 0.5;
  b.restarts = 1;
  b.pool_bytes = 60;
  a += b;
  EXPECT_EQ(a.jobs, 3u);
  EXPECT_DOUBLE_EQ(a.sim_time_s, 1.5);
  EXPECT_EQ(a.restarts, 3u);
  EXPECT_EQ(a.pool_bytes, 100u);  // high-water gauge, not summed
}

TEST(Metrics, ServeCountersSumAndGaugeAcrossSnapshots) {
  CountersSnapshot a;
  a.serve_submitted = 10;
  a.serve_admitted = 7;
  a.serve_rejected = 2;
  a.serve_shed = 1;
  a.serve_degraded = 3;
  a.serve_deadline_misses = 1;
  a.serve_queue_depth_peak = 5;
  CountersSnapshot b;
  b.serve_submitted = 4;
  b.serve_admitted = 4;
  b.serve_queue_depth_peak = 9;
  a += b;
  EXPECT_EQ(a.serve_submitted, 14u);
  EXPECT_EQ(a.serve_admitted, 11u);
  EXPECT_EQ(a.serve_rejected, 2u);
  EXPECT_EQ(a.serve_shed, 1u);
  EXPECT_EQ(a.serve_degraded, 3u);
  EXPECT_EQ(a.serve_deadline_misses, 1u);
  EXPECT_EQ(a.serve_queue_depth_peak, 9u);  // gauge: max, not sum

  // The live-counter snapshot carries the serve block too.
  Counters live;
  live.serve_admitted.fetch_add(2);
  Counters::raise(live.serve_queue_depth_peak, 3);
  const CountersSnapshot s = live.snapshot();
  EXPECT_EQ(s.serve_admitted, 2u);
  EXPECT_EQ(s.serve_queue_depth_peak, 3u);
}

TEST(Metrics, TenantServeRowsMergeByName) {
  MetricsSnapshot a;
  a.serve_tenants.push_back({"alpha", 5, 4, 1, 0, 4, 1, 0});
  a.serve_tenants.push_back({"beta", 2, 2, 0, 0, 2, 0, 0});
  MetricsSnapshot b;
  b.serve_tenants.push_back({"beta", 3, 1, 2, 1, 1, 0, 1});
  b.serve_tenants.push_back({"gamma", 1, 1, 0, 0, 1, 0, 0});
  a += b;
  ASSERT_EQ(a.serve_tenants.size(), 3u);
  EXPECT_EQ(a.serve_tenants[0].tenant, "alpha");
  EXPECT_EQ(a.serve_tenants[1].tenant, "beta");
  EXPECT_EQ(a.serve_tenants[1].submitted, 5u);
  EXPECT_EQ(a.serve_tenants[1].rejected, 2u);
  EXPECT_EQ(a.serve_tenants[1].shed, 1u);
  EXPECT_EQ(a.serve_tenants[1].deadline_misses, 1u);
  EXPECT_EQ(a.serve_tenants[2].tenant, "gamma");
}

TEST(Exporters, ServeMetricsTableAndJsonGolden) {
  MetricsSnapshot m;
  m.jobs = 2;
  m.counters.serve_submitted = 3;
  m.counters.serve_admitted = 2;
  m.counters.serve_rejected = 1;
  m.counters.serve_queue_depth_peak = 2;
  m.serve_tenants.push_back({"alpha", 2, 2, 0, 0, 2, 1, 0});
  m.serve_tenants.push_back({"beta", 1, 0, 1, 0, 0, 0, 0});

  const std::string table = to_table(m);
  EXPECT_NE(table.find("serve: submitted=3 admitted=2 rejected=1"),
            std::string::npos);
  EXPECT_NE(table.find("alpha"), std::string::npos);
  EXPECT_NE(table.find("beta"), std::string::npos);

  const std::string json = to_flat_json(m);
  EXPECT_NE(json.find("\"serve\": {\"submitted\": 3, \"admitted\": 2, "
                      "\"rejected\": 1, \"shed\": 0, \"degraded\": 0, "
                      "\"deadline_misses\": 0, \"queue_depth_peak\": 2}"),
            std::string::npos);
  EXPECT_NE(json.find("\"serve_tenants\": [{\"tenant\": \"alpha\", "
                      "\"submitted\": 2, \"admitted\": 2, \"rejected\": 0, "
                      "\"shed\": 0, \"completed\": 2, \"degraded\": 1, "
                      "\"deadline_misses\": 0}, {\"tenant\": \"beta\", "
                      "\"submitted\": 1, \"admitted\": 0, \"rejected\": 1, "
                      "\"shed\": 0, \"completed\": 0, \"degraded\": 0, "
                      "\"deadline_misses\": 0}]"),
            std::string::npos);
}

TEST(Exporters, SessionTableShowsServeBlockOnlyWhenServing) {
  EXPECT_EQ(to_table(golden_session()).find("serve "), std::string::npos);
  TraceSession s;
  s.begin_span("noop");
  s.counters().serve_submitted.fetch_add(2);
  s.counters().serve_admitted.fetch_add(1);
  const std::string table = to_table(s);
  EXPECT_NE(table.find("serve submitted/admitted/rejected/shed=2/1/0/0"),
            std::string::npos);
}

TEST(Metrics, StageIndexMatchesCanonicalOrder) {
  for (std::size_t i = 0; i < kNumStages; ++i)
    EXPECT_EQ(stage_index(kStageNames[i]), static_cast<int>(i));
  EXPECT_EQ(stage_index("multiply"), -1);
  EXPECT_EQ(stage_index(""), -1);
}

// --- Pipeline integration -------------------------------------------------

TEST(PipelineTracing, RecordsStageSpansMatchingStats) {
  const auto a = gen_uniform_random<double>(400, 400, 7.0, 2.0, 91);
  TraceSession session;
  Config cfg;
  cfg.trace = &session;
  SpgemmStats stats;
  multiply(a, a, cfg, &stats);

  const auto totals = sim_stage_totals(session.spans());
  double span_sim = 0.0;
  for (std::size_t i = 0; i < kNumStages; ++i) {
    span_sim += totals[i];
    EXPECT_NEAR(totals[i], stats.stage_time(kStageNames[i]), 1e-12)
        << kStageNames[i];
  }
  EXPECT_NEAR(span_sim, stats.sim_time_s, 1e-12);

  const CountersSnapshot c = session.counters_snapshot();
  EXPECT_EQ(c.esc_iterations, stats.esc_iterations);
  EXPECT_EQ(c.chunks_written, stats.chunks_created);
  EXPECT_EQ(c.long_row_chunks, stats.long_row_chunks);
  EXPECT_EQ(c.restarts, static_cast<std::uint64_t>(stats.restarts));
  EXPECT_EQ(c.pool_capacity_bytes, stats.pool_bytes);
  EXPECT_EQ(c.pool_used_bytes, stats.pool_used_bytes);
  EXPECT_EQ(c.pool_estimate_bytes, stats.pool_estimate_bytes);
  EXPECT_GT(c.pool_estimate_bytes, 0u);  // cold runs record their estimate
  EXPECT_GT(c.blocks_executed, 0u);  // scheduler block attribution
  EXPECT_GE(c.block_time_ns_max, 1u);
  EXPECT_GE(c.block_time_ns_sum, c.block_time_ns_max);
}

TEST(PipelineTracing, DetailModeAddsBlockLevelSpans) {
  const auto a = gen_uniform_random<double>(300, 300, 6.0, 2.0, 92);
  TraceSession coarse;
  Config cfg;
  cfg.trace = &coarse;
  multiply(a, a, cfg);

  TraceSession fine;
  fine.set_detail(true);
  cfg.trace = &fine;
  multiply(a, a, cfg);

  auto count = [](const TraceSession& s, const std::string& name) {
    std::size_t n = 0;
    for (const auto& sp : s.spans())
      if (sp.name == name) ++n;
    return n;
  };
  EXPECT_EQ(count(coarse, "esc.iteration"), 0u);
  EXPECT_GT(count(fine, "esc.iteration"), 0u);
}

TEST(PipelineTracing, DisabledTracingHasZeroSideEffects) {
  // The overhead policy's observable half: running with a session attached
  // changes neither the result bits nor any SpgemmStats field.
  const auto a = gen_powerlaw<double>(400, 400, 6.0, 1.6, 150, 93);
  Config plain;
  SpgemmStats without;
  const auto c1 = multiply(a, a, plain, &without);

  TraceSession session;
  Config traced = plain;
  traced.trace = &session;
  SpgemmStats with;
  const auto c2 = multiply(a, a, traced, &with);

  EXPECT_TRUE(c1.equals_exact(c2));
  EXPECT_EQ(without.sim_time_s, with.sim_time_s);
  EXPECT_EQ(without.restarts, with.restarts);
  EXPECT_EQ(without.pool_bytes, with.pool_bytes);
  EXPECT_EQ(without.pool_used_bytes, with.pool_used_bytes);
  EXPECT_EQ(without.pool_estimate_bytes, with.pool_estimate_bytes);
  EXPECT_EQ(without.chunks_created, with.chunks_created);
  EXPECT_EQ(without.esc_iterations, with.esc_iterations);
  EXPECT_EQ(without.merged_rows, with.merged_rows);
  ASSERT_EQ(without.stage_times_s.size(), with.stage_times_s.size());
  for (std::size_t i = 0; i < with.stage_times_s.size(); ++i) {
    EXPECT_EQ(without.stage_times_s[i].first, with.stage_times_s[i].first);
    EXPECT_EQ(without.stage_times_s[i].second, with.stage_times_s[i].second);
  }
  EXPECT_GT(session.span_count(), 0u);  // the session did record something
}

TEST(PipelineTracing, SpgemmStatsConvertToMetricsSnapshot) {
  const auto a = gen_uniform_random<float>(300, 300, 5.0, 1.0, 94);
  SpgemmStats stats;
  multiply(a, a, Config{}, &stats);
  const trace::MetricsSnapshot m = to_metrics_snapshot(stats);
  EXPECT_EQ(m.jobs, 1u);
  EXPECT_DOUBLE_EQ(m.sim_time_s, stats.sim_time_s);
  EXPECT_EQ(m.chunks_created, stats.chunks_created);
  EXPECT_EQ(m.pool_bytes, stats.pool_bytes);
  double stage_sum = 0.0;
  for (double t : m.stage_sim_time_s) stage_sum += t;
  EXPECT_NEAR(stage_sum, stats.sim_time_s, 1e-12);
}

}  // namespace
}  // namespace acs::trace
