file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_breakdown.dir/bench_fig7_breakdown.cpp.o"
  "CMakeFiles/bench_fig7_breakdown.dir/bench_fig7_breakdown.cpp.o.d"
  "bench_fig7_breakdown"
  "bench_fig7_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
