/// Direct unit tests of one ESC block's execution (run_esc_block), below
/// the pipeline level: chunk layout, carrying, long-row pointer chunks,
/// restart protocol.

#include "core/esc_block.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <utility>

#include "core/acspgemm.hpp"
#include "fault/policies.hpp"
#include "matrix/coo.hpp"
#include "matrix/generators.hpp"

namespace acs {
namespace {

Config tiny_config() {
  Config cfg;
  cfg.threads = 16;
  cfg.nnz_per_block = 16;
  cfg.elements_per_thread = 4;  // capacity 64
  cfg.retain_per_thread = 2;    // retain up to 32
  return cfg;
}

std::vector<index_t> glb(const Csr<double>& a, const Config& cfg) {
  const auto blocks =
      static_cast<std::size_t>(divup<offset_t>(a.nnz(), cfg.nnz_per_block));
  std::vector<index_t> starts(blocks, 0);
  for (index_t row = 0; row < a.rows; ++row) {
    const offset_t lo = a.row_ptr[usize(row)], hi = a.row_ptr[usize(row) + 1];
    if (lo == hi) continue;
    for (offset_t blk = divup<offset_t>(lo, cfg.nnz_per_block);
         blk <= (hi - 1) / cfg.nnz_per_block; ++blk)
      starts[static_cast<std::size_t>(blk)] = row;
  }
  return starts;
}

TEST(EscBlock, SingleBlockProducesSortedCompleteChunks) {
  const auto cfg = tiny_config();
  const auto a = gen_uniform_random<double>(8, 8, 2.0, 0.0, 400);
  const auto starts = glb(a, cfg);
  ChunkPool pool(1 << 20);
  BlockState state;
  const auto res = run_esc_block<double>(a, a, starts, 0, cfg, pool, state);
  EXPECT_TRUE(state.finished);
  EXPECT_FALSE(res.needs_restart);
  EXPECT_GE(res.iterations, 1);
  ASSERT_FALSE(res.chunks.empty());
  for (const auto& chunk : res.chunks) {
    ASSERT_EQ(chunk.row_offsets.size(), chunk.rows.size() + 1);
    for (std::size_t r = 0; r + 1 < chunk.rows.size(); ++r)
      EXPECT_LT(chunk.rows[r], chunk.rows[r + 1]);
    for (std::size_t r = 0; r < chunk.rows.size(); ++r)
      for (index_t k = chunk.row_offsets[r] + 1; k < chunk.row_offsets[r + 1];
           ++k)
        EXPECT_LT(chunk.cols[static_cast<std::size_t>(k - 1)],
                  chunk.cols[static_cast<std::size_t>(k)]);
  }
}

TEST(EscBlock, ChunkCountersAreSequential) {
  const auto cfg = tiny_config();
  const auto a = gen_uniform_random<double>(16, 16, 4.0, 1.0, 401);
  ChunkPool pool(1 << 20);
  BlockState state;
  const auto res =
      run_esc_block<double>(a, a, glb(a, cfg), 0, cfg, pool, state);
  for (std::size_t i = 0; i < res.chunks.size(); ++i) {
    EXPECT_EQ(res.chunks[i].order.block, 0u);
    EXPECT_EQ(res.chunks[i].order.counter, static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(state.chunk_counter, res.chunks.size());
}

TEST(EscBlock, LongRowsBecomePointerChunks) {
  Config cfg = tiny_config();
  cfg.long_row_threshold = 8;
  // B row 0 has 12 entries (>= threshold); A references it twice.
  Coo<double> acoo, bcoo;
  acoo.rows = acoo.cols = 16;
  acoo.push(0, 0, 2.0);
  acoo.push(1, 0, 3.0);
  acoo.push(1, 2, 1.0);
  bcoo.rows = bcoo.cols = 16;
  for (index_t c = 0; c < 12; ++c) bcoo.push(0, c, 1.0);
  bcoo.push(2, 5, 4.0);
  const auto a = acoo.to_csr();
  const auto b = bcoo.to_csr();

  ChunkPool pool(1 << 20);
  BlockState state;
  const auto res = run_esc_block<double>(a, b, glb(a, cfg), 0, cfg, pool, state);
  int pointer_chunks = 0;
  for (const auto& chunk : res.chunks) {
    if (chunk.is_long_row) {
      ++pointer_chunks;
      EXPECT_EQ(chunk.b_row, 0);
      EXPECT_EQ(chunk.long_len, 12);
      EXPECT_EQ(chunk.byte_size(), 48u);
    }
  }
  EXPECT_EQ(pointer_chunks, 2);
  EXPECT_EQ(state.long_rows_done, 2);
}

TEST(EscBlock, RestartResumesWithoutDuplicatingChunks) {
  const auto cfg = tiny_config();
  const auto a = gen_uniform_random<double>(32, 32, 6.0, 1.0, 402);
  const auto starts = glb(a, cfg);

  // Reference run with an ample pool.
  ChunkPool big(1 << 20);
  BlockState ref_state;
  const auto ref = run_esc_block<double>(a, a, starts, 0, cfg, big, ref_state);

  // Constrained run: pool that fits only part of the output, grown until
  // the block completes — the pipeline's restart loop in miniature.
  ChunkPool small(256);
  BlockState state;
  std::vector<Chunk<double>> chunks;
  int restarts = 0;
  for (;;) {
    auto res = run_esc_block<double>(a, a, starts, 0, cfg, small, state);
    for (auto& c : res.chunks) chunks.push_back(std::move(c));
    if (!res.needs_restart) break;
    ++restarts;
    small.grow(256);
    ASSERT_LT(restarts, 200);
  }
  EXPECT_GT(restarts, 0);

  // Same total entries per row as the unconstrained run.
  std::vector<index_t> ref_counts(32, 0), got_counts(32, 0);
  for (const auto& c : ref.chunks)
    for (std::size_t r = 0; r < c.rows.size(); ++r)
      ref_counts[static_cast<std::size_t>(c.rows[r])] +=
          c.row_offsets[r + 1] - c.row_offsets[r];
  for (const auto& c : chunks)
    for (std::size_t r = 0; r < c.rows.size(); ++r)
      got_counts[static_cast<std::size_t>(c.rows[r])] +=
          c.row_offsets[r + 1] - c.row_offsets[r];
  EXPECT_EQ(ref_counts, got_counts);
}

TEST(EscBlock, InjectedDenialAtEveryAllocationPreservesOutput) {
  // Pins the `committed` invariant (DESIGN.md §8, ISSUE 3 satellite): the
  // block advances `state.committed` exactly once per chunk write, to the
  // consumed count minus any carried row's sources. Denying each allocation
  // attempt in turn forces a restart at every commit boundary — including
  // right between a chunk write and the carry handling, the spot where the
  // old duplicated `committed` assignment lived — and replay must reproduce
  // the clean run's per-(row, col) partial sums bit-for-bit.
  Config cfg = tiny_config();
  cfg.elements_per_thread = 2;  // capacity 32: many local iterations
  cfg.retain_per_thread = 1;
  // Dense rows so block 0's 16 sources expand across several iterations,
  // giving the clean run a handful of chunk allocations to deny in turn.
  const auto a = gen_uniform_random<double>(64, 64, 12.0, 2.0, 404);
  const auto starts = glb(a, cfg);

  ChunkPool clean_pool(1 << 20);
  fault::CountingPolicy counting;
  clean_pool.set_policy(&counting);
  BlockState clean_state;
  const auto ref =
      run_esc_block<double>(a, a, starts, 0, cfg, clean_pool, clean_state);
  ASSERT_TRUE(clean_state.finished);
  ASSERT_FALSE(ref.needs_restart);
  const std::uint64_t points = counting.attempts();
  ASSERT_GE(points, 3u);  // several commit boundaries to inject between

  // Accumulating partials in chunk order reproduces the global product-order
  // sum, so equal maps mean bit-identical values, not just equal structure.
  const auto sums_of = [](const std::vector<Chunk<double>>& chunks) {
    std::map<std::pair<index_t, index_t>, double> sums;
    for (const auto& c : chunks)
      for (std::size_t r = 0; r < c.rows.size(); ++r)
        for (index_t k = c.row_offsets[r]; k < c.row_offsets[r + 1]; ++k)
          sums[{c.rows[r], c.cols[static_cast<std::size_t>(k)]}] +=
              c.vals[static_cast<std::size_t>(k)];
    return sums;
  };
  const auto ref_sums = sums_of(ref.chunks);

  for (std::uint64_t i = 0; i < points; ++i) {
    ChunkPool pool(1 << 20);  // ample: the only denial is the injected one
    fault::DenyNthPolicy deny(i);
    pool.set_policy(&deny);
    BlockState state;
    std::vector<Chunk<double>> chunks;
    int restarts = 0;
    for (;;) {
      auto res = run_esc_block<double>(a, a, starts, 0, cfg, pool, state);
      for (auto& c : res.chunks) chunks.push_back(std::move(c));
      if (!res.needs_restart) break;
      ++restarts;
      ASSERT_LT(restarts, 10) << "denied attempt " << i;
    }
    EXPECT_EQ(restarts, 1) << "denied attempt " << i;
    EXPECT_TRUE(state.finished) << "denied attempt " << i;
    EXPECT_EQ(sums_of(chunks), ref_sums) << "denied attempt " << i;
  }
}

TEST(EscBlock, EmptyBlockFinishesImmediately) {
  const auto cfg = tiny_config();
  Csr<double> a;
  a.rows = a.cols = 4;
  a.row_ptr.assign(5, 0);
  ChunkPool pool(1 << 20);
  BlockState state;
  const auto res = run_esc_block<double>(a, a, {}, 0, cfg, pool, state);
  EXPECT_TRUE(state.finished);
  EXPECT_TRUE(res.chunks.empty());
}

TEST(EscBlock, RetainZeroWritesEveryIteration) {
  Config cfg = tiny_config();
  cfg.retain_per_thread = 0;
  const auto a = gen_uniform_random<double>(32, 32, 6.0, 1.0, 403);
  ChunkPool pool(1 << 20);
  BlockState state;
  const auto res =
      run_esc_block<double>(a, a, glb(a, cfg), 0, cfg, pool, state);
  // Without retention every iteration flushes: at least one chunk per
  // iteration.
  EXPECT_GE(static_cast<int>(res.chunks.size()), res.iterations);
}

}  // namespace
}  // namespace acs
