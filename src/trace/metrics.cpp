#include "trace/metrics.hpp"

#include <algorithm>

namespace acs::trace {

int stage_index(std::string_view name) {
  for (std::size_t i = 0; i < kNumStages; ++i)
    if (name == kStageNames[i]) return static_cast<int>(i);
  return -1;
}

MetricsSnapshot& MetricsSnapshot::operator+=(const MetricsSnapshot& o) {
  jobs += o.jobs;
  wall_time_s += o.wall_time_s;
  sim_time_s += o.sim_time_s;
  for (std::size_t i = 0; i < kNumStages; ++i)
    stage_sim_time_s[i] += o.stage_sim_time_s[i];
  restarts += o.restarts;
  pool_denials += o.pool_denials;
  esc_iterations += o.esc_iterations;
  chunks_created += o.chunks_created;
  long_row_chunks += o.long_row_chunks;
  merged_rows += o.merged_rows;
  pool_bytes = std::max(pool_bytes, o.pool_bytes);
  pool_used_bytes = std::max(pool_used_bytes, o.pool_used_bytes);
  pool_estimate_bytes = std::max(pool_estimate_bytes, o.pool_estimate_bytes);
  counters += o.counters;
  for (const TenantServeCounters& row : o.serve_tenants) {
    auto it = std::find_if(
        serve_tenants.begin(), serve_tenants.end(),
        [&](const TenantServeCounters& t) { return t.tenant == row.tenant; });
    if (it == serve_tenants.end()) {
      serve_tenants.push_back(row);
      continue;
    }
    it->submitted += row.submitted;
    it->admitted += row.admitted;
    it->rejected += row.rejected;
    it->shed += row.shed;
    it->completed += row.completed;
    it->degraded += row.degraded;
    it->deadline_misses += row.deadline_misses;
  }
  return *this;
}

}  // namespace acs::trace
