#pragma once
/// \file coo.hpp
/// Coordinate-format sparse matrix, used as the staging format for Matrix
/// Market I/O and for generator output before conversion to CSR.

#include <vector>

#include "matrix/csr.hpp"
#include "matrix/types.hpp"

namespace acs {

/// COO triplet matrix. Entries may be unsorted and contain duplicates until
/// `sort_and_combine()` is called.
template <class T>
struct Coo {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> row_idx;
  std::vector<index_t> col_idx;
  std::vector<T> values;

  [[nodiscard]] offset_t nnz() const {
    return static_cast<offset_t>(row_idx.size());
  }

  void push(index_t r, index_t c, T v) {
    row_idx.push_back(r);
    col_idx.push_back(c);
    values.push_back(v);
  }

  /// Sort entries by (row, col) and sum duplicates. Summation is performed in
  /// ascending insertion order within each coordinate, which keeps the
  /// conversion deterministic.
  void sort_and_combine();

  /// Convert to CSR. Calls `sort_and_combine()` internally.
  [[nodiscard]] Csr<T> to_csr();

  /// Expand a CSR matrix back into (sorted, duplicate-free) triplets.
  static Coo from_csr(const Csr<T>& csr);
};

extern template struct Coo<float>;
extern template struct Coo<double>;

}  // namespace acs
