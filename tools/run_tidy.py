#!/usr/bin/env python3
"""Run clang-tidy with the repo's .clang-tidy profile over every library
translation unit listed in compile_commands.json.

Usage: tools/run_tidy.py [--build-dir build] [--jobs N] [--strict]

Needs a build directory with compile_commands.json (cmake exports one by
default in this repo). When clang-tidy is not installed the driver prints a
notice and exits 0 so local workflows keep working in minimal containers —
pass --strict (CI does) to turn a missing tool into a failure.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

CANDIDATES = ("clang-tidy", "clang-tidy-18", "clang-tidy-17", "clang-tidy-16",
              "clang-tidy-15", "clang-tidy-14")


def find_tool() -> str | None:
    for name in CANDIDATES:
        if shutil.which(name):
            return name
    return None


def library_sources(build_dir: Path) -> list[Path]:
    db = build_dir / "compile_commands.json"
    if not db.exists():
        print(f"run_tidy: error: {db} not found — configure with "
              "`cmake -B build -S .` first (compile commands are exported "
              "by default)", file=sys.stderr)
        sys.exit(2)
    entries = json.loads(db.read_text())
    src_root = REPO / "src"
    files = sorted({Path(e["file"]) for e in entries
                    if Path(e["file"]).is_relative_to(src_root)})
    if not files:
        print("run_tidy: error: no src/ translation units in the database",
              file=sys.stderr)
        sys.exit(2)
    return files


def tidy_one(args: tuple[str, Path, Path]) -> tuple[Path, int, str]:
    tool, build_dir, src = args
    proc = subprocess.run(
        [tool, "-p", str(build_dir), "--quiet", str(src)],
        capture_output=True, text=True)
    return src, proc.returncode, proc.stdout + proc.stderr


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(prog="run_tidy.py")
    ap.add_argument("--build-dir", type=Path, default=REPO / "build")
    ap.add_argument("--jobs", type=int,
                    default=max(1, multiprocessing.cpu_count() - 1))
    ap.add_argument("--strict", action="store_true",
                    help="fail (exit 3) when clang-tidy is not installed")
    args = ap.parse_args(argv)

    tool = find_tool()
    if tool is None:
        msg = "run_tidy: clang-tidy not found"
        if args.strict:
            print(f"{msg} (--strict)", file=sys.stderr)
            return 3
        print(f"{msg}; skipping (install clang-tidy or run in CI's lint "
              "job)", file=sys.stderr)
        return 0

    sources = library_sources(args.build_dir.resolve())
    failures = 0
    with multiprocessing.Pool(args.jobs) as pool:
        work = [(tool, args.build_dir.resolve(), s) for s in sources]
        for src, code, output in pool.imap_unordered(tidy_one, work):
            rel = src.relative_to(REPO)
            if code != 0:
                failures += 1
                print(f"--- {rel}")
                print(output)
            else:
                print(f"ok  {rel}")
    print(f"run_tidy: {len(sources) - failures}/{len(sources)} clean "
          f"[{tool}]", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
