#pragma once
/// \file scratchpad.hpp
/// Per-block scratchpad (shared memory) arena. The AC-ESC stage's central
/// claim is that all temporary data fits in on-chip memory; this arena
/// enforces that claim at runtime — allocations beyond the configured
/// capacity throw, so any configuration that would overflow real shared
/// memory fails loudly in the simulator too.

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace acs::sim {

class Scratchpad {
 public:
  explicit Scratchpad(std::size_t capacity_bytes)
      : capacity_(capacity_bytes), storage_(capacity_bytes) {}

  /// Allocate `count` default-initialized elements of type T. Alignment is
  /// handled by padding to alignof(T). Throws std::length_error on overflow.
  template <class T>
  std::span<T> allocate(std::size_t count) {
    const std::size_t align = alignof(T);
    std::size_t offset = (used_ + align - 1) / align * align;
    const std::size_t bytes = count * sizeof(T);
    if (offset + bytes > capacity_)
      throw std::length_error("scratchpad overflow: request " +
                              std::to_string(bytes) + "B at offset " +
                              std::to_string(offset) + " of " +
                              std::to_string(capacity_) + "B");
    T* ptr = reinterpret_cast<T*>(storage_.data() + offset);
    for (std::size_t i = 0; i < count; ++i) ptr[i] = T{};
    used_ = offset + bytes;
    high_water_ = std::max(high_water_, used_);
    return std::span<T>(ptr, count);
  }

  /// Release everything (block barrier + reuse between pipeline phases).
  void reset() { used_ = 0; }

  [[nodiscard]] std::size_t used() const { return used_; }
  [[nodiscard]] std::size_t high_water() const { return high_water_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
  std::vector<std::byte> storage_;
};

}  // namespace acs::sim
