
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matrix/binary_io.cpp" "src/matrix/CMakeFiles/acs_matrix.dir/binary_io.cpp.o" "gcc" "src/matrix/CMakeFiles/acs_matrix.dir/binary_io.cpp.o.d"
  "/root/repo/src/matrix/coo.cpp" "src/matrix/CMakeFiles/acs_matrix.dir/coo.cpp.o" "gcc" "src/matrix/CMakeFiles/acs_matrix.dir/coo.cpp.o.d"
  "/root/repo/src/matrix/csr.cpp" "src/matrix/CMakeFiles/acs_matrix.dir/csr.cpp.o" "gcc" "src/matrix/CMakeFiles/acs_matrix.dir/csr.cpp.o.d"
  "/root/repo/src/matrix/generators.cpp" "src/matrix/CMakeFiles/acs_matrix.dir/generators.cpp.o" "gcc" "src/matrix/CMakeFiles/acs_matrix.dir/generators.cpp.o.d"
  "/root/repo/src/matrix/mmio.cpp" "src/matrix/CMakeFiles/acs_matrix.dir/mmio.cpp.o" "gcc" "src/matrix/CMakeFiles/acs_matrix.dir/mmio.cpp.o.d"
  "/root/repo/src/matrix/ops.cpp" "src/matrix/CMakeFiles/acs_matrix.dir/ops.cpp.o" "gcc" "src/matrix/CMakeFiles/acs_matrix.dir/ops.cpp.o.d"
  "/root/repo/src/matrix/stats.cpp" "src/matrix/CMakeFiles/acs_matrix.dir/stats.cpp.o" "gcc" "src/matrix/CMakeFiles/acs_matrix.dir/stats.cpp.o.d"
  "/root/repo/src/matrix/symbolic.cpp" "src/matrix/CMakeFiles/acs_matrix.dir/symbolic.cpp.o" "gcc" "src/matrix/CMakeFiles/acs_matrix.dir/symbolic.cpp.o.d"
  "/root/repo/src/matrix/transpose.cpp" "src/matrix/CMakeFiles/acs_matrix.dir/transpose.cpp.o" "gcc" "src/matrix/CMakeFiles/acs_matrix.dir/transpose.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
