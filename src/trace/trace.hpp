#pragma once
/// \file trace.hpp
/// Stage-level observability for the SpGEMM pipeline: a low-overhead,
/// thread-safe tracing and metrics layer. A `TraceSession` records a span
/// tree (one span per pipeline stage / kernel launch, wall-clock start/end
/// plus attributed simulated time) and a set of atomic `Counters` (chunk
/// pool traffic, restarts, ESC iteration histogram, rows per merge case,
/// scheduler block attribution). Producers hook in through the `ACS_TRACE_*`
/// macros, which compile to a single null-pointer check when tracing is
/// disabled at runtime and to nothing at all when `ACS_TRACE_DISABLED` is
/// defined — the overhead policy DESIGN.md §7 commits to.
///
/// Sessions are safe to share between threads: spans keep per-thread parent
/// stacks (a worker's spans nest under that worker's open spans, never under
/// another thread's), counters are relaxed atomics, and snapshot accessors
/// copy under the session mutex.
///
/// Example:
/// \code
///   acs::trace::TraceSession session;
///   cfg.trace = &session;
///   acs::multiply(a, b, cfg, &stats);
///   std::cout << acs::trace::to_table(session);
/// \endcode

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/thread_annotations.hpp"

namespace acs::trace {

using SpanId = std::uint32_t;
inline constexpr SpanId kNoSpan = 0xffffffffu;

/// ESC iteration histogram buckets: 1, 2, ..., kEscHistBuckets-1, and a
/// final bucket for everything beyond.
inline constexpr std::size_t kEscHistBuckets = 8;

/// Merge-case indices for `Counters::merge_case_rows`.
enum MergeCase : std::size_t { kMultiMerge = 0, kPathMerge = 1, kSearchMerge = 2 };

/// Plain (non-atomic) copy of a session's counters; aggregatable.
struct CountersSnapshot {
  // Chunk pool.
  std::uint64_t pool_alloc_bytes = 0;   ///< bytes successfully allocated
  std::uint64_t pool_denials = 0;       ///< failed allocations (block-level)
  std::uint64_t pool_capacity_bytes = 0;  ///< high-water pool capacity
  std::uint64_t pool_used_bytes = 0;      ///< high-water pool usage
  /// High-water *initial* pool sizing (plan or estimator output) — compare
  /// against pool_used_bytes/pool_capacity_bytes to observe estimate error.
  std::uint64_t pool_estimate_bytes = 0;
  std::uint64_t restarts = 0;             ///< host restart rounds
  // ESC.
  std::uint64_t esc_blocks = 0;       ///< ESC block executions (incl. relaunches)
  std::uint64_t esc_iterations = 0;   ///< local ESC iterations, summed
  std::array<std::uint64_t, kEscHistBuckets> esc_iteration_hist{};
  // Chunks.
  std::uint64_t chunks_written = 0;
  std::uint64_t long_row_chunks = 0;
  // Merge.
  std::array<std::uint64_t, 3> merge_case_rows{};  ///< rows per Multi/Path/Search
  std::uint64_t merge_windows = 0;                 ///< merge windows written
  // Scheduler block attribution.
  std::uint64_t blocks_executed = 0;
  std::uint64_t block_time_ns_sum = 0;
  std::uint64_t block_time_ns_max = 0;
  // Serving layer (src/serve): admission and dispatch traffic.
  std::uint64_t serve_submitted = 0;
  std::uint64_t serve_admitted = 0;
  std::uint64_t serve_rejected = 0;  ///< deadline + quota + queue-full refusals
  std::uint64_t serve_shed = 0;      ///< admitted, dropped under memory pressure
  std::uint64_t serve_degraded = 0;  ///< admitted on the untuned default plan
  std::uint64_t serve_deadline_misses = 0;  ///< virtual finish past deadline
  std::uint64_t serve_queue_depth_peak = 0;  ///< gauge: queued + dispatched
  // Tuning lifecycle (src/tune + runtime engine cold path).
  std::uint64_t cold_tunes = 0;   ///< predictor-only first-sight tunes
  std::uint64_t bg_tunes = 0;     ///< background re-tunes completed
  std::uint64_t cache_loads = 0;  ///< plans seeded from the persisted cache

  CountersSnapshot& operator+=(const CountersSnapshot& o);
};

/// Live counter set: relaxed atomics, safe to bump from any thread. Gauges
/// (`*_capacity_bytes`, `*_used_bytes`, `pool_estimate_bytes`,
/// `block_time_ns_max`, `serve_queue_depth_peak`) keep the maximum observed
/// value; everything else accumulates.
struct Counters {
  std::atomic<std::uint64_t> pool_alloc_bytes{0};
  std::atomic<std::uint64_t> pool_denials{0};
  std::atomic<std::uint64_t> pool_capacity_bytes{0};
  std::atomic<std::uint64_t> pool_used_bytes{0};
  std::atomic<std::uint64_t> pool_estimate_bytes{0};
  std::atomic<std::uint64_t> restarts{0};
  std::atomic<std::uint64_t> esc_blocks{0};
  std::atomic<std::uint64_t> esc_iterations{0};
  std::array<std::atomic<std::uint64_t>, kEscHistBuckets> esc_iteration_hist{};
  std::atomic<std::uint64_t> chunks_written{0};
  std::atomic<std::uint64_t> long_row_chunks{0};
  std::array<std::atomic<std::uint64_t>, 3> merge_case_rows{};
  std::atomic<std::uint64_t> merge_windows{0};
  std::atomic<std::uint64_t> blocks_executed{0};
  std::atomic<std::uint64_t> block_time_ns_sum{0};
  std::atomic<std::uint64_t> block_time_ns_max{0};
  std::atomic<std::uint64_t> serve_submitted{0};
  std::atomic<std::uint64_t> serve_admitted{0};
  std::atomic<std::uint64_t> serve_rejected{0};
  std::atomic<std::uint64_t> serve_shed{0};
  std::atomic<std::uint64_t> serve_degraded{0};
  std::atomic<std::uint64_t> serve_deadline_misses{0};
  std::atomic<std::uint64_t> serve_queue_depth_peak{0};
  std::atomic<std::uint64_t> cold_tunes{0};
  std::atomic<std::uint64_t> bg_tunes{0};
  std::atomic<std::uint64_t> cache_loads{0};

  /// Record one ESC block execution of `iterations` local iterations.
  void record_esc_block(std::uint64_t iterations) {
    // mo: monotonic trace counters; snapshot() reads them post-join.
    esc_blocks.fetch_add(1, std::memory_order_relaxed);
    // mo: same as above.
    esc_iterations.fetch_add(iterations, std::memory_order_relaxed);
    const std::size_t bucket =
        iterations == 0 ? 0
                        : (iterations < kEscHistBuckets ? iterations
                                                        : kEscHistBuckets - 1);
    // mo: same as above.
    esc_iteration_hist[bucket].fetch_add(1, std::memory_order_relaxed);
  }

  /// Raise a maximum gauge to at least `value`.
  static void raise(std::atomic<std::uint64_t>& gauge, std::uint64_t value) {
    // mo: CAS seed; a stale read just costs one extra loop round.
    std::uint64_t cur = gauge.load(std::memory_order_relaxed);
    while (cur < value) {
      // mo: max-gauge CAS — its atomicity alone keeps the gauge monotone;
      // mo: no other data is published through it.
      if (gauge.compare_exchange_weak(cur, value, std::memory_order_relaxed))
        break;
    }
  }

  [[nodiscard]] CountersSnapshot snapshot() const;
};

/// One recorded span. Wall times are seconds relative to the session epoch;
/// `sim_time_s` is the simulated kernel time attributed to the span (0 for
/// pure host-side spans).
struct SpanRecord {
  std::string name;
  SpanId parent = kNoSpan;
  std::uint32_t thread = 0;  ///< dense per-session thread slot
  double start_s = 0.0;
  double end_s = 0.0;
  double sim_time_s = 0.0;
};

class TraceSession {
 public:
  TraceSession() : epoch_(std::chrono::steady_clock::now()) {}

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Open a span on the calling thread; its parent is the thread's innermost
  /// open span. Returns the id to pass to `end_span`.
  SpanId begin_span(std::string_view name) ACS_EXCLUDES(m_);

  /// Close span `id`, attributing `sim_time_s` of simulated time to it.
  void end_span(SpanId id, double sim_time_s = 0.0) ACS_EXCLUDES(m_);

  /// Attribute additional simulated time to an open or closed span.
  void add_sim_time(SpanId id, double sim_time_s) ACS_EXCLUDES(m_);

  /// Detail mode: producers additionally record fine-grained block-level
  /// spans (per ESC iteration, per merge window). Off by default — stage
  /// spans and counters are cheap; block spans are not.
  // mo: advisory flag — flipping detail mid-run only changes which spans
  // mo: the producers record, never data integrity.
  void set_detail(bool on) { detail_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool detail() const {
    return detail_.load(std::memory_order_relaxed);  // mo: see set_detail
  }

  [[nodiscard]] Counters& counters() { return counters_; }
  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] CountersSnapshot counters_snapshot() const {
    return counters_.snapshot();
  }

  /// Copy of all spans recorded so far (closed or still open).
  [[nodiscard]] std::vector<SpanRecord> spans() const ACS_EXCLUDES(m_);
  [[nodiscard]] std::size_t span_count() const ACS_EXCLUDES(m_);
  /// Seconds since the session was created.
  [[nodiscard]] double elapsed_s() const;

 private:
  [[nodiscard]] double now_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

  struct ThreadState {
    std::uint32_t slot = 0;
    std::vector<SpanId> stack;
  };

  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> detail_{false};
  Counters counters_;  ///< lock-free: relaxed atomics, no mutex needed
  mutable acs::Mutex m_;
  std::vector<SpanRecord> spans_ ACS_GUARDED_BY(m_);
  std::unordered_map<std::thread::id, ThreadState> threads_ ACS_GUARDED_BY(m_);
};

/// RAII span: opens on construction (no-op for a null session), closes on
/// destruction with the accumulated simulated time.
class ScopedSpan {
 public:
  ScopedSpan(TraceSession* session, std::string_view name) : session_(session) {
    if (session_) id_ = session_->begin_span(name);
  }
  ~ScopedSpan() {
    if (session_) session_->end_span(id_, sim_time_s_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attribute simulated kernel time to this span (added on close).
  void add_sim_time(double s) { sim_time_s_ += s; }
  [[nodiscard]] TraceSession* session() const { return session_; }
  [[nodiscard]] SpanId id() const { return id_; }

 private:
  TraceSession* session_;
  SpanId id_ = kNoSpan;
  double sim_time_s_ = 0.0;
};

}  // namespace acs::trace

// --- Producer hook macros ---------------------------------------------------
// `session` is always a (possibly null) `acs::trace::TraceSession*`; every
// macro is a no-op on null. Define ACS_TRACE_DISABLED to compile the hooks
// out entirely (the spans/counters then cost literally nothing).

#define ACS_TRACE_CONCAT_INNER(a, b) a##b
#define ACS_TRACE_CONCAT(a, b) ACS_TRACE_CONCAT_INNER(a, b)

#ifndef ACS_TRACE_DISABLED

/// Named RAII span usable as a local variable (attach sim time to it).
#define ACS_TRACE_SPAN(var, session, name) \
  ::acs::trace::ScopedSpan var((session), (name))

/// Anonymous scope span.
#define ACS_TRACE_SCOPE(session, name) \
  ACS_TRACE_SPAN(ACS_TRACE_CONCAT(acs_trace_scope_, __LINE__), session, name)

/// counters().field += delta.
#define ACS_TRACE_COUNT(session, field, delta)                                \
  do {                                                                        \
    if (::acs::trace::TraceSession* acs_trace_s_ = (session))                 \
      acs_trace_s_->counters().field.fetch_add(                               \
          static_cast<std::uint64_t>(delta),                                  \
          std::memory_order_relaxed); /* mo: trace counter, post-join read */ \
  } while (0)

/// counters().field = max(counters().field, value) — for gauges.
#define ACS_TRACE_GAUGE_MAX(session, field, value)                          \
  do {                                                                      \
    if (::acs::trace::TraceSession* acs_trace_s_ = (session))               \
      ::acs::trace::Counters::raise(acs_trace_s_->counters().field,         \
                                    static_cast<std::uint64_t>(value));     \
  } while (0)

/// Arbitrary statement executed only when tracing is live.
#define ACS_TRACE_HOOK(session, stmt)                                 \
  do {                                                                \
    if (::acs::trace::TraceSession* acs_trace_s_ = (session)) {       \
      ::acs::trace::TraceSession& acs_trace = *acs_trace_s_;          \
      stmt;                                                           \
    }                                                                 \
  } while (0)

#else  // ACS_TRACE_DISABLED

namespace acs::trace {
/// Stand-in for ScopedSpan when tracing is compiled out.
struct NullSpan {
  void add_sim_time(double) {}
};
}  // namespace acs::trace

#define ACS_TRACE_SPAN(var, session, name) \
  ::acs::trace::NullSpan var;              \
  (void)var;                               \
  (void)(session)
#define ACS_TRACE_SCOPE(session, name) (void)(session)
#define ACS_TRACE_COUNT(session, field, delta) (void)(session)
#define ACS_TRACE_GAUGE_MAX(session, field, value) (void)(session)
#define ACS_TRACE_HOOK(session, stmt) (void)(session)

#endif  // ACS_TRACE_DISABLED
