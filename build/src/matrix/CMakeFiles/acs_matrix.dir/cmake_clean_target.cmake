file(REMOVE_RECURSE
  "libacs_matrix.a"
)
