#pragma once
/// \file features.hpp
/// Cheap structural features of a multiplication job C = A·B, the input of
/// the auto-tuner's candidate ranking (tuner.hpp). Everything here is a
/// pure function of the operands' *sparsity structure* — row pointers and
/// column ids, never values — so a feature set (and hence every tuning
/// decision derived from it) applies to all jobs sharing a structure
/// fingerprint (runtime/fingerprint.hpp), and extraction costs one pass
/// over A's row pointer plus a strided sample of A's column ids against
/// B's row lengths. Temporary products are *estimated* from that sample by
/// the shared estimator of src/estimate (window-weighted expected value; a
/// conservative variant charges each window the larger of its bounding
/// samples); the feedback tuning mode later replaces the estimate with the
/// exact measured count (`SpgemmStats::intermediate_products`).

#include <cstddef>
#include <vector>

#include "matrix/csr.hpp"
#include "matrix/types.hpp"

namespace acs::tune {

/// Row-length quantiles of one CSR operand (exact, from the row pointer).
struct RowLengthProfile {
  index_t p50 = 0;
  index_t p90 = 0;
  index_t p99 = 0;
  index_t max = 0;
  double avg = 0.0;
};

struct TuneFeatures {
  index_t rows_a = 0, cols_a = 0;
  index_t rows_b = 0, cols_b = 0;
  offset_t nnz_a = 0, nnz_b = 0;
  RowLengthProfile a_rows;
  RowLengthProfile b_rows;

  /// Estimated temporary products Σ_{(i,k) ∈ A} |B_k| from the strided
  /// sample (each sampled B-row length weighted by the entries of A its
  /// window covers, so a partial final window is charged its true size).
  double est_products = 0.0;
  /// Conservative variant: each sample window charged the larger of its
  /// two bounding samples (used for pool-safety margins, not ranking).
  /// Always ≥ est_products, and clamped below the guaranteed upper bound
  /// of src/estimate, where both estimates are computed.
  double est_products_upper = 0.0;
  /// True when every entry of A was inspected (stride 1 or nnz(A) small):
  /// `est_products` is then exact.
  bool products_exact = false;

  /// B-row lengths seen by the sample, sorted ascending. Lets the ranking
  /// evaluate any long-row threshold without another pass: the products
  /// routed to pointer chunks under threshold t are
  /// stride × Σ {len ∈ sampled_b_lens : len ≥ t}.
  std::vector<index_t> sampled_b_lens;
  /// Entries of A actually sampled (== sampled_b_lens.size()).
  std::size_t sampled = 0;
  /// Effective sampling stride used (≥ 1).
  std::size_t stride = 1;

  /// Sampled products at or above B-row length `t`, scaled by the stride —
  /// the work a long-row threshold of `t` would divert into pointer chunks.
  [[nodiscard]] double products_in_rows_at_least(index_t t) const;
  /// Sampled A entries whose B row is at least `t` long, scaled — the
  /// pointer chunks such a threshold would create.
  [[nodiscard]] double entries_in_rows_at_least(index_t t) const;
};

/// Exact row-length quantiles from a CSR row pointer.
RowLengthProfile row_length_profile(const std::vector<index_t>& row_ptr,
                                    index_t rows);

/// Extract features for C = A·B. `sample_stride` controls the B-length
/// sampling pass: every stride-th non-zero of A is inspected (deterministic,
/// value-independent). Stride is clamped so that at least
/// `min_samples` entries are inspected when A has that many.
template <class T>
TuneFeatures extract_features(const Csr<T>& a, const Csr<T>& b,
                              std::size_t sample_stride = 8,
                              std::size_t min_samples = 512);

extern template TuneFeatures extract_features(const Csr<float>&,
                                              const Csr<float>&, std::size_t,
                                              std::size_t);
extern template TuneFeatures extract_features(const Csr<double>&,
                                              const Csr<double>&, std::size_t,
                                              std::size_t);

}  // namespace acs::tune
