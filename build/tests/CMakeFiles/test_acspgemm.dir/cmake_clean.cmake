file(REMOVE_RECURSE
  "CMakeFiles/test_acspgemm.dir/test_acspgemm.cpp.o"
  "CMakeFiles/test_acspgemm.dir/test_acspgemm.cpp.o.d"
  "test_acspgemm"
  "test_acspgemm.pdb"
  "test_acspgemm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_acspgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
