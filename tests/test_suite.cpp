#include "suite/suite.hpp"

#include <gtest/gtest.h>

#include <set>

#include "matrix/stats.hpp"
#include "suite/registry.hpp"

namespace acs {
namespace {

TEST(Suite, ShowcaseHasSixteenEntriesInPaperOrder) {
  const auto& s = showcase_suite();
  ASSERT_EQ(s.size(), 16u);
  EXPECT_EQ(s.front().name, "language-like");
  EXPECT_EQ(s.back().name, "TSC_OPF-like");
}

TEST(Suite, AllEntriesBuildValidMatrices) {
  for (const auto& entry : full_suite()) {
    const auto m = build_matrix<double>(entry);
    EXPECT_EQ(m.validate(), "") << entry.name;
    EXPECT_GT(m.nnz(), 0) << entry.name;
    if (entry.square) {
      EXPECT_EQ(m.rows, m.cols) << entry.name;
    }
  }
}

TEST(Suite, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& entry : full_suite()) {
    EXPECT_TRUE(names.insert(entry.name).second) << entry.name;
  }
}

TEST(Suite, BuildIsDeterministic) {
  const auto& entry = full_suite().front();
  EXPECT_TRUE(
      build_matrix<double>(entry).equals_exact(build_matrix<double>(entry)));
}

TEST(Suite, SparsitySplitMatchesPaperShape) {
  // The paper: 80% of the collection is highly sparse (avg <= 42). The
  // synthetic suite must cover both sides with a sparse-heavy majority.
  int sparse = 0, dense = 0;
  for (const auto& entry : full_suite())
    (is_highly_sparse(entry) ? sparse : dense)++;
  EXPECT_GT(sparse, dense);
  EXPECT_GE(dense, 5);
}

TEST(Suite, NonSquareEntriesExist) {
  int non_square = 0;
  for (const auto& entry : full_suite())
    if (!entry.square) ++non_square;
  EXPECT_GE(non_square, 3);
}

TEST(Suite, FloatAndDoubleBuildsShareStructure) {
  const auto& entry = showcase_suite()[1];
  const auto d = build_matrix<double>(entry);
  const auto f = build_matrix<float>(entry);
  EXPECT_EQ(d.row_ptr, f.row_ptr);
  EXPECT_EQ(d.col_idx, f.col_idx);
}

TEST(Registry, PaperAlgorithmListMatchesTable1) {
  const auto algos = make_paper_algorithms<double>();
  ASSERT_EQ(algos.size(), 6u);
  EXPECT_EQ(algos[0]->name(), "AC-SpGEMM");
  EXPECT_TRUE(algos[0]->bit_stable());
  // The paper daggers cuSparse, nsparse and Kokkos as not bit-stable.
  std::set<std::string> daggered;
  for (const auto& a : algos)
    if (!a->bit_stable()) daggered.insert(a->name());
  EXPECT_EQ(daggered, (std::set<std::string>{"cuSparse", "nsparse", "Kokkos"}));
}

TEST(Registry, AllAlgorithmsRunOnAShowcaseEntry) {
  const auto m = build_matrix<double>(showcase_suite()[5]);  // asia_osm-like
  const auto algos = make_paper_algorithms<double>();
  const auto ref = algos[0]->multiply(m, m, nullptr);
  for (const auto& algo : algos) {
    SpgemmStats stats;
    const auto c = algo->multiply(m, m, &stats);
    EXPECT_EQ(c.validate(), "") << algo->name();
    EXPECT_EQ(c.row_ptr, ref.row_ptr) << algo->name();
    EXPECT_GT(stats.sim_time_s, 0.0) << algo->name();
    EXPECT_GT(stats.gflops(), 0.0) << algo->name();
  }
}

}  // namespace
}  // namespace acs
