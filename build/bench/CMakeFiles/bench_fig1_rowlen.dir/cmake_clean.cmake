file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_rowlen.dir/bench_fig1_rowlen.cpp.o"
  "CMakeFiles/bench_fig1_rowlen.dir/bench_fig1_rowlen.cpp.o.d"
  "bench_fig1_rowlen"
  "bench_fig1_rowlen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_rowlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
