#pragma once
/// \file bhsparse.hpp
/// bhSparse-style SpGEMM [Liu & Vinter 2015]: rows of C are grouped by
/// their number of intermediate products and each group is processed by an
/// adaptively selected method — trivial copy for 0/1-product rows, heap
/// ESC in scratchpad for small rows, and an iterative global merge for rows
/// beyond the scratchpad bound. Merge-based and deterministic: bit-stable.

#include "baselines/algorithm.hpp"

namespace acs {

template <class T>
Csr<T> bhsparse_multiply(const Csr<T>& a, const Csr<T>& b,
                         SpgemmStats* stats = nullptr);

template <class T>
class BhSparse final : public SpgemmAlgorithm<T> {
 public:
  [[nodiscard]] std::string name() const override { return "bhSparse"; }
  [[nodiscard]] bool bit_stable() const override { return true; }
  Csr<T> multiply(const Csr<T>& a, const Csr<T>& b,
                  SpgemmStats* stats) const override {
    return bhsparse_multiply(a, b, stats);
  }
};

extern template Csr<float> bhsparse_multiply(const Csr<float>&,
                                             const Csr<float>&, SpgemmStats*);
extern template Csr<double> bhsparse_multiply(const Csr<double>&,
                                              const Csr<double>&, SpgemmStats*);
extern template class BhSparse<float>;
extern template class BhSparse<double>;

}  // namespace acs
