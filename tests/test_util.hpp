#pragma once
/// Shared helpers for the test suite.

#include <cmath>

#include "matrix/csr.hpp"

namespace acs::testutil {

/// Round all values to multiples of 0.25. Products are then multiples of
/// 1/16 and sums of moderately many of them are exactly representable in
/// float and double, so *any* accumulation order gives bit-identical
/// results — letting tests compare different algorithms exactly.
template <class T>
Csr<T> quantize(Csr<T> m) {
  for (auto& v : m.values) {
    v = static_cast<T>(std::round(static_cast<double>(v) * 4.0) / 4.0);
    if (v == T{0}) v = static_cast<T>(0.25);  // keep the sparsity pattern
  }
  return m;
}

}  // namespace acs::testutil
