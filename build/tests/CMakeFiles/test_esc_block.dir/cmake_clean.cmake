file(REMOVE_RECURSE
  "CMakeFiles/test_esc_block.dir/test_esc_block.cpp.o"
  "CMakeFiles/test_esc_block.dir/test_esc_block.cpp.o.d"
  "test_esc_block"
  "test_esc_block.pdb"
  "test_esc_block[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_esc_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
