#include "arch/arch.hpp"

#include <cstring>

#include "arch/invariants.hpp"  // compile-time proofs ride every build

namespace acs::arch {

const char* to_string(ArchId id) {
  switch (id) {
    case ArchId::kSimTitanXp: return SimTitanXp::kName;
    case ArchId::kSimBigDevice: return SimBigDevice::kName;
    case ArchId::kNativeCpu: return NativeCpu::kName;
  }
  return "?";
}

const char* to_string(ExecKind kind) {
  switch (kind) {
    case ExecKind::kSimulated: return "simulated";
    case ExecKind::kNative: return "native";
  }
  return "?";
}

bool parse_arch(const char* name, ArchId& out) {
  if (name == nullptr) return false;
  for (const ArchInfo& info : all_arch_infos()) {
    if (std::strcmp(name, info.name) == 0) {
      out = info.id;
      return true;
    }
  }
  return false;
}

const std::array<ArchInfo, 3>& all_arch_infos() {
  static const std::array<ArchInfo, 3> infos = {
      arch_info(ArchId::kSimTitanXp),
      arch_info(ArchId::kSimBigDevice),
      arch_info(ArchId::kNativeCpu),
  };
  return infos;
}

}  // namespace acs::arch
