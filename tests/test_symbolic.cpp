#include "matrix/symbolic.hpp"

#include <gtest/gtest.h>

#include "baselines/spa_gustavson.hpp"
#include "matrix/generators.hpp"
#include "matrix/transpose.hpp"

namespace acs {
namespace {

TEST(Symbolic, RowNnzMatchesNumericProduct) {
  const auto a = gen_powerlaw<double>(400, 400, 6.0, 1.7, 120, 81);
  const auto c = spa_multiply(a, a);
  const auto counts = symbolic_row_nnz(a, a);
  ASSERT_EQ(counts.size(), static_cast<std::size_t>(a.rows));
  for (index_t r = 0; r < a.rows; ++r)
    EXPECT_EQ(counts[static_cast<std::size_t>(r)], c.row_length(r)) << r;
}

TEST(Symbolic, TotalMatchesNumeric) {
  const auto a = gen_uniform_random<double>(300, 500, 7.0, 2.0, 82);
  const auto at = transpose(a);
  EXPECT_EQ(symbolic_nnz(a, at), spa_multiply(a, at).nnz());
}

TEST(Symbolic, EmptyMatrix) {
  Csr<double> a;
  a.rows = a.cols = 4;
  a.row_ptr.assign(5, 0);
  EXPECT_EQ(symbolic_nnz(a, a), 0);
}

TEST(Symbolic, DimensionMismatchThrows) {
  const auto a = gen_uniform_random<double>(10, 20, 3.0, 1.0, 83);
  EXPECT_THROW(symbolic_row_nnz(a, a), std::invalid_argument);
}

TEST(Symbolic, EstimateIsAccurateOnUniformMatrices) {
  // The paper's chunk-pool estimate assumes uniformly distributed rows;
  // on matrices that actually satisfy the assumption it must be close.
  const auto a = gen_uniform_random<double>(2000, 2000, 10.0, 0.0, 84);
  const double est = estimated_nnz(a, a);
  const auto real = static_cast<double>(symbolic_nnz(a, a));
  EXPECT_NEAR(est / real, 1.0, 0.15);
}

TEST(Symbolic, EstimateIsConservativeDirectionOnSkewedMatrices) {
  // Heavy row-length skew violates the model; the estimate still lands
  // within an order of magnitude (the paper's 1.2x factor + restart
  // mechanism absorbs the rest).
  const auto a = gen_powerlaw<double>(2000, 2000, 6.0, 1.5, 600, 85);
  const double est = estimated_nnz(a, a);
  const auto real = static_cast<double>(symbolic_nnz(a, a));
  EXPECT_GT(est / real, 0.1);
  EXPECT_LT(est / real, 10.0);
}

}  // namespace
}  // namespace acs
