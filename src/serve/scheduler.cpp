#include "serve/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace acs::serve {

DrrScheduler::DrrScheduler(double quantum_s)
    : quantum_s_(quantum_s > 0.0 ? quantum_s : 1e-3) {}

std::size_t DrrScheduler::add_tenant(double weight) {
  TenantState s;
  s.weight = weight > 0.0 ? weight : 1.0;
  states_.push_back(std::move(s));
  return states_.size() - 1;
}

void DrrScheduler::enqueue(std::size_t tenant, QueuedJob job) {
  queued_cost_s_ += job.cost_s;
  ++queued_;
  states_[tenant].queue.push_back(job);
}

bool DrrScheduler::pop_next(QueuedJob& out, std::size_t* tenant_out) {
  if (queued_ == 0 || states_.empty()) return false;
  const std::size_t n = states_.size();
  bool active_seen = false;
  std::size_t visited = 0;
  for (;;) {
    TenantState& s = states_[cursor_];
    if (!s.queue.empty()) {
      // Standard DRR: the quantum is granted once per round-robin arrival
      // at the tenant; while its deficit covers further head jobs it keeps
      // serving on the *same* grant (the cursor parks here between pops).
      // Re-granting on every pop would square the weight ratio.
      if (!s.granted) {
        s.deficit_s += quantum_s_ * s.weight;
        s.granted = true;
      }
      if (s.queue.front().cost_s <= s.deficit_s) {
        out = s.queue.front();
        s.queue.pop_front();
        s.deficit_s -= out.cost_s;
        // An emptied queue forfeits its banked deficit so an idle tenant
        // cannot save up a burst.
        if (s.queue.empty()) {
          s.deficit_s = 0.0;
          s.granted = false;
        }
        queued_cost_s_ = std::max(0.0, queued_cost_s_ - out.cost_s);
        --queued_;
        if (tenant_out) *tenant_out = cursor_;
        return true;
      }
      active_seen = true;  // an active queue exists; progress possible
    }
    s.granted = false;  // leaving the tenant ends its visit
    cursor_ = (cursor_ + 1) % n;
    if (++visited == n) {
      // One full cycle without serving: every active head still exceeds
      // its deficit. Fast-forward the round robin by granting each active
      // tenant the same whole number of extra rounds — proportions (and
      // thus fairness) are untouched, but the loop stays O(tenants)
      // instead of O(max cost / quantum).
      if (!active_seen) return false;  // defensive; queued_ > 0 lies?
      double rounds = std::numeric_limits<double>::infinity();
      for (const TenantState& t : states_) {
        if (t.queue.empty()) continue;
        const double need = t.queue.front().cost_s - t.deficit_s;
        rounds =
            std::min(rounds, std::ceil(need / (quantum_s_ * t.weight)));
      }
      rounds = std::max(0.0, rounds - 1.0);  // the loop itself adds one
      if (rounds > 0.0 && std::isfinite(rounds)) {
        for (TenantState& t : states_) {
          if (!t.queue.empty()) t.deficit_s += rounds * quantum_s_ * t.weight;
        }
      }
      visited = 0;
      active_seen = false;
    }
  }
}

void DrrScheduler::requeue_front(std::size_t tenant, QueuedJob job) {
  TenantState& s = states_[tenant];
  s.deficit_s += job.cost_s;
  // Mark the visit live again: the next pop re-serves this job from the
  // restored deficit without granting another quantum.
  s.granted = true;
  queued_cost_s_ += job.cost_s;
  ++queued_;
  s.queue.push_front(job);
}

bool DrrScheduler::shed_lowest_priority(QueuedJob& out,
                                        std::size_t* tenant_out) {
  if (queued_ == 0) return false;
  std::size_t best_tenant = 0;
  std::size_t best_pos = 0;
  const QueuedJob* best = nullptr;
  for (std::size_t t = 0; t < states_.size(); ++t) {
    const auto& q = states_[t].queue;
    for (std::size_t i = 0; i < q.size(); ++i) {
      const QueuedJob& j = q[i];
      const bool better =
          best == nullptr || j.priority < best->priority ||
          (j.priority == best->priority &&
           (j.arrival_s > best->arrival_s ||
            (j.arrival_s == best->arrival_s && j.id > best->id)));
      if (better) {
        best = &j;
        best_tenant = t;
        best_pos = i;
      }
    }
  }
  if (best == nullptr) return false;
  out = *best;
  auto& q = states_[best_tenant].queue;
  q.erase(q.begin() + static_cast<std::ptrdiff_t>(best_pos));
  if (q.empty()) {
    states_[best_tenant].deficit_s = 0.0;
    states_[best_tenant].granted = false;
  }
  queued_cost_s_ = std::max(0.0, queued_cost_s_ - out.cost_s);
  --queued_;
  if (tenant_out) *tenant_out = best_tenant;
  return true;
}

}  // namespace acs::serve
