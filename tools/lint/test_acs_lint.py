#!/usr/bin/env python3
"""Self-test of acs_lint.py: every rule has a pass/trip fixture pair under
tools/lint/fixtures/; each pass fixture must come back clean and each trip
fixture must produce findings of exactly the expected rule. Run directly or
via ctest (lint_selftest)."""

from __future__ import annotations

import re
import subprocess
import sys
import unittest
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parents[1]
LINT = HERE / "acs_lint.py"
FIXTURES = HERE / "fixtures"


def run_lint(*args: str) -> tuple[int, str, str]:
    proc = subprocess.run([sys.executable, str(LINT), *args],
                          capture_output=True, text=True)
    return proc.returncode, proc.stdout, proc.stderr


def rules_in(stdout: str) -> set[str]:
    return set(re.findall(r"\[([a-z-]+)\]", stdout))


class FixturePairs(unittest.TestCase):
    """One pass/trip pair per rule. Trip cases additionally pin the finding
    count, so a rule that silently stops matching half its cases fails."""

    def check_pass(self, rule: str, fixture: str, *extra: str) -> None:
        code, out, err = run_lint(str(FIXTURES / fixture), "--rules", rule,
                                  *extra)
        self.assertEqual(code, 0, f"{fixture} should be clean:\n{out}{err}")
        self.assertEqual(out.strip(), "")

    def check_trip(self, rule: str, fixture: str, expect_findings: int,
                   *extra: str) -> None:
        code, out, err = run_lint(str(FIXTURES / fixture), "--rules", rule,
                                  *extra)
        self.assertEqual(code, 1, f"{fixture} should trip:\n{out}{err}")
        self.assertEqual(rules_in(out), {rule})
        self.assertEqual(len(out.strip().splitlines()), expect_findings, out)

    def test_mo_justify_pass(self):
        self.check_pass("mo-justify", "mo_pass.cpp")

    def test_mo_justify_trip(self):
        self.check_trip("mo-justify", "mo_trip.cpp", 3)

    def test_trace_span_pass(self):
        self.check_pass("trace-span-paired", "trace_pass.cpp")

    def test_trace_span_trip(self):
        self.check_trip("trace-span-paired", "trace_trip.cpp", 1)

    def test_typed_indices_pass(self):
        self.check_pass("typed-indices", "typed_pass.hpp")

    def test_typed_indices_trip(self):
        self.check_trip("typed-indices", "typed_trip.hpp", 4)

    def test_banned_calls_pass(self):
        self.check_pass("banned-calls", "banned_pass.cpp")

    def test_banned_calls_trip(self):
        self.check_trip("banned-calls", "banned_trip.cpp", 3)

    def test_self_sufficient_pass(self):
        self.check_pass("self-sufficient", "self_pass.hpp")

    def test_self_sufficient_trip(self):
        self.check_trip("self-sufficient", "self_trip.hpp", 1)

    def test_mutex_annotated_pass(self):
        self.check_pass("mutex-annotated", "mutex_pass.cpp")

    def test_mutex_annotated_trip(self):
        self.check_trip("mutex-annotated", "mutex_trip.cpp", 3)

    def test_raii_locks_only_pass(self):
        self.check_pass("raii-locks-only", "raii_pass.cpp")

    def test_raii_locks_only_trip(self):
        self.check_trip("raii-locks-only", "raii_trip.cpp", 3)

    def test_lock_order_pass(self):
        self.check_pass("lock-order", "lockorder_pass.cpp",
                        "--lock-order-config",
                        str(FIXTURES / "lockorder_pass.toml"))

    def test_lock_order_trip(self):
        # One inversion, the cycle it closes, one unranked mutex, one stale
        # registry entry.
        self.check_trip("lock-order", "lockorder_trip.cpp", 4,
                        "--lock-order-config",
                        str(FIXTURES / "lockorder_trip.toml"))


class CliContract(unittest.TestCase):
    def test_list_rules_names_at_least_five(self):
        code, out, _ = run_lint("--list-rules")
        self.assertEqual(code, 0)
        self.assertGreaterEqual(len(out.split()), 5)

    def test_unknown_rule_is_a_usage_error(self):
        code, _, err = run_lint("--rules", "no-such-rule")
        self.assertEqual(code, 2)
        self.assertIn("unknown rule", err)

    def test_missing_path_is_a_usage_error(self):
        code, _, _ = run_lint(str(FIXTURES / "does_not_exist.cpp"))
        self.assertEqual(code, 2)


class RepoGate(unittest.TestCase):
    """The repo itself must stay clean under the text rules (the compile-
    backed self-sufficient rule runs in CI's lint job, not here, to keep
    the selftest fast)."""

    def test_src_clean_under_text_rules(self):
        code, out, err = run_lint(
            str(REPO / "src"), "--rules",
            "mo-justify,trace-span-paired,typed-indices,banned-calls,"
            "mutex-annotated,raii-locks-only")
        self.assertEqual(code, 0, f"src/ must lint clean:\n{out}{err}")

    def test_src_lock_order_clean(self):
        code, out, err = run_lint(str(REPO / "src"), "--rules", "lock-order")
        self.assertEqual(code, 0, f"src/ lock order must be clean:\n{out}{err}")

    def test_lock_order_sees_the_real_graph(self):
        """An inverted registry must trip on the repo's own nesting edges —
        proves the whole-project pass is not vacuously clean."""
        import tempfile
        base = (HERE / "lock_order.toml").read_text()
        with tempfile.NamedTemporaryFile("w", suffix=".toml",
                                         delete=False) as fh:
            fh.write(base.replace('"Engine::bg_m_" = 30',
                                  '"Engine::bg_m_" = 45'))
            tmp = fh.name
        try:
            code, out, _ = run_lint(str(REPO / "src"), "--rules",
                                    "lock-order", "--lock-order-config", tmp)
            self.assertEqual(code, 1, "inverted ranks must trip")
            self.assertIn("Engine::bg_m_", out)
        finally:
            Path(tmp).unlink()


if __name__ == "__main__":
    unittest.main(verbosity=2)
