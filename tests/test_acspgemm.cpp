#include "core/acspgemm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>

#include "baselines/spa_gustavson.hpp"
#include "matrix/coo.hpp"
#include "matrix/generators.hpp"
#include "matrix/transpose.hpp"
#include "test_util.hpp"

namespace acs {
namespace {

using testutil::quantize;

/// AC-SpGEMM vs the Gustavson oracle, with quantized values so that any
/// accumulation order gives bit-identical sums (see test_util.hpp).
template <class T>
void expect_matches_oracle(const Csr<T>& a, const Csr<T>& b,
                           const Config& cfg = {}) {
  const auto c = multiply(a, b, cfg);
  ASSERT_EQ(c.validate(), "");
  const auto ref = spa_multiply(a, b);
  EXPECT_EQ(c.row_ptr, ref.row_ptr);
  EXPECT_EQ(c.col_idx, ref.col_idx);
  EXPECT_EQ(c.values, ref.values);
}

TEST(AcSpgemm, TinyKnownProduct) {
  Csr<double> a, b;
  a.rows = a.cols = 2;
  a.row_ptr = {0, 2, 3};
  a.col_idx = {0, 1, 1};
  a.values = {1, 2, 3};
  b.rows = b.cols = 2;
  b.row_ptr = {0, 1, 3};
  b.col_idx = {0, 0, 1};
  b.values = {4, 1, 5};
  const auto c = multiply(a, b);
  EXPECT_EQ(c.values, (std::vector<double>{6, 10, 3, 15}));
}

TEST(AcSpgemm, UniformRandomSelfProduct) {
  const auto m = quantize(gen_uniform_random<double>(800, 800, 6.0, 3.0, 11));
  expect_matches_oracle(m, m);
}

TEST(AcSpgemm, FloatPrecision) {
  const auto m = quantize(gen_uniform_random<float>(500, 500, 5.0, 2.0, 12));
  expect_matches_oracle(m, m);
}

TEST(AcSpgemm, PowerlawRows) {
  const auto m = quantize(gen_powerlaw<double>(1200, 1200, 5.0, 1.6, 400, 13));
  expect_matches_oracle(m, m);
}

TEST(AcSpgemm, Stencil2d) {
  const auto m = quantize(gen_stencil_2d<double>(40, 40, 14));
  expect_matches_oracle(m, m);
}

TEST(AcSpgemm, BandedDense) {
  const auto m = quantize(gen_banded<double>(300, 20, 15));
  expect_matches_oracle(m, m);
}

TEST(AcSpgemm, RmatGraph) {
  const auto m = quantize(gen_rmat<double>(9, 10.0, 0.57, 0.19, 0.19, 16));
  expect_matches_oracle(m, m);
}

TEST(AcSpgemm, NonSquareWithTranspose) {
  const auto m = quantize(gen_uniform_random<double>(300, 120, 7.0, 3.0, 17));
  expect_matches_oracle(m, transpose(m));
}

TEST(AcSpgemm, LongRowsOfBTriggerPointerChunks) {
  // Long rows live in B (Section 3.4): rows of B exceeding the threshold
  // become pointer chunks carrying the factor from A.
  const auto a = quantize(gen_uniform_random<double>(300, 80, 6.0, 2.0, 18));
  const auto b = quantize(
      inject_long_rows(gen_uniform_random<double>(80, 1500, 3.0, 1.0, 19), 10,
                       800, 20));
  Config cfg;
  cfg.long_row_threshold = 128;  // make the long-row path easy to hit
  expect_matches_oracle(a, b, cfg);
}

TEST(AcSpgemm, LongRowsDisabledStillCorrect) {
  const auto a = quantize(gen_uniform_random<double>(300, 80, 6.0, 2.0, 21));
  const auto b = quantize(
      inject_long_rows(gen_uniform_random<double>(80, 1500, 3.0, 1.0, 22), 10,
                       800, 23));
  Config cfg;
  cfg.long_row_handling = false;
  expect_matches_oracle(a, b, cfg);
}

TEST(AcSpgemm, LongRowSharedAcrossBlocksMerges) {
  // Multiple rows of A referencing the same long row of B, plus regular
  // entries in the same output rows: pointer chunks must merge with ESC
  // chunks.
  Coo<double> acoo;
  acoo.rows = 4;
  acoo.cols = 50;
  for (index_t r = 0; r < 4; ++r) {
    acoo.push(r, 0, 2.0);   // B row 0 is long
    acoo.push(r, 10, 1.0);  // regular row
    acoo.push(r, 11, 0.5);
  }
  auto a = acoo.to_csr();
  // Build B with row 0 deliberately long (500 entries) and the rest short.
  Coo<double> bcoo;
  bcoo.rows = 50;
  bcoo.cols = 600;
  for (index_t c = 0; c < 500; ++c) bcoo.push(0, c, 0.25 * ((c % 7) + 1));
  for (index_t r = 1; r < 50; ++r)
    for (index_t j = 0; j < 4; ++j)
      bcoo.push(r, (r * 13 + j * 41) % 600, 0.5 * (j + 1));
  auto b = bcoo.to_csr();
  Config cfg;
  cfg.long_row_threshold = 64;
  expect_matches_oracle(a, b, cfg);
}

TEST(AcSpgemm, BlockDenseHighCompaction) {
  const auto m = quantize(gen_block_dense<double>(300, 300, 32, 2, 24));
  expect_matches_oracle(m, m);
}

TEST(AcSpgemm, EmptyMatrix) {
  Csr<double> a;
  a.rows = 10;
  a.cols = 10;
  a.row_ptr.assign(11, 0);
  const auto c = multiply(a, a);
  EXPECT_EQ(c.nnz(), 0);
  EXPECT_EQ(c.rows, 10);
  EXPECT_EQ(c.validate(), "");
}

TEST(AcSpgemm, EmptyRowsInterleaved) {
  Coo<double> coo;
  coo.rows = 8;
  coo.cols = 8;
  coo.push(1, 1, 1.0);
  coo.push(1, 2, 2.0);
  coo.push(6, 1, 3.0);
  auto m = coo.to_csr();
  expect_matches_oracle(m, m);
}

TEST(AcSpgemm, IdentityIsNeutral) {
  const auto m = quantize(gen_uniform_random<double>(150, 150, 4.0, 1.0, 25));
  const auto id = Csr<double>::identity(150);
  EXPECT_TRUE(multiply(m, id).equals_exact(m));
  EXPECT_TRUE(multiply(id, m).equals_exact(m));
}

TEST(AcSpgemm, DimensionMismatchThrows) {
  const auto a = gen_uniform_random<double>(10, 20, 3.0, 1.0, 26);
  EXPECT_THROW(multiply(a, a), std::invalid_argument);
}

TEST(AcSpgemm, BadConfigThrows) {
  const auto m = gen_uniform_random<double>(10, 10, 3.0, 1.0, 27);
  Config cfg;
  cfg.retain_per_thread = cfg.elements_per_thread;  // retain must be smaller
  EXPECT_THROW(multiply(m, m, cfg), std::invalid_argument);
  Config cfg2;
  cfg2.threads = 0;
  EXPECT_THROW(multiply(m, m, cfg2), std::invalid_argument);
  Config cfg3;
  cfg3.elements_per_thread = 200;  // blows the 15-bit compaction counters
  EXPECT_THROW(multiply(m, m, cfg3), std::invalid_argument);
  Config cfg4;
  cfg4.pool_growth_factor = 1.0;  // would never grow on restart
  EXPECT_THROW(multiply(m, m, cfg4), std::invalid_argument);
}

TEST(AcSpgemm, SmallBlocksForceRowSplitsAndMerges) {
  // Tiny blocks guarantee rows split across many chunks, exercising all
  // merge paths.
  const auto m = quantize(gen_uniform_random<double>(300, 300, 12.0, 4.0, 28));
  Config cfg;
  cfg.threads = 8;
  cfg.nnz_per_block = 8;
  cfg.elements_per_thread = 4;
  cfg.retain_per_thread = 2;
  expect_matches_oracle(m, m, cfg);
}

TEST(AcSpgemm, RetainZeroAblation) {
  const auto m = quantize(gen_uniform_random<double>(400, 400, 6.0, 2.0, 29));
  Config cfg;
  cfg.retain_per_thread = 0;
  expect_matches_oracle(m, m, cfg);
}

TEST(AcSpgemm, StaticBitsAblation) {
  const auto m = quantize(gen_uniform_random<double>(400, 400, 6.0, 2.0, 30));
  Config cfg;
  cfg.dynamic_bits = false;
  expect_matches_oracle(m, m, cfg);
}

TEST(AcSpgemm, StatsArePopulated) {
  const auto m = quantize(gen_uniform_random<double>(600, 600, 8.0, 3.0, 31));
  SpgemmStats stats;
  multiply(m, m, Config{}, &stats);
  EXPECT_GT(stats.sim_time_s, 0.0);
  EXPECT_GT(stats.gflops(), 0.0);
  EXPECT_GT(stats.intermediate_products, 0);
  EXPECT_GT(stats.pool_used_bytes, 0u);
  EXPECT_GE(stats.pool_bytes, stats.pool_used_bytes);
  EXPECT_GT(stats.helper_bytes, 0u);
  EXPECT_EQ(stats.restarts, 0);
  // All seven pipeline stages must be accounted.
  for (const char* stage : {"GLB", "ESC", "MCC", "MM", "PM", "SM", "CC"})
    EXPECT_GE(stats.stage_time(stage), 0.0) << stage;
  EXPECT_GT(stats.stage_time("ESC"), 0.0);
}

TEST(AcSpgemm, TinyPoolForcesRestartsButStaysCorrect) {
  const auto m = quantize(gen_uniform_random<double>(500, 500, 8.0, 3.0, 32));
  Config cfg;
  cfg.pool_override_bytes = 4 * 1024;  // absurdly small: many restarts
  SpgemmStats stats;
  const auto c = multiply(m, m, cfg, &stats);
  EXPECT_GT(stats.restarts, 0);
  const auto ref = spa_multiply(m, m);
  EXPECT_TRUE(c.equals_exact(ref));
}

TEST(AcSpgemm, GeometricGrowthConvergesFromHundredfoldUnderestimate) {
  // Regression (ISSUE 3 satellite): restart growth used to add a flat
  // initial-size step per round, so a pool undersized by a factor F needed
  // O(F) restarts. Doubling (capped by pool_growth_max_step_bytes) makes a
  // 100x under-estimate converge in O(log F) rounds — well under the ~7 the
  // issue allows — while staying bit-identical to the ample-pool run.
  const auto m = quantize(gen_uniform_random<double>(500, 500, 8.0, 3.0, 36));
  SpgemmStats ample;
  const auto ref = multiply(m, m, Config{}, &ample);
  ASSERT_GT(ample.pool_used_bytes, 0u);

  Config cfg;
  cfg.pool_override_bytes = std::max<std::size_t>(ample.pool_used_bytes / 100, 1);
  SpgemmStats stats;
  const auto c = multiply(m, m, cfg, &stats);
  EXPECT_GT(stats.restarts, 0);
  EXPECT_LE(stats.restarts, 7);
  EXPECT_GE(stats.pool_bytes, stats.pool_used_bytes);
  EXPECT_TRUE(c.equals_exact(ref));

  // The growth-step cap keeps each round bounded: with a tiny cap the same
  // run still converges, just in more (linear) rounds.
  Config capped = cfg;
  capped.pool_growth_max_step_bytes = 64 << 10;
  SpgemmStats capped_stats;
  const auto cc = multiply(m, m, capped, &capped_stats);
  EXPECT_GE(capped_stats.restarts, stats.restarts);
  EXPECT_TRUE(cc.equals_exact(ref));
}

TEST(AcSpgemm, PoolEstimateRespectsLowerBound) {
  const auto m = gen_uniform_random<double>(100, 100, 4.0, 1.0, 33);
  Config cfg;
  EXPECT_GE(estimate_chunk_pool_bytes(m, m, cfg), cfg.pool_lower_bound_bytes);
  cfg.pool_override_bytes = 777;
  EXPECT_EQ(estimate_chunk_pool_bytes(m, m, cfg), 777u);
}

TEST(AcSpgemm, PoolEstimateScalesWithDensity) {
  Config cfg;
  cfg.pool_lower_bound_bytes = 0;
  const auto sparse = gen_uniform_random<double>(2000, 2000, 3.0, 1.0, 34);
  const auto dense = gen_uniform_random<double>(2000, 2000, 30.0, 5.0, 35);
  EXPECT_LT(estimate_chunk_pool_bytes(sparse, sparse, cfg),
            estimate_chunk_pool_bytes(dense, dense, cfg));
}

}  // namespace
}  // namespace acs
