file(REMOVE_RECURSE
  "CMakeFiles/test_suite.dir/test_suite.cpp.o"
  "CMakeFiles/test_suite.dir/test_suite.cpp.o.d"
  "test_suite"
  "test_suite.pdb"
  "test_suite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
