file(REMOVE_RECURSE
  "CMakeFiles/test_mmio.dir/test_mmio.cpp.o"
  "CMakeFiles/test_mmio.dir/test_mmio.cpp.o.d"
  "test_mmio"
  "test_mmio.pdb"
  "test_mmio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mmio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
