#include "matrix/generators.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <unordered_set>
#include <vector>

#include "matrix/coo.hpp"

namespace acs {
namespace {

// We use the mt19937_64 *engine* directly (its output sequence is fully
// specified by the standard) but avoid std distributions, whose output is
// implementation-defined. These helpers give portable determinism.
using Rng = std::mt19937_64;

index_t uniform_index(Rng& rng, index_t n) {
  // Multiply-shift mapping of a 64-bit draw onto [0, n).
  return static_cast<index_t>(
      (static_cast<unsigned __int128>(rng()) *
       static_cast<unsigned __int128>(n)) >>
      64);
}

double uniform_unit(Rng& rng) {  // [0, 1)
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

double uniform_value(Rng& rng) {  // [-1, 1)
  return 2.0 * uniform_unit(rng) - 1.0;
}

/// Draw `len` distinct sorted column ids from [0, cols).
std::vector<index_t> draw_columns(Rng& rng, index_t cols, index_t len) {
  len = std::min(len, cols);
  std::vector<index_t> out;
  out.reserve(static_cast<std::size_t>(len));
  if (len > cols / 2) {
    // Dense-ish row: reservoir over the full range is cheaper than rejection.
    std::vector<index_t> all(static_cast<std::size_t>(cols));
    for (index_t i = 0; i < cols; ++i) all[static_cast<std::size_t>(i)] = i;
    for (index_t i = 0; i < len; ++i) {
      const index_t j = i + uniform_index(rng, cols - i);
      std::swap(all[static_cast<std::size_t>(i)], all[static_cast<std::size_t>(j)]);
      out.push_back(all[static_cast<std::size_t>(i)]);
    }
  } else {
    std::unordered_set<index_t> seen;
    while (static_cast<index_t>(out.size()) < len) {
      const index_t c = uniform_index(rng, cols);
      if (seen.insert(c).second) out.push_back(c);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

template <class T>
Csr<T> build_from_row_lengths(index_t rows, index_t cols,
                              const std::vector<index_t>& lengths, Rng& rng) {
  Csr<T> m;
  m.rows = rows;
  m.cols = cols;
  m.row_ptr.resize(static_cast<std::size_t>(rows) + 1);
  m.row_ptr[0] = 0;
  offset_t total = 0;
  for (index_t r = 0; r < rows; ++r) {
    total += std::min(lengths[static_cast<std::size_t>(r)], cols);
    m.row_ptr[static_cast<std::size_t>(r) + 1] = static_cast<index_t>(total);
  }
  m.col_idx.reserve(static_cast<std::size_t>(total));
  m.values.reserve(static_cast<std::size_t>(total));
  for (index_t r = 0; r < rows; ++r) {
    const index_t len = m.row_ptr[usize(r) + 1] - m.row_ptr[usize(r)];
    for (index_t c : draw_columns(rng, cols, len)) {
      m.col_idx.push_back(c);
      m.values.push_back(static_cast<T>(uniform_value(rng)));
    }
  }
  return m;
}

}  // namespace

template <class T>
Csr<T> gen_uniform_random(index_t rows, index_t cols, double avg_row_len,
                          double spread, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<index_t> lengths(static_cast<std::size_t>(rows));
  for (auto& len : lengths) {
    const double jitter = (2.0 * uniform_unit(rng) - 1.0) * spread;
    len = static_cast<index_t>(std::max(0.0, std::round(avg_row_len + jitter)));
  }
  return build_from_row_lengths<T>(rows, cols, lengths, rng);
}

template <class T>
Csr<T> gen_uniform_local(index_t rows, index_t cols, double avg_row_len,
                         double spread, index_t window, std::uint64_t seed) {
  Rng rng(seed);
  window = std::min(window, cols);
  Csr<T> m;
  m.rows = rows;
  m.cols = cols;
  m.row_ptr.resize(static_cast<std::size_t>(rows) + 1);
  m.row_ptr[0] = 0;
  for (index_t r = 0; r < rows; ++r) {
    const double jitter = (2.0 * uniform_unit(rng) - 1.0) * spread;
    const index_t len = std::min<index_t>(
        window,
        static_cast<index_t>(std::max(0.0, std::round(avg_row_len + jitter))));
    // Window centred on the row's relative diagonal position.
    const auto diag = static_cast<index_t>(
        static_cast<double>(r) / std::max<index_t>(1, rows) *
        static_cast<double>(cols));
    const index_t lo =
        std::clamp<index_t>(diag - window / 2, 0, std::max<index_t>(0, cols - window));
    std::vector<index_t> drawn = draw_columns(rng, window, len);
    for (index_t c : drawn) {
      m.col_idx.push_back(lo + c);
      m.values.push_back(static_cast<T>(uniform_value(rng)));
    }
    m.row_ptr[static_cast<std::size_t>(r) + 1] =
        static_cast<index_t>(m.col_idx.size());
  }
  return m;
}

template <class T>
Csr<T> gen_powerlaw(index_t rows, index_t cols, double avg_row_len,
                    double alpha, index_t max_row_len, std::uint64_t seed) {
  Rng rng(seed);
  // Inverse-CDF sampling of a Pareto-like law, then rescale to hit the
  // requested average.
  std::vector<double> raw(static_cast<std::size_t>(rows));
  double sum = 0.0;
  for (auto& x : raw) {
    const double u = std::max(uniform_unit(rng), 1e-12);
    x = std::pow(u, -1.0 / alpha);
    sum += x;
  }
  const double scale = avg_row_len * static_cast<double>(rows) / sum;
  std::vector<index_t> lengths(static_cast<std::size_t>(rows));
  for (std::size_t i = 0; i < raw.size(); ++i) {
    lengths[i] = static_cast<index_t>(
        std::min<double>(std::max(1.0, std::round(raw[i] * scale)),
                         static_cast<double>(std::min(max_row_len, cols))));
  }
  return build_from_row_lengths<T>(rows, cols, lengths, rng);
}

template <class T>
Csr<T> gen_banded(index_t n, index_t band, std::uint64_t seed) {
  Rng rng(seed);
  Csr<T> m;
  m.rows = m.cols = n;
  m.row_ptr.resize(static_cast<std::size_t>(n) + 1);
  m.row_ptr[0] = 0;
  for (index_t r = 0; r < n; ++r) {
    const index_t lo = std::max<index_t>(0, r - band);
    const index_t hi = std::min<index_t>(n - 1, r + band);
    for (index_t c = lo; c <= hi; ++c) {
      m.col_idx.push_back(c);
      m.values.push_back(static_cast<T>(c == r ? 2.0 * (band + 1)
                                               : uniform_value(rng)));
    }
    m.row_ptr[static_cast<std::size_t>(r) + 1] =
        static_cast<index_t>(m.col_idx.size());
  }
  return m;
}

template <class T>
Csr<T> gen_stencil_2d(index_t nx, index_t ny, std::uint64_t seed) {
  Rng rng(seed);
  const index_t n = nx * ny;
  Coo<T> coo;
  coo.rows = coo.cols = n;
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t i = y * nx + x;
      coo.push(i, i, static_cast<T>(4.0 + 0.01 * uniform_value(rng)));
      if (x > 0) coo.push(i, i - 1, static_cast<T>(-1));
      if (x + 1 < nx) coo.push(i, i + 1, static_cast<T>(-1));
      if (y > 0) coo.push(i, i - nx, static_cast<T>(-1));
      if (y + 1 < ny) coo.push(i, i + nx, static_cast<T>(-1));
    }
  }
  return coo.to_csr();
}

template <class T>
Csr<T> gen_stencil_3d(index_t nx, index_t ny, index_t nz, std::uint64_t seed) {
  Rng rng(seed);
  const index_t n = nx * ny * nz;
  Coo<T> coo;
  coo.rows = coo.cols = n;
  for (index_t z = 0; z < nz; ++z) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        const index_t i = (z * ny + y) * nx + x;
        coo.push(i, i, static_cast<T>(6.0 + 0.01 * uniform_value(rng)));
        if (x > 0) coo.push(i, i - 1, static_cast<T>(-1));
        if (x + 1 < nx) coo.push(i, i + 1, static_cast<T>(-1));
        if (y > 0) coo.push(i, i - nx, static_cast<T>(-1));
        if (y + 1 < ny) coo.push(i, i + nx, static_cast<T>(-1));
        if (z > 0) coo.push(i, i - nx * ny, static_cast<T>(-1));
        if (z + 1 < nz) coo.push(i, i + nx * ny, static_cast<T>(-1));
      }
    }
  }
  return coo.to_csr();
}

template <class T>
Csr<T> gen_rmat(int scale, double edge_factor, double a, double b, double c,
                std::uint64_t seed) {
  Rng rng(seed);
  const index_t n = static_cast<index_t>(1) << scale;
  const offset_t edges =
      static_cast<offset_t>(edge_factor * static_cast<double>(n));
  Coo<T> coo;
  coo.rows = coo.cols = n;
  for (offset_t e = 0; e < edges; ++e) {
    index_t r = 0, col = 0;
    for (int level = 0; level < scale; ++level) {
      const double u = uniform_unit(rng);
      r <<= 1;
      col <<= 1;
      if (u < a) {
        // top-left quadrant
      } else if (u < a + b) {
        col |= 1;
      } else if (u < a + b + c) {
        r |= 1;
      } else {
        r |= 1;
        col |= 1;
      }
    }
    coo.push(r, col, static_cast<T>(uniform_value(rng)));
  }
  return coo.to_csr();
}

template <class T>
Csr<T> gen_block_dense(index_t rows, index_t cols, index_t block,
                       index_t blocks_per_row, std::uint64_t seed) {
  Rng rng(seed);
  Coo<T> coo;
  coo.rows = rows;
  coo.cols = cols;
  for (index_t r = 0; r < rows; ++r) {
    for (index_t bl = 0; bl < blocks_per_row; ++bl) {
      const index_t start =
          uniform_index(rng, std::max<index_t>(1, cols - block));
      for (index_t c = start; c < std::min(cols, start + block); ++c)
        coo.push(r, c, static_cast<T>(uniform_value(rng)));
    }
  }
  return coo.to_csr();
}

template <class T>
Csr<T> inject_long_rows(const Csr<T>& base, index_t count, index_t len,
                        std::uint64_t seed) {
  Rng rng(seed);
  Coo<T> coo = Coo<T>::from_csr(base);
  std::unordered_set<index_t> chosen;
  while (static_cast<index_t>(chosen.size()) < std::min(count, base.rows))
    chosen.insert(uniform_index(rng, base.rows));

  // Strip the chosen rows, then add fresh long rows in their place.
  Coo<T> out;
  out.rows = base.rows;
  out.cols = base.cols;
  for (offset_t i = 0; i < coo.nnz(); ++i) {
    if (!chosen.count(coo.row_idx[static_cast<std::size_t>(i)]))
      out.push(coo.row_idx[static_cast<std::size_t>(i)],
               coo.col_idx[static_cast<std::size_t>(i)],
               coo.values[static_cast<std::size_t>(i)]);
  }
  for (index_t r : chosen)
    for (index_t c : draw_columns(rng, base.cols, std::min(len, base.cols)))
      out.push(r, c, static_cast<T>(uniform_value(rng)));
  return out.to_csr();
}

template Csr<float> gen_uniform_random<float>(index_t, index_t, double, double, std::uint64_t);
template Csr<double> gen_uniform_random<double>(index_t, index_t, double, double, std::uint64_t);
template Csr<float> gen_uniform_local<float>(index_t, index_t, double, double, index_t, std::uint64_t);
template Csr<double> gen_uniform_local<double>(index_t, index_t, double, double, index_t, std::uint64_t);
template Csr<float> gen_powerlaw<float>(index_t, index_t, double, double, index_t, std::uint64_t);
template Csr<double> gen_powerlaw<double>(index_t, index_t, double, double, index_t, std::uint64_t);
template Csr<float> gen_banded<float>(index_t, index_t, std::uint64_t);
template Csr<double> gen_banded<double>(index_t, index_t, std::uint64_t);
template Csr<float> gen_stencil_2d<float>(index_t, index_t, std::uint64_t);
template Csr<double> gen_stencil_2d<double>(index_t, index_t, std::uint64_t);
template Csr<float> gen_stencil_3d<float>(index_t, index_t, index_t, std::uint64_t);
template Csr<double> gen_stencil_3d<double>(index_t, index_t, index_t, std::uint64_t);
template Csr<float> gen_rmat<float>(int, double, double, double, double, std::uint64_t);
template Csr<double> gen_rmat<double>(int, double, double, double, double, std::uint64_t);
template Csr<float> gen_block_dense<float>(index_t, index_t, index_t, index_t, std::uint64_t);
template Csr<double> gen_block_dense<double>(index_t, index_t, index_t, index_t, std::uint64_t);
template Csr<float> inject_long_rows<float>(const Csr<float>&, index_t, index_t, std::uint64_t);
template Csr<double> inject_long_rows<double>(const Csr<double>&, index_t, index_t, std::uint64_t);

}  // namespace acs
