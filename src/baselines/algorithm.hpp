#pragma once
/// \file algorithm.hpp
/// Common interface for every SpGEMM implementation benchmarked in this
/// repository — AC-SpGEMM and the five comparison strategies of the paper's
/// evaluation (cuSPARSE-like dual hashing, bhSparse-like hybrid binning,
/// RMerge-like iterative row merging, nsparse-like scratchpad hashing,
/// Kokkos-like portable two-level hashing) plus the sequential Gustavson
/// reference.

#include <memory>
#include <string>

#include "matrix/csr.hpp"
#include "sim/spgemm_stats.hpp"

namespace acs {

template <class T>
class SpgemmAlgorithm {
 public:
  virtual ~SpgemmAlgorithm() = default;

  /// Display name used in benchmark tables ("AC-SpGEMM", "nsparse", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Whether repeated runs produce bit-identical floating-point results
  /// (the paper marks non-bit-stable methods with a dagger in Table 1).
  [[nodiscard]] virtual bool bit_stable() const = 0;

  /// Compute C = A·B; fills `stats` when non-null.
  virtual Csr<T> multiply(const Csr<T>& a, const Csr<T>& b,
                          SpgemmStats* stats = nullptr) const = 0;

  /// For non-bit-stable methods: reseed the emulated hardware schedule that
  /// decides accumulation order. Bit-stable methods ignore this.
  virtual void set_schedule_seed(std::uint64_t) {}
};

}  // namespace acs
