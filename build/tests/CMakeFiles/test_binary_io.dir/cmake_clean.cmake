file(REMOVE_RECURSE
  "CMakeFiles/test_binary_io.dir/test_binary_io.cpp.o"
  "CMakeFiles/test_binary_io.dir/test_binary_io.cpp.o.d"
  "test_binary_io"
  "test_binary_io.pdb"
  "test_binary_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_binary_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
