#include "matrix/ops.hpp"

#include <gtest/gtest.h>

#include "matrix/coo.hpp"
#include "matrix/generators.hpp"
#include "matrix/transpose.hpp"

namespace acs {
namespace {

Csr<double> small(std::initializer_list<std::initializer_list<double>> dense) {
  Coo<double> coo;
  coo.rows = static_cast<index_t>(dense.size());
  coo.cols = static_cast<index_t>(dense.begin()->size());
  index_t r = 0;
  for (const auto& row : dense) {
    index_t c = 0;
    for (double v : row) {
      if (v != 0.0) coo.push(r, c, v);
      ++c;
    }
    ++r;
  }
  return coo.to_csr();
}

TEST(Ops, AddUnionOfPatterns) {
  const auto a = small({{1, 0}, {0, 2}});
  const auto b = small({{0, 3}, {0, 4}});
  const auto c = add(a, b);
  EXPECT_EQ(c.validate(), "");
  EXPECT_TRUE(c.equals_exact(small({{1, 3}, {0, 6}})));
}

TEST(Ops, AddWithCoefficients) {
  const auto a = small({{2, 0}, {0, 2}});
  const auto c = add(a, a, 0.5, 1.5);
  EXPECT_TRUE(c.equals_exact(small({{4, 0}, {0, 4}})));
}

TEST(Ops, AddShapeMismatchThrows) {
  const auto a = small({{1, 0}, {0, 1}});
  const auto b = small({{1, 0, 0}, {0, 1, 0}});
  EXPECT_THROW(add(a, b), std::invalid_argument);
}

TEST(Ops, Scale) {
  auto a = small({{1, 2}, {0, 3}});
  scale(a, 2.0);
  EXPECT_TRUE(a.equals_exact(small({{2, 4}, {0, 6}})));
}

TEST(Ops, HadamardIntersection) {
  const auto a = small({{2, 3, 0}, {1, 0, 1}});
  const auto b = small({{4, 0, 5}, {2, 2, 0}});
  const auto c = hadamard(a, b);
  EXPECT_TRUE(c.equals_exact(small({{8, 0, 0}, {2, 0, 0}})));
}

TEST(Ops, StructuralMaskKeepsValuesFromFirst) {
  const auto m = small({{2, 3}, {4, 5}});
  const auto mask = small({{0, 1}, {1, 0}});
  const auto c = structural_mask(m, mask);
  EXPECT_TRUE(c.equals_exact(small({{0, 3}, {4, 0}})));
}

TEST(Ops, FrobeniusDistance) {
  const auto a = small({{3, 0}, {0, 4}});
  const auto b = small({{0, 0}, {0, 0}});
  EXPECT_DOUBLE_EQ(frobenius_distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(frobenius_distance(a, a), 0.0);
}

TEST(Ops, FrobeniusDistanceAsymmetricPatterns) {
  const auto a = small({{3, 1}, {0, 0}});
  const auto b = small({{0, 1}, {4, 0}});
  EXPECT_DOUBLE_EQ(frobenius_distance(a, b), 5.0);
}

TEST(Ops, Diagonal) {
  const auto a = small({{7, 1, 0}, {0, 0, 2}, {5, 0, 9}});
  const auto d = diagonal(a);
  EXPECT_EQ(d, (std::vector<double>{7, 0, 9}));
}

TEST(Ops, ValueSum) {
  const auto a = small({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(value_sum(a), 10.0);
}

TEST(Ops, IsSymmetric) {
  const auto sym = small({{1, 2}, {2, 3}});
  const auto asym = small({{1, 2}, {5, 3}});
  EXPECT_TRUE(is_symmetric(sym));
  EXPECT_FALSE(is_symmetric(asym));
  const auto rect = small({{1, 0, 0}, {0, 1, 0}});
  EXPECT_FALSE(is_symmetric(rect));
}

TEST(Ops, AAtIsSymmetricProperty) {
  // A·Aᵀ validated via: (A + Aᵀ) is symmetric for square A.
  const auto a = gen_uniform_random<double>(200, 200, 5.0, 2.0, 71);
  EXPECT_TRUE(is_symmetric(add(a, transpose(a))));
}

}  // namespace
}  // namespace acs
