/// \file test_tune.cpp
/// The auto-tuner's contracts (ISSUE: tuner satellite tests):
///  * candidate ranking is deterministic and independent of scheduler
///    interleaving — 1 and 4 scheduler threads pick the same parameters and
///    produce bit-identical C;
///  * feedback tuning converges — per-pass restarts are monotonically
///    non-increasing and reach zero;
///  * every candidate the tuner can emit respects the scratchpad
///    invariants Pipeline::validate enforces (no tuned run can throw the
///    simulator's scratchpad-overflow error).

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "core/acspgemm.hpp"
#include "matrix/coo.hpp"
#include "matrix/generators.hpp"
#include "runtime/engine.hpp"
#include "tune/features.hpp"
#include "tune/predictor.hpp"
#include "tune/tuner.hpp"

namespace {

using acs::Config;
using acs::Csr;
using acs::TunedParams;
using acs::tune::AutoTuner;
using acs::tune::extract_features;
using acs::tune::TuneFeatures;

/// Quarter-grid values: products and sums are exact in float, so any
/// regrouping of partial sums (different block shapes, diversion, merge
/// splits) must give bit-identical output.
void quantize(Csr<float>& m) {
  for (auto& v : m.values) v = std::round(v * 4.0f) / 4.0f + 0.25f;
}

/// One-entry-per-row selector times a hub-heavy graph: the frontier
/// expansion structure where long-row diversion pays and the tuner should
/// pick a quantile-derived threshold.
std::pair<Csr<float>, Csr<float>> frontier_job() {
  auto web = acs::gen_powerlaw<float>(3000, 3000, 12.0, 1.2, 900, 77);
  quantize(web);
  acs::Coo<float> sel;
  sel.rows = web.rows;
  sel.cols = web.rows;
  for (acs::index_t i = 0; i < web.rows; ++i)
    sel.push(i, static_cast<acs::index_t>((static_cast<long>(i) * 733 + 17) %
                                          web.rows),
             1.25f);
  return {sel.to_csr(), std::move(web)};
}

TEST(Tune, RankingIsDeterministic) {
  const auto [a, b] = frontier_job();
  const auto f = extract_features(a, b);
  const AutoTuner tuner;
  const auto r1 = tuner.rank(f, Config{}, sizeof(float));
  const auto r2 = tuner.rank(f, Config{}, sizeof(float));
  ASSERT_FALSE(r1.empty());
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].params, r2[i].params);
    EXPECT_EQ(r1[i].cost.serial_s, r2[i].cost.serial_s);  // bit-equal
    EXPECT_EQ(r1[i].cost.total_s, r2[i].cost.total_s);
  }
}

TEST(Tune, RankingIncludesBaseConfigSoTuningNeverLosesUnderTheModel) {
  const auto [a, b] = frontier_job();
  const auto f = extract_features(a, b);
  const Config base;
  const AutoTuner tuner;
  const auto ranked = tuner.rank(f, base, sizeof(float));
  ASSERT_FALSE(ranked.empty());
  // Find the candidate that reproduces the base configuration exactly.
  bool base_present = false;
  double base_cost = 0.0;
  for (const auto& c : ranked) {
    Config applied = base;
    c.params.apply(applied);
    if (applied.nnz_per_block == base.nnz_per_block &&
        applied.retain_per_thread == base.retain_per_thread &&
        applied.long_row_threshold == base.long_row_threshold &&
        applied.path_merge_max_chunks == base.path_merge_max_chunks) {
      base_present = true;
      base_cost = c.cost.serial_s;
      break;
    }
  }
  ASSERT_TRUE(base_present);
  EXPECT_LE(ranked.front().cost.serial_s, base_cost);
}

/// The ISSUE's interleaving test: same batch through engines whose jobs run
/// with 1 vs. 4 simulated scheduler threads (and 1 vs. 4 engine workers) —
/// the tuner must pick identical parameters and the outputs must match bit
/// for bit, because the choice is a pure function of structure.
TEST(Tune, ChoiceIsInterleavingIndependentAndOutputsBitIdentical) {
  std::vector<std::pair<Csr<float>, Csr<float>>> pairs;
  for (int i = 0; i < 6; ++i) pairs.push_back(frontier_job());
  auto s = acs::gen_stencil_2d<float>(32, 32, 3);
  quantize(s);
  for (int i = 0; i < 2; ++i) pairs.emplace_back(s, s);

  auto run = [&](unsigned engine_workers, unsigned sched_threads) {
    acs::runtime::EngineConfig ec;
    ec.workers = engine_workers;
    ec.tuning = acs::tune::TuningMode::kFeedback;
    acs::runtime::Engine<float> engine(ec);
    Config cfg;
    cfg.scheduler_threads = sched_threads;
    engine.multiply_batch(pairs, cfg);  // cold pass: tune + measure
    return engine.multiply_batch(pairs, cfg);
  };

  const auto serial = run(1, 1);
  const auto parallel = run(4, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_FALSE(serial[i].failed());
    ASSERT_FALSE(parallel[i].failed());
    EXPECT_EQ(serial[i].tuned, parallel[i].tuned) << "job " << i;
    EXPECT_TRUE(serial[i].tuned.valid);
    EXPECT_TRUE(serial[i].c.equals_exact(parallel[i].c)) << "job " << i;
  }
}

TEST(Tune, FeedbackRestartsMonotonicallyNonIncreasing) {
  std::vector<std::pair<Csr<float>, Csr<float>>> pairs;
  for (int i = 0; i < 4; ++i) pairs.push_back(frontier_job());

  // Under-provisioned pool: the cold pass must restart, warm passes learn.
  Config cfg;
  cfg.pool_lower_bound_bytes = 4 << 10;
  cfg.pool_estimate_factor = 0.01;

  acs::runtime::EngineConfig ec;
  ec.workers = 2;
  ec.tuning = acs::tune::TuningMode::kFeedback;
  acs::runtime::Engine<float> engine(ec);

  std::size_t prev = 0;
  for (int pass = 0; pass < 4; ++pass) {
    const auto before = engine.stats().restarts;
    const auto results = engine.multiply_batch(pairs, cfg);
    for (const auto& r : results) {
      ASSERT_FALSE(r.failed());
    }
    const std::size_t this_pass = engine.stats().restarts - before;
    if (pass > 0) {
      EXPECT_LE(this_pass, prev) << "pass " << pass;
    }
    prev = this_pass;
  }
  EXPECT_EQ(prev, 0u) << "feedback tuning must converge to zero restarts";
}

TEST(Tune, AllCandidatesRespectScratchpadInvariants) {
  const auto [a, b] = frontier_job();
  const auto f = extract_features(a, b);
  const Config base;
  const AutoTuner tuner;
  for (const std::size_t value_bytes : {sizeof(float), sizeof(double)}) {
    const auto ranked = tuner.rank(f, base, value_bytes);
    ASSERT_FALSE(ranked.empty());
    for (const auto& c : ranked) {
      Config applied = base;
      c.params.apply(applied);
      EXPECT_TRUE(acs::tune::fits_device(applied, value_bytes));
      EXPECT_LT(applied.retain_per_thread, applied.elements_per_thread);
      EXPECT_GT(applied.nnz_per_block, 0);
      EXPECT_LE(applied.temp_capacity(), 32767)
          << "compaction counters are 15-bit";
    }
    // The known scratchpad ceiling: double values cannot fit a 1024-entry
    // block (keys + values alone exceed 48 KiB), so no double candidate may
    // carry nnz_per_block = 1024 even though the grid offers it.
    if (value_bytes == sizeof(double)) {
      for (const auto& c : ranked) {
        EXPECT_NE(c.params.nnz_per_block, 1024);
      }
    }
  }
}

/// End-to-end: every ranked overlay actually executes (the simulator's
/// Scratchpad throws std::length_error on overflow, so running is the
/// strongest invariant check) and yields the same bits as the default.
TEST(Tune, EveryRankedCandidateExecutesBitIdentically) {
  const auto [a, b] = frontier_job();
  const auto f = extract_features(a, b);
  const Config base;
  const auto ranked = AutoTuner{}.rank(f, base, sizeof(float));
  ASSERT_FALSE(ranked.empty());

  acs::SpgemmStats ref_stats;
  const auto ref = acs::multiply(a, b, base, &ref_stats);
  for (const auto& c : ranked) {
    Config applied = base;
    c.params.apply(applied);
    acs::SpgemmStats st;
    Csr<float> out;
    ASSERT_NO_THROW(out = acs::multiply(a, b, applied, &st));
    EXPECT_TRUE(ref.equals_exact(out));
  }
}

TEST(Tune, FrontierStructureGetsQuantileThresholdAndWiderBlocks) {
  const auto [a, b] = frontier_job();
  const auto f = extract_features(a, b);
  const Config base;
  const auto choice = AutoTuner{}.choose(f, base, sizeof(float));
  ASSERT_TRUE(choice.valid);
  // Hub rows sit below the default auto threshold (temp_capacity = 2048);
  // diverting them is the whole mechanism, so the tuned threshold must be a
  // real cutoff strictly below what the default would use.
  EXPECT_GT(choice.long_row_threshold, 0);
  EXPECT_LT(choice.long_row_threshold, base.temp_capacity());
  EXPECT_LE(choice.long_row_threshold, f.b_rows.p99);
}

TEST(Tune, FeaturesAreStructuralAndSamplingIsDeterministic) {
  const auto [a, b] = frontier_job();
  const auto f1 = extract_features(a, b);
  auto b2 = b;
  for (auto& v : b2.values) v = -3.75f;  // same structure, new values
  const auto f2 = extract_features(a, b2);
  EXPECT_EQ(f1.est_products, f2.est_products);
  EXPECT_EQ(f1.sampled, f2.sampled);
  EXPECT_EQ(f1.sampled_b_lens, f2.sampled_b_lens);
  EXPECT_EQ(f1.b_rows.p90, f2.b_rows.p90);
  // The threshold helpers agree with a direct computation on the sample.
  double mass = 0.0;
  for (const auto len : f1.sampled_b_lens)
    if (len >= f1.b_rows.p90) mass += static_cast<double>(len);
  EXPECT_DOUBLE_EQ(f1.products_in_rows_at_least(f1.b_rows.p90),
                   mass * static_cast<double>(f1.stride));
}

/// The cold path's central promise: an unlimited predictor-only budget
/// picks exactly the plan the full ranking would. Both sort by `serial_s`
/// (the default kThroughput objective), and skipping the simulated
/// makespan leaves `serial_s` bit-identical — only `total_s` collapses.
TEST(Tune, BudgetedUnlimitedMatchesFullRanking) {
  const auto [a, b] = frontier_job();
  const auto f = extract_features(a, b);
  const Config base;
  const AutoTuner tuner;

  const auto full = tuner.rank(f, base, sizeof(float));
  const auto cold = tuner.rank_budgeted(f, base, sizeof(float), 0);
  ASSERT_EQ(cold.size(), full.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(cold[i].params, full[i].params) << "rank " << i;
    // Predictor-only pricing reproduces the work estimate exactly and
    // never ran the block scheduler.
    EXPECT_EQ(cold[i].cost.serial_s, full[i].cost.serial_s) << "rank " << i;
    EXPECT_EQ(cold[i].cost.total_s, 0.0) << "rank " << i;
  }
  EXPECT_EQ(tuner.choose_budgeted(f, base, sizeof(float), 0),
            tuner.choose(f, base, sizeof(float)));
  // And with a measured product count (the feedback path's override).
  const double measured = f.est_products * 1.5;
  EXPECT_EQ(tuner.choose_budgeted(f, base, sizeof(float), 0, measured),
            tuner.choose(f, base, sizeof(float), measured));
}

/// Starved budgets still return a usable plan: every ranked candidate is
/// device-feasible, the list never exceeds the budget, and even budget 1
/// yields a valid choice.
TEST(Tune, TightBudgetsStillYieldFeasiblePlans) {
  const auto [a, b] = frontier_job();
  const auto f = extract_features(a, b);
  const Config base;
  const AutoTuner tuner;

  for (const std::size_t budget : {std::size_t{1}, std::size_t{2},
                                   std::size_t{5}, std::size_t{7}}) {
    // sizeof(double) shrinks the feasible set (wide blocks overflow the
    // scratchpad), so cover both value widths: infeasible tuples must be
    // pruned before they consume budget.
    for (const std::size_t width : {sizeof(float), sizeof(double)}) {
      const auto ranked = tuner.rank_budgeted(f, base, width, budget);
      ASSERT_FALSE(ranked.empty()) << "budget " << budget;
      EXPECT_LE(ranked.size(), budget) << "budget " << budget;
      for (const auto& c : ranked) {
        Config applied = base;
        c.params.apply(applied);
        EXPECT_TRUE(acs::tune::fits_device(applied, width))
            << "budget " << budget << " width " << width;
      }
      const auto choice = tuner.choose_budgeted(f, base, width, budget);
      ASSERT_TRUE(choice.valid) << "budget " << budget;
      // A budgeted choice must execute, and regrouping-safe inputs make it
      // bit-comparable to the untuned baseline.
      Config applied = base;
      choice.apply(applied);
      if (width == sizeof(float)) {
        const auto ref = acs::multiply(a, b, base);
        EXPECT_TRUE(ref.equals_exact(acs::multiply(a, b, applied)))
            << "budget " << budget;
      }
    }
  }
}

/// The budget counts *feasible* candidates in deterministic enumeration
/// order, so growing the budget only ever extends the ranked prefix's
/// candidate set — the budget-1 winner is the cheapest of a subset of what
/// budget-N priced.
TEST(Tune, GrowingBudgetNeverWorsensTheModeledPlan) {
  const auto [a, b] = frontier_job();
  const auto f = extract_features(a, b);
  const Config base;
  const AutoTuner tuner;

  double prev_best = std::numeric_limits<double>::infinity();
  for (std::size_t budget = 1; budget <= 12; ++budget) {
    const auto ranked = tuner.rank_budgeted(f, base, sizeof(float), budget);
    ASSERT_FALSE(ranked.empty());
    EXPECT_LE(ranked[0].cost.serial_s, prev_best) << "budget " << budget;
    prev_best = ranked[0].cost.serial_s;
  }
}

}  // namespace
