#include "suite/table.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace acs {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << "  ";
      out << std::string(widths[i] - row[i].size(), ' ') << row[i];
    }
    out << "\n";
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << v;
  return out.str();
}

std::string TextTable::si(double v) {
  const char* suffix = "";
  if (std::abs(v) >= 1e9) {
    v /= 1e9;
    suffix = "G";
  } else if (std::abs(v) >= 1e6) {
    v /= 1e6;
    suffix = "M";
  } else if (std::abs(v) >= 1e3) {
    v /= 1e3;
    suffix = "k";
  }
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(std::abs(v) >= 100 ? 0 : 1);
  out << v << suffix;
  return out.str();
}

struct CsvWriter::Impl {
  std::ofstream out;
};

CsvWriter::CsvWriter(const std::string& path) : impl_(new Impl) {
  impl_->out.open(path);
  if (!impl_->out) {
    delete impl_;
    throw std::runtime_error("csv: cannot open " + path);
  }
}

CsvWriter::~CsvWriter() { delete impl_; }

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) impl_->out << ",";
    const std::string& cell = cells[i];
    if (cell.find_first_of(",\"\n") != std::string::npos) {
      impl_->out << '"';
      for (char ch : cell) {
        if (ch == '"') impl_->out << '"';
        impl_->out << ch;
      }
      impl_->out << '"';
    } else {
      impl_->out << cell;
    }
  }
  impl_->out << "\n";
}

}  // namespace acs
