# Empty dependencies file for acs_core.
# This may be replaced when dependencies are built.
