#include "matrix/csr.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

namespace acs {

template <class T>
std::string Csr<T>::validate() const {
  std::ostringstream err;
  if (rows < 0 || cols < 0) {
    err << "negative dimensions " << rows << "x" << cols;
    return err.str();
  }
  if (row_ptr.size() != static_cast<std::size_t>(rows) + 1) {
    err << "row_ptr size " << row_ptr.size() << " != rows+1 " << rows + 1;
    return err.str();
  }
  if (row_ptr.front() != 0) return "row_ptr[0] != 0";
  if (col_idx.size() != values.size()) return "col_idx/values size mismatch";
  if (row_ptr.back() != static_cast<index_t>(col_idx.size()))
    return "row_ptr back != nnz";
  for (index_t r = 0; r < rows; ++r) {
    const index_t begin = row_ptr[usize(r)], end = row_ptr[usize(r) + 1];
    if (begin > end) {
      err << "row_ptr decreasing at row " << r;
      return err.str();
    }
    for (index_t k = begin; k < end; ++k) {
      if (col_idx[usize(k)] < 0 || col_idx[usize(k)] >= cols) {
        err << "column id " << col_idx[usize(k)] << " out of range in row " << r;
        return err.str();
      }
      if (k > begin && col_idx[usize(k)] <= col_idx[usize(k) - 1]) {
        err << "columns not strictly increasing in row " << r;
        return err.str();
      }
    }
  }
  return {};
}

template <class T>
bool Csr<T>::equals_exact(const Csr& other) const {
  return rows == other.rows && cols == other.cols && row_ptr == other.row_ptr &&
         col_idx == other.col_idx && values == other.values;
}

template <class T>
bool Csr<T>::almost_equals(const Csr& other, double rel_tol) const {
  if (rows != other.rows || cols != other.cols || row_ptr != other.row_ptr ||
      col_idx != other.col_idx)
    return false;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double a = static_cast<double>(values[i]);
    const double b = static_cast<double>(other.values[i]);
    const double scale = std::max({std::abs(a), std::abs(b), 1.0});
    if (std::abs(a - b) > rel_tol * scale) return false;
  }
  return true;
}

template <class T>
void Csr<T>::prune_zeros() {
  std::vector<index_t> new_ptr(static_cast<std::size_t>(rows) + 1, 0);
  std::size_t out = 0;
  for (index_t r = 0; r < rows; ++r) {
    for (index_t k = row_ptr[usize(r)]; k < row_ptr[usize(r) + 1]; ++k) {
      if (values[usize(k)] != T{0}) {
        col_idx[out] = col_idx[usize(k)];
        values[out] = values[usize(k)];
        ++out;
      }
    }
    new_ptr[static_cast<std::size_t>(r) + 1] = static_cast<index_t>(out);
  }
  col_idx.resize(out);
  values.resize(out);
  row_ptr = std::move(new_ptr);
}

template <class T>
Csr<T> Csr<T>::identity(index_t n) {
  Csr m;
  m.rows = m.cols = n;
  m.row_ptr.resize(usize(n) + 1);
  m.col_idx.resize(usize(n));
  m.values.assign(usize(n), T{1});
  for (index_t i = 0; i <= n; ++i) m.row_ptr[usize(i)] = i;
  for (index_t i = 0; i < n; ++i) m.col_idx[usize(i)] = i;
  return m;
}

template struct Csr<float>;
template struct Csr<double>;

}  // namespace acs
