// Pass fixture for lock-order: Outer::outer_m ranks below Inner::inner_m
// and every path (direct nesting, nesting through a call, nesting under an
// ACS_REQUIRES context) acquires them in that order.
#include "core/thread_annotations.hpp"

struct Inner {
  void poke() ACS_EXCLUDES(inner_m) {
    acs::MutexLock lock(inner_m);
    ++value;
  }
  acs::Mutex inner_m;
  int value ACS_GUARDED_BY(inner_m) = 0;
};

struct Outer {
  void touch() ACS_EXCLUDES(outer_m) {
    acs::MutexLock lock(outer_m);
    ++state;
    inner_.poke();
  }
  void direct() ACS_EXCLUDES(outer_m) {
    acs::MutexLock lock(outer_m);
    acs::MutexLock nested(inner_.inner_m);
    ++inner_.value;
  }
  void locked_path() ACS_REQUIRES(outer_m) {
    inner_.poke();
  }
  Inner inner_;
  acs::Mutex outer_m;
  int state ACS_GUARDED_BY(outer_m) = 0;
};
