#pragma once
/// \file detail.hpp
/// Shared helpers for the baseline SpGEMM implementations: seeded
/// permutation of accumulation order (emulating the scheduler-dependent
/// accumulation of hash-based GPU kernels) and row-product gathering.

#include <cstdint>
#include <numeric>
#include <vector>

#include "matrix/csr.hpp"

namespace acs::baseline_detail {

/// One intermediate product of an output row.
template <class T>
struct Product {
  index_t col;
  T val;
};

/// Gather all intermediate products of output row `r` in Gustavson
/// (A-entry) order.
template <class T>
void gather_row_products(const Csr<T>& a, const Csr<T>& b, index_t r,
                         std::vector<Product<T>>& out) {
  out.clear();
  for (index_t ka = a.row_ptr[usize(r)]; ka < a.row_ptr[usize(r) + 1]; ++ka) {
    const index_t k = a.col_idx[usize(ka)];
    const T av = a.values[usize(ka)];
    for (index_t kb = b.row_ptr[usize(k)]; kb < b.row_ptr[usize(k) + 1]; ++kb)
      out.push_back({b.col_idx[usize(kb)], av * b.values[usize(kb)]});
  }
}

/// SplitMix64 step — deterministic per-row schedule randomization.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Permute the accumulation order of a row's products. Seed 0 keeps the
/// deterministic Gustavson order; any other seed emulates a different
/// hardware schedule, changing the floating-point result of hash-based
/// accumulation — the non-bit-stable behaviour the paper's daggers mark.
template <class T>
void permute_schedule(std::vector<Product<T>>& prods, std::uint64_t seed,
                      index_t row) {
  if (seed == 0 || prods.size() < 2) return;
  std::uint64_t state = splitmix64(seed ^ (std::uint64_t{0x517CC1B727220A95} *
                                           static_cast<std::uint64_t>(row + 1)));
  for (std::size_t i = prods.size() - 1; i > 0; --i) {
    state = splitmix64(state);
    const std::size_t j = static_cast<std::size_t>(state % (i + 1));
    std::swap(prods[i], prods[j]);
  }
}

/// Next power of two >= x (minimum 1).
inline std::size_t next_pow2(std::size_t x) {
  std::size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace acs::baseline_detail
