#include "matrix/mmio.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "matrix/generators.hpp"

namespace acs {
namespace {

TEST(Mmio, ParseGeneralReal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 3 3\n"
      "1 1 2.5\n"
      "2 3 -1\n"
      "3 2 4\n");
  auto csr = read_matrix_market<double>(in).to_csr();
  EXPECT_EQ(csr.validate(), "");
  EXPECT_EQ(csr.rows, 3);
  EXPECT_EQ(csr.nnz(), 3);
  EXPECT_EQ(csr.values[0], 2.5);
}

TEST(Mmio, ParseSymmetricExpandsOffDiagonal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 7\n"
      "3 3 1\n");
  auto csr = read_matrix_market<double>(in).to_csr();
  EXPECT_EQ(csr.nnz(), 3);  // (2,1), (1,2), (3,3)
  EXPECT_EQ(csr.row_length(0), 1);
  EXPECT_EQ(csr.row_length(1), 1);
}

TEST(Mmio, ParseSkewSymmetricNegates) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 3\n");
  auto csr = read_matrix_market<double>(in).to_csr();
  ASSERT_EQ(csr.nnz(), 2);
  EXPECT_EQ(csr.values[0], -3.0);  // (1,2) mirrored entry
  EXPECT_EQ(csr.values[1], 3.0);
}

TEST(Mmio, ParsePattern) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n");
  auto csr = read_matrix_market<float>(in).to_csr();
  EXPECT_EQ(csr.nnz(), 2);
  EXPECT_EQ(csr.values[0], 1.0f);
}

TEST(Mmio, ParseIntegerField) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 2 2\n"
      "1 1 3\n"
      "2 2 -4\n");
  auto csr = read_matrix_market<double>(in).to_csr();
  ASSERT_EQ(csr.nnz(), 2);
  EXPECT_EQ(csr.values[0], 3.0);
  EXPECT_EQ(csr.values[1], -4.0);
}

TEST(Mmio, DuplicateEntriesAreSummed) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 3\n"
      "1 1 1.5\n"
      "1 1 2.5\n"
      "2 1 1.0\n");
  auto csr = read_matrix_market<double>(in).to_csr();
  ASSERT_EQ(csr.nnz(), 2);
  EXPECT_EQ(csr.values[0], 4.0);
}

TEST(Mmio, SymmetricDiagonalNotDuplicated) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "2 2 2\n"
      "1 1 5\n"
      "2 1 1\n");
  auto csr = read_matrix_market<double>(in).to_csr();
  EXPECT_EQ(csr.nnz(), 3);  // diagonal once, off-diagonal mirrored
  EXPECT_EQ(csr.values[0], 5.0);
}

TEST(Mmio, RejectsTruncatedEntries) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 5\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market<double>(in), std::runtime_error);
}

TEST(Mmio, RejectsComplexField) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate complex general\n"
      "1 1 1\n"
      "1 1 1.0 2.0\n");
  EXPECT_THROW(read_matrix_market<double>(in), std::runtime_error);
}

TEST(Mmio, RejectsBadBanner) {
  std::istringstream in("%%NotMatrixMarket matrix coordinate real general\n1 1 0\n");
  EXPECT_THROW(read_matrix_market<double>(in), std::runtime_error);
}

TEST(Mmio, RejectsArrayFormat) {
  std::istringstream in("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n");
  EXPECT_THROW(read_matrix_market<double>(in), std::runtime_error);
}

TEST(Mmio, RejectsOutOfRangeCoordinate) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 1.0\n");
  EXPECT_THROW(read_matrix_market<double>(in), std::runtime_error);
}

TEST(Mmio, WriteReadRoundTrip) {
  const auto m = gen_uniform_random<double>(50, 40, 4.0, 2.0, 9);
  std::stringstream buf;
  write_matrix_market(buf, m);
  auto back = read_matrix_market<double>(buf).to_csr();
  EXPECT_TRUE(m.almost_equals(back, 1e-15));
}

TEST(Mmio, FileRoundTrip) {
  const auto m = gen_banded<float>(30, 2, 3);
  const std::string path = ::testing::TempDir() + "acs_mmio_test.mtx";
  write_matrix_market_file(path, m);
  auto back = read_matrix_market_file<float>(path);
  EXPECT_TRUE(m.almost_equals(back, 1e-6));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace acs
