#include "sim/cost_model.hpp"

#include <gtest/gtest.h>

namespace acs::sim {
namespace {

TEST(CostModel, MoreBytesTakeLonger) {
  const DeviceConfig dev{};
  MetricCounters small, large;
  small.global_bytes_coalesced = 1 << 10;
  large.global_bytes_coalesced = 1 << 20;
  EXPECT_LT(block_time_s(small, dev), block_time_s(large, dev));
}

TEST(CostModel, ScatteredBytesCostMoreThanCoalesced) {
  const DeviceConfig dev{};
  MetricCounters co, sc;
  co.global_bytes_coalesced = 1 << 20;
  sc.global_bytes_scattered = 1 << 20;
  EXPECT_GT(block_time_s(sc, dev), 4 * block_time_s(co, dev));
}

TEST(CostModel, SortPassesAddComputeTime) {
  const DeviceConfig dev{};
  MetricCounters few, many;
  few.sort_pass_elements = 1 << 14;
  many.sort_pass_elements = 1 << 22;
  EXPECT_LT(block_time_s(few, dev), block_time_s(many, dev));
}

TEST(CostModel, EmptyKernelCostsLaunchOverheadOnly) {
  const DeviceConfig dev{};
  const auto t = schedule_blocks(std::vector<double>{}, dev);
  EXPECT_DOUBLE_EQ(t.time_s, dev.kernel_launch_us * 1e-6);
  EXPECT_DOUBLE_EQ(t.multiprocessor_load, 1.0);
}

TEST(CostModel, UniformBlocksBalancePerfectly) {
  DeviceConfig dev{};
  dev.num_sms = 4;
  dev.blocks_per_sm = 1;
  const std::vector<double> blocks(64, 1e-5);
  const auto t = schedule_blocks(blocks, dev);
  EXPECT_NEAR(t.multiprocessor_load, 1.0, 1e-9);
  EXPECT_NEAR(t.time_s, 16 * 1e-5 + dev.kernel_launch_us * 1e-6, 1e-9);
}

TEST(CostModel, OneGiantBlockUnbalances) {
  DeviceConfig dev{};
  dev.num_sms = 4;
  dev.blocks_per_sm = 1;
  std::vector<double> blocks(8, 1e-6);
  blocks.push_back(1e-3);
  const auto t = schedule_blocks(blocks, dev);
  EXPECT_LT(t.multiprocessor_load, 0.1);
}

TEST(CostModel, MakespanAtLeastCriticalPath) {
  DeviceConfig dev{};
  dev.num_sms = 2;
  dev.blocks_per_sm = 2;
  const std::vector<double> blocks{5e-4, 1e-6, 1e-6, 1e-6};
  const auto t = schedule_blocks(blocks, dev);
  EXPECT_GE(t.time_s, 5e-4);
}

TEST(CostModel, MetricsOverloadMatchesTimesOverload) {
  const DeviceConfig dev{};
  std::vector<MetricCounters> ms(3);
  for (auto& m : ms) m.global_bytes_coalesced = 1 << 16;
  std::vector<double> times(3, block_time_s(ms[0], dev));
  EXPECT_DOUBLE_EQ(schedule_blocks(ms, dev).time_s,
                   schedule_blocks(times, dev).time_s);
}

TEST(CostModel, AtomicsAddLatency) {
  const DeviceConfig dev{};
  MetricCounters none, some;
  some.atomic_ops = 1000000;
  EXPECT_GT(block_time_s(some, dev), block_time_s(none, dev));
}

}  // namespace
}  // namespace acs::sim
