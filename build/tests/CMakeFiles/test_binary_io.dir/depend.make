# Empty dependencies file for test_binary_io.
# This may be replaced when dependencies are built.
