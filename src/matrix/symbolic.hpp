#pragma once
/// \file symbolic.hpp
/// Symbolic SpGEMM: exact sparsity information of C = A·B without computing
/// values. The sequential tool behind output-size validation, the probability
/// model checks, and downstream allocation decisions.

#include <vector>

#include "matrix/csr.hpp"

namespace acs {

/// Exact nnz per output row of A·B (marker-SPA pass, O(intermediate
/// products)).
template <class T>
std::vector<index_t> symbolic_row_nnz(const Csr<T>& a, const Csr<T>& b);

/// Exact total nnz of A·B.
template <class T>
offset_t symbolic_nnz(const Csr<T>& a, const Csr<T>& b);

/// The paper's probabilistic estimate of nnz(C) under the uniform-row model
/// (Section 4): S ≈ nA · b · (1-(1-p_b)^a)/p_b. Used for the chunk pool;
/// exposed for testing the estimate against symbolic_nnz.
template <class T>
double estimated_nnz(const Csr<T>& a, const Csr<T>& b);

extern template std::vector<index_t> symbolic_row_nnz(const Csr<float>&, const Csr<float>&);
extern template std::vector<index_t> symbolic_row_nnz(const Csr<double>&, const Csr<double>&);
extern template offset_t symbolic_nnz(const Csr<float>&, const Csr<float>&);
extern template offset_t symbolic_nnz(const Csr<double>&, const Csr<double>&);
extern template double estimated_nnz(const Csr<float>&, const Csr<float>&);
extern template double estimated_nnz(const Csr<double>&, const Csr<double>&);

}  // namespace acs
