#pragma once
/// \file tune_persist.hpp
/// Versioned on-disk persistence of tuned parameters, keyed by structure
/// fingerprint — the warm-restart half of the cold-path work (ROADMAP item
/// 4): an engine that tuned a workload once serializes
/// `{Fingerprint, TunedParams, measured products}` records at shutdown and
/// the next process loads them at startup, so the first job of a known
/// structure replays the refined plan instead of paying a cold tune.
///
/// Format (all integers little-endian, fixed width):
///   magic   "ACSTUNE1"                                      (8 bytes)
///   version u32  (kTuneCacheVersion)
///   digest  u64  FNV-1a over the payload below
///   payload:
///     options_hash u64  (tune::options_hash of the writing tuner — grids,
///                        objective, sampling, predictor calibration)
///     count        u64
///     count records of 11 i64/u64 fields each (7 structural fingerprint
///     fields, the fingerprint's arch id, 2 packed overlay words, measured
///     products)
///
/// Version 2 added the arch word (runtime/fingerprint.hpp): a decision
/// tuned under one backend's device constants and grid must not replay on
/// another. Version-1 files load as kBadVersion — a clean cold start, the
/// same as any other drift.
///
/// Loading is corruption-safe by construction: the file is read whole,
/// then magic, version, payload size and digest are checked before a
/// single field is parsed, and an `options_hash` that does not match the
/// reading engine's tuner invalidates everything (stale grids or predictor
/// calibration must re-tune, not replay). Every failure mode — missing
/// file, truncation, bit flips, version or options drift — degrades to an
/// empty entry list with a status code, i.e. a clean cold miss; it never
/// throws and never yields a partially-parsed `TunedParams`
/// (property-tested by tests/test_tune_persist.cpp's corruption battery).

#include <cstdint>
#include <string>
#include <vector>

#include "core/plan.hpp"
#include "matrix/types.hpp"
#include "runtime/fingerprint.hpp"

namespace acs::runtime {

inline constexpr std::uint32_t kTuneCacheVersion = 2;

/// One persisted tuning decision.
struct TuneCacheEntry {
  Fingerprint key;
  TunedParams tuned;
  /// Exact measured product count the decision was (re-)ranked with;
  /// 0 = tuned from the sampled estimate only.
  offset_t measured_products = 0;
};

/// Outcome of `load_tune_cache`. Everything except kLoaded means "cold
/// start": the entry list is empty and the engine tunes from scratch.
enum class TuneCacheLoad {
  kLoaded = 0,       ///< entries parsed and verified
  kMissing,          ///< file absent or unreadable (the usual first run)
  kBadMagic,         ///< not a tune-cache file
  kBadVersion,       ///< written by an incompatible format version
  kTruncated,        ///< shorter than its header claims
  kBadDigest,        ///< payload bytes fail the checksum (bit flips)
  kOptionsMismatch,  ///< tuner grids / objective / calibration changed
};

[[nodiscard]] const char* to_string(TuneCacheLoad status);

/// Serialize `entries` to `path` (atomically enough for a cache: written
/// to a temporary sibling, then renamed over the target). Returns false on
/// any I/O failure; the previous file, if any, is left intact in that case.
bool save_tune_cache(const std::string& path, std::uint64_t options_hash,
                     const std::vector<TuneCacheEntry>& entries);

/// Load and verify `path`, appending nothing on failure: `out` is cleared
/// first and filled only when every check passes. `expected_options_hash`
/// must equal the stored one (pass `tune::options_hash` of the reading
/// tuner's options). Never throws.
TuneCacheLoad load_tune_cache(const std::string& path,
                              std::uint64_t expected_options_hash,
                              std::vector<TuneCacheEntry>& out);

}  // namespace acs::runtime
