#include <gtest/gtest.h>

#include "core/acspgemm.hpp"
#include "matrix/generators.hpp"
#include "sim/metrics.hpp"

namespace acs {
namespace {

TEST(SpgemmStatsExtras, PipelineObservabilityCounters) {
  const auto m = gen_uniform_random<double>(2000, 2000, 8.0, 3.0, 601);
  SpgemmStats stats;
  multiply(m, m, Config{}, &stats);
  EXPECT_GT(stats.chunks_created, 0u);
  EXPECT_GT(stats.esc_iterations, 0u);
  EXPECT_EQ(stats.long_row_chunks, 0u);  // no long rows in this matrix
  // Blocks split rows at nearly every boundary: some merging expected.
  EXPECT_GT(stats.merged_rows, 0u);
}

TEST(SpgemmStatsExtras, LongRowChunksCounted) {
  const auto a = gen_uniform_random<double>(300, 60, 5.0, 1.0, 602);
  const auto b =
      inject_long_rows(gen_uniform_random<double>(60, 900, 3.0, 1.0, 603), 6,
                       500, 604);
  Config cfg;
  cfg.long_row_threshold = 64;
  SpgemmStats stats;
  multiply(a, b, cfg, &stats);
  EXPECT_GT(stats.long_row_chunks, 0u);
}

TEST(SpgemmStatsExtras, StageTimeAccumulatesDuplicates) {
  SpgemmStats s;
  s.stage_times_s = {{"ESC", 1.0}, {"ESC", 2.0}, {"CC", 0.5}};
  EXPECT_DOUBLE_EQ(s.stage_time("ESC"), 3.0);
  EXPECT_DOUBLE_EQ(s.stage_time("CC"), 0.5);
  EXPECT_DOUBLE_EQ(s.stage_time("missing"), 0.0);
}

TEST(SpgemmStatsExtras, GflopsZeroWithoutTime) {
  SpgemmStats s;
  s.intermediate_products = 1000;
  EXPECT_EQ(s.gflops(), 0.0);
  s.sim_time_s = 1e-3;
  EXPECT_DOUBLE_EQ(s.gflops(), 2.0 * 1000 / 1e-3 / 1e9);
}

TEST(MetricCounters, UniformBlockSplitConservesEveryField) {
  // Regression (ISSUE 3 satellite): the old per-block division dropped the
  // remainder — splitting 10 units across 3 blocks lost one. The split must
  // conserve each field exactly, for any block count.
  sim::MetricCounters total;
  total.global_bytes_coalesced = 1000;
  total.global_bytes_scattered = 999;   // not divisible by 7
  total.scratch_ops = 10;
  total.sort_pass_elements = 6;         // fewer than the block count
  total.scan_elements = 1;
  total.hash_probes = 7;                // exactly divisible
  total.atomic_ops = 13;
  total.flops = 12345;
  total.compute_ops = 2;
  for (std::size_t count : {1u, 3u, 7u, 16u}) {
    const auto blocks = sim::uniform_block_split(count, total);
    ASSERT_EQ(blocks.size(), count);
    sim::MetricCounters sum;
    for (const auto& b : blocks) sum = sum + b;
    EXPECT_EQ(sum.global_bytes_coalesced, total.global_bytes_coalesced);
    EXPECT_EQ(sum.global_bytes_scattered, total.global_bytes_scattered);
    EXPECT_EQ(sum.scratch_ops, total.scratch_ops);
    EXPECT_EQ(sum.sort_pass_elements, total.sort_pass_elements);
    EXPECT_EQ(sum.scan_elements, total.scan_elements);
    EXPECT_EQ(sum.hash_probes, total.hash_probes);
    EXPECT_EQ(sum.atomic_ops, total.atomic_ops);
    EXPECT_EQ(sum.flops, total.flops);
    EXPECT_EQ(sum.compute_ops, total.compute_ops);
    // And the distribution is as even as integers allow.
    for (const auto& b : blocks) {
      EXPECT_LE(b.flops, total.flops / count + 1);
      EXPECT_GE(b.flops, total.flops / count);
    }
  }
  EXPECT_TRUE(sim::uniform_block_split(0, total).empty());
}

TEST(MetricCounters, AdditionAggregatesEveryField) {
  sim::MetricCounters a, b;
  a.global_bytes_coalesced = 1;
  a.global_bytes_scattered = 2;
  a.scratch_ops = 3;
  a.sort_pass_elements = 4;
  a.scan_elements = 5;
  a.hash_probes = 6;
  a.atomic_ops = 7;
  a.flops = 8;
  a.compute_ops = 9;
  b = a;
  const auto c = a + b;
  EXPECT_EQ(c.global_bytes_coalesced, 2u);
  EXPECT_EQ(c.global_bytes_scattered, 4u);
  EXPECT_EQ(c.scratch_ops, 6u);
  EXPECT_EQ(c.sort_pass_elements, 8u);
  EXPECT_EQ(c.scan_elements, 10u);
  EXPECT_EQ(c.hash_probes, 12u);
  EXPECT_EQ(c.atomic_ops, 14u);
  EXPECT_EQ(c.flops, 16u);
  EXPECT_EQ(c.compute_ops, 18u);
}

TEST(ConfigExtras, InputValidationOption) {
  auto m = gen_uniform_random<double>(50, 50, 3.0, 1.0, 605);
  Csr<double> broken = m;
  broken.col_idx[0] = 50;  // out of range
  Config lax, strict;
  strict.validate_inputs = true;
  EXPECT_NO_THROW(multiply(m, m, strict));
  EXPECT_THROW(multiply(broken, m, strict), std::invalid_argument);
}

TEST(ConfigExtras, DevicePresets) {
  EXPECT_EQ(sim::titan_xp().num_sms, 30);
  EXPECT_EQ(sim::gtx_1080ti().num_sms, 28);
  EXPECT_EQ(sim::titan_x_pascal().num_sms, 28);
  // A slower device yields a slower simulated time for the same work.
  const auto m = gen_uniform_random<double>(1500, 1500, 8.0, 2.0, 606);
  Config fast, slow;
  slow.device = sim::titan_x_pascal();
  SpgemmStats sf, ss;
  multiply(m, m, fast, &sf);
  multiply(m, m, slow, &ss);
  EXPECT_GT(ss.sim_time_s, sf.sim_time_s * 0.99);
}

}  // namespace
}  // namespace acs
