file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_memcompare.dir/bench_fig8_memcompare.cpp.o"
  "CMakeFiles/bench_fig8_memcompare.dir/bench_fig8_memcompare.cpp.o.d"
  "bench_fig8_memcompare"
  "bench_fig8_memcompare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_memcompare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
