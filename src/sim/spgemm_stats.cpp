#include "sim/spgemm_stats.hpp"

namespace acs {

trace::MetricsSnapshot to_metrics_snapshot(const SpgemmStats& s) {
  trace::MetricsSnapshot m;
  m.jobs = 1;
  m.wall_time_s = s.wall_time_s;
  m.sim_time_s = s.sim_time_s;
  for (const auto& [name, t] : s.stage_times_s) {
    const int i = trace::stage_index(name);
    if (i >= 0) m.stage_sim_time_s[static_cast<std::size_t>(i)] += t;
  }
  m.restarts = static_cast<std::uint64_t>(s.restarts < 0 ? 0 : s.restarts);
  m.pool_denials = s.pool_denials;
  m.esc_iterations = s.esc_iterations;
  m.chunks_created = s.chunks_created;
  m.long_row_chunks = s.long_row_chunks;
  m.merged_rows = s.merged_rows;
  m.pool_bytes = s.pool_bytes;
  m.pool_used_bytes = s.pool_used_bytes;
  m.pool_estimate_bytes = s.pool_estimate_bytes;
  return m;
}

}  // namespace acs
