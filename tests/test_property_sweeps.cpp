/// Parameterized property sweeps: every algorithm against the Gustavson
/// oracle over a grid of matrix regimes, and AC-SpGEMM over a grid of block
/// configurations. Values are quantized (test_util.hpp) so agreement is
/// exact regardless of accumulation order.

#include <gtest/gtest.h>

#include "baselines/bhsparse.hpp"
#include "baselines/cusparse_like.hpp"
#include "baselines/esc_global.hpp"
#include "baselines/kokkos_like.hpp"
#include "baselines/nsparse_like.hpp"
#include "baselines/rmerge.hpp"
#include "baselines/spa_gustavson.hpp"
#include "core/acspgemm.hpp"
#include "matrix/generators.hpp"
#include "matrix/symbolic.hpp"
#include "matrix/transpose.hpp"
#include "test_util.hpp"

namespace acs {
namespace {

using testutil::quantize;

struct Regime {
  const char* name;
  Csr<double> (*make)(std::uint64_t seed);
};

Csr<double> make_uniform(std::uint64_t s) {
  return quantize(gen_uniform_random<double>(400, 400, 5.0, 2.0, s));
}
Csr<double> make_local(std::uint64_t s) {
  return quantize(gen_uniform_local<double>(500, 500, 6.0, 2.0, 128, s));
}
Csr<double> make_powerlaw(std::uint64_t s) {
  return quantize(gen_powerlaw<double>(500, 500, 5.0, 1.6, 200, s));
}
Csr<double> make_banded(std::uint64_t s) {
  return quantize(gen_banded<double>(300, 12, s));
}
Csr<double> make_stencil(std::uint64_t s) {
  return quantize(gen_stencil_2d<double>(22, 22, s));
}
Csr<double> make_rmat(std::uint64_t s) {
  return quantize(gen_rmat<double>(8, 8.0, 0.57, 0.19, 0.19, s));
}
Csr<double> make_blocks(std::uint64_t s) {
  return quantize(gen_block_dense<double>(150, 150, 24, 2, s));
}
Csr<double> make_longrows(std::uint64_t s) {
  return quantize(inject_long_rows(
      gen_uniform_random<double>(600, 600, 3.0, 1.0, s), 4, 400, s + 1));
}

const Regime kRegimes[] = {
    {"uniform", make_uniform},   {"local", make_local},
    {"powerlaw", make_powerlaw}, {"banded", make_banded},
    {"stencil", make_stencil},   {"rmat", make_rmat},
    {"blocks", make_blocks},     {"longrows", make_longrows},
};

// ---------------------------------------------------------------------------
// Every algorithm × every regime × several seeds agrees with the oracle.
// ---------------------------------------------------------------------------

class AlgorithmRegimeSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(AlgorithmRegimeSweep, AllAlgorithmsMatchOracle) {
  const auto [regime_idx, seed] = GetParam();
  const Regime& regime = kRegimes[regime_idx];
  const auto a = regime.make(seed);
  const auto ref = spa_multiply(a, a);

  const auto check = [&](const char* name, const Csr<double>& c) {
    ASSERT_EQ(c.validate(), "") << name;
    EXPECT_TRUE(c.equals_exact(ref)) << name << " on " << regime.name;
  };
  check("AC-SpGEMM", multiply(a, a));
  check("ESC-global", esc_global_multiply(a, a));
  check("nsparse", nsparse_multiply(a, a));
  check("cuSparse", cusparse_like_multiply(a, a));
  check("RMerge", rmerge_multiply(a, a));
  check("bhSparse", bhsparse_multiply(a, a));
  check("Kokkos", kokkos_like_multiply(a, a));
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, AlgorithmRegimeSweep,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(std::uint64_t{201}, std::uint64_t{202},
                                         std::uint64_t{203})),
    [](const auto& param_info) {
      // Built up in place: chained std::string operator+ trips a GCC 12
      // -Wrestrict false positive (PR105651) once inlined.
      std::string name = kRegimes[std::get<0>(param_info.param)].name;
      name += "_seed";
      name += std::to_string(std::get<1>(param_info.param));
      return name;
    });

// ---------------------------------------------------------------------------
// AC-SpGEMM over a grid of block configurations.
// ---------------------------------------------------------------------------

struct ShapeParam {
  int threads, nnz_per_block, elements_per_thread, retain;
};

class ConfigShapeSweep : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(ConfigShapeSweep, MatchesOracleUnderAnyBlockShape) {
  const auto p = GetParam();
  Config cfg;
  cfg.threads = p.threads;
  cfg.nnz_per_block = p.nnz_per_block;
  cfg.elements_per_thread = p.elements_per_thread;
  cfg.retain_per_thread = p.retain;
  const auto a = quantize(gen_powerlaw<double>(600, 600, 6.0, 1.7, 200, 211));
  const auto c = multiply(a, a, cfg);
  EXPECT_EQ(c.validate(), "");
  EXPECT_TRUE(c.equals_exact(spa_multiply(a, a)));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConfigShapeSweep,
    ::testing::Values(ShapeParam{256, 256, 8, 4},   // paper default
                      ShapeParam{256, 512, 8, 4},   // paper's larger GLB
                      ShapeParam{128, 128, 8, 4}, ShapeParam{64, 64, 4, 2},
                      ShapeParam{32, 32, 8, 1}, ShapeParam{16, 16, 4, 0},
                      ShapeParam{512, 256, 4, 2}, ShapeParam{256, 64, 8, 6}),
    [](const auto& param_info) {
      const auto& p = param_info.param;
      std::string name = "t";
      name += std::to_string(p.threads);
      name += "_n";
      name += std::to_string(p.nnz_per_block);
      name += "_e";
      name += std::to_string(p.elements_per_thread);
      name += "_r";
      name += std::to_string(p.retain);
      return name;
    });

// ---------------------------------------------------------------------------
// Structural invariants over seeds: nnz(C) matches the symbolic pass, and
// C's pattern contains the pattern of any single product term.
// ---------------------------------------------------------------------------

class StructuralSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StructuralSweep, OutputStructureMatchesSymbolic) {
  const auto seed = GetParam();
  const auto a = gen_uniform_random<double>(350, 280, 4.0, 2.0, seed);
  const auto b = gen_uniform_random<double>(280, 420, 5.0, 2.0, seed + 7);
  const auto c = multiply(a, b);
  EXPECT_EQ(c.validate(), "");
  EXPECT_EQ(c.nnz(), symbolic_nnz(a, b));
  const auto counts = symbolic_row_nnz(a, b);
  for (index_t r = 0; r < c.rows; ++r)
    ASSERT_EQ(c.row_length(r), counts[static_cast<std::size_t>(r)]);
}

TEST_P(StructuralSweep, RectangularChainAssociativity) {
  // (A·B)·C == A·(B·C) structurally and exactly on quantized values.
  const auto seed = GetParam();
  const auto a = quantize(gen_uniform_random<double>(120, 90, 3.0, 1.0, seed));
  const auto b = quantize(gen_uniform_random<double>(90, 150, 3.0, 1.0, seed + 1));
  const auto c = quantize(gen_uniform_random<double>(150, 80, 3.0, 1.0, seed + 2));
  const auto left = multiply(multiply(a, b), c);
  const auto right = multiply(a, multiply(b, c));
  EXPECT_EQ(left.row_ptr, right.row_ptr);
  EXPECT_EQ(left.col_idx, right.col_idx);
  // Values may differ in grouping only; quantized values make them exact.
  EXPECT_EQ(left.values, right.values);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StructuralSweep,
                         ::testing::Values(301, 302, 303, 304, 305, 306, 307,
                                           308, 309, 310));

}  // namespace
}  // namespace acs
