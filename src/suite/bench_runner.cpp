#include "suite/bench_runner.hpp"

#include "matrix/stats.hpp"
#include "matrix/transpose.hpp"

namespace acs {

template <class T>
BenchMeasurement run_benchmark(const SuiteEntry& entry,
                               const SpgemmAlgorithm<T>& algo) {
  const Csr<T> a = build_matrix<T>(entry);
  const Csr<T> b = entry.square ? a : transpose(a);

  BenchMeasurement m;
  m.matrix = entry.name;
  m.algorithm = algo.name();
  m.precision = sizeof(T) == 4 ? "float" : "double";
  m.nnz_a = a.nnz();
  m.avg_row_len_a = row_stats(a).avg_len;
  m.temp_products = intermediate_products(a, b);

  const Csr<T> c = algo.multiply(a, b, &m.stats);
  m.nnz_c = c.nnz();
  m.gflops = m.stats.gflops();
  m.sim_time_s = m.stats.sim_time_s;
  return m;
}

template <class T>
std::vector<BenchMeasurement> run_benchmarks(
    const SuiteEntry& entry,
    const std::vector<std::unique_ptr<SpgemmAlgorithm<T>>>& algos) {
  std::vector<BenchMeasurement> out;
  out.reserve(algos.size());
  for (const auto& algo : algos) out.push_back(run_benchmark(entry, *algo));
  return out;
}

double harmonic_mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double denom = 0.0;
  for (double x : v) denom += 1.0 / x;
  return static_cast<double>(v.size()) / denom;
}

template BenchMeasurement run_benchmark(const SuiteEntry&,
                                        const SpgemmAlgorithm<float>&);
template BenchMeasurement run_benchmark(const SuiteEntry&,
                                        const SpgemmAlgorithm<double>&);
template std::vector<BenchMeasurement> run_benchmarks(
    const SuiteEntry&,
    const std::vector<std::unique_ptr<SpgemmAlgorithm<float>>>&);
template std::vector<BenchMeasurement> run_benchmarks(
    const SuiteEntry&,
    const std::vector<std::unique_ptr<SpgemmAlgorithm<double>>>&);

}  // namespace acs
