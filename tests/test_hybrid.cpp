#include "suite/hybrid.hpp"

#include <gtest/gtest.h>

#include "baselines/spa_gustavson.hpp"
#include "matrix/generators.hpp"
#include "matrix/transpose.hpp"
#include "suite/suite.hpp"
#include "test_util.hpp"

namespace acs {
namespace {

using testutil::quantize;

TEST(Hybrid, PicksEscOnHighlySparse) {
  const HybridSpgemm<double> h;
  const auto a = gen_uniform_random<double>(2000, 2000, 4.0, 1.0, 91);
  EXPECT_EQ(h.choose(a, a), HybridSpgemm<double>::Choice::AcSpgemm);
}

TEST(Hybrid, PicksHashOnDenseHighCompaction) {
  const HybridSpgemm<double> h;
  const auto a = gen_banded<double>(800, 32, 92);  // a=65, compaction ~33
  EXPECT_EQ(h.choose(a, a), HybridSpgemm<double>::Choice::Hash);
}

TEST(Hybrid, PicksEscOnDenseLowCompaction) {
  // Dense but with nearly no duplicate products (wide LP rectangle · its
  // transpose): ESC stays the right tool.
  const HybridSpgemm<double> h;
  const auto a = gen_uniform_random<double>(300, 9600, 98.0, 10.0, 93);
  const auto at = transpose(a);
  EXPECT_EQ(h.choose(a, at), HybridSpgemm<double>::Choice::AcSpgemm);
}

TEST(Hybrid, BothPathsAreCorrect) {
  const HybridSpgemm<double> h;
  for (std::uint64_t seed : {94u, 95u}) {
    const auto sparse = quantize(gen_uniform_random<double>(500, 500, 3.0, 1.0, seed));
    EXPECT_TRUE(h.multiply(sparse, sparse, nullptr)
                    .equals_exact(spa_multiply(sparse, sparse)));
    EXPECT_EQ(h.last_choice(), HybridSpgemm<double>::Choice::AcSpgemm);

    const auto dense = quantize(gen_banded<double>(400, 30, seed));
    EXPECT_TRUE(h.multiply(dense, dense, nullptr)
                    .equals_exact(spa_multiply(dense, dense)));
    EXPECT_EQ(h.last_choice(), HybridSpgemm<double>::Choice::Hash);
  }
}

TEST(Hybrid, NeverSlowerThanWorstOfBoth) {
  const HybridSpgemm<double> h;
  for (const auto& entry : showcase_suite()) {
    const auto a = build_matrix<double>(entry);
    if (!entry.square) continue;
    SpgemmStats sh;
    h.multiply(a, a, &sh);
    EXPECT_GT(sh.sim_time_s, 0.0) << entry.name;
  }
}

}  // namespace
}  // namespace acs
