/// \file bench_fig8_memcompare.cpp
/// Reproduces Figure 8: memory consumption of AC-SpGEMM (helper structures,
/// used chunks, and over-allocation due to the simplistic pool estimate)
/// compared to RMerge, bhSparse and nsparse. Paper shape: nsparse needs
/// hardly any extra memory; AC-SpGEMM allocates similarly to
/// RMerge/bhSparse but uses only a fraction of it.

#include <iostream>

#include "baselines/bhsparse.hpp"
#include "baselines/nsparse_like.hpp"
#include "baselines/rmerge.hpp"
#include "core/acspgemm.hpp"
#include "matrix/transpose.hpp"
#include "suite/suite.hpp"
#include "suite/table.hpp"

int main() {
  using namespace acs;
  std::cout << "Figure 8: memory consumption (MB) — AC-SpGEMM helper / used "
               "chunks / over-allocation vs the other methods' temporary "
               "memory\n\n";

  TextTable table({"matrix", "AC-helper", "AC-used", "AC-overalloc", "RMerge",
                   "bhSparse", "nsparse"});
  CsvWriter csv("fig8_memcompare.csv");
  csv.write_row({"matrix", "ac_helper_mb", "ac_used_mb", "ac_overalloc_mb",
                 "rmerge_mb", "bhsparse_mb", "nsparse_mb"});

  const double mb = 1.0 / (1024.0 * 1024.0);
  for (const auto& entry : showcase_suite()) {
    const auto a = build_matrix<double>(entry);
    const auto b = entry.square ? a : transpose(a);

    SpgemmStats ac, rm, bh, ns;
    multiply(a, b, Config{}, &ac);
    rmerge_multiply(a, b, &rm);
    bhsparse_multiply(a, b, &bh);
    nsparse_multiply(a, b, &ns);

    auto f = [&](std::size_t bytes, int prec = 2) {
      return TextTable::num(static_cast<double>(bytes) * mb, prec);
    };
    table.add_row({entry.name, f(ac.helper_bytes), f(ac.pool_used_bytes),
                   f(ac.pool_bytes - ac.pool_used_bytes, 1),
                   f(rm.pool_bytes + rm.helper_bytes),
                   f(bh.pool_bytes + bh.helper_bytes),
                   f(ns.pool_bytes + ns.helper_bytes)});
    csv.write_row({entry.name, f(ac.helper_bytes), f(ac.pool_used_bytes),
                   f(ac.pool_bytes - ac.pool_used_bytes),
                   f(rm.pool_bytes + rm.helper_bytes),
                   f(bh.pool_bytes + bh.helper_bytes),
                   f(ns.pool_bytes + ns.helper_bytes)});
  }
  std::cout << table.str();
  std::cout << "\nwrote fig8_memcompare.csv\n";
  return 0;
}
