
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bhsparse.cpp" "src/baselines/CMakeFiles/acs_baselines.dir/bhsparse.cpp.o" "gcc" "src/baselines/CMakeFiles/acs_baselines.dir/bhsparse.cpp.o.d"
  "/root/repo/src/baselines/cusparse_like.cpp" "src/baselines/CMakeFiles/acs_baselines.dir/cusparse_like.cpp.o" "gcc" "src/baselines/CMakeFiles/acs_baselines.dir/cusparse_like.cpp.o.d"
  "/root/repo/src/baselines/esc_global.cpp" "src/baselines/CMakeFiles/acs_baselines.dir/esc_global.cpp.o" "gcc" "src/baselines/CMakeFiles/acs_baselines.dir/esc_global.cpp.o.d"
  "/root/repo/src/baselines/kokkos_like.cpp" "src/baselines/CMakeFiles/acs_baselines.dir/kokkos_like.cpp.o" "gcc" "src/baselines/CMakeFiles/acs_baselines.dir/kokkos_like.cpp.o.d"
  "/root/repo/src/baselines/nsparse_like.cpp" "src/baselines/CMakeFiles/acs_baselines.dir/nsparse_like.cpp.o" "gcc" "src/baselines/CMakeFiles/acs_baselines.dir/nsparse_like.cpp.o.d"
  "/root/repo/src/baselines/rmerge.cpp" "src/baselines/CMakeFiles/acs_baselines.dir/rmerge.cpp.o" "gcc" "src/baselines/CMakeFiles/acs_baselines.dir/rmerge.cpp.o.d"
  "/root/repo/src/baselines/spa_gustavson.cpp" "src/baselines/CMakeFiles/acs_baselines.dir/spa_gustavson.cpp.o" "gcc" "src/baselines/CMakeFiles/acs_baselines.dir/spa_gustavson.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matrix/CMakeFiles/acs_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/acs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
