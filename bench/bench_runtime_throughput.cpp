/// \file bench_runtime_throughput.cpp
/// Throughput of the batched execution engine (src/runtime) against a naive
/// `acs::multiply` loop — the perf trajectory of the runtime layer. Two
/// workloads:
///  * repeated-pattern: an AMG-like batch, every job multiplying matrices
///    with the identical sparsity structure (values differ per job). This
///    is where the plan cache + pool arena pay: warm runs skip global load
///    balancing, start from the learned pool size (zero restarts) and reuse
///    recycled pool capacity.
///  * mixed-pattern: four structural regimes interleaved, stressing LRU
///    behaviour and per-pattern convergence.
/// The pool is deliberately under-provisioned (tight estimate) so the cold
/// runs pay the paper's restart protocol and the warm runs demonstrate the
/// feedback loop. Each workload additionally runs on a feedback-tuned
/// engine (EngineConfig::tuning = kFeedback) and reports the tuned-warm vs.
/// default-warm speedup — the auto-tuner's marginal contribution; the
/// dedicated tuner study with the gated speedup target is bench_autotune.
/// A native lane then replays the mixed workload on two engines differing
/// only in `EngineConfig::arch` — SimTitanXp vs. NativeCpu (docs/
/// BACKENDS.md) — and gates native warm throughput at >= 2x the simulated
/// engine's: the native backend skips all cost-model accounting and runs
/// wall-clock-lean ESC/merge primitives, so its only job is to be fast.
/// Emits JSON (stdout + bench_out/bench_runtime_throughput.json) with
/// jobs/s, plan-cache hit rate, pool reuse bytes, restart counts and the
/// per-stage simulated-time breakdown aggregated over each batch's jobs
/// (src/trace metrics snapshots).
///
/// Run:  ./bench_runtime_throughput [jobs_per_batch] [engine_workers]
///                                  [--trace-json out.json] [--smoke]
///                                  [--native]
///   --trace-json re-runs a few repeated-pattern jobs on an engine with
///   collect_job_traces on and writes the first job's span tree as Chrome
///   trace_event JSON. The throughput gate below always measures the
///   untraced engine — tracing must stay off the benchmarked path.
///   --smoke runs only the estimator gates (CI tier-1): mixed-pattern naive
///   cold runs with sampled pool sizing (Config::pool_sizing = kSampled)
///   must cut restarts from the closed-form guess's ~80 to ≤8 with
///   bit-identical outputs, and the estimated pool must sit within [1x, 4x]
///   of the observed high-water mark for ≥90% of the suite's jobs.
///   --native runs only the native-vs-sim lane and its 2x gate (the CI
///   NativeCpu lane).

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "arch/arch_id.hpp"
#include "core/acspgemm.hpp"
#include "matrix/coo.hpp"
#include "matrix/generators.hpp"
#include "suite/bench_runner.hpp"
#include "trace/exporters.hpp"

namespace {

using Pair = std::pair<acs::Csr<double>, acs::Csr<double>>;

/// Aggregation prolongation (as in examples/amg_galerkin.cpp): every 4
/// consecutive fine unknowns map to one coarse unknown.
acs::Csr<double> prolongation(acs::index_t fine) {
  acs::Coo<double> p;
  p.rows = fine;
  p.cols = acs::divup<acs::index_t>(fine, 4);
  for (acs::index_t i = 0; i < fine; ++i) p.push(i, i / 4, 1.0);
  return p.to_csr();
}

/// `count` jobs over one sparsity structure; values scaled per job so only
/// the structure repeats, exactly the AMG setup-per-timestep pattern.
std::vector<Pair> repeated_pattern_batch(std::size_t count) {
  const auto a = acs::gen_stencil_2d<double>(64, 64, 5);
  const auto p = prolongation(a.rows);
  std::vector<Pair> pairs;
  pairs.reserve(count);
  for (std::size_t j = 0; j < count; ++j) {
    auto aj = a;
    const double scale = 1.0 + 0.01 * static_cast<double>(j);
    for (auto& v : aj.values) v *= scale;
    pairs.emplace_back(std::move(aj), p);
  }
  return pairs;
}

std::vector<Pair> mixed_pattern_batch(std::size_t count) {
  std::vector<Pair> pool;
  const auto s = acs::gen_stencil_2d<double>(48, 48, 11);
  pool.emplace_back(s, s);
  const auto g = acs::gen_powerlaw<double>(1500, 1500, 6.0, 1.6, 300, 12);
  pool.emplace_back(g, g);
  const auto u = acs::gen_uniform_random<double>(1200, 1200, 8.0, 2.0, 13);
  pool.emplace_back(u, u);
  const auto d = acs::gen_block_dense<double>(600, 600, 16, 3, 14);
  pool.emplace_back(d, d);

  std::vector<Pair> pairs;
  pairs.reserve(count);
  for (std::size_t j = 0; j < count; ++j) pairs.push_back(pool[j % pool.size()]);
  return pairs;
}

/// Tight pool estimate: cold runs restart, warm runs run off the learned
/// size (the bench_restart_sweep regime applied to batching).
acs::Config bench_config() {
  acs::Config cfg;
  cfg.pool_lower_bound_bytes = 8 << 10;
  cfg.pool_estimate_factor = 0.02;
  return cfg;
}

void emit(std::ostream& os, const acs::BatchBenchResult& r, bool last) {
  os << "    \"" << r.label << "\": {"
     << "\"jobs\": " << r.jobs << ", \"wall_s\": " << r.wall_s
     << ", \"jobs_per_s\": " << r.jobs_per_s
     << ", \"sim_time_s\": " << r.sim_time_s
     << ", \"restarts\": " << r.restarts
     << ", \"plan_hit_rate\": " << r.plan_hit_rate
     << ", \"pool_reused_bytes\": " << r.pool_reused_bytes
     << ", \"pool_fresh_bytes\": " << r.pool_fresh_bytes
     << ", \"stage_sim_s\": {";
  for (std::size_t i = 0; i < acs::trace::kNumStages; ++i)
    os << (i ? ", " : "") << "\"" << acs::trace::kStageNames[i]
       << "\": " << r.metrics.stage_sim_time_s[i];
  os << "}}" << (last ? "\n" : ",\n");
}

struct BatchReport {
  acs::BatchBenchResult naive, cold, warm, tuned_warm;

  [[nodiscard]] double warm_speedup() const {
    return naive.jobs_per_s > 0.0 ? warm.jobs_per_s / naive.jobs_per_s : 0.0;
  }
  /// Feedback-tuned engine vs. the default-config engine, both warm — the
  /// tuner's marginal contribution on top of plan caching. This workload is
  /// double-valued, so the tuner's candidate grid is scratchpad-capped at
  /// nnz_per_block = 512 (see docs/ARCHITECTURE.md); bench_autotune runs
  /// the float workload where the full grid is feasible.
  [[nodiscard]] double tuned_speedup() const {
    return warm.jobs_per_s > 0.0 ? tuned_warm.jobs_per_s / warm.jobs_per_s
                                 : 0.0;
  }
};

BatchReport run_workload(const std::vector<Pair>& pairs, unsigned workers) {
  const acs::Config cfg = bench_config();
  BatchReport rep;
  rep.naive = acs::run_naive_batch(pairs, cfg, "naive");

  acs::runtime::EngineConfig ec;
  ec.workers = workers;
  acs::runtime::Engine<double> engine(ec);
  rep.cold = acs::run_engine_batch(engine, pairs, cfg, "engine_cold");
  rep.warm = acs::run_engine_batch(engine, pairs, cfg, "engine_warm");

  acs::runtime::EngineConfig tuned_ec = ec;
  tuned_ec.tuning = acs::tune::TuningMode::kFeedback;
  acs::runtime::Engine<double> tuned(tuned_ec);
  acs::run_engine_batch(tuned, pairs, cfg, "tuned_cold");  // warm-up + tune
  rep.tuned_warm = acs::run_engine_batch(tuned, pairs, cfg, "tuned_warm");
  return rep;
}

void emit_workload(std::ostream& os, const std::string& name,
                   const BatchReport& rep, bool last) {
  os << "  \"" << name << "\": {\n";
  emit(os, rep.naive, false);
  emit(os, rep.cold, false);
  emit(os, rep.warm, false);
  emit(os, rep.tuned_warm, false);
  os << "    \"warm_speedup_vs_naive\": " << rep.warm_speedup() << ",\n"
     << "    \"tuned_speedup_vs_default\": " << rep.tuned_speedup() << "\n"
     << "  }" << (last ? "\n" : ",\n");
}

/// Native-vs-sim A/B on the mixed workload: two engines identical except
/// for `EngineConfig::arch`. Both are measured warm (second batch), where
/// plan caching has stripped the setup work both backends share and what
/// remains is block execution — exactly the work the native backend
/// replaces with wall-clock-lean primitives. `native_threads = 1` keeps
/// the comparison per-core honest: engine workers already saturate the
/// host, so per-job threading would only add oversubscription noise.
struct NativeReport {
  acs::BatchBenchResult sim_warm, native_warm;
  bool identical = false;  ///< native outputs bit-identical to sim's

  [[nodiscard]] double speedup() const {
    return sim_warm.jobs_per_s > 0.0
               ? native_warm.jobs_per_s / sim_warm.jobs_per_s
               : 0.0;
  }
};

NativeReport run_native_lane(const std::vector<Pair>& pairs,
                             unsigned workers) {
  const acs::Config cfg = bench_config();
  NativeReport rep;

  acs::runtime::EngineConfig sim_ec;
  sim_ec.workers = workers;
  acs::runtime::Engine<double> sim(sim_ec);
  acs::run_engine_batch(sim, pairs, cfg, "sim_cold");
  rep.sim_warm = acs::run_engine_batch(sim, pairs, cfg, "sim_warm");

  acs::runtime::EngineConfig nat_ec = sim_ec;
  nat_ec.arch = acs::arch::ArchId::kNativeCpu;
  nat_ec.native_threads = 1;
  acs::runtime::Engine<double> native(nat_ec);
  acs::run_engine_batch(native, pairs, cfg, "native_cold");
  rep.native_warm = acs::run_engine_batch(native, pairs, cfg, "native_warm");

  // The speed must not come from different answers: spot-check the lane's
  // distinct structures through both engines (NativeCpu's bit-identity is
  // property-tested across the generator sweep in tests/test_arch.cpp).
  rep.identical = true;
  for (std::size_t j = 0; j < std::min<std::size_t>(pairs.size(), 4); ++j) {
    const auto rs = sim.submit(pairs[j].first, pairs[j].second, cfg).result().c;
    const auto rn =
        native.submit(pairs[j].first, pairs[j].second, cfg).result().c;
    rep.identical = rep.identical && rs.equals_exact(rn);
  }
  return rep;
}

void emit_native(std::ostream& os, const NativeReport& rep, bool last) {
  os << "  \"native_lane\": {\n";
  emit(os, rep.sim_warm, false);
  emit(os, rep.native_warm, false);
  os << "    \"native_speedup_vs_sim\": " << rep.speedup() << ",\n"
     << "    \"outputs_bit_identical\": " << (rep.identical ? "true" : "false")
     << "\n  }" << (last ? "\n" : ",\n");
}

/// The native lane's gate (also run standalone via --native): NativeCpu
/// warm throughput >= 2x the simulated engine's, bit-identical outputs.
int gate_native(const NativeReport& rep) {
  const bool ok = rep.speedup() >= 2.0 && rep.identical;
  std::cerr << "native-vs-sim warm speedup (mixed): " << rep.speedup()
            << "x, outputs bit-identical: " << (rep.identical ? "yes" : "NO")
            << (ok ? "  [ok]" : "  [BELOW TARGET]") << "\n";
  return ok ? 0 : 1;
}

/// The estimator acceptance gates, cheap enough for every CI run: naive
/// cold multiplications only, no engine. Returns the process exit code.
int run_smoke(std::size_t jobs) {
  const acs::Config closed = bench_config();
  acs::Config sampled = closed;
  sampled.pool_sizing = acs::PoolSizing::kSampled;

  // Gate 1 — restart reduction on the mixed-pattern workload: identical
  // under-provisioned lower bound, only the cold sizing differs. The
  // restart protocol is bit-stable, so the outputs must not move at all.
  std::size_t closed_restarts = 0, sampled_restarts = 0;
  bool identical = true;
  std::vector<double> ratios;  // estimate / observed high-water, per job
  const auto run_pairs = [&](const std::vector<Pair>& pairs) {
    for (const auto& [a, b] : pairs) {
      acs::SpgemmStats sc, ss;
      const auto c1 = acs::multiply(a, b, closed, &sc);
      const auto c2 = acs::multiply(a, b, sampled, &ss);
      closed_restarts += static_cast<std::size_t>(std::max(0, sc.restarts));
      sampled_restarts += static_cast<std::size_t>(std::max(0, ss.restarts));
      identical = identical && c1.equals_exact(c2);
      if (ss.pool_used_bytes > 0)
        ratios.push_back(static_cast<double>(ss.pool_estimate_bytes) /
                         static_cast<double>(ss.pool_used_bytes));
    }
  };
  run_pairs(mixed_pattern_batch(jobs));
  const std::size_t mixed_closed = closed_restarts;
  const std::size_t mixed_sampled = sampled_restarts;
  // Gate 2 — estimate accuracy across the bench suite (both workloads):
  // the estimator-sized pool within [1x, 4x] of the observed high-water
  // mark for at least 90% of jobs.
  run_pairs(repeated_pattern_batch(std::min<std::size_t>(jobs, 8)));
  std::size_t in_range = 0;
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    if (ratios[i] >= 1.0 && ratios[i] <= 4.0)
      ++in_range;
    else
      std::cerr << "  job " << i << " estimate/high-water ratio " << ratios[i]
                << " outside [1, 4]\n";
  }
  const double frac =
      ratios.empty() ? 0.0
                     : static_cast<double>(in_range) /
                           static_cast<double>(ratios.size());

  const bool restarts_ok = mixed_sampled <= 8;
  const bool ratio_ok = frac >= 0.9;
  std::cerr << "mixed-pattern cold restarts: closed-form=" << mixed_closed
            << " sampled=" << mixed_sampled
            << (restarts_ok ? "  [ok]" : "  [ABOVE TARGET]") << "\n"
            << "outputs bit-identical: " << (identical ? "yes" : "NO")
            << "\nestimate/high-water within [1x,4x]: " << in_range << "/"
            << ratios.size() << (ratio_ok ? "  [ok]" : "  [BELOW TARGET]")
            << "\n";
  return restarts_ok && ratio_ok && identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  bool smoke = false;
  bool native_only = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--trace-json" && i + 1 < argc)
      trace_path = argv[++i];
    else if (std::string(argv[i]) == "--smoke")
      smoke = true;
    else if (std::string(argv[i]) == "--native")
      native_only = true;
    else
      positional.push_back(argv[i]);
  }
  if (smoke)
    return run_smoke(positional.empty()
                         ? 16
                         : static_cast<std::size_t>(std::atoll(positional[0])));
  const std::size_t jobs =
      positional.size() > 0 ? static_cast<std::size_t>(std::atoll(positional[0])) : 32;
  const unsigned workers =
      positional.size() > 1
          ? static_cast<unsigned>(std::atoi(positional[1]))
          : std::min(4u, std::max(1u, std::thread::hardware_concurrency()));

  if (native_only)
    return gate_native(run_native_lane(mixed_pattern_batch(jobs), workers));

  const BatchReport repeated = run_workload(repeated_pattern_batch(jobs), workers);
  const BatchReport mixed = run_workload(mixed_pattern_batch(jobs), workers);
  const NativeReport native = run_native_lane(mixed_pattern_batch(jobs), workers);

  std::ostringstream json;
  json << "{\n  \"bench\": \"runtime_throughput\", \"jobs_per_batch\": " << jobs
       << ", \"engine_workers\": " << workers << ",\n";
  emit_workload(json, "repeated_pattern", repeated, false);
  emit_workload(json, "mixed_pattern", mixed, false);
  emit_native(json, native, true);
  json << "}\n";

  std::cout << json.str();
  std::ofstream(acs::bench_out_path("bench_runtime_throughput.json"))
      << json.str();

  if (!trace_path.empty()) {
    // Separate traced run — never the one the gate below measures.
    acs::runtime::EngineConfig ec;
    ec.workers = workers;
    ec.collect_job_traces = true;
    acs::runtime::Engine<double> traced(ec);
    const auto results =
        traced.multiply_batch(repeated_pattern_batch(4), bench_config());
    if (!results.empty() && results.front().trace) {
      std::ofstream(trace_path)
          << acs::trace::to_chrome_json(*results.front().trace);
      std::cerr << "wrote " << trace_path << " (first traced job, Chrome "
                << "trace_event JSON — open in Perfetto)\n";
    }
  }

  // The PR's acceptance criteria, checked where the numbers are produced:
  // warm engine >= 1.5x naive jobs/s with zero restarts after warm-up, and
  // the native lane's 2x gate.
  const bool ok =
      repeated.warm_speedup() >= 1.5 && repeated.warm.restarts == 0;
  std::cerr << "repeated-pattern warm speedup: " << repeated.warm_speedup()
            << "x, warm restarts: " << repeated.warm.restarts
            << (ok ? "  [ok]" : "  [BELOW TARGET]") << "\n";
  const int native_rc = gate_native(native);
  return ok && native_rc == 0 ? 0 : 1;
}
