#pragma once
/// \file spa_gustavson.hpp
/// Sequential Gustavson SpGEMM with a dense sparse-accumulator (SPA) — the
/// classical CPU algorithm [Gustavson 1978] all parallel methods descend
/// from, and this repository's correctness oracle. Two passes: a symbolic
/// pass counts nnz per output row, a numeric pass fills the entries.

#include "baselines/algorithm.hpp"

namespace acs {

/// Plain-function form used by tests and other baselines.
template <class T>
Csr<T> spa_multiply(const Csr<T>& a, const Csr<T>& b,
                    SpgemmStats* stats = nullptr);

template <class T>
class SpaGustavson final : public SpgemmAlgorithm<T> {
 public:
  [[nodiscard]] std::string name() const override { return "SPA-CPU"; }
  [[nodiscard]] bool bit_stable() const override { return true; }
  Csr<T> multiply(const Csr<T>& a, const Csr<T>& b,
                  SpgemmStats* stats) const override {
    return spa_multiply(a, b, stats);
  }
};

extern template Csr<float> spa_multiply(const Csr<float>&, const Csr<float>&,
                                        SpgemmStats*);
extern template Csr<double> spa_multiply(const Csr<double>&,
                                         const Csr<double>&, SpgemmStats*);
extern template class SpaGustavson<float>;
extern template class SpaGustavson<double>;

}  // namespace acs
