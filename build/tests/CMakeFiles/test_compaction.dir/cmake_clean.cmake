file(REMOVE_RECURSE
  "CMakeFiles/test_compaction.dir/test_compaction.cpp.o"
  "CMakeFiles/test_compaction.dir/test_compaction.cpp.o.d"
  "test_compaction"
  "test_compaction.pdb"
  "test_compaction[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
