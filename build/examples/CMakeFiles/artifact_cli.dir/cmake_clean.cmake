file(REMOVE_RECURSE
  "CMakeFiles/artifact_cli.dir/artifact_cli.cpp.o"
  "CMakeFiles/artifact_cli.dir/artifact_cli.cpp.o.d"
  "artifact_cli"
  "artifact_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/artifact_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
