
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/acspgemm.cpp" "src/core/CMakeFiles/acs_core.dir/acspgemm.cpp.o" "gcc" "src/core/CMakeFiles/acs_core.dir/acspgemm.cpp.o.d"
  "/root/repo/src/core/esc_block.cpp" "src/core/CMakeFiles/acs_core.dir/esc_block.cpp.o" "gcc" "src/core/CMakeFiles/acs_core.dir/esc_block.cpp.o.d"
  "/root/repo/src/core/merge.cpp" "src/core/CMakeFiles/acs_core.dir/merge.cpp.o" "gcc" "src/core/CMakeFiles/acs_core.dir/merge.cpp.o.d"
  "/root/repo/src/core/work_distribution.cpp" "src/core/CMakeFiles/acs_core.dir/work_distribution.cpp.o" "gcc" "src/core/CMakeFiles/acs_core.dir/work_distribution.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matrix/CMakeFiles/acs_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/acs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
