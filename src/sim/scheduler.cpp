#include "sim/scheduler.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace acs::sim {

BlockScheduler::BlockScheduler(unsigned threads) : threads_(threads) {
  if (threads_ == 0) threads_ = std::max(1u, std::thread::hardware_concurrency());
}

void BlockScheduler::for_each_block(
    std::size_t num_blocks, const std::function<void(std::size_t)>& body) const {
  if (num_blocks == 0) return;
  if (threads_ <= 1 || num_blocks == 1) {
    for (std::size_t b = 0; b < num_blocks; ++b) body(b);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t b = next.fetch_add(1, std::memory_order_relaxed);
      if (b >= num_blocks) return;
      try {
        body(b);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  const unsigned n = std::min<std::size_t>(threads_, num_blocks);
  pool.reserve(n);
  for (unsigned t = 0; t < n; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace acs::sim
