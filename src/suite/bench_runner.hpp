#pragma once
/// \file bench_runner.hpp
/// Shared driver for the table/figure benchmark binaries: builds a suite
/// entry's operands (A·A for square matrices, A·Aᵀ with a precomputed
/// transpose otherwise, exactly as in the paper's Section 4), runs one
/// algorithm, and returns the measurements all tables are built from.

#include <string>
#include <utility>
#include <vector>

#include "baselines/algorithm.hpp"
#include "runtime/engine.hpp"
#include "suite/suite.hpp"

namespace acs {

struct BenchMeasurement {
  std::string matrix;
  std::string algorithm;
  std::string precision;  // "float" / "double"
  offset_t temp_products = 0;
  offset_t nnz_a = 0;
  offset_t nnz_c = 0;
  double avg_row_len_a = 0.0;
  double gflops = 0.0;
  double sim_time_s = 0.0;
  SpgemmStats stats;
};

/// Run `algo` on `entry` with value type T.
template <class T>
BenchMeasurement run_benchmark(const SuiteEntry& entry,
                               const SpgemmAlgorithm<T>& algo);

/// Run the whole algorithm list on one entry.
template <class T>
std::vector<BenchMeasurement> run_benchmarks(
    const SuiteEntry& entry,
    const std::vector<std::unique_ptr<SpgemmAlgorithm<T>>>& algos);

/// Harmonic mean (the paper's Table 1 aggregation of per-matrix speedups).
double harmonic_mean(const std::vector<double>& v);

/// "bench_out/<name>": benchmark and example artifacts (JSON reports,
/// tune-cache binaries, exported matrices) all land in one gitignored
/// directory next to the working directory instead of littering the repo
/// root. Creates the directory on first use; returns the relative path.
[[nodiscard]] std::string bench_out_path(const std::string& name);

/// Wall-clock throughput measurement of a batch of multiplications — the
/// unit the runtime Engine benchmarks are built from. Wall time is host
/// time (the quantity batching actually improves), sim_time_s sums the
/// per-job simulated times.
struct BatchBenchResult {
  std::string label;
  std::size_t jobs = 0;
  double wall_s = 0.0;
  double jobs_per_s = 0.0;
  double sim_time_s = 0.0;            ///< summed over jobs
  std::size_t restarts = 0;           ///< summed over jobs
  double plan_hit_rate = 0.0;         ///< engine batches only
  std::size_t pool_reused_bytes = 0;  ///< engine batches only
  std::size_t pool_fresh_bytes = 0;   ///< engine batches only
  std::size_t tuned_jobs = 0;         ///< jobs that ran with a tuner overlay
  /// Aggregated per-job metrics (stage sim-time breakdown, pool high-water
  /// marks; trace counters when the engine ran with collect_job_traces).
  trace::MetricsSnapshot metrics;
};

/// Run every (A,B) pair through the engine and measure throughput. Plan
/// cache and pool arena state carry over between calls, so calling this
/// twice with the same pairs measures cold and warm behaviour.
template <class T>
BatchBenchResult run_engine_batch(
    runtime::Engine<T>& engine,
    const std::vector<std::pair<Csr<T>, Csr<T>>>& pairs, const Config& cfg,
    const std::string& label);

/// Baseline: the same pairs through a sequential `acs::multiply` loop, each
/// call doing its own setup and pool allocation.
template <class T>
BatchBenchResult run_naive_batch(
    const std::vector<std::pair<Csr<T>, Csr<T>>>& pairs, const Config& cfg,
    const std::string& label);

extern template BatchBenchResult run_engine_batch(
    runtime::Engine<float>&,
    const std::vector<std::pair<Csr<float>, Csr<float>>>&, const Config&,
    const std::string&);
extern template BatchBenchResult run_engine_batch(
    runtime::Engine<double>&,
    const std::vector<std::pair<Csr<double>, Csr<double>>>&, const Config&,
    const std::string&);
extern template BatchBenchResult run_naive_batch(
    const std::vector<std::pair<Csr<float>, Csr<float>>>&, const Config&,
    const std::string&);
extern template BatchBenchResult run_naive_batch(
    const std::vector<std::pair<Csr<double>, Csr<double>>>&, const Config&,
    const std::string&);
extern template BenchMeasurement run_benchmark(const SuiteEntry&,
                                               const SpgemmAlgorithm<float>&);
extern template BenchMeasurement run_benchmark(const SuiteEntry&,
                                               const SpgemmAlgorithm<double>&);
extern template std::vector<BenchMeasurement> run_benchmarks(
    const SuiteEntry&,
    const std::vector<std::unique_ptr<SpgemmAlgorithm<float>>>&);
extern template std::vector<BenchMeasurement> run_benchmarks(
    const SuiteEntry&,
    const std::vector<std::unique_ptr<SpgemmAlgorithm<double>>>&);

}  // namespace acs
