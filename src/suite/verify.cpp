#include "suite/verify.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace acs {

std::string VerifyReport::summary() const {
  std::ostringstream out;
  if (ok()) {
    out << "OK (max rel error " << max_rel_error << ", Frobenius error "
        << frobenius_error << ")";
  } else if (!structure_matches) {
    out << "STRUCTURE MISMATCH";
    if (first_bad_row >= 0)
      out << " at row " << first_bad_row << ", position " << first_bad_position;
  } else {
    out << "VALUE MISMATCH (max rel error " << max_rel_error
        << ", Frobenius error " << frobenius_error << ")";
  }
  return out.str();
}

template <class T>
VerifyReport verify_product(const Csr<T>& got, const Csr<T>& want,
                            double rel_tol) {
  VerifyReport r;
  if (got.rows != want.rows || got.cols != want.cols) return r;

  // Structural comparison with first-mismatch localization.
  for (index_t row = 0; row < got.rows; ++row) {
    const index_t gb = got.row_ptr[usize(row)], ge = got.row_ptr[usize(row) + 1];
    const index_t wb = want.row_ptr[usize(row)], we = want.row_ptr[usize(row) + 1];
    if (ge - gb != we - wb) {
      r.first_bad_row = row;
      r.first_bad_position = std::min(ge - gb, we - wb);
      return r;
    }
    for (index_t k = 0; k < ge - gb; ++k) {
      if (got.col_idx[static_cast<std::size_t>(gb + k)] !=
          want.col_idx[static_cast<std::size_t>(wb + k)]) {
        r.first_bad_row = row;
        r.first_bad_position = k;
        return r;
      }
    }
  }
  r.structure_matches = true;

  double frob = 0.0;
  for (std::size_t i = 0; i < got.values.size(); ++i) {
    const double g = static_cast<double>(got.values[i]);
    const double w = static_cast<double>(want.values[i]);
    const double diff = std::abs(g - w);
    frob += diff * diff;
    const double scale = std::max({std::abs(g), std::abs(w), 1.0});
    r.max_rel_error = std::max(r.max_rel_error, diff / scale);
  }
  r.frobenius_error = std::sqrt(frob);
  r.values_match = r.max_rel_error <= rel_tol;
  return r;
}

template VerifyReport verify_product(const Csr<float>&, const Csr<float>&, double);
template VerifyReport verify_product(const Csr<double>&, const Csr<double>&, double);

}  // namespace acs
