#include "core/chunk.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace acs {
namespace {

TEST(ChunkOrder, LexicographicOnBlockThenCounter) {
  EXPECT_LT((ChunkOrder{1, 5}), (ChunkOrder{2, 0}));
  EXPECT_LT((ChunkOrder{1, 5}), (ChunkOrder{1, 6}));
  EXPECT_EQ((ChunkOrder{3, 3}), (ChunkOrder{3, 3}));
}

TEST(Chunk, ByteSizeRegular) {
  Chunk<double> c;
  c.rows = {0, 1};
  c.row_offsets = {0, 2, 3};
  c.cols = {1, 2, 3};
  c.vals = {1.0, 2.0, 3.0};
  EXPECT_EQ(c.byte_size(), 32 + 2 * sizeof(index_t) + 3 * (sizeof(index_t) + sizeof(double)));
  EXPECT_EQ(c.entry_count(), 3);
}

TEST(Chunk, ByteSizeLongRowPointer) {
  Chunk<float> c;
  c.is_long_row = true;
  c.long_len = 100000;
  EXPECT_EQ(c.byte_size(), 48u);  // header only, no payload
  EXPECT_EQ(c.entry_count(), 100000);
}

TEST(ChunkPool, AllocatesUpToCapacity) {
  ChunkPool pool(100);
  EXPECT_TRUE(pool.try_allocate(60));
  EXPECT_TRUE(pool.try_allocate(40));
  EXPECT_EQ(pool.used(), 100u);
}

TEST(ChunkPool, RejectsOverflowWithoutLeaking) {
  ChunkPool pool(100);
  EXPECT_TRUE(pool.try_allocate(60));
  EXPECT_FALSE(pool.try_allocate(41));
  EXPECT_EQ(pool.used(), 60u);  // failed allocation rolled back
  EXPECT_TRUE(pool.try_allocate(40));
}

TEST(ChunkPool, GrowEnablesFurtherAllocation) {
  ChunkPool pool(10);
  EXPECT_FALSE(pool.try_allocate(11));
  pool.grow(20);
  EXPECT_EQ(pool.capacity(), 30u);
  EXPECT_TRUE(pool.try_allocate(11));
}

TEST(ChunkPool, ConcurrentAllocationNeverExceedsCapacity) {
  ChunkPool pool(1000);
  std::vector<std::thread> workers;
  std::atomic<int> granted{0};
  for (int t = 0; t < 8; ++t)
    workers.emplace_back([&] {
      for (int i = 0; i < 1000; ++i)
        if (pool.try_allocate(1)) granted++;
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(granted.load(), 1000);
  EXPECT_EQ(pool.used(), 1000u);
}

}  // namespace
}  // namespace acs
