# Empty compiler generated dependencies file for test_suite.
# This may be replaced when dependencies are built.
