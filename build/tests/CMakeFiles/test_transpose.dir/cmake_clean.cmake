file(REMOVE_RECURSE
  "CMakeFiles/test_transpose.dir/test_transpose.cpp.o"
  "CMakeFiles/test_transpose.dir/test_transpose.cpp.o.d"
  "test_transpose"
  "test_transpose.pdb"
  "test_transpose[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transpose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
