// Fixture: span begins that are RAII or provably paired in-function — the
// rule must stay silent.
using SpanId = int;

struct Session {
  SpanId begin_span(const char*);
  void end_span(SpanId, double = 0.0);
};

// RAII spelling: no raw begin_span at all.
struct Scoped {
  explicit Scoped(Session* s) : s_(s) { id_ = 0; }
  Session* s_;
  SpanId id_;
};

void paired_in_function(Session& s) {
  const SpanId id = s.begin_span("stage");
  // ... work ...
  s.end_span(id, 1.0);
}

void paired_on_both_paths(Session& s, bool fail) {
  const SpanId id = s.begin_span("stage");
  if (fail) {
    s.end_span(id);
    return;
  }
  s.end_span(id, 2.0);
}
