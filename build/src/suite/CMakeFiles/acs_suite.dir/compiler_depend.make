# Empty compiler generated dependencies file for acs_suite.
# This may be replaced when dependencies are built.
