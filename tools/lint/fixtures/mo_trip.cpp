// Fixture: memory-order arguments without a `// mo:` justification — the
// rule must flag all three sites (and not be fooled by the decoys).
#include <atomic>

std::atomic<int> counter{0};
std::atomic<int> flag{0};

int bare_load() {
  return counter.load(std::memory_order_relaxed);  // just a comment, no tag
}

void detached_comment() {
  // mo: this justification is detached by the blank line below it.

  counter.fetch_add(1, std::memory_order_acquire);
}

void string_decoy() {
  const char* s = "// mo: inside a string literal does not count";
  (void)s;
  flag.store(1, std::memory_order_release);
}
