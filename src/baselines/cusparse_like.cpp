#include "baselines/cusparse_like.hpp"

#include <algorithm>
#include <chrono>

#include "baselines/detail.hpp"
#include "baselines/hash_table.hpp"
#include "matrix/stats.hpp"
#include "sim/cost_model.hpp"

namespace acs {
namespace {

/// Primary scratchpad table size per row (fixed — no inspection).
constexpr std::size_t kPrimarySlots = 512;

}  // namespace

template <class T>
Csr<T> cusparse_like_multiply(const Csr<T>& a, const Csr<T>& b,
                              SpgemmStats* stats, std::uint64_t schedule_seed) {
  if (a.cols != b.rows)
    throw std::invalid_argument("cusparse_like: dimension mismatch");
  const auto t0 = std::chrono::steady_clock::now();
  const sim::DeviceConfig dev{};

  Csr<T> c;
  c.rows = a.rows;
  c.cols = b.cols;
  c.row_ptr.assign(static_cast<std::size_t>(a.rows) + 1, 0);
  std::vector<std::vector<index_t>> row_cols(static_cast<std::size_t>(a.rows));
  std::vector<std::vector<T>> row_vals(static_cast<std::size_t>(a.rows));

  std::vector<sim::MetricCounters> blocks;
  std::vector<baseline_detail::Product<T>> prods;
  std::size_t secondary_bytes = 0;
  sim::MetricCounters bm;
  std::size_t rows_in_block = 0;
  const std::size_t rows_per_block = 4;  // warp-per-row style grouping

  for (index_t r = 0; r < a.rows; ++r) {
    baseline_detail::gather_row_products(a, b, r, prods);
    if (prods.empty()) continue;
    baseline_detail::permute_schedule(prods, schedule_seed, r);

    // Primary table in scratchpad; on overflow, everything moves to a
    // secondary table in global memory (sized to the row's upper bound).
    const std::size_t upper =
        baseline_detail::next_pow2(2 * prods.size());
    const bool spills = upper > kPrimarySlots;
    baseline_detail::HashAccumulator<T> table(spills ? upper : kPrimarySlots);
    bool overflow = false;
    std::uint64_t probes = 0;
    for (const auto& p : prods) probes += table.accumulate(p.col, p.val, overflow);
    table.extract_sorted(row_cols[static_cast<std::size_t>(r)],
                         row_vals[static_cast<std::size_t>(r)]);
    c.row_ptr[static_cast<std::size_t>(r) + 1] =
        static_cast<index_t>(row_cols[static_cast<std::size_t>(r)].size());

    bm.hash_probes += 2 * probes;  // symbolic + numeric pass
    // Thread-per-row processing: loads from B are not coalesced across the
    // threads of a warp.
    bm.global_bytes_scattered += static_cast<std::uint64_t>(prods.size()) *
                                 (sizeof(index_t) + sizeof(T)) / 2;
    bm.global_bytes_coalesced += static_cast<std::uint64_t>(prods.size()) *
                                 (sizeof(index_t) + sizeof(T));
    bm.global_bytes_scattered +=
        32 * static_cast<std::uint64_t>(a.row_length(r));
    // The fixed-size primary table is initialized for every row, and the
    // warp-per-row processing pays fixed management work — per-row costs
    // that dominate on very sparse inputs.
    bm.scratch_ops += 2 * kPrimarySlots;
    bm.compute_ops += 800;
    if (spills) {
      // Secondary table probes go to global memory (partially cached).
      bm.global_bytes_coalesced += 2 * probes * (sizeof(index_t) + sizeof(T));
      bm.global_bytes_scattered += probes * sizeof(index_t);
      bm.hash_probes += 2 * probes;  // slow-path re-probing
      secondary_bytes += upper * (sizeof(index_t) + sizeof(T));
    } else {
      bm.scratch_ops += 2 * probes;
    }
    bm.flops += 2 * static_cast<std::uint64_t>(prods.size());
    const auto out_n = static_cast<std::uint64_t>(
        row_cols[static_cast<std::size_t>(r)].size());
    bm.compute_ops += out_n * 6;  // output sort
    bm.global_bytes_coalesced += out_n * (sizeof(index_t) + sizeof(T));

    if (++rows_in_block == rows_per_block) {
      blocks.push_back(bm);
      bm = {};
      rows_in_block = 0;
    }
  }
  if (rows_in_block > 0) blocks.push_back(bm);

  for (index_t r = 0; r < a.rows; ++r)
    c.row_ptr[usize(r) + 1] += c.row_ptr[usize(r)];
  for (index_t r = 0; r < a.rows; ++r) {
    c.col_idx.insert(c.col_idx.end(), row_cols[static_cast<std::size_t>(r)].begin(),
                     row_cols[static_cast<std::size_t>(r)].end());
    c.values.insert(c.values.end(), row_vals[static_cast<std::size_t>(r)].begin(),
                    row_vals[static_cast<std::size_t>(r)].end());
  }

  if (stats) {
    *stats = SpgemmStats{};
    stats->intermediate_products = intermediate_products(a, b);
    // Legacy csrgemm runs four kernels (size estimation, symbolic, numeric,
    // gather); the probe/traffic work above covers all of them, so the
    // extra passes contribute their launch overhead only.
    {
      const auto t = sim::schedule_blocks(blocks, dev);
      stats->stage_times_s.emplace_back("hash-passes", t.time_s);
      stats->sim_time_s += t.time_s;
      if (blocks.size() >= static_cast<std::size_t>(dev.num_sms))
        stats->multiprocessor_load =
            std::min(stats->multiprocessor_load, t.multiprocessor_load);
    }
    for (const char* pass :
         {"setup", "estimate", "symbolic", "gather", "compact"}) {
      stats->stage_times_s.emplace_back(pass, dev.kernel_launch_us * 1e-6);
      stats->sim_time_s += dev.kernel_launch_us * 1e-6;
    }
    for (const auto& m : blocks) stats->metrics += m;
    stats->pool_bytes = secondary_bytes;
    stats->pool_used_bytes = secondary_bytes;
    stats->helper_bytes = static_cast<std::size_t>(a.rows) * sizeof(index_t);
    stats->wall_time_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  return c;
}

template Csr<float> cusparse_like_multiply(const Csr<float>&,
                                           const Csr<float>&, SpgemmStats*,
                                           std::uint64_t);
template Csr<double> cusparse_like_multiply(const Csr<double>&,
                                            const Csr<double>&, SpgemmStats*,
                                            std::uint64_t);
template class CusparseLike<float>;
template class CusparseLike<double>;

}  // namespace acs
