/// \file bench_table1_speedup.cpp
/// Reproduces Table 1: relative speedup of AC-SpGEMM over each competing
/// method (min / max / harmonic mean), the percentage of matrices where the
/// competitor beats AC-SpGEMM, and the percentage where each method is the
/// overall fastest — split into highly sparse (a <= 42) and denser
/// matrices, for float and double. Paper shape: AC-SpGEMM dominates the
/// highly sparse split (best on ~95%), nsparse leads the denser split.

#include <algorithm>
#include <iostream>
#include <vector>

#include "suite/bench_runner.hpp"
#include "suite/registry.hpp"
#include "suite/table.hpp"

namespace {

template <class T>
void run_precision(const char* label) {
  using namespace acs;
  const auto algos = make_paper_algorithms<T>();
  const std::size_t n_algos = algos.size();

  struct Split {
    // speedups[alg][matrix]: AC time / alg time inverted -> alg time / AC.
    std::vector<std::vector<double>> speedups{
        std::vector<std::vector<double>>(6)};
    std::vector<int> better;   ///< matrices where alg beats AC
    std::vector<int> best;     ///< matrices where alg is overall fastest
    int total = 0;
    Split() : better(6, 0), best(6, 0) {}
  };
  Split sparse, dense;

  for (const auto& entry : full_suite()) {
    const auto results = run_benchmarks<T>(entry, algos);
    Split& split = is_highly_sparse(entry) ? sparse : dense;
    ++split.total;
    const double ac_time = results[0].sim_time_s;
    std::size_t fastest = 0;
    for (std::size_t i = 1; i < n_algos; ++i)
      if (results[i].sim_time_s < results[fastest].sim_time_s) fastest = i;
    split.best[fastest]++;
    for (std::size_t i = 1; i < n_algos; ++i) {
      split.speedups[i].push_back(results[i].sim_time_s / ac_time);
      if (results[i].sim_time_s < ac_time) split.better[i]++;
    }
  }

  for (const auto* side : {&sparse, &dense}) {
    const bool is_sparse = side == &sparse;
    std::cout << "Table 1 (" << label << ", "
              << (is_sparse ? "highly sparse a<=42" : "denser a>42") << ", "
              << side->total << " matrices)\n";
    TextTable table({"method", "min", "max", "h.mean", "better than AC",
                     "overall best"});
    for (std::size_t i = 1; i < n_algos; ++i) {
      const auto& s = side->speedups[i];
      const double mn = *std::min_element(s.begin(), s.end());
      const double mx = *std::max_element(s.begin(), s.end());
      table.add_row(
          {algos[i]->name(), TextTable::num(mn, 2), TextTable::num(mx, 2),
           TextTable::num(harmonic_mean(s), 2),
           TextTable::num(100.0 * side->better[i] / side->total, 0) + "%",
           TextTable::num(100.0 * side->best[i] / side->total, 0) + "%"});
    }
    table.add_row({"AC-SpGEMM", "-", "-", "-", "-",
                   TextTable::num(100.0 * side->best[0] / side->total, 0) +
                       "%"});
    std::cout << table.str() << "\n";
  }
}

}  // namespace

int main() {
  std::cout << "Table 1: speedup of AC-SpGEMM over competing approaches\n"
               "(speedup = competitor simulated time / AC-SpGEMM simulated "
               "time; >1 means AC-SpGEMM is faster)\n\n";
  run_precision<float>("float");
  run_precision<double>("double");
  return 0;
}
