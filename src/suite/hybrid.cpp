#include "suite/hybrid.hpp"

#include <algorithm>
#include <cmath>

#include "baselines/nsparse_like.hpp"
#include "core/acspgemm.hpp"
#include "matrix/stats.hpp"

namespace acs {

template <class T>
typename HybridSpgemm<T>::Choice HybridSpgemm<T>::choose(
    const Csr<T>& a, const Csr<T>& b) const {
  const double avg_a =
      static_cast<double>(a.nnz()) / std::max<index_t>(1, a.rows);
  const double avg_b =
      static_cast<double>(b.nnz()) / std::max<index_t>(1, b.rows);
  if (std::max(avg_a, avg_b) <= dense_threshold_) return Choice::AcSpgemm;

  // Estimated compaction: expected products per expected output entry
  // under the uniform-row model — the quantity the paper identifies as
  // ESC's breaking point ("the per-product cost is simply too high").
  const double products =
      static_cast<double>(a.nnz()) * avg_b;  // expectation over columns
  const double cols_b = std::max<double>(1.0, static_cast<double>(b.cols));
  const double p_b = avg_b / cols_b;
  const double est_nnz_c =
      p_b < 1e-12
          ? products
          : static_cast<double>(a.rows) * avg_b *
                (1.0 - std::pow(1.0 - p_b, avg_a)) / p_b;
  const double compaction = products / std::max(est_nnz_c, 1.0);
  return compaction >= compaction_threshold_ ? Choice::Hash
                                             : Choice::AcSpgemm;
}

template <class T>
Csr<T> HybridSpgemm<T>::multiply(const Csr<T>& a, const Csr<T>& b,
                                 SpgemmStats* stats) const {
  last_choice_ = choose(a, b);
  if (last_choice_ == Choice::Hash) return nsparse_multiply(a, b, stats);
  return acs::multiply(a, b, cfg_, stats);
}

template class HybridSpgemm<float>;
template class HybridSpgemm<double>;

}  // namespace acs
