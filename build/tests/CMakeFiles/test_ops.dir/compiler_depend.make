# Empty compiler generated dependencies file for test_ops.
# This may be replaced when dependencies are built.
