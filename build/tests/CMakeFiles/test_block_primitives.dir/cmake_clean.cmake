file(REMOVE_RECURSE
  "CMakeFiles/test_block_primitives.dir/test_block_primitives.cpp.o"
  "CMakeFiles/test_block_primitives.dir/test_block_primitives.cpp.o.d"
  "test_block_primitives"
  "test_block_primitives.pdb"
  "test_block_primitives[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_block_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
