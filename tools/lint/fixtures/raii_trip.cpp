// Trip fixture for raii-locks-only: naked lock/unlock and a predicate-less
// condition_variable wait (3 findings).
#include <condition_variable>
#include <mutex>

struct Naked {
  std::mutex m;
  std::condition_variable cv;
  bool done = false;

  void bad_lock() {
    m.lock();  // finding: naked .lock()
    done = true;
    m.unlock();  // finding: naked .unlock()
  }

  void bad_wait(std::unique_lock<std::mutex>& lk) {
    cv.wait(lk);  // finding: no predicate
  }
};
