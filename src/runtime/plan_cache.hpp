#pragma once
/// \file plan_cache.hpp
/// LRU cache of SpGEMM execution plans keyed by structure fingerprint.
/// Repeated-pattern workloads (AMG Galerkin chains, iterative graph
/// kernels) hit the cache and skip global load balancing and the memory
/// estimate; the learned pool size makes warm runs restart-free. Lookups
/// copy the plan out and `store` writes the refreshed plan back, so two
/// jobs with the same pattern can run concurrently without serializing on
/// a shared plan object. Thread-safe; all operations take one internal
/// mutex (plans are small — a blockRowStarts table plus a few counters).

#include <cstddef>
#include <list>
#include <mutex>
#include <unordered_map>

#include "core/plan.hpp"
#include "runtime/fingerprint.hpp"

namespace acs::runtime {

class PlanCache {
 public:
  /// `capacity` = maximum cached plans; at least 1.
  explicit PlanCache(std::size_t capacity = 64);

  /// Copy the cached plan for `key` into `plan` and mark the entry
  /// most-recently-used. Returns false (and counts a miss) when absent.
  bool lookup(const Fingerprint& key, SpgemmPlan& plan);

  /// Insert or refresh the plan for `key` (moves `plan` in), evicting the
  /// least-recently-used entry beyond capacity.
  void store(const Fingerprint& key, SpgemmPlan plan);

  struct Counters {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t insertions = 0;
    std::size_t refreshes = 0;
    std::size_t evictions = 0;

    [[nodiscard]] double hit_rate() const {
      const std::size_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  [[nodiscard]] Counters counters() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  void clear();

 private:
  struct Entry {
    Fingerprint key;
    SpgemmPlan plan;
  };

  mutable std::mutex m_;
  std::size_t capacity_;
  /// Most-recently-used at the front.
  std::list<Entry> lru_;
  std::unordered_map<Fingerprint, std::list<Entry>::iterator, FingerprintHash>
      index_;
  Counters counters_;
};

}  // namespace acs::runtime
