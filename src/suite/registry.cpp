#include "suite/registry.hpp"

#include "baselines/bhsparse.hpp"
#include "baselines/cusparse_like.hpp"
#include "baselines/kokkos_like.hpp"
#include "baselines/nsparse_like.hpp"
#include "baselines/rmerge.hpp"
#include "core/acspgemm.hpp"

namespace acs {

template <class T>
Csr<T> AcSpgemmAlgorithm<T>::multiply(const Csr<T>& a, const Csr<T>& b,
                                      SpgemmStats* stats) const {
  return acs::multiply(a, b, cfg_, stats);
}

template <class T>
std::vector<std::unique_ptr<SpgemmAlgorithm<T>>> make_paper_algorithms(
    const Config& ac_config) {
  std::vector<std::unique_ptr<SpgemmAlgorithm<T>>> algos;
  algos.push_back(std::make_unique<AcSpgemmAlgorithm<T>>(ac_config));
  algos.push_back(std::make_unique<CusparseLike<T>>());
  algos.push_back(std::make_unique<BhSparse<T>>());
  algos.push_back(std::make_unique<RMerge<T>>());
  algos.push_back(std::make_unique<NsparseLike<T>>());
  algos.push_back(std::make_unique<KokkosLike<T>>());
  return algos;
}

template class AcSpgemmAlgorithm<float>;
template class AcSpgemmAlgorithm<double>;
template std::vector<std::unique_ptr<SpgemmAlgorithm<float>>>
make_paper_algorithms(const Config&);
template std::vector<std::unique_ptr<SpgemmAlgorithm<double>>>
make_paper_algorithms(const Config&);

}  // namespace acs
