# Empty dependencies file for test_coo.
# This may be replaced when dependencies are built.
