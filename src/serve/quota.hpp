#pragma once
/// \file quota.hpp
/// Per-tenant token-bucket quotas for the serving layer, metered in
/// *predicted cost seconds* (the admission predictor's makespan estimate),
/// not in jobs: a tenant that submits a handful of huge multiplications
/// drains its bucket as fast as one that floods tiny ones, so the quota
/// bounds the work a tenant can take from the device, which is the
/// resource that is actually shared.
///
/// Time is the server's *virtual* clock (the arrival timestamps of the
/// open-loop trace), never the host wall clock — refills are therefore a
/// pure function of the trace and the quota decision stream is
/// deterministic (DESIGN.md §11).

#include <algorithm>

namespace acs::serve {

/// Classic token bucket over a virtual clock. `rate <= 0` means
/// unmetered: `try_consume` always succeeds and holds no state.
class TokenBucket {
 public:
  TokenBucket() = default;
  /// `rate_cost_s_per_s`: cost-seconds of work replenished per virtual
  /// second. `burst_cost_s`: bucket capacity (also the initial fill).
  TokenBucket(double rate_cost_s_per_s, double burst_cost_s)
      : rate_(rate_cost_s_per_s),
        burst_(std::max(0.0, burst_cost_s)),
        tokens_(std::max(0.0, burst_cost_s)) {}

  [[nodiscard]] bool unmetered() const { return rate_ <= 0.0; }

  /// Advance the bucket to virtual time `now_s` (monotone; earlier times
  /// are ignored) and withdraw `cost_s` tokens if available. Returns true
  /// and consumes on success; false leaves the bucket untouched apart
  /// from the refill.
  bool try_consume(double now_s, double cost_s) {
    if (unmetered()) return true;
    refill(now_s);
    if (tokens_ + kSlack < cost_s) return false;
    tokens_ = std::max(0.0, tokens_ - cost_s);
    return true;
  }

  /// Tokens available at virtual time `now_s` (refills as a side effect).
  double available(double now_s) {
    refill(now_s);
    return tokens_;
  }

 private:
  /// Absorbs float rounding so a bucket sized for exactly N jobs admits
  /// all N (burst = N * cost accumulates N additions of cost).
  static constexpr double kSlack = 1e-12;

  void refill(double now_s) {
    if (now_s > last_s_) {
      tokens_ = std::min(burst_, tokens_ + (now_s - last_s_) * rate_);
      last_s_ = now_s;
    }
  }

  double rate_ = 0.0;  ///< <= 0 = unmetered
  double burst_ = 0.0;
  double tokens_ = 0.0;
  double last_s_ = 0.0;
};

}  // namespace acs::serve
