#pragma once
// Fixture: row/column/nnz quantities spelled with the project typedefs, and
// shape knobs / bit counts that are legitimately raw int — all silent.
#include <cstdint>

using index_t = std::int32_t;
using offset_t = std::int64_t;

struct Shape {
  index_t rows = 0;
  index_t cols = 0;
  offset_t nnz = 0;
  int nnz_per_block = 256;  // block-size knob, not a matrix quantity
  int row_bits = 0;         // bit count, not an index
};

index_t row_length(index_t row, const offset_t* row_ptr);
