/// \file bench_micro_primitives.cpp
/// google-benchmark microbenchmarks of the simulated block primitives,
/// supporting the Section 3.2.3 argument that radix-sort work scales with
/// the sorted bit width (the basis of the dynamic bit-reduction
/// optimization) and quantifying the scan/compaction costs per element.

#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "core/compaction.hpp"
#include "core/sort_key.hpp"
#include "core/work_distribution.hpp"
#include "sim/block_primitives.hpp"

namespace {

using namespace acs;

void BM_BlockRadixSortBits(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  std::mt19937_64 rng(7);
  std::vector<std::uint64_t> keys(2048);
  std::vector<double> vals(2048);
  const std::uint64_t mask = bits >= 64 ? ~0ull : ((1ull << bits) - 1);
  for (auto& k : keys) k = rng() & mask;
  sim::MetricCounters m;
  for (auto _ : state) {
    auto kcopy = keys;
    auto vcopy = vals;
    sim::block_radix_sort(std::span(kcopy), std::span(vcopy), bits, m);
    benchmark::DoNotOptimize(kcopy.data());
  }
  state.counters["sim_sort_work_per_iter"] =
      static_cast<double>(2048 * sim::radix_passes(bits));
}
BENCHMARK(BM_BlockRadixSortBits)->Arg(9)->Arg(16)->Arg(23)->Arg(32)->Arg(48);

void BM_CompactionScan(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto codec = KeyCodec::make(0, 255, 0, 4095, true, 255, 1 << 20);
  std::mt19937_64 rng(11);
  std::vector<std::uint64_t> keys(n);
  std::vector<double> vals(n, 1.0);
  for (auto& k : keys)
    k = codec.encode(static_cast<index_t>(rng() % 64),
                     static_cast<index_t>(rng() % 512));
  std::sort(keys.begin(), keys.end());
  sim::MetricCounters m;
  for (auto _ : state) {
    auto out = compact_sorted<double>(std::span(keys), std::span(vals), codec, m);
    benchmark::DoNotOptimize(out.keys.data());
  }
}
BENCHMARK(BM_CompactionScan)->Arg(256)->Arg(1024)->Arg(2048);

void BM_WorkDistributionReceive(benchmark::State& state) {
  std::mt19937_64 rng(13);
  std::vector<offset_t> counts(256);
  for (auto& c : counts) c = static_cast<offset_t>(rng() % 40);
  sim::MetricCounters m;
  for (auto _ : state) {
    WorkDistribution wd(counts, m);
    std::vector<WorkDistribution::Item> items;
    while (wd.size() > 0) {
      items.clear();
      wd.receive(std::min<offset_t>(2048, wd.size()), items, m);
      benchmark::DoNotOptimize(items.data());
    }
  }
}
BENCHMARK(BM_WorkDistributionReceive);

void BM_BlockScan(benchmark::State& state) {
  std::vector<offset_t> data(static_cast<std::size_t>(state.range(0)), 3);
  sim::MetricCounters m;
  for (auto _ : state) {
    auto copy = data;
    sim::inclusive_scan(std::span(copy), m);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_BlockScan)->Arg(256)->Arg(2048);

}  // namespace
