/// \file bench_full_suite.cpp
/// Reproduces Figures 9-12: marker plots of all six methods over the
/// complete test set, for float and double, split into small (a < 42) and
/// large (a >= 42) matrices. Emits one CSV per figure with per-matrix
/// GFLOPS series, plus a console summary of per-method win counts — the
/// paper's headline "AC-SpGEMM takes the performance lead in 83% of all
/// cases".

#include <iostream>
#include <map>

#include "suite/bench_runner.hpp"
#include "suite/registry.hpp"
#include "suite/table.hpp"

namespace {

template <class T>
void run_precision(const char* label) {
  using namespace acs;
  const auto algos = make_paper_algorithms<T>();

  std::vector<std::string> header{"matrix", "avg_len", "temp"};
  for (const auto& a : algos) header.push_back(a->name());

  CsvWriter small_csv(std::string("full_suite_") + label + "_small.csv");
  CsvWriter large_csv(std::string("full_suite_") + label + "_large.csv");
  small_csv.write_row(header);
  large_csv.write_row(header);

  std::map<std::string, int> wins;
  int total = 0, ac_best_sparse = 0, sparse_total = 0;

  for (const auto& entry : full_suite()) {
    const auto results = run_benchmarks<T>(entry, algos);
    const bool sparse = results[0].avg_row_len_a < 42.0;
    std::vector<std::string> row{
        entry.name, TextTable::num(results[0].avg_row_len_a, 1),
        std::to_string(results[0].temp_products)};
    std::size_t best = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      row.push_back(TextTable::num(results[i].gflops, 3));
      if (results[i].gflops > results[best].gflops) best = i;
    }
    (sparse ? small_csv : large_csv).write_row(row);
    wins[results[best].algorithm]++;
    ++total;
    if (sparse) {
      ++sparse_total;
      if (best == 0) ++ac_best_sparse;
    }
  }

  std::cout << "Figures 9-12 (" << label << "): fastest method per matrix "
            << "(" << total << " matrices)\n";
  TextTable table({"method", "wins", "share"});
  for (const auto& [name, count] : wins)
    table.add_row({name, std::to_string(count),
                   TextTable::num(100.0 * count / total, 0) + "%"});
  std::cout << table.str();
  std::cout << "AC-SpGEMM best on highly sparse: " << ac_best_sparse << "/"
            << sparse_total << " ("
            << TextTable::num(100.0 * ac_best_sparse / sparse_total, 0)
            << "%)\n\n";
}

}  // namespace

int main() {
  run_precision<float>("float");
  run_precision<double>("double");
  std::cout << "wrote full_suite_{float,double}_{small,large}.csv\n";
  return 0;
}
