# Empty dependencies file for bench_table1_speedup.
# This may be replaced when dependencies are built.
