#pragma once
/// \file metrics.hpp
/// Work counters collected while executing simulated kernels. Every SpGEMM
/// implementation in this repository (AC-SpGEMM and all baselines) charges
/// its memory traffic and compute work to one of these counter sets; the
/// cost model (cost_model.hpp) converts them into simulated kernel time.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace acs::sim {

struct MetricCounters {
  /// Bytes moved to/from global memory with a coalesced access pattern.
  std::uint64_t global_bytes_coalesced = 0;
  /// Bytes moved with scattered access (charged at scatter_efficiency).
  std::uint64_t global_bytes_scattered = 0;
  /// Scratchpad (shared-memory) accesses, in elements.
  std::uint64_t scratch_ops = 0;
  /// Radix-sort work: sum over sorts of (#keys × #4-bit passes). This is
  /// where the paper's dynamic bit reduction shows up: fewer bits → fewer
  /// passes → less work.
  std::uint64_t sort_pass_elements = 0;
  /// Elements pushed through block-wide scans (prefix/max/compaction scans).
  std::uint64_t scan_elements = 0;
  /// Hash-table probe steps (baselines only).
  std::uint64_t hash_probes = 0;
  /// Global atomic operations (chunk allocation, row counters, list heads).
  std::uint64_t atomic_ops = 0;
  /// Useful floating-point work (2 per intermediate product).
  std::uint64_t flops = 0;
  /// Generic per-element ALU work not covered above (merges, binary search).
  std::uint64_t compute_ops = 0;

  MetricCounters& operator+=(const MetricCounters& other);
  [[nodiscard]] MetricCounters operator+(const MetricCounters& other) const;
};

/// Split an aggregate counter set into `count` near-identical per-block
/// shares whose field-wise sum equals `total` exactly: every field hands
/// each block total/count and distributes the remainder one unit at a time
/// over the first (total % count) blocks. Used for uniform utility kernels
/// (load balancing, scans, chunk copy) where only the aggregate is known.
[[nodiscard]] std::vector<MetricCounters> uniform_block_split(
    std::size_t count, const MetricCounters& total);

}  // namespace acs::sim
