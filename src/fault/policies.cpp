#include "fault/policies.hpp"

#include <algorithm>
#include <cmath>

namespace acs::fault {
namespace {

/// splitmix64 finalizer: a cheap, high-quality 64-bit mix.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t rate_to_threshold(double rate) {
  const double clamped = std::clamp(rate, 0.0, 1.0);
  // 2^64 * rate without overflowing at rate == 1.
  if (clamped >= 1.0) return ~0ull;
  return static_cast<std::uint64_t>(
      std::ldexp(clamped, 64));
}

}  // namespace

SeededProbabilisticPolicy::SeededProbabilisticPolicy(std::uint64_t seed,
                                                     double deny_rate)
    : seed_(seed), threshold_(rate_to_threshold(deny_rate)) {}

bool SeededProbabilisticPolicy::allow(const AllocationRequest& request) {
  if (mix64(seed_ ^ mix64(request.index)) >= threshold_) return true;
  // mo: monotonic tally; read for reporting after the run joins.
  denials_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

ByteBudgetPolicy::ByteBudgetPolicy(std::vector<std::size_t> budgets)
    : budgets_(std::move(budgets)) {}

bool ByteBudgetPolicy::allow(const AllocationRequest& request) {
  acs::MutexLock lock(m_);
  if (stage_ < budgets_.size() &&
      granted_ + request.bytes > budgets_[stage_]) {
    ++stage_;  // one denial per budget: the next round sees the next budget
    return false;
  }
  granted_ += request.bytes;
  return true;
}

std::uint64_t ByteBudgetPolicy::denials() const {
  acs::MutexLock lock(m_);
  return static_cast<std::uint64_t>(stage_);
}

std::size_t ByteBudgetPolicy::stages_passed() const {
  acs::MutexLock lock(m_);
  return stage_;
}

}  // namespace acs::fault
