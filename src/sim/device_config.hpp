#pragma once
/// \file device_config.hpp
/// Parameters of the simulated GPU. Defaults approximate the NVIDIA Titan Xp
/// (compute capability 6.1) used in the paper's evaluation: 30 SMs at
/// 1.58 GHz, 547 GB/s DRAM bandwidth, 96 KiB scratchpad per SM (48 KiB
/// usable per block at the occupancy the paper's kernels run at).

namespace acs::sim {

struct DeviceConfig {
  int num_sms = 30;
  /// Resident blocks per SM; used by the scheduler to overlap block latency.
  int blocks_per_sm = 2;
  double clock_ghz = 1.58;
  /// Peak DRAM bandwidth for fully coalesced access.
  double mem_bandwidth_gb = 547.0;
  /// Effective bandwidth fraction for scattered (uncoalesced) accesses; a
  /// 4-byte access pulls a 32-byte sector, i.e. 1/8 efficiency.
  double scatter_efficiency = 0.125;
  /// Usable scratchpad (shared memory) per thread block in bytes.
  int scratchpad_bytes = 48 * 1024;
  int warp_size = 32;
  int threads_per_block = 256;
  /// Fixed cost per kernel launch / host round trip, in microseconds. The
  /// paper's restart mechanism pays one of these per restart.
  double kernel_launch_us = 8.0;
  /// Scheduling/drain overhead per thread block, in microseconds.
  double block_overhead_us = 0.3;
  /// Simple throughput model: simulated "compute operations" retired per SM
  /// per clock. Block-cooperative work (scans, radix-sort passes, hash
  /// probes) is barrier- and bank-conflict-limited, retiring far fewer
  /// logical operations per clock than the raw ALU count suggests.
  double ops_per_clock_per_sm = 8.0;
  /// Extra latency of one global atomic, in nanoseconds.
  double atomic_ns = 2.0;

  /// Field-wise equality; constexpr so the arch layer can prove at compile
  /// time that a tag's constants reproduce a known device exactly
  /// (arch/invariants.hpp).
  friend constexpr bool operator==(const DeviceConfig&,
                                   const DeviceConfig&) = default;
};

/// The device all benchmarks run on unless overridden (the paper's test
/// platform).
inline const DeviceConfig& titan_xp() {
  static const DeviceConfig cfg{};
  return cfg;
}

/// GTX 1080 Ti — the artifact appendix's second test device: 28 SMs,
/// 484 GB/s.
inline const DeviceConfig& gtx_1080ti() {
  static const DeviceConfig cfg = [] {
    DeviceConfig c{};
    c.num_sms = 28;
    c.clock_ghz = 1.48;
    c.mem_bandwidth_gb = 484.0;
    return c;
  }();
  return cfg;
}

/// Titan X (Pascal) — the artifact appendix's third test device: 28 SMs,
/// 480 GB/s.
inline const DeviceConfig& titan_x_pascal() {
  static const DeviceConfig cfg = [] {
    DeviceConfig c{};
    c.num_sms = 28;
    c.clock_ghz = 1.42;
    c.mem_bandwidth_gb = 480.0;
    return c;
  }();
  return cfg;
}

}  // namespace acs::sim
