# Empty dependencies file for bench_restart_sweep.
# This may be replaced when dependencies are built.
