#pragma once
/// \file csr.hpp
/// Compressed-sparse-row matrix container. This is the input/output format of
/// every SpGEMM algorithm in the repository, matching the paper's assumption
/// that "matrices are given in the compressed sparse row (CSR) format".

#include <cstddef>
#include <string>
#include <vector>

#include "matrix/types.hpp"

namespace acs {

/// CSR sparse matrix with explicitly stored values and column ids, sorted by
/// row, plus a row-pointer array of length rows+1.
///
/// Invariants (checked by `validate()`):
///  * row_ptr.size() == rows + 1, row_ptr.front() == 0,
///    row_ptr.back() == nnz(), row_ptr non-decreasing
///  * col_idx.size() == values.size() == nnz()
///  * column ids within [0, cols) and strictly increasing inside each row
template <class T>
struct Csr {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> row_ptr{0};
  std::vector<index_t> col_idx;
  std::vector<T> values;

  [[nodiscard]] offset_t nnz() const {
    return static_cast<offset_t>(col_idx.size());
  }

  [[nodiscard]] index_t row_length(index_t r) const {
    return row_ptr[usize(r) + 1] - row_ptr[usize(r)];
  }

  /// Verify all container invariants; returns an explanatory message for the
  /// first violation, or an empty string if the matrix is well-formed.
  [[nodiscard]] std::string validate() const;

  /// Exact structural and value equality (bitwise on values).
  [[nodiscard]] bool equals_exact(const Csr& other) const;

  /// Same sparsity structure, values equal up to a relative tolerance.
  [[nodiscard]] bool almost_equals(const Csr& other, double rel_tol) const;

  /// Drop stored entries whose value is exactly zero (useful after numeric
  /// cancellation in products).
  void prune_zeros();

  /// Bytes needed to store the matrix (row_ptr + col_idx + values); the unit
  /// the paper's memory tables (Table 3 / Fig. 8) are expressed against.
  [[nodiscard]] std::size_t byte_size() const {
    return row_ptr.size() * sizeof(index_t) + col_idx.size() * sizeof(index_t) +
           values.size() * sizeof(T);
  }

  /// Identity matrix of size n.
  static Csr identity(index_t n);
};

extern template struct Csr<float>;
extern template struct Csr<double>;

}  // namespace acs
