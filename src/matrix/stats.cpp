#include "matrix/stats.hpp"

#include <algorithm>

namespace acs {

template <class T>
RowStats row_stats(const Csr<T>& m) {
  RowStats s;
  if (m.rows == 0) return s;
  s.min_len = m.row_length(0);
  for (index_t r = 0; r < m.rows; ++r) {
    const index_t len = m.row_length(r);
    s.min_len = std::min(s.min_len, len);
    s.max_len = std::max(s.max_len, len);
  }
  s.avg_len = static_cast<double>(m.nnz()) / static_cast<double>(m.rows);
  return s;
}

template <class T>
offset_t intermediate_products(const Csr<T>& a, const Csr<T>& b) {
  offset_t total = 0;
  for (index_t k : a.col_idx) total += b.row_length(k);
  return total;
}

template <class T>
std::vector<offset_t> intermediate_products_per_row(const Csr<T>& a,
                                                    const Csr<T>& b) {
  std::vector<offset_t> out(static_cast<std::size_t>(a.rows), 0);
  for (index_t r = 0; r < a.rows; ++r)
    for (index_t k = a.row_ptr[usize(r)]; k < a.row_ptr[usize(r) + 1]; ++k)
      out[usize(r)] += b.row_length(a.col_idx[usize(k)]);
  return out;
}

template <class T>
offset_t spgemm_flops(const Csr<T>& a, const Csr<T>& b) {
  return 2 * intermediate_products(a, b);
}

template <class T>
double compaction_factor(const Csr<T>& a, const Csr<T>& b, offset_t nnz_c) {
  if (nnz_c == 0) return 0.0;
  return static_cast<double>(intermediate_products(a, b)) /
         static_cast<double>(nnz_c);
}

template <class T>
std::vector<offset_t> row_length_histogram(const Csr<T>& m,
                                           const std::vector<index_t>& buckets) {
  std::vector<offset_t> hist(buckets.size(), 0);
  for (index_t r = 0; r < m.rows; ++r) {
    const index_t len = m.row_length(r);
    // Find the last bucket whose lower bound is <= len.
    std::size_t bi = 0;
    while (bi + 1 < buckets.size() && len >= buckets[bi + 1]) ++bi;
    hist[bi]++;
  }
  return hist;
}

template RowStats row_stats(const Csr<float>&);
template RowStats row_stats(const Csr<double>&);
template offset_t intermediate_products(const Csr<float>&, const Csr<float>&);
template offset_t intermediate_products(const Csr<double>&, const Csr<double>&);
template std::vector<offset_t> intermediate_products_per_row(const Csr<float>&, const Csr<float>&);
template std::vector<offset_t> intermediate_products_per_row(const Csr<double>&, const Csr<double>&);
template offset_t spgemm_flops(const Csr<float>&, const Csr<float>&);
template offset_t spgemm_flops(const Csr<double>&, const Csr<double>&);
template double compaction_factor(const Csr<float>&, const Csr<float>&, offset_t);
template double compaction_factor(const Csr<double>&, const Csr<double>&, offset_t);
template std::vector<offset_t> row_length_histogram(const Csr<float>&, const std::vector<index_t>&);
template std::vector<offset_t> row_length_histogram(const Csr<double>&, const std::vector<index_t>&);

}  // namespace acs
