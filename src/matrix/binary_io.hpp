#pragma once
/// \file binary_io.hpp
/// Fast binary matrix format ("acsb"), the analogue of the paper artifact's
/// .hicoo cache: parsing Matrix Market once and re-loading the binary form
/// afterwards "greatly reduces loading times" (paper Appendix A.2.5).

#include <string>

#include "matrix/csr.hpp"

namespace acs {

/// Serialize a CSR matrix to `path`. Layout: magic "ACSB", u32 version,
/// u32 value width (4/8), i32 rows, i32 cols, i64 nnz, then the three raw
/// arrays. Little-endian host order.
template <class T>
void write_binary_file(const std::string& path, const Csr<T>& m);

/// Load a CSR matrix written by `write_binary_file`. Throws
/// std::runtime_error on malformed files or value-width mismatch.
template <class T>
Csr<T> read_binary_file(const std::string& path);

extern template void write_binary_file(const std::string&, const Csr<float>&);
extern template void write_binary_file(const std::string&, const Csr<double>&);
extern template Csr<float> read_binary_file<float>(const std::string&);
extern template Csr<double> read_binary_file<double>(const std::string&);

}  // namespace acs
