
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig1_rowlen.cpp" "bench/CMakeFiles/bench_fig1_rowlen.dir/bench_fig1_rowlen.cpp.o" "gcc" "bench/CMakeFiles/bench_fig1_rowlen.dir/bench_fig1_rowlen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/suite/CMakeFiles/acs_suite.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/acs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/acs_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/acs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/acs_matrix.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
