#pragma once
/// \file arch.hpp
/// Compile-time architecture tags (catlass-style): each backend is a tag
/// struct whose constexpr constants describe the device the pipeline
/// compiles against — scratchpad budget, SM count, block geometry and the
/// execution kind. Code that needs per-arch behaviour is templated on the
/// tag (e.g. the invariant banks in arch/invariants.hpp prove per-arch
/// feasibility at compile time); code that selects a backend at run time
/// goes through `ArchId` + `arch_info` / `dispatch_arch`.
///
/// The contract a tag must provide is documented in docs/BACKENDS.md
/// ("adding your own arch in 5 steps"); SimBigDevice below is the worked
/// example.

#include <array>

#include "arch/arch_id.hpp"
#include "sim/device_config.hpp"

namespace acs::arch {

/// The paper's test platform, simulated — NVIDIA Titan Xp. The constants
/// mirror sim::DeviceConfig's defaults exactly (arch/invariants.hpp proves
/// it), so selecting this tag is bit- and cost-model-compatible with the
/// pre-arch pipeline.
struct SimTitanXp {
  static constexpr ArchId kId = ArchId::kSimTitanXp;
  static constexpr ExecKind kExec = ExecKind::kSimulated;
  static constexpr const char* kName = "sim-titan-xp";

  static constexpr int kNumSms = 30;
  static constexpr int kBlocksPerSm = 2;
  static constexpr double kClockGhz = 1.58;
  static constexpr double kMemBandwidthGb = 547.0;
  static constexpr double kScatterEfficiency = 0.125;
  static constexpr int kScratchpadBytes = 48 * 1024;
  static constexpr int kWarpSize = 32;
  static constexpr int kThreadsPerBlock = 256;
  static constexpr double kKernelLaunchUs = 8.0;
  static constexpr double kBlockOverheadUs = 0.3;
  static constexpr double kOpsPerClockPerSm = 8.0;
  static constexpr double kAtomicNs = 2.0;
  /// Host threads driving simulated blocks when the engine applies the
  /// arch; 1 = the fully deterministic default (Config::scheduler_threads).
  static constexpr unsigned kDefaultSchedulerThreads = 1;
};

/// A simulated large device (Volta-class): twice the per-block scratchpad
/// and many more SMs. The point of this tag is the widened feasible region:
/// nnz_per_block = 1024 with double values needs 49160 B of scratchpad —
/// 8 bytes over the Titan Xp's 48 KiB, comfortably inside 96 KiB — so the
/// per-arch tuner grid extends to block shapes the Titan Xp must prune.
struct SimBigDevice {
  static constexpr ArchId kId = ArchId::kSimBigDevice;
  static constexpr ExecKind kExec = ExecKind::kSimulated;
  static constexpr const char* kName = "sim-big-device";

  static constexpr int kNumSms = 80;
  static constexpr int kBlocksPerSm = 2;
  static constexpr double kClockGhz = 1.38;
  static constexpr double kMemBandwidthGb = 900.0;
  static constexpr double kScatterEfficiency = 0.125;
  static constexpr int kScratchpadBytes = 96 * 1024;
  static constexpr int kWarpSize = 32;
  static constexpr int kThreadsPerBlock = 256;
  static constexpr double kKernelLaunchUs = 8.0;
  static constexpr double kBlockOverheadUs = 0.3;
  static constexpr double kOpsPerClockPerSm = 8.0;
  static constexpr double kAtomicNs = 2.0;
  static constexpr unsigned kDefaultSchedulerThreads = 1;
};

/// Native CPU execution. Every device constant mirrors SimTitanXp — the
/// block geometry (threads, scratchpad budget, 15-bit counters) bounds the
/// ESC working set, and keeping it identical keeps outputs bit-identical
/// to the simulated backend (arch/invariants.hpp pins the equality; the
/// differential sweep in tests/test_arch.cpp observes it). What changes is
/// the execution kind: blocks run on the host thread pool with
/// wall-clock-lean primitives (arch/native_exec.hpp) and the simulated
/// cost model off.
struct NativeCpu {
  static constexpr ArchId kId = ArchId::kNativeCpu;
  static constexpr ExecKind kExec = ExecKind::kNative;
  static constexpr const char* kName = "native-cpu";

  static constexpr int kNumSms = SimTitanXp::kNumSms;
  static constexpr int kBlocksPerSm = SimTitanXp::kBlocksPerSm;
  static constexpr double kClockGhz = SimTitanXp::kClockGhz;
  static constexpr double kMemBandwidthGb = SimTitanXp::kMemBandwidthGb;
  static constexpr double kScatterEfficiency = SimTitanXp::kScatterEfficiency;
  static constexpr int kScratchpadBytes = SimTitanXp::kScratchpadBytes;
  static constexpr int kWarpSize = SimTitanXp::kWarpSize;
  static constexpr int kThreadsPerBlock = SimTitanXp::kThreadsPerBlock;
  static constexpr double kKernelLaunchUs = SimTitanXp::kKernelLaunchUs;
  static constexpr double kBlockOverheadUs = SimTitanXp::kBlockOverheadUs;
  static constexpr double kOpsPerClockPerSm = SimTitanXp::kOpsPerClockPerSm;
  static constexpr double kAtomicNs = SimTitanXp::kAtomicNs;
  /// 0 = one scheduler thread per hardware thread (resolved by the engine).
  static constexpr unsigned kDefaultSchedulerThreads = 0;
};

/// The simulated-device description a tag's constants induce. This is the
/// single point where tag constants become a sim::DeviceConfig, so a tag
/// cannot drift from the device the pipeline actually runs against.
template <class Arch>
[[nodiscard]] constexpr sim::DeviceConfig device_config() {
  sim::DeviceConfig d{};
  d.num_sms = Arch::kNumSms;
  d.blocks_per_sm = Arch::kBlocksPerSm;
  d.clock_ghz = Arch::kClockGhz;
  d.mem_bandwidth_gb = Arch::kMemBandwidthGb;
  d.scatter_efficiency = Arch::kScatterEfficiency;
  d.scratchpad_bytes = Arch::kScratchpadBytes;
  d.warp_size = Arch::kWarpSize;
  d.threads_per_block = Arch::kThreadsPerBlock;
  d.kernel_launch_us = Arch::kKernelLaunchUs;
  d.block_overhead_us = Arch::kBlockOverheadUs;
  d.ops_per_clock_per_sm = Arch::kOpsPerClockPerSm;
  d.atomic_ns = Arch::kAtomicNs;
  return d;
}

/// Runtime view of one tag (for config plumbing, benches and docs tables).
struct ArchInfo {
  ArchId id = ArchId::kSimTitanXp;
  ExecKind exec = ExecKind::kSimulated;
  const char* name = "";
  sim::DeviceConfig device{};
  unsigned default_scheduler_threads = 1;
};

/// Invoke `f` with the tag type matching `id` (as a value-initialized tag
/// argument): `dispatch_arch(id, [](auto tag) { use decltype(tag); })`.
/// Unknown ids dispatch as SimTitanXp, the bit-compatible default.
template <class F>
constexpr decltype(auto) dispatch_arch(ArchId id, F&& f) {
  switch (id) {
    case ArchId::kSimBigDevice: return f(SimBigDevice{});
    case ArchId::kNativeCpu: return f(NativeCpu{});
    case ArchId::kSimTitanXp: break;
  }
  return f(SimTitanXp{});
}

/// Runtime description of `id` (unknown ids fold to SimTitanXp, matching
/// dispatch_arch).
[[nodiscard]] constexpr ArchInfo arch_info(ArchId id) {
  return dispatch_arch(id, [](auto tag) {
    using Arch = decltype(tag);
    ArchInfo info;
    info.id = Arch::kId;
    info.exec = Arch::kExec;
    info.name = Arch::kName;
    info.device = device_config<Arch>();
    info.default_scheduler_threads = Arch::kDefaultSchedulerThreads;
    return info;
  });
}

/// Every compiled-in backend, in ArchId order. tools/check_docs.py keeps
/// docs/BACKENDS.md in sync with this list (via the tag names under
/// src/arch/).
[[nodiscard]] const std::array<ArchInfo, 3>& all_arch_infos();

}  // namespace acs::arch
