// Trip fixture for mutex-annotated: a raw std::mutex and two acs::Mutex
// members that guard nothing (3 findings).
#include <mutex>

#include "core/thread_annotations.hpp"

class Bare {
  std::mutex raw_m_;       // finding: raw std::mutex
  acs::Mutex floating_m_;  // finding: guards nothing
  int value_ = 0;
};

struct Loose {
  acs::Mutex m;  // finding: guards nothing
  int x = 0;
};
