file(REMOVE_RECURSE
  "CMakeFiles/test_chunk.dir/test_chunk.cpp.o"
  "CMakeFiles/test_chunk.dir/test_chunk.cpp.o.d"
  "test_chunk"
  "test_chunk.pdb"
  "test_chunk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chunk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
