file(REMOVE_RECURSE
  "CMakeFiles/acs_core.dir/acspgemm.cpp.o"
  "CMakeFiles/acs_core.dir/acspgemm.cpp.o.d"
  "CMakeFiles/acs_core.dir/esc_block.cpp.o"
  "CMakeFiles/acs_core.dir/esc_block.cpp.o.d"
  "CMakeFiles/acs_core.dir/merge.cpp.o"
  "CMakeFiles/acs_core.dir/merge.cpp.o.d"
  "CMakeFiles/acs_core.dir/work_distribution.cpp.o"
  "CMakeFiles/acs_core.dir/work_distribution.cpp.o.d"
  "libacs_core.a"
  "libacs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
