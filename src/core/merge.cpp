#include "core/merge.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "arch/native_exec.hpp"
#include "core/compaction.hpp"
#include "core/sort_key.hpp"
#include "sim/block_primitives.hpp"
#include "trace/trace.hpp"

namespace acs {
namespace {

inline void charge_chunk_write(sim::MetricCounters& m, std::size_t bytes,
                               std::size_t rows_in_chunk) {
  m.global_bytes_coalesced += bytes;
  m.atomic_ops += 1 + rows_in_chunk + 2;
}

/// Gathered element of a merge buffer: local row (index into batch.rows),
/// column and value, in global chunk order per row.
template <class T>
struct Gathered {
  std::vector<index_t> lrow;
  std::vector<index_t> col;
  std::vector<T> val;
  index_t min_col = 0;
  index_t max_col = 0;
};

/// Load all segments of the batch. Pointer chunks materialize `factor × row
/// of B` on the fly (coalesced read of the long row); regular segments read
/// the chunk payload (coalesced, one transaction overhead per segment).
template <class T, bool kNative>
void gather(const MergeBatch& batch, const std::vector<Chunk<T>>& chunks,
            const Csr<T>& b, sim::MetricCounters& m, Gathered<T>& g) {
  g.lrow.clear();
  g.col.clear();
  g.val.clear();
  g.min_col = b.cols;
  g.max_col = 0;
  for (std::size_t r = 0; r < batch.rows.size(); ++r) {
    for (const RowSegment& seg : batch.segments[r]) {
      const Chunk<T>& chunk = chunks[seg.chunk];
      if (chunk.is_long_row) {
        const index_t start = b.row_ptr[usize(chunk.b_row)];
        for (index_t i = 0; i < chunk.long_len; ++i) {
          g.lrow.push_back(static_cast<index_t>(r));
          g.col.push_back(b.col_idx[static_cast<std::size_t>(start + i)]);
          g.val.push_back(chunk.factor *
                          b.values[static_cast<std::size_t>(start + i)]);
        }
        if constexpr (!kNative) {
          m.global_bytes_coalesced +=
              static_cast<std::uint64_t>(chunk.long_len) *
              (sizeof(index_t) + sizeof(T));
          m.flops += 2 * static_cast<std::uint64_t>(chunk.long_len);
        }
      } else {
        for (index_t i = 0; i < seg.length; ++i) {
          g.lrow.push_back(static_cast<index_t>(r));
          g.col.push_back(
              chunk.cols[static_cast<std::size_t>(seg.begin + i)]);
          g.val.push_back(
              chunk.vals[static_cast<std::size_t>(seg.begin + i)]);
        }
        if constexpr (!kNative) {
          m.global_bytes_coalesced += static_cast<std::uint64_t>(seg.length) *
                                      (sizeof(index_t) + sizeof(T));
          m.global_bytes_scattered += 32;  // segment-start transaction
        }
      }
    }
  }
  for (index_t c : g.col) {
    g.min_col = std::min(g.min_col, c);
    g.max_col = std::max(g.max_col, c);
  }
  if (g.col.empty()) g.min_col = g.max_col = 0;
}

/// Per-window cut-discovery cost of the three merge algorithms.
template <class T>
void charge_cut_discovery(MergeKind kind, const MergeBatch& batch,
                          const std::vector<Chunk<T>>& chunks,
                          const Config& cfg, sim::MetricCounters& m) {
  const auto threads = static_cast<std::uint64_t>(cfg.threads);
  switch (kind) {
    case MergeKind::Multi:
      // One-shot: the MCC stage already paid for the batch assignment.
      break;
    case MergeKind::Path: {
      // Samples placed uniformly over every chunk's entries, sorted across
      // the block carrying the sample number, then a custom max-scan finds
      // the matching cut through each chunk (Section 3.3).
      m.global_bytes_scattered += threads * sizeof(index_t);
      const int bits = sim::bits_for(threads);
      m.sort_pass_elements +=
          threads * static_cast<std::uint64_t>(sim::radix_passes(32 + bits));
      m.scan_elements += threads;
      break;
    }
    case MergeKind::Search: {
      // Binary search of each sampled column id in every chunk.
      std::uint64_t probes = 0;
      for (const auto& segs : batch.segments)
        for (const RowSegment& seg : segs) {
          const auto len = std::max<index_t>(
              chunks[seg.chunk].is_long_row ? chunks[seg.chunk].long_len
                                            : seg.length,
              2);
          probes += static_cast<std::uint64_t>(
              std::ceil(std::log2(static_cast<double>(len))));
        }
      m.compute_ops += threads * probes;
      // Probe reads are scattered but hit a small hot set (the sampled
      // column ids of the row's chunks), so most land in L2.
      m.global_bytes_scattered += threads * probes * sizeof(index_t) / 16;
      m.scan_elements += threads;
      break;
    }
  }
}

/// Reusable merge-block buffers. The native backend keeps one instance per
/// scheduler thread alive across blocks (and multiplications) so the steady
/// state allocates nothing; the simulated backend uses a fresh local per
/// call, preserving its historical allocation behaviour.
template <class T>
struct MergeWorkspace {
  Gathered<T> g;
  std::vector<std::uint64_t> keys;
  std::vector<std::pair<std::size_t, std::size_t>> windows;  // [begin, end)
  arch::NativeSortScratch<std::uint64_t, T> sort;
  CompactionOutput<T> compaction;

  static MergeWorkspace& native_instance() {
    thread_local MergeWorkspace ws;
    return ws;
  }
};

template <class T, bool kNative>
MergeOutcome<T> run_merge_block_impl(const MergeBatch& batch,
                                     const std::vector<Chunk<T>>& chunks,
                                     const Csr<T>& b, const Config& cfg,
                                     ChunkPool& pool, MergeKind kind,
                                     std::size_t windows_done_start,
                                     std::uint32_t order_block) {
  MergeOutcome<T> out;
  out.windows_done = windows_done_start;
  sim::MetricCounters& m = out.metrics;

  MergeWorkspace<T> local_ws;
  MergeWorkspace<T>& ws =
      kNative ? MergeWorkspace<T>::native_instance() : local_ws;

  Gathered<T>& g = ws.g;
  gather<T, kNative>(batch, chunks, b, m, g);
  const std::size_t n = g.col.size();
  if (n == 0) return out;

  const index_t max_lrow = static_cast<index_t>(batch.rows.size()) - 1;
  const KeyCodec codec =
      KeyCodec::make(0, max_lrow, g.min_col, g.max_col, cfg.dynamic_bits,
                     max_lrow, b.cols - 1);

  // Sort the gathered buffer by (local row, column). Stable, so elements of
  // one (row, column) stay in global chunk order — deterministic sums.
  std::vector<std::uint64_t>& keys = ws.keys;
  keys.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    keys[i] = codec.encode(g.lrow[i], g.col[i]);
  if constexpr (kNative)
    arch::native_radix_sort(std::span(keys), std::span(g.val),
                            codec.total_bits(), ws.sort);
  else
    sim::block_radix_sort(std::span(keys), std::span(g.val),
                          codec.total_bits(), m);

  // Window the sorted buffer: never split a key group across windows, and
  // keep each window within the block's scratchpad capacity.
  const auto capacity = static_cast<std::size_t>(cfg.temp_capacity());
  std::vector<std::pair<std::size_t, std::size_t>>& windows = ws.windows;
  windows.clear();
  std::size_t wbegin = 0;
  std::size_t i = 0;
  while (i < n) {
    std::size_t group_end = i + 1;
    while (group_end < n && keys[group_end] == keys[i]) ++group_end;
    if (group_end - wbegin > capacity && wbegin < i) {
      windows.emplace_back(wbegin, i);
      wbegin = i;
    }
    i = group_end;
  }
  windows.emplace_back(wbegin, n);

  // Block-level window spans only in detail mode (see DESIGN.md §7).
  trace::TraceSession* detail_trace =
      cfg.trace && cfg.trace->detail() ? cfg.trace : nullptr;

  // Multi Merge is one-shot by construction (the batch was packed to fit);
  // Path/Search merge iterate windows, each with its cut-discovery cost.
  for (std::size_t w = 0; w < windows.size(); ++w) {
    const auto [begin, end] = windows[w];
    if (w < windows_done_start) continue;  // already written before restart
    ACS_TRACE_SCOPE(detail_trace, "merge.window");
    if constexpr (!kNative) {
      if (kind != MergeKind::Multi || w > 0)
        charge_cut_discovery(kind, batch, chunks, cfg, m);
    }

    Chunk<T> chunk;
    chunk.order = {order_block, static_cast<std::uint32_t>(w)};

    const std::size_t wn = end - begin;
    if (wn <= compaction_detail::kCounterMask) {
      if constexpr (kNative)
        arch::native_compact_sorted(
            std::span<const std::uint64_t>(keys).subspan(begin, wn),
            std::span<const T>(g.val).subspan(begin, wn), codec,
            ws.compaction);
      else
        ws.compaction = compact_sorted<T>(
            std::span(keys).subspan(begin, wn),
            std::span<const T>(g.val).subspan(begin, wn), codec, m);
      const CompactionOutput<T>& c = ws.compaction;
      chunk.row_offsets.push_back(0);
      index_t entries = 0;
      for (const auto& [lrow, count] : c.rows) {
        chunk.rows.push_back(batch.rows[static_cast<std::size_t>(lrow)]);
        entries += count;
        chunk.row_offsets.push_back(entries);
      }
      chunk.cols.reserve(c.keys.size());
      for (std::uint64_t k : c.keys) chunk.cols.push_back(codec.col_of(k));
      chunk.vals = c.vals;
    } else {
      // Degenerate oversized key group (more duplicates of one (row, col)
      // than fit in a block): sequential accumulation in chained passes.
      T sum = g.val[begin];
      for (std::size_t j = begin + 1; j < end; ++j) sum += g.val[j];
      if constexpr (!kNative) {
        m.scan_elements += wn;
        // The wn-1 additions are useful floating-point work just like the
        // compaction path's combines — uncharged they vanish from the Fig. 7
        // breakdown on duplicate-heavy inputs.
        m.flops += static_cast<std::uint64_t>(wn - 1);
      }
      chunk.rows.push_back(
          batch.rows[static_cast<std::size_t>(codec.row_of(keys[begin]))]);
      chunk.row_offsets = {0, 1};
      chunk.cols.push_back(codec.col_of(keys[begin]));
      chunk.vals.push_back(sum);
    }

    if (!pool.try_allocate(chunk.byte_size())) {
      out.needs_restart = true;
      return out;
    }
    if constexpr (!kNative)
      charge_chunk_write(m, chunk.byte_size(), chunk.rows.size());
    ACS_TRACE_COUNT(cfg.trace, pool_alloc_bytes, chunk.byte_size());
    ACS_TRACE_COUNT(cfg.trace, chunks_written, 1);
    ACS_TRACE_COUNT(cfg.trace, merge_windows, 1);
    if constexpr (!kNative) m.scratch_ops += 2 * chunk.cols.size();
    out.chunks.push_back(std::move(chunk));
    out.windows_done = w + 1;
  }
  return out;
}

}  // namespace

template <class T>
MergeOutcome<T> run_merge_block(const MergeBatch& batch,
                                const std::vector<Chunk<T>>& chunks,
                                const Csr<T>& b, const Config& cfg,
                                ChunkPool& pool, MergeKind kind,
                                std::size_t windows_done_start,
                                std::uint32_t order_block) {
  if (cfg.exec == arch::ExecKind::kNative)
    return run_merge_block_impl<T, true>(batch, chunks, b, cfg, pool, kind,
                                         windows_done_start, order_block);
  return run_merge_block_impl<T, false>(batch, chunks, b, cfg, pool, kind,
                                        windows_done_start, order_block);
}

template MergeOutcome<float> run_merge_block(
    const MergeBatch&, const std::vector<Chunk<float>>&, const Csr<float>&,
    const Config&, ChunkPool&, MergeKind, std::size_t, std::uint32_t);
template MergeOutcome<double> run_merge_block(
    const MergeBatch&, const std::vector<Chunk<double>>&, const Csr<double>&,
    const Config&, ChunkPool&, MergeKind, std::size_t, std::uint32_t);

}  // namespace acs
