#include "baselines/kokkos_like.hpp"

#include <algorithm>
#include <chrono>

#include "baselines/detail.hpp"
#include "baselines/hash_table.hpp"
#include "matrix/stats.hpp"
#include "sim/cost_model.hpp"

namespace acs {
namespace {

/// First-level (scratchpad) table slots per team.
constexpr std::size_t kL1Slots = 1024;

}  // namespace

template <class T>
Csr<T> kokkos_like_multiply(const Csr<T>& a, const Csr<T>& b,
                            SpgemmStats* stats, std::uint64_t schedule_seed) {
  if (a.cols != b.rows)
    throw std::invalid_argument("kokkos_like: dimension mismatch");
  const auto t0 = std::chrono::steady_clock::now();
  const sim::DeviceConfig dev{};

  // --- Setup: hierarchical partitioning + B compression pass (the fixed
  // preprocessing that hurts on small/very sparse inputs).
  sim::MetricCounters setup;
  setup.global_bytes_coalesced +=
      static_cast<std::uint64_t>(b.nnz()) * (sizeof(index_t) + sizeof(T)) +
      static_cast<std::uint64_t>(a.nnz()) * sizeof(index_t);
  setup.scan_elements +=
      static_cast<std::uint64_t>(a.rows) + static_cast<std::uint64_t>(b.rows);
  setup.compute_ops += static_cast<std::uint64_t>(b.nnz());

  Csr<T> c;
  c.rows = a.rows;
  c.cols = b.cols;
  c.row_ptr.assign(static_cast<std::size_t>(a.rows) + 1, 0);
  std::vector<std::vector<index_t>> row_cols(static_cast<std::size_t>(a.rows));
  std::vector<std::vector<T>> row_vals(static_cast<std::size_t>(a.rows));

  std::vector<sim::MetricCounters> blocks;
  sim::MetricCounters bm;
  std::size_t rows_in_team = 0;
  std::size_t l2_bytes = 0;
  std::vector<baseline_detail::Product<T>> prods;

  for (index_t r = 0; r < a.rows; ++r) {
    baseline_detail::gather_row_products(a, b, r, prods);
    if (prods.empty()) continue;
    baseline_detail::permute_schedule(prods, schedule_seed, r);

    const std::size_t upper = baseline_detail::next_pow2(2 * prods.size());
    const bool needs_l2 = upper > kL1Slots;
    baseline_detail::HashAccumulator<T> table(needs_l2 ? upper : kL1Slots);
    bool overflow = false;
    std::uint64_t probes = 0;
    for (const auto& p : prods) probes += table.accumulate(p.col, p.val, overflow);
    table.extract_sorted(row_cols[static_cast<std::size_t>(r)],
                         row_vals[static_cast<std::size_t>(r)]);
    c.row_ptr[static_cast<std::size_t>(r) + 1] = static_cast<index_t>(
        row_cols[static_cast<std::size_t>(r)].size());

    bm.hash_probes += 2 * probes;
    // Symbolic reads column ids, numeric reads ids + values.
    bm.global_bytes_coalesced += static_cast<std::uint64_t>(prods.size()) *
                                 (2 * sizeof(index_t) + sizeof(T));
    bm.global_bytes_scattered +=
        32 * static_cast<std::uint64_t>(a.row_length(r));
    // Per-team first-level table initialization + team bookkeeping
    // (hierarchical partitioning, view handling) — the fixed per-row
    // overhead behind Kokkos' weak very-sparse results.
    bm.scratch_ops += 2 * kL1Slots;
    bm.compute_ops += 1000;
    if (needs_l2) {
      // Second-level table in global memory, temporarily claimed; tables
      // are sized to the row, so probes stay largely cache-resident.
      bm.global_bytes_coalesced += probes * 6;
      bm.atomic_ops += 2;
      l2_bytes = std::max(l2_bytes, upper * (sizeof(index_t) + sizeof(T)));
    } else {
      bm.scratch_ops += 2 * probes;
    }
    bm.flops += 2 * static_cast<std::uint64_t>(prods.size());
    const auto out_n = static_cast<std::uint64_t>(
        row_cols[static_cast<std::size_t>(r)].size());
    bm.compute_ops += out_n * 4;
    bm.global_bytes_coalesced += out_n * (sizeof(index_t) + sizeof(T));

    if (++rows_in_team == 8) {
      blocks.push_back(bm);
      bm = {};
      rows_in_team = 0;
    }
  }
  if (rows_in_team > 0) blocks.push_back(bm);

  for (index_t r = 0; r < a.rows; ++r)
    c.row_ptr[usize(r) + 1] += c.row_ptr[usize(r)];
  for (index_t r = 0; r < a.rows; ++r) {
    c.col_idx.insert(c.col_idx.end(), row_cols[static_cast<std::size_t>(r)].begin(),
                     row_cols[static_cast<std::size_t>(r)].end());
    c.values.insert(c.values.end(), row_vals[static_cast<std::size_t>(r)].begin(),
                    row_vals[static_cast<std::size_t>(r)].end());
  }

  if (stats) {
    *stats = SpgemmStats{};
    stats->intermediate_products = intermediate_products(a, b);
    {
      std::vector<sim::MetricCounters> setup_blocks(std::max<std::size_t>(
          1, static_cast<std::size_t>(b.rows) / 256));
      for (auto& m : setup_blocks) {
        m = setup;
        m.global_bytes_coalesced /= setup_blocks.size();
        m.scan_elements /= setup_blocks.size();
        m.compute_ops /= setup_blocks.size();
      }
      const auto t = sim::schedule_blocks(setup_blocks, dev);
      stats->stage_times_s.emplace_back("setup", t.time_s);
      stats->sim_time_s += t.time_s;
      for (const auto& m : setup_blocks) stats->metrics += m;
    }
    // Symbolic and numeric are separate kernels over the same team list
    // (the probe/traffic work above covers both), plus the view-allocation
    // and compression launches the portable implementation pays.
    {
      const auto t = sim::schedule_blocks(blocks, dev);
      stats->stage_times_s.emplace_back("hash-passes", t.time_s);
      stats->sim_time_s += t.time_s;
      if (blocks.size() >= static_cast<std::size_t>(dev.num_sms))
        stats->multiprocessor_load =
            std::min(stats->multiprocessor_load, t.multiprocessor_load);
    }
    for (const char* pass :
         {"symbolic", "alloc-views", "compress-launch", "partition-1",
          "partition-2", "scan-1", "scan-2", "scatter", "cleanup",
          "finalize"}) {
      stats->stage_times_s.emplace_back(pass, dev.kernel_launch_us * 1e-6);
      stats->sim_time_s += dev.kernel_launch_us * 1e-6;
    }
    for (const auto& m : blocks) stats->metrics += m;
    stats->pool_bytes = l2_bytes * static_cast<std::size_t>(dev.num_sms);
    stats->pool_used_bytes = stats->pool_bytes;
    stats->helper_bytes =
        static_cast<std::size_t>(a.rows + b.rows) * 2 * sizeof(index_t);
    stats->wall_time_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  return c;
}

template Csr<float> kokkos_like_multiply(const Csr<float>&, const Csr<float>&,
                                         SpgemmStats*, std::uint64_t);
template Csr<double> kokkos_like_multiply(const Csr<double>&,
                                          const Csr<double>&, SpgemmStats*,
                                          std::uint64_t);
template class KokkosLike<float>;
template class KokkosLike<double>;

}  // namespace acs
