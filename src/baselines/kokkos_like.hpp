#pragma once
/// \file kokkos_like.hpp
/// Kokkos-kernels-style SpGEMM [Deveci, Trott, Rajamanickam 2017/2018]
/// ("kkmem"): portable team-based two-level hashing — a first-level hash in
/// scratchpad per team, a second-level table in global memory that is
/// temporarily claimed and reclaimed — combined with hierarchical
/// partitioning of the work. Symbolic and numeric phases are separate
/// kernels with substantial fixed setup, which is why the method trails on
/// very sparse inputs. Atomic accumulation order: not bit-stable.

#include <cstdint>

#include "baselines/algorithm.hpp"

namespace acs {

template <class T>
Csr<T> kokkos_like_multiply(const Csr<T>& a, const Csr<T>& b,
                            SpgemmStats* stats = nullptr,
                            std::uint64_t schedule_seed = 0);

template <class T>
class KokkosLike final : public SpgemmAlgorithm<T> {
 public:
  [[nodiscard]] std::string name() const override { return "Kokkos"; }
  [[nodiscard]] bool bit_stable() const override { return false; }
  Csr<T> multiply(const Csr<T>& a, const Csr<T>& b,
                  SpgemmStats* stats) const override {
    return kokkos_like_multiply(a, b, stats, seed_);
  }
  void set_schedule_seed(std::uint64_t seed) override { seed_ = seed; }

 private:
  std::uint64_t seed_ = 0;
};

extern template Csr<float> kokkos_like_multiply(const Csr<float>&,
                                                const Csr<float>&,
                                                SpgemmStats*, std::uint64_t);
extern template Csr<double> kokkos_like_multiply(const Csr<double>&,
                                                 const Csr<double>&,
                                                 SpgemmStats*, std::uint64_t);
extern template class KokkosLike<float>;
extern template class KokkosLike<double>;

}  // namespace acs
