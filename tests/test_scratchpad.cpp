#include "sim/scratchpad.hpp"

#include <gtest/gtest.h>

namespace acs::sim {
namespace {

TEST(Scratchpad, AllocateWithinCapacity) {
  Scratchpad pad(1024);
  auto a = pad.allocate<int>(100);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(pad.used(), 400u);
}

TEST(Scratchpad, OverflowThrows) {
  Scratchpad pad(64);
  EXPECT_THROW(pad.allocate<double>(9), std::length_error);
}

TEST(Scratchpad, ExactFitSucceeds) {
  Scratchpad pad(64);
  EXPECT_NO_THROW(pad.allocate<double>(8));
  EXPECT_THROW(pad.allocate<char>(1), std::length_error);
}

TEST(Scratchpad, ResetReleases) {
  Scratchpad pad(64);
  pad.allocate<double>(8);
  pad.reset();
  EXPECT_EQ(pad.used(), 0u);
  EXPECT_NO_THROW(pad.allocate<double>(8));
}

TEST(Scratchpad, HighWaterPersistsAcrossReset) {
  Scratchpad pad(128);
  pad.allocate<double>(10);
  pad.reset();
  pad.allocate<char>(4);
  EXPECT_EQ(pad.high_water(), 80u);
}

TEST(Scratchpad, AlignmentPadding) {
  Scratchpad pad(64);
  pad.allocate<char>(1);
  auto d = pad.allocate<double>(1);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.data()) % alignof(double), 0u);
}

TEST(Scratchpad, AllocationsAreZeroed) {
  Scratchpad pad(64);
  auto a = pad.allocate<int>(4);
  for (int x : a) EXPECT_EQ(x, 0);
}

TEST(Scratchpad, TitanXpCapacityHoldsEscBuffers) {
  // The paper's configuration: 256 threads x 8 elements, 64-bit keys +
  // double values must fit in 48 KiB along with the WDState array.
  Scratchpad pad(48 * 1024);
  EXPECT_NO_THROW(pad.allocate<std::uint64_t>(2048));  // keys    16 KiB
  EXPECT_NO_THROW(pad.allocate<double>(2048));         // values  16 KiB
  EXPECT_NO_THROW(pad.allocate<std::int64_t>(257));    // WDState  2 KiB
  EXPECT_NO_THROW(pad.allocate<std::int32_t>(2048));   // states   8 KiB
}

}  // namespace
}  // namespace acs::sim
