# Empty dependencies file for test_bench_runner.
# This may be replaced when dependencies are built.
