#pragma once
/// \file estimator.hpp
/// Sampling-based size estimation for C = A·B — the memory planner the
/// closed-form pool guess of `estimate_chunk_pool_bytes` graduates into
/// (DESIGN.md §12). One deterministic strided pass over A's column ids
/// against B's row lengths yields
///   * an *expected* temporary-product count (each sample weighted by the
///     entries of A it stands for, so a partial final window is charged its
///     true size, never a full stride),
///   * a *conservative* heuristic (each window charged the larger of its two
///     bounding samples — locally heavy stretches of B are not diluted),
///   * *guaranteed* lower/upper bounds (unsampled entries charged B's exact
///     global min/max row length), bracketing the exact symbolic count
///     `intermediate_products(a, b)` for every input, and
///   * the sorted sample itself, from which any quantile of the B-row-length
///     distribution is read off without another pass.
/// `plan_pool_bytes` turns the estimate into a chunk-pool recommendation in
/// bytes of the *actual chunk layout* (headers, per-entry payload cost and
/// pointer-chunk diversion from core/chunk.hpp), not abstract elements.
///
/// Everything here is a pure function of the operands' sparsity structure —
/// never values, never global state — so consumers that replay decision
/// streams (src/serve) stay deterministic, and one estimate is valid for
/// every job sharing a structure fingerprint. The tuner's feature extraction
/// (tune/features.cpp) delegates its sampling core to `sample_b_row_lengths`
/// so the planner and the tuner can never disagree about the sample.

#include <cstddef>
#include <vector>

#include "matrix/csr.hpp"
#include "matrix/types.hpp"

namespace acs::estimate {

/// Deterministic strided sample of B-row lengths over A's column ids, plus
/// the window-weighted aggregates derived from it. Window k covers the
/// entries [k·stride, min((k+1)·stride, nnz(A))) of A and is represented by
/// the sample at its first entry; window weights therefore sum to exactly
/// nnz(A), including a partial final window.
struct RowSample {
  /// Sampled B-row lengths, sorted ascending (quantile lookups).
  std::vector<index_t> b_lens;
  std::size_t sampled = 0;  ///< == b_lens.size()
  std::size_t stride = 1;   ///< effective stride after min_samples clamping
  std::size_t nnz_a = 0;
  /// True when every entry of A was inspected (stride 1): `expected` is
  /// then the exact symbolic product count.
  bool exact = false;
  double sum = 0.0;           ///< Σ sampled lengths (unweighted)
  double expected = 0.0;      ///< Σ_k len_k · window_k
  double conservative = 0.0;  ///< Σ_k max(len_k, len_{k+1}) · window_k
  /// Exact min/max row length over all of B (one pass over B's row
  /// pointer) — the anchors of the guaranteed bounds.
  index_t b_min_len = 0;
  index_t b_max_len = 0;

  /// q-quantile (q in [0, 1]) of the sampled length distribution; 0 when
  /// nothing was sampled.
  [[nodiscard]] index_t quantile(double q) const;
};

/// Sample every `sample_stride`-th non-zero of A (clamped so at least
/// `min_samples` entries are inspected when A has that many) and look up the
/// length of the B row it selects. Deterministic and value-independent.
template <class T>
RowSample sample_b_row_lengths(const Csr<T>& a, const Csr<T>& b,
                               std::size_t sample_stride,
                               std::size_t min_samples);

/// Temporary-product estimate distilled from a `RowSample`. The guaranteed
/// bounds hold unconditionally: lower ≤ intermediate_products(a, b) ≤ upper.
struct ProductEstimate {
  double expected = 0.0;
  double conservative = 0.0;  ///< heuristic upper; ≥ expected by construction
  double lower = 0.0;         ///< guaranteed (unsampled entries at min |B row|)
  double upper = 0.0;         ///< guaranteed (unsampled entries at max |B row|)
  bool exact = false;         ///< expected == lower == upper == exact count
};

/// Derive the product estimate from an existing sample (no matrix access).
[[nodiscard]] ProductEstimate products_from_sample(const RowSample& s);

/// One-call convenience: sample, then distill.
template <class T>
ProductEstimate estimate_products(const Csr<T>& a, const Csr<T>& b,
                                  std::size_t sample_stride = 8,
                                  std::size_t min_samples = 512);

/// Saturating double→size_t conversion for byte quantities: NaN and
/// negative values collapse to 0, anything at or beyond the size_t range
/// saturates to the maximum instead of truncating or wrapping (the
/// restart-storm bug a bare static_cast invites on hub-heavy inputs).
[[nodiscard]] std::size_t saturate_bytes(double bytes);

/// Everything the pool planner needs to know about the consumer's chunk
/// layout and sampling policy — a value-type mirror of the `Config` fields
/// involved, so this module depends only on src/matrix.
struct PoolSizingParams {
  /// Quantile of the sampled B-row-length distribution charged per
  /// unsampled entry — the planner's safety margin (replaces the closed
  /// form's flat pool_estimate_factor).
  double quantile = 0.9;
  std::size_t sample_stride = 8;
  std::size_t min_samples = 512;
  /// Entries one block flush materializes at most (Config::temp_capacity());
  /// amortizes one chunk header per that many entries.
  std::size_t chunk_entry_capacity = 2048;
  /// Bytes charged per materialized temporary entry (core/chunk.hpp
  /// kChunkEntryBytes<T>: column id + value + amortized row boundary).
  std::size_t entry_bytes = 16;
  std::size_t chunk_header_bytes = 32;    ///< kChunkHeaderBytes
  std::size_t pointer_chunk_bytes = 48;   ///< kPointerChunkBytes
  /// B rows at least this long divert to fixed-size pointer chunks instead
  /// of materializing; 0 = no long-row handling.
  index_t long_row_threshold = 0;
  /// Headroom multiplier on the materialized payload for merge outputs
  /// (rows shared between chunks are rewritten once by the merge stage).
  double merge_headroom = 0.25;
  std::size_t lower_bound_bytes = 0;  ///< Config::pool_lower_bound_bytes
};

/// Pool recommendation in bytes of actual chunk layout.
struct PoolPlan {
  /// What the consumer should allocate: quantile-charged products laid out
  /// as chunks, clamped into [expected_bytes, upper_bytes] and floored at
  /// `lower_bound_bytes`.
  std::size_t recommended_bytes = 0;
  std::size_t expected_bytes = 0;  ///< expected products, same layout
  std::size_t upper_bytes = 0;     ///< guaranteed-upper products, same layout
  ProductEstimate products;
  RowSample sample;
};

/// Lay out `entries` materialized products as chunks: per-entry payload plus
/// one header per `chunk_entry_capacity` entries (partial chunks round up).
[[nodiscard]] std::size_t chunk_layout_bytes(double entries,
                                             const PoolSizingParams& p);

/// Size the chunk pool for C = A·B from a strided sample. Pure function of
/// (a, b, p): replayable, fingerprint-shareable, value-independent.
template <class T>
PoolPlan plan_pool_bytes(const Csr<T>& a, const Csr<T>& b,
                         const PoolSizingParams& p);

extern template RowSample sample_b_row_lengths(const Csr<float>&,
                                               const Csr<float>&, std::size_t,
                                               std::size_t);
extern template RowSample sample_b_row_lengths(const Csr<double>&,
                                               const Csr<double>&, std::size_t,
                                               std::size_t);
extern template ProductEstimate estimate_products(const Csr<float>&,
                                                  const Csr<float>&,
                                                  std::size_t, std::size_t);
extern template ProductEstimate estimate_products(const Csr<double>&,
                                                  const Csr<double>&,
                                                  std::size_t, std::size_t);
extern template PoolPlan plan_pool_bytes(const Csr<float>&, const Csr<float>&,
                                         const PoolSizingParams&);
extern template PoolPlan plan_pool_bytes(const Csr<double>&,
                                         const Csr<double>&,
                                         const PoolSizingParams&);

}  // namespace acs::estimate
