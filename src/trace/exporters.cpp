#include "trace/exporters.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace acs::trace {
namespace {

/// Shortest round-trippable-enough representation, deterministic across
/// runs for identical doubles.
std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Microsecond timestamp with fixed sub-microsecond precision.
std::string fmt_us(double seconds) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // drop control chars
    out.push_back(c);
  }
  return out;
}

/// Per-span aggregate keyed by name, in order of first appearance.
struct NameAgg {
  std::size_t count = 0;
  double wall_s = 0.0;
  double sim_s = 0.0;
};

std::vector<std::pair<std::string, NameAgg>> aggregate_by_name(
    const std::vector<SpanRecord>& spans) {
  std::vector<std::pair<std::string, NameAgg>> out;
  std::map<std::string, std::size_t> index;
  for (const SpanRecord& s : spans) {
    auto [it, inserted] = index.try_emplace(s.name, out.size());
    if (inserted) out.emplace_back(s.name, NameAgg{});
    NameAgg& agg = out[it->second].second;
    ++agg.count;
    agg.wall_s += s.end_s - s.start_s;
    agg.sim_s += s.sim_time_s;
  }
  return out;
}

/// Simulated duration of each span including its descendants, and the
/// depth-first layout of start timestamps on the simulated timeline.
struct SimLayout {
  std::vector<double> total_s;  ///< own + descendants
  std::vector<double> start_s;  ///< assigned depth-first
};

SimLayout layout_sim_timeline(const std::vector<SpanRecord>& spans) {
  const std::size_t n = spans.size();
  SimLayout l;
  l.total_s.assign(n, 0.0);
  l.start_s.assign(n, 0.0);

  std::vector<std::vector<SpanId>> children(n);
  std::vector<SpanId> roots;
  for (std::size_t i = 0; i < n; ++i) {
    if (spans[i].parent == kNoSpan)
      roots.push_back(static_cast<SpanId>(i));
    else if (spans[i].parent < n)
      children[spans[i].parent].push_back(static_cast<SpanId>(i));
  }

  // Post-order totals (ids are creation-ordered, children have larger ids,
  // so a reverse sweep sees every child before its parent).
  for (std::size_t i = n; i-- > 0;) {
    l.total_s[i] = spans[i].sim_time_s;
    for (SpanId c : children[i]) l.total_s[i] += l.total_s[c];
  }

  // Depth-first timestamp assignment: children first, the span's own
  // simulated time trails at the end of its interval.
  std::vector<std::pair<SpanId, double>> stack;  // (span, start)
  double cursor = 0.0;
  for (SpanId r : roots) {
    stack.emplace_back(r, cursor);
    while (!stack.empty()) {
      const auto [id, start] = stack.back();
      stack.pop_back();
      l.start_s[id] = start;
      double child_start = start;
      // Push in reverse so children lay out in creation order.
      std::vector<std::pair<SpanId, double>> batch;
      for (SpanId c : children[id]) {
        batch.emplace_back(c, child_start);
        child_start += l.total_s[c];
      }
      for (std::size_t i = batch.size(); i-- > 0;) stack.push_back(batch[i]);
    }
    cursor += l.total_s[r];
  }
  return l;
}

void append_counters_json(std::ostringstream& os, const CountersSnapshot& c) {
  os << "{\"pool_alloc_bytes\": " << c.pool_alloc_bytes
     << ", \"pool_denials\": " << c.pool_denials
     << ", \"pool_capacity_bytes\": " << c.pool_capacity_bytes
     << ", \"pool_used_bytes\": " << c.pool_used_bytes
     << ", \"pool_estimate_bytes\": " << c.pool_estimate_bytes
     << ", \"restarts\": " << c.restarts
     << ", \"esc_blocks\": " << c.esc_blocks
     << ", \"esc_iterations\": " << c.esc_iterations
     << ", \"esc_iteration_hist\": [";
  for (std::size_t i = 0; i < kEscHistBuckets; ++i)
    os << (i ? ", " : "") << c.esc_iteration_hist[i];
  os << "], \"chunks_written\": " << c.chunks_written
     << ", \"long_row_chunks\": " << c.long_row_chunks
     << ", \"merge_case_rows\": {\"multi\": " << c.merge_case_rows[kMultiMerge]
     << ", \"path\": " << c.merge_case_rows[kPathMerge]
     << ", \"search\": " << c.merge_case_rows[kSearchMerge]
     << "}, \"merge_windows\": " << c.merge_windows
     << ", \"blocks_executed\": " << c.blocks_executed
     << ", \"block_time_ns_sum\": " << c.block_time_ns_sum
     << ", \"block_time_ns_max\": " << c.block_time_ns_max
     << ", \"serve\": {\"submitted\": " << c.serve_submitted
     << ", \"admitted\": " << c.serve_admitted
     << ", \"rejected\": " << c.serve_rejected
     << ", \"shed\": " << c.serve_shed
     << ", \"degraded\": " << c.serve_degraded
     << ", \"deadline_misses\": " << c.serve_deadline_misses
     << ", \"queue_depth_peak\": " << c.serve_queue_depth_peak
     << "}, \"tune\": {\"cold_tunes\": " << c.cold_tunes
     << ", \"bg_tunes\": " << c.bg_tunes
     << ", \"cache_loads\": " << c.cache_loads << "}}";
}

void append_tenant_rows_json(std::ostringstream& os,
                             const std::vector<TenantServeCounters>& rows) {
  os << "[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const TenantServeCounters& t = rows[i];
    os << (i ? ", " : "") << "{\"tenant\": \"" << escape(t.tenant)
       << "\", \"submitted\": " << t.submitted
       << ", \"admitted\": " << t.admitted << ", \"rejected\": " << t.rejected
       << ", \"shed\": " << t.shed << ", \"completed\": " << t.completed
       << ", \"degraded\": " << t.degraded
       << ", \"deadline_misses\": " << t.deadline_misses << "}";
  }
  os << "]";
}

}  // namespace

std::array<double, kNumStages> sim_stage_totals(
    const std::vector<SpanRecord>& spans, SpanId root) {
  std::array<double, kNumStages> totals{};
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const int stage = stage_index(spans[i].name);
    if (stage < 0) continue;
    if (root != kNoSpan) {
      SpanId a = static_cast<SpanId>(i);
      while (a != kNoSpan && a != root) a = spans[a].parent;
      if (a != root) continue;
    }
    totals[static_cast<std::size_t>(stage)] += spans[i].sim_time_s;
  }
  return totals;
}

std::string to_chrome_json(const TraceSession& session,
                           const ExportOptions& opts) {
  const std::vector<SpanRecord> spans = session.spans();
  const SimLayout layout = layout_sim_timeline(spans);

  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  os << "  {\"ph\": \"M\", \"pid\": 0, \"name\": \"process_name\", "
        "\"args\": {\"name\": \"acspgemm sim timeline\"}}";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    os << ",\n  {\"name\": \"" << escape(s.name) << "\", \"ph\": \"X\""
       << ", \"pid\": 0, \"tid\": " << s.thread
       << ", \"ts\": " << fmt_us(layout.start_s[i])
       << ", \"dur\": " << fmt_us(layout.total_s[i])
       << ", \"args\": {\"sim_s\": " << fmt(s.sim_time_s);
    if (opts.include_wall)
      os << ", \"wall_s\": " << fmt(s.end_s - s.start_s);
    os << "}}";
  }
  os << "\n]}\n";
  return os.str();
}

std::string to_flat_json(const TraceSession& session,
                         const ExportOptions& opts) {
  const std::vector<SpanRecord> spans = session.spans();
  const auto by_name = aggregate_by_name(spans);
  const auto stages = sim_stage_totals(spans);

  std::ostringstream os;
  os << "{\n";
  if (opts.include_wall)
    os << "  \"wall_time_s\": " << fmt(session.elapsed_s()) << ",\n";
  os << "  \"spans\": {";
  for (std::size_t i = 0; i < by_name.size(); ++i) {
    const auto& [name, agg] = by_name[i];
    os << (i ? ", " : "") << "\"" << escape(name)
       << "\": {\"count\": " << agg.count << ", \"sim_s\": " << fmt(agg.sim_s);
    if (opts.include_wall) os << ", \"wall_s\": " << fmt(agg.wall_s);
    os << "}";
  }
  os << "},\n  \"stage_sim_s\": {";
  for (std::size_t i = 0; i < kNumStages; ++i)
    os << (i ? ", " : "") << "\"" << kStageNames[i]
       << "\": " << fmt(stages[i]);
  os << "},\n  \"counters\": ";
  append_counters_json(os, session.counters_snapshot());
  os << "\n}\n";
  return os.str();
}

std::string to_table(const TraceSession& session) {
  const std::vector<SpanRecord> spans = session.spans();
  const auto by_name = aggregate_by_name(spans);
  double total_sim = 0.0;
  std::size_t name_width = 4;
  for (const auto& [name, agg] : by_name) {
    total_sim += agg.sim_s;
    name_width = std::max(name_width, name.size());
  }

  std::ostringstream os;
  char line[160];
  std::snprintf(line, sizeof(line), "%-*s %7s %12s %12s %7s\n",
                static_cast<int>(name_width), "span", "count", "wall ms",
                "sim us", "sim %");
  os << line;
  for (const auto& [name, agg] : by_name) {
    std::snprintf(line, sizeof(line), "%-*s %7zu %12.3f %12.3f %7.1f\n",
                  static_cast<int>(name_width), name.c_str(), agg.count,
                  agg.wall_s * 1e3, agg.sim_s * 1e6,
                  total_sim > 0.0 ? 100.0 * agg.sim_s / total_sim : 0.0);
    os << line;
  }

  const CountersSnapshot c = session.counters_snapshot();
  os << "\ncounters: restarts=" << c.restarts
     << " esc_blocks=" << c.esc_blocks << " esc_iterations=" << c.esc_iterations
     << " chunks=" << c.chunks_written << " long_row_chunks=" << c.long_row_chunks
     << "\n          merge_rows multi/path/search=" << c.merge_case_rows[0]
     << "/" << c.merge_case_rows[1] << "/" << c.merge_case_rows[2]
     << " merge_windows=" << c.merge_windows
     << "\n          pool alloc/used/capacity=" << c.pool_alloc_bytes << "/"
     << c.pool_used_bytes << "/" << c.pool_capacity_bytes
     << " estimate=" << c.pool_estimate_bytes
     << " denials=" << c.pool_denials
     << "\n          blocks_executed=" << c.blocks_executed;
  if (c.blocks_executed > 0) {
    os << " avg_block_us="
       << fmt(static_cast<double>(c.block_time_ns_sum) /
              static_cast<double>(c.blocks_executed) / 1e3)
       << " max_block_us="
       << fmt(static_cast<double>(c.block_time_ns_max) / 1e3);
  }
  // Serving-layer block, only when a server actually fed this session —
  // plain multiplications keep their table unchanged.
  if (c.serve_submitted > 0) {
    os << "\n          serve submitted/admitted/rejected/shed="
       << c.serve_submitted << "/" << c.serve_admitted << "/"
       << c.serve_rejected << "/" << c.serve_shed
       << " degraded=" << c.serve_degraded
       << " deadline_misses=" << c.serve_deadline_misses
       << " queue_peak=" << c.serve_queue_depth_peak;
  }
  // Tuning-lifecycle block, only when the cold path actually fired.
  if (c.cold_tunes > 0 || c.bg_tunes > 0 || c.cache_loads > 0) {
    os << "\n          tune cold/background/cache_loads=" << c.cold_tunes
       << "/" << c.bg_tunes << "/" << c.cache_loads;
  }
  os << "\n";
  return os.str();
}

std::string to_table(const MetricsSnapshot& m) {
  std::ostringstream os;
  const CountersSnapshot& c = m.counters;
  os << "serve: submitted=" << c.serve_submitted
     << " admitted=" << c.serve_admitted << " rejected=" << c.serve_rejected
     << " shed=" << c.serve_shed << " degraded=" << c.serve_degraded
     << " deadline_misses=" << c.serve_deadline_misses
     << " queue_peak=" << c.serve_queue_depth_peak << "\n";
  if (c.cold_tunes > 0 || c.bg_tunes > 0 || c.cache_loads > 0) {
    os << "tune:  cold=" << c.cold_tunes << " background=" << c.bg_tunes
       << " cache_loads=" << c.cache_loads << "\n";
  }
  if (m.serve_tenants.empty()) return os.str();

  std::size_t name_width = 6;
  for (const TenantServeCounters& t : m.serve_tenants)
    name_width = std::max(name_width, t.tenant.size());
  char line[200];
  std::snprintf(line, sizeof(line), "%-*s %9s %9s %9s %6s %9s %9s %7s\n",
                static_cast<int>(name_width), "tenant", "submitted",
                "admitted", "rejected", "shed", "completed", "degraded",
                "misses");
  os << line;
  for (const TenantServeCounters& t : m.serve_tenants) {
    std::snprintf(line, sizeof(line),
                  "%-*s %9llu %9llu %9llu %6llu %9llu %9llu %7llu\n",
                  static_cast<int>(name_width), t.tenant.c_str(),
                  static_cast<unsigned long long>(t.submitted),
                  static_cast<unsigned long long>(t.admitted),
                  static_cast<unsigned long long>(t.rejected),
                  static_cast<unsigned long long>(t.shed),
                  static_cast<unsigned long long>(t.completed),
                  static_cast<unsigned long long>(t.degraded),
                  static_cast<unsigned long long>(t.deadline_misses));
    os << line;
  }
  return os.str();
}

std::string to_flat_json(const MetricsSnapshot& m) {
  std::ostringstream os;
  os << "{\n  \"jobs\": " << m.jobs
     << ",\n  \"sim_time_s\": " << fmt(m.sim_time_s)
     << ",\n  \"stage_sim_s\": {";
  for (std::size_t i = 0; i < kNumStages; ++i)
    os << (i ? ", " : "") << "\"" << kStageNames[i]
       << "\": " << fmt(m.stage_sim_time_s[i]);
  os << "},\n  \"restarts\": " << m.restarts
     << ",\n  \"counters\": ";
  append_counters_json(os, m.counters);
  os << ",\n  \"serve_tenants\": ";
  append_tenant_rows_json(os, m.serve_tenants);
  os << "\n}\n";
  return os.str();
}

MetricsSnapshot session_metrics(const TraceSession& session) {
  const std::vector<SpanRecord> spans = session.spans();
  MetricsSnapshot m;
  m.stage_sim_time_s = sim_stage_totals(spans);
  for (const SpanRecord& s : spans) {
    m.sim_time_s += s.sim_time_s;
    if (s.parent == kNoSpan) {
      ++m.jobs;
      m.wall_time_s += s.end_s - s.start_s;
    }
  }
  m.counters = session.counters_snapshot();
  m.restarts = m.counters.restarts;
  m.esc_iterations = m.counters.esc_iterations;
  m.chunks_created = m.counters.chunks_written;
  m.long_row_chunks = m.counters.long_row_chunks;
  m.merged_rows = m.counters.merge_case_rows[0] + m.counters.merge_case_rows[1] +
                  m.counters.merge_case_rows[2];
  m.pool_bytes = m.counters.pool_capacity_bytes;
  m.pool_used_bytes = m.counters.pool_used_bytes;
  m.pool_estimate_bytes = m.counters.pool_estimate_bytes;
  return m;
}

}  // namespace acs::trace
