#include "sim/metrics.hpp"

namespace acs::sim {

MetricCounters& MetricCounters::operator+=(const MetricCounters& other) {
  global_bytes_coalesced += other.global_bytes_coalesced;
  global_bytes_scattered += other.global_bytes_scattered;
  scratch_ops += other.scratch_ops;
  sort_pass_elements += other.sort_pass_elements;
  scan_elements += other.scan_elements;
  hash_probes += other.hash_probes;
  atomic_ops += other.atomic_ops;
  flops += other.flops;
  compute_ops += other.compute_ops;
  return *this;
}

MetricCounters MetricCounters::operator+(const MetricCounters& other) const {
  MetricCounters out = *this;
  out += other;
  return out;
}

}  // namespace acs::sim
