#pragma once
/// \file hash_table.hpp
/// Open-addressing (linear probing) accumulator table used by the
/// hash-based baselines (cuSPARSE-like, nsparse-like, Kokkos-like). Probe
/// counts are reported so each method's cost model sees its real hashing
/// work.

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "matrix/types.hpp"

namespace acs::baseline_detail {

template <class T>
class HashAccumulator {
 public:
  /// `slots` must be a power of two.
  explicit HashAccumulator(std::size_t slots)
      : mask_(slots - 1), keys_(slots, kEmpty), vals_(slots, T{}) {}

  /// Insert-or-accumulate; returns the number of probe steps taken.
  /// Returns 0 probes and sets `overflow` if the table is full.
  std::size_t accumulate(index_t col, T val, bool& overflow) {
    std::size_t h = hash(col);
    for (std::size_t probes = 1;; ++probes) {
      if (keys_[h] == col) {
        vals_[h] += val;
        return probes;
      }
      if (keys_[h] == kEmpty) {
        keys_[h] = col;
        vals_[h] = val;
        ++size_;
        return probes;
      }
      if (probes > mask_) {
        overflow = true;
        return probes;
      }
      h = (h + 1) & mask_;
    }
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t slots() const { return mask_ + 1; }

  /// Extract (col, val) pairs sorted by column.
  void extract_sorted(std::vector<index_t>& cols, std::vector<T>& vals) const;

  void clear() {
    std::fill(keys_.begin(), keys_.end(), kEmpty);
    size_ = 0;
  }

 private:
  static constexpr index_t kEmpty = -1;
  [[nodiscard]] std::size_t hash(index_t col) const {
    // Multiplicative hashing, the scheme of Demouth's GPU kernels.
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(col)) *
            2654435761u) &
           mask_;
  }

  std::size_t mask_;
  std::size_t size_ = 0;
  std::vector<index_t> keys_;
  std::vector<T> vals_;
};

template <class T>
void HashAccumulator<T>::extract_sorted(std::vector<index_t>& cols,
                                        std::vector<T>& vals) const {
  std::vector<std::pair<index_t, T>> entries;
  entries.reserve(size_);
  for (std::size_t i = 0; i <= mask_; ++i)
    if (keys_[i] != kEmpty) entries.emplace_back(keys_[i], vals_[i]);
  std::sort(entries.begin(), entries.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  cols.clear();
  vals.clear();
  for (const auto& [c, v] : entries) {
    cols.push_back(c);
    vals.push_back(v);
  }
}

}  // namespace acs::baseline_detail
