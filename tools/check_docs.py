#!/usr/bin/env python3
"""Documentation drift checks (CI docs job; stdlib only).

1. Markdown link check: every relative link target in the repo's *.md
   files must exist on disk (anchors and external URLs are skipped).
2. Config/EngineConfig drift check, both directions:
   * every `Config`/`EngineConfig` member named in README.md, DESIGN.md or
     docs/ARCHITECTURE.md — via ``Struct::field`` references or a row of
     the README parameter tables — must still exist in the headers
     (src/core/config.hpp, src/runtime/engine.hpp), so renames/removals
     cannot leave stale docs behind;
   * every field of the two structs must appear in README.md, so new
     knobs cannot ship undocumented.

Exit code 0 = docs in sync; 1 = drift, with one line per finding.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = ["README.md", "DESIGN.md", "docs/ARCHITECTURE.md"]
SKIP_DIRS = {"build", "build-asan", "build-tsan", ".git"}

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
REF_RE = re.compile(r"`(Config|EngineConfig)::(\w+)`")
TABLE_ROW_RE = re.compile(r"^\|\s*`(\w+)`\s*\|")


def parse_struct_members(header: Path, struct_name: str) -> set[str]:
    """Member fields and methods of `struct <name> {...};` (brace-counted)."""
    text = header.read_text()
    start = text.find(f"struct {struct_name} {{")
    if start < 0:
        sys.exit(f"error: struct {struct_name} not found in {header}")
    depth = 0
    body_lines: list[str] = []
    for line in text[start:].splitlines():
        depth += line.count("{") - line.count("}")
        body_lines.append(line)
        if depth == 0 and body_lines[1:]:
            break
    members: set[str] = set()
    for line in body_lines[1:]:
        stripped = line.split("//")[0].strip()
        # methods:  [[nodiscard]] int temp_capacity() const { ... }
        m = re.match(r"(?:\[\[nodiscard\]\]\s*)?[\w:<>,\s*&]+?\b(\w+)\s*\(",
                     stripped)
        if m and not stripped.startswith(("if", "for", "return", "friend")):
            members.add(m.group(1))
            continue
        # fields:   int threads = 256;   sim::DeviceConfig device{};
        m = re.match(r"[\w:<>,\s*&]+?\b(\w+)\s*(?:=[^;]*|\{\s*\})?;$", stripped)
        if m:
            members.add(m.group(1))
            continue
        # continuation line of a multi-line declaration:  make_alloc_policy;
        m = re.match(r"^(\w+)\s*;$", stripped)
        if m:
            members.add(m.group(1))
    return members


def doc_field_references(path: Path) -> list[tuple[str, str, int]]:
    """(struct, field, line) references found in one doc file."""
    refs: list[tuple[str, str, int]] = []
    current_table: str | None = None
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for struct, field in REF_RE.findall(line):
            refs.append((struct, field, lineno))
        # README parameter tables: track which struct the table documents.
        if "`acs::Config`" in line or "(`acs::Config`" in line:
            current_table = "Config"
        elif "EngineConfig" in line and "`acs::runtime::EngineConfig`" in line:
            current_table = "EngineConfig"
        elif line.startswith("## ") or line.startswith("**"):
            pass  # section prose does not end a table by itself
        m = TABLE_ROW_RE.match(line)
        if m and current_table and m.group(1) not in ("field",):
            refs.append((current_table, m.group(1), lineno))
        if current_table and line.strip() == "" and refs and \
                TABLE_ROW_RE.match(line) is None and \
                any(r[2] == lineno - 1 and r[0] == current_table
                    for r in refs):
            current_table = None  # blank line after table rows ends the table
    return refs


def check_links() -> list[str]:
    errors = []
    for md in sorted(REPO.rglob("*.md")):
        if any(part in SKIP_DIRS for part in md.relative_to(REPO).parts):
            continue
        for lineno, line in enumerate(md.read_text().splitlines(), start=1):
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                resolved = (md.parent / target.split("#")[0]).resolve()
                if not resolved.exists():
                    errors.append(
                        f"{md.relative_to(REPO)}:{lineno}: broken link "
                        f"-> {target}")
    return errors


def check_drift() -> list[str]:
    errors = []
    members = {
        "Config": parse_struct_members(REPO / "src/core/config.hpp", "Config"),
        "EngineConfig": parse_struct_members(
            REPO / "src/runtime/engine.hpp", "EngineConfig"),
    }
    documented: dict[str, set[str]] = {"Config": set(), "EngineConfig": set()}
    for rel in DOC_FILES:
        path = REPO / rel
        if not path.exists():
            errors.append(f"{rel}: required doc file missing")
            continue
        for struct, field, lineno in doc_field_references(path):
            documented[struct].add(field)
            if field not in members[struct]:
                errors.append(
                    f"{rel}:{lineno}: documents {struct}::{field}, which no "
                    f"longer exists in the header")
    # Completeness: every real field must be documented in the README tables.
    readme_refs = {f for _, f, _ in doc_field_references(REPO / "README.md")}
    for struct, fields in members.items():
        for field in sorted(fields):
            if field not in readme_refs and field not in documented[struct]:
                errors.append(
                    f"README.md: {struct}::{field} exists in the header but "
                    f"is documented nowhere")
    return errors


def main() -> int:
    errors = check_links() + check_drift()
    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"check_docs: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print("check_docs: links and Config/EngineConfig docs are in sync")
    return 0


if __name__ == "__main__":
    sys.exit(main())
