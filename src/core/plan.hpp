#pragma once
/// \file plan.hpp
/// Reusable execution plan for AC-SpGEMM. The first two things every
/// `multiply` does — global load balancing over A's non-zeros (Algorithm 1)
/// and the simplistic chunk-pool estimate (Section 4) — depend only on the
/// operands' sparsity structure, not on their values. A plan captures both,
/// plus the restart feedback of past runs, so repeated multiplications of
/// identically structured matrices (AMG Galerkin chains, iterative graph
/// kernels) skip the setup work and start from a pool size that is known to
/// suffice. `src/runtime` keys plans by a structure fingerprint and caches
/// them across jobs; `multiply_planned` is the core entry point that
/// consumes and refreshes one.

#include <cstddef>
#include <vector>

#include "core/config.hpp"
#include "matrix/types.hpp"

namespace acs {

struct SpgemmPlan {
  /// blockRowStarts of Algorithm 1, one entry per block. Empty means the
  /// plan carries no load-balancing table yet and the pipeline builds one.
  std::vector<index_t> block_row_starts;
  /// Decomposition the table was built for; a plan only applies to a run
  /// with the same `Config::nnz_per_block` ...
  int nnz_per_block = 0;
  /// ... and the same nnz(A) (same structure implies same nnz).
  offset_t nnz_a = 0;
  /// Initial chunk-pool capacity to use; 0 = run the paper's estimate.
  /// After a run this holds the final capacity including restart growth, so
  /// replaying the plan needs no restarts.
  std::size_t pool_bytes = 0;

  // --- Feedback from the most recent planned run. ------------------------
  /// Pool bytes actually used (the high-water mark future sizing rests on).
  std::size_t observed_pool_used = 0;
  /// Restarts the last run incurred (0 once the plan has converged).
  int observed_restarts = 0;
  /// Completed runs recorded into this plan.
  std::size_t runs = 0;

  /// True if the stored load-balancing table can be reused for a
  /// multiplication of an A with `nnz` non-zeros under `cfg`.
  [[nodiscard]] bool has_load_balance(const Config& cfg, offset_t nnz) const {
    return !block_row_starts.empty() && nnz_per_block == cfg.nnz_per_block &&
           nnz_a == nnz;
  }
};

}  // namespace acs
