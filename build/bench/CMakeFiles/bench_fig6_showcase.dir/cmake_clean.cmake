file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_showcase.dir/bench_fig6_showcase.cpp.o"
  "CMakeFiles/bench_fig6_showcase.dir/bench_fig6_showcase.cpp.o.d"
  "bench_fig6_showcase"
  "bench_fig6_showcase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_showcase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
