#include "baselines/spa_gustavson.hpp"

#include <gtest/gtest.h>

#include "matrix/generators.hpp"
#include "matrix/transpose.hpp"

namespace acs {
namespace {

TEST(Spa, KnownSmallProduct) {
  // A = [1 2; 0 3], B = [4 0; 1 5]  =>  C = [6 10; 3 15]
  Csr<double> a, b;
  a.rows = a.cols = 2;
  a.row_ptr = {0, 2, 3};
  a.col_idx = {0, 1, 1};
  a.values = {1, 2, 3};
  b.rows = b.cols = 2;
  b.row_ptr = {0, 1, 3};
  b.col_idx = {0, 0, 1};
  b.values = {4, 1, 5};

  const auto c = spa_multiply(a, b);
  EXPECT_EQ(c.validate(), "");
  ASSERT_EQ(c.nnz(), 4);
  EXPECT_EQ(c.values, (std::vector<double>{6, 10, 3, 15}));
  EXPECT_EQ(c.col_idx, (std::vector<index_t>{0, 1, 0, 1}));
}

TEST(Spa, IdentityIsNeutral) {
  const auto m = gen_uniform_random<double>(80, 80, 5.0, 2.0, 3);
  const auto id = Csr<double>::identity(80);
  EXPECT_TRUE(spa_multiply(m, id).equals_exact(m));
  EXPECT_TRUE(spa_multiply(id, m).equals_exact(m));
}

TEST(Spa, DimensionMismatchThrows) {
  const auto a = gen_uniform_random<double>(10, 20, 3.0, 1.0, 1);
  const auto b = gen_uniform_random<double>(10, 10, 3.0, 1.0, 2);
  EXPECT_THROW(spa_multiply(a, b), std::invalid_argument);
}

TEST(Spa, NonSquareProduct) {
  const auto a = gen_uniform_random<double>(30, 50, 4.0, 1.0, 5);
  const auto at = transpose(a);
  const auto c = spa_multiply(a, at);
  EXPECT_EQ(c.validate(), "");
  EXPECT_EQ(c.rows, 30);
  EXPECT_EQ(c.cols, 30);
}

TEST(Spa, EmptyOperands) {
  Csr<double> a;
  a.rows = 5;
  a.cols = 5;
  a.row_ptr.assign(6, 0);
  const auto c = spa_multiply(a, a);
  EXPECT_EQ(c.nnz(), 0);
  EXPECT_EQ(c.rows, 5);
}

TEST(Spa, StatsFilled) {
  const auto m = gen_uniform_random<double>(50, 50, 4.0, 1.0, 6);
  SpgemmStats stats;
  spa_multiply(m, m, &stats);
  EXPECT_GT(stats.intermediate_products, 0);
  EXPECT_GE(stats.wall_time_s, 0.0);
}

}  // namespace
}  // namespace acs
