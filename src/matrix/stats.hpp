#pragma once
/// \file stats.hpp
/// Matrix statistics used throughout the paper's evaluation: row-length
/// distributions (Fig. 1), intermediate-product counts ("temp", Table 2),
/// compaction factors (Section 4.2) and FLOP counts for GFLOPS reporting.

#include <vector>

#include "matrix/csr.hpp"

namespace acs {

/// Row-length summary for one matrix (Fig. 1 columns).
struct RowStats {
  index_t min_len = 0;
  index_t max_len = 0;
  double avg_len = 0.0;
};

template <class T>
RowStats row_stats(const Csr<T>& m);

/// Number of intermediate products of A·B: sum over non-zeros A_ik of
/// |row k of B|. This is the paper's "temporary elements" (x-axis of Fig. 5,
/// "temp" column of Table 2) and also half the FLOP count (one multiply and
/// one add per product).
template <class T>
offset_t intermediate_products(const Csr<T>& a, const Csr<T>& b);

/// Per-row intermediate product counts (used by row-binning baselines).
template <class T>
std::vector<offset_t> intermediate_products_per_row(const Csr<T>& a,
                                                    const Csr<T>& b);

/// FLOPs of the product: 2 * intermediate_products (the convention used by
/// all GPU SpGEMM papers when reporting GFLOPS).
template <class T>
offset_t spgemm_flops(const Csr<T>& a, const Csr<T>& b);

/// Compaction factor: intermediate products / nnz(C). The paper observes
/// ESC loses to hashing when this grows large (up to 150 for hood/cant).
template <class T>
double compaction_factor(const Csr<T>& a, const Csr<T>& b, offset_t nnz_c);

/// Histogram of row lengths with the given bucket boundaries
/// (buckets[i] <= len < buckets[i+1]); final bucket is open-ended.
template <class T>
std::vector<offset_t> row_length_histogram(const Csr<T>& m,
                                           const std::vector<index_t>& buckets);

extern template RowStats row_stats(const Csr<float>&);
extern template RowStats row_stats(const Csr<double>&);
extern template offset_t intermediate_products(const Csr<float>&, const Csr<float>&);
extern template offset_t intermediate_products(const Csr<double>&, const Csr<double>&);
extern template std::vector<offset_t> intermediate_products_per_row(const Csr<float>&, const Csr<float>&);
extern template std::vector<offset_t> intermediate_products_per_row(const Csr<double>&, const Csr<double>&);
extern template offset_t spgemm_flops(const Csr<float>&, const Csr<float>&);
extern template offset_t spgemm_flops(const Csr<double>&, const Csr<double>&);
extern template double compaction_factor(const Csr<float>&, const Csr<float>&, offset_t);
extern template double compaction_factor(const Csr<double>&, const Csr<double>&, offset_t);
extern template std::vector<offset_t> row_length_histogram(const Csr<float>&, const std::vector<index_t>&);
extern template std::vector<offset_t> row_length_histogram(const Csr<double>&, const std::vector<index_t>&);

}  // namespace acs
