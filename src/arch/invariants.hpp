#pragma once
/// \file invariants.hpp
/// Compile-time proofs of the arch layer's contracts, in the style of
/// core/invariants.hpp and tune/invariants.hpp. Included from arch.cpp so
/// every build re-checks them. The per-arch *tuner feasibility* proofs
/// (which block shapes each device accepts) live in tune/invariants.hpp,
/// which sits above this layer; here we pin what the tags themselves
/// promise:
///  1. SimTitanXp's constants reproduce sim::DeviceConfig's defaults
///     exactly, so selecting the default arch is bit- and cost-model-
///     compatible with the pre-arch pipeline.
///  2. NativeCpu mirrors SimTitanXp's block geometry — same scratchpad
///     budget, same threads per block — which is what makes the native
///     backend's outputs bit-identical to the simulated ones (identical
///     ESC working-set bounds ⇒ identical iteration structure).
///  3. SimBigDevice really is bigger where it matters (the widened
///     feasible region tune/invariants.hpp proves depends on it).

#include "arch/arch.hpp"
#include "sim/device_config.hpp"

namespace acs::arch::invariants {

// 1. The default arch IS the default device.
static_assert(device_config<SimTitanXp>() == sim::DeviceConfig{});

// 2. NativeCpu executes under SimTitanXp's geometry. The scratchpad bound
// drives Pipeline::validate and tune::fits_device, the thread count drives
// temp_capacity — equality of these is the bit-identity precondition.
static_assert(NativeCpu::kScratchpadBytes == SimTitanXp::kScratchpadBytes);
static_assert(NativeCpu::kThreadsPerBlock == SimTitanXp::kThreadsPerBlock);
static_assert(device_config<NativeCpu>() == device_config<SimTitanXp>());
static_assert(NativeCpu::kExec == ExecKind::kNative);
static_assert(SimTitanXp::kExec == ExecKind::kSimulated);

// 3. SimBigDevice widens the scratchpad (2×) and the SM count; block
// geometry stays the paper's 256 threads so tuned overlays transfer.
static_assert(SimBigDevice::kScratchpadBytes ==
              2 * SimTitanXp::kScratchpadBytes);
static_assert(SimBigDevice::kNumSms > SimTitanXp::kNumSms);
static_assert(SimBigDevice::kThreadsPerBlock == SimTitanXp::kThreadsPerBlock);

// Ids are distinct and stable (persisted in tune-cache records — see
// runtime/tune_persist.hpp format notes).
static_assert(static_cast<unsigned>(SimTitanXp::kId) == 0);
static_assert(static_cast<unsigned>(SimBigDevice::kId) == 1);
static_assert(static_cast<unsigned>(NativeCpu::kId) == 2);

// arch_info round-trips the tag constants through dispatch_arch.
static_assert(arch_info(ArchId::kSimBigDevice).device.scratchpad_bytes ==
              SimBigDevice::kScratchpadBytes);
static_assert(arch_info(ArchId::kNativeCpu).exec == ExecKind::kNative);

}  // namespace acs::arch::invariants
