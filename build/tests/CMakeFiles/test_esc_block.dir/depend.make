# Empty dependencies file for test_esc_block.
# This may be replaced when dependencies are built.
