# Empty dependencies file for acs_sim.
# This may be replaced when dependencies are built.
