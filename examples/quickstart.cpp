/// \file quickstart.cpp
/// Minimal end-to-end tour of the public API: build a sparse matrix, square
/// it with AC-SpGEMM, inspect the execution statistics and a stage trace,
/// and round-trip the result through Matrix Market I/O.
///
/// Run:  ./quickstart [rows] [avg_row_len]

#include <cstdlib>
#include <iostream>

#include "core/acspgemm.hpp"
#include "matrix/generators.hpp"
#include "matrix/mmio.hpp"
#include "matrix/stats.hpp"
#include "suite/bench_runner.hpp"
#include "trace/exporters.hpp"
#include "trace/trace.hpp"

int main(int argc, char** argv) {
  const acs::index_t rows = argc > 1 ? std::atoi(argv[1]) : 10000;
  const double avg = argc > 2 ? std::atof(argv[2]) : 8.0;

  // 1. Build (or load) a CSR matrix. read_matrix_market_file() loads .mtx
  //    files; here we generate a reproducible random matrix instead.
  const auto a = acs::gen_uniform_random<double>(rows, rows, avg, avg / 4, 42);
  std::cout << "A: " << a.rows << " x " << a.cols << ", " << a.nnz()
            << " non-zeros, avg row length "
            << acs::row_stats(a).avg_len << "\n";

  // 2. Multiply. The default Config reproduces the paper's setup (256
  //    threads, 256 nnz/block, 8 elements/thread, 4 retained). Attaching a
  //    TraceSession records a span per pipeline stage; results and stats
  //    are unaffected.
  acs::trace::TraceSession session;
  acs::Config cfg;
  cfg.trace = &session;
  acs::SpgemmStats stats;
  const auto c = acs::multiply(a, a, cfg, &stats);

  std::cout << "C = A*A: " << c.nnz() << " non-zeros\n";
  std::cout << "intermediate products: " << stats.intermediate_products
            << " (compaction factor "
            << static_cast<double>(stats.intermediate_products) /
                   static_cast<double>(c.nnz())
            << ")\n";
  std::cout << "simulated GPU time: " << stats.sim_time_s * 1e3 << " ms  ("
            << stats.gflops() << " GFLOPS)\n";
  std::cout << "restarts: " << stats.restarts
            << ", chunk pool used: "
            << static_cast<double>(stats.pool_used_bytes) / 1024.0 / 1024.0
            << " MB of "
            << static_cast<double>(stats.pool_bytes) / 1024.0 / 1024.0
            << " MB allocated\n";
  std::cout << "stage trace (src/trace observability layer):\n"
            << acs::trace::to_table(session);

  // 3. Results are bit-stable: a second run gives bit-identical values.
  const auto c2 = acs::multiply(a, a);
  std::cout << "bit-stable across runs: "
            << (c.equals_exact(c2) ? "yes" : "NO (bug!)") << "\n";

  // 4. Save the product for external tools.
  const std::string out = acs::bench_out_path("quickstart_product.mtx");
  acs::write_matrix_market_file(out, c);
  std::cout << "wrote " << out << "\n";
  return 0;
}
