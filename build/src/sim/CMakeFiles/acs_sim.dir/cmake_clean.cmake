file(REMOVE_RECURSE
  "CMakeFiles/acs_sim.dir/cost_model.cpp.o"
  "CMakeFiles/acs_sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/acs_sim.dir/metrics.cpp.o"
  "CMakeFiles/acs_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/acs_sim.dir/scheduler.cpp.o"
  "CMakeFiles/acs_sim.dir/scheduler.cpp.o.d"
  "libacs_sim.a"
  "libacs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
