#pragma once
/// \file engine.hpp
/// Batched, plan-caching SpGEMM execution engine. An Engine owns a job
/// queue and a worker pool: `submit` enqueues one multiplication C = A·B
/// and returns a future-like JobHandle, `multiply_batch` runs a whole batch
/// and collects the results. Every job goes through the plan cache (reusing
/// global load balancing and learned pool sizes across identical sparsity
/// patterns) and the pool arena (recycling chunk-pool capacity instead of
/// allocating per call), and each engine worker keeps one warm
/// BlockScheduler across jobs.
///
/// Determinism: each job individually keeps the DESIGN.md §6 contract —
/// its output is bit-identical for any engine worker count, any plan-cache
/// state and any pool-arena state, because plans and recycled pools only
/// shortcut setup work (the restart/pool-size independence of the core
/// pipeline is property-tested). Per-job *statistics* (restarts, pool
/// bytes) may differ between cold and warm runs; results never do.
///
/// Example:
/// \code
///   acs::runtime::Engine<double> engine({.workers = 4});
///   auto h1 = engine.submit(a, p);
///   auto h2 = engine.submit(r, ap);
///   acs::Csr<double> ap2 = h1.result().c;   // blocks until done
///   double rate = engine.plan_counters().hit_rate();
/// \endcode

#include <chrono>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "arch/arch_id.hpp"
#include "core/acspgemm.hpp"
#include "core/chunk.hpp"
#include "core/thread_annotations.hpp"
#include "runtime/plan_cache.hpp"
#include "runtime/pool_arena.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "tune/tuner.hpp"

namespace acs::runtime {

struct EngineConfig {
  /// Worker threads executing jobs; 0 = std::thread::hardware_concurrency().
  /// Each job runs on one worker (its simulated blocks may additionally use
  /// `Config::scheduler_threads` scheduler threads).
  unsigned workers = 1;
  /// Maximum plans kept by the LRU plan cache.
  std::size_t plan_cache_capacity = 64;
  /// Reuse load balancing + learned pool sizes across identical patterns.
  bool use_plan_cache = true;
  /// Recycle chunk-pool capacity across jobs instead of per-call allocation.
  bool use_pool_arena = true;
  /// Backend every job executes on (src/arch, docs/BACKENDS.md). The
  /// default `kSimTitanXp` leaves each submitted Config untouched — bit-
  /// and cost-model-compatible with the pre-arch engine. Any other arch is
  /// overlaid on the Config at submission (`apply_arch`): its device
  /// constants and execution kind replace the Config's, the plan cache and
  /// the persistent tune cache are keyed by the arch so plans never replay
  /// across backends, and a `tuner` left at the stock grids is seeded from
  /// `tune::default_tuner_options(arch)` (SimBigDevice widens the
  /// nnz_per_block grid to what its 96 KiB scratchpad admits).
  arch::ArchId arch = arch::ArchId::kSimTitanXp;
  /// Host threads driving each job's blocks under `ArchId::kNativeCpu`
  /// (applied as `Config::scheduler_threads`); 0 = one per hardware
  /// thread. Ignored by simulated archs, whose submitted thread count
  /// stands.
  unsigned native_threads = 0;
  /// Attach an engine-owned TraceSession to every job whose Config does not
  /// already carry one. The session is returned on `JobResult::trace` (stage
  /// spans + counters, exportable via trace/exporters.hpp). Off by default:
  /// tracing is cheap but not free, and throughput benches gate on the
  /// untraced path.
  bool collect_job_traces = false;
  /// Per-job fault injection: when set, called with the job's 0-based
  /// submission sequence number to build the chunk-pool `AllocationPolicy`
  /// installed on that job (see src/fault/policies.hpp for the deterministic
  /// injectors). The engine owns the returned policy for the job's duration.
  /// A policy the caller already placed on the job's own Config wins; a null
  /// return injects nothing for that job. Injected denials surface as
  /// restarts / pool denials on the job's `JobResult::metrics` and the
  /// engine-wide `Engine::metrics()` — results stay bit-identical (the
  /// determinism contract extends to injected exhaustion).
  std::function<std::unique_ptr<AllocationPolicy>(std::size_t)>
      make_alloc_policy;
  /// Per-job parameter auto-tuning (src/tune). `kOff` (default) runs every
  /// job with its submitted Config verbatim. `kStaticCostModel` extracts
  /// structural features on the first job of each structure fingerprint,
  /// ranks the tuner's candidate grid through the sim cost model, stores
  /// the winner on the plan (`SpgemmPlan::tuned`) and replays it for free
  /// on every cache hit. `kFeedback` additionally re-ranks once per
  /// fingerprint after the first run, substituting the exact measured
  /// product count (`SpgemmStats::intermediate_products`) for the sampled
  /// estimate; the refined choice is stable from then on. Tuning decisions
  /// are pure functions of sparsity structure, so with `kStaticCostModel`
  /// the engine's determinism contract is untouched; under `kFeedback` the
  /// first run of a fingerprint may use different parameters than later
  /// runs, which can shift last-bit float association (DESIGN.md §9).
  /// Without the plan cache, tuning still works but re-ranks every job.
  tune::TuningMode tuning = tune::TuningMode::kOff;
  /// Candidate grids + feature sampling used when `tuning` != kOff.
  tune::TunerOptions tuner;
  /// Cold-tune candidate budget: at most this many feasible candidates are
  /// priced when a structure fingerprint is tuned for the first time
  /// (predictor-only ranking, `AutoTuner::rank_budgeted`); 0 = price the
  /// whole grid. The cold choose never runs the simulated-execution cost
  /// model either way — with the default kThroughput objective the
  /// unbudgeted cold pick is identical to the full ranking's, just without
  /// the O(blocks) makespan pricing per candidate.
  std::size_t cold_tune_candidate_budget = 0;
  /// Cold-tune feature budget: caps the A-entries sampled by the cold
  /// feature extraction (stride is raised and `tuner.min_samples` lowered
  /// to meet it); 0 = use `tuner` sampling verbatim. Background re-tunes
  /// and the sync feedback pass always use the full `tuner` sampling.
  std::size_t cold_tune_feature_samples = 0;
  /// Run the kFeedback re-ranking on a background thread instead of inline:
  /// the first job of a fingerprint returns after the predictor-only cold
  /// tune, and a low-priority tuner thread later swaps the measured-count
  /// refinement into the plan cache atomically (`PlanCache::upgrade_tuned`).
  /// Low-priority is real: queued re-tunes defer while foreground jobs are
  /// in flight (bounded — a saturated engine still refines within ~250 ms)
  /// so cold bursts never contend with the tuner for cores.
  /// Jobs in flight during the swap keep the engine's bit-identical output
  /// contract — tuned parameters only regroup work. No effect unless
  /// `tuning == kFeedback`.
  bool background_retune = false;
  /// When non-empty, tuned parameters persist across processes: the
  /// constructor loads this file (runtime/tune_persist.hpp) and seeds the
  /// plan cache with every verified entry, and the destructor (or an
  /// explicit `flush_tune_cache()`) writes the current tuned plans back.
  /// A missing, corrupt, or incompatibly-tuned file loads as a clean cold
  /// start. Requires `use_plan_cache`.
  std::string tune_cache_path;
};

/// Overlay `ecfg`'s backend onto a job Config: the identity for the
/// default arch (kSimTitanXp — the submitted Config runs verbatim); for
/// every other arch, the tag's device constants and execution kind replace
/// the Config's, and NativeCpu additionally resolves the scheduler thread
/// count from `EngineConfig::native_threads` (0 = one per hardware
/// thread). `Engine::submit` applies this to every job; serving layers
/// that price or tune jobs before submission (src/serve) call it
/// themselves so their predictions see the device the job will run on.
void apply_arch(Config& cfg, const EngineConfig& ecfg);

/// Aggregate engine statistics (plan and pool details come from
/// `Engine::plan_counters()` / `Engine::arena_counters()`).
struct EngineStats {
  std::size_t jobs_submitted = 0;
  std::size_t jobs_completed = 0;  ///< includes failed jobs
  std::size_t jobs_failed = 0;
  std::size_t restarts = 0;        ///< summed over completed jobs
  /// Predictor-only cold tunes run (first sight of a structure fingerprint
  /// with no persisted/cached decision).
  std::size_t cold_tunes = 0;
  /// Background re-tunes completed by the tuner thread.
  std::size_t bg_tunes = 0;
  /// Tuned plans seeded from the persistent tune cache at construction.
  std::size_t cache_loads = 0;
};

template <class T>
struct JobResult {
  Csr<T> c;
  SpgemmStats stats;
  bool plan_hit = false;             ///< plan served from the cache
  std::size_t pool_reused_bytes = 0; ///< pool request covered by the arena
  /// Parameter overlay this run executed with (invalid when tuning was off
  /// or no feasible candidate existed — the job then ran its Config as-is).
  TunedParams tuned;
  /// Per-job metrics snapshot (always filled on success; stage times come
  /// from `stats`, the trace counter block from `trace` when attached).
  trace::MetricsSnapshot metrics;
  /// Engine-owned trace session when `EngineConfig::collect_job_traces` is
  /// set and the job's Config had no session of its own; null otherwise.
  std::shared_ptr<trace::TraceSession> trace;
  /// Set when the job failed; `c`/`stats`/`metrics` are then default-valued.
  /// `JobHandle::result()` rethrows it, `multiply_batch` returns it in-place
  /// so one bad pair cannot abandon its siblings' results.
  std::exception_ptr error;

  [[nodiscard]] bool failed() const { return error != nullptr; }
};

namespace detail {

template <class T>
struct JobState {
  Csr<T> a;
  Csr<T> b;
  Config cfg;
  std::size_t seq = 0;  ///< submission sequence number (fault injection key)
  /// Completion hook (may be empty). Invoked exactly once on the worker
  /// thread, after the job ran but *before* the result is published to the
  /// handle — the callback has the JobResult to itself, no handle waiter
  /// can observe or move it concurrently. See Engine::submit overload.
  std::function<void(JobResult<T>&)> on_complete;

  acs::Mutex job_m;
  acs::CondVar cv;
  bool done ACS_GUARDED_BY(job_m) = false;
  JobResult<T> result ACS_GUARDED_BY(job_m);
  std::exception_ptr error ACS_GUARDED_BY(job_m);

  /// Publish the job's outcome. Idempotent: the first completion wins, so a
  /// worker that fails while publishing can be completed again by its
  /// work_loop safety net without clobbering an already-delivered result.
  void complete(JobResult<T> r, std::exception_ptr e) ACS_EXCLUDES(job_m) {
    {
      acs::MutexLock lock(job_m);
      if (done) return;
      result = std::move(r);
      error = e;
      done = true;
    }
    cv.notify_all();
  }
};

}  // namespace detail

template <class T>
class Engine;

/// Future-like handle to a submitted job. Cheap to copy; all copies refer
/// to the same result.
template <class T>
class JobHandle {
 public:
  JobHandle() = default;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  [[nodiscard]] bool ready() const {
    acs::MutexLock lock(state_->job_m);
    return state_->done;
  }

  void wait() const {
    acs::MutexLock lock(state_->job_m);
    while (!state_->done) state_->cv.wait(lock);
  }

  /// Block until the job finishes; rethrows the job's exception (e.g.
  /// dimension mismatch) if it failed. The reference stays valid as long as
  /// any handle to the job exists.
  [[nodiscard]] JobResult<T>& result() const {
    wait();
    // Relocking after wait() keeps the guarded reads provable; once `done`
    // is set the state is immutable (complete() is first-writer-wins), so
    // the returned reference stays safe to use unlocked.
    acs::MutexLock lock(state_->job_m);
    if (state_->error) std::rethrow_exception(state_->error);
    return state_->result;
  }

 private:
  friend class Engine<T>;
  explicit JobHandle(std::shared_ptr<detail::JobState<T>> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::JobState<T>> state_;
};

template <class T>
class Engine {
 public:
  explicit Engine(EngineConfig config = {});
  /// Drains the queue (waits for every submitted job) before stopping.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Enqueue C = A·B. Operands are taken by value: move them in to avoid
  /// the copy, or pass lvalues to keep the caller's matrices.
  JobHandle<T> submit(Csr<T> a, Csr<T> b, Config cfg = {});

  /// Non-blocking completion hook: like `submit`, but `on_complete` is
  /// invoked on the worker thread once the job finishes (success or
  /// failure — check `JobResult::failed()`), before the result is
  /// published to the returned handle. The callback may mutate the result;
  /// what it leaves behind is what handle waiters see. It must not block
  /// on this job's own handle (the result is not published yet) and should
  /// stay short — the worker cannot pick up its next job until it returns.
  /// A throwing callback fails the job with its exception. Serving layers
  /// (src/serve) use this to chain dispatch without a waiter thread.
  JobHandle<T> submit(Csr<T> a, Csr<T> b, Config cfg,
                      std::function<void(JobResult<T>&)> on_complete);

  /// Submit every pair and wait for all of them; results are returned in
  /// submission order. A failing job does not throw and does not disturb its
  /// siblings: its entry carries the exception on `JobResult::error` (check
  /// `failed()`) while every other entry holds its normal result.
  std::vector<JobResult<T>> multiply_batch(
      const std::vector<std::pair<Csr<T>, Csr<T>>>& pairs,
      const Config& cfg = {});

  /// Block until every submitted job has completed.
  void wait_all() ACS_EXCLUDES(m_);

  /// Block until the background tuner thread has drained its queue (no-op
  /// when `EngineConfig::background_retune` is off). Jobs submitted while
  /// waiting may enqueue further re-tunes; call after `wait_all()` for a
  /// quiescent engine.
  void wait_background_tunes() ACS_EXCLUDES(bg_m_);

  /// Write every tuned cached plan to `EngineConfig::tune_cache_path` now
  /// (the destructor does this automatically). Returns false when no path
  /// is configured or the write failed; the previous file survives a failed
  /// write intact.
  bool flush_tune_cache();

  [[nodiscard]] EngineStats stats() const ACS_EXCLUDES(m_);
  /// Rolling metrics aggregated over every successfully completed job
  /// (stage sim-time totals, restarts, pool high-water marks, trace
  /// counters of jobs that ran with a session attached).
  [[nodiscard]] trace::MetricsSnapshot metrics() const ACS_EXCLUDES(m_);
  [[nodiscard]] PlanCache::Counters plan_counters() const {
    return cache_.counters();
  }
  [[nodiscard]] PoolArena::Counters arena_counters() const {
    return arena_.counters();
  }
  [[nodiscard]] unsigned workers() const {
    return static_cast<unsigned>(workers_.size());
  }
  /// Jobs queued but not yet picked up by a worker (introspection for
  /// backpressure layers; racy by nature — a snapshot, not a fence).
  [[nodiscard]] std::size_t queue_depth() const ACS_EXCLUDES(m_) {
    acs::MutexLock lock(m_);
    return queue_.size();
  }
  /// Jobs submitted and not yet completed (queued + executing).
  [[nodiscard]] std::size_t in_flight() const ACS_EXCLUDES(m_) {
    acs::MutexLock lock(m_);
    return in_flight_;
  }

 private:
  /// Per-worker reusable state: one warm BlockScheduler, rebuilt only when
  /// a job requests a different scheduler thread count.
  struct WorkerContext {
    std::unique_ptr<sim::BlockScheduler> scheduler;
    unsigned scheduler_threads = 0;
  };

  /// One queued background re-tune. Holds the job state (keeping the
  /// operand matrices alive without copying) and a cleaned base Config —
  /// the submitted numeric parameters, with the engine-injected trace /
  /// fault-policy pointers stripped (they may dangle after the job ran and
  /// a tuning decision must not depend on them anyway).
  struct BgTune {
    Fingerprint key;
    std::shared_ptr<detail::JobState<T>> job;
    Config base;
    offset_t measured_products = 0;
    /// When the task was queued — bounds how long deferral may hold it.
    std::chrono::steady_clock::time_point enqueued;
  };

  /// True when no submitted job is queued or executing. The background
  /// tuner polls this to stay off the foreground's critical path (holding
  /// bg_m_ — the one sanctioned bg_m_ -> m_ nesting, lock_order.toml).
  [[nodiscard]] bool foreground_idle() const ACS_EXCLUDES(m_) {
    acs::MutexLock lock(m_);
    return in_flight_ == 0;
  }

  void work_loop() ACS_EXCLUDES(m_, bg_m_);
  void run_job(const std::shared_ptr<detail::JobState<T>>& job,
               WorkerContext& ctx) ACS_EXCLUDES(m_, bg_m_);
  void bg_loop() ACS_EXCLUDES(bg_m_, m_);
  void load_persisted_tunes() ACS_EXCLUDES(m_);

  EngineConfig config_;
  PlanCache cache_;
  PoolArena arena_;

  mutable acs::Mutex m_;
  acs::CondVar work_cv_;
  acs::CondVar idle_cv_;
  std::deque<std::shared_ptr<detail::JobState<T>>> queue_ ACS_GUARDED_BY(m_);
  std::size_t in_flight_ ACS_GUARDED_BY(m_) = 0;  ///< queued + executing
  bool stop_ ACS_GUARDED_BY(m_) = false;
  EngineStats stats_ ACS_GUARDED_BY(m_);
  trace::MetricsSnapshot metrics_ ACS_GUARDED_BY(m_);

  acs::Mutex bg_m_;
  acs::CondVar bg_cv_;       ///< wakes the tuner thread
  acs::CondVar bg_idle_cv_;  ///< wakes wait_background_tunes
  std::deque<BgTune> bg_queue_ ACS_GUARDED_BY(bg_m_);
  bool bg_busy_ ACS_GUARDED_BY(bg_m_) = false;  ///< tuner holds a task
  bool bg_stop_ ACS_GUARDED_BY(bg_m_) = false;
  /// Callers inside wait_background_tunes(); a positive count overrides
  /// the low-priority deferral so drains finish promptly.
  int bg_drainers_ ACS_GUARDED_BY(bg_m_) = 0;
  /// Background tuning requested and active. Const after construction:
  /// workers read it to nudge the tuner on idle, and probing bg_thread_
  /// instead would race the destructor's join() (see the work_loop note).
  bool bg_enabled_ = false;
  std::thread bg_thread_;  ///< joinable only when bg_enabled_

  std::vector<std::thread> workers_;
};

extern template class Engine<float>;
extern template class Engine<double>;

}  // namespace acs::runtime
