# Empty dependencies file for bench_fig5_trend.
# This may be replaced when dependencies are built.
