/// \file bench_service.cpp
/// Acceptance bench for the multi-tenant serving layer (src/serve). Four
/// phases, each gating one of the PR's serving criteria where the numbers
/// are produced:
///  * fair_overload — three equal-weight tenants flood an open-loop trace;
///    Jain's fairness index over the predicted cost-seconds each tenant got
///    dispatched inside the contended half of the virtual timeline must be
///    >= 0.9 (DRR's whole point: request counts don't matter, cost does).
///  * low_load — paced arrivals with generous deadlines; the p99 virtual
///    latency of admitted jobs stays within the offered deadline slack and
///    the deadline miss rate is < 1% (zero misses in --smoke, which is the
///    CI configuration).
///  * ceiling — the same flood twice, unconstrained vs. under an arena
///    ceiling with shedding enabled: the constrained server must shed and
///    keep serving, not stall — drain wall time within 1.5x of the
///    unconstrained run and every admitted job accounted for.
///  * bit_identity — every served result from every phase, plus an explicit
///    degraded-then-tuned pair and a rejected-then-resubmitted sequence, is
///    compared `equals_exact` against a direct `acs::multiply` under the
///    reconstructed effective Config.
/// All latencies and fairness windows are *virtual* (the deterministic
/// decision timeline), so the gated numbers are reproducible run to run;
/// wall clocks appear only in the ceiling phase's stall check. Emits JSON
/// (stdout + bench_out/bench_service.json) with p50/p99 per tenant, fairness
/// index and reject/shed counters.
///
/// Run:  ./bench_service [jobs_per_tenant] [engine_workers] [--smoke]

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/acspgemm.hpp"
#include "matrix/generators.hpp"
#include "serve/server.hpp"
#include "suite/bench_runner.hpp"
#include "tune/features.hpp"
#include "tune/predictor.hpp"

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using acs::Config;
using acs::Csr;
using acs::serve::ServeHandle;
using acs::serve::ServerConfig;
using acs::serve::ServeStatus;
using acs::serve::SubmitInfo;
using acs::serve::TenantConfig;

/// The serving layer's price for C = A·A (same predictor path as
/// Server::submit) — used to shape arrival schedules in virtual seconds.
double probe_cost(const Csr<double>& a) {
  const acs::tune::TunerOptions opts;
  const auto f =
      acs::tune::extract_features(a, a, opts.sample_stride, opts.min_samples);
  return acs::tune::predict_makespan_s(f, Config{}, sizeof(double));
}

double jain_index(const std::vector<double>& x) {
  double sum = 0.0, sum_sq = 0.0;
  for (const double v : x) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq <= 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(x.size()) * sum_sq);
}

/// Percentile over a copy (nearest-rank on the sorted sample).
double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

double wall_seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct TenantLatency {
  std::vector<double> latency_s;  ///< virtual latencies of served jobs
  std::uint64_t misses = 0;
};

// --- Phase 1: fairness under overload -------------------------------------

struct FairnessReport {
  double jain = 1.0;
  std::vector<double> window_cost_s;  ///< per tenant, contended window
  std::size_t queue_depth_peak = 0;
  bool ok = false;
};

FairnessReport run_fair_overload(const Csr<double>& a, double c,
                                 std::size_t jobs_per_tenant,
                                 unsigned workers,
                                 std::vector<ServeHandle<double>>& served) {
  const std::vector<std::string> names = {"alpha", "beta", "gamma"};
  ServerConfig scfg;
  scfg.engine.workers = workers;
  scfg.tuning = false;
  scfg.admission.executors = 1;  // one modeled executor: pure DRR ordering
  scfg.drr_quantum_s = c / 4.0;
  for (const auto& n : names) scfg.tenants.push_back(TenantConfig{n, 1.0, 0.0, 0.0});
  acs::serve::Server<double> server(scfg);

  std::vector<std::pair<std::size_t, ServeHandle<double>>> handles;
  for (std::size_t j = 0; j < jobs_per_tenant; ++j) {
    for (std::size_t t = 0; t < names.size(); ++t) {
      // Open loop, heavily contended: arrivals 100x faster than service.
      const double arrival =
          0.01 * c * static_cast<double>(j * names.size() + t);
      handles.emplace_back(
          t, server.submit(a, a, SubmitInfo{names[t], 0, arrival, kInf}));
    }
  }
  server.drain();

  // Fairness is judged inside the contended window: the first half of the
  // virtual timeline, where every tenant still has queued demand.
  double t_end = 0.0;
  for (auto& [t, h] : handles)
    t_end = std::max(t_end, h.result().virtual_finish_s);
  const double window = t_end / 2.0;
  FairnessReport rep;
  rep.window_cost_s.assign(names.size(), 0.0);
  for (auto& [t, h] : handles) {
    auto& r = h.result();
    if (r.served() && r.virtual_start_s <= window)
      rep.window_cost_s[t] += r.admission.predicted_cost_s;
    if (r.served()) served.push_back(h);
  }
  rep.jain = jain_index(rep.window_cost_s);
  rep.queue_depth_peak = server.stats().queue_depth_peak;
  rep.ok = rep.jain >= 0.9;
  return rep;
}

// --- Phase 2: deadlines at low load ---------------------------------------

struct DeadlineReport {
  std::map<std::string, TenantLatency> tenants;
  std::uint64_t admitted = 0;
  std::uint64_t misses = 0;
  std::uint64_t degraded = 0;
  double deadline_slack_s = 0.0;
  double p99_s = 0.0;
  bool ok = false;
};

DeadlineReport run_low_load(const Csr<double>& a, const Csr<double>& b,
                            double c, std::size_t jobs_per_tenant,
                            unsigned workers, bool smoke,
                            std::vector<ServeHandle<double>>& served,
                            std::vector<ServeHandle<double>>& degraded_out) {
  ServerConfig scfg;
  scfg.engine.workers = workers;
  scfg.tuning = true;  // exercise the graceful-degradation counters
  scfg.tune_latency_s = 2.0 * c;
  scfg.admission.executors = 1;
  scfg.tenants = {TenantConfig{"interactive", 2.0, 0.0, 0.0},
                  TenantConfig{"batch", 1.0, 0.0, 0.0}};
  acs::serve::Server<double> server(scfg);

  DeadlineReport rep;
  rep.deadline_slack_s = 4.0 * c;
  std::vector<std::pair<std::string, ServeHandle<double>>> handles;
  for (std::size_t j = 0; j < 2 * jobs_per_tenant; ++j) {
    const std::string tenant = j % 2 ? "batch" : "interactive";
    const auto& am = j % 2 ? b : a;
    // Paced arrivals: three service times apart, so the backlog stays
    // shallow and every deadline is predicted (and then observed) to hold.
    const double arrival = 3.0 * c * static_cast<double>(j);
    handles.emplace_back(
        tenant, server.submit(am, am,
                              SubmitInfo{tenant, 0, arrival,
                                         arrival + rep.deadline_slack_s}));
  }
  server.drain();

  std::vector<double> all;
  for (auto& [tenant, h] : handles) {
    auto& r = h.result();
    if (!r.admission.admitted()) continue;
    ++rep.admitted;
    if (r.deadline_missed) ++rep.misses;
    if (r.degraded) ++rep.degraded;
    if (r.served()) {
      rep.tenants[tenant].latency_s.push_back(r.virtual_latency_s());
      all.push_back(r.virtual_latency_s());
      served.push_back(h);
      if (r.degraded) degraded_out.push_back(h);
    }
    if (r.deadline_missed) ++rep.tenants[tenant].misses;
  }
  rep.p99_s = percentile(all, 99.0);
  const double miss_rate =
      rep.admitted ? static_cast<double>(rep.misses) /
                         static_cast<double>(rep.admitted)
                   : 0.0;
  rep.ok = rep.p99_s <= rep.deadline_slack_s &&
           (smoke ? rep.misses == 0 : miss_rate < 0.01);
  return rep;
}

// --- Phase 3: arena ceiling sheds, never stalls ---------------------------

struct CeilingReport {
  double unconstrained_wall_s = 0.0;
  double constrained_wall_s = 0.0;
  double wall_ratio = 0.0;
  double unconstrained_jobs_per_s = 0.0;
  double constrained_jobs_per_s = 0.0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  std::uint64_t admitted = 0;
  bool ok = false;
};

acs::serve::ServeStats run_flood(const Csr<double>& a, double c,
                                 std::size_t jobs, unsigned workers,
                                 std::size_t ceiling_bytes, double& wall_s,
                                 std::vector<ServeHandle<double>>& served) {
  ServerConfig scfg;
  scfg.engine.workers = workers;
  scfg.tuning = false;
  scfg.admission.executors = 2;
  scfg.drr_quantum_s = c / 4.0;
  scfg.arena_ceiling_bytes = ceiling_bytes;
  scfg.shed_queue_jobs = ceiling_bytes ? 4 : 0;
  scfg.tenants = {TenantConfig{"alpha", 1.0, 0.0, 0.0},
                  TenantConfig{"beta", 1.0, 0.0, 0.0}};
  acs::serve::Server<double> server(scfg);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<ServeHandle<double>> handles;
  for (std::size_t j = 0; j < jobs; ++j) {
    const double arrival = 0.05 * c * static_cast<double>(j);
    handles.push_back(server.submit(
        a, a,
        SubmitInfo{j % 2 ? "beta" : "alpha", static_cast<int>(j % 5),
                   arrival, kInf}));
  }
  server.drain();
  wall_s = wall_seconds(t0);
  for (auto& h : handles)
    if (h.result().served()) served.push_back(h);
  return server.stats();
}

CeilingReport run_ceiling(const Csr<double>& a, double c, std::size_t jobs,
                          unsigned workers,
                          std::vector<ServeHandle<double>>& served) {
  const std::size_t pool = acs::estimate_chunk_pool_bytes(a, a, Config{});
  CeilingReport rep;
  const auto base =
      run_flood(a, c, jobs, workers, 0, rep.unconstrained_wall_s, served);
  // Room for one job's predicted pool but not two: the virtual timeline is
  // permanently memory-gated and must shed the overflow, not wedge.
  const auto capped = run_flood(a, c, jobs, workers, pool + pool / 2,
                                rep.constrained_wall_s, served);
  rep.wall_ratio = rep.unconstrained_wall_s > 0.0
                       ? rep.constrained_wall_s / rep.unconstrained_wall_s
                       : 0.0;
  rep.unconstrained_jobs_per_s =
      rep.unconstrained_wall_s > 0.0
          ? static_cast<double>(base.completed) / rep.unconstrained_wall_s
          : 0.0;
  rep.constrained_jobs_per_s =
      rep.constrained_wall_s > 0.0
          ? static_cast<double>(capped.completed) / rep.constrained_wall_s
          : 0.0;
  rep.shed = capped.shed;
  rep.completed = capped.completed;
  rep.admitted = capped.admitted;
  // Shed-not-stall: the capped run drains in comparable wall time (it does
  // strictly less multiplication work) and loses no admitted job — each is
  // either completed or an accounted shed.
  rep.ok = capped.shed > 0 &&
           capped.completed + capped.shed + capped.failed == capped.admitted &&
           rep.constrained_wall_s <= 1.5 * rep.unconstrained_wall_s + 0.25;
  return rep;
}

// --- Phase 4: bit identity -------------------------------------------------

/// Every served handle must reproduce bit-identically under a direct
/// `acs::multiply` with the reported effective Config. Results are grouped
/// by (operand structure, overlay) — the direct product is computed once
/// per group.
bool verify_bit_identity(std::vector<ServeHandle<double>>& served,
                         const std::vector<const Csr<double>*>& operands) {
  struct Group {
    const Csr<double>* a = nullptr;
    acs::TunedParams tuned;
    Csr<double> expect;
  };
  std::vector<Group> groups;
  for (auto& h : served) {
    auto& r = h.result();
    const Csr<double>* a = nullptr;
    for (const auto* m : operands)
      if (m->rows == r.job.c.rows) a = m;
    if (a == nullptr) return false;
    Group* g = nullptr;
    for (auto& cand : groups)
      if (cand.a == a && cand.tuned == r.tuned_applied) g = &cand;
    if (g == nullptr) {
      Config eff;
      r.tuned_applied.apply(eff);
      groups.push_back(Group{a, r.tuned_applied, acs::multiply(*a, *a, eff)});
      g = &groups.back();
    }
    if (!r.job.c.equals_exact(g->expect)) return false;
  }
  return true;
}

/// The explicit degraded -> tuned -> rejected -> resubmitted storyline.
bool run_identity_storyline(const Csr<double>& a, double c, unsigned workers) {
  ServerConfig scfg;
  scfg.engine.workers = workers;
  scfg.tuning = true;
  scfg.tune_latency_s = 2.0 * c;
  scfg.admission.executors = 1;
  acs::serve::Server<double> server(scfg);

  auto cold = server.submit(a, a, SubmitInfo{"alpha", 0, 0.0, kInf});
  auto doomed = server.submit(a, a, SubmitInfo{"alpha", 0, 0.0, 0.5 * c});
  auto warm = server.submit(a, a, SubmitInfo{"alpha", 0, 3.0 * c, kInf});
  // The rejected client resubmits with a workable deadline.
  auto retry = server.submit(a, a, SubmitInfo{"alpha", 0, 4.0 * c, 10.0 * c});
  server.drain();

  if (!cold.result().degraded || !cold.result().served()) return false;
  if (doomed.result().status != ServeStatus::kRejected) return false;
  if (warm.result().degraded || !warm.result().served()) return false;
  if (!retry.result().served()) return false;

  const auto plain = acs::multiply(a, a);
  if (!cold.result().job.c.equals_exact(plain)) return false;
  Config eff;
  warm.result().tuned_applied.apply(eff);
  const auto tuned = acs::multiply(a, a, eff);
  if (!warm.result().job.c.equals_exact(tuned)) return false;
  Config eff2;
  retry.result().tuned_applied.apply(eff2);
  return retry.result().job.c.equals_exact(acs::multiply(a, a, eff2));
}

// --- Report ----------------------------------------------------------------

void emit_json(std::ostream& os, std::size_t jobs, unsigned workers,
               bool smoke, const FairnessReport& fair,
               const DeadlineReport& dl, const CeilingReport& ceil,
               bool bit_ok) {
  os << "{\n  \"bench\": \"service\", \"jobs_per_tenant\": " << jobs
     << ", \"engine_workers\": " << workers
     << ", \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  os << "  \"fair_overload\": {\"jain_fairness\": " << fair.jain
     << ", \"queue_depth_peak\": " << fair.queue_depth_peak
     << ", \"window_cost_s\": [";
  for (std::size_t i = 0; i < fair.window_cost_s.size(); ++i)
    os << (i ? ", " : "") << fair.window_cost_s[i];
  os << "]},\n";
  os << "  \"low_load\": {\"admitted\": " << dl.admitted
     << ", \"deadline_misses\": " << dl.misses
     << ", \"degraded\": " << dl.degraded
     << ", \"deadline_slack_s\": " << dl.deadline_slack_s
     << ", \"p99_s\": " << dl.p99_s << ", \"tenants\": {";
  bool first = true;
  for (const auto& [name, t] : dl.tenants) {
    os << (first ? "" : ", ") << "\"" << name << "\": {\"served\": "
       << t.latency_s.size()
       << ", \"p50_s\": " << percentile(t.latency_s, 50.0)
       << ", \"p99_s\": " << percentile(t.latency_s, 99.0)
       << ", \"deadline_misses\": " << t.misses << "}";
    first = false;
  }
  os << "}},\n";
  os << "  \"ceiling\": {\"unconstrained_wall_s\": "
     << ceil.unconstrained_wall_s
     << ", \"constrained_wall_s\": " << ceil.constrained_wall_s
     << ", \"wall_ratio\": " << ceil.wall_ratio
     << ", \"unconstrained_jobs_per_s\": " << ceil.unconstrained_jobs_per_s
     << ", \"constrained_jobs_per_s\": " << ceil.constrained_jobs_per_s
     << ", \"admitted\": " << ceil.admitted
     << ", \"completed\": " << ceil.completed << ", \"shed\": " << ceil.shed
     << "},\n";
  os << "  \"bit_identical\": " << (bit_ok ? "true" : "false") << ",\n";
  os << "  \"gates\": {\"fairness_ok\": " << (fair.ok ? "true" : "false")
     << ", \"deadline_ok\": " << (dl.ok ? "true" : "false")
     << ", \"shed_not_stall_ok\": " << (ceil.ok ? "true" : "false")
     << ", \"bit_identity_ok\": " << (bit_ok ? "true" : "false") << "}\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke")
      smoke = true;
    else
      positional.push_back(argv[i]);
  }
  const std::size_t jobs =
      positional.size() > 0
          ? static_cast<std::size_t>(std::atoll(positional[0]))
          : (smoke ? 10 : 24);
  const unsigned workers =
      positional.size() > 1
          ? static_cast<unsigned>(std::atoi(positional[1]))
          : std::min(4u, std::max(1u, std::thread::hardware_concurrency()));

  const auto a = acs::gen_uniform_random<double>(220, 220, 6.0, 1.5, 401);
  const auto b = acs::gen_powerlaw<double>(200, 200, 5.0, 1.6, 100, 402);
  const double c = probe_cost(a);
  if (!(c > 0.0)) {
    std::cerr << "predictor returned non-positive cost; aborting\n";
    return 1;
  }

  std::vector<ServeHandle<double>> served;
  const FairnessReport fair = run_fair_overload(a, c, jobs, workers, served);
  DeadlineReport dl;
  {
    std::vector<ServeHandle<double>> degraded;
    dl = run_low_load(a, b, c, jobs, workers, smoke, served, degraded);
  }
  const CeilingReport ceil = run_ceiling(a, c, 2 * jobs, workers, served);
  const bool bit_ok = verify_bit_identity(served, {&a, &b}) &&
                      run_identity_storyline(b, probe_cost(b), workers);

  std::ostringstream json;
  emit_json(json, jobs, workers, smoke, fair, dl, ceil, bit_ok);
  std::cout << json.str();
  std::ofstream(acs::bench_out_path("bench_service.json")) << json.str();

  const bool ok = fair.ok && dl.ok && ceil.ok && bit_ok;
  std::cerr << "jain=" << fair.jain << " p99=" << dl.p99_s
            << " misses=" << dl.misses << "/" << dl.admitted
            << " shed=" << ceil.shed << " wall_ratio=" << ceil.wall_ratio
            << " bit_identical=" << (bit_ok ? "yes" : "no")
            << (ok ? "  [ok]" : "  [BELOW TARGET]") << "\n";
  return ok ? 0 : 1;
}
