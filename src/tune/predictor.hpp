#pragma once
/// \file predictor.hpp
/// Analytic per-stage work prediction for one candidate configuration.
/// The predictor mirrors the pipeline's own accounting (esc_block.cpp,
/// merge.cpp charge real MetricCounters; acspgemm.cpp schedules them with
/// sim::schedule_blocks) but replaces execution with closed-form estimates
/// over TuneFeatures — so ranking N candidates costs N cost-model
/// evaluations instead of N multiplications. Times come out of the *same*
/// `sim::cost_model` the pipeline uses: per-block counters are scheduled
/// onto the device with `schedule_blocks`, launch overheads and all, which
/// keeps the predictor's preferences aligned with the quantity the benches
/// report.

#include <cstddef>
#include <cstdint>

#include "core/config.hpp"
#include "sim/cost_model.hpp"
#include "tune/features.hpp"

namespace acs::tune {

/// Predicted execution profile of one candidate configuration.
struct CostBreakdown {
  double glb_s = 0.0;    ///< global load balancing kernel
  double esc_s = 0.0;    ///< all local ESC iterations
  double merge_s = 0.0;  ///< merge assignment + Multi/Path/Search merge
  double cc_s = 0.0;     ///< output assembly / chunk copy
  double total_s = 0.0;  ///< sum of the stages above (device makespan)
  /// Total *work*, priced with host-calibrated weights over the same stage
  /// counters (see predictor.cpp's host_work_s). Where `total_s` is the
  /// latency of one multiplication on an otherwise idle simulated device,
  /// `serial_s` is what the execution costs the host scheduler — the
  /// quantity that bounds the engine's batch throughput once independent
  /// jobs keep every worker busy. Relative, not absolute: it ranks
  /// configurations, it does not predict wall seconds.
  double serial_s = 0.0;

  // Intermediate structural estimates, exposed for tests and logging.
  double blocks = 0.0;        ///< ESC blocks (ceil(nnz_a / nnz_per_block))
  double iterations = 0.0;    ///< total local ESC iterations
  double esc_products = 0.0;  ///< products expanded inside ESC blocks
  double long_entries = 0.0;  ///< A entries diverted to pointer chunks
  double chunks = 0.0;        ///< chunks written (ESC + pointer)
  double merged_rows = 0.0;   ///< rows expected to need merging
  double est_nnz_c = 0.0;     ///< estimated output non-zeros
};

/// Calibration generation of the closed-form weights above (the ns-per-op
/// constants in predictor.cpp). Bump on any weight change: the persistent
/// tune cache (runtime/tune_persist.hpp) folds this into its options hash,
/// so plans tuned under stale weights load as a clean cold miss instead of
/// being served as if current.
inline constexpr std::uint32_t kPredictorCalibrationVersion = 1;

/// Predict the cost of running C = A·B (characterized by `f`) under `cfg`.
/// `value_bytes` is sizeof(T) of the value type (the predictor is not
/// templated; only byte volumes depend on T). `products_override` > 0
/// replaces `f.est_products` with an exact measured count — the feedback
/// path. Deterministic: equal inputs give bit-equal outputs.
///
/// `simulate_makespan` = false skips the `sim::schedule_blocks` pricing of
/// the per-stage device makespans — the O(blocks) part that makes full
/// ranking expensive. The stage times and `total_s` then come back 0;
/// `serial_s` and every structural estimate are unchanged (they are pure
/// closed forms). This is the predictor-only cold-tuning path: ranking by
/// `serial_s` costs microseconds per candidate regardless of matrix size.
CostBreakdown predict_cost(const TuneFeatures& f, const Config& cfg,
                           std::size_t value_bytes,
                           double products_override = 0.0,
                           bool simulate_makespan = true);

/// Predicted device makespan (`CostBreakdown::total_s`) of one C = A·B in
/// simulated seconds — the serving layer's pricing seam: admission control
/// (serve/admission.hpp) charges every request this quantity against
/// deadlines, token-bucket quotas and the fair scheduler. Deterministic
/// like `predict_cost`; costs one closed-form evaluation, so pricing a
/// request is cheap next to running it.
double predict_makespan_s(const TuneFeatures& f, const Config& cfg,
                          std::size_t value_bytes,
                          double products_override = 0.0);

}  // namespace acs::tune
