# Empty dependencies file for bench_hybrid_extension.
# This may be replaced when dependencies are built.
