#include <gtest/gtest.h>

#include <cmath>

#include "core/acspgemm.hpp"
#include "matrix/generators.hpp"

namespace acs {
namespace {

/// Bit-stability property tests (the paper's headline guarantee): identical
/// inputs must produce bit-identical outputs across repeated runs, scheduler
/// thread counts, pool sizes (i.e. restart patterns) and block shapes that
/// change iteration boundaries. No value quantization here — raw
/// floating-point results are compared exactly.

Csr<float> hard_matrix() {
  // Wide dynamic range values maximize the chance that any accumulation
  // order difference shows up in the bits.
  auto m = gen_powerlaw<float>(900, 900, 7.0, 1.6, 300, 777);
  for (std::size_t i = 0; i < m.values.size(); ++i)
    m.values[i] *= static_cast<float>(1 + (i % 13)) *
                   ((i % 7 == 0) ? 1e6f : 1e-6f);
  return m;
}

TEST(Determinism, RepeatedRunsBitIdentical) {
  const auto m = hard_matrix();
  const auto c1 = multiply(m, m);
  const auto c2 = multiply(m, m);
  EXPECT_TRUE(c1.equals_exact(c2));
}

TEST(Determinism, IndependentOfSchedulerThreads) {
  const auto m = hard_matrix();
  Config seq, par;
  seq.scheduler_threads = 1;
  par.scheduler_threads = 8;
  EXPECT_TRUE(multiply(m, m, seq).equals_exact(multiply(m, m, par)));
}

TEST(Determinism, IndependentOfRestarts) {
  // A shrunken pool changes where blocks stop and replay; results must not.
  const auto m = hard_matrix();
  Config roomy, tight;
  tight.pool_override_bytes = 16 * 1024;
  SpgemmStats stats;
  const auto c_tight = multiply(m, m, tight, &stats);
  EXPECT_GT(stats.restarts, 0);
  EXPECT_TRUE(multiply(m, m, roomy).equals_exact(c_tight));
}

TEST(Determinism, EachBlockShapeIsInternallyBitStable) {
  // Bit-stability is a per-configuration guarantee: different block shapes
  // group chunk partial sums differently (the merge adds subtree sums), so
  // cross-shape results may differ in the last bits — but every shape must
  // be bit-stable against itself, including with a thread pool.
  const auto m = hard_matrix();
  for (int shape = 0; shape < 2; ++shape) {
    Config cfg;
    if (shape == 1) {
      cfg.nnz_per_block = 32;
      cfg.threads = 32;
      cfg.elements_per_thread = 8;
      cfg.retain_per_thread = 2;
    }
    const auto c1 = multiply(m, m, cfg);
    Config par = cfg;
    par.scheduler_threads = 8;
    EXPECT_TRUE(c1.equals_exact(multiply(m, m, cfg))) << "shape " << shape;
    EXPECT_TRUE(c1.equals_exact(multiply(m, m, par))) << "shape " << shape;
  }
}

TEST(Determinism, BlockShapesAgreeOnExactlyRepresentableValues) {
  // With values whose sums are exact in floating point, every grouping gives
  // the same result — so different block shapes must agree exactly.
  auto m = gen_powerlaw<double>(700, 700, 6.0, 1.6, 250, 99);
  for (auto& v : m.values)
    v = std::round(v * 4.0) / 4.0 + 0.25;
  Config big, small;
  small.nnz_per_block = 32;
  small.threads = 32;
  small.elements_per_thread = 8;
  small.retain_per_thread = 2;
  big.long_row_threshold = small.long_row_threshold = 2048;
  EXPECT_TRUE(multiply(m, m, big).equals_exact(multiply(m, m, small)));
}

TEST(Determinism, RetainAblationAgreesOnExactlyRepresentableValues) {
  // Retention changes where rows are split into chunks, i.e. the grouping of
  // partial sums; with exactly representable values both settings must agree
  // exactly (and each is bit-stable against itself by the tests above).
  auto m = gen_powerlaw<double>(700, 700, 6.0, 1.6, 250, 98);
  for (auto& v : m.values)
    v = std::round(v * 4.0) / 4.0 + 0.25;
  Config carry, flush;
  flush.retain_per_thread = 0;
  EXPECT_TRUE(multiply(m, m, carry).equals_exact(multiply(m, m, flush)));
}

TEST(Determinism, IndependentOfBitReduction) {
  const auto m = hard_matrix();
  Config dyn, stat;
  stat.dynamic_bits = false;
  EXPECT_TRUE(multiply(m, m, dyn).equals_exact(multiply(m, m, stat)));
}

TEST(Determinism, LongRowPathBitStableAcrossRunsAndThreads) {
  // Exercise the pointer-chunk path (long rows of B) and check the full
  // bit-stability contract on it.
  const auto a = gen_uniform_random<float>(200, 60, 6.0, 2.0, 41);
  const auto b =
      inject_long_rows(gen_uniform_random<float>(60, 1200, 3.0, 1.0, 42), 8,
                       700, 43);
  Config cfg;
  cfg.long_row_threshold = 96;
  const auto c1 = multiply(a, b, cfg);
  const auto c2 = multiply(a, b, cfg);
  EXPECT_TRUE(c1.equals_exact(c2));
  Config par = cfg;
  par.scheduler_threads = 8;
  EXPECT_TRUE(c1.equals_exact(multiply(a, b, par)));
  Config tight = cfg;
  tight.pool_override_bytes = 8 * 1024;
  EXPECT_TRUE(c1.equals_exact(multiply(a, b, tight)));
}

}  // namespace
}  // namespace acs
