#include "suite/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace acs {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "12345"});
  const auto s = t.str();
  std::istringstream in(s);
  std::string header, sep, r1, r2;
  std::getline(in, header);
  std::getline(in, sep);
  std::getline(in, r1);
  std::getline(in, r2);
  EXPECT_EQ(header.size(), r1.size());
  EXPECT_EQ(r1.size(), r2.size());
  EXPECT_NE(sep.find("---"), std::string::npos);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NO_THROW(t.str());
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(TextTable, SiFormatting) {
  EXPECT_EQ(TextTable::si(950), "950");
  EXPECT_EQ(TextTable::si(12300), "12.3k");
  EXPECT_EQ(TextTable::si(2.5e6), "2.5M");
  EXPECT_EQ(TextTable::si(3.1e9), "3.1G");
}

TEST(CsvWriter, QuotesSpecialCells) {
  const std::string path = ::testing::TempDir() + "acs_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.write_row({"plain", "with,comma", "with\"quote"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "plain,\"with,comma\",\"with\"\"quote\"");
  std::remove(path.c_str());
}

TEST(CsvWriter, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv"), std::runtime_error);
}

}  // namespace
}  // namespace acs
