#pragma once
/// \file sweep.hpp
/// Injection-point enumerator and sweep (ISSUE 3 tentpole). The sweep makes
/// every chunk-pool allocation site a deliberately reachable restart point:
///
///   1. Clean run — a `CountingPolicy` counts the pool's `try_allocate`
///      attempts and captures the reference output (optionally checked
///      against the SPA Gustavson baseline, the repository's ground truth).
///   2. For each attempt index i (stride/cap configurable), re-run the
///      multiplication under `DenyNthPolicy(i)`: allocation i fails exactly
///      as if the pool were exhausted, the owning block restarts, and the
///      output must come out bit-identical to the clean run.
///
/// A sweep therefore proves the §3.5 restart protocol — `BlockState`
/// replay in ESC, `windows_done` resumption in Path/Search merge, and
/// idempotent long-row chunk creation — at *every* interleaving the
/// allocation sequence admits, not just the ones an undersized pool
/// happens to produce. tests/test_fault.cpp runs it across generators,
/// value types and scheduler thread counts; the ASan/TSan CI presets run
/// it again so replay bugs also surface as sanitizer failures.

#include <cstdint>

#include "core/acspgemm.hpp"
#include "matrix/csr.hpp"

namespace acs::fault {

struct SweepOptions {
  /// Inject at every `stride`-th attempt index (1 = all of them).
  std::uint64_t stride = 1;
  /// Cap on injected runs, 0 = unlimited. Points are taken from the front;
  /// combine with `stride` to sample a long allocation sequence.
  std::uint64_t max_points = 0;
  /// Check the clean run against `spa_multiply` before sweeping.
  bool differential_reference = true;
};

struct SweepReport {
  /// try_allocate attempts of the clean run — the injection-point space.
  std::uint64_t allocation_points = 0;
  /// Injected runs actually executed (after stride / max_points).
  std::uint64_t injected_runs = 0;
  /// Injected runs that recorded at least one restart. The denied
  /// allocation always exists (index < allocation_points), so this must
  /// equal `injected_runs`.
  std::uint64_t runs_with_restart = 0;
  /// Restarts and block-level pool denials summed over injected runs.
  std::uint64_t total_restarts = 0;
  std::uint64_t total_denials = 0;
  /// Injected runs whose output differed from the clean run (must be 0).
  std::uint64_t mismatches = 0;
  /// Attempt index of the first mismatching run (valid when mismatches > 0).
  std::uint64_t first_mismatch_point = 0;
  /// Clean output agreed with the SPA reference (true when the check was
  /// disabled via `SweepOptions::differential_reference`).
  bool reference_agrees = true;

  /// The property the tentpole demands: every injected run restarted and
  /// reproduced the clean output bit-for-bit.
  [[nodiscard]] bool ok() const {
    return mismatches == 0 && reference_agrees &&
           runs_with_restart == injected_runs;
  }
};

/// Count the chunk-pool allocation attempts of one clean run — the number
/// of distinct injection points a full sweep would probe.
template <class T>
[[nodiscard]] std::uint64_t count_allocation_points(const Csr<T>& a,
                                                    const Csr<T>& b,
                                                    Config cfg);

/// Run the full enumerate-then-deny sweep described above. `cfg` is taken
/// by value: the sweep installs its own `alloc_policy` per run (any policy
/// the caller set is ignored); `cfg.trace` is honored and sees every run.
template <class T>
[[nodiscard]] SweepReport sweep_injection_points(const Csr<T>& a,
                                                 const Csr<T>& b, Config cfg,
                                                 const SweepOptions& options = {});

extern template std::uint64_t count_allocation_points(const Csr<float>&,
                                                      const Csr<float>&,
                                                      Config);
extern template std::uint64_t count_allocation_points(const Csr<double>&,
                                                      const Csr<double>&,
                                                      Config);
extern template SweepReport sweep_injection_points(const Csr<float>&,
                                                   const Csr<float>&, Config,
                                                   const SweepOptions&);
extern template SweepReport sweep_injection_points(const Csr<double>&,
                                                   const Csr<double>&, Config,
                                                   const SweepOptions&);

}  // namespace acs::fault
