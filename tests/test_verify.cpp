#include "suite/verify.hpp"

#include <gtest/gtest.h>

#include "baselines/spa_gustavson.hpp"
#include "core/acspgemm.hpp"
#include "matrix/coo.hpp"
#include "matrix/generators.hpp"

namespace acs {
namespace {

TEST(Verify, IdenticalMatricesOk) {
  const auto m = gen_uniform_random<double>(100, 100, 4.0, 1.0, 501);
  const auto r = verify_product(m, m);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.max_rel_error, 0.0);
  EXPECT_EQ(r.frobenius_error, 0.0);
  EXPECT_NE(r.summary().find("OK"), std::string::npos);
}

TEST(Verify, DetectsStructureMismatchWithLocation) {
  auto a = gen_uniform_random<double>(50, 50, 4.0, 1.0, 502);
  auto b = a;
  // Perturb the column of the 3rd entry of some row.
  const index_t row = 20;
  const index_t k = a.row_ptr[row];
  b.col_idx[static_cast<std::size_t>(k)] =
      (b.col_idx[static_cast<std::size_t>(k)] + 1) % 50;
  // Re-sorting may be violated; rebuild through COO to stay canonical.
  auto coo = Coo<double>::from_csr(b);
  b = coo.to_csr();
  const auto r = verify_product(a, b);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.structure_matches);
  EXPECT_GE(r.first_bad_row, 0);
  EXPECT_NE(r.summary().find("STRUCTURE"), std::string::npos);
}

TEST(Verify, DetectsValueDrift) {
  const auto a = gen_uniform_random<double>(80, 80, 4.0, 1.0, 503);
  auto b = a;
  b.values[10] += 1e-3;
  const auto r = verify_product(a, b, 1e-9);
  EXPECT_TRUE(r.structure_matches);
  EXPECT_FALSE(r.values_match);
  EXPECT_GT(r.max_rel_error, 1e-9);
  EXPECT_GT(r.frobenius_error, 0.0);
  EXPECT_NE(r.summary().find("VALUE"), std::string::npos);
}

TEST(Verify, ToleratesSmallDrift) {
  const auto a = gen_uniform_random<double>(80, 80, 4.0, 1.0, 504);
  auto b = a;
  b.values[5] += 1e-13;
  EXPECT_TRUE(verify_product(a, b, 1e-10).ok());
}

TEST(Verify, DimensionMismatch) {
  const auto a = gen_uniform_random<double>(10, 10, 2.0, 1.0, 505);
  const auto b = gen_uniform_random<double>(12, 10, 2.0, 1.0, 506);
  EXPECT_FALSE(verify_product(a, b).ok());
}

TEST(Verify, AcProductVsOracleWithinTolerance) {
  const auto m = gen_powerlaw<double>(400, 400, 5.0, 1.7, 150, 507);
  const auto r = verify_product(multiply(m, m), spa_multiply(m, m), 1e-10);
  EXPECT_TRUE(r.ok()) << r.summary();
}

}  // namespace
}  // namespace acs
