// Fixture: every memory-order argument is justified — the rule must stay
// silent on all four accepted comment placements.
#include <atomic>

std::atomic<int> counter{0};
std::atomic<int> flag{0};

int same_line() {
  return counter.load(std::memory_order_relaxed);  // mo: stat snapshot
}

void block_above() {
  // mo: monotonic tally, read only after the workers join.
  counter.fetch_add(1, std::memory_order_relaxed);
}

void multi_line_statement() {
  // mo: the comment attaches to the whole statement, including the
  // mo: continuation line that carries the order argument.
  counter.fetch_add(2,
                    std::memory_order_relaxed);
}

void suppressed_site() {
  // A deliberate escape hatch for the one-off case.
  flag.store(1, std::memory_order_release);  // lint: allow(mo-justify)
}
