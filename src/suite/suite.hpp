#pragma once
/// \file suite.hpp
/// The synthetic benchmark suite standing in for the SuiteSparse collection
/// (DESIGN.md, substitution table). Each entry names a generator
/// configuration whose structural regime mirrors one of the paper's matrix
/// classes — the names echo the paper's showcase matrices ("…-like") to
/// make the correspondence to Table 2 / Fig. 6 explicit. The paper's
/// evaluation splits the collection at 42 average non-zeros per row
/// (Section 4.1); `highly_sparse()` applies the same split.

#include <cstdint>
#include <string>
#include <vector>

#include "matrix/csr.hpp"

namespace acs {

/// Generator configuration (a tagged union over the matrix generators).
struct GenSpec {
  enum class Kind {
    Uniform,
    UniformLocal,  ///< uniform with column locality (p1 = window width)
    Powerlaw,
    Banded,
    Stencil2D,
    Stencil3D,
    Rmat,
    BlockDense,
    UniformWithLongRows,
  };
  Kind kind = Kind::Uniform;
  index_t rows = 0;
  index_t cols = 0;
  double avg = 0.0;     ///< target average row length
  double spread = 0.0;  ///< uniform jitter / power-law alpha
  index_t p1 = 0;       ///< kind-specific (band, block width, long-row count…)
  index_t p2 = 0;       ///< kind-specific (blocks per row, long-row length…)
  std::uint64_t seed = 1;
};

struct SuiteEntry {
  std::string name;    ///< e.g. "webbase-like"
  std::string domain;  ///< application domain the regime represents
  bool square = true;  ///< false: the benchmark computes A·Aᵀ (paper §4)
  GenSpec spec;
};

/// Instantiate the entry's matrix with the requested value type.
template <class T>
Csr<T> build_matrix(const SuiteEntry& entry);

/// The 16 showcase configurations mirroring Table 2 / Figs. 6-7 / Table 3,
/// in the paper's order (language … TSC_OPF).
const std::vector<SuiteEntry>& showcase_suite();

/// The complete test-set stand-in (Figs. 5, 9-12 and Table 1): ~60 entries
/// spanning every regime at several scales.
const std::vector<SuiteEntry>& full_suite();

/// The paper's Section 4.1 split: average row length <= 42 is "highly
/// sparse" (80% of SuiteSparse), the rest "denser".
bool is_highly_sparse(const SuiteEntry& entry);

extern template Csr<float> build_matrix<float>(const SuiteEntry&);
extern template Csr<double> build_matrix<double>(const SuiteEntry&);

}  // namespace acs
