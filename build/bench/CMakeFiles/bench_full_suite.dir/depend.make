# Empty dependencies file for bench_full_suite.
# This may be replaced when dependencies are built.
