#pragma once
/// \file metrics.hpp
/// Aggregatable per-job / per-engine metrics built from traces and
/// `SpgemmStats`. A `MetricsSnapshot` is the flat, copyable summary the
/// runtime Engine rolls up across workers and the benches print their
/// breakdowns from: per-stage simulated time keyed by the canonical stage
/// order (Fig. 7's GLB/ESC/MCC/MM/PM/SM/CC), pipeline counters, and the
/// session's trace counters when tracing was live.

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "trace/trace.hpp"

namespace acs::trace {

/// Canonical pipeline stages in execution order — the names used by
/// `SpgemmStats::stage_times_s`, the stage spans and Fig. 7.
inline constexpr std::array<const char*, 7> kStageNames = {
    "GLB", "ESC", "MCC", "MM", "PM", "SM", "CC"};
inline constexpr std::size_t kNumStages = kStageNames.size();

/// Index of `name` in `kStageNames`, or -1 for non-stage span names.
[[nodiscard]] int stage_index(std::string_view name);

/// Per-tenant admission/dispatch counters of the serving layer
/// (src/serve). Aggregation merges rows by tenant name.
struct TenantServeCounters {
  std::string tenant;
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;  ///< deadline + quota + queue-full refusals
  std::uint64_t shed = 0;      ///< admitted, dropped under memory pressure
  std::uint64_t completed = 0;
  std::uint64_t degraded = 0;  ///< served on the untuned default plan
  std::uint64_t deadline_misses = 0;

  friend bool operator==(const TenantServeCounters&,
                         const TenantServeCounters&) = default;
};

struct MetricsSnapshot {
  std::uint64_t jobs = 0;
  double wall_time_s = 0.0;  ///< summed host wall time
  double sim_time_s = 0.0;   ///< summed simulated time
  std::array<double, kNumStages> stage_sim_time_s{};
  std::uint64_t restarts = 0;
  /// Blocks denied a chunk-pool allocation (real exhaustion or injected
  /// faults), summed over jobs — filled from `SpgemmStats::pool_denials`,
  /// so it is live even when tracing is off.
  std::uint64_t pool_denials = 0;
  std::uint64_t esc_iterations = 0;
  std::uint64_t chunks_created = 0;
  std::uint64_t long_row_chunks = 0;
  std::uint64_t merged_rows = 0;
  std::uint64_t pool_bytes = 0;       ///< high-water chunk-pool capacity
  std::uint64_t pool_used_bytes = 0;  ///< high-water chunk-pool usage
  /// High-water initial pool sizing (plan or estimator output) — against
  /// pool_used_bytes this is the estimate error the trace exporters show.
  std::uint64_t pool_estimate_bytes = 0;
  /// Trace counters aggregated over jobs; all-zero when tracing was off.
  /// The `serve_*` block is filled by `serve::Server::metrics()`.
  CountersSnapshot counters;
  /// Per-tenant serving counters (empty outside the serving layer); `+=`
  /// merges rows by tenant name, appending unseen tenants in order.
  std::vector<TenantServeCounters> serve_tenants;

  MetricsSnapshot& operator+=(const MetricsSnapshot& o);

  /// Fraction of the summed simulated time spent in stage `i` (0 when no
  /// simulated time was recorded).
  [[nodiscard]] double stage_fraction(std::size_t i) const {
    return sim_time_s > 0.0 ? stage_sim_time_s[i] / sim_time_s : 0.0;
  }
};

}  // namespace acs::trace
