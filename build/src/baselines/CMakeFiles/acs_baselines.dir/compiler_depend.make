# Empty compiler generated dependencies file for acs_baselines.
# This may be replaced when dependencies are built.
