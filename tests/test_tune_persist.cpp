/// \file test_tune_persist.cpp
/// The persistent tune cache's contracts (ISSUE: cold-path battery):
///  * a save/load round trip reproduces every record field-exactly;
///  * *any* corruption — zero-byte file, every possible truncation, a bit
///    flip at every byte of the file, wrong magic/version, an options-hash
///    mismatch — loads as a clean cold miss: a status code and an empty
///    entry list, never a crash and never a partially-parsed TunedParams;
///  * an engine constructed over the persisted file of a finished engine
///    replays the refined decisions — zero cold tunes, identical overlays,
///    bit-identical outputs.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "arch/arch_id.hpp"
#include "core/acspgemm.hpp"
#include "matrix/generators.hpp"
#include "runtime/engine.hpp"
#include "runtime/tune_persist.hpp"
#include "tune/tuner.hpp"

namespace acs::runtime {
namespace {

std::string temp_path(const std::string& name) {
  const std::string p = ::testing::TempDir() + "acs_" + name;
  std::remove(p.c_str());
  return p;
}

std::vector<unsigned char> read_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return std::vector<unsigned char>((std::istreambuf_iterator<char>(is)),
                                    std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path,
                 const std::vector<unsigned char>& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
}

/// Three records exercising sentinels (-1 / 0), large values, and the
/// per-record arch id (default, a real backend, and an out-of-enum value a
/// future build might write — all must round-trip verbatim).
std::vector<TuneCacheEntry> sample_entries() {
  std::vector<TuneCacheEntry> es(3);
  es[0].key = {0x1234567890abcdefull, 100, 200, 4000, 200, 300, 5000};
  es[0].tuned = {512, 4, 96, 8, true};
  es[0].measured_products = 123456789;
  es[1].key = {0xffffffffffffffffull, 1, 1, 1, 1, 1, 1};
  es[1].key.arch = static_cast<std::uint32_t>(arch::ArchId::kNativeCpu);
  es[1].tuned = {0, -1, -1, 0, true};  // all-sentinel overlay (keep base)
  es[1].measured_products = 0;
  es[2].key = {42, 30000, 30000, 123456789012ll, 30000, 30000, 99};
  es[2].key.arch = 0xabcdef12u;  // unknown backend: preserved, not rejected
  es[2].tuned = {1024, 0, 0, 16, true};  // threshold 0 = "auto"
  es[2].measured_products = -1;  // pathological but must round-trip
  return es;
}

constexpr std::uint64_t kHash = 0xfeedface12345678ull;

TEST(TunePersist, RoundTripsEntriesExactly) {
  const std::string path = temp_path("roundtrip.bin");
  const auto in = sample_entries();
  ASSERT_TRUE(save_tune_cache(path, kHash, in));

  std::vector<TuneCacheEntry> out;
  ASSERT_EQ(load_tune_cache(path, kHash, out), TuneCacheLoad::kLoaded);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].key, in[i].key) << "record " << i;
    EXPECT_EQ(out[i].tuned, in[i].tuned) << "record " << i;
    EXPECT_EQ(out[i].measured_products, in[i].measured_products)
        << "record " << i;
  }
  std::remove(path.c_str());
}

TEST(TunePersist, EmptyEntryListRoundTrips) {
  const std::string path = temp_path("empty.bin");
  ASSERT_TRUE(save_tune_cache(path, kHash, {}));
  std::vector<TuneCacheEntry> out{TuneCacheEntry{}};  // must be cleared
  EXPECT_EQ(load_tune_cache(path, kHash, out), TuneCacheLoad::kLoaded);
  EXPECT_TRUE(out.empty());
  std::remove(path.c_str());
}

TEST(TunePersist, MissingFileIsCleanMiss) {
  std::vector<TuneCacheEntry> out{TuneCacheEntry{}};
  EXPECT_EQ(load_tune_cache(temp_path("never_written.bin"), kHash, out),
            TuneCacheLoad::kMissing);
  EXPECT_TRUE(out.empty());
}

TEST(TunePersist, OptionsMismatchInvalidatesWholeFile) {
  const std::string path = temp_path("options.bin");
  ASSERT_TRUE(save_tune_cache(path, kHash, sample_entries()));
  std::vector<TuneCacheEntry> out;
  EXPECT_EQ(load_tune_cache(path, kHash + 1, out),
            TuneCacheLoad::kOptionsMismatch);
  EXPECT_TRUE(out.empty());
  std::remove(path.c_str());
}

/// Table-driven corruption battery over targeted mutations. Every case must
/// come back as the expected non-kLoaded status with an empty entry list.
TEST(TunePersist, TargetedCorruptionsLoadAsCleanColdMiss) {
  const std::string path = temp_path("battery.bin");
  ASSERT_TRUE(save_tune_cache(path, kHash, sample_entries()));
  const std::vector<unsigned char> good = read_bytes(path);
  ASSERT_GT(good.size(), 20u);

  struct Case {
    const char* name;
    void (*mutate)(std::vector<unsigned char>&);
    TuneCacheLoad expected;
  };
  const Case cases[] = {
      {"zero-byte file", [](std::vector<unsigned char>& f) { f.clear(); },
       TuneCacheLoad::kTruncated},
      {"shorter than the header",
       [](std::vector<unsigned char>& f) { f.resize(7); },
       TuneCacheLoad::kTruncated},
      {"header only, payload gone",
       [](std::vector<unsigned char>& f) { f.resize(20); },
       TuneCacheLoad::kTruncated},
      {"bad magic", [](std::vector<unsigned char>& f) { f[0] ^= 0x01; },
       TuneCacheLoad::kBadMagic},
      {"future format version",
       [](std::vector<unsigned char>& f) { f[8] ^= 0x80; },
       TuneCacheLoad::kBadVersion},
      {"digest field flipped",
       [](std::vector<unsigned char>& f) { f[12] ^= 0x40; },
       TuneCacheLoad::kBadDigest},
      {"options-hash byte flipped",
       [](std::vector<unsigned char>& f) { f[20] ^= 0x04; },
       TuneCacheLoad::kBadDigest},  // digest covers it, so it fails first
      {"record-count byte flipped",
       [](std::vector<unsigned char>& f) { f[28] ^= 0x01; },
       TuneCacheLoad::kBadDigest},
      {"payload bit flipped mid-record",
       [](std::vector<unsigned char>& f) { f[100] ^= 0x10; },
       TuneCacheLoad::kBadDigest},
      // Record 0's arch word sits at payload offset 56 (file offset 92).
      // A flipped backend id would silently apply a foreign arch's overlay,
      // so the digest must cover it like any other key field.
      {"arch id of record 0 flipped",
       [](std::vector<unsigned char>& f) { f[92] ^= 0x02; },
       TuneCacheLoad::kBadDigest},
      {"last byte flipped",
       [](std::vector<unsigned char>& f) { f.back() ^= 0x01; },
       TuneCacheLoad::kBadDigest},
      {"one record sawed off",
       [](std::vector<unsigned char>& f) { f.resize(f.size() - 80); },
       TuneCacheLoad::kBadDigest},  // digest was over the full payload
  };
  for (const Case& c : cases) {
    std::vector<unsigned char> bytes = good;
    c.mutate(bytes);
    write_bytes(path, bytes);
    std::vector<TuneCacheEntry> out{TuneCacheEntry{}};
    EXPECT_EQ(load_tune_cache(path, kHash, out), c.expected) << c.name;
    EXPECT_TRUE(out.empty()) << c.name;
  }
  std::remove(path.c_str());
}

/// Files written before the per-record arch id (format version 1) carry no
/// backend information, so replaying them could apply a foreign arch's
/// overlay. The version gate must turn them into a clean cold re-tune —
/// and it must fire *before* the digest check so the status names the real
/// reason (the v1 digest is internally consistent, just over an old layout).
TEST(TunePersist, PreArchVersionOneFilesAreRejectedAsBadVersion) {
  const std::string path = temp_path("v1_format.bin");
  ASSERT_TRUE(save_tune_cache(path, kHash, sample_entries()));
  std::vector<unsigned char> bytes = read_bytes(path);
  ASSERT_EQ(bytes[8], 2u);  // little-endian version word holds v2
  bytes[8] = 1;             // masquerade as a pre-arch v1 file
  write_bytes(path, bytes);

  std::vector<TuneCacheEntry> out{TuneCacheEntry{}};
  EXPECT_EQ(load_tune_cache(path, kHash, out), TuneCacheLoad::kBadVersion);
  EXPECT_TRUE(out.empty());
  std::remove(path.c_str());
}

/// Exhaustive single-bit-flip and truncation sweeps: no mutation of a valid
/// file may ever load, crash, or surface an entry.
TEST(TunePersist, EveryBitFlipAndTruncationIsRejected) {
  const std::string path = temp_path("sweep.bin");
  ASSERT_TRUE(save_tune_cache(path, kHash, sample_entries()));
  const std::vector<unsigned char> good = read_bytes(path);

  for (std::size_t byte = 0; byte < good.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<unsigned char> bytes = good;
      bytes[byte] ^= static_cast<unsigned char>(1u << bit);
      write_bytes(path, bytes);
      std::vector<TuneCacheEntry> out;
      EXPECT_NE(load_tune_cache(path, kHash, out), TuneCacheLoad::kLoaded)
          << "bit " << bit << " of byte " << byte;
      EXPECT_TRUE(out.empty()) << "bit " << bit << " of byte " << byte;
    }
  }
  for (std::size_t len = 0; len < good.size(); ++len) {
    std::vector<unsigned char> bytes(good.begin(),
                                     good.begin() + static_cast<long>(len));
    write_bytes(path, bytes);
    std::vector<TuneCacheEntry> out;
    EXPECT_NE(load_tune_cache(path, kHash, out), TuneCacheLoad::kLoaded)
        << "truncated to " << len;
    EXPECT_TRUE(out.empty()) << "truncated to " << len;
  }
  std::remove(path.c_str());
}

TEST(TunePersist, FailedSaveLeavesPreviousFileIntact) {
  const std::string path = temp_path("keep_old.bin");
  ASSERT_TRUE(save_tune_cache(path, kHash, sample_entries()));
  // A save that cannot even open its temporary sibling must fail without
  // touching the existing file.
  EXPECT_FALSE(save_tune_cache("/nonexistent-dir/acs_tune.bin", kHash, {}));
  std::vector<TuneCacheEntry> out;
  EXPECT_EQ(load_tune_cache(path, kHash, out), TuneCacheLoad::kLoaded);
  EXPECT_EQ(out.size(), 3u);
  std::remove(path.c_str());
}

TEST(TunePersist, OptionsHashSeparatesTunerConfigurations) {
  tune::TunerOptions base;
  std::vector<std::uint64_t> hashes;
  hashes.push_back(tune::options_hash(base));
  {
    auto o = base;
    o.objective = tune::TuneObjective::kLatency;
    hashes.push_back(tune::options_hash(o));
  }
  {
    auto o = base;
    o.nnz_per_block.push_back(2048);
    hashes.push_back(tune::options_hash(o));
  }
  {
    auto o = base;
    o.tune_long_row_threshold = false;
    hashes.push_back(tune::options_hash(o));
  }
  {
    auto o = base;
    o.sample_stride = 16;
    hashes.push_back(tune::options_hash(o));
  }
  {
    auto o = base;
    o.min_samples = 64;
    hashes.push_back(tune::options_hash(o));
  }
  for (std::size_t i = 0; i < hashes.size(); ++i)
    for (std::size_t j = i + 1; j < hashes.size(); ++j)
      EXPECT_NE(hashes[i], hashes[j]) << i << " vs " << j;
  // And it is a pure function: same options, same hash.
  EXPECT_EQ(tune::options_hash(base), tune::options_hash(tune::TunerOptions{}));
}

/// The warm-restart contract end to end: engine #2, constructed over the
/// file engine #1 persisted, replays the refined tuning decisions without a
/// single cold tune and produces bit-identical results.
TEST(TunePersist, EngineWarmStartSkipsColdTunesAndIsBitIdentical) {
  const std::string path = temp_path("engine_cache.bin");
  std::vector<std::pair<Csr<double>, Csr<double>>> pairs;
  const auto g = gen_powerlaw<double>(300, 300, 8.0, 1.5, 120, 11);
  const auto u = gen_uniform_random<double>(250, 250, 6.0, 1.0, 12);
  pairs.emplace_back(g, g);
  pairs.emplace_back(u, u);
  pairs.emplace_back(g, g);  // repeat fingerprint: one decision, two jobs

  EngineConfig ec;
  ec.workers = 1;  // serial: the repeat pair must hit the stored plan
  ec.tuning = tune::TuningMode::kFeedback;
  ec.tune_cache_path = path;

  std::vector<runtime::JobResult<double>> warm1;
  std::vector<TunedParams> tuned1;
  {
    Engine<double> e1(ec);
    EXPECT_EQ(e1.stats().cache_loads, 0u);  // nothing persisted yet
    (void)e1.multiply_batch(pairs);  // cold tunes + feedback refinement
    warm1 = e1.multiply_batch(pairs);
    for (const auto& r : warm1) {
      ASSERT_FALSE(r.failed());
      tuned1.push_back(r.tuned);
    }
    EXPECT_EQ(e1.stats().cold_tunes, 2u);  // two distinct fingerprints
  }  // destructor flushes the tune cache

  Engine<double> e2(ec);
  EXPECT_EQ(e2.stats().cache_loads, 2u);
  const auto warm2 = e2.multiply_batch(pairs);
  ASSERT_EQ(warm2.size(), warm1.size());
  for (std::size_t i = 0; i < warm2.size(); ++i) {
    ASSERT_FALSE(warm2[i].failed());
    EXPECT_TRUE(warm2[i].plan_hit) << "job " << i;  // seeded plans hit
    EXPECT_EQ(warm2[i].tuned, tuned1[i]) << "job " << i;
    EXPECT_TRUE(warm2[i].c.equals_exact(warm1[i].c)) << "job " << i;
  }
  EXPECT_EQ(e2.stats().cold_tunes, 0u);
  EXPECT_EQ(e2.metrics().counters.cold_tunes, 0u);
  EXPECT_EQ(e2.metrics().counters.cache_loads, 2u);

  // A tuner-configuration change invalidates the persisted decisions: the
  // next engine cold-tunes from scratch instead of replaying stale plans.
  EngineConfig changed = ec;
  changed.tuner.objective = tune::TuneObjective::kLatency;
  Engine<double> e3(changed);
  EXPECT_EQ(e3.stats().cache_loads, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace acs::runtime
