#pragma once
// Fixture: a self-sufficient header — includes everything it uses.
#include <cstddef>
#include <vector>

inline std::size_t total(const std::vector<std::size_t>& v) {
  std::size_t sum = 0;
  for (std::size_t x : v) sum += x;
  return sum;
}
