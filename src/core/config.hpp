#pragma once
/// \file config.hpp
/// Tuning parameters of AC-SpGEMM. Defaults follow the paper's evaluation
/// setup: blocks of 256 threads handling 256 non-zeros of A, 8 sorted
/// elements per thread, up to 4 retained elements per thread between local
/// ESC iterations, a 1.2× chunk-pool estimate with a 100 MB lower bound.

#include <cstddef>

#include "arch/arch_id.hpp"
#include "matrix/types.hpp"
#include "sim/device_config.hpp"

namespace acs::trace {
class TraceSession;
}

namespace acs {

class AllocationPolicy;  // core/chunk.hpp

/// Initial chunk-pool sizing strategy (see `estimate_chunk_pool_bytes`).
enum class PoolSizing {
  /// The paper's closed-form uniform-collision guess
  /// S ≈ nA·b·(1-(1-p_b)^a)/p_b, scaled by `pool_estimate_factor`.
  kClosedForm = 0,
  /// Sampled per-row estimator (src/estimate): a strided B-row-length
  /// sample sized in bytes of actual chunk layout, with a quantile-based
  /// safety margin. Ignores `pool_estimate_factor`; still respects
  /// `pool_override_bytes` and `pool_lower_bound_bytes`. Pure function of
  /// the operands' structure, so serve decision streams stay replayable.
  kSampled,
};

struct Config {
  /// Threads per simulated block.
  int threads = 256;
  /// Non-zeros of A assigned to each block by global load balancing
  /// (paper: "block size of 256/512 non-zeros").
  int nnz_per_block = 256;
  /// Temporary products sorted per thread per ESC iteration (paper: 8).
  int elements_per_thread = 8;
  /// Compacted elements retained per thread between iterations (paper: up
  /// to 4). Set to 0 to ablate multi-iteration ESC: every iteration then
  /// flushes to global memory, the prior-work behaviour of Dalton et al.
  int retain_per_thread = 4;
  /// Dynamic sort-bit reduction (row dictionary + min/max column tracking,
  /// Section 3.2.3). Off = static key width, the ablation baseline.
  bool dynamic_bits = true;
  /// Special handling of long rows of B (Section 3.4).
  bool long_row_handling = true;
  /// Rows of B at least this long become pointer chunks; 0 = auto
  /// (= temp_capacity()).
  index_t long_row_threshold = 0;
  /// Path Merge handles rows with up to this many chunks; beyond that,
  /// Search Merge takes over (Section 3.3).
  int path_merge_max_chunks = 8;
  /// How the initial chunk pool is sized when no plan is available:
  /// closed-form guess (default, the paper's setup) or the sampled
  /// estimator of src/estimate.
  PoolSizing pool_sizing = PoolSizing::kClosedForm;
  /// Chunk-pool estimate multiplier (paper: 1.2 for metadata/divergence).
  /// Closed-form sizing only; the sampled estimator's margin is
  /// `pool_estimate_quantile`.
  double pool_estimate_factor = 1.2;
  /// Sampled sizing: quantile of the sampled B-row-length distribution
  /// charged per unsampled entry of A (the estimator's safety margin).
  double pool_estimate_quantile = 0.9;
  /// Sampled sizing: inspect every N-th non-zero of A (clamped so at least
  /// `pool_min_samples` entries are inspected when A has that many).
  std::size_t pool_sample_stride = 8;
  std::size_t pool_min_samples = 512;
  /// Lower bound on the initial chunk pool (paper: 100 MB).
  std::size_t pool_lower_bound_bytes = std::size_t{100} << 20;
  /// Exact pool size override; 0 = use the estimate. Used by the restart
  /// experiments of Section 4.3.
  std::size_t pool_override_bytes = 0;
  /// Pool growth per restart round as a multiple of the current capacity
  /// (2.0 = doubling). Geometric growth makes a badly undersized pool
  /// converge in O(log deficit) restarts instead of O(deficit / initial);
  /// must be > 1.
  double pool_growth_factor = 2.0;
  /// Cap on a single growth step so a huge pool cannot double into an
  /// absurd allocation; growth degrades to linear beyond it.
  std::size_t pool_growth_max_step_bytes = std::size_t{1} << 30;
  /// Fault-injection hook installed on the run's chunk pool (non-owning;
  /// must outlive the multiplication and be safe to call from
  /// `scheduler_threads` concurrent blocks). Null (default) = no injection.
  /// Denied allocations are indistinguishable from real exhaustion: the
  /// affected block restarts and the output stays bit-identical (the
  /// injection sweep in tests/test_fault.cpp proves it per allocation site).
  AllocationPolicy* alloc_policy = nullptr;
  /// Host threads executing simulated blocks. 1 (default) is fully
  /// deterministic including restart counts; >1 keeps results bit-identical
  /// but the restart count may vary with interleaving.
  unsigned scheduler_threads = 1;
  /// Check the CSR invariants of both operands before multiplying (costs a
  /// full pass; off by default like the GPU original).
  bool validate_inputs = false;
  /// Observability sink (non-owning; must outlive the multiplication). When
  /// set, the pipeline records stage spans and counters into the session;
  /// null (default) disables tracing — the hooks then cost one pointer test
  /// and results/stats are byte-for-byte unaffected (test_trace.cpp proves
  /// it). The session may be shared by concurrent multiplications.
  trace::TraceSession* trace = nullptr;
  /// Simulated device.
  sim::DeviceConfig device{};
  /// How blocks execute (arch backend selection, normally set by the
  /// runtime engine from `EngineConfig::arch`): `kSimulated` (default)
  /// charges every block to the simulated cost model of `device`;
  /// `kNative` runs the same block algorithms with wall-clock-lean
  /// primitives and zero simulated time (stage times and device-traffic
  /// metrics then read 0 / near-0). Results are bit-identical either way —
  /// the ESC/merge geometry still comes from `device`, so keep `device` at
  /// the arch's values (docs/BACKENDS.md).
  arch::ExecKind exec = arch::ExecKind::kSimulated;

  /// Temporary products held per block per ESC iteration.
  [[nodiscard]] constexpr int temp_capacity() const {
    return threads * elements_per_thread;
  }
  /// Maximum compacted elements carried to the next iteration.
  [[nodiscard]] constexpr int retain_capacity() const {
    return threads * retain_per_thread;
  }
  [[nodiscard]] constexpr index_t effective_long_row_threshold() const {
    return long_row_threshold > 0 ? long_row_threshold
                                  : static_cast<index_t>(temp_capacity());
  }
};

}  // namespace acs
