/// \file bench_table2_stats.cpp
/// Reproduces Table 2: per-matrix overview of the showcase set — rows,
/// columns and non-zeros of A, average and maximum row lengths of A and C,
/// and the number of temporary products (the paper reports most values in
/// millions; the synthetic stand-ins are scaled down, so raw counts are
/// printed with SI suffixes).

#include <iostream>

#include "baselines/spa_gustavson.hpp"
#include "matrix/stats.hpp"
#include "matrix/transpose.hpp"
#include "suite/suite.hpp"
#include "suite/table.hpp"

int main() {
  using namespace acs;
  std::cout << "Table 2: matrix overview (A and C = A*A or A*A^T "
               "statistics, temp = intermediate products)\n\n";

  TextTable table({"matrix", "rows", "cols", "nnz A", "len A", "max A",
                   "nnz C", "len C", "max C", "temp", "compact"});
  CsvWriter csv("table2_stats.csv");
  csv.write_row({"matrix", "rows", "cols", "nnz_a", "avg_len_a", "max_len_a",
                 "nnz_c", "avg_len_c", "max_len_c", "temp", "compaction"});

  for (const auto& entry : showcase_suite()) {
    const auto a = build_matrix<double>(entry);
    const auto b = entry.square ? a : transpose(a);
    const auto c = spa_multiply(a, b);
    const auto sa = row_stats(a);
    const auto sc = row_stats(c);
    const auto temp = intermediate_products(a, b);
    const double compact = compaction_factor(a, b, c.nnz());

    table.add_row({entry.name, TextTable::si(a.rows), TextTable::si(a.cols),
                   TextTable::si(static_cast<double>(a.nnz())),
                   TextTable::num(sa.avg_len, 1), TextTable::si(sa.max_len),
                   TextTable::si(static_cast<double>(c.nnz())),
                   TextTable::num(sc.avg_len, 1), TextTable::si(sc.max_len),
                   TextTable::si(static_cast<double>(temp)),
                   TextTable::num(compact, 1)});
    csv.write_row({entry.name, std::to_string(a.rows), std::to_string(a.cols),
                   std::to_string(a.nnz()), TextTable::num(sa.avg_len, 2),
                   std::to_string(sa.max_len), std::to_string(c.nnz()),
                   TextTable::num(sc.avg_len, 2), std::to_string(sc.max_len),
                   std::to_string(temp), TextTable::num(compact, 2)});
  }
  std::cout << table.str();
  std::cout << "\nwrote table2_stats.csv\n";
  return 0;
}
