#pragma once
/// \file invariants.hpp
/// Compile-time proofs of the tuner's feasibility contract (DESIGN.md §10):
/// `fits_device` is constexpr, so every tuple of the default candidate
/// grids can be certified against the default 48 KiB scratchpad here, for
/// both value widths, instead of trusting the runtime pruning alone.
/// Included from tune/tuner.cpp so the proofs are checked in every build.

#include <cstddef>

#include "arch/arch.hpp"
#include "core/config.hpp"
#include "tune/tuner.hpp"

namespace acs::tune::invariants {

/// The default grid tuple (nnz_per_block, retain) overlaid on the default
/// block shape (256 threads × 8 elements).
constexpr Config grid_config(int nnz_per_block, int retain) {
  Config cfg{};
  cfg.nnz_per_block = nnz_per_block;
  cfg.retain_per_thread = retain;
  return cfg;
}

/// Every default-grid tuple with nnz_per_block below `npb_limit` fits the
/// default device for values of `value_bytes`.
constexpr bool default_grid_fits(std::size_t value_bytes, int npb_limit) {
  for (int npb : kDefaultNnzPerBlockGrid) {
    if (npb >= npb_limit) continue;
    for (int retain : kDefaultRetainGrid)
      if (!fits_device(grid_config(npb, retain), value_bytes)) return false;
  }
  return true;
}

// The base configuration itself is feasible for both widths — the tuner's
// "never worse than the default" guarantee depends on the identity overlay
// surviving the feasibility filter.
static_assert(fits_device(Config{}, sizeof(float)));
static_assert(fits_device(Config{}, sizeof(double)));

// Float: the whole default grid fits the 48 KiB scratchpad.
static_assert(default_grid_fits(sizeof(float), /*npb_limit=*/2048));

// Double: every tuple except nnz_per_block=1024 fits...
static_assert(default_grid_fits(sizeof(double), /*npb_limit=*/1024));
// ...and 1024 exactly does not: 2048 keys (16 KiB) + 2048 double values
// (16 KiB) + 1025 offset_t work-distribution offsets (8200 B) + 2048 scan
// states (8 KiB) = 49160 B > 49152 B. The tuner must prune it, which
// test_tune.cpp observes at run time.
static_assert(!fits_device(grid_config(1024, 4), sizeof(double)));

// The retained-element grid never reaches elements_per_thread — retain ==
// ept would make every ESC iteration a no-op that forwards its whole
// buffer, so fits_device rejects it and the grid must stay below.
constexpr bool retain_grid_below_ept() {
  for (int retain : kDefaultRetainGrid)
    if (retain >= Config{}.elements_per_thread) return false;
  return true;
}
static_assert(retain_grid_below_ept());

// Compaction feasibility: the filter bounds temp_capacity() by the 15-bit
// scan counters, so any accepted shape can never trip compact_sorted's
// overflow guard.
static_assert(!fits_device(
    []() constexpr {
      Config cfg{};
      cfg.threads = 4096;
      cfg.elements_per_thread = 8;  // temp_capacity 32768 > 32767
      return cfg;
    }(),
    sizeof(float)));

// ---- Per-arch feasibility (docs/BACKENDS.md) -------------------------------
// The arch layer swaps device constants under the same filter; these proofs
// pin what each backend's scratchpad admits so a constants change that
// silently shrinks or widens a tuning grid fails the build, not a benchmark.

/// The default grid tuple on `Arch`'s device constants.
template <class Arch>
constexpr Config arch_grid_config(int nnz_per_block, int retain) {
  Config cfg = grid_config(nnz_per_block, retain);
  cfg.device = arch::device_config<Arch>();
  return cfg;
}

/// Every (nnz_per_block, retain) tuple of the SimBigDevice grid fits its
/// 96 KiB scratchpad for values of `value_bytes`.
constexpr bool big_grid_fits(std::size_t value_bytes) {
  for (int npb : kBigDeviceNnzPerBlockGrid)
    for (int retain : kDefaultRetainGrid)
      if (!fits_device(arch_grid_config<arch::SimBigDevice>(npb, retain),
                       value_bytes))
        return false;
  return true;
}
static_assert(big_grid_fits(sizeof(float)));
static_assert(big_grid_fits(sizeof(double)));

// The tuples the big grid buys are exactly the ones the default device
// prunes: nnz_per_block=1024 double (49160 B) and 2048 double (57352 B) fit
// 96 KiB but not 48 KiB. NativeCpu mirrors SimTitanXp's constants
// (arch/invariants.hpp), so it rejects them identically — the native
// backend changes execution, never plan feasibility.
static_assert(fits_device(arch_grid_config<arch::SimBigDevice>(1024, 4),
                          sizeof(double)));
static_assert(fits_device(arch_grid_config<arch::SimBigDevice>(2048, 4),
                          sizeof(double)));
static_assert(!fits_device(arch_grid_config<arch::SimTitanXp>(1024, 4),
                           sizeof(double)));
static_assert(!fits_device(arch_grid_config<arch::SimTitanXp>(2048, 4),
                           sizeof(double)));
static_assert(!fits_device(arch_grid_config<arch::NativeCpu>(1024, 4),
                           sizeof(double)));
static_assert(!fits_device(arch_grid_config<arch::NativeCpu>(2048, 4),
                           sizeof(double)));

}  // namespace acs::tune::invariants
