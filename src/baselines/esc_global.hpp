#pragma once
/// \file esc_global.hpp
/// CUSP-style global ESC SpGEMM [Bell, Dalton, Olson 2012]: expand *all*
/// intermediate products to global memory, sort them globally by (row,
/// column), and compress. The strategy the paper describes as achieving
/// "excellent load balancing at the cost of high intermediate memory" —
/// every temporary product makes a full round trip through slow global
/// memory, and the device-wide radix sort runs at the full static key width.
/// Deterministic (stable sort), hence bit-stable.

#include "baselines/algorithm.hpp"

namespace acs {

template <class T>
Csr<T> esc_global_multiply(const Csr<T>& a, const Csr<T>& b,
                           SpgemmStats* stats = nullptr);

template <class T>
class EscGlobal final : public SpgemmAlgorithm<T> {
 public:
  [[nodiscard]] std::string name() const override { return "ESC-global"; }
  [[nodiscard]] bool bit_stable() const override { return true; }
  Csr<T> multiply(const Csr<T>& a, const Csr<T>& b,
                  SpgemmStats* stats) const override {
    return esc_global_multiply(a, b, stats);
  }
};

extern template Csr<float> esc_global_multiply(const Csr<float>&,
                                               const Csr<float>&, SpgemmStats*);
extern template Csr<double> esc_global_multiply(const Csr<double>&,
                                                const Csr<double>&,
                                                SpgemmStats*);
extern template class EscGlobal<float>;
extern template class EscGlobal<double>;

}  // namespace acs
