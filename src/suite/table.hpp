#pragma once
/// \file table.hpp
/// Plain-text table and CSV output helpers for the benchmark binaries. The
/// paper artifact writes both a console report and a .csv per run
/// (Appendix A.4); these helpers reproduce that.

#include <string>
#include <vector>

namespace acs {

/// Right-aligned fixed-width text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Render with column widths fitted to content, separated by two spaces.
  [[nodiscard]] std::string str() const;

  /// Format helpers used by the benches.
  static std::string num(double v, int precision = 2);
  static std::string si(double v);  ///< 12345 -> "12.3k", 2.5e6 -> "2.5M"

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Minimal CSV writer (RFC-4180-style quoting for commas/quotes).
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void write_row(const std::vector<std::string>& cells);

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace acs
