#pragma once
/// \file generators.hpp
/// Deterministic synthetic matrix generators. These stand in for the
/// SuiteSparse collection (see DESIGN.md, substitution table): each generator
/// targets one structural regime the paper's evaluation exercises —
/// uniform-sparse, banded/FEM, power-law graph rows, dense blocks, long rows,
/// tall/skinny. All randomness comes from an explicit seed through a fully
/// specified PRNG (std::mt19937_64 engine output used directly), so the same
/// call always produces the same matrix on every platform.

#include <cstdint>

#include "matrix/csr.hpp"

namespace acs {

/// Uniform random matrix: every row draws `avg_row_len` distinct column ids
/// uniformly (+- `spread` rows drawn uniformly from
/// [avg-spread, avg+spread]). Values uniform in [-1, 1].
template <class T>
Csr<T> gen_uniform_random(index_t rows, index_t cols, double avg_row_len,
                          double spread, std::uint64_t seed);

/// Like gen_uniform_random, but each row's columns are drawn from a window
/// of `window` columns centred on the row's diagonal position — the column
/// locality real application matrices exhibit (meshes, circuits, banded
/// systems), which the paper's dynamic bit reduction exploits.
template <class T>
Csr<T> gen_uniform_local(index_t rows, index_t cols, double avg_row_len,
                         double spread, index_t window, std::uint64_t seed);

/// Row lengths follow a truncated power law with exponent `alpha` (graph-like
/// degree distribution, e.g. web graphs / social networks). `max_row_len`
/// clamps the tail.
template <class T>
Csr<T> gen_powerlaw(index_t rows, index_t cols, double avg_row_len,
                    double alpha, index_t max_row_len, std::uint64_t seed);

/// Banded matrix: each row has entries on the `band` diagonals around the
/// main diagonal (structural FEM/finite-difference analogue).
template <class T>
Csr<T> gen_banded(index_t n, index_t band, std::uint64_t seed);

/// 5-point 2D Poisson stencil on an nx-by-ny grid (matrix is nx*ny square) —
/// the poisson3Da-like regime.
template <class T>
Csr<T> gen_stencil_2d(index_t nx, index_t ny, std::uint64_t seed);

/// 7-point 3D Poisson stencil on an nx*ny*nz grid (atmosmodl-like regime).
template <class T>
Csr<T> gen_stencil_3d(index_t nx, index_t ny, index_t nz, std::uint64_t seed);

/// R-MAT recursive graph generator (Graph500-style). Produces an adjacency
/// matrix with 2^scale vertices and ~edge_factor*2^scale edges; heavy-tailed
/// row lengths with localized dense blocks.
template <class T>
Csr<T> gen_rmat(int scale, double edge_factor, double a, double b, double c,
                std::uint64_t seed);

/// Rows of contiguous dense blocks of width `block` at random offsets
/// (TSOPF-like local dense areas; high compaction factors under A*A).
template <class T>
Csr<T> gen_block_dense(index_t rows, index_t cols, index_t block,
                       index_t blocks_per_row, std::uint64_t seed);

/// Copy of `base` with `count` rows replaced by very long rows of length
/// `len` (webbase-like individual long rows exceeding block resources).
template <class T>
Csr<T> inject_long_rows(const Csr<T>& base, index_t count, index_t len,
                        std::uint64_t seed);

extern template Csr<float> gen_uniform_random<float>(index_t, index_t, double, double, std::uint64_t);
extern template Csr<double> gen_uniform_random<double>(index_t, index_t, double, double, std::uint64_t);
extern template Csr<float> gen_uniform_local<float>(index_t, index_t, double, double, index_t, std::uint64_t);
extern template Csr<double> gen_uniform_local<double>(index_t, index_t, double, double, index_t, std::uint64_t);
extern template Csr<float> gen_powerlaw<float>(index_t, index_t, double, double, index_t, std::uint64_t);
extern template Csr<double> gen_powerlaw<double>(index_t, index_t, double, double, index_t, std::uint64_t);
extern template Csr<float> gen_banded<float>(index_t, index_t, std::uint64_t);
extern template Csr<double> gen_banded<double>(index_t, index_t, std::uint64_t);
extern template Csr<float> gen_stencil_2d<float>(index_t, index_t, std::uint64_t);
extern template Csr<double> gen_stencil_2d<double>(index_t, index_t, std::uint64_t);
extern template Csr<float> gen_stencil_3d<float>(index_t, index_t, index_t, std::uint64_t);
extern template Csr<double> gen_stencil_3d<double>(index_t, index_t, index_t, std::uint64_t);
extern template Csr<float> gen_rmat<float>(int, double, double, double, double, std::uint64_t);
extern template Csr<double> gen_rmat<double>(int, double, double, double, double, std::uint64_t);
extern template Csr<float> gen_block_dense<float>(index_t, index_t, index_t, index_t, std::uint64_t);
extern template Csr<double> gen_block_dense<double>(index_t, index_t, index_t, index_t, std::uint64_t);
extern template Csr<float> inject_long_rows<float>(const Csr<float>&, index_t, index_t, std::uint64_t);
extern template Csr<double> inject_long_rows<double>(const Csr<double>&, index_t, index_t, std::uint64_t);

}  // namespace acs
