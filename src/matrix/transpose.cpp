#include "matrix/transpose.hpp"

namespace acs {

template <class T>
Csr<T> transpose(const Csr<T>& m) {
  Csr<T> t;
  t.rows = m.cols;
  t.cols = m.rows;
  t.row_ptr.assign(static_cast<std::size_t>(m.cols) + 1, 0);
  t.col_idx.resize(m.col_idx.size());
  t.values.resize(m.values.size());

  for (index_t c : m.col_idx) t.row_ptr[usize(c) + 1]++;
  for (index_t c = 0; c < m.cols; ++c)
    t.row_ptr[usize(c) + 1] += t.row_ptr[usize(c)];

  // Scatter pass: row-major traversal of m emits entries of t in increasing
  // source-row order, so each transposed row ends up sorted by column.
  std::vector<index_t> cursor(t.row_ptr.begin(), t.row_ptr.end() - 1);
  for (index_t r = 0; r < m.rows; ++r) {
    for (index_t k = m.row_ptr[usize(r)]; k < m.row_ptr[usize(r) + 1]; ++k) {
      const index_t c = m.col_idx[usize(k)];
      const index_t dst = cursor[usize(c)]++;
      t.col_idx[usize(dst)] = r;
      t.values[usize(dst)] = m.values[usize(k)];
    }
  }
  return t;
}

template Csr<float> transpose(const Csr<float>&);
template Csr<double> transpose(const Csr<double>&);

}  // namespace acs
