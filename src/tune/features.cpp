#include "tune/features.hpp"

#include <algorithm>

#include "estimate/estimator.hpp"

namespace acs::tune {

double TuneFeatures::products_in_rows_at_least(index_t t) const {
  // sampled_b_lens is sorted ascending; sum the tail.
  auto it = std::lower_bound(sampled_b_lens.begin(), sampled_b_lens.end(), t);
  double sum = 0.0;
  for (; it != sampled_b_lens.end(); ++it) sum += static_cast<double>(*it);
  return sum * static_cast<double>(stride);
}

double TuneFeatures::entries_in_rows_at_least(index_t t) const {
  auto it = std::lower_bound(sampled_b_lens.begin(), sampled_b_lens.end(), t);
  return static_cast<double>(sampled_b_lens.end() - it) *
         static_cast<double>(stride);
}

RowLengthProfile row_length_profile(const std::vector<index_t>& row_ptr,
                                    index_t rows) {
  RowLengthProfile p;
  if (rows <= 0) return p;
  std::vector<index_t> lens(static_cast<std::size_t>(rows));
  for (index_t r = 0; r < rows; ++r)
    lens[static_cast<std::size_t>(r)] =
        row_ptr[static_cast<std::size_t>(r) + 1] -
        row_ptr[static_cast<std::size_t>(r)];
  std::sort(lens.begin(), lens.end());
  const auto at = [&](double q) {
    const auto i = static_cast<std::size_t>(
        q * static_cast<double>(lens.size() - 1));
    return lens[i];
  };
  p.p50 = at(0.50);
  p.p90 = at(0.90);
  p.p99 = at(0.99);
  p.max = lens.back();
  p.avg = static_cast<double>(row_ptr[static_cast<std::size_t>(rows)]) /
          static_cast<double>(rows);
  return p;
}

template <class T>
TuneFeatures extract_features(const Csr<T>& a, const Csr<T>& b,
                              std::size_t sample_stride,
                              std::size_t min_samples) {
  TuneFeatures f;
  f.rows_a = a.rows;
  f.cols_a = a.cols;
  f.rows_b = b.rows;
  f.cols_b = b.cols;
  f.nnz_a = a.nnz();
  f.nnz_b = b.nnz();
  f.a_rows = row_length_profile(a.row_ptr, a.rows);
  f.b_rows = row_length_profile(b.row_ptr, b.rows);

  // Strided sample of A's column ids against B's row lengths — the shared
  // sampling core of src/estimate, so the tuner and the memory planner can
  // never disagree about the sample. Each sample is weighted by the entries
  // of A its window actually covers (a partial final window is charged its
  // true size); the conservative variant charges each window the larger of
  // its two bounding samples, so locally heavy stretches of B rows are not
  // diluted by the stride, and is ≥ the expected estimate by construction.
  estimate::RowSample s =
      estimate::sample_b_row_lengths(a, b, sample_stride, min_samples);
  const estimate::ProductEstimate est = estimate::products_from_sample(s);
  f.stride = s.stride;
  f.products_exact = s.exact;
  f.sampled = s.sampled;
  f.est_products = est.expected;
  f.est_products_upper = est.conservative;
  f.sampled_b_lens = std::move(s.b_lens);  // already sorted ascending
  return f;
}

template TuneFeatures extract_features(const Csr<float>&, const Csr<float>&,
                                       std::size_t, std::size_t);
template TuneFeatures extract_features(const Csr<double>&, const Csr<double>&,
                                       std::size_t, std::size_t);

}  // namespace acs::tune
