#pragma once
/// \file cusparse_like.hpp
/// cuSPARSE-style SpGEMM (csrgemm): Demouth's dual hash-table scheme [2012]
/// as used inside NVIDIA's library — a fixed-size primary hash table in
/// scratchpad memory per row, with a secondary table in global memory for
/// overflowing rows. No row analysis (fixed table sizes), so very long rows
/// spill heavily to global memory. Accumulation order is
/// scheduler-dependent: not bit-stable.

#include <cstdint>

#include "baselines/algorithm.hpp"

namespace acs {

template <class T>
Csr<T> cusparse_like_multiply(const Csr<T>& a, const Csr<T>& b,
                              SpgemmStats* stats = nullptr,
                              std::uint64_t schedule_seed = 0);

template <class T>
class CusparseLike final : public SpgemmAlgorithm<T> {
 public:
  [[nodiscard]] std::string name() const override { return "cuSparse"; }
  [[nodiscard]] bool bit_stable() const override { return false; }
  Csr<T> multiply(const Csr<T>& a, const Csr<T>& b,
                  SpgemmStats* stats) const override {
    return cusparse_like_multiply(a, b, stats, seed_);
  }
  void set_schedule_seed(std::uint64_t seed) override { seed_ = seed; }

 private:
  std::uint64_t seed_ = 0;
};

extern template Csr<float> cusparse_like_multiply(const Csr<float>&,
                                                  const Csr<float>&,
                                                  SpgemmStats*, std::uint64_t);
extern template Csr<double> cusparse_like_multiply(const Csr<double>&,
                                                   const Csr<double>&,
                                                   SpgemmStats*, std::uint64_t);
extern template class CusparseLike<float>;
extern template class CusparseLike<double>;

}  // namespace acs
