#pragma once
/// \file scheduler.hpp
/// Host-side executor for simulated thread blocks. Blocks are independent
/// units of work (exactly as on the GPU); the scheduler runs them either
/// sequentially or on a persistent thread pool. Results must be written to
/// per-block slots by the callback, which is what makes the execution
/// deterministic regardless of thread count — the same property the paper's
/// deterministic scheduling pattern provides on hardware.
///
/// The pool threads are created lazily on the first parallel dispatch and
/// then parked between dispatches, so one scheduler can be reused across
/// many kernels — and, via the runtime Engine, across many SpGEMM jobs —
/// without paying thread creation per launch.

#include <cstddef>
#include <functional>
#include <memory>

namespace acs::trace {
class TraceSession;
}

namespace acs::sim {

class BlockScheduler {
 public:
  /// `threads == 0` picks std::thread::hardware_concurrency().
  explicit BlockScheduler(unsigned threads = 1);
  ~BlockScheduler();

  BlockScheduler(const BlockScheduler&) = delete;
  BlockScheduler& operator=(const BlockScheduler&) = delete;

  /// Invoke `body(block_id)` for every block in [0, num_blocks). Exceptions
  /// thrown by any block are rethrown (first one wins) after all workers
  /// finish. Not reentrant: one dispatch at a time per scheduler.
  void for_each_block(std::size_t num_blocks,
                      const std::function<void(std::size_t)>& body) const;

  /// Block attribution: while `session` is set, every dispatched block's
  /// host execution time feeds the session's `blocks_executed` /
  /// `block_time_ns_{sum,max}` counters — the per-block imbalance view the
  /// stage spans cannot provide. Null disables (the default; dispatch then
  /// takes no clock reads). Not thread-safe against a concurrent dispatch;
  /// set it between multiplications, as `acs::multiply_planned` does.
  void set_trace(trace::TraceSession* session) { trace_ = session; }
  [[nodiscard]] trace::TraceSession* trace() const { return trace_; }

  [[nodiscard]] unsigned threads() const { return threads_; }

 private:
  struct Pool;

  void run_block(const std::function<void(std::size_t)>& body,
                 std::size_t block) const;

  unsigned threads_;
  trace::TraceSession* trace_ = nullptr;
  /// Lazily created worker pool; never allocated for single-threaded
  /// schedulers, so the default configuration costs nothing.
  mutable std::unique_ptr<Pool> pool_;
};

}  // namespace acs::sim
