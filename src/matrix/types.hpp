#pragma once
/// \file types.hpp
/// Fundamental index types and small helpers shared across the library.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace acs {

/// Index type for rows, columns and non-zero positions. The paper's GPU
/// implementation uses 32-bit indices throughout; we keep that choice so the
/// sort-key bit-width arithmetic (Section 3.2.3) matches the original.
using index_t = std::int32_t;

/// Offset type for non-zero counts that may exceed 2^31 (e.g. intermediate
/// product counts of large products).
using offset_t = std::int64_t;

/// Integer ceiling division, as used by the paper's Algorithm 1.
template <class I>
constexpr I divup(I a, I b) {
  static_assert(std::is_integral_v<I>);
  return (a + b - 1) / b;
}

/// Round `a` up to the next multiple of `b`.
template <class I>
constexpr I round_up(I a, I b) {
  return divup(a, b) * b;
}

/// Widen a signed index or count to a container subscript. Row/column/nnz
/// quantities are signed (`index_t`/`offset_t`) while standard containers
/// subscript with `std::size_t`; this is the single checked narrowing point
/// the -Wsign-conversion sweep funnels every such subscript through.
template <class I>
constexpr std::size_t usize(I i) {
  static_assert(std::is_integral_v<I>);
  if constexpr (std::is_signed_v<I>) assert(i >= 0);
  return static_cast<std::size_t>(i);
}

}  // namespace acs
