#pragma once
/// \file bench_runner.hpp
/// Shared driver for the table/figure benchmark binaries: builds a suite
/// entry's operands (A·A for square matrices, A·Aᵀ with a precomputed
/// transpose otherwise, exactly as in the paper's Section 4), runs one
/// algorithm, and returns the measurements all tables are built from.

#include <string>
#include <vector>

#include "baselines/algorithm.hpp"
#include "suite/suite.hpp"

namespace acs {

struct BenchMeasurement {
  std::string matrix;
  std::string algorithm;
  std::string precision;  // "float" / "double"
  offset_t temp_products = 0;
  offset_t nnz_a = 0;
  offset_t nnz_c = 0;
  double avg_row_len_a = 0.0;
  double gflops = 0.0;
  double sim_time_s = 0.0;
  SpgemmStats stats;
};

/// Run `algo` on `entry` with value type T.
template <class T>
BenchMeasurement run_benchmark(const SuiteEntry& entry,
                               const SpgemmAlgorithm<T>& algo);

/// Run the whole algorithm list on one entry.
template <class T>
std::vector<BenchMeasurement> run_benchmarks(
    const SuiteEntry& entry,
    const std::vector<std::unique_ptr<SpgemmAlgorithm<T>>>& algos);

/// Harmonic mean (the paper's Table 1 aggregation of per-matrix speedups).
double harmonic_mean(const std::vector<double>& v);

extern template BenchMeasurement run_benchmark(const SuiteEntry&,
                                               const SpgemmAlgorithm<float>&);
extern template BenchMeasurement run_benchmark(const SuiteEntry&,
                                               const SpgemmAlgorithm<double>&);
extern template std::vector<BenchMeasurement> run_benchmarks(
    const SuiteEntry&,
    const std::vector<std::unique_ptr<SpgemmAlgorithm<float>>>&);
extern template std::vector<BenchMeasurement> run_benchmarks(
    const SuiteEntry&,
    const std::vector<std::unique_ptr<SpgemmAlgorithm<double>>>&);

}  // namespace acs
