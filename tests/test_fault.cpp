/// Deterministic fault injection for the chunk pool (ISSUE 3): unit tests
/// of the injector policies against a bare ChunkPool, plus the injection
/// sweep — enumerate every allocation attempt of a clean run, then deny
/// exactly attempt i for all i and require bit-identical output. The sweep
/// configurations are chosen so that every restart path is hit: multi-
/// iteration ESC with carried rows (mid-iteration boundaries), Path and
/// Search merge windows, and long-row pointer-chunk creation — proven via
/// trace counters, not assumed. Inputs are quantized (test_util.hpp) so the
/// SPA differential reference must agree exactly as well.

#include "fault/policies.hpp"
#include "fault/sweep.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "baselines/spa_gustavson.hpp"
#include "core/acspgemm.hpp"
#include "matrix/generators.hpp"
#include "test_util.hpp"
#include "trace/trace.hpp"

namespace acs::fault {
namespace {

// ---------------------------------------------------------------------------
// Injector policies against a bare pool.
// ---------------------------------------------------------------------------

TEST(FaultPolicies, DenyNthDeniesExactlyThatAttempt) {
  ChunkPool pool(1 << 20);
  DenyNthPolicy deny(2);
  pool.set_policy(&deny);
  std::vector<bool> results;
  for (int i = 0; i < 5; ++i) results.push_back(pool.try_allocate(64));
  EXPECT_EQ(results, (std::vector<bool>{true, true, false, true, true}));
  EXPECT_EQ(deny.denials(), 1u);
  EXPECT_EQ(pool.injected_denials(), 1u);
  EXPECT_EQ(pool.capacity_denials(), 0u);
  EXPECT_EQ(pool.alloc_attempts(), 5u);
  EXPECT_EQ(pool.used(), 4u * 64u);  // denied attempt reserved nothing
}

TEST(FaultPolicies, DenyEveryKthIsPeriodic) {
  ChunkPool pool(1 << 20);
  DenyEveryKthPolicy deny(3);  // denies indices 2, 5, 8, ...
  pool.set_policy(&deny);
  int denied = 0;
  for (std::uint64_t i = 0; i < 9; ++i)
    if (!pool.try_allocate(8)) ++denied;
  EXPECT_EQ(denied, 3);
  EXPECT_EQ(deny.denials(), 3u);
}

TEST(FaultPolicies, SeededProbabilisticIsDeterministicPerIndex) {
  SeededProbabilisticPolicy a(42, 0.5), b(42, 0.5), c(43, 0.5);
  std::vector<bool> da, db, dc;
  for (std::uint64_t i = 0; i < 200; ++i) {
    AllocationRequest req;
    req.index = i;
    da.push_back(a.allow(req));
    db.push_back(b.allow(req));
    dc.push_back(c.allow(req));
  }
  EXPECT_EQ(da, db);  // same seed -> same decisions
  EXPECT_NE(da, dc);  // different seed -> different decisions
  EXPECT_GT(a.denials(), 50u);  // ~100 expected of 200 at rate 0.5
  EXPECT_LT(a.denials(), 150u);

  SeededProbabilisticPolicy never(7, 0.0), always(7, 1.0);
  for (std::uint64_t i = 0; i < 50; ++i) {
    AllocationRequest req;
    req.index = i;
    EXPECT_TRUE(never.allow(req));
    EXPECT_FALSE(always.allow(req));
  }
}

TEST(FaultPolicies, ByteBudgetDeniesAtEachBudgetThenAllows) {
  ByteBudgetPolicy budget({100, 300});
  AllocationRequest req;
  req.bytes = 60;
  EXPECT_TRUE(budget.allow(req));    // granted 60 <= 100
  EXPECT_FALSE(budget.allow(req));   // 120 > 100: deny, advance to 300
  EXPECT_TRUE(budget.allow(req));    // granted 120 <= 300
  EXPECT_TRUE(budget.allow(req));    // granted 180 <= 300
  EXPECT_TRUE(budget.allow(req));    // granted 240 <= 300
  EXPECT_TRUE(budget.allow(req));    // granted 300 <= 300 (exact fit)
  EXPECT_FALSE(budget.allow(req));   // 360 > 300: deny, schedule exhausted
  EXPECT_TRUE(budget.allow(req));    // past the schedule: everything goes
  EXPECT_EQ(budget.denials(), 2u);
  EXPECT_EQ(budget.stages_passed(), 2u);
}

TEST(FaultPolicies, PoolSeparatesInjectedFromCapacityDenials) {
  ChunkPool pool(100);
  EXPECT_TRUE(pool.try_allocate(80));
  EXPECT_FALSE(pool.try_allocate(80));  // genuine exhaustion
  EXPECT_EQ(pool.capacity_denials(), 1u);
  EXPECT_EQ(pool.injected_denials(), 0u);
  EXPECT_EQ(pool.used(), 80u);
}

// ---------------------------------------------------------------------------
// Injection sweeps over the pipeline (the tentpole property).
// ---------------------------------------------------------------------------

/// Multi-iteration ESC shape: tiny per-thread resources force many local
/// iterations per block with carried rows, so denials land on mid-iteration
/// boundaries (the `committed` replay path).
Config multi_iteration_config() {
  Config cfg;
  cfg.threads = 32;
  cfg.elements_per_thread = 4;
  cfg.retain_per_thread = 2;
  cfg.nnz_per_block = 32;
  return cfg;
}

/// Merge-heavy shape: small blocks split rows across many chunks, and a low
/// Path-merge bound pushes the widest rows into Search merge.
Config merge_heavy_config() {
  Config cfg;
  cfg.nnz_per_block = 32;
  cfg.path_merge_max_chunks = 4;
  return cfg;
}

void expect_sweep_ok(const SweepReport& report, const char* label) {
  EXPECT_TRUE(report.reference_agrees) << label << ": clean run vs SPA";
  EXPECT_EQ(report.mismatches, 0u)
      << label << ": first mismatch at injection point "
      << report.first_mismatch_point;
  // Every selected injection point exists in the clean run's allocation
  // sequence, so every injected run must have restarted at least once.
  EXPECT_EQ(report.runs_with_restart, report.injected_runs) << label;
  EXPECT_GE(report.total_denials, report.injected_runs) << label;
  EXPECT_TRUE(report.ok()) << label;
}

TEST(FaultSweep, EscIterationBoundariesAllBitIdentical) {
  const auto a = testutil::quantize(
      gen_uniform_random<double>(150, 150, 8.0, 2.0, 99));
  Config cfg = multi_iteration_config();
  trace::TraceSession session;
  cfg.trace = &session;
  const SweepReport report = sweep_injection_points(a, a, cfg);
  expect_sweep_ok(report, "esc-iterations");
  EXPECT_GE(report.allocation_points, 100u);
  // The shape really does run many local iterations per block (so denials
  // landed between iterations, not only at block starts).
  const auto counters = session.counters_snapshot();
  EXPECT_GT(counters.esc_iterations, 2 * counters.esc_blocks);
  // The session saw the clean run too, so it can only record more.
  EXPECT_GE(counters.restarts, report.total_restarts);
}

TEST(FaultSweep, PathAndSearchMergeWindowsAllBitIdentical) {
  const auto a = testutil::quantize(
      gen_powerlaw<double>(200, 200, 6.0, 1.5, 120, 131));
  Config cfg = merge_heavy_config();
  trace::TraceSession session;
  cfg.trace = &session;
  const SweepReport report = sweep_injection_points(a, a, cfg);
  expect_sweep_ok(report, "merge-windows");
  // Both windowed merge cases actually ran, with multiple windows written —
  // denials therefore hit Path/Search window boundaries (windows_done
  // resumption), not just ESC chunks.
  const auto counters = session.counters_snapshot();
  EXPECT_GT(counters.merge_case_rows[trace::kPathMerge], 0u);
  EXPECT_GT(counters.merge_case_rows[trace::kSearchMerge], 0u);
  EXPECT_GT(counters.merge_windows, 0u);
}

TEST(FaultSweep, LongRowChunkCreationAllBitIdentical) {
  const auto a = testutil::quantize(
      gen_uniform_random<double>(120, 60, 4.0, 1.0, 602));
  const auto b = testutil::quantize(inject_long_rows(
      gen_uniform_random<double>(60, 600, 3.0, 1.0, 603), 5, 400, 604));
  Config cfg;
  cfg.long_row_threshold = 64;
  cfg.nnz_per_block = 64;
  trace::TraceSession session;
  cfg.trace = &session;
  const SweepReport report = sweep_injection_points(a, b, cfg);
  expect_sweep_ok(report, "long-rows");
  // Pointer chunks were created (idempotent `long_rows_done` replay path).
  EXPECT_GT(session.counters_snapshot().long_row_chunks, 0u);
}

TEST(FaultSweep, FloatAndMultiThreadSchedulerBitIdentical) {
  const auto a = testutil::quantize(
      gen_powerlaw<float>(150, 150, 5.0, 1.5, 80, 112));
  for (unsigned threads : {1u, 4u}) {
    Config cfg = multi_iteration_config();
    cfg.scheduler_threads = threads;
    const SweepReport report = sweep_injection_points(a, a, cfg);
    expect_sweep_ok(
        report, threads == 1 ? "float 1 thread" : "float 4 threads");
  }
  // And across scheduler widths: the clean outputs agree bit-for-bit.
  Config one = multi_iteration_config(), four = multi_iteration_config();
  four.scheduler_threads = 4;
  EXPECT_TRUE(multiply(a, a, one).equals_exact(multiply(a, a, four)));
}

TEST(FaultSweep, CoversAtLeastHundredInjectionPoints) {
  // Acceptance criterion: the sweep test matrices expose >= 100 distinct
  // injection points in total (each swept exhaustively above).
  const auto esc = testutil::quantize(
      gen_uniform_random<double>(150, 150, 8.0, 2.0, 99));
  const auto merge = testutil::quantize(
      gen_powerlaw<double>(200, 200, 6.0, 1.5, 120, 131));
  const auto lr_a = testutil::quantize(
      gen_uniform_random<double>(120, 60, 4.0, 1.0, 602));
  const auto lr_b = testutil::quantize(inject_long_rows(
      gen_uniform_random<double>(60, 600, 3.0, 1.0, 603), 5, 400, 604));
  Config lr_cfg;
  lr_cfg.long_row_threshold = 64;
  lr_cfg.nnz_per_block = 64;
  const std::uint64_t total =
      count_allocation_points(esc, esc, multi_iteration_config()) +
      count_allocation_points(merge, merge, merge_heavy_config()) +
      count_allocation_points(lr_a, lr_b, lr_cfg);
  EXPECT_GE(total, 100u);
}

// ---------------------------------------------------------------------------
// Sustained-pressure policies through the full pipeline.
// ---------------------------------------------------------------------------

TEST(FaultPipeline, PeriodicDenialsKeepOutputBitIdentical) {
  const auto a = testutil::quantize(
      gen_powerlaw<double>(200, 200, 6.0, 1.5, 120, 131));
  Config cfg = merge_heavy_config();
  const Csr<double> clean = multiply(a, a, cfg);

  DenyEveryKthPolicy deny(7);
  cfg.alloc_policy = &deny;
  SpgemmStats stats;
  const Csr<double> injected = multiply(a, a, cfg, &stats);
  EXPECT_TRUE(injected.equals_exact(clean));
  EXPECT_GT(stats.restarts, 1);
  EXPECT_GE(stats.pool_denials, static_cast<std::size_t>(deny.denials()));
  EXPECT_GT(deny.denials(), 0u);
}

TEST(FaultPipeline, SeededPressureKeepsOutputBitIdentical) {
  const auto a = testutil::quantize(
      gen_uniform_random<double>(150, 150, 8.0, 2.0, 99));
  Config cfg = multi_iteration_config();
  const Csr<double> clean = multiply(a, a, cfg);
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    SeededProbabilisticPolicy policy(seed, 0.1);
    cfg.alloc_policy = &policy;
    SpgemmStats stats;
    const Csr<double> injected = multiply(a, a, cfg, &stats);
    EXPECT_TRUE(injected.equals_exact(clean)) << "seed " << seed;
    EXPECT_GT(stats.restarts, 0) << "seed " << seed;
  }
}

TEST(FaultPipeline, ByteBudgetScheduleKeepsOutputBitIdentical) {
  const auto a = testutil::quantize(
      gen_uniform_random<double>(300, 300, 6.0, 2.0, 101));
  Config cfg;
  cfg.nnz_per_block = 32;
  const Csr<double> clean = multiply(a, a, cfg);

  // Budgets far below the real usage: every stage boundary forces a restart
  // round, like a pool that genuinely resized through these capacities.
  ByteBudgetPolicy budget({1 << 10, 8 << 10, 64 << 10});
  cfg.alloc_policy = &budget;
  SpgemmStats stats;
  const Csr<double> injected = multiply(a, a, cfg, &stats);
  EXPECT_TRUE(injected.equals_exact(clean));
  EXPECT_GT(stats.restarts, 0);
  EXPECT_EQ(budget.stages_passed(), 3u);
}

TEST(FaultPipeline, DenialsSurfaceOnStatsWithoutTracing) {
  const auto a = testutil::quantize(
      gen_uniform_random<double>(150, 150, 8.0, 2.0, 99));
  Config cfg = multi_iteration_config();
  DenyNthPolicy deny(10);
  cfg.alloc_policy = &deny;
  SpgemmStats stats;
  (void)multiply(a, a, cfg, &stats);
  EXPECT_GE(stats.pool_denials, 1u);
  EXPECT_GE(stats.restarts, 1);
  const auto snapshot = to_metrics_snapshot(stats);
  EXPECT_EQ(snapshot.pool_denials, stats.pool_denials);
  EXPECT_EQ(snapshot.restarts, static_cast<std::uint64_t>(stats.restarts));
}

}  // namespace
}  // namespace acs::fault
