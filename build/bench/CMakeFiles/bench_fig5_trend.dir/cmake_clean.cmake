file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_trend.dir/bench_fig5_trend.cpp.o"
  "CMakeFiles/bench_fig5_trend.dir/bench_fig5_trend.cpp.o.d"
  "bench_fig5_trend"
  "bench_fig5_trend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
