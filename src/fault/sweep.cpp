#include "fault/sweep.hpp"

#include "baselines/spa_gustavson.hpp"
#include "fault/policies.hpp"

namespace acs::fault {

template <class T>
std::uint64_t count_allocation_points(const Csr<T>& a, const Csr<T>& b,
                                      Config cfg) {
  CountingPolicy counter;
  cfg.alloc_policy = &counter;
  (void)multiply(a, b, cfg);
  return counter.attempts();
}

template <class T>
SweepReport sweep_injection_points(const Csr<T>& a, const Csr<T>& b,
                                   Config cfg, const SweepOptions& options) {
  SweepReport report;

  // 1. Clean run: enumerate the injection points, capture the reference.
  CountingPolicy counter;
  cfg.alloc_policy = &counter;
  const Csr<T> reference = multiply(a, b, cfg);
  report.allocation_points = counter.attempts();
  if (options.differential_reference)
    report.reference_agrees = reference.equals_exact(spa_multiply(a, b));

  // 2. Deny exactly allocation i, for every selected i. Each denial must
  // force at least one restart (the attempt exists) and must not change a
  // single bit of the output.
  const std::uint64_t stride = options.stride == 0 ? 1 : options.stride;
  for (std::uint64_t i = 0; i < report.allocation_points; i += stride) {
    if (options.max_points != 0 && report.injected_runs >= options.max_points)
      break;
    DenyNthPolicy deny(i);
    cfg.alloc_policy = &deny;
    SpgemmStats stats;
    const Csr<T> injected = multiply(a, b, cfg, &stats);
    ++report.injected_runs;
    if (stats.restarts > 0) ++report.runs_with_restart;
    report.total_restarts += static_cast<std::uint64_t>(
        stats.restarts < 0 ? 0 : stats.restarts);
    report.total_denials += stats.pool_denials;
    if (!injected.equals_exact(reference)) {
      if (report.mismatches == 0) report.first_mismatch_point = i;
      ++report.mismatches;
    }
  }
  return report;
}

template std::uint64_t count_allocation_points(const Csr<float>&,
                                               const Csr<float>&, Config);
template std::uint64_t count_allocation_points(const Csr<double>&,
                                               const Csr<double>&, Config);
template SweepReport sweep_injection_points(const Csr<float>&,
                                            const Csr<float>&, Config,
                                            const SweepOptions&);
template SweepReport sweep_injection_points(const Csr<double>&,
                                            const Csr<double>&, Config,
                                            const SweepOptions&);

}  // namespace acs::fault
