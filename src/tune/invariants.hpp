#pragma once
/// \file invariants.hpp
/// Compile-time proofs of the tuner's feasibility contract (DESIGN.md §10):
/// `fits_device` is constexpr, so every tuple of the default candidate
/// grids can be certified against the default 48 KiB scratchpad here, for
/// both value widths, instead of trusting the runtime pruning alone.
/// Included from tune/tuner.cpp so the proofs are checked in every build.

#include <cstddef>

#include "core/config.hpp"
#include "tune/tuner.hpp"

namespace acs::tune::invariants {

/// The default grid tuple (nnz_per_block, retain) overlaid on the default
/// block shape (256 threads × 8 elements).
constexpr Config grid_config(int nnz_per_block, int retain) {
  Config cfg{};
  cfg.nnz_per_block = nnz_per_block;
  cfg.retain_per_thread = retain;
  return cfg;
}

/// Every default-grid tuple with nnz_per_block below `npb_limit` fits the
/// default device for values of `value_bytes`.
constexpr bool default_grid_fits(std::size_t value_bytes, int npb_limit) {
  for (int npb : kDefaultNnzPerBlockGrid) {
    if (npb >= npb_limit) continue;
    for (int retain : kDefaultRetainGrid)
      if (!fits_device(grid_config(npb, retain), value_bytes)) return false;
  }
  return true;
}

// The base configuration itself is feasible for both widths — the tuner's
// "never worse than the default" guarantee depends on the identity overlay
// surviving the feasibility filter.
static_assert(fits_device(Config{}, sizeof(float)));
static_assert(fits_device(Config{}, sizeof(double)));

// Float: the whole default grid fits the 48 KiB scratchpad.
static_assert(default_grid_fits(sizeof(float), /*npb_limit=*/2048));

// Double: every tuple except nnz_per_block=1024 fits...
static_assert(default_grid_fits(sizeof(double), /*npb_limit=*/1024));
// ...and 1024 exactly does not: 2048 keys (16 KiB) + 2048 double values
// (16 KiB) + 1025 offset_t work-distribution offsets (8200 B) + 2048 scan
// states (8 KiB) = 49160 B > 49152 B. The tuner must prune it, which
// test_tune.cpp observes at run time.
static_assert(!fits_device(grid_config(1024, 4), sizeof(double)));

// The retained-element grid never reaches elements_per_thread — retain ==
// ept would make every ESC iteration a no-op that forwards its whole
// buffer, so fits_device rejects it and the grid must stay below.
constexpr bool retain_grid_below_ept() {
  for (int retain : kDefaultRetainGrid)
    if (retain >= Config{}.elements_per_thread) return false;
  return true;
}
static_assert(retain_grid_below_ept());

// Compaction feasibility: the filter bounds temp_capacity() by the 15-bit
// scan counters, so any accepted shape can never trip compact_sorted's
// overflow guard.
static_assert(!fits_device(
    []() constexpr {
      Config cfg{};
      cfg.threads = 4096;
      cfg.elements_per_thread = 8;  // temp_capacity 32768 > 32767
      return cfg;
    }(),
    sizeof(float)));

}  // namespace acs::tune::invariants
