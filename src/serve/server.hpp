#pragma once
/// \file server.hpp
/// Multi-tenant SpGEMM serving layer on top of the runtime engine. A
/// `Server` accepts asynchronous submissions tagged with a tenant, a
/// priority and a deadline, prices each one through the tuner's cost
/// predictor (admission.hpp), meters tenants with token-bucket quotas
/// (quota.hpp), orders admitted jobs with deficit-round-robin weighted
/// fair scheduling (scheduler.hpp) and dispatches them into an owned
/// `runtime::Engine` worker pool via its non-blocking completion hooks.
///
/// Two timelines, one contract. All *decisions* — admission, quota,
/// degradation, fair-share order, deadline misses, memory sheds — are made
/// on a deterministic virtual timeline driven purely by the submissions'
/// arrival timestamps and structure-derived cost predictions: a bank of
/// `AdmissionConfig::executors` modeled executors is advanced to each
/// arrival, DRR picks what they serve, and a modeled chunk-pool occupancy
/// enforces `ServerConfig::arena_ceiling_bytes`. Real execution merely
/// follows the virtually-dispatched order at whatever pace the engine's
/// workers sustain. Consequences (property-tested in tests/test_serve.cpp):
///   - for a fixed arrival trace the full decision stream (and every
///     serve counter) is byte-identical regardless of `EngineConfig::workers`;
///   - every served result is bit-identical to a direct `acs::multiply`
///     with the same effective Config (the engine runs with tuning off and
///     the server applies its own `TunedParams` overlay, reported on
///     `ServeResult::tuned_applied`).
///
/// Graceful degradation: the first submission of a structure fingerprint
/// requests an asynchronous tune and is served immediately on the
/// predictor-only *cold* overlay (`AutoTuner::choose_budgeted` under
/// `EngineConfig::cold_tune_candidate_budget` — microseconds, no simulated
/// execution; the `degraded` flag); later submissions run with the full
/// tuned overlay once the modeled tune latency has elapsed. Both overlays
/// are pure functions of the trace, so degradation costs no determinism.
/// See DESIGN.md §11.
///
/// Example:
/// \code
///   acs::serve::ServerConfig cfg;
///   cfg.engine.workers = 4;
///   cfg.tenants = {{.name = "interactive", .weight = 3.0},
///                  {.name = "batch", .weight = 1.0}};
///   acs::serve::Server<double> server(cfg);
///   auto h = server.submit(a, b, {.tenant = "interactive",
///                                 .arrival_s = 0.0, .deadline_s = 0.5});
///   if (h.decision().admitted()) use(h.result().job.c);
/// \endcode

#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/plan.hpp"
#include "core/thread_annotations.hpp"
#include "matrix/csr.hpp"
#include "runtime/engine.hpp"
#include "runtime/fingerprint.hpp"
#include "serve/admission.hpp"
#include "serve/quota.hpp"
#include "serve/scheduler.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "tune/features.hpp"
#include "tune/tuner.hpp"

namespace acs::serve {

/// One tenant's share and quota. Tenants not pre-registered in
/// `ServerConfig::tenants` are created on first use with these defaults.
struct TenantConfig {
  std::string name;
  /// DRR weight: relative share of predicted cost-seconds under contention.
  double weight = 1.0;
  /// Token-bucket refill in predicted cost-seconds per virtual second;
  /// <= 0 = unmetered.
  double quota_cost_s_per_s = 0.0;
  /// Bucket capacity (and initial fill) in predicted cost-seconds.
  double quota_burst_cost_s = 0.0;
};

struct ServerConfig {
  /// Engine running the admitted jobs. `EngineConfig::tuning` is forced to
  /// kOff — the server owns tuning (it must know the exact parameter
  /// overlay per job to keep results reconstructible; see file header).
  runtime::EngineConfig engine;
  std::vector<TenantConfig> tenants;
  /// Deadline-based admission control (modeled executors, safety factor,
  /// backlog cap). `executors` also sizes the virtual dispatch timeline.
  AdmissionConfig admission;
  /// DRR deficit quantum in predicted cost-seconds per round-robin visit.
  double drr_quantum_s = 1e-3;
  /// Server-side cost-model tuning (kStaticCostModel semantics). Degraded
  /// submissions (tuned plan still cold) run on the budgeted predictor-only
  /// overlay, capped by `engine.cold_tune_candidate_budget`; warm ones on
  /// the full-grid choice. Off: every job runs its submitted Config and
  /// nothing is ever `degraded`.
  bool tuning = true;
  tune::TunerOptions tuner;
  /// Modeled virtual latency between the first request of a fingerprint
  /// and its tuned plan becoming warm. The first submission is always
  /// degraded; later ones are degraded while `arrival < first + latency`.
  double tune_latency_s = 0.0;
  /// Ceiling on the modeled chunk-pool bytes of concurrently running jobs
  /// (and on the real dispatch pipeline); 0 = unlimited. A job whose own
  /// predicted pool demand exceeds the ceiling is shed outright.
  std::size_t arena_ceiling_bytes = 0;
  /// While the virtual timeline is memory-gated, queued jobs beyond this
  /// count are shed lowest-priority-first; 0 = never shed (jobs wait).
  std::size_t shed_queue_jobs = 0;
  /// Real-dispatch lookahead: jobs handed to the engine beyond its worker
  /// count, so a finishing worker never idles waiting for the server.
  std::size_t dispatch_slack = 1;
  /// Optional sink for the `serve_*` trace counters.
  trace::TraceSession* trace = nullptr;
};

/// Terminal state of a submission.
enum class ServeStatus {
  kDone = 0,   ///< served; `ServeResult::job` holds the product
  kFailed,     ///< admitted but the multiplication failed (job.error set)
  kRejected,   ///< refused at admission (see AdmissionDecision::outcome)
  kShed,       ///< admitted, then dropped under the arena ceiling
};

[[nodiscard]] const char* to_string(ServeStatus status);

/// Submission tags. Arrivals are virtual timestamps of an open-loop trace
/// and must be non-decreasing per server (earlier values are clamped).
struct SubmitInfo {
  std::string tenant = "default";
  int priority = 0;  ///< shed victims are picked lowest-first
  double arrival_s = 0.0;
  /// Absolute virtual deadline; infinity = none.
  double deadline_s = std::numeric_limits<double>::infinity();
};

template <class T>
struct ServeResult {
  ServeStatus status = ServeStatus::kRejected;
  AdmissionDecision admission;
  std::string tenant;
  int priority = 0;
  double arrival_s = 0.0;
  /// True when the job ran before its fingerprint's full tune was warm —
  /// served on the budgeted predictor-only cold overlay.
  bool degraded = false;
  /// Parameter overlay the job actually ran with — the cold budgeted
  /// choice when `degraded`, the full-grid choice when warm, invalid when
  /// tuning is off (or no candidate fit the device): apply it to the
  /// submitted Config to reproduce the run with a direct `acs::multiply`
  /// bit-identically.
  TunedParams tuned_applied;
  /// Virtual service window on the modeled executors (0 when not served).
  double virtual_start_s = 0.0;
  double virtual_finish_s = 0.0;
  /// Virtual finish past the requested deadline (decided at dispatch on
  /// the deterministic timeline, counted in `serve_deadline_misses`).
  bool deadline_missed = false;
  /// Engine result when the job ran (kDone / kFailed); default otherwise.
  runtime::JobResult<T> job;

  [[nodiscard]] bool served() const { return status == ServeStatus::kDone; }
  /// Virtual queueing + service latency of a served job.
  [[nodiscard]] double virtual_latency_s() const {
    return virtual_finish_s - arrival_s;
  }
};

namespace detail {

template <class T>
struct ServeState {
  /// Set before the handle is returned; immutable afterwards.
  AdmissionDecision decision;

  acs::Mutex serve_m;
  acs::CondVar cv;
  bool done ACS_GUARDED_BY(serve_m) = false;
  ServeResult<T> result ACS_GUARDED_BY(serve_m);

  void resolve(ServeResult<T> r) ACS_EXCLUDES(serve_m) {
    {
      acs::MutexLock lock(serve_m);
      if (done) return;
      result = std::move(r);
      done = true;
    }
    cv.notify_all();
  }
};

}  // namespace detail

template <class T>
class Server;

/// Future-like handle to a submission. The admission decision is available
/// immediately; the result once the job resolves (served, failed, rejected
/// or shed — rejected handles resolve before `submit` returns). Cheap to
/// copy; all copies refer to the same result.
template <class T>
class ServeHandle {
 public:
  ServeHandle() = default;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  /// The structured admission verdict, available without waiting.
  [[nodiscard]] const AdmissionDecision& decision() const {
    return state_->decision;
  }

  [[nodiscard]] bool ready() const {
    acs::MutexLock lock(state_->serve_m);
    return state_->done;
  }

  void wait() const {
    acs::MutexLock lock(state_->serve_m);
    while (!state_->done) state_->cv.wait(lock);
  }

  /// Block until the submission resolves. Never throws: engine failures
  /// surface as `status == kFailed` with `job.error` set. The reference
  /// stays valid as long as any handle to the submission exists.
  [[nodiscard]] ServeResult<T>& result() const {
    wait();
    // Relock for the guarded read; once `done` is set the result is
    // immutable (resolve() is first-writer-wins), so the returned
    // reference stays safe to use unlocked.
    acs::MutexLock lock(state_->serve_m);
    return state_->result;
  }

 private:
  friend class Server<T>;
  explicit ServeHandle(std::shared_ptr<detail::ServeState<T>> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::ServeState<T>> state_;
};

/// Per-tenant serving statistics (all counters deterministic for a fixed
/// arrival trace; `completed`/`failed` lag until the real engine catches
/// up — `Server::drain()` first if exact totals matter).
struct TenantStats {
  std::string name;
  double weight = 1.0;
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t rejected_quota = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;  ///< successfully served
  std::uint64_t failed = 0;
  std::uint64_t degraded = 0;   ///< admitted on the untuned default plan
  std::uint64_t deadline_misses = 0;
  /// Predicted cost-seconds virtually dispatched for this tenant — the
  /// fair-share currency (Jain's index over these is the fairness gate).
  double served_cost_s = 0.0;
};

struct ServeStats {
  std::vector<TenantStats> tenants;
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t degraded = 0;
  std::uint64_t deadline_misses = 0;
  /// Peak admitted-but-not-yet-dispatched jobs (DRR queues + ready list).
  std::size_t queue_depth_peak = 0;
  std::size_t queued_jobs = 0;    ///< snapshot: awaiting real dispatch
  std::size_t in_flight_jobs = 0; ///< snapshot: running in the engine
};

template <class T>
class Server {
 public:
  explicit Server(ServerConfig config = {});
  /// Drains every admitted job, then stops the tuner thread and the engine.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Submit C = A·B tagged with `info`. Admission control, quota metering
  /// and the degradation decision run synchronously (the decision is on the
  /// returned handle); execution is asynchronous. Operands are taken by
  /// value — move them in to avoid the copy. Submissions must be made in
  /// arrival order; concurrent callers are serialized, with the
  /// interleaving then defining the trace.
  ServeHandle<T> submit(Csr<T> a, Csr<T> b, SubmitInfo info, Config cfg = {})
      ACS_EXCLUDES(m_);

  /// Flush the virtual timeline (dispatching everything still queued) and
  /// block until every admitted job has resolved.
  void drain() ACS_EXCLUDES(m_);

  [[nodiscard]] ServeStats stats() const ACS_EXCLUDES(m_);
  /// Engine metrics plus the serve counter block and per-tenant rows.
  [[nodiscard]] trace::MetricsSnapshot metrics() const ACS_EXCLUDES(m_);
  [[nodiscard]] runtime::Engine<T>& engine() { return *engine_; }
  [[nodiscard]] const ServerConfig& config() const { return cfg_; }

 private:
  /// Per-fingerprint prediction + tune state (all virtual-time; mutated
  /// only under m_ in submission order, except `tuned`/`tuned_computed`
  /// which the tuner thread fills in — never read by a decision).
  struct PredictionEntry {
    bool have_features = false;
    tune::TuneFeatures features;
    bool tune_requested = false;
    double tune_ready_s = 0.0;  ///< modeled warm time of the tuned plan
    /// Config the tune ranks against (the first submission's), pinned so
    /// the overlay is a pure function of the trace whichever thread
    /// computes it first.
    Config tune_base;
    bool tuned_computed = false;
    TunedParams tuned;
    /// Budgeted predictor-only overlay served while degraded — computed at
    /// the first degraded dispatch, a pure function of (features,
    /// tune_base, candidate budget) like `tuned`.
    bool cold_computed = false;
    TunedParams cold;
  };

  /// One admitted job between admission and real dispatch.
  struct JobRec {
    std::uint64_t id = 0;
    std::size_t tenant = 0;
    SubmitInfo info;
    Config cfg;  ///< as submitted; the overlay is applied at dispatch
    runtime::Fingerprint fp;
    bool degraded = false;
    double cost_s = 0.0;            ///< safety-scaled predicted makespan
    std::size_t pool_bytes = 0;     ///< predicted chunk-pool demand
    AdmissionDecision decision;
    double virtual_start_s = 0.0;   ///< filled at virtual dispatch
    double virtual_finish_s = 0.0;
    bool deadline_missed = false;
    Csr<T> a;
    Csr<T> b;
    std::shared_ptr<detail::ServeState<T>> state;
  };

  struct TenantRuntime {
    TokenBucket bucket;
    TenantStats stats;
  };

  struct TuneTask {
    runtime::Fingerprint fp;
    tune::TuneFeatures features;
    Config base;
  };

  std::size_t ensure_tenant_locked(const std::string& name) ACS_REQUIRES(m_);
  /// Advance the virtual dispatch timeline to `until_s` (inclusive):
  /// modeled executors pick DRR winners, the arena ceiling gates/sheds,
  /// misses are counted, dispatched jobs move to the ready list.
  void advance_virtual_locked(double until_s) ACS_REQUIRES(m_);
  /// Shed queued jobs beyond `shed_queue_jobs` (memory-gated path only).
  void shed_over_cap_locked() ACS_REQUIRES(m_);
  void resolve_shed_locked(JobRec rec) ACS_REQUIRES(m_);
  /// Hand ready jobs to the engine, bounded by workers + dispatch_slack
  /// and by the arena ceiling over real in-flight predicted pool bytes.
  void pump_locked() ACS_REQUIRES(m_);
  /// Tuned overlay for `fp`, computing synchronously if the tuner thread
  /// has not gotten to it yet (same deterministic result either way).
  TunedParams ensure_tuned_locked(const runtime::Fingerprint& fp,
                                  const Config& base) ACS_REQUIRES(m_);
  /// Cold overlay for a degraded dispatch of `fp` (predictor-only budgeted
  /// ranking; computed once per fingerprint, deterministic).
  TunedParams ensure_cold_tuned_locked(const runtime::Fingerprint& fp,
                                       const Config& base) ACS_REQUIRES(m_);
  void tune_loop() ACS_EXCLUDES(tune_m_, m_);
  ServeResult<T> make_result_locked(const JobRec& rec, ServeStatus status)
      ACS_REQUIRES(m_);

  ServerConfig cfg_;
  std::size_t max_outstanding_ = 1;

  mutable acs::Mutex m_;
  acs::CondVar drain_cv_;
  AdmissionModel admission_ ACS_GUARDED_BY(m_);
  DrrScheduler drr_ ACS_GUARDED_BY(m_);
  std::unordered_map<std::string, std::size_t> tenant_index_
      ACS_GUARDED_BY(m_);
  std::vector<TenantRuntime> tenants_ ACS_GUARDED_BY(m_);
  std::unordered_map<std::uint64_t, JobRec> queued_jobs_
      ACS_GUARDED_BY(m_);  ///< in DRR
  /// Virtually dispatched, awaiting the engine.
  std::deque<JobRec> ready_ ACS_GUARDED_BY(m_);
  /// Virtual dispatch executors: free time + pool bytes of current job.
  std::vector<double> vfree_ ACS_GUARDED_BY(m_);
  std::vector<std::size_t> vbytes_ ACS_GUARDED_BY(m_);
  std::unordered_map<runtime::Fingerprint, PredictionEntry,
                     runtime::FingerprintHash>
      predictions_ ACS_GUARDED_BY(m_);
  std::uint64_t next_id_ ACS_GUARDED_BY(m_) = 0;
  double last_arrival_s_ ACS_GUARDED_BY(m_) = 0.0;
  std::size_t outstanding_ ACS_GUARDED_BY(m_) = 0;  ///< jobs in the engine
  std::size_t outstanding_pool_bytes_ ACS_GUARDED_BY(m_) = 0;
  /// Admitted jobs not yet resolved.
  std::size_t unresolved_ ACS_GUARDED_BY(m_) = 0;
  /// Budgeted cold overlays computed.
  std::uint64_t cold_tunes_ ACS_GUARDED_BY(m_) = 0;
  ServeStats totals_ ACS_GUARDED_BY(m_);

  acs::Mutex tune_m_;
  acs::CondVar tune_cv_;
  std::deque<TuneTask> tune_queue_ ACS_GUARDED_BY(tune_m_);
  bool tune_stop_ ACS_GUARDED_BY(tune_m_) = false;
  std::thread tuner_thread_;

  /// Constructed last (after every member its completion callbacks touch),
  /// destroyed first.
  std::unique_ptr<runtime::Engine<T>> engine_;
};

extern template class Server<float>;
extern template class Server<double>;

}  // namespace acs::serve
