#pragma once
/// \file scheduler.hpp
/// Host-side executor for simulated thread blocks. Blocks are independent
/// units of work (exactly as on the GPU); the scheduler runs them either
/// sequentially or on a small thread pool. Results must be written to
/// per-block slots by the callback, which is what makes the execution
/// deterministic regardless of thread count — the same property the paper's
/// deterministic scheduling pattern provides on hardware.

#include <cstddef>
#include <functional>

namespace acs::sim {

class BlockScheduler {
 public:
  /// `threads == 0` picks std::thread::hardware_concurrency().
  explicit BlockScheduler(unsigned threads = 1);

  /// Invoke `body(block_id)` for every block in [0, num_blocks). Exceptions
  /// thrown by any block are rethrown (first one wins) after all workers
  /// finish.
  void for_each_block(std::size_t num_blocks,
                      const std::function<void(std::size_t)>& body) const;

  [[nodiscard]] unsigned threads() const { return threads_; }

 private:
  unsigned threads_;
};

}  // namespace acs::sim
