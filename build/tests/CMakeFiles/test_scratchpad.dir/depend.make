# Empty dependencies file for test_scratchpad.
# This may be replaced when dependencies are built.
