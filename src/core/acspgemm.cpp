#include "core/acspgemm.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "arch/arch_id.hpp"
#include "core/esc_block.hpp"
#include "core/invariants.hpp"  // compile-time proofs ride every build
#include "core/merge.hpp"
#include "estimate/estimator.hpp"
#include "matrix/stats.hpp"
#include "sim/cost_model.hpp"
#include "sim/scheduler.hpp"
#include "sim/scratchpad.hpp"
#include "trace/trace.hpp"

namespace acs {
namespace {

/// Point the scheduler's block attribution at the run's trace session for
/// the duration of one multiplication, restoring the previous sink on exit
/// (the engine's warm schedulers outlive many jobs).
class SchedulerTraceGuard {
 public:
  SchedulerTraceGuard(sim::BlockScheduler& scheduler,
                      trace::TraceSession* session)
      : scheduler_(scheduler), previous_(scheduler.trace()) {
    scheduler_.set_trace(session);
  }
  ~SchedulerTraceGuard() { scheduler_.set_trace(previous_); }

  SchedulerTraceGuard(const SchedulerTraceGuard&) = delete;
  SchedulerTraceGuard& operator=(const SchedulerTraceGuard&) = delete;

 private:
  sim::BlockScheduler& scheduler_;
  trace::TraceSession* previous_;
};

using sim::uniform_block_split;

template <class T>
class Pipeline {
 public:
  Pipeline(const Csr<T>& a, const Csr<T>& b, const Config& cfg,
           SpgemmPlan& plan, SpgemmStats& stats,
           sim::BlockScheduler* scheduler)
      : a_(a),
        b_(b),
        cfg_(cfg),
        stats_(stats),
        plan_(plan),
        trace_(cfg.trace),
        own_scheduler_(scheduler ? 1 : cfg.scheduler_threads),
        scheduler_(scheduler ? *scheduler : own_scheduler_),
        initial_pool_(plan.pool_bytes ? plan.pool_bytes
                                      : estimate_chunk_pool_bytes(a, b, cfg)),
        pool_(initial_pool_) {
    validate();
    // Fault-injection hook (core/chunk.hpp): denials look exactly like pool
    // exhaustion, so they exercise the restart protocol on demand.
    pool_.set_policy(cfg.alloc_policy);
  }

  Csr<T> run() {
    SchedulerTraceGuard trace_guard(scheduler_, trace_);
    ACS_TRACE_SCOPE(trace_, "multiply");
    stats_.intermediate_products = intermediate_products(a_, b_);
    global_load_balance();
    esc_stage();
    register_segments();
    merge_stage();
    Csr<T> c = chunk_copy();
    finalize_stats();
    return c;
  }

 private:
  void validate() const {
    if (a_.cols != b_.rows)
      throw std::invalid_argument("acspgemm: dimension mismatch (A.cols != B.rows)");
    if (cfg_.validate_inputs) {
      if (const auto err = a_.validate(); !err.empty())
        throw std::invalid_argument("acspgemm: invalid A: " + err);
      if (const auto err = b_.validate(); !err.empty())
        throw std::invalid_argument("acspgemm: invalid B: " + err);
    }
    if (cfg_.threads <= 0 || cfg_.nnz_per_block <= 0 ||
        cfg_.elements_per_thread <= 0)
      throw std::invalid_argument("acspgemm: non-positive block configuration");
    if (cfg_.retain_per_thread < 0 ||
        cfg_.retain_per_thread >= cfg_.elements_per_thread)
      throw std::invalid_argument(
          "acspgemm: retain_per_thread must be in [0, elements_per_thread)");
    if (!(cfg_.pool_growth_factor > 1.0))
      throw std::invalid_argument(
          "acspgemm: pool_growth_factor must be > 1 (growth must make "
          "progress every restart)");
    if (cfg_.temp_capacity() > 32767)
      throw std::invalid_argument(
          "acspgemm: temp capacity exceeds the 15-bit compaction counters");
    // The paper's claim that the working set fits in on-chip memory,
    // enforced: keys + values + WDState + scan states must fit.
    sim::Scratchpad pad(static_cast<std::size_t>(cfg_.device.scratchpad_bytes));
    const auto cap = static_cast<std::size_t>(cfg_.temp_capacity());
    pad.allocate<std::uint64_t>(cap);                                   // keys
    pad.allocate<T>(cap);                                               // values
    pad.allocate<offset_t>(static_cast<std::size_t>(cfg_.nnz_per_block) + 1);
    pad.allocate<std::uint32_t>(cap);                                   // states
  }

  /// Record one simulated kernel: schedule its blocks, account the stage
  /// time, aggregate metrics, and track the lowest multiprocessor load over
  /// device-filling kernels. Returns the kernel's simulated time so callers
  /// can attribute it to their trace span.
  double record_stage(const char* name,
                      const std::vector<sim::MetricCounters>& blocks) {
    if (cfg_.exec == arch::ExecKind::kNative) {
      // Native backend: blocks ran for real, there is no simulated kernel
      // to price — skip the cost model entirely (it is pure overhead on
      // the wall-clock path) and keep the stage entry at zero sim time.
      // Block metrics still aggregate: the native ESC path charges almost
      // nothing to them by design, but merge/CC reuse the simulated
      // primitives and their counters remain meaningful.
      stats_.stage_times_s.emplace_back(name, 0.0);
      for (const auto& bm : blocks) stats_.metrics += bm;
      return 0.0;
    }
    const sim::KernelTiming t = sim::schedule_blocks(blocks, cfg_.device);
    stats_.stage_times_s.emplace_back(name, t.time_s);
    stats_.sim_time_s += t.time_s;
    for (const auto& bm : blocks) stats_.metrics += bm;
    // Track the lowest load over device-filling kernels only (Table 3's
    // mpL): kernels with fewer blocks than resident slots trivially leave
    // SMs idle and say nothing about load balancing quality.
    const auto resident = static_cast<std::size_t>(
        2 * cfg_.device.num_sms * cfg_.device.blocks_per_sm);
    if (blocks.size() >= resident)
      stats_.multiprocessor_load =
          std::min(stats_.multiprocessor_load, t.multiprocessor_load);
    return t.time_s;
  }

  /// One restart round's pool growth ("resize and restart", §3.5): bounded
  /// geometric. The step is (factor - 1) × current capacity — doubling by
  /// default — floored at 64 KB so a tiny override still makes progress and
  /// capped at `pool_growth_max_step_bytes` so a huge pool grows linearly
  /// instead of overshooting. A pool undersized by a factor D therefore
  /// converges in O(log D) restarts; the final capacity feeds back into the
  /// plan (finalize_stats), so warm replays start restart-free.
  void grow_pool_after_restart() {
    const double want = static_cast<double>(pool_.capacity()) *
                        (cfg_.pool_growth_factor - 1.0);
    std::size_t step = want >= static_cast<double>(cfg_.pool_growth_max_step_bytes)
                           ? cfg_.pool_growth_max_step_bytes
                           : static_cast<std::size_t>(want);
    step = std::max(step, std::size_t{64} << 10);
    pool_.grow(step);
  }

  /// Per-round restart bookkeeping shared by the ESC and merge stages.
  void record_restart_round(std::size_t failed_blocks) {
    stats_.pool_denials += failed_blocks;
    ACS_TRACE_COUNT(trace_, pool_denials, failed_blocks);
    if (failed_blocks == 0) return;
    ++stats_.restarts;
    ACS_TRACE_COUNT(trace_, restarts, 1);
    grow_pool_after_restart();
  }

  // --- Stage 1: global load balancing (Algorithm 1). -----------------------
  void global_load_balance() {
    ACS_TRACE_SPAN(span, trace_, "GLB");
    if (plan_.has_load_balance(cfg_, a_.nnz())) {
      // blockRowStarts depends only on A's row pointer; reusing the plan's
      // table skips the kernel entirely (no launch, no simulated time).
      block_row_starts_ = plan_.block_row_starts;
      num_blocks_ = block_row_starts_.size();
      stats_.glb_reused = true;
      stats_.stage_times_s.emplace_back("GLB", 0.0);
      return;
    }
    num_blocks_ = static_cast<std::size_t>(
        divup<offset_t>(a_.nnz(), cfg_.nnz_per_block));
    block_row_starts_.assign(num_blocks_, 0);
    // Sequential equivalent of Algorithm 1's one-thread-per-row pass.
    for (index_t row = 0; row < a_.rows; ++row) {
      const offset_t lo = a_.row_ptr[usize(row)];
      const offset_t hi = a_.row_ptr[usize(row) + 1];
      if (lo == hi) continue;
      offset_t blk = divup<offset_t>(lo, cfg_.nnz_per_block);
      const offset_t blk_end = (hi - 1) / cfg_.nnz_per_block;
      for (; blk <= blk_end; ++blk)
        block_row_starts_[static_cast<std::size_t>(blk)] = row;
    }
    sim::MetricCounters m;
    m.global_bytes_coalesced =
        (static_cast<std::uint64_t>(a_.rows) + num_blocks_) * sizeof(index_t);
    m.scan_elements = static_cast<std::uint64_t>(a_.rows);
    span.add_sim_time(record_stage(
        "GLB", uniform_block_split(divup<std::size_t>(
                                  std::max<std::size_t>(
                                      static_cast<std::size_t>(a_.rows), 1),
                                  static_cast<std::size_t>(cfg_.threads)),
                              m)));
  }

  // --- Stage 2: adaptive chunk-based ESC with restarts. --------------------
  void esc_stage() {
    block_states_.assign(num_blocks_, BlockState{});
    std::vector<std::size_t> pending(num_blocks_);
    for (std::size_t i = 0; i < num_blocks_; ++i) pending[i] = i;

    while (!pending.empty()) {
      // One span per kernel launch; restart relaunches show up as further
      // "ESC" spans whose sim times aggregate into the same stage total.
      ACS_TRACE_SPAN(span, trace_, "ESC");
      std::vector<EscBlockResult<T>> results(pending.size());
      scheduler_.for_each_block(pending.size(), [&](std::size_t i) {
        results[i] = run_esc_block<T>(a_, b_, block_row_starts_, pending[i],
                                      cfg_, pool_, block_states_[pending[i]]);
      });

      std::vector<sim::MetricCounters> launch_metrics;
      launch_metrics.reserve(results.size());
      std::vector<std::size_t> failed;
      for (std::size_t i = 0; i < results.size(); ++i) {
        launch_metrics.push_back(results[i].metrics);
        stats_.esc_iterations += static_cast<std::size_t>(results[i].iterations);
        ACS_TRACE_HOOK(trace_, acs_trace.counters().record_esc_block(
                                   static_cast<std::uint64_t>(
                                       results[i].iterations)));
        for (auto& chunk : results[i].chunks) {
          if (chunk.is_long_row) ++stats_.long_row_chunks;
          chunks_.push_back(std::move(chunk));
        }
        if (results[i].needs_restart) failed.push_back(pending[i]);
      }
      span.add_sim_time(record_stage("ESC", launch_metrics));
      record_restart_round(failed.size());
      pending = std::move(failed);
    }
  }

  // --- Build per-row segment lists and row counters from the chunks. -------
  void register_segments() {
    // Deterministic global chunk order (block id, per-block counter); the
    // paper sorts the scheduler-ordered lists by this key before merging.
    std::sort(chunks_.begin(), chunks_.end(),
              [](const Chunk<T>& x, const Chunk<T>& y) { return x.order < y.order; });

    segments_.assign(static_cast<std::size_t>(a_.rows), {});
    row_nnz_.assign(static_cast<std::size_t>(a_.rows), 0);
    for (std::size_t ci = 0; ci < chunks_.size(); ++ci) {
      const Chunk<T>& chunk = chunks_[ci];
      if (chunk.is_long_row) {
        segments_[static_cast<std::size_t>(chunk.rows[0])].push_back(
            {ci, 0, chunk.long_len, chunk.order});
        row_nnz_[static_cast<std::size_t>(chunk.rows[0])] += chunk.long_len;
        continue;
      }
      for (std::size_t r = 0; r < chunk.rows.size(); ++r) {
        const index_t len = chunk.row_offsets[r + 1] - chunk.row_offsets[r];
        segments_[static_cast<std::size_t>(chunk.rows[r])].push_back(
            {ci, chunk.row_offsets[r], len, chunk.order});
        row_nnz_[static_cast<std::size_t>(chunk.rows[r])] += len;
      }
    }
  }

  // --- Stage 3: merge assignment + Multi/Path/Search merge. ----------------
  void merge_stage() {
    std::vector<index_t> shared_rows;
    for (index_t r = 0; r < a_.rows; ++r)
      if (segments_[static_cast<std::size_t>(r)].size() >= 2)
        shared_rows.push_back(r);
    stats_.merged_rows = shared_rows.size();

    // Merge-case assignment (Fig. 7's "MCC"): one prefix scan over the
    // shared rows using the summed row counts. No launch when no row needs
    // merging.
    {
      ACS_TRACE_SPAN(span, trace_, "MCC");
      if (shared_rows.empty()) {
        stats_.stage_times_s.emplace_back("MCC", 0.0);
      } else {
        sim::MetricCounters m;
        m.scan_elements = shared_rows.size();
        m.global_bytes_coalesced = shared_rows.size() * 2 * sizeof(index_t);
        span.add_sim_time(record_stage(
            "MCC", uniform_block_split(
                       divup<std::size_t>(shared_rows.size(),
                                          static_cast<std::size_t>(cfg_.threads)),
                       m)));
      }
    }

    const auto capacity = static_cast<offset_t>(cfg_.temp_capacity());
    std::vector<MergeBatch> multi, path, search;
    MergeBatch current;
    offset_t current_total = 0;
    auto flush_multi = [&] {
      if (!current.rows.empty()) {
        multi.push_back(std::move(current));
        current = {};
        current_total = 0;
      }
    };
    for (index_t row : shared_rows) {
      auto& segs = segments_[static_cast<std::size_t>(row)];
      const offset_t total = row_nnz_[static_cast<std::size_t>(row)];
      if (segs.size() == 2 && total <= capacity) {
        if (current_total + total > capacity) flush_multi();
        current.rows.push_back(row);
        current.segments.push_back(segs);
        current_total += total;
      } else if (segs.size() <=
                 static_cast<std::size_t>(cfg_.path_merge_max_chunks)) {
        path.push_back({{row}, {segs}});
      } else {
        search.push_back({{row}, {segs}});
      }
    }
    flush_multi();

    ACS_TRACE_HOOK(trace_, {
      auto& rows = acs_trace.counters().merge_case_rows;
      std::uint64_t multi_rows = 0;
      for (const MergeBatch& batch : multi) multi_rows += batch.rows.size();
      // mo: trace counters; consumers snapshot them after the run joins.
      rows[trace::kMultiMerge].fetch_add(multi_rows, std::memory_order_relaxed);
      // mo: same as above.
      rows[trace::kPathMerge].fetch_add(path.size(), std::memory_order_relaxed);
      // mo: same as above.
      rows[trace::kSearchMerge].fetch_add(search.size(),
                                          std::memory_order_relaxed);
    });

    run_merge_kind("MM", MergeKind::Multi, multi);
    run_merge_kind("PM", MergeKind::Path, path);
    run_merge_kind("SM", MergeKind::Search, search);
  }

  void run_merge_kind(const char* stage, MergeKind kind,
                      const std::vector<MergeBatch>& batches) {
    if (batches.empty()) {
      // No kernel launch when there is nothing to merge (and no span: an
      // empty stage would only pad the trace).
      stats_.stage_times_s.emplace_back(stage, 0.0);
      return;
    }
    ACS_TRACE_SPAN(stage_span, trace_, stage);
    std::vector<std::size_t> windows_done(batches.size(), 0);
    std::vector<bool> done(batches.size(), false);
    std::vector<std::size_t> pending(batches.size());
    for (std::size_t i = 0; i < batches.size(); ++i) pending[i] = i;

    // Order keys for merged chunks live past the ESC block-id range.
    const auto order_base = static_cast<std::uint32_t>(num_blocks_ + 1);

    while (!pending.empty()) {
      std::vector<MergeOutcome<T>> results(pending.size());
      scheduler_.for_each_block(pending.size(), [&](std::size_t i) {
        const std::size_t t = pending[i];
        results[i] = run_merge_block<T>(
            batches[t], chunks_, b_, cfg_, pool_, kind, windows_done[t],
            order_base + static_cast<std::uint32_t>(t));
      });

      std::vector<sim::MetricCounters> launch_metrics;
      std::vector<std::size_t> failed;
      for (std::size_t i = 0; i < results.size(); ++i) {
        const std::size_t t = pending[i];
        launch_metrics.push_back(results[i].metrics);
        // Append the new chunks and retarget the merged rows' segments.
        std::vector<std::size_t> new_ids;
        for (auto& chunk : results[i].chunks) {
          new_ids.push_back(chunks_.size());
          chunks_.push_back(std::move(chunk));
        }
        if (windows_done[t] == 0 && !new_ids.empty()) {
          // First successful windows of this task: clear old segments.
          for (index_t row : batches[t].rows) {
            segments_[static_cast<std::size_t>(row)].clear();
            row_nnz_[static_cast<std::size_t>(row)] = 0;
          }
        }
        for (std::size_t ci : new_ids) {
          const Chunk<T>& chunk = chunks_[ci];
          for (std::size_t r = 0; r < chunk.rows.size(); ++r) {
            const index_t len =
                chunk.row_offsets[r + 1] - chunk.row_offsets[r];
            segments_[static_cast<std::size_t>(chunk.rows[r])].push_back(
                {ci, chunk.row_offsets[r], len, chunk.order});
            row_nnz_[static_cast<std::size_t>(chunk.rows[r])] += len;
          }
        }
        windows_done[t] += new_ids.size();
        if (!results[i].needs_restart) done[t] = true;
        else failed.push_back(t);
      }
      stage_span.add_sim_time(record_stage(stage, launch_metrics));
      record_restart_round(failed.size());
      pending = std::move(failed);
    }
  }

  // --- Stage 4: output matrix allocation and chunk copy. -------------------
  Csr<T> chunk_copy() {
    ACS_TRACE_SPAN(span, trace_, "CC");
    Csr<T> c;
    c.rows = a_.rows;
    c.cols = b_.cols;
    c.row_ptr.assign(static_cast<std::size_t>(a_.rows) + 1, 0);
    offset_t total = 0;
    for (index_t r = 0; r < a_.rows; ++r) {
      total += row_nnz_[static_cast<std::size_t>(r)];
      c.row_ptr[static_cast<std::size_t>(r) + 1] = static_cast<index_t>(total);
    }
    if (total > std::numeric_limits<index_t>::max())
      throw std::length_error("acspgemm: output exceeds 32-bit index range");
    c.col_idx.resize(static_cast<std::size_t>(total));
    c.values.resize(static_cast<std::size_t>(total));

    sim::MetricCounters m;
    m.scan_elements += static_cast<std::uint64_t>(a_.rows);  // row-ptr scan
    m.global_bytes_coalesced +=
        static_cast<std::uint64_t>(a_.rows) * sizeof(index_t) * 2;

    // One copy block per live chunk (the paper: "each chunk uses a complete
    // block of threads to copy data in a coalesced fashion").
    std::vector<bool> chunk_live(chunks_.size(), false);
    for (index_t r = 0; r < a_.rows; ++r) {
      auto& segs = segments_[usize(r)];
      index_t out = c.row_ptr[usize(r)];
      for (const RowSegment& seg : segs) {
        const Chunk<T>& chunk = chunks_[seg.chunk];
        chunk_live[seg.chunk] = true;
        if (chunk.is_long_row) {
          // Unshared long row: materialize factor × row of B directly.
          const index_t start = b_.row_ptr[usize(chunk.b_row)];
          for (index_t i = 0; i < chunk.long_len; ++i) {
            c.col_idx[static_cast<std::size_t>(out + i)] =
                b_.col_idx[static_cast<std::size_t>(start + i)];
            c.values[static_cast<std::size_t>(out + i)] =
                chunk.factor * b_.values[static_cast<std::size_t>(start + i)];
          }
          m.flops += 2 * static_cast<std::uint64_t>(chunk.long_len);
          m.global_bytes_coalesced +=
              2 * static_cast<std::uint64_t>(chunk.long_len) *
              (sizeof(index_t) + sizeof(T));
        } else {
          const auto sb = static_cast<std::size_t>(seg.begin);
          const auto sl = static_cast<std::size_t>(seg.length);
          std::copy_n(chunk.cols.begin() + static_cast<std::ptrdiff_t>(sb), sl,
                      c.col_idx.begin() + static_cast<std::ptrdiff_t>(out));
          std::copy_n(chunk.vals.begin() + static_cast<std::ptrdiff_t>(sb), sl,
                      c.values.begin() + static_cast<std::ptrdiff_t>(out));
          m.global_bytes_coalesced +=
              2 * static_cast<std::uint64_t>(seg.length) *
              (sizeof(index_t) + sizeof(T));
        }
        out += seg.length;
      }
    }
    const auto live_chunks = static_cast<std::size_t>(
        std::count(chunk_live.begin(), chunk_live.end(), true));
    span.add_sim_time(
        record_stage("CC", uniform_block_split(std::max<std::size_t>(live_chunks, 1), m)));
    return c;
  }

  void finalize_stats() {
    stats_.pool_bytes = pool_.capacity();
    stats_.pool_used_bytes = pool_.used();
    stats_.pool_estimate_bytes = initial_pool_;
    stats_.chunks_created = chunks_.size();
    ACS_TRACE_GAUGE_MAX(trace_, pool_capacity_bytes, pool_.capacity());
    ACS_TRACE_GAUGE_MAX(trace_, pool_used_bytes, pool_.used());
    ACS_TRACE_GAUGE_MAX(trace_, pool_estimate_bytes, initial_pool_);
    // Refresh the plan: the load-balancing table (unless it came from the
    // plan already) and the final pool capacity. The capacity includes any
    // restart growth, so replaying the plan on the same pattern needs no
    // restarts.
    if (!stats_.glb_reused) plan_.block_row_starts = block_row_starts_;
    plan_.nnz_per_block = cfg_.nnz_per_block;
    plan_.nnz_a = a_.nnz();
    plan_.pool_bytes = pool_.capacity();
    plan_.observed_pool_used = pool_.used();
    plan_.observed_restarts = stats_.restarts;
    ++plan_.runs;
    stats_.helper_bytes =
        num_blocks_ * (sizeof(index_t) + 16) +       // blockRowStarts + restart info
        static_cast<std::size_t>(a_.rows) *
            (sizeof(index_t) + 8 + sizeof(index_t)) +  // row counters, list
                                                       // heads, shared rows
        chunks_.size() * 8;                            // chunk pointer array
  }

  const Csr<T>& a_;
  const Csr<T>& b_;
  const Config& cfg_;
  SpgemmStats& stats_;
  SpgemmPlan& plan_;
  trace::TraceSession* trace_;
  sim::BlockScheduler own_scheduler_;
  sim::BlockScheduler& scheduler_;
  std::size_t initial_pool_;
  ChunkPool pool_;

  std::size_t num_blocks_ = 0;
  std::vector<index_t> block_row_starts_;
  std::vector<BlockState> block_states_;
  std::vector<Chunk<T>> chunks_;
  std::vector<std::vector<RowSegment>> segments_;
  std::vector<offset_t> row_nnz_;
};

}  // namespace

template <class T>
std::size_t estimate_chunk_pool_bytes(const Csr<T>& a, const Csr<T>& b,
                                      const Config& cfg) {
  if (cfg.pool_override_bytes > 0) return cfg.pool_override_bytes;
  if (cfg.pool_sizing == PoolSizing::kSampled) {
    estimate::PoolSizingParams p;
    p.quantile = cfg.pool_estimate_quantile;
    p.sample_stride = cfg.pool_sample_stride;
    p.min_samples = cfg.pool_min_samples;
    p.chunk_entry_capacity = static_cast<std::size_t>(
        std::max(1, cfg.temp_capacity() - cfg.retain_capacity()));
    p.entry_bytes = kChunkEntryBytes<T>;
    p.chunk_header_bytes = kChunkHeaderBytes;
    p.pointer_chunk_bytes = kPointerChunkBytes;
    p.long_row_threshold =
        cfg.long_row_handling ? cfg.effective_long_row_threshold() : 0;
    p.lower_bound_bytes = cfg.pool_lower_bound_bytes;
    return estimate::plan_pool_bytes(a, b, p).recommended_bytes;
  }
  const double rows_a = std::max<double>(1.0, static_cast<double>(a.rows));
  const double rows_b = std::max<double>(1.0, static_cast<double>(b.rows));
  const double cols_b = std::max<double>(1.0, static_cast<double>(b.cols));
  const double avg_a = static_cast<double>(a.nnz()) / rows_a;
  const double avg_b = static_cast<double>(b.nnz()) / rows_b;
  const double p_b = avg_b / cols_b;
  // S ≈ nA · b · (1 - (1 - p_b)^a) / p_b, the expected nnz(C) if every row
  // had the average number of uniformly distributed entries.
  const double collision_scale =
      p_b < 1e-12 ? avg_a
                  : (1.0 - std::pow(1.0 - p_b, avg_a)) / p_b;
  const double elements = rows_a * avg_b * collision_scale;
  const double bytes =
      elements * static_cast<double>(kChunkEntryBytes<T>) *
      cfg.pool_estimate_factor;
  // Saturating conversion: a hub-heavy input times the estimate factor can
  // push `bytes` past the size_t range, and a bare cast would wrap into a
  // tiny pool and a restart storm.
  return std::max(cfg.pool_lower_bound_bytes, estimate::saturate_bytes(bytes));
}

template <class T>
Csr<T> multiply_planned(const Csr<T>& a, const Csr<T>& b, const Config& cfg,
                        SpgemmPlan& plan, SpgemmStats* stats,
                        sim::BlockScheduler* scheduler) {
  SpgemmStats local;
  SpgemmStats& s = stats ? *stats : local;
  s = SpgemmStats{};
  const auto t0 = std::chrono::steady_clock::now();
  Pipeline<T> pipeline(a, b, cfg, plan, s, scheduler);
  Csr<T> c = pipeline.run();
  s.wall_time_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return c;
}

template <class T>
Csr<T> multiply(const Csr<T>& a, const Csr<T>& b, const Config& cfg,
                SpgemmStats* stats) {
  SpgemmPlan plan;
  return multiply_planned(a, b, cfg, plan, stats, nullptr);
}

template Csr<float> multiply(const Csr<float>&, const Csr<float>&,
                             const Config&, SpgemmStats*);
template Csr<double> multiply(const Csr<double>&, const Csr<double>&,
                              const Config&, SpgemmStats*);
template Csr<float> multiply_planned(const Csr<float>&, const Csr<float>&,
                                     const Config&, SpgemmPlan&, SpgemmStats*,
                                     sim::BlockScheduler*);
template Csr<double> multiply_planned(const Csr<double>&, const Csr<double>&,
                                      const Config&, SpgemmPlan&, SpgemmStats*,
                                      sim::BlockScheduler*);
template std::size_t estimate_chunk_pool_bytes(const Csr<float>&,
                                               const Csr<float>&,
                                               const Config&);
template std::size_t estimate_chunk_pool_bytes(const Csr<double>&,
                                               const Csr<double>&,
                                               const Config&);

}  // namespace acs
