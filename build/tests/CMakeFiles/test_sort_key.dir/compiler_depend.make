# Empty compiler generated dependencies file for test_sort_key.
# This may be replaced when dependencies are built.
