// Fixture: a raw span begin whose end lives in a *different* function — not
// provably paired, so the rule must flag it.
using SpanId = int;

struct Session {
  SpanId begin_span(const char*);
  void end_span(SpanId, double = 0.0);
};

SpanId g_open = 0;

void leak_a_span(Session& s) {
  g_open = s.begin_span("stage");  // no end_span in this function
}

void close_it_elsewhere(Session& s) {
  s.end_span(g_open);
}
