#pragma once
/// \file compaction.hpp
/// The compaction step of local ESC: a single block-wide prefix scan with the
/// paper's special packed-state operator (Algorithm 3) that simultaneously
/// (1) combines values with equal sort keys, (2) counts compacted elements
/// per row and (3) counts compacted elements overall — giving every element
/// its position in the output chunk and its local offset in the row.
///
/// State-word layout (32 bits), matching Algorithm 3's constants:
///   bit  0        end-of-combine-sequence flag
///   bits 1..15    compacted elements in the current row (15-bit counter)
///   bit 16        end-of-row flag
///   bits 17..31   compacted elements overall (15-bit counter)
/// Elements that end a combine sequence initialize both counters to 1
/// ("end comp" = 0x00020003, "end row" = 0x00030003, "none" = 0).

#include <cassert>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/sort_key.hpp"
#include "matrix/types.hpp"
#include "sim/metrics.hpp"

namespace acs {

namespace compaction_detail {

constexpr std::uint32_t kFlagCombineEnd = 1u << 0;
constexpr std::uint32_t kFlagRowEnd = 1u << 16;
constexpr std::uint32_t kRowCountShift = 1;
constexpr std::uint32_t kTotalCountShift = 17;
constexpr std::uint32_t kCounterMask = 0x7FFF;
constexpr std::uint32_t kStateEndComp = 0x00020003;
constexpr std::uint32_t kStateEndRow = 0x00030003;

/// Compile-time mirrors of the packed-word arithmetic. The scan below and
/// the proofs in core/invariants.hpp share these, so the bit layout the
/// static_asserts certify is the one the algorithm actually runs.
constexpr std::uint32_t pack_state(std::uint32_t row_count,
                                   std::uint32_t total_count, bool combine_end,
                                   bool row_end) {
  return (combine_end ? kFlagCombineEnd : 0u) | (row_end ? kFlagRowEnd : 0u) |
         ((row_count & kCounterMask) << kRowCountShift) |
         ((total_count & kCounterMask) << kTotalCountShift);
}

constexpr std::uint32_t row_count_of(std::uint32_t state) {
  return (state >> kRowCountShift) & kCounterMask;
}

constexpr std::uint32_t total_count_of(std::uint32_t state) {
  return (state >> kTotalCountShift) & kCounterMask;
}

/// One element of the scan: sort key, value, packed state.
template <class T>
struct ScanElement {
  std::uint64_t key;
  T value;
  std::uint32_t state;
};

/// Algorithm 3's combine operator for adjacent elements a (left) and b
/// (right). When b starts a new row, a's row counter must not leak into b,
/// so the low half of a's state is cleared; a's flag bits are always cleared
/// so that only per-element flags survive in b's state.
template <class T>
constexpr ScanElement<T> combine_scan_operator(const ScanElement<T>& a,
                                               const ScanElement<T>& b,
                                               const KeyCodec& codec) {
  std::uint32_t state;
  if (codec.same_row(a.key, b.key)) {
    state = a.state & ~(kFlagCombineEnd | kFlagRowEnd);
  } else {
    state = a.state & 0xFFFE0000;  // reset row counter, keep total counter
  }
  ScanElement<T> n;
  if (a.key == b.key) {
    n.value = a.value + b.value;
  } else {
    n.value = b.value;
  }
  n.key = b.key;
  n.state = state + b.state;
  return n;
}

}  // namespace compaction_detail

/// Result of compacting one sorted buffer.
template <class T>
struct CompactionOutput {
  std::vector<std::uint64_t> keys;  ///< compacted keys, ascending
  std::vector<T> vals;              ///< combined values
  /// (local row id, compacted entries in that row), ascending by row.
  std::vector<std::pair<index_t, index_t>> rows;
};

/// Compact a buffer sorted by `keys` (ascending): sum values of equal keys
/// (left to right, preserving the deterministic accumulation order the
/// paper's bit-stability rests on) and report per-row counts. Charges one
/// block scan of the buffer to `m`.
template <class T>
CompactionOutput<T> compact_sorted(std::span<const std::uint64_t> keys,
                                   std::span<const T> vals,
                                   const KeyCodec& codec,
                                   sim::MetricCounters& m) {
  namespace cd = compaction_detail;
  const std::size_t n = keys.size();
  assert(vals.size() == n);
  // The 15-bit counters silently wrap into the neighbouring flag/counter
  // fields past kCounterMask, corrupting every extracted position — so the
  // bound is enforced even under NDEBUG. Upstream, Pipeline::validate caps
  // temp_capacity() and run_merge_block caps windows, so a throw here means
  // a caller bypassed both (tests/test_invariants.cpp exercises the
  // boundary from both sides).
  if (n > cd::kCounterMask)
    throw std::length_error(
        "compact_sorted: " + std::to_string(n) +
        " elements exceed the 15-bit scan counters (max " +
        std::to_string(cd::kCounterMask) + ")");

  CompactionOutput<T> out;
  if (n == 0) return out;

  // Initialize per-element states from neighbour comparisons — each thread
  // does this for its own registers on the GPU.
  std::vector<cd::ScanElement<T>> elems(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool combine_end = (i + 1 == n) || keys[i + 1] != keys[i];
    const bool row_end =
        (i + 1 == n) || !codec.same_row(keys[i + 1], keys[i]);
    std::uint32_t state = 0;
    if (row_end) {
      state = cd::kStateEndRow;
    } else if (combine_end) {
      state = cd::kStateEndComp;
    }
    elems[i] = {keys[i], vals[i], state};
  }

  // Inclusive scan with the combine operator.
  for (std::size_t i = 1; i < n; ++i)
    elems[i] = cd::combine_scan_operator(elems[i - 1], elems[i], codec);
  m.scan_elements += n;
  m.scratch_ops += n;

  // Extraction: combine-sequence ends are the compacted elements; row ends
  // carry the per-row counts. Flags are re-derived from neighbours exactly
  // as during initialization (on the GPU each thread still holds them).
  for (std::size_t i = 0; i < n; ++i) {
    const bool combine_end = (i + 1 == n) || keys[i + 1] != keys[i];
    const bool row_end =
        (i + 1 == n) || !codec.same_row(keys[i + 1], keys[i]);
    if (combine_end) {
      const std::uint32_t pos = cd::total_count_of(elems[i].state) - 1;
      assert(pos == out.keys.size());
      (void)pos;
      out.keys.push_back(elems[i].key);
      out.vals.push_back(elems[i].value);
    }
    if (row_end) {
      const auto row_count =
          static_cast<index_t>(cd::row_count_of(elems[i].state));
      out.rows.emplace_back(codec.row_of(keys[i]), row_count);
    }
  }
  return out;
}

}  // namespace acs
