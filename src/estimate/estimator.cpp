#include "estimate/estimator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace acs::estimate {

index_t RowSample::quantile(double q) const {
  if (b_lens.empty()) return 0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  const auto i = static_cast<std::size_t>(
      clamped * static_cast<double>(b_lens.size() - 1) + 0.5);
  return b_lens[std::min(i, b_lens.size() - 1)];
}

template <class T>
RowSample sample_b_row_lengths(const Csr<T>& a, const Csr<T>& b,
                               std::size_t sample_stride,
                               std::size_t min_samples) {
  RowSample s;
  const std::size_t nnz = usize(a.nnz());
  s.nnz_a = nnz;
  std::size_t stride = std::max<std::size_t>(1, sample_stride);
  if (min_samples > 0 && nnz > 0)
    stride = std::min(stride, std::max<std::size_t>(1, nnz / min_samples));
  s.stride = stride;
  s.exact = stride == 1 || nnz == 0;

  // Exact min/max row length over all of B (one row-pointer pass): what an
  // unsampled entry of A can at least / at most produce, anchoring the
  // guaranteed bounds below.
  if (b.rows > 0) {
    s.b_min_len = std::numeric_limits<index_t>::max();
    for (index_t r = 0; r < b.rows; ++r) {
      const index_t len = b.row_length(r);
      s.b_min_len = std::min(s.b_min_len, len);
      s.b_max_len = std::max(s.b_max_len, len);
    }
  }

  s.b_lens.reserve(nnz / stride + 1);
  for (std::size_t i = 0; i < nnz; i += stride)
    s.b_lens.push_back(b.row_length(a.col_idx[i]));
  s.sampled = s.b_lens.size();

  // Window-weighted aggregates. Window k covers min(stride, nnz - k·stride)
  // entries of A, so the weights tile nnz(A) exactly: the partial final
  // window is neither extrapolated to a full stride (expected) nor left
  // uncharged (conservative) — the tail bug this pass replaces. The
  // conservative charge per window is the larger of its two bounding
  // samples; a window that is its own sample (stride 1, or the final
  // window) is bounded by itself.
  for (std::size_t k = 0; k < s.sampled; ++k) {
    const double len = static_cast<double>(s.b_lens[k]);
    const double next = s.exact || k + 1 == s.sampled
                            ? len
                            : static_cast<double>(s.b_lens[k + 1]);
    const double window =
        static_cast<double>(std::min(stride, nnz - k * stride));
    s.sum += len;
    s.expected += len * window;
    s.conservative += std::max(len, next) * window;
  }
  std::sort(s.b_lens.begin(), s.b_lens.end());
  return s;
}

ProductEstimate products_from_sample(const RowSample& s) {
  ProductEstimate e;
  e.exact = s.exact;
  e.expected = s.expected;
  const double unsampled =
      static_cast<double>(s.nnz_a) - static_cast<double>(s.sampled);
  e.lower = s.sum + unsampled * static_cast<double>(s.b_min_len);
  e.upper = s.sum + unsampled * static_cast<double>(s.b_max_len);
  // lower ≤ expected ≤ upper holds by construction (every sampled length is
  // within [b_min_len, b_max_len]); the heuristic is clamped into the same
  // envelope so it can never undercut the expectation nor exceed the proof.
  e.conservative = std::clamp(s.conservative, e.expected, e.upper);
  return e;
}

template <class T>
ProductEstimate estimate_products(const Csr<T>& a, const Csr<T>& b,
                                  std::size_t sample_stride,
                                  std::size_t min_samples) {
  return products_from_sample(
      sample_b_row_lengths(a, b, sample_stride, min_samples));
}

std::size_t saturate_bytes(double bytes) {
  if (!(bytes > 0.0)) return 0;  // NaN and negatives collapse here
  constexpr double kMax =
      static_cast<double>(std::numeric_limits<std::size_t>::max());
  if (bytes >= kMax) return std::numeric_limits<std::size_t>::max();
  return static_cast<std::size_t>(bytes);
}

std::size_t chunk_layout_bytes(double entries, const PoolSizingParams& p) {
  if (!(entries > 0.0)) return 0;
  const double cap =
      static_cast<double>(std::max<std::size_t>(1, p.chunk_entry_capacity));
  const double chunks = std::ceil(entries / cap);
  return saturate_bytes(entries * static_cast<double>(p.entry_bytes) +
                        chunks * static_cast<double>(p.chunk_header_bytes));
}

template <class T>
PoolPlan plan_pool_bytes(const Csr<T>& a, const Csr<T>& b,
                         const PoolSizingParams& p) {
  PoolPlan plan;
  plan.sample = sample_b_row_lengths(a, b, p.sample_stride, p.min_samples);
  plan.products = products_from_sample(plan.sample);
  const RowSample& s = plan.sample;
  const ProductEstimate& e = plan.products;

  // Quantile charge: unsampled entries pay the q-quantile of the sampled
  // length distribution — heavier than the mean on skewed inputs — clamped
  // into the guaranteed envelope.
  const double unsampled =
      static_cast<double>(s.nnz_a) - static_cast<double>(s.sampled);
  const double charged =
      std::clamp(s.sum + unsampled * static_cast<double>(s.quantile(p.quantile)),
                 e.expected, e.upper);

  // Local ESC compaction merges colliding column ids before a chunk is
  // written, so the materialized payload is the *surviving* fraction of the
  // symbolic products. The paper's uniform collision model gives that
  // fraction as (1 - (1 - p_b)^a) / (p_b · a) — the closed form's collision
  // term, reused here so dense-overlap inputs (block patterns) are not
  // charged for products compaction folds away. Only layout bytes are
  // discounted; the guaranteed product bounds above stay symbolic.
  const double rows_a = std::max(1.0, static_cast<double>(a.rows));
  const double rows_b = std::max(1.0, static_cast<double>(b.rows));
  const double cols_b = std::max(1.0, static_cast<double>(b.cols));
  const double avg_a = static_cast<double>(a.nnz()) / rows_a;
  const double p_b = static_cast<double>(b.nnz()) / rows_b / cols_b;
  double survival = 1.0;
  if (p_b > 1e-12 && avg_a > 1.0)
    survival = std::clamp(
        (1.0 - std::pow(1.0 - p_b, avg_a)) / (p_b * avg_a), 0.0, 1.0);

  // Lay `products` out as chunks. Products in B rows at or beyond the
  // long-row threshold are never materialized: each such entry of A costs
  // one fixed pointer-chunk record instead (chunk.hpp, paper §3.4). The
  // sorted sample gives both the diverted product mass and the pointer
  // count without another matrix pass.
  const auto layout_bytes = [&](double products) {
    double diverted = 0.0;
    double pointer_entries = 0.0;
    if (p.long_row_threshold > 0) {
      const auto it = std::lower_bound(s.b_lens.begin(), s.b_lens.end(),
                                       p.long_row_threshold);
      double tail = 0.0;
      for (auto j = it; j != s.b_lens.end(); ++j)
        tail += static_cast<double>(*j);
      const double scale = s.exact ? 1.0 : static_cast<double>(s.stride);
      diverted = std::min(tail * scale, products);
      pointer_entries = static_cast<double>(s.b_lens.end() - it) * scale;
    }
    const double materialized =
        (products - diverted) * survival * (1.0 + p.merge_headroom);
    return saturate_bytes(
        static_cast<double>(chunk_layout_bytes(materialized, p)) +
        pointer_entries * static_cast<double>(p.pointer_chunk_bytes));
  };

  plan.expected_bytes = layout_bytes(e.expected);
  plan.upper_bytes = layout_bytes(e.upper);
  plan.recommended_bytes = std::max(p.lower_bound_bytes, layout_bytes(charged));
  return plan;
}

template RowSample sample_b_row_lengths(const Csr<float>&, const Csr<float>&,
                                        std::size_t, std::size_t);
template RowSample sample_b_row_lengths(const Csr<double>&, const Csr<double>&,
                                        std::size_t, std::size_t);
template ProductEstimate estimate_products(const Csr<float>&,
                                           const Csr<float>&, std::size_t,
                                           std::size_t);
template ProductEstimate estimate_products(const Csr<double>&,
                                           const Csr<double>&, std::size_t,
                                           std::size_t);
template PoolPlan plan_pool_bytes(const Csr<float>&, const Csr<float>&,
                                  const PoolSizingParams&);
template PoolPlan plan_pool_bytes(const Csr<double>&, const Csr<double>&,
                                  const PoolSizingParams&);

}  // namespace acs::estimate
