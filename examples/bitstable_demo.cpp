/// \file bitstable_demo.cpp
/// Demonstrates the paper's bit-stability claim (Table 1's daggers): under
/// changing hardware schedules, hash-based SpGEMM produces different
/// floating-point results on every run, while AC-SpGEMM (and the other
/// merge-based methods) are bit-identical. Schedules are emulated with
/// seeds; on real hardware the variation comes from the block scheduler.
///
/// Run:  ./bitstable_demo [runs]

#include <cmath>
#include <cstdlib>
#include <iostream>

#include "baselines/nsparse_like.hpp"
#include "baselines/rmerge.hpp"
#include "core/acspgemm.hpp"
#include "matrix/generators.hpp"

int main(int argc, char** argv) {
  const int runs = argc > 1 ? std::atoi(argv[1]) : 5;

  // Wide dynamic range makes accumulation-order differences visible.
  auto m = acs::gen_powerlaw<float>(3000, 3000, 8.0, 1.7, 500, 3);
  for (std::size_t i = 0; i < m.values.size(); ++i)
    m.values[i] *= ((i % 6 == 0) ? 1e7f : 1e-7f);

  std::cout << "matrix: " << m.rows << "^2, " << m.nnz() << " nnz\n\n";

  const auto report = [&](const char* name, auto&& run) {
    const auto ref = run(1);
    int identical = 0;
    double worst_ulp_drift = 0.0;
    for (int i = 2; i <= runs; ++i) {
      const auto c = run(i);
      if (c.equals_exact(ref)) {
        ++identical;
      } else {
        for (std::size_t k = 0; k < c.values.size(); ++k) {
          const double d = std::abs(static_cast<double>(c.values[k]) -
                                    static_cast<double>(ref.values[k]));
          const double scale = std::abs(static_cast<double>(ref.values[k]));
          if (scale > 0) worst_ulp_drift = std::max(worst_ulp_drift, d / scale);
        }
      }
    }
    std::cout << name << ": " << identical << "/" << runs - 1
              << " repeat runs bit-identical";
    if (identical < runs - 1)
      std::cout << " (worst relative drift " << worst_ulp_drift << ")";
    std::cout << "\n";
  };

  report("AC-SpGEMM (bit-stable)  ", [&](int) { return acs::multiply(m, m); });
  report("RMerge    (bit-stable)  ",
         [&](int) { return acs::rmerge_multiply(m, m); });
  report("nsparse   (hash, dagger)", [&](int seed) {
    return acs::nsparse_multiply(m, m, nullptr,
                                 static_cast<std::uint64_t>(seed));
  });

  std::cout << "\nHash-based methods accumulate in scheduler order: every\n"
               "run returns a slightly different matrix. Pipelines that\n"
               "diff checkpoints, verify results across machines, or need\n"
               "reproducible debugging require the bit-stable methods.\n";
  return 0;
}
