file(REMOVE_RECURSE
  "CMakeFiles/test_work_distribution.dir/test_work_distribution.cpp.o"
  "CMakeFiles/test_work_distribution.dir/test_work_distribution.cpp.o.d"
  "test_work_distribution"
  "test_work_distribution.pdb"
  "test_work_distribution[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_work_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
