#include "suite/bench_runner.hpp"

#include <gtest/gtest.h>

#include "suite/registry.hpp"

namespace acs {
namespace {

const SuiteEntry& square_entry() { return showcase_suite()[5]; }  // asia_osm

TEST(BenchRunner, FillsAllMeasurementFields) {
  AcSpgemmAlgorithm<double> ac;
  const auto m = run_benchmark<double>(square_entry(), ac);
  EXPECT_EQ(m.matrix, square_entry().name);
  EXPECT_EQ(m.algorithm, "AC-SpGEMM");
  EXPECT_EQ(m.precision, "double");
  EXPECT_GT(m.nnz_a, 0);
  EXPECT_GT(m.nnz_c, 0);
  EXPECT_GT(m.temp_products, 0);
  EXPECT_GT(m.gflops, 0.0);
  EXPECT_GT(m.sim_time_s, 0.0);
  EXPECT_GT(m.avg_row_len_a, 0.0);
}

TEST(BenchRunner, FloatPrecisionLabel) {
  AcSpgemmAlgorithm<float> ac;
  const auto m = run_benchmark<float>(square_entry(), ac);
  EXPECT_EQ(m.precision, "float");
}

TEST(BenchRunner, NonSquareUsesTranspose) {
  const SuiteEntry* rect = nullptr;
  for (const auto& e : showcase_suite())
    if (!e.square) rect = &e;
  ASSERT_NE(rect, nullptr);
  AcSpgemmAlgorithm<double> ac;
  const auto m = run_benchmark<double>(*rect, ac);
  EXPECT_GT(m.nnz_c, 0);  // A·Aᵀ is square and non-empty
}

TEST(BenchRunner, RunsWholeAlgorithmList) {
  const auto algos = make_paper_algorithms<double>();
  const auto results = run_benchmarks<double>(square_entry(), algos);
  ASSERT_EQ(results.size(), algos.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].algorithm, algos[i]->name());
    EXPECT_EQ(results[i].nnz_c, results[0].nnz_c) << results[i].algorithm;
  }
}

TEST(BenchRunner, HarmonicMean) {
  EXPECT_DOUBLE_EQ(harmonic_mean({1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(harmonic_mean({2.0, 2.0}), 2.0);
  EXPECT_NEAR(harmonic_mean({1.0, 2.0}), 4.0 / 3.0, 1e-12);
  EXPECT_EQ(harmonic_mean({}), 0.0);
}

}  // namespace
}  // namespace acs
