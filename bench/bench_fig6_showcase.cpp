/// \file bench_fig6_showcase.cpp
/// Reproduces Figure 6: double-precision performance of all six methods on
/// the commonly benchmarked showcase matrices, including the cases the
/// paper highlights as difficult for AC-SpGEMM (cant/hood/TSC_OPF-like:
/// large compaction factors favouring nsparse's hashing).

#include <iostream>

#include "suite/bench_runner.hpp"
#include "suite/registry.hpp"
#include "suite/table.hpp"

int main() {
  using namespace acs;
  const auto algos = make_paper_algorithms<double>();

  std::cout << "Figure 6: double-precision simulated GFLOPS on the showcase "
               "set\n\n";

  std::vector<std::string> header{"matrix"};
  for (const auto& a : algos) header.push_back(a->name());
  header.push_back("winner");
  TextTable table(header);
  CsvWriter csv("fig6_showcase.csv");
  csv.write_row(header);

  for (const auto& entry : showcase_suite()) {
    const auto results = run_benchmarks<double>(entry, algos);
    std::vector<std::string> row{entry.name};
    std::size_t best = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      row.push_back(TextTable::num(results[i].gflops, 2));
      if (results[i].gflops > results[best].gflops) best = i;
    }
    row.push_back(results[best].algorithm);
    table.add_row(row);
    csv.write_row(row);
  }
  std::cout << table.str();
  std::cout << "\nwrote fig6_showcase.csv\n";
  return 0;
}
