file(REMOVE_RECURSE
  "CMakeFiles/test_stats_extras.dir/test_stats_extras.cpp.o"
  "CMakeFiles/test_stats_extras.dir/test_stats_extras.cpp.o.d"
  "test_stats_extras"
  "test_stats_extras.pdb"
  "test_stats_extras[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_extras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
