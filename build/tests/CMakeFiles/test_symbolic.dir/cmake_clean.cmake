file(REMOVE_RECURSE
  "CMakeFiles/test_symbolic.dir/test_symbolic.cpp.o"
  "CMakeFiles/test_symbolic.dir/test_symbolic.cpp.o.d"
  "test_symbolic"
  "test_symbolic.pdb"
  "test_symbolic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_symbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
