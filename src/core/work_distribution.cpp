#include "core/work_distribution.hpp"

#include <algorithm>
#include <cassert>

namespace acs {

WorkDistribution::WorkDistribution(std::span<const offset_t> counts,
                                   sim::MetricCounters& m) {
  state_.resize(counts.size() + 1);
  state_[0] = 0;
  for (std::size_t i = 0; i < counts.size(); ++i)
    state_[i + 1] = state_[i] + counts[i];
  m.scan_elements += counts.size();
  m.scratch_ops += counts.size();
}

void WorkDistribution::receive(offset_t consume, std::vector<Item>& out,
                               sim::MetricCounters& m) {
  assert(consume <= size());
  // Two-pointer sweep replacing the GPU's marker-scatter + max-scan
  // (Algorithm 2 lines 16-29): output slot c belongs to the A entry whose
  // state range contains c; the B offset counts down from the remaining end.
  std::size_t a = 0;
  for (offset_t c = 0; c < consume; ++c) {
    while (state_[a + 1] <= c) ++a;
    out.push_back({static_cast<index_t>(a),
                   static_cast<index_t>(state_[a + 1] - c - 1)});
  }
  // Charge the GPU-side cost of the assignment: marker scatter, max scan and
  // the blocked->striped exchange all touch `consume` slots.
  m.scan_elements += static_cast<std::uint64_t>(consume);
  m.scratch_ops += 3 * static_cast<std::uint64_t>(consume);
  reduce(consume, m);
}

void WorkDistribution::fast_forward(offset_t count, sim::MetricCounters& m) {
  assert(count <= size());
  reduce(count, m);
}

void WorkDistribution::reduce(offset_t consume, sim::MetricCounters& m) {
  for (auto& s : state_) s = std::max<offset_t>(0, s - consume);
  m.scratch_ops += state_.size();
  consumed_ += consume;
}

}  // namespace acs
