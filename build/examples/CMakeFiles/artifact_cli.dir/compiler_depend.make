# Empty compiler generated dependencies file for artifact_cli.
# This may be replaced when dependencies are built.
