file(REMOVE_RECURSE
  "CMakeFiles/bench_hybrid_extension.dir/bench_hybrid_extension.cpp.o"
  "CMakeFiles/bench_hybrid_extension.dir/bench_hybrid_extension.cpp.o.d"
  "bench_hybrid_extension"
  "bench_hybrid_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hybrid_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
