# Empty dependencies file for test_chunk.
# This may be replaced when dependencies are built.
