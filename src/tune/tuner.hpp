#pragma once
/// \file tuner.hpp
/// Cost-model-driven auto-tuner for per-multiply parameters. Given the
/// structural features of a job (features.hpp) it enumerates a candidate
/// grid over `nnz_per_block`, the retained-element budget, the long-row
/// threshold and the Path/Search merge cutoff, rejects candidates that
/// would overflow the scratchpad (the same feasibility check
/// Pipeline::validate enforces at run time), prices the survivors through
/// the predictor (predictor.hpp → sim::cost_model) and returns the
/// cheapest as a `TunedParams` overlay for `SpgemmPlan::tuned`.
///
/// Determinism: ranking is a pure function of (features, base config,
/// value width) — no clocks, no RNG, no measured times — and ties break on
/// the candidate's parameter tuple, so every run, worker and scheduler
/// interleaving picks the same winner. The feedback mode only swaps the
/// *product-count input* from a sampled estimate to the exact measured
/// `SpgemmStats::intermediate_products`, which is itself structural, so
/// refined choices are equally deterministic (DESIGN.md §9).

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <vector>

#include "arch/arch_id.hpp"
#include "core/config.hpp"
#include "core/plan.hpp"
#include "tune/features.hpp"
#include "tune/predictor.hpp"

namespace acs::tune {

/// How the runtime engine tunes per-job parameters (EngineConfig::tuning).
enum class TuningMode {
  /// No tuning: every job runs the submitted Config verbatim.
  kOff = 0,
  /// Rank candidates once per structure fingerprint from sampled features;
  /// the choice is cached on the plan and replayed on every hit.
  kStaticCostModel,
  /// Like kStaticCostModel, plus one re-ranking per fingerprint after the
  /// first run replaces the sampled product estimate with the exact
  /// measured count.
  kFeedback,
};

[[nodiscard]] const char* to_string(TuningMode mode);

/// What the tuner minimizes. The two differ whenever a decomposition trades
/// per-block overhead against device occupancy: small matrices fill the
/// SMs better with many small blocks (lower makespan) but burn more total
/// block time doing it (more work).
enum class TuneObjective {
  /// Minimize total work (`CostBreakdown::serial_s`). The right objective
  /// for the batch engine, whose jobs/s is bounded by the work its workers
  /// chew through — independent jobs already keep every slot busy, so one
  /// job's internal parallelism buys nothing.
  kThroughput = 0,
  /// Minimize single-multiply device makespan (`CostBreakdown::total_s`) —
  /// the paper's setting: one SpGEMM at a time on an idle device.
  kLatency,
};

/// Default candidate grids, exposed as constexpr arrays so that
/// tune/invariants.hpp can prove feasibility properties of every default
/// tuple at compile time (TunerOptions below seeds its vectors from them).
inline constexpr int kDefaultNnzPerBlockGrid[] = {128, 256, 512, 1024};
inline constexpr int kDefaultRetainGrid[] = {2, 4, 6};
inline constexpr int kDefaultPathMergeGrid[] = {4, 8, 16};

/// SimBigDevice candidate grid for nnz_per_block: its 96 KiB scratchpad
/// admits block shapes the 48 KiB default device prunes (1024 and 2048
/// with double values — tune/invariants.hpp proves both bounds), so the
/// grid extends upward. Selected through `default_tuner_options`.
inline constexpr int kBigDeviceNnzPerBlockGrid[] = {128, 256, 512, 1024,
                                                    2048};

/// Candidate grids and sampling parameters of the tuner. Grids hold the
/// values tried for each knob; the base Config's own value is always added,
/// so tuning can never do worse than the default *under the model*.
struct TunerOptions {
  TuneObjective objective = TuneObjective::kThroughput;
  std::vector<int> nnz_per_block{std::begin(kDefaultNnzPerBlockGrid),
                                 std::end(kDefaultNnzPerBlockGrid)};
  std::vector<int> retain_per_thread{std::begin(kDefaultRetainGrid),
                                     std::end(kDefaultRetainGrid)};
  std::vector<int> path_merge_max_chunks{std::begin(kDefaultPathMergeGrid),
                                         std::end(kDefaultPathMergeGrid)};
  /// Also try long-row thresholds derived from B's row-length quantiles
  /// (p90, p99) next to the base setting and "auto".
  bool tune_long_row_threshold = true;
  /// Feature-extraction sampling (see extract_features).
  std::size_t sample_stride = 8;
  std::size_t min_samples = 512;
};

/// The tuner options an architecture tunes under by default: the stock
/// grids everywhere, except that SimBigDevice swaps in
/// `kBigDeviceNnzPerBlockGrid` to exploit its larger scratchpad. The
/// runtime engine seeds its tuner from this (EngineConfig::arch), and
/// because `options_hash` covers the grids, plans tuned under one arch's
/// grid never replay from the persistent cache under another's.
[[nodiscard]] TunerOptions default_tuner_options(arch::ArchId arch);

/// One priced candidate: the parameter overlay plus its predicted profile.
struct Candidate {
  TunedParams params;
  CostBreakdown cost;
};

/// True when `cfg` passes the device-feasibility constraints that
/// Pipeline::validate would enforce: positive block geometry, retain <
/// elements_per_thread, 15-bit compaction counters, and the ESC working
/// set (keys + values + work-distribution offsets + states) fitting the
/// scratchpad. `value_bytes` = sizeof of the value type. Constexpr so that
/// tune/invariants.hpp can certify the default grid at compile time — e.g.
/// that double-width values with nnz_per_block=1024 exceed 48 KiB and the
/// tuner must prune that tuple.
[[nodiscard]] constexpr bool fits_device(const Config& cfg,
                                         std::size_t value_bytes) {
  if (cfg.threads <= 0 || cfg.nnz_per_block <= 0 ||
      cfg.elements_per_thread <= 0)
    return false;
  if (cfg.retain_per_thread < 0 ||
      cfg.retain_per_thread >= cfg.elements_per_thread)
    return false;
  if (cfg.temp_capacity() > 32767) return false;  // 15-bit compaction counters
  // Mirror Pipeline::validate's scratchpad layout (same order, same
  // alignment padding as sim::Scratchpad::allocate).
  const auto cap = static_cast<std::size_t>(cfg.temp_capacity());
  std::size_t used = 0;
  const auto alloc = [&](std::size_t count, std::size_t size,
                         std::size_t align) {
    used = (used + align - 1) / align * align + count * size;
  };
  alloc(cap, sizeof(std::uint64_t), alignof(std::uint64_t));  // sort keys
  alloc(cap, value_bytes, value_bytes);                       // sort values
  alloc(static_cast<std::size_t>(cfg.nnz_per_block) + 1, sizeof(offset_t),
        alignof(offset_t));                                   // WD offsets
  alloc(cap, sizeof(std::uint32_t), alignof(std::uint32_t));  // scan states
  return used <= static_cast<std::size_t>(cfg.device.scratchpad_bytes);
}

class AutoTuner {
 public:
  explicit AutoTuner(TunerOptions opts = {}) : opts_(std::move(opts)) {}

  [[nodiscard]] const TunerOptions& options() const { return opts_; }

  /// Price every feasible candidate for a job with features `f` under the
  /// base configuration, cheapest first (ties broken on the parameter
  /// tuple). `products_override` > 0 substitutes an exact measured product
  /// count for `f.est_products` (the feedback path). Never empty as long
  /// as the base configuration itself is feasible.
  [[nodiscard]] std::vector<Candidate> rank(
      const TuneFeatures& f, const Config& base, std::size_t value_bytes,
      double products_override = 0.0) const;

  /// The winning overlay (`rank(...)[0].params`), or an invalid
  /// TunedParams when no candidate fits the device.
  [[nodiscard]] TunedParams choose(const TuneFeatures& f, const Config& base,
                                   std::size_t value_bytes,
                                   double products_override = 0.0) const;

  /// Budgeted predictor-only ranking — the cold-tuning path. Enumerates the
  /// same candidate grid as `rank`, prunes by `fits_device`, but prices
  /// survivors through the closed-form predictor alone (no
  /// `sim::schedule_blocks` simulated execution — `CostBreakdown::total_s`
  /// comes back 0) and ranks them by `serial_s` with the same tie-break.
  /// `max_candidates` caps how many feasible candidates are priced, taken in
  /// deterministic grid-enumeration order; 0 = price them all. With an
  /// unlimited budget and the kThroughput objective this picks exactly the
  /// plan full `rank` would (both sort by `serial_s`, which the makespan
  /// skip leaves bit-identical); under kLatency it approximates, trading
  /// model fidelity for microsecond cold tunes — the background re-tune
  /// (runtime/engine.hpp) restores the configured objective afterwards.
  [[nodiscard]] std::vector<Candidate> rank_budgeted(
      const TuneFeatures& f, const Config& base, std::size_t value_bytes,
      std::size_t max_candidates, double products_override = 0.0) const;

  /// The budgeted winner (`rank_budgeted(...)[0].params`), or an invalid
  /// TunedParams when no candidate fits the device.
  [[nodiscard]] TunedParams choose_budgeted(
      const TuneFeatures& f, const Config& base, std::size_t value_bytes,
      std::size_t max_candidates, double products_override = 0.0) const;

 private:
  TunerOptions opts_;
};

/// Deterministic FNV-1a digest of everything a tuning decision depends on
/// besides the job itself: the candidate grids, objective, threshold
/// tuning flag, feature-sampling parameters and the predictor calibration
/// version. The persistent tune cache (runtime/tune_persist.hpp) stamps
/// files with it, so plans tuned under a different grid, objective or
/// calibration load as a clean cold miss rather than being replayed stale.
[[nodiscard]] std::uint64_t options_hash(const TunerOptions& opts);

}  // namespace acs::tune
