/// \file artifact_cli.cpp
/// Reproduction of the paper artifact's command-line workflow (Appendix A):
/// "Single Matrix" mode — parse a Matrix Market file (caching a binary
/// version for consecutive runs, like the artifact's .hicoo files), compute
/// C = A·A (or A·Aᵀ for non-square A), time the multiplication over several
/// iterations, optionally verify against a host (CPU) implementation, and
/// append the matrix statistics and timings to a .csv. The artifact's
/// "Complete testrun" mode is a shell loop over this binary, exactly as its
/// runall script worked.
///
/// Usage: artifact_cli <matrix.mtx> [--iterations N] [--verify]
///                     [--csv results.csv] [--algo AC|nsparse|...]

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "baselines/spa_gustavson.hpp"
#include "matrix/binary_io.hpp"
#include "matrix/mmio.hpp"
#include "matrix/stats.hpp"
#include "matrix/transpose.hpp"
#include "suite/registry.hpp"
#include "suite/table.hpp"

namespace {

acs::Csr<double> load_with_cache(const std::string& path) {
  const std::string cache = path + ".acsb";
  if (std::filesystem::exists(cache)) {
    std::cout << "loading cached binary " << cache << "\n";
    return acs::read_binary_file<double>(cache);
  }
  std::cout << "parsing " << path << " (caching to " << cache << ")\n";
  auto m = acs::read_matrix_market_file<double>(path);
  acs::write_binary_file(cache, m);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: " << argv[0]
              << " <matrix.mtx> [--iterations N] [--verify] [--csv out.csv]"
                 " [--algo NAME]\n";
    return 2;
  }
  const std::string path = argv[1];
  int iterations = 5;
  bool verify = false;
  std::string csv_path;
  std::string algo_name = "AC-SpGEMM";
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--iterations" && i + 1 < argc) iterations = std::atoi(argv[++i]);
    else if (arg == "--verify") verify = true;
    else if (arg == "--csv" && i + 1 < argc) csv_path = argv[++i];
    else if (arg == "--algo" && i + 1 < argc) algo_name = argv[++i];
    else {
      std::cerr << "unknown argument " << arg << "\n";
      return 2;
    }
  }

  acs::Csr<double> a;
  try {
    a = load_with_cache(path);
  } catch (const std::exception& e) {
    std::cerr << "failed to load matrix: " << e.what() << "\n";
    return 1;
  }
  const bool square = a.rows == a.cols;
  const acs::Csr<double> b = square ? a : acs::transpose(a);
  const auto sa = acs::row_stats(a);
  std::cout << "A: " << a.rows << " x " << a.cols << ", " << a.nnz()
            << " nnz, avg row " << sa.avg_len << ", max " << sa.max_len
            << (square ? "  (computing A*A)" : "  (computing A*A^T)") << "\n";

  const auto algos = acs::make_paper_algorithms<double>();
  const acs::SpgemmAlgorithm<double>* algo = nullptr;
  for (const auto& candidate : algos)
    if (candidate->name() == algo_name) algo = candidate.get();
  if (!algo) {
    std::cerr << "unknown algorithm '" << algo_name << "'; options:";
    for (const auto& candidate : algos) std::cerr << " " << candidate->name();
    std::cerr << "\n";
    return 2;
  }

  acs::SpgemmStats stats;
  acs::Csr<double> c;
  double best_time = 0.0;
  for (int it = 0; it < iterations; ++it) {
    c = algo->multiply(a, b, &stats);
    best_time = it == 0 ? stats.sim_time_s : std::min(best_time, stats.sim_time_s);
  }
  const auto sc = acs::row_stats(c);
  std::cout << "C: " << c.nnz() << " nnz, avg row " << sc.avg_len
            << "; temporary products " << stats.intermediate_products << "\n";
  std::cout << algo->name() << ": " << best_time * 1e3 << " ms simulated ("
            << stats.gflops() << " GFLOPS), " << stats.restarts
            << " restarts, bit-stable: " << (algo->bit_stable() ? "yes" : "no")
            << "\n";

  if (verify) {
    const auto ref = acs::spa_multiply(a, b);
    if (c.row_ptr != ref.row_ptr || c.col_idx != ref.col_idx) {
      std::cerr << "VERIFY FAILED: structure mismatch vs CPU\n";
      return 1;
    }
    if (!c.almost_equals(ref, 1e-8)) {
      std::cerr << "VERIFY FAILED: values diverge beyond tolerance\n";
      return 1;
    }
    std::cout << "verification against CPU: OK\n";
  }

  if (!csv_path.empty()) {
    const bool fresh = !std::filesystem::exists(csv_path);
    std::ofstream out(csv_path, std::ios::app);
    if (fresh)
      out << "matrix,rows,cols,nnz_a,avg_a,max_a,nnz_c,temp,algo,sim_ms,"
             "gflops,restarts\n";
    out << std::filesystem::path(path).filename().string() << "," << a.rows
        << "," << a.cols << "," << a.nnz() << "," << sa.avg_len << ","
        << sa.max_len << "," << c.nnz() << "," << stats.intermediate_products
        << "," << algo->name() << "," << best_time * 1e3 << ","
        << stats.gflops() << "," << stats.restarts << "\n";
    std::cout << "appended to " << csv_path << "\n";
  }
  return 0;
}
