/// \file amg_galerkin.cpp
/// Algebraic-multigrid coarsening — the paper's first motivating SpGEMM
/// application ("algebraic multigrid solvers [5]") — run through the
/// batched execution engine (src/runtime). Builds a 2D Poisson problem,
/// constructs an aggregation-based prolongation P per level, and forms the
/// Galerkin coarse operator A_c = Pᵀ (A P) with two engine-submitted
/// SpGEMMs per level. The setup is repeated `passes` times, the way a
/// time-dependent or parameter-sweep solver rebuilds its hierarchy: every
/// pass after the first multiplies matrices with identical sparsity
/// structure, so the engine's plan cache serves every product from a warm
/// plan — the example prints the hit rate alongside the hierarchy and the
/// operator complexity AMG practitioners watch.
///
/// Run:  ./amg_galerkin [grid_n] [levels] [setup_passes]

#include <cstdlib>
#include <iostream>
#include <utility>
#include <vector>

#include "matrix/coo.hpp"
#include "matrix/generators.hpp"
#include "matrix/transpose.hpp"
#include "runtime/engine.hpp"

namespace {

/// Unsmoothed aggregation prolongation: group every `aggregate` consecutive
/// unknowns into one coarse unknown (pairwise aggregation along the grid
/// ordering — simple but exactly the SpGEMM workload AMG setup produces).
acs::Csr<double> aggregation_prolongation(acs::index_t fine, acs::index_t aggregate) {
  const acs::index_t coarse = acs::divup(fine, aggregate);
  acs::Coo<double> p;
  p.rows = fine;
  p.cols = coarse;
  for (acs::index_t i = 0; i < fine; ++i) p.push(i, i / aggregate, 1.0);
  return p.to_csr();
}

}  // namespace

int main(int argc, char** argv) {
  const acs::index_t n = argc > 1 ? std::atoi(argv[1]) : 128;
  const int levels = argc > 2 ? std::atoi(argv[2]) : 4;
  const int passes = argc > 3 ? std::atoi(argv[3]) : 2;

  acs::runtime::EngineConfig ecfg;
  ecfg.workers = 2;
  acs::runtime::Engine<double> engine(ecfg);

  std::cout << "AMG hierarchy for " << n << "x" << n << " Poisson problem ("
            << passes << " setup passes through the engine)\n";

  double fine_nnz = 1.0;
  double total_nnz = 0.0;
  double spgemm_time = 0.0;
  acs::Csr<double> coarsest;

  for (int pass = 0; pass < passes; ++pass) {
    auto a = acs::gen_stencil_2d<double>(n, n, 7);
    if (pass == 0) {
      fine_nnz = static_cast<double>(a.nnz());
      total_nnz = fine_nnz;
      std::cout << "level 0: " << a.rows << " unknowns, " << a.nnz()
                << " non-zeros\n";
    }

    for (int level = 1; level <= levels && a.rows > 16; ++level) {
      const auto p = aggregation_prolongation(a.rows, 4);
      const auto r = acs::transpose(p);

      // Galerkin triple product via two SpGEMMs: A_c = R * (A * P).
      auto h_ap = engine.submit(a, p);
      auto& ap = h_ap.result();
      spgemm_time += ap.stats.sim_time_s;
      auto h_c = engine.submit(r, ap.c);
      a = h_c.result().c;
      spgemm_time += h_c.result().stats.sim_time_s;

      if (pass == 0) {
        total_nnz += static_cast<double>(a.nnz());
        std::cout << "level " << level << ": " << a.rows << " unknowns, "
                  << a.nnz() << " non-zeros (galerkin product via SpGEMM)\n";
      }
    }
    coarsest = std::move(a);
  }

  std::cout << "operator complexity: " << total_nnz / fine_nnz
            << " (sum of all levels' nnz / fine nnz)\n";
  std::cout << "simulated SpGEMM time over all passes: " << spgemm_time * 1e3
            << " ms\n";

  const auto plans = engine.plan_counters();
  const auto arena = engine.arena_counters();
  std::cout << "plan-cache hit rate: " << 100.0 * plans.hit_rate() << "% ("
            << plans.hits << " hits / " << plans.hits + plans.misses
            << " products; passes after the first reuse every plan)\n";
  std::cout << "pool capacity recycled across jobs: " << arena.reused_bytes
            << " bytes (" << arena.fresh_bytes << " freshly allocated)\n";

  // Sanity: the coarsest operator must still be a valid CSR matrix.
  if (const auto err = coarsest.validate(); !err.empty()) {
    std::cerr << "invalid coarse operator: " << err << "\n";
    return 1;
  }
  std::cout << "hierarchy valid.\n";
  return 0;
}
