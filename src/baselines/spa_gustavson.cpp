#include "baselines/spa_gustavson.hpp"

#include <algorithm>
#include <chrono>

#include "matrix/stats.hpp"

namespace acs {

template <class T>
Csr<T> spa_multiply(const Csr<T>& a, const Csr<T>& b, SpgemmStats* stats) {
  if (a.cols != b.rows)
    throw std::invalid_argument("spa: dimension mismatch (A.cols != B.rows)");
  const auto t0 = std::chrono::steady_clock::now();

  Csr<T> c;
  c.rows = a.rows;
  c.cols = b.cols;
  c.row_ptr.assign(static_cast<std::size_t>(a.rows) + 1, 0);

  // Symbolic pass: count distinct columns per output row with a marker SPA.
  std::vector<index_t> marker(static_cast<std::size_t>(b.cols), -1);
  offset_t total = 0;
  for (index_t r = 0; r < a.rows; ++r) {
    index_t count = 0;
    for (index_t ka = a.row_ptr[usize(r)]; ka < a.row_ptr[usize(r) + 1];
         ++ka) {
      const index_t k = a.col_idx[usize(ka)];
      for (index_t kb = b.row_ptr[usize(k)]; kb < b.row_ptr[usize(k) + 1];
           ++kb) {
        const index_t col = b.col_idx[usize(kb)];
        if (marker[usize(col)] != r) {
          marker[usize(col)] = r;
          ++count;
        }
      }
    }
    total += count;
    c.row_ptr[static_cast<std::size_t>(r) + 1] = static_cast<index_t>(total);
  }

  c.col_idx.resize(static_cast<std::size_t>(total));
  c.values.resize(static_cast<std::size_t>(total));

  // Numeric pass: dense accumulator, entries emitted in first-touch order,
  // then sorted per row. Accumulation order is A-row order — deterministic,
  // but a *different* deterministic order than AC-SpGEMM's, so comparisons
  // between the two use a tolerance (or exactly representable values).
  std::vector<T> accum(static_cast<std::size_t>(b.cols), T{});
  std::fill(marker.begin(), marker.end(), -1);
  std::vector<index_t> touched;
  for (index_t r = 0; r < a.rows; ++r) {
    touched.clear();
    for (index_t ka = a.row_ptr[usize(r)]; ka < a.row_ptr[usize(r) + 1];
         ++ka) {
      const index_t k = a.col_idx[usize(ka)];
      const T av = a.values[usize(ka)];
      for (index_t kb = b.row_ptr[usize(k)]; kb < b.row_ptr[usize(k) + 1];
           ++kb) {
        const index_t col = b.col_idx[usize(kb)];
        if (marker[usize(col)] != r) {
          marker[usize(col)] = r;
          accum[usize(col)] = av * b.values[usize(kb)];
          touched.push_back(col);
        } else {
          accum[usize(col)] += av * b.values[usize(kb)];
        }
      }
    }
    std::sort(touched.begin(), touched.end());
    index_t out = c.row_ptr[usize(r)];
    for (index_t col : touched) {
      c.col_idx[usize(out)] = col;
      c.values[usize(out)] = accum[usize(col)];
      ++out;
    }
  }

  if (stats) {
    *stats = SpgemmStats{};
    stats->intermediate_products = intermediate_products(a, b);
    stats->wall_time_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    stats->sim_time_s = stats->wall_time_s;  // CPU reference: measured time
  }
  return c;
}

template Csr<float> spa_multiply(const Csr<float>&, const Csr<float>&,
                                 SpgemmStats*);
template Csr<double> spa_multiply(const Csr<double>&, const Csr<double>&,
                                  SpgemmStats*);
template class SpaGustavson<float>;
template class SpaGustavson<double>;

}  // namespace acs
