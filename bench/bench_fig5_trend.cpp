/// \file bench_fig5_trend.cpp
/// Reproduces Figure 5: SpGEMM performance (GFLOPS) of all six methods over
/// highly sparse matrices (avg row length <= 42), as a trend over the
/// number of temporary products, for float and double. The paper's shape:
/// AC-SpGEMM leads across the trend for this regime.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <map>

#include "suite/bench_runner.hpp"
#include "suite/registry.hpp"
#include "suite/table.hpp"

namespace {

template <class T>
void run_precision(const char* label) {
  using namespace acs;
  const auto algos = make_paper_algorithms<T>();

  // Collect per-matrix GFLOPS for the highly sparse subset.
  struct Point {
    offset_t temp;
    std::vector<double> gflops;  // per algorithm
  };
  std::vector<Point> points;
  for (const auto& entry : full_suite()) {
    if (!is_highly_sparse(entry)) continue;
    const auto results = run_benchmarks<T>(entry, algos);
    Point p;
    p.temp = results.front().temp_products;
    for (const auto& r : results) p.gflops.push_back(r.gflops);
    points.push_back(std::move(p));
  }
  std::sort(points.begin(), points.end(),
            [](const Point& x, const Point& y) { return x.temp < y.temp; });

  // Bin along the temporary-product axis (log-spaced like the paper's
  // x-axis) and report geometric means per bin.
  TextTable table([&] {
    std::vector<std::string> h{"temp bin"};
    for (const auto& a : algos) h.push_back(a->name());
    return h;
  }());
  CsvWriter csv(std::string("fig5_trend_") + label + ".csv");
  {
    std::vector<std::string> h{"temp_bin"};
    for (const auto& a : algos) h.push_back(a->name());
    csv.write_row(h);
  }

  const std::size_t bins = 6;
  const std::size_t per_bin = (points.size() + bins - 1) / bins;
  for (std::size_t b = 0; b * per_bin < points.size(); ++b) {
    const std::size_t begin = b * per_bin;
    const std::size_t end = std::min(points.size(), begin + per_bin);
    std::vector<std::string> row{
        TextTable::si(static_cast<double>(points[begin].temp)) + ".." +
        TextTable::si(static_cast<double>(points[end - 1].temp))};
    std::vector<std::string> csv_row = row;
    for (std::size_t alg = 0; alg < algos.size(); ++alg) {
      double log_sum = 0.0;
      for (std::size_t i = begin; i < end; ++i)
        log_sum += std::log(std::max(points[i].gflops[alg], 1e-6));
      const double gmean =
          std::exp(log_sum / static_cast<double>(end - begin));
      row.push_back(TextTable::num(gmean, 2));
      csv_row.push_back(TextTable::num(gmean, 4));
    }
    table.add_row(row);
    csv.write_row(csv_row);
  }

  std::cout << "Figure 5 (" << label
            << "): geometric-mean simulated GFLOPS per temporary-product "
               "bin, highly sparse matrices (a <= 42)\n\n"
            << table.str() << "\n";
}

}  // namespace

int main() {
  run_precision<float>("float");
  run_precision<double>("double");
  std::cout << "wrote fig5_trend_float.csv / fig5_trend_double.csv\n";
  return 0;
}
