# Empty compiler generated dependencies file for acs_matrix.
# This may be replaced when dependencies are built.
