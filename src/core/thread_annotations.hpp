#pragma once
/// \file thread_annotations.hpp
/// Compile-time concurrency contracts (DESIGN.md §14). Two pieces:
///
///   1. `ACS_*` capability-annotation macros wrapping Clang's thread-safety
///      attributes (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).
///      Under Clang with the attributes available they expand to the real
///      `__attribute__((...))` forms and `-Wthread-safety` turns the locking
///      discipline into a per-build proof; on every other compiler they
///      expand to nothing, so GCC builds are unaffected.
///
///   2. `acs::Mutex` / `acs::MutexLock` / `acs::CondVar`: thin annotated
///      wrappers over `std::mutex` / `std::unique_lock` /
///      `std::condition_variable`. The std types carry no annotations, so
///      guarded state can only be proved against a capability-bearing type;
///      these wrappers are the project's only sanctioned lock spelling
///      (enforced by the `raii-locks-only` lint rule — no naked
///      `.lock()`/`.unlock()` outside this file).
///
/// Conventions the analysis (and the `lock-order` lint rule) relies on:
///   * every mutex member is an `acs::Mutex` and at least one member is
///     declared `ACS_GUARDED_BY` it (`mutex-annotated` lint rule);
///   * condition waits are explicit predicate loops in the annotated caller
///     (`while (!pred) cv.wait(lock);`) — a predicate lambda would be
///     analyzed as a separate function with an empty capability set and
///     false-positive on every guarded read;
///   * functions called with a lock held are annotated `ACS_REQUIRES`,
///     functions that take a lock the caller must not hold `ACS_EXCLUDES`;
///   * the acquires-while-holding order over all mutexes is ranked in
///     tools/lint/lock_order.toml and checked acyclic by the linter.

#include <chrono>
#include <condition_variable>
#include <mutex>

// clang-format off
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability) && __has_attribute(guarded_by) && \
    __has_attribute(acquire_capability)
#define ACS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef ACS_THREAD_ANNOTATION
#define ACS_THREAD_ANNOTATION(x)  // no-op off Clang
#endif
// clang-format on

/// Type is a capability (a lock); instances can be held/acquired/released.
#define ACS_CAPABILITY(x) ACS_THREAD_ANNOTATION(capability(x))
/// RAII type that acquires a capability in its constructor and releases it
/// in its destructor.
#define ACS_SCOPED_CAPABILITY ACS_THREAD_ANNOTATION(scoped_lockable)
/// Data member readable/writable only while holding the named capability.
#define ACS_GUARDED_BY(x) ACS_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose *pointee* is guarded by the named capability.
#define ACS_PT_GUARDED_BY(x) ACS_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function requires the capability held on entry (and does not release it).
#define ACS_REQUIRES(...) ACS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function must NOT be called with the capability held (it acquires it).
#define ACS_EXCLUDES(...) ACS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function acquires the capability (held on return, not on entry).
#define ACS_ACQUIRE(...) ACS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the capability (held on entry, not on return).
#define ACS_RELEASE(...) ACS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns the given value.
#define ACS_TRY_ACQUIRE(...) \
  ACS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Assert (at runtime, to the analysis) that the capability is held.
#define ACS_ASSERT_CAPABILITY(x) ACS_THREAD_ANNOTATION(assert_capability(x))
/// Function returns a reference to the named capability.
#define ACS_RETURN_CAPABILITY(x) ACS_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch: function body is excluded from the analysis. Every use
/// must carry a `// lint: allow(...)` justification.
#define ACS_NO_THREAD_SAFETY_ANALYSIS \
  ACS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace acs {

class CondVar;

/// Annotated standard mutex. Prefer `MutexLock` over calling
/// `lock()`/`unlock()` directly (the `raii-locks-only` rule bans naked
/// lock calls outside this header).
class ACS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACS_ACQUIRE() { m_.lock(); }
  void unlock() ACS_RELEASE() { m_.unlock(); }
  bool try_lock() ACS_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex m_;
};

/// RAII scoped lock over an `acs::Mutex`; the only sanctioned way to hold
/// one. Also the handle `CondVar::wait` parks on.
class ACS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACS_ACQUIRE(mu) : lock_(mu.m_) {}
  ~MutexLock() ACS_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable for `acs::Mutex`. Waits atomically release the lock
/// and re-acquire it before returning, so from the analysis' point of view
/// the capability is held across the call — which is exactly the guarantee
/// guarded reads in the caller's predicate loop need. Always wait in a
/// predicate loop:
/// \code
///   acs::MutexLock lock(m_);
///   while (!done_) cv_.wait(lock);
/// \endcode
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Park until notified (spurious wakeups possible — loop on the
  /// predicate). `lock` must hold the mutex guarding the predicate state.
  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// Park until notified or `rel_time` elapsed (predicate loops that also
  /// poll a deadline, e.g. the background tuner's deferral window).
  template <class Rep, class Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& rel_time) {
    return cv_.wait_for(lock.lock_, rel_time);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace acs
