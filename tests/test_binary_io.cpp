#include "matrix/binary_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "matrix/generators.hpp"

namespace acs {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

TEST(BinaryIo, RoundTripDouble) {
  const auto m = gen_uniform_random<double>(100, 80, 6.0, 2.0, 11);
  const auto path = temp_path("acs_bin_d.acsb");
  write_binary_file(path, m);
  const auto back = read_binary_file<double>(path);
  EXPECT_TRUE(m.equals_exact(back));
  std::remove(path.c_str());
}

TEST(BinaryIo, RoundTripFloat) {
  const auto m = gen_powerlaw<float>(60, 60, 3.0, 1.6, 30, 5);
  const auto path = temp_path("acs_bin_f.acsb");
  write_binary_file(path, m);
  const auto back = read_binary_file<float>(path);
  EXPECT_TRUE(m.equals_exact(back));
  std::remove(path.c_str());
}

TEST(BinaryIo, ValueWidthMismatchThrows) {
  const auto m = gen_banded<float>(10, 1, 1);
  const auto path = temp_path("acs_bin_w.acsb");
  write_binary_file(path, m);
  EXPECT_THROW(read_binary_file<double>(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(BinaryIo, BadMagicThrows) {
  const auto path = temp_path("acs_bin_m.acsb");
  std::ofstream(path) << "not a binary matrix file at all";
  EXPECT_THROW(read_binary_file<double>(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(BinaryIo, TruncatedFileThrows) {
  const auto m = gen_banded<double>(50, 3, 2);
  const auto path = temp_path("acs_bin_t.acsb");
  write_binary_file(path, m);
  // Truncate to half size.
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)), {});
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
  out.close();
  EXPECT_THROW(read_binary_file<double>(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(BinaryIo, VersionMismatchThrows) {
  const auto m = gen_banded<double>(8, 1, 4);
  const auto path = temp_path("acs_bin_v.acsb");
  write_binary_file(path, m);
  // Corrupt the version word (bytes 4..7).
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(4);
  const std::uint32_t bad = 999;
  f.write(reinterpret_cast<const char*>(&bad), 4);
  f.close();
  EXPECT_THROW(read_binary_file<double>(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(BinaryIo, EmptyMatrixRoundTrip) {
  Csr<double> m;
  m.rows = 7;
  m.cols = 3;
  m.row_ptr.assign(8, 0);
  const auto path = temp_path("acs_bin_e.acsb");
  write_binary_file(path, m);
  const auto back = read_binary_file<double>(path);
  EXPECT_TRUE(m.equals_exact(back));
  std::remove(path.c_str());
}

TEST(BinaryIo, MissingFileThrows) {
  EXPECT_THROW(read_binary_file<double>(temp_path("does_not_exist.acsb")),
               std::runtime_error);
}

}  // namespace
}  // namespace acs
