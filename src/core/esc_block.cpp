#include "core/esc_block.hpp"

#include <algorithm>
#include <cassert>

#include "arch/native_exec.hpp"
#include "core/compaction.hpp"
#include "core/sort_key.hpp"
#include "core/work_distribution.hpp"
#include "sim/block_primitives.hpp"
#include "trace/trace.hpp"

namespace acs {
namespace {

// The native compaction enforces the exact counter bound the scan
// emulation does; the mirror must never drift.
static_assert(arch::kNativeCompactMaxElements ==
              compaction_detail::kCounterMask);

/// Build a chunk from a prefix of the compaction output.
/// Rows [0, row_count) of `out` with their entries are materialized;
/// `a_row` maps local row ids to global rows.
template <class T>
Chunk<T> build_chunk(const CompactionOutput<T>& out, std::size_t row_count,
                     const KeyCodec& codec, std::span<const index_t> a_row,
                     ChunkOrder order) {
  Chunk<T> chunk;
  chunk.order = order;
  chunk.rows.reserve(row_count);
  chunk.row_offsets.reserve(row_count + 1);
  chunk.row_offsets.push_back(0);
  index_t entries = 0;
  for (std::size_t i = 0; i < row_count; ++i) {
    chunk.rows.push_back(a_row[static_cast<std::size_t>(out.rows[i].first)]);
    entries += out.rows[i].second;
    chunk.row_offsets.push_back(entries);
  }
  chunk.cols.resize(usize(entries));
  for (index_t e = 0; e < entries; ++e)
    chunk.cols[usize(e)] = codec.col_of(out.keys[usize(e)]);
  chunk.vals.assign(out.vals.begin(),
                    out.vals.begin() + static_cast<std::ptrdiff_t>(entries));
  return chunk;
}

/// Atomic traffic of committing one chunk: pool allocation, per-row nnz
/// counter updates, and the two list-head insertions (first and last row).
inline void charge_chunk_write(sim::MetricCounters& m, std::size_t bytes,
                               std::size_t rows_in_chunk) {
  m.global_bytes_coalesced += bytes;
  m.atomic_ops += 1 + rows_in_chunk + 2;
}

/// One expanded product awaiting sort.
template <class T>
struct Product {
  index_t lrow, col;
  T val;
};

/// Per-thread buffers of one ESC block invocation. The simulated path
/// constructs a fresh instance per block (the GPU's per-launch scratch);
/// the native path reuses one thread_local instance across blocks, which
/// removes every steady-state allocation from the hot loop — the single
/// biggest wall-clock win of the NativeCpu backend (docs/BACKENDS.md).
template <class T>
struct EscWorkspace {
  std::vector<index_t> a_row;
  std::vector<index_t> local_row;
  std::vector<offset_t> counts;
  std::vector<index_t> long_entries;
  std::vector<WorkDistribution::Item> items;
  std::vector<std::uint64_t> keys;
  std::vector<T> vals;
  std::vector<Product<T>> prods;
  std::vector<index_t> car_col;
  std::vector<T> car_val;
  arch::NativeSortScratch<std::uint64_t, T> sort;
  CompactionOutput<T> compaction;

  static EscWorkspace& native_instance() {
    thread_local EscWorkspace ws;
    return ws;
  }
};

/// The ESC block algorithm (Sections 3.2, 3.4), shared by both backends.
/// `kNative` selects the execution policy, never the mathematics: the
/// native path reuses the thread-local workspace and replaces the
/// sort-then-compact pipeline with a dense per-row accumulator
/// (arch::NativeRowAccumulator) — products fold into a column-indexed sum
/// in draw order, which is exactly the order a stable sort followed by the
/// Algorithm 3 scan combines them in, and only the unique columns of each
/// row are sorted for emission. It also skips the simulated-traffic
/// accounting. Outputs are bit-identical by construction;
/// tests/test_arch.cpp sweeps the differential generators over both paths
/// to observe it.
template <class T, bool kNative>
EscBlockResult<T> run_esc_block_impl(const Csr<T>& a, const Csr<T>& b,
                                     std::span<const index_t> block_row_starts,
                                     std::size_t block_id, const Config& cfg,
                                     ChunkPool& pool, BlockState& state) {
  EscBlockResult<T> res;
  sim::MetricCounters& m = res.metrics;

  const offset_t begin =
      static_cast<offset_t>(block_id) * cfg.nnz_per_block;
  const offset_t end = std::min<offset_t>(a.nnz(), begin + cfg.nnz_per_block);
  const auto entries = static_cast<index_t>(end - begin);
  if (entries <= 0) {
    state.finished = true;
    return res;
  }

  EscWorkspace<T> local_ws;
  EscWorkspace<T>& ws =
      kNative ? EscWorkspace<T>::native_instance() : local_ws;

  // --- Fetch A (Section 3.2.1): coalesced load of the block's non-zeros,
  // column ids and (via the row pointer) row ids.
  if constexpr (!kNative)
    m.global_bytes_coalesced +=
        static_cast<std::uint64_t>(entries) * (sizeof(index_t) + sizeof(T));

  std::vector<index_t>& a_row = ws.a_row;
  a_row.resize(static_cast<std::size_t>(entries));
  {
    index_t row = block_row_starts[block_id];
    for (index_t i = 0; i < entries; ++i) {
      const offset_t o = begin + i;
      while (a.row_ptr[static_cast<std::size_t>(row) + 1] <= o) ++row;
      a_row[static_cast<std::size_t>(i)] = row;
    }
    if constexpr (!kNative) {
      const index_t rows_in_block =
          a_row.back() - a_row.front() + 1;
      m.global_bytes_coalesced +=
          static_cast<std::uint64_t>(rows_in_block + 1) * sizeof(index_t);
    }
  }

  // Row dictionary: local row id = index of the row's first non-zero in the
  // block (Section 3.2.1's bit-length reduction).
  std::vector<index_t>& local_row = ws.local_row;
  local_row.resize(static_cast<std::size_t>(entries));
  for (index_t i = 0; i < entries; ++i) {
    local_row[static_cast<std::size_t>(i)] =
        (i > 0 && a_row[static_cast<std::size_t>(i)] ==
                      a_row[static_cast<std::size_t>(i - 1)])
            ? local_row[static_cast<std::size_t>(i - 1)]
            : i;
  }

  // --- B row lengths (inspected "with little additional cost" while loading
  // each column index of A) and long-row detection (Section 3.4).
  const index_t long_threshold = cfg.effective_long_row_threshold();
  std::vector<offset_t>& counts = ws.counts;
  counts.resize(static_cast<std::size_t>(entries));
  std::vector<index_t>& long_entries = ws.long_entries;
  long_entries.clear();
  for (index_t i = 0; i < entries; ++i) {
    const index_t acol = a.col_idx[static_cast<std::size_t>(begin + i)];
    const index_t blen = b.row_length(acol);
    if constexpr (!kNative) {
      // Row-pointer pair lookup: column-local inputs keep one of the two
      // reads in cache; the other misses.
      m.global_bytes_scattered += sizeof(index_t);
      m.global_bytes_coalesced += sizeof(index_t);
    }
    if (cfg.long_row_handling && blen >= long_threshold) {
      counts[static_cast<std::size_t>(i)] = 0;
      long_entries.push_back(i);
    } else {
      counts[static_cast<std::size_t>(i)] = blen;
    }
  }

  // Long-row pointer chunks, created idempotently across restarts.
  for (index_t j = state.long_rows_done;
       j < static_cast<index_t>(long_entries.size()); ++j) {
    const index_t i = long_entries[static_cast<std::size_t>(j)];
    const index_t acol = a.col_idx[static_cast<std::size_t>(begin + i)];
    Chunk<T> chunk;
    chunk.is_long_row = true;
    chunk.rows = {a_row[static_cast<std::size_t>(i)]};
    chunk.b_row = acol;
    chunk.factor = a.values[static_cast<std::size_t>(begin + i)];
    chunk.long_len = b.row_length(acol);
    chunk.order = {static_cast<std::uint32_t>(block_id), state.chunk_counter};
    if (!pool.try_allocate(chunk.byte_size())) {
      res.needs_restart = true;
      return res;
    }
    if constexpr (!kNative)
      charge_chunk_write(m, chunk.byte_size(), 1);
    ACS_TRACE_COUNT(cfg.trace, pool_alloc_bytes, chunk.byte_size());
    ACS_TRACE_COUNT(cfg.trace, chunks_written, 1);
    ACS_TRACE_COUNT(cfg.trace, long_row_chunks, 1);
    res.chunks.push_back(std::move(chunk));
    ++state.chunk_counter;
    state.long_rows_done = j + 1;
  }

  // --- Local work distribution (Algorithm 2).
  WorkDistribution wd(counts, m);
  if (state.committed > 0) wd.fast_forward(state.committed, m);

  const index_t capacity = static_cast<index_t>(cfg.temp_capacity());
  const index_t retain_cap = static_cast<index_t>(cfg.retain_capacity());

  // Carried partial row between iterations (decoded form; re-encoded with
  // each iteration's codec).
  index_t carried_local_row = -1;
  std::vector<index_t>& car_col = ws.car_col;
  std::vector<T>& car_val = ws.car_val;
  car_col.clear();
  car_val.clear();
  offset_t carried_sources = 0;

  std::vector<std::uint64_t>& keys = ws.keys;
  std::vector<T>& vals = ws.vals;

  // Static column width of the native path's fused encoding (see below).
  [[maybe_unused]] const int static_col_bits =
      sim::bits_for(static_cast<std::uint64_t>(b.cols - 1));

  // Block-level spans only in detail mode (a span per local ESC iteration
  // is far too hot for always-on tracing; see DESIGN.md §7).
  trace::TraceSession* detail_trace =
      cfg.trace && cfg.trace->detail() ? cfg.trace : nullptr;

  while (wd.size() > 0) {
    ACS_TRACE_SCOPE(detail_trace, "esc.iteration");
    ++res.iterations;
    const auto carried = static_cast<index_t>(car_col.size());
    const offset_t consume =
        std::min<offset_t>(wd.size(), capacity - carried);
    const std::size_t n =
        static_cast<std::size_t>(carried) + static_cast<std::size_t>(consume);

    KeyCodec codec = KeyCodec::make(
        0, 0, 0, 0, false, static_cast<index_t>(cfg.nnz_per_block - 1),
        b.cols - 1);
    // Drawn products feeding the buffer's last row (native path only; the
    // simulated path recounts from its product staging below).
    [[maybe_unused]] offset_t native_last_row_drawn = 0;
    if constexpr (kNative) {
      // --- Fused receive + expand + encode: each drawn product is touched
      // exactly once — the item and product staging buffers of the simulated
      // path (the GPU's scatter into scratchpad) never materialize. The
      // segment visit hands over one B-row run per A entry, so the A-side
      // loads (value, local row, B row base) hoist out of the per-product
      // loop and the inner loop streams one row of B. The key row base is
      // known before the sweep (the carried row or the first pending A
      // entry, whichever is lower — drawn local rows are non-decreasing
      // because consumption sweeps the block's A entries in order), and the
      // column width is static, so keys encode final-form in the same pass.
      // The sort order and decoded (row, column) pairs — all that downstream
      // consumes — are unchanged by the encoding choice, so this stays
      // bit-identical to the simulated path's dynamic-bits codec.
      keys.resize(n);
      vals.resize(n);
      const index_t first_lrow =
          local_row[static_cast<std::size_t>(wd.first_pending())];
      const index_t row_lo =
          carried > 0 ? std::min(carried_local_row, first_lrow) : first_lrow;
      std::size_t w = static_cast<std::size_t>(carried);
      index_t last_lrow_drawn = carried > 0 ? carried_local_row : first_lrow;
      wd.receive_visit_segments(consume, [&](index_t a_idx, index_t b_lo,
                                             index_t b_hi) {
        const std::size_t ai = static_cast<std::size_t>(begin + a_idx);
        const index_t lrow = local_row[static_cast<std::size_t>(a_idx)];
        if (lrow != last_lrow_drawn) {
          last_lrow_drawn = lrow;
          native_last_row_drawn = 0;
        }
        native_last_row_drawn += b_hi - b_lo;
        const std::uint64_t krow =
            static_cast<std::uint64_t>(lrow - row_lo) << static_col_bits;
        const T aval = a.values[ai];
        const std::size_t base =
            static_cast<std::size_t>(b.row_ptr[usize(a.col_idx[ai])]);
        const index_t* bcol = b.col_idx.data() + base;
        const T* bval = b.values.data() + base;
        for (index_t off = b_hi; off-- > b_lo;) {
          keys[w] = krow | static_cast<std::uint64_t>(bcol[off]);
          vals[w] = aval * bval[off];
          ++w;
        }
      });

      const index_t row_hi = std::max(
          last_lrow_drawn, carried > 0 ? carried_local_row : last_lrow_drawn);
      codec = KeyCodec::make(row_lo, row_hi, 0, b.cols - 1, true,
                             static_cast<index_t>(cfg.nnz_per_block - 1),
                             b.cols - 1);
      // Carried elements first (stable sort keeps them ahead of new products
      // with equal keys, preserving prefix-sum accumulation).
      for (index_t i = 0; i < carried; ++i) {
        keys[static_cast<std::size_t>(i)] = codec.encode(
            carried_local_row, car_col[static_cast<std::size_t>(i)]);
        vals[static_cast<std::size_t>(i)] =
            car_val[static_cast<std::size_t>(i)];
      }
    } else {
      std::vector<WorkDistribution::Item>& items = ws.items;
      std::vector<Product<T>>& prods = ws.prods;
      items.clear();
      wd.receive(consume, items, m);

      // --- Expand: load the assigned B elements and multiply. Track the
      // dynamic key ranges and the coalescing structure (consecutive items
      // of the same A entry read consecutive B elements).
      keys.resize(n);
      vals.resize(n);

      index_t min_col = b.cols, max_col = 0;
      index_t min_lrow = entries, max_lrow = 0;
      for (index_t c : car_col) {
        min_col = std::min(min_col, c);
        max_col = std::max(max_col, c);
      }
      if (carried > 0) {
        min_lrow = std::min(min_lrow, carried_local_row);
        max_lrow = std::max(max_lrow, carried_local_row);
      }

      prods.resize(items.size());
      index_t prev_a = -1;
      for (std::size_t i = 0; i < items.size(); ++i) {
        const auto [a_idx, b_off] = items[i];
        const index_t acol = a.col_idx[static_cast<std::size_t>(begin + a_idx)];
        const index_t bk = b.row_ptr[usize(acol)] + b_off;
        const index_t bcol = b.col_idx[static_cast<std::size_t>(bk)];
        const T prod = a.values[static_cast<std::size_t>(begin + a_idx)] *
                       b.values[static_cast<std::size_t>(bk)];
        prods[i] = {local_row[static_cast<std::size_t>(a_idx)], bcol, prod};
        min_col = std::min(min_col, bcol);
        max_col = std::max(max_col, bcol);
        min_lrow = std::min(min_lrow, prods[i].lrow);
        max_lrow = std::max(max_lrow, prods[i].lrow);
        m.global_bytes_coalesced += sizeof(index_t) + sizeof(T);
        if (a_idx != prev_a) {
          // New B-row segment: one extra memory transaction of overhead.
          m.global_bytes_scattered += 32;
          prev_a = a_idx;
        }
      }
      m.flops += 2 * items.size();

      codec = KeyCodec::make(
          min_lrow, std::max(min_lrow, max_lrow), min_col,
          std::max(min_col, max_col), cfg.dynamic_bits,
          static_cast<index_t>(cfg.nnz_per_block - 1), b.cols - 1);

      // Buffer layout: carried elements first (stable sort keeps them ahead
      // of new products with equal keys, preserving prefix-sum
      // accumulation).
      for (index_t i = 0; i < carried; ++i) {
        keys[static_cast<std::size_t>(i)] = codec.encode(
            carried_local_row, car_col[static_cast<std::size_t>(i)]);
        vals[static_cast<std::size_t>(i)] =
            car_val[static_cast<std::size_t>(i)];
      }
      for (std::size_t i = 0; i < prods.size(); ++i) {
        keys[static_cast<std::size_t>(carried) + i] =
            codec.encode(prods[i].lrow, prods[i].col);
        vals[static_cast<std::size_t>(carried) + i] = prods[i].val;
      }
    }

    // --- Sort (block radix sort over the reduced bit range). Both sorts
    // are stable LSD ascending, so the permutation is identical; the
    // native one just uses wider digits and reused scratch.
    if constexpr (kNative)
      arch::native_radix_sort(std::span(keys), std::span(vals),
                              codec.total_bits(), ws.sort);
    else
      sim::block_radix_sort(std::span(keys), std::span(vals),
                            codec.total_bits(), m);

    // --- Compress (Algorithm 3 scan; the native path runs the single-pass
    // equivalent with the same left-to-right value association).
    if constexpr (kNative)
      arch::native_compact_sorted(
          std::span<const std::uint64_t>(keys), std::span<const T>(vals),
          codec, ws.compaction);
    else
      ws.compaction = compact_sorted<T>(std::span<const std::uint64_t>(keys),
                                        std::span<const T>(vals), codec, m);
    const CompactionOutput<T>& out = ws.compaction;
    assert(!out.rows.empty());

    // Sources feeding the (new) last row this round: the products drawn for
    // it plus, if the carried row is still open, its accumulated sources.
    const index_t last_lrow = out.rows.back().first;
    offset_t last_row_sources = 0;
    if constexpr (kNative) {
      // Counted during the fused sweep: drawn products only, never the
      // carried elements (those are not sources themselves).
      last_row_sources = native_last_row_drawn;
    } else {
      for (const auto& p : ws.prods)
        if (p.lrow == last_lrow) ++last_row_sources;
    }
    if (carried > 0 && carried_local_row == last_lrow)
      last_row_sources += carried_sources;

    const bool more = wd.size() > 0;
    const index_t last_count = out.rows.back().second;
    const bool carry_last =
        more && retain_cap > 0 && last_count <= retain_cap;

    const std::size_t write_rows =
        carry_last ? out.rows.size() - 1 : out.rows.size();

    if (write_rows > 0) {
      Chunk<T> chunk = build_chunk(out, write_rows, codec,
                                   std::span<const index_t>(a_row),
                                   {static_cast<std::uint32_t>(block_id),
                                    state.chunk_counter});
      if (!pool.try_allocate(chunk.byte_size())) {
        res.needs_restart = true;
        return res;  // committed unchanged: replay redoes this iteration
      }
      if constexpr (!kNative) {
        charge_chunk_write(m, chunk.byte_size(), write_rows);
        // Staging round trip through scratchpad for coalesced writes.
        m.scratch_ops += 2 * chunk.cols.size();
      }
      ACS_TRACE_COUNT(cfg.trace, pool_alloc_bytes, chunk.byte_size());
      ACS_TRACE_COUNT(cfg.trace, chunks_written, 1);
      res.chunks.push_back(std::move(chunk));
      ++state.chunk_counter;
      // Restart invariant (DESIGN.md §8): `committed` counts exactly the
      // work-distribution sources whose products are fully represented in
      // written chunks. A carried (retained) last row is NOT committed —
      // its sources replay after a restart and the replayed products
      // re-produce the carried partial row bit-identically. This is the
      // only place `committed` advances; it moves monotonically and only
      // after the chunk covering the work is safely in the pool.
      state.committed =
          wd.consumed() - (carry_last ? last_row_sources : 0);
    }

    if (carry_last) {
      carried_local_row = last_lrow;
      const std::size_t first =
          out.keys.size() - static_cast<std::size_t>(last_count);
      car_col.assign(static_cast<std::size_t>(last_count), 0);
      car_val.assign(static_cast<std::size_t>(last_count), T{});
      for (index_t i = 0; i < last_count; ++i) {
        car_col[static_cast<std::size_t>(i)] =
            codec.col_of(out.keys[first + static_cast<std::size_t>(i)]);
        car_val[static_cast<std::size_t>(i)] =
            out.vals[first + static_cast<std::size_t>(i)];
      }
      carried_sources = last_row_sources;
    } else {
      // With no carry, last_row_sources was not subtracted above, so
      // `committed` already equals wd.consumed() — no second assignment.
      carried_local_row = -1;
      car_col.clear();
      car_val.clear();
      carried_sources = 0;
    }
  }

  state.finished = true;
  return res;
}

}  // namespace

template <class T>
EscBlockResult<T> run_esc_block(const Csr<T>& a, const Csr<T>& b,
                                std::span<const index_t> block_row_starts,
                                std::size_t block_id, const Config& cfg,
                                ChunkPool& pool, BlockState& state) {
  if (cfg.exec == arch::ExecKind::kNative)
    return run_esc_block_impl<T, true>(a, b, block_row_starts, block_id, cfg,
                                       pool, state);
  return run_esc_block_impl<T, false>(a, b, block_row_starts, block_id, cfg,
                                      pool, state);
}

template EscBlockResult<float> run_esc_block(const Csr<float>&,
                                             const Csr<float>&,
                                             std::span<const index_t>,
                                             std::size_t, const Config&,
                                             ChunkPool&, BlockState&);
template EscBlockResult<double> run_esc_block(const Csr<double>&,
                                              const Csr<double>&,
                                              std::span<const index_t>,
                                              std::size_t, const Config&,
                                              ChunkPool&, BlockState&);

}  // namespace acs
