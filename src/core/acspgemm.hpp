#pragma once
/// \file acspgemm.hpp
/// Public API of AC-SpGEMM, the adaptive chunk-based sparse matrix-matrix
/// multiplication of Winter et al. (PPoPP'19), executed on the repository's
/// deterministic GPU simulator.
///
/// The multiplication C = A·B runs the paper's four-stage pipeline:
/// global load balancing over A's non-zeros, adaptive chunk-based ESC with
/// a local work distribution, chunk merging (Multi/Path/Search merge), and
/// chunk copy into the CSR output. Results are bit-stable: the same inputs
/// produce bit-identical outputs on every run and for every scheduler
/// thread count.
///
/// Example:
/// \code
///   acs::Csr<double> a = acs::gen_uniform_random<double>(1000, 1000, 8, 2, 1);
///   acs::SpgemmStats stats;
///   acs::Csr<double> c = acs::multiply(a, a, acs::Config{}, &stats);
///   std::cout << stats.gflops() << " simulated GFLOPS\n";
/// \endcode

#include "core/config.hpp"
#include "core/plan.hpp"
#include "matrix/csr.hpp"
#include "sim/scheduler.hpp"
#include "sim/spgemm_stats.hpp"

namespace acs {

/// Multiply two CSR matrices with AC-SpGEMM. `a.cols` must equal `b.rows`.
/// Throws std::invalid_argument on dimension mismatch or an inconsistent
/// configuration (e.g. retained elements not smaller than the sort
/// capacity). `stats`, when non-null, receives timing, memory and restart
/// statistics of the run.
template <class T>
Csr<T> multiply(const Csr<T>& a, const Csr<T>& b, const Config& cfg = {},
                SpgemmStats* stats = nullptr);

/// Plan-in/plan-out variant of `multiply`: structure-dependent setup work is
/// read from and written back to `plan`. A plan whose load-balancing table
/// matches (same nnz(A), same nnz_per_block) skips the GLB pass; a non-zero
/// `plan.pool_bytes` replaces the paper's memory estimate with the learned
/// capacity, so a plan replayed on the same sparsity pattern runs without
/// restarts. The output is bit-identical to the plain `multiply` — plans
/// only shortcut work, they never change results (determinism contract,
/// DESIGN.md §6). `scheduler`, when non-null, executes the simulated blocks
/// instead of a per-call scheduler, letting callers (the runtime Engine)
/// keep one warm thread pool across many multiplications; it must outlive
/// the call and not be shared with a concurrent multiplication.
template <class T>
Csr<T> multiply_planned(const Csr<T>& a, const Csr<T>& b, const Config& cfg,
                        SpgemmPlan& plan, SpgemmStats* stats = nullptr,
                        sim::BlockScheduler* scheduler = nullptr);

/// The paper's simplistic chunk-pool estimate (Section 4): expected nnz of
/// C under a uniform-row model, times (4 + sizeof(T)) bytes per element,
/// times `cfg.pool_estimate_factor`, clamped to `cfg.pool_lower_bound_bytes`.
template <class T>
std::size_t estimate_chunk_pool_bytes(const Csr<T>& a, const Csr<T>& b,
                                      const Config& cfg);

extern template Csr<float> multiply(const Csr<float>&, const Csr<float>&,
                                    const Config&, SpgemmStats*);
extern template Csr<double> multiply(const Csr<double>&, const Csr<double>&,
                                     const Config&, SpgemmStats*);
extern template Csr<float> multiply_planned(const Csr<float>&,
                                            const Csr<float>&, const Config&,
                                            SpgemmPlan&, SpgemmStats*,
                                            sim::BlockScheduler*);
extern template Csr<double> multiply_planned(const Csr<double>&,
                                             const Csr<double>&, const Config&,
                                             SpgemmPlan&, SpgemmStats*,
                                             sim::BlockScheduler*);
extern template std::size_t estimate_chunk_pool_bytes(const Csr<float>&,
                                                      const Csr<float>&,
                                                      const Config&);
extern template std::size_t estimate_chunk_pool_bytes(const Csr<double>&,
                                                      const Csr<double>&,
                                                      const Config&);

}  // namespace acs
