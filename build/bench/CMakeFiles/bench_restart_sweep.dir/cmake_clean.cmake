file(REMOVE_RECURSE
  "CMakeFiles/bench_restart_sweep.dir/bench_restart_sweep.cpp.o"
  "CMakeFiles/bench_restart_sweep.dir/bench_restart_sweep.cpp.o.d"
  "bench_restart_sweep"
  "bench_restart_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_restart_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
