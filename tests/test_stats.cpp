#include "matrix/stats.hpp"

#include <gtest/gtest.h>

#include "matrix/generators.hpp"

namespace acs {
namespace {

Csr<double> tiny() {
  // [1 1 0]
  // [0 0 1]
  // [1 0 0]
  Csr<double> m;
  m.rows = 3;
  m.cols = 3;
  m.row_ptr = {0, 2, 3, 4};
  m.col_idx = {0, 1, 2, 0};
  m.values = {1, 1, 1, 1};
  return m;
}

TEST(Stats, RowStats) {
  const auto s = row_stats(tiny());
  EXPECT_EQ(s.min_len, 1);
  EXPECT_EQ(s.max_len, 2);
  EXPECT_NEAR(s.avg_len, 4.0 / 3.0, 1e-12);
}

TEST(Stats, IntermediateProductsSelfProduct) {
  const auto m = tiny();
  // Row lengths of B=m are (2,1,1). A's columns: 0,1,2,0 -> 2+1+1+2 = 6.
  EXPECT_EQ(intermediate_products(m, m), 6);
  EXPECT_EQ(spgemm_flops(m, m), 12);
}

TEST(Stats, IntermediateProductsPerRow) {
  const auto m = tiny();
  const auto per_row = intermediate_products_per_row(m, m);
  ASSERT_EQ(per_row.size(), 3u);
  EXPECT_EQ(per_row[0], 3);  // cols 0,1 -> len 2 + 1
  EXPECT_EQ(per_row[1], 1);
  EXPECT_EQ(per_row[2], 2);
  EXPECT_EQ(per_row[0] + per_row[1] + per_row[2], intermediate_products(m, m));
}

TEST(Stats, CompactionFactor) {
  const auto m = tiny();
  EXPECT_DOUBLE_EQ(compaction_factor(m, m, 3), 2.0);
  EXPECT_DOUBLE_EQ(compaction_factor(m, m, 0), 0.0);
}

TEST(Stats, Histogram) {
  const auto m = gen_uniform_random<double>(1000, 1000, 10.0, 5.0, 3);
  const std::vector<index_t> buckets{0, 8, 12, 100};
  const auto hist = row_length_histogram(m, buckets);
  ASSERT_EQ(hist.size(), 4u);
  offset_t total = 0;
  for (auto h : hist) total += h;
  EXPECT_EQ(total, 1000);
  EXPECT_EQ(hist[3], 0);  // no rows >= 100
}

TEST(Stats, EmptyMatrix) {
  Csr<double> m;
  const auto s = row_stats(m);
  EXPECT_EQ(s.max_len, 0);
  EXPECT_EQ(s.avg_len, 0.0);
}

}  // namespace
}  // namespace acs
