#pragma once
/// \file hybrid.hpp
/// The paper's proposed future extension (Conclusion): "extending the
/// adaptive behaviour of our chunk-based approach to choose between
/// alternative approaches (ESC, hashing, merging) depending on the load".
/// This dispatcher inspects the cheap global statistics available before
/// launch — average row lengths of A and B and the estimated compaction
/// factor — and routes the multiplication to AC-SpGEMM (the highly sparse
/// regime it dominates) or the hash strategy (the high-compaction dense
/// regime where ESC's per-product cost is too high). Note that the hybrid
/// inherits non-bit-stability whenever it picks the hash path; `last_choice`
/// reports which path ran.

#include "baselines/algorithm.hpp"
#include "core/config.hpp"

namespace acs {

template <class T>
class HybridSpgemm final : public SpgemmAlgorithm<T> {
 public:
  /// Route to hashing when avg row length exceeds `dense_threshold` (the
  /// paper's 42-split by default) and the estimated compaction factor
  /// exceeds `compaction_threshold` (ESC's weakness needs both density and
  /// heavy duplication to lose).
  explicit HybridSpgemm(Config ac_config = {}, double dense_threshold = 42.0,
                        double compaction_threshold = 4.0)
      : cfg_(ac_config),
        dense_threshold_(dense_threshold),
        compaction_threshold_(compaction_threshold) {}

  [[nodiscard]] std::string name() const override { return "Hybrid"; }
  /// Bit-stable only while the ESC path is chosen; conservatively false.
  [[nodiscard]] bool bit_stable() const override { return false; }

  Csr<T> multiply(const Csr<T>& a, const Csr<T>& b,
                  SpgemmStats* stats) const override;

  enum class Choice { AcSpgemm, Hash };
  [[nodiscard]] Choice last_choice() const { return last_choice_; }

  /// The routing predicate, exposed for tests and benches.
  [[nodiscard]] Choice choose(const Csr<T>& a, const Csr<T>& b) const;

 private:
  Config cfg_;
  double dense_threshold_;
  double compaction_threshold_;
  mutable Choice last_choice_ = Choice::AcSpgemm;
};

extern template class HybridSpgemm<float>;
extern template class HybridSpgemm<double>;

}  // namespace acs
