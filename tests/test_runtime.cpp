#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <future>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/acspgemm.hpp"
#include "fault/policies.hpp"
#include "matrix/generators.hpp"
#include "runtime/engine.hpp"
#include "runtime/fingerprint.hpp"
#include "runtime/plan_cache.hpp"
#include "runtime/pool_arena.hpp"

namespace acs::runtime {
namespace {

/// Deliberately under-provisioned pool: the estimate comes out far below
/// the real requirement, so cold runs restart and warm runs demonstrate
/// the plan's learned sizing.
Config tight_pool_config() {
  Config cfg;
  cfg.pool_lower_bound_bytes = 8 << 10;
  cfg.pool_estimate_factor = 0.02;
  return cfg;
}

Fingerprint key_of(std::uint64_t x) {
  Fingerprint f;
  f.row_ptr_hash = x;
  return f;
}

// --- Fingerprint ----------------------------------------------------------

TEST(Fingerprint, IgnoresValuesTracksStructure) {
  const auto a = gen_uniform_random<double>(200, 200, 6.0, 2.0, 7);
  auto scaled = a;
  for (auto& v : scaled.values) v *= 3.0;
  EXPECT_EQ(fingerprint(a, a), fingerprint(scaled, scaled));

  const auto other = gen_uniform_random<double>(200, 200, 6.0, 2.0, 8);
  EXPECT_FALSE(fingerprint(a, a) == fingerprint(other, other));
}

TEST(Fingerprint, DistinguishesBOperandShape) {
  const auto a = gen_uniform_random<double>(100, 100, 4.0, 1.0, 9);
  const auto b1 = gen_uniform_random<double>(100, 80, 4.0, 1.0, 10);
  const auto b2 = gen_uniform_random<double>(100, 120, 4.0, 1.0, 10);
  EXPECT_FALSE(fingerprint(a, b1) == fingerprint(a, b2));
}

TEST(Fingerprint, ArchFieldSeparatesBackends) {
  const auto a = gen_uniform_random<double>(100, 100, 4.0, 1.0, 11);
  // The 2-arg overload pins the default backend — pre-arch fingerprints
  // stay byte-for-byte reproducible.
  EXPECT_EQ(fingerprint(a, a), fingerprint(a, a, arch::ArchId::kSimTitanXp));
  // Same structure on a different backend is a different key (a plan's
  // learned pool size and tuned overlay are arch-specific).
  const Fingerprint titan = fingerprint(a, a, arch::ArchId::kSimTitanXp);
  const Fingerprint native = fingerprint(a, a, arch::ArchId::kNativeCpu);
  const Fingerprint big = fingerprint(a, a, arch::ArchId::kSimBigDevice);
  EXPECT_FALSE(titan == native);
  EXPECT_FALSE(titan == big);
  EXPECT_FALSE(native == big);
  const FingerprintHash h;
  EXPECT_NE(h(titan), h(native));
}

// --- PlanCache ------------------------------------------------------------

TEST(PlanCache, HitMissAndLruEviction) {
  PlanCache cache(2);
  SpgemmPlan p;
  EXPECT_FALSE(cache.lookup(key_of(1), p));

  SpgemmPlan stored;
  stored.pool_bytes = 111;
  cache.store(key_of(1), stored);
  EXPECT_TRUE(cache.lookup(key_of(1), p));
  EXPECT_EQ(p.pool_bytes, 111u);

  cache.store(key_of(2), SpgemmPlan{});
  EXPECT_TRUE(cache.lookup(key_of(1), p));  // make key 2 the LRU entry
  cache.store(key_of(3), SpgemmPlan{});     // evicts key 2
  EXPECT_FALSE(cache.lookup(key_of(2), p));
  EXPECT_TRUE(cache.lookup(key_of(1), p));
  EXPECT_TRUE(cache.lookup(key_of(3), p));

  const auto c = cache.counters();
  EXPECT_EQ(c.insertions, 3u);
  EXPECT_EQ(c.evictions, 1u);
  EXPECT_EQ(c.hits, 4u);
  EXPECT_EQ(c.misses, 2u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NEAR(c.hit_rate(), 4.0 / 6.0, 1e-12);
}

TEST(PlanCache, StoreRefreshesExistingEntry) {
  PlanCache cache(4);
  SpgemmPlan v1;
  v1.pool_bytes = 100;
  cache.store(key_of(5), v1);
  SpgemmPlan v2;
  v2.pool_bytes = 900;
  cache.store(key_of(5), v2);

  SpgemmPlan out;
  EXPECT_TRUE(cache.lookup(key_of(5), out));
  EXPECT_EQ(out.pool_bytes, 900u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.counters().refreshes, 1u);
}

TEST(PlanCache, ArchKeysAreIsolatedEntries) {
  // A plan learned on one backend must never serve another: the same
  // structural hashes under different arch ids are distinct cache lines.
  PlanCache cache(4);
  Fingerprint titan_key = key_of(42);
  titan_key.arch = static_cast<std::uint32_t>(arch::ArchId::kSimTitanXp);
  Fingerprint native_key = key_of(42);
  native_key.arch = static_cast<std::uint32_t>(arch::ArchId::kNativeCpu);

  SpgemmPlan titan_plan;
  titan_plan.pool_bytes = 111;
  cache.store(titan_key, titan_plan);

  SpgemmPlan out;
  EXPECT_FALSE(cache.lookup(native_key, out));  // cross-arch miss

  SpgemmPlan native_plan;
  native_plan.pool_bytes = 999;
  cache.store(native_key, native_plan);
  EXPECT_EQ(cache.size(), 2u);  // both coexist, no refresh
  ASSERT_TRUE(cache.lookup(titan_key, out));
  EXPECT_EQ(out.pool_bytes, 111u);
  ASSERT_TRUE(cache.lookup(native_key, out));
  EXPECT_EQ(out.pool_bytes, 999u);
}

// --- PoolArena ------------------------------------------------------------

TEST(PoolArena, RecyclesReleasedCapacity) {
  PoolArena arena;
  const auto l1 = arena.acquire(1000);
  EXPECT_EQ(l1.bytes, 1000u);
  EXPECT_EQ(l1.reused_bytes, 0u);

  arena.release(1500);  // the job's pool grew by restarts
  const auto l2 = arena.acquire(1200);
  EXPECT_EQ(l2.bytes, 1500u);  // whole slab handed out
  EXPECT_EQ(l2.reused_bytes, 1200u);

  arena.release(1500);
  const auto l3 = arena.acquire(4000);  // grows the largest slab
  EXPECT_EQ(l3.bytes, 4000u);
  EXPECT_EQ(l3.reused_bytes, 1500u);

  const auto c = arena.counters();
  EXPECT_EQ(c.high_water_bytes, 1500u);
  EXPECT_EQ(c.reuse_hits, 2u);
  EXPECT_EQ(c.fresh_bytes, 1000u + 2500u);
  EXPECT_EQ(c.outstanding, 1u);  // three acquires, two releases
}

TEST(PoolArena, BestFitPrefersSmallestSufficientSlab) {
  PoolArena arena;
  arena.release(1 << 20);
  arena.release(64 << 10);
  const auto lease = arena.acquire(10 << 10);
  EXPECT_EQ(lease.bytes, std::size_t{64} << 10);
  EXPECT_EQ(arena.free_bytes(), std::size_t{1} << 20);
}

// --- multiply_planned (core plan-in/plan-out entry point) -----------------

TEST(MultiplyPlanned, PlanRoundTripIsBitIdenticalAndSkipsGlb) {
  const auto a = gen_uniform_random<float>(400, 400, 7.0, 2.0, 51);
  const Config cfg;
  SpgemmPlan plan;
  SpgemmStats s1, s2;

  const auto c1 = multiply_planned(a, a, cfg, plan, &s1);
  EXPECT_FALSE(s1.glb_reused);
  EXPECT_EQ(plan.runs, 1u);
  EXPECT_FALSE(plan.block_row_starts.empty());
  EXPECT_GT(plan.pool_bytes, 0u);

  const auto c2 = multiply_planned(a, a, cfg, plan, &s2);
  EXPECT_TRUE(s2.glb_reused);
  EXPECT_EQ(s2.stage_time("GLB"), 0.0);
  EXPECT_TRUE(c1.equals_exact(c2));
  EXPECT_TRUE(c1.equals_exact(multiply(a, a, cfg)));
}

TEST(MultiplyPlanned, LearnedPoolSizeEliminatesRestarts) {
  const auto a = gen_uniform_random<double>(500, 500, 8.0, 2.0, 21);
  const Config cfg = tight_pool_config();
  SpgemmPlan plan;
  SpgemmStats cold, warm;

  const auto c1 = multiply_planned(a, a, cfg, plan, &cold);
  EXPECT_GT(cold.restarts, 0);
  const auto c2 = multiply_planned(a, a, cfg, plan, &warm);
  EXPECT_EQ(warm.restarts, 0);
  EXPECT_TRUE(c1.equals_exact(c2));
}

TEST(MultiplyPlanned, MismatchedPlanIsRebuiltNotMisused) {
  const auto a = gen_uniform_random<float>(300, 300, 6.0, 2.0, 52);
  SpgemmPlan plan;
  Config first;
  first.nnz_per_block = 256;
  multiply_planned(a, a, first, plan);

  Config second = first;
  second.nnz_per_block = 128;
  SpgemmStats s;
  const auto c = multiply_planned(a, a, second, plan, &s);
  EXPECT_FALSE(s.glb_reused);
  EXPECT_TRUE(c.equals_exact(multiply(a, a, second)));
  EXPECT_EQ(plan.nnz_per_block, 128);
}

TEST(MultiplyPlanned, ExternalWarmSchedulerBitIdentical) {
  const auto m = gen_powerlaw<double>(400, 400, 6.0, 1.6, 150, 71);
  Config cfg;
  cfg.scheduler_threads = 4;
  sim::BlockScheduler scheduler(4);
  SpgemmPlan p1, p2;
  const auto c1 = multiply_planned(m, m, cfg, p1, nullptr, &scheduler);
  const auto c2 = multiply_planned(m, m, cfg, p2, nullptr, &scheduler);
  EXPECT_TRUE(c1.equals_exact(c2));
  EXPECT_TRUE(c1.equals_exact(multiply(m, m, cfg)));
}

// --- Engine ---------------------------------------------------------------

TEST(Engine, MatchesPlainMultiply) {
  const auto a = gen_powerlaw<double>(400, 400, 6.0, 1.6, 150, 11);
  const auto b = gen_uniform_random<double>(400, 400, 5.0, 2.0, 12);
  Engine<double> engine;
  auto handle = engine.submit(a, b);
  EXPECT_TRUE(handle.result().c.equals_exact(multiply(a, b)));
}

TEST(Engine, WarmPlanSkipsSetupAndEliminatesRestarts) {
  const auto a = gen_uniform_random<double>(500, 500, 8.0, 2.0, 21);
  const Config cfg = tight_pool_config();
  Engine<double> engine;

  auto h1 = engine.submit(a, a, cfg);
  auto& cold = h1.result();
  EXPECT_FALSE(cold.plan_hit);
  EXPECT_FALSE(cold.stats.glb_reused);
  EXPECT_GT(cold.stats.restarts, 0);

  auto h2 = engine.submit(a, a, cfg);
  auto& warm = h2.result();
  EXPECT_TRUE(warm.plan_hit);
  EXPECT_TRUE(warm.stats.glb_reused);
  EXPECT_EQ(warm.stats.restarts, 0);
  EXPECT_GT(warm.pool_reused_bytes, 0u);  // pool recycled across jobs
  EXPECT_TRUE(cold.c.equals_exact(warm.c));

  EXPECT_EQ(engine.plan_counters().hits, 1u);
  EXPECT_EQ(engine.plan_counters().misses, 1u);
  EXPECT_EQ(engine.arena_counters().reuse_hits, 1u);
}

std::vector<Csr<double>> run_mixed_batch(unsigned workers) {
  const auto a = gen_powerlaw<double>(300, 300, 5.0, 1.5, 100, 31);
  const auto b = gen_uniform_random<double>(300, 300, 4.0, 1.0, 32);
  const auto s = gen_stencil_2d<double>(18, 18, 33);
  std::vector<std::pair<Csr<double>, Csr<double>>> pairs;
  for (int rep = 0; rep < 3; ++rep) {
    pairs.emplace_back(a, a);
    pairs.emplace_back(a, b);
    pairs.emplace_back(s, s);
  }
  EngineConfig ec;
  ec.workers = workers;
  Engine<double> engine(ec);
  auto results = engine.multiply_batch(pairs, tight_pool_config());
  std::vector<Csr<double>> out;
  out.reserve(results.size());
  for (auto& r : results) out.push_back(std::move(r.c));
  return out;
}

TEST(Engine, BatchOutputsBitIdenticalForOneVsManyWorkers) {
  // The per-job determinism contract under concurrency: the same batch must
  // produce bit-identical per-job outputs whether jobs run sequentially or
  // on many workers — even though the plan-cache/arena state each job sees
  // (and hence its restart pattern) differs between the two runs.
  const auto seq = run_mixed_batch(1);
  const auto par = run_mixed_batch(4);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i)
    EXPECT_TRUE(seq[i].equals_exact(par[i])) << "job " << i;
}

TEST(Engine, PlanCacheEvictionUnderWorkerContention) {
  // More distinct patterns than cache slots, hammered by 4 workers twice
  // over: the LRU must evict without corrupting results, and the counter
  // arithmetic (hits + misses = lookups, insertions - evictions = size)
  // must stay consistent under contention.
  constexpr std::size_t kPatterns = 6;
  std::vector<std::pair<Csr<double>, Csr<double>>> pairs;
  for (std::size_t p = 0; p < kPatterns; ++p) {
    const auto m = gen_uniform_random<double>(
        160 + static_cast<index_t>(8 * p), 160 + static_cast<index_t>(8 * p),
        5.0, 1.0, 200 + p);
    pairs.emplace_back(m, m);
  }
  for (std::size_t p = 0; p < kPatterns; ++p) pairs.push_back(pairs[p]);

  EngineConfig ec;
  ec.workers = 4;
  ec.plan_cache_capacity = 3;  // < kPatterns: forces evictions
  Engine<double> engine(ec);
  const auto results = engine.multiply_batch(pairs, tight_pool_config());

  ASSERT_EQ(results.size(), 2 * kPatterns);
  for (std::size_t p = 0; p < kPatterns; ++p) {
    ASSERT_FALSE(results[p].failed());
    EXPECT_TRUE(results[p].c.equals_exact(results[p + kPatterns].c))
        << "pattern " << p;
  }
  const auto c = engine.plan_counters();
  EXPECT_GT(c.evictions, 0u);
  EXPECT_EQ(c.hits + c.misses, 2 * kPatterns);
  EXPECT_EQ(c.insertions + c.refreshes, 2 * kPatterns);
  EXPECT_EQ(c.insertions - c.evictions, 3u);  // cache left full
}

TEST(Engine, MetricsAggregateAcrossWorkers) {
  const auto a = gen_uniform_random<double>(300, 300, 6.0, 2.0, 210);
  const auto b = gen_powerlaw<double>(300, 300, 5.0, 1.6, 100, 211);
  std::vector<std::pair<Csr<double>, Csr<double>>> pairs;
  for (int i = 0; i < 4; ++i) pairs.emplace_back(a, a);
  for (int i = 0; i < 4; ++i) pairs.emplace_back(b, b);

  EngineConfig ec;
  ec.workers = 4;
  Engine<double> engine(ec);
  const auto results = engine.multiply_batch(pairs);
  const trace::MetricsSnapshot m = engine.metrics();

  EXPECT_EQ(m.jobs, pairs.size());
  double sim = 0.0, per_job_stage = 0.0;
  std::uint64_t chunks = 0;
  for (const auto& r : results) {
    ASSERT_FALSE(r.failed());
    sim += r.stats.sim_time_s;
    chunks += r.stats.chunks_created;
    for (double t : r.metrics.stage_sim_time_s) per_job_stage += t;
    EXPECT_EQ(r.metrics.jobs, 1u);
  }
  EXPECT_NEAR(m.sim_time_s, sim, 1e-12);
  EXPECT_EQ(m.chunks_created, chunks);
  double rolled_stage = 0.0;
  for (double t : m.stage_sim_time_s) rolled_stage += t;
  EXPECT_NEAR(rolled_stage, per_job_stage, 1e-12);
  EXPECT_NEAR(rolled_stage, sim, 1e-12);  // stages partition the sim time
  EXPECT_GT(m.pool_bytes, 0u);
}

TEST(Engine, CollectJobTracesAttachesSessionPerJob) {
  const auto a = gen_uniform_random<double>(250, 250, 5.0, 1.0, 220);
  EngineConfig ec;
  ec.collect_job_traces = true;
  Engine<double> engine(ec);
  auto h1 = engine.submit(a, a);
  auto h2 = engine.submit(a, a);
  auto& r1 = h1.result();
  auto& r2 = h2.result();

  ASSERT_NE(r1.trace, nullptr);
  ASSERT_NE(r2.trace, nullptr);
  EXPECT_NE(r1.trace, r2.trace);  // one session per job, counters not shared
  EXPECT_GT(r1.trace->span_count(), 0u);
  EXPECT_EQ(r1.metrics.counters.chunks_written, r1.stats.chunks_created);
  EXPECT_EQ(r2.metrics.counters.chunks_written, r2.stats.chunks_created);
  EXPECT_TRUE(r1.c.equals_exact(r2.c));

  // Results are unaffected by tracing.
  EXPECT_TRUE(r1.c.equals_exact(multiply(a, a)));
}

TEST(Engine, PerJobFaultInjectionKeepsResultsBitIdentical) {
  // EngineConfig::make_alloc_policy builds one injector per job, keyed by
  // submission order: the injected denials force restarts that must leave
  // every job's output bit-identical to a clean engine's, while surfacing
  // on the engine-wide metrics.
  const auto a = gen_uniform_random<double>(300, 300, 6.0, 2.0, 41);
  const auto b = gen_powerlaw<double>(300, 300, 5.0, 1.5, 100, 42);
  std::vector<std::pair<Csr<double>, Csr<double>>> pairs = {
      {a, a}, {a, b}, {b, b}, {b, a}};

  Engine<double> clean_engine;
  const auto clean = clean_engine.multiply_batch(pairs);

  EngineConfig ec;
  ec.workers = 2;
  ec.make_alloc_policy =
      [](std::size_t seq) -> std::unique_ptr<AllocationPolicy> {
    if (seq == 1) return nullptr;  // a null return injects nothing
    return std::make_unique<fault::DenyEveryKthPolicy>(5, seq);
  };
  Engine<double> engine(ec);
  const auto injected = engine.multiply_batch(pairs);

  ASSERT_EQ(injected.size(), clean.size());
  for (std::size_t i = 0; i < injected.size(); ++i) {
    ASSERT_FALSE(injected[i].failed()) << "job " << i;
    EXPECT_TRUE(injected[i].c.equals_exact(clean[i].c)) << "job " << i;
  }
  EXPECT_EQ(engine.stats().jobs_failed, 0u);
  // Injected exhaustion is visible on the aggregated metrics.
  EXPECT_GT(engine.metrics().restarts, 0u);
  EXPECT_GT(engine.metrics().pool_denials, 0u);
}

TEST(Engine, FailedJobRethrowsAndEngineKeepsWorking) {
  Engine<double> engine;
  const auto a = gen_uniform_random<double>(50, 60, 3.0, 1.0, 61);
  const auto b = gen_uniform_random<double>(50, 60, 3.0, 1.0, 62);
  auto bad = engine.submit(a, b);  // 60 columns vs 50 rows
  EXPECT_THROW(static_cast<void>(bad.result()), std::invalid_argument);

  const auto good = gen_uniform_random<double>(50, 50, 3.0, 1.0, 63);
  auto ok = engine.submit(good, good);
  EXPECT_TRUE(ok.result().c.equals_exact(multiply(good, good)));
  EXPECT_EQ(engine.stats().jobs_failed, 1u);
  EXPECT_EQ(engine.stats().jobs_completed, 2u);
}

TEST(Engine, BatchWithThrowingJobFailsOnlyThatJob) {
  // Regression: multiply_batch used to rethrow the first failing job's
  // exception, abandoning every later job's result (and, with handles
  // dropped mid-batch, leaving nothing to observe the remaining jobs with).
  // A bad pair must now fail only its own entry; siblings complete, the
  // worker pool drains, and the engine stays usable afterwards.
  const auto good = gen_uniform_random<double>(200, 200, 5.0, 1.0, 230);
  const auto a_bad = gen_uniform_random<double>(50, 60, 3.0, 1.0, 231);
  std::vector<std::pair<Csr<double>, Csr<double>>> pairs;
  pairs.emplace_back(good, good);
  pairs.emplace_back(a_bad, a_bad);  // 60 cols vs 50 rows: dimension mismatch
  pairs.emplace_back(good, good);

  EngineConfig ec;
  ec.workers = 2;
  Engine<double> engine(ec);
  const auto results = engine.multiply_batch(pairs);

  ASSERT_EQ(results.size(), 3u);
  EXPECT_FALSE(results[0].failed());
  ASSERT_TRUE(results[1].failed());
  EXPECT_THROW(std::rethrow_exception(results[1].error),
               std::invalid_argument);
  EXPECT_FALSE(results[2].failed());
  EXPECT_TRUE(results[0].c.equals_exact(multiply(good, good)));
  EXPECT_TRUE(results[2].c.equals_exact(results[0].c));

  EXPECT_EQ(engine.stats().jobs_failed, 1u);
  EXPECT_EQ(engine.stats().jobs_completed, 3u);
  // Not wedged: new work still runs and wait_all() returns.
  auto h = engine.submit(good, good);
  EXPECT_TRUE(h.result().c.equals_exact(results[0].c));
  engine.wait_all();
  EXPECT_EQ(engine.metrics().jobs, 3u);  // failed job excluded from metrics
}

TEST(Engine, CacheAndArenaCanBeDisabled) {
  const auto a = gen_uniform_random<double>(200, 200, 5.0, 1.0, 81);
  EngineConfig ec;
  ec.use_plan_cache = false;
  ec.use_pool_arena = false;
  Engine<double> engine(ec);
  auto h1 = engine.submit(a, a);
  auto h2 = engine.submit(a, a);
  EXPECT_TRUE(h1.result().c.equals_exact(h2.result().c));
  EXPECT_FALSE(h2.result().plan_hit);
  EXPECT_EQ(engine.plan_counters().hits + engine.plan_counters().misses, 0u);
  EXPECT_EQ(engine.arena_counters().acquires, 0u);
}

TEST(Engine, DestructorDrainsQueuedJobsBeforeStopping) {
  // More jobs than workers, handles kept: destruction must run the whole
  // queue (the documented drain contract), not abandon queued jobs.
  const auto a = gen_uniform_random<double>(150, 150, 5.0, 1.0, 82);
  constexpr int kJobs = 12;
  std::vector<JobHandle<double>> handles;
  handles.reserve(kJobs);
  {
    EngineConfig ec;
    ec.workers = 1;
    Engine<double> engine(ec);
    for (int i = 0; i < kJobs; ++i) handles.push_back(engine.submit(a, a));
    // No wait: the destructor races a mostly-full queue.
  }
  for (auto& h : handles) {
    ASSERT_TRUE(h.valid());
    EXPECT_TRUE(h.ready());  // drained, not dropped
    EXPECT_FALSE(h.result().failed());
  }
  const auto direct = multiply(a, a);
  for (auto& h : handles) EXPECT_TRUE(h.result().c.equals_exact(direct));
}

TEST(Engine, AbandonedHandlesNeitherLeakNorBlockShutdown) {
  // A caller that drops its handle before calling result() must not wedge
  // the engine or leak the job state (the worker's shared_ptr reference
  // dies with completion), and the destructor must still drain cleanly
  // when abandoned jobs are queued.
  const auto a = gen_uniform_random<double>(150, 150, 5.0, 1.0, 83);
  EngineConfig ec;
  ec.workers = 2;
  {
    Engine<double> engine(ec);
    for (int i = 0; i < 6; ++i) {
      auto h = engine.submit(a, a);
      static_cast<void>(h);  // abandoned immediately, possibly still queued
    }
    auto kept = engine.submit(a, a);
    EXPECT_TRUE(kept.result().c.equals_exact(multiply(a, a)));
    engine.wait_all();
    EXPECT_EQ(engine.stats().jobs_completed, 7u);
    EXPECT_EQ(engine.stats().jobs_failed, 0u);
  }  // destructor runs with every handle but `kept` long abandoned
}

TEST(Engine, CompletionCallbackRunsBeforeResultPublication) {
  const auto a = gen_uniform_random<double>(150, 150, 5.0, 1.0, 84);
  EngineConfig ec;
  ec.workers = 2;
  Engine<double> engine(ec);
  std::atomic<int> called{0};
  std::vector<JobHandle<double>> handles;
  for (int i = 0; i < 5; ++i) {
    handles.push_back(
        engine.submit(a, a, Config{}, [&called](JobResult<double>& r) {
          EXPECT_FALSE(r.failed());
          called.fetch_add(1, std::memory_order_relaxed);  // mo: count only,
          // ordering comes from the handle publication each wait() observes.
        }));
  }
  for (auto& h : handles) h.wait();
  // The hook fires before the handle's result is published, so once every
  // wait() returned, every callback has run exactly once.
  EXPECT_EQ(called.load(std::memory_order_relaxed), 5);  // mo: see above
  for (auto& h : handles) EXPECT_FALSE(h.result().failed());
}

TEST(Engine, CompletionCallbackFiresOnFailedJobs) {
  const auto a = gen_uniform_random<double>(60, 60, 4.0, 1.0, 85);
  const auto bad = gen_uniform_random<double>(42, 42, 4.0, 1.0, 86);
  EngineConfig ec;
  ec.workers = 1;
  Engine<double> engine(ec);
  std::atomic<bool> saw_failure{false};
  auto h = engine.submit(  // 60 columns vs 42 rows: dimension mismatch
      a, bad, Config{}, [&saw_failure](JobResult<double>& r) {
        saw_failure.store(r.failed(), std::memory_order_relaxed);  // mo:
        // flag only, read after wait() synchronises with completion.
      });
  h.wait();
  EXPECT_TRUE(saw_failure.load(std::memory_order_relaxed));  // mo: see above
  EXPECT_THROW(static_cast<void>(h.result()), std::invalid_argument);
  // The engine keeps serving after a failed job with a callback attached.
  auto ok = engine.submit(a, a);
  EXPECT_TRUE(ok.result().c.equals_exact(multiply(a, a)));
}

TEST(Engine, QueueDepthAndInFlightIntrospection) {
  const auto a = gen_uniform_random<double>(150, 150, 5.0, 1.0, 87);
  EngineConfig ec;
  ec.workers = 1;
  Engine<double> engine(ec);
  EXPECT_EQ(engine.queue_depth(), 0u);
  EXPECT_EQ(engine.in_flight(), 0u);

  // Park the lone worker inside the first job's completion callback: the
  // counters then read deterministically — the gated job is in flight and
  // everything behind it is queued.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::vector<JobHandle<double>> handles;
  handles.push_back(engine.submit(
      a, a, Config{}, [gate](JobResult<double>&) { gate.wait(); }));
  for (int i = 0; i < 7; ++i) handles.push_back(engine.submit(a, a));

  while (engine.queue_depth() != 7) std::this_thread::yield();
  EXPECT_EQ(engine.in_flight(), 8u);  // 1 executing + 7 queued

  release.set_value();
  engine.wait_all();
  EXPECT_EQ(engine.queue_depth(), 0u);
  EXPECT_EQ(engine.in_flight(), 0u);
  const auto direct = multiply(a, a);
  for (auto& h : handles) EXPECT_TRUE(h.result().c.equals_exact(direct));
}

// --- Background re-tune ---------------------------------------------------

/// Quarter-grid values: regrouping partial sums (the only thing tuned
/// parameters change) stays exact in float, so any tuning schedule must
/// produce bit-identical output.
void quantize(Csr<float>& m) {
  for (auto& v : m.values) v = std::round(v * 4.0f) / 4.0f + 0.25f;
}

/// The background tuner thread must land on exactly the plan the inline
/// feedback path computes: same measured product count in, same full-grid
/// ranking out — only the thread that runs it differs.
TEST(Engine, BackgroundRetuneMatchesInlineFeedbackRefinement) {
  auto a = gen_powerlaw<float>(600, 600, 10.0, 1.3, 200, 21);
  quantize(a);
  std::vector<std::pair<Csr<float>, Csr<float>>> pairs(3, {a, a});

  EngineConfig sync_cfg;
  sync_cfg.workers = 1;
  sync_cfg.tuning = tune::TuningMode::kFeedback;
  Engine<float> sync_engine(sync_cfg);
  (void)sync_engine.multiply_batch(pairs);       // cold + inline re-rank
  const auto sync_warm = sync_engine.multiply_batch(pairs);

  EngineConfig bg_cfg = sync_cfg;
  bg_cfg.background_retune = true;
  Engine<float> bg_engine(bg_cfg);
  const auto bg_cold = bg_engine.multiply_batch(pairs);
  bg_engine.wait_background_tunes();
  const auto bg_warm = bg_engine.multiply_batch(pairs);

  ASSERT_EQ(bg_warm.size(), sync_warm.size());
  for (std::size_t i = 0; i < bg_warm.size(); ++i) {
    ASSERT_FALSE(bg_warm[i].failed());
    EXPECT_TRUE(bg_warm[i].tuned.valid);
    EXPECT_EQ(bg_warm[i].tuned, sync_warm[i].tuned) << "job " << i;
    EXPECT_TRUE(bg_warm[i].c.equals_exact(sync_warm[i].c)) << "job " << i;
    // The cold pass already computed — with the predictor alone — and its
    // output must match too (tuning only regroups work).
    ASSERT_FALSE(bg_cold[i].failed());
    EXPECT_TRUE(bg_cold[i].c.equals_exact(sync_warm[i].c)) << "job " << i;
  }
  EXPECT_EQ(bg_engine.stats().cold_tunes, 1u);
  EXPECT_EQ(bg_engine.stats().bg_tunes, 1u);
  EXPECT_EQ(bg_engine.metrics().counters.bg_tunes, 1u);
  EXPECT_EQ(sync_engine.stats().bg_tunes, 0u);
}

/// Race battery: background re-tunes swapping into the plan cache while
/// live submissions keep arriving must never disturb results — 1-worker
/// and 4-worker engines agree bit-for-bit on every job regardless of when
/// each upgrade lands relative to each dispatch.
TEST(Engine, BackgroundRetuneRacingSubmissionsStaysBitIdentical) {
  std::vector<Csr<float>> mats;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    mats.push_back(gen_powerlaw<float>(400, 400, 8.0, 1.4, 150, 31 + seed));
    quantize(mats.back());
  }
  std::vector<std::pair<Csr<float>, Csr<float>>> pairs;
  for (int round = 0; round < 6; ++round)       // repeats interleave cold,
    for (const auto& m : mats) pairs.emplace_back(m, m);  // racing, warm

  std::vector<std::vector<Csr<float>>> outs;
  for (const unsigned workers : {1u, 4u}) {
    EngineConfig ec;
    ec.workers = workers;
    ec.tuning = tune::TuningMode::kFeedback;
    ec.background_retune = true;
    Engine<float> engine(ec);
    std::vector<JobHandle<float>> handles;
    handles.reserve(pairs.size());
    for (const auto& [x, y] : pairs)  // no waiting between submissions
      handles.push_back(engine.submit(x, y));
    outs.emplace_back();
    for (auto& h : handles) outs.back().push_back(h.result().c);
    engine.wait_background_tunes();
    // One refinement per fingerprint is the steady state; concurrent cold
    // sightings of the same fingerprint may legitimately add extras (the
    // upgrade is idempotent — last full-grid ranking wins and they agree).
    EXPECT_GE(engine.stats().bg_tunes, mats.size());
  }
  ASSERT_EQ(outs[0].size(), outs[1].size());
  for (std::size_t i = 0; i < outs[0].size(); ++i)
    EXPECT_TRUE(outs[0][i].equals_exact(outs[1][i])) << "job " << i;
}

/// background_retune without a plan cache has nowhere to publish a
/// refinement; the engine must fall back to the inline feedback path
/// rather than silently dropping tuning.
TEST(Engine, BackgroundRetuneWithoutPlanCacheFallsBackInline) {
  auto a = gen_powerlaw<float>(400, 400, 8.0, 1.4, 150, 41);
  quantize(a);
  EngineConfig ec;
  ec.workers = 1;
  ec.tuning = tune::TuningMode::kFeedback;
  ec.background_retune = true;
  ec.use_plan_cache = false;
  Engine<float> engine(ec);
  const auto r1 = engine.submit(a, a).result();
  engine.wait_background_tunes();
  EXPECT_EQ(engine.stats().bg_tunes, 0u);
  EXPECT_TRUE(r1.tuned.valid);
  EXPECT_TRUE(r1.c.equals_exact(multiply(a, a)));
}

/// Regression: idle workers nudge the background tuner, and they used to
/// probe bg_thread_.joinable() to decide whether one exists — racing the
/// destructor's join() the moment the queue drained. The probe now reads
/// bg_enabled_ (const after construction). Rapid construct/submit/destroy
/// cycles with re-tuning on must shut down cleanly (TSan covers the race).
TEST(Engine, RapidShutdownWithBackgroundRetuneIsRaceFree) {
  auto a = gen_powerlaw<float>(200, 200, 6.0, 1.4, 80, 51);
  quantize(a);
  for (int round = 0; round < 8; ++round) {
    EngineConfig ec;
    ec.workers = 2;
    ec.tuning = tune::TuningMode::kFeedback;
    ec.background_retune = true;
    Engine<float> engine(ec);
    auto h1 = engine.submit(a, a);
    auto h2 = engine.submit(a, a);
    EXPECT_FALSE(h1.result().failed());
    (void)h2;  // abandoned: the destructor must drain and join regardless
  }
}

}  // namespace
}  // namespace acs::runtime
