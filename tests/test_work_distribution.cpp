#include "core/work_distribution.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace acs {
namespace {

std::vector<offset_t> counts(std::initializer_list<offset_t> c) { return c; }

TEST(WorkDistribution, SizeIsTotalCount) {
  sim::MetricCounters m;
  const auto c = counts({5, 3, 4, 4, 5, 3});  // the paper's Fig. 3 example
  WorkDistribution wd(c, m);
  EXPECT_EQ(wd.size(), 24);
}

TEST(WorkDistribution, PaperFigure3FirstDraw) {
  // Fig. 3(b): taking 10 elements must cover entries 0 (5 products),
  // 1 (3 products) and 2 (first 2 of 4 products, from the row's end).
  sim::MetricCounters m;
  const auto c = counts({5, 3, 4, 4, 5, 3});
  WorkDistribution wd(c, m);
  std::vector<WorkDistribution::Item> items;
  wd.receive(10, items, m);
  ASSERT_EQ(items.size(), 10u);
  // Entry 0 contributes offsets 4..0 (reverse), entry 1 offsets 2..0,
  // entry 2 offsets 3,2 (the tail of its 4 products).
  EXPECT_EQ(items[0].a_idx, 0);
  EXPECT_EQ(items[0].b_off, 4);
  EXPECT_EQ(items[4].a_idx, 0);
  EXPECT_EQ(items[4].b_off, 0);
  EXPECT_EQ(items[5].a_idx, 1);
  EXPECT_EQ(items[5].b_off, 2);
  EXPECT_EQ(items[8].a_idx, 2);
  EXPECT_EQ(items[8].b_off, 3);
  EXPECT_EQ(items[9].a_idx, 2);
  EXPECT_EQ(items[9].b_off, 2);
  // Fig. 3(c): 14 elements remain.
  EXPECT_EQ(wd.size(), 14);
}

TEST(WorkDistribution, SplitRowActsShorterNextIteration) {
  // After a partial draw, the next draw of the same entry must continue
  // with the remaining (lower) offsets.
  sim::MetricCounters m;
  const auto c = counts({6});
  WorkDistribution wd(c, m);
  std::vector<WorkDistribution::Item> items;
  wd.receive(4, items, m);
  EXPECT_EQ(items.back().b_off, 2);
  items.clear();
  wd.receive(2, items, m);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].b_off, 1);
  EXPECT_EQ(items[1].b_off, 0);
  EXPECT_EQ(wd.size(), 0);
}

TEST(WorkDistribution, EveryProductDeliveredExactlyOnce) {
  sim::MetricCounters m;
  const auto c = counts({3, 0, 7, 1, 0, 2});
  WorkDistribution wd(c, m);
  std::vector<std::vector<bool>> seen;
  for (offset_t n : c) seen.emplace_back(static_cast<std::size_t>(n), false);
  std::vector<WorkDistribution::Item> items;
  while (wd.size() > 0) {
    items.clear();
    wd.receive(std::min<offset_t>(4, wd.size()), items, m);
    for (auto [a, b] : items) {
      ASSERT_FALSE(seen[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)]);
      seen[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = true;
    }
  }
  for (const auto& row : seen)
    for (bool s : row) EXPECT_TRUE(s);
}

TEST(WorkDistribution, ZeroCountEntriesAreSkipped) {
  sim::MetricCounters m;
  const auto c = counts({0, 0, 2, 0});
  WorkDistribution wd(c, m);
  std::vector<WorkDistribution::Item> items;
  wd.receive(2, items, m);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].a_idx, 2);
  EXPECT_EQ(items[1].a_idx, 2);
}

TEST(WorkDistribution, FastForwardMatchesReceive) {
  // Restart contract: fast_forward(k) must leave the distribution in the
  // same state as receive(k).
  sim::MetricCounters m;
  const auto c = counts({4, 2, 6, 1});
  WorkDistribution wd1(c, m), wd2(c, m);
  std::vector<WorkDistribution::Item> items;
  wd1.receive(7, items, m);
  wd2.fast_forward(7, m);
  EXPECT_EQ(wd1.size(), wd2.size());
  std::vector<WorkDistribution::Item> i1, i2;
  wd1.receive(wd1.size(), i1, m);
  wd2.receive(wd2.size(), i2, m);
  ASSERT_EQ(i1.size(), i2.size());
  for (std::size_t i = 0; i < i1.size(); ++i) {
    EXPECT_EQ(i1[i].a_idx, i2[i].a_idx);
    EXPECT_EQ(i1[i].b_off, i2[i].b_off);
  }
}

TEST(WorkDistribution, ConsumedTracksTotal) {
  sim::MetricCounters m;
  const auto c = counts({5, 5});
  WorkDistribution wd(c, m);
  std::vector<WorkDistribution::Item> items;
  wd.fast_forward(3, m);
  wd.receive(4, items, m);
  EXPECT_EQ(wd.consumed(), 7);
  EXPECT_EQ(wd.size(), 3);
}

TEST(WorkDistribution, EmptyDistribution) {
  sim::MetricCounters m;
  const std::vector<offset_t> c;
  WorkDistribution wd(c, m);
  EXPECT_EQ(wd.size(), 0);
}

}  // namespace
}  // namespace acs
