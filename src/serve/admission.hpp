#pragma once
/// \file admission.hpp
/// Cost-model-driven admission control for the serving layer. The paper's
/// adaptivity picks an execution strategy per matrix; Ocean-style cheap
/// estimation extends the same idea to *traffic*: the tuner's cost
/// predictor (`tune::predict_makespan_s`, a pure function of sparsity
/// structure) prices every request up front, and a request whose predicted
/// completion — backlog included — blows its deadline is rejected with a
/// structured `AdmissionDecision` instead of timing out in queue.
///
/// The model runs entirely in *virtual time*: arrivals carry trace
/// timestamps, service times are predicted simulated seconds, and the
/// backlog is a bank of modeled executors. Nothing reads a host clock or
/// any execution state, so for a fixed arrival trace the decision stream
/// is byte-identical no matter how many engine workers actually run the
/// admitted jobs (property-tested in tests/test_serve.cpp; DESIGN.md §11).

#include <cstddef>
#include <set>
#include <vector>

namespace acs::serve {

/// Why a submission was admitted or refused. Values beyond the model's own
/// verdicts (`kShedMemory`) are attached later by the server when
/// backpressure drops an already-admitted job.
enum class AdmissionOutcome {
  kAdmitted = 0,        ///< queued for dispatch; deadline predicted to hold
  kRejectedDeadline,    ///< predicted finish (backlog + cost) past deadline
  kRejectedQuota,       ///< tenant token bucket empty
  kRejectedQueueFull,   ///< modeled backlog at the queue cap
  kShedMemory,          ///< admitted, later dropped under the arena ceiling
};

[[nodiscard]] const char* to_string(AdmissionOutcome outcome);

/// The structured verdict returned to the submitter. All quantities are
/// virtual/simulated seconds from the deterministic admission model.
struct AdmissionDecision {
  AdmissionOutcome outcome = AdmissionOutcome::kAdmitted;
  /// True when the request will run with the untuned default plan because
  /// its fingerprint's tuned plan is still cold (graceful degradation —
  /// serve now rather than queue behind a tune).
  bool degraded_plan = false;
  /// Predicted device makespan of this job (tune::predict_makespan_s,
  /// scaled by the configured safety factor).
  double predicted_cost_s = 0.0;
  /// Predicted queueing delay ahead of this job at admission time.
  double predicted_wait_s = 0.0;
  /// Predicted absolute (virtual) completion time.
  double predicted_finish_s = 0.0;
  /// Admitted-but-unfinished jobs the model sees at arrival.
  std::size_t backlog_jobs = 0;

  [[nodiscard]] bool admitted() const {
    return outcome == AdmissionOutcome::kAdmitted;
  }

  friend bool operator==(const AdmissionDecision&,
                         const AdmissionDecision&) = default;
};

struct AdmissionConfig {
  /// Modeled executors the backlog drains on. Fixed at configuration time
  /// (never derived from live state) so decisions stay independent of the
  /// real worker count.
  unsigned executors = 1;
  /// Multiplier on predicted costs before the deadline test; > 1 buys
  /// headroom against predictor underestimates and fair-scheduling
  /// reordering.
  double deadline_safety = 1.0;
  /// Reject when the modeled backlog holds this many admitted jobs
  /// (0 = unlimited).
  std::size_t max_queue_jobs = 0;
};

/// Deterministic virtual-time admission model. Not thread-safe: the server
/// serializes calls under its planner mutex (admission is defined in
/// arrival order, so there is nothing to parallelize).
class AdmissionModel {
 public:
  explicit AdmissionModel(AdmissionConfig cfg = {});

  /// Evaluate one submission and, when it is admitted, commit its cost to
  /// the modeled backlog. `deadline_s` is absolute virtual time
  /// (infinity = no deadline); `predicted_cost_s` is the unscaled
  /// predictor makespan. Arrivals must be non-decreasing (the server
  /// clamps them).
  AdmissionDecision evaluate(double arrival_s, double deadline_s,
                             double predicted_cost_s);

  /// Admitted jobs the model considers unfinished at `now_s`.
  [[nodiscard]] std::size_t backlog_jobs(double now_s);

 private:
  AdmissionConfig cfg_;
  /// Virtual time each modeled executor becomes free.
  std::vector<double> free_s_;
  /// Modeled finish times of admitted jobs (pruned as the clock advances).
  std::multiset<double> finishes_;
};

}  // namespace acs::serve
