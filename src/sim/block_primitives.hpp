#pragma once
/// \file block_primitives.hpp
/// Block-wide cooperative primitives, the CUB analogues the paper's kernels
/// are built on: inclusive/exclusive prefix scans, max-scans, a stable LSD
/// block radix sort, and the blocked→striped layout exchange used by the
/// work distribution (Alg. 2, line 25). Each primitive executes the exact
/// data movement the GPU version would and charges its work to a
/// MetricCounters set so the cost model sees the same work the hardware
/// would (e.g. radix-sort cost proportional to the sorted bit width — the
/// basis of the paper's dynamic bit-reduction optimization).

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <vector>

#include "sim/metrics.hpp"

namespace acs::sim {

/// In-place inclusive prefix scan with an arbitrary associative operator.
template <class T, class Op = std::plus<T>>
void inclusive_scan(std::span<T> data, MetricCounters& m, Op op = {}) {
  for (std::size_t i = 1; i < data.size(); ++i)
    data[i] = op(data[i - 1], data[i]);
  m.scan_elements += data.size();
}

/// In-place exclusive prefix sum; returns the total.
template <class T>
T exclusive_sum(std::span<T> data, MetricCounters& m) {
  T running{};
  for (auto& x : data) {
    const T v = x;
    x = running;
    running += v;
  }
  m.scan_elements += data.size();
  return running;
}

/// In-place inclusive max-scan (Alg. 2, line 24).
template <class T>
void inclusive_max_scan(std::span<T> data, MetricCounters& m) {
  for (std::size_t i = 1; i < data.size(); ++i)
    data[i] = std::max(data[i - 1], data[i]);
  m.scan_elements += data.size();
}

/// Number of 4-bit radix passes needed to sort keys of `bits` significant
/// bits (the quantity the paper's bit reduction minimizes).
constexpr int radix_passes(int bits) { return (bits + 3) / 4; }

/// Stable LSD radix sort of (key, payload) pairs over the low `bits` bits of
/// the keys. Matches CUB's BlockRadixSort semantics: stable, ascending,
/// work ∝ #keys × #passes.
template <class K, class V>
void block_radix_sort(std::span<K> keys, std::span<V> payload, int bits,
                      MetricCounters& m) {
  const std::size_t n = keys.size();
  const int passes = radix_passes(bits);
  m.sort_pass_elements += static_cast<std::uint64_t>(n) *
                          static_cast<std::uint64_t>(std::max(passes, 0));
  if (n <= 1 || passes <= 0) return;

  std::vector<K> kbuf(n);
  std::vector<V> vbuf(n);
  K* ksrc = keys.data();
  V* vsrc = payload.data();
  K* kdst = kbuf.data();
  V* vdst = vbuf.data();

  for (int p = 0; p < passes; ++p) {
    const int shift = p * 4;
    std::size_t count[16] = {};
    for (std::size_t i = 0; i < n; ++i)
      count[(static_cast<std::uint64_t>(ksrc[i]) >> shift) & 0xF]++;
    std::size_t offset[16];
    std::size_t run = 0;
    for (int d = 0; d < 16; ++d) {
      offset[d] = run;
      run += count[d];
    }
    for (std::size_t i = 0; i < n; ++i) {
      const auto d = (static_cast<std::uint64_t>(ksrc[i]) >> shift) & 0xF;
      kdst[offset[d]] = ksrc[i];
      vdst[offset[d]] = vsrc[i];
      ++offset[d];
    }
    std::swap(ksrc, kdst);
    std::swap(vsrc, vdst);
  }
  if (ksrc != keys.data()) {
    std::copy(ksrc, ksrc + n, keys.data());
    std::copy(vsrc, vsrc + n, payload.data());
  }
}

/// Blocked→striped exchange: element (thread t, slot i) in blocked layout
/// moves to position t + i*THREADS. Used by the work distribution so that
/// consecutive threads load consecutive elements of B (coalescing).
/// data.size() must be a multiple of `threads` (as on the GPU, where the
/// exchange buffer is sized THREADS × ITEMS and padded).
template <class T>
void blocked_to_striped(std::span<T> data, int threads, MetricCounters& m) {
  const std::size_t n = data.size();
  if (n % static_cast<std::size_t>(threads) != 0)
    throw std::invalid_argument("blocked_to_striped: size not a multiple of thread count");
  const std::size_t per_thread = n / static_cast<std::size_t>(threads);
  std::vector<T> tmp(n);
  for (std::size_t src = 0; src < n; ++src) {
    const std::size_t t = src / per_thread;
    const std::size_t slot = src % per_thread;
    tmp[t + slot * static_cast<std::size_t>(threads)] = data[src];
  }
  std::copy(tmp.begin(), tmp.end(), data.begin());
  m.scratch_ops += 2 * n;
}

/// Significant bits of a non-negative value (0 → 0 bits).
constexpr int bits_for(std::uint64_t max_value) {
  int b = 0;
  while (max_value > 0) {
    ++b;
    max_value >>= 1;
  }
  return b;
}

}  // namespace acs::sim
