file(REMOVE_RECURSE
  "libacs_core.a"
)
