#include "matrix/ops.hpp"

#include <cmath>
#include <stdexcept>

#include "matrix/transpose.hpp"

namespace acs {
namespace {

template <class T>
void require_same_shape(const Csr<T>& a, const Csr<T>& b, const char* op) {
  if (a.rows != b.rows || a.cols != b.cols)
    throw std::invalid_argument(std::string(op) + ": shape mismatch");
}

}  // namespace

template <class T>
Csr<T> add(const Csr<T>& a, const Csr<T>& b, T alpha, T beta) {
  require_same_shape(a, b, "add");
  Csr<T> c;
  c.rows = a.rows;
  c.cols = a.cols;
  c.row_ptr.assign(usize(a.rows) + 1, 0);
  c.col_idx.reserve(static_cast<std::size_t>(a.nnz() + b.nnz()));
  c.values.reserve(static_cast<std::size_t>(a.nnz() + b.nnz()));
  for (index_t r = 0; r < a.rows; ++r) {
    index_t ka = a.row_ptr[usize(r)], kb = b.row_ptr[usize(r)];
    const index_t ea = a.row_ptr[usize(r) + 1], eb = b.row_ptr[usize(r) + 1];
    while (ka < ea || kb < eb) {
      index_t col;
      T val;
      if (kb >= eb || (ka < ea && a.col_idx[usize(ka)] < b.col_idx[usize(kb)])) {
        col = a.col_idx[usize(ka)];
        val = alpha * a.values[usize(ka++)];
      } else if (ka >= ea || b.col_idx[usize(kb)] < a.col_idx[usize(ka)]) {
        col = b.col_idx[usize(kb)];
        val = beta * b.values[usize(kb++)];
      } else {
        col = a.col_idx[usize(ka)];
        val = alpha * a.values[usize(ka++)] + beta * b.values[usize(kb++)];
      }
      c.col_idx.push_back(col);
      c.values.push_back(val);
    }
    c.row_ptr[usize(r) + 1] = static_cast<index_t>(c.col_idx.size());
  }
  return c;
}

template <class T>
void scale(Csr<T>& m, T factor) {
  for (auto& v : m.values) v *= factor;
}

template <class T>
Csr<T> hadamard(const Csr<T>& a, const Csr<T>& b) {
  require_same_shape(a, b, "hadamard");
  Csr<T> c;
  c.rows = a.rows;
  c.cols = a.cols;
  c.row_ptr.assign(usize(a.rows) + 1, 0);
  for (index_t r = 0; r < a.rows; ++r) {
    index_t ka = a.row_ptr[usize(r)], kb = b.row_ptr[usize(r)];
    while (ka < a.row_ptr[usize(r) + 1] && kb < b.row_ptr[usize(r) + 1]) {
      if (a.col_idx[usize(ka)] < b.col_idx[usize(kb)]) {
        ++ka;
      } else if (b.col_idx[usize(kb)] < a.col_idx[usize(ka)]) {
        ++kb;
      } else {
        c.col_idx.push_back(a.col_idx[usize(ka)]);
        c.values.push_back(a.values[usize(ka)] * b.values[usize(kb)]);
        ++ka;
        ++kb;
      }
    }
    c.row_ptr[usize(r) + 1] = static_cast<index_t>(c.col_idx.size());
  }
  return c;
}

template <class T>
Csr<T> structural_mask(const Csr<T>& m, const Csr<T>& mask) {
  require_same_shape(m, mask, "structural_mask");
  Csr<T> c;
  c.rows = m.rows;
  c.cols = m.cols;
  c.row_ptr.assign(usize(m.rows) + 1, 0);
  for (index_t r = 0; r < m.rows; ++r) {
    index_t km = m.row_ptr[usize(r)], kk = mask.row_ptr[usize(r)];
    while (km < m.row_ptr[usize(r) + 1] && kk < mask.row_ptr[usize(r) + 1]) {
      if (m.col_idx[usize(km)] < mask.col_idx[usize(kk)]) {
        ++km;
      } else if (mask.col_idx[usize(kk)] < m.col_idx[usize(km)]) {
        ++kk;
      } else {
        c.col_idx.push_back(m.col_idx[usize(km)]);
        c.values.push_back(m.values[usize(km)]);
        ++km;
        ++kk;
      }
    }
    c.row_ptr[usize(r) + 1] = static_cast<index_t>(c.col_idx.size());
  }
  return c;
}

template <class T>
double frobenius_distance(const Csr<T>& a, const Csr<T>& b) {
  require_same_shape(a, b, "frobenius_distance");
  double sum = 0.0;
  for (index_t r = 0; r < a.rows; ++r) {
    index_t ka = a.row_ptr[usize(r)], kb = b.row_ptr[usize(r)];
    const index_t ea = a.row_ptr[usize(r) + 1], eb = b.row_ptr[usize(r) + 1];
    while (ka < ea || kb < eb) {
      double d;
      if (kb >= eb || (ka < ea && a.col_idx[usize(ka)] < b.col_idx[usize(kb)])) {
        d = static_cast<double>(a.values[usize(ka++)]);
      } else if (ka >= ea || b.col_idx[usize(kb)] < a.col_idx[usize(ka)]) {
        d = -static_cast<double>(b.values[usize(kb++)]);
      } else {
        d = static_cast<double>(a.values[usize(ka++)]) -
            static_cast<double>(b.values[usize(kb++)]);
      }
      sum += d * d;
    }
  }
  return std::sqrt(sum);
}

template <class T>
std::vector<T> diagonal(const Csr<T>& m) {
  std::vector<T> d(usize(std::min(m.rows, m.cols)), T{});
  for (index_t r = 0; r < static_cast<index_t>(d.size()); ++r)
    for (index_t k = m.row_ptr[usize(r)]; k < m.row_ptr[usize(r) + 1]; ++k)
      if (m.col_idx[usize(k)] == r) d[usize(r)] = m.values[usize(k)];
  return d;
}

template <class T>
T value_sum(const Csr<T>& m) {
  T s{};
  for (const T& v : m.values) s += v;
  return s;
}

template <class T>
bool is_symmetric(const Csr<T>& m) {
  if (m.rows != m.cols) return false;
  return m.equals_exact(transpose(m));
}

template Csr<float> add(const Csr<float>&, const Csr<float>&, float, float);
template Csr<double> add(const Csr<double>&, const Csr<double>&, double, double);
template void scale(Csr<float>&, float);
template void scale(Csr<double>&, double);
template Csr<float> hadamard(const Csr<float>&, const Csr<float>&);
template Csr<double> hadamard(const Csr<double>&, const Csr<double>&);
template Csr<float> structural_mask(const Csr<float>&, const Csr<float>&);
template Csr<double> structural_mask(const Csr<double>&, const Csr<double>&);
template double frobenius_distance(const Csr<float>&, const Csr<float>&);
template double frobenius_distance(const Csr<double>&, const Csr<double>&);
template std::vector<float> diagonal(const Csr<float>&);
template std::vector<double> diagonal(const Csr<double>&);
template float value_sum(const Csr<float>&);
template double value_sum(const Csr<double>&);
template bool is_symmetric(const Csr<float>&);
template bool is_symmetric(const Csr<double>&);

}  // namespace acs
