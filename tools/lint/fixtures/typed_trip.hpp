#pragma once
// Fixture: raw int/long used for matrix index quantities in a public
// header — the rule must flag all four declarations.
struct BadShape {
  int rows = 0;
  long nnz = 0;
};

int count_row(int row);
void walk(long total_nnz);
