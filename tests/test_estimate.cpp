/// \file test_estimate.cpp
/// src/estimate: sampling-based size estimation. The property suite pins the
/// guaranteed bracket (lower <= exact symbolic count <= upper) across the
/// generator zoo and both value widths; the sample suite pins the exact
/// window arithmetic against a brute-force reimplementation, including the
/// partial-final-window and nnz < min_samples paths this PR fixed; the
/// planner suite covers saturation boundaries and the restart-count
/// regression the estimator exists for.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "core/acspgemm.hpp"
#include "core/chunk.hpp"
#include "estimate/estimator.hpp"
#include "matrix/generators.hpp"
#include "matrix/stats.hpp"

namespace acs {
namespace {

template <class T>
std::vector<Csr<T>> generator_zoo() {
  std::vector<Csr<T>> zoo;
  zoo.push_back(gen_uniform_random<T>(300, 300, 6.0, 2.0, 21));
  zoo.push_back(gen_powerlaw<T>(400, 400, 5.0, 1.6, 120, 22));
  zoo.push_back(gen_block_dense<T>(192, 192, 8, 2, 23));
  zoo.push_back(gen_stencil_2d<T>(20, 20, 24));
  zoo.push_back(gen_uniform_random<T>(50, 50, 1.0, 0.5, 25));  // sparse tail
  Csr<T> empty;
  empty.rows = 10;
  empty.cols = 10;
  empty.row_ptr.assign(11, 0);
  zoo.push_back(empty);  // empty edge
  return zoo;
}

template <class T>
void expect_bounds_bracket_exact() {
  for (const auto& m : generator_zoo<T>()) {
    const auto exact =
        static_cast<double>(intermediate_products(m, m));
    for (std::size_t stride : {std::size_t{1}, std::size_t{3},
                               std::size_t{8}, std::size_t{64}}) {
      const auto e = estimate::estimate_products(m, m, stride, 0);
      EXPECT_LE(e.lower, exact) << "stride " << stride;
      EXPECT_GE(e.upper, exact) << "stride " << stride;
      EXPECT_LE(e.lower, e.expected) << "stride " << stride;
      EXPECT_GE(e.upper, e.expected) << "stride " << stride;
      EXPECT_GE(e.conservative, e.expected) << "stride " << stride;
      EXPECT_LE(e.conservative, e.upper) << "stride " << stride;
      if (stride == 1) {
        EXPECT_TRUE(e.exact);
        EXPECT_DOUBLE_EQ(e.expected, exact);
        EXPECT_DOUBLE_EQ(e.conservative, exact);
      }
    }
  }
}

TEST(EstimateProperty, BoundsBracketExactCountDouble) {
  expect_bounds_bracket_exact<double>();
}

TEST(EstimateProperty, BoundsBracketExactCountFloat) {
  expect_bounds_bracket_exact<float>();
}

// Brute-force reimplementation of the window-weighted aggregates: window k
// covers [k*stride, min((k+1)*stride, nnz)). Every weight is derived
// independently of the production loop.
struct BruteAggregates {
  double expected = 0.0;
  double conservative = 0.0;
  std::size_t weight_total = 0;
};

template <class T>
BruteAggregates brute_force(const Csr<T>& a, const Csr<T>& b,
                            std::size_t stride) {
  BruteAggregates out;
  const auto nnz = static_cast<std::size_t>(a.nnz());
  std::vector<double> lens;
  for (std::size_t i = 0; i < nnz; i += stride)
    lens.push_back(static_cast<double>(b.row_length(a.col_idx[i])));
  for (std::size_t k = 0; k < lens.size(); ++k) {
    const std::size_t lo = k * stride;
    const std::size_t hi = std::min(lo + stride, nnz);
    const auto w = static_cast<double>(hi - lo);
    out.weight_total += hi - lo;
    out.expected += lens[k] * w;
    const double next = k + 1 < lens.size() ? lens[k + 1] : lens[k];
    out.conservative += std::max(lens[k], next) * w;
  }
  return out;
}

TEST(EstimateSample, WindowWeightsTileNnzExactly) {
  // 999 % 8 != 0: the final window is partial. Before this PR the tail was
  // extrapolated to a full stride (expected) or left uncharged
  // (conservative); both must now match the brute force exactly.
  const auto m = gen_powerlaw<double>(333, 333, 3.0, 1.5, 90, 31);
  ASSERT_NE(static_cast<std::size_t>(m.nnz()) % 8, 0u);
  for (std::size_t stride : {std::size_t{2}, std::size_t{5}, std::size_t{8},
                             std::size_t{17}}) {
    const auto s = estimate::sample_b_row_lengths(m, m, stride, 0);
    const auto ref = brute_force(m, m, stride);
    EXPECT_EQ(ref.weight_total, static_cast<std::size_t>(m.nnz()))
        << "stride " << stride;
    EXPECT_DOUBLE_EQ(s.expected, ref.expected) << "stride " << stride;
    // The raw conservative sum matches the brute force; the published
    // estimate additionally clamps into [expected, upper].
    EXPECT_DOUBLE_EQ(s.conservative, ref.conservative) << "stride " << stride;
    EXPECT_GE(s.conservative, s.expected) << "stride " << stride;
  }
}

TEST(EstimateSample, MinSamplesForcesExactPassOnSmallInputs) {
  const auto m = gen_uniform_random<double>(40, 40, 3.0, 1.0, 32);
  ASSERT_LT(static_cast<std::size_t>(m.nnz()), 512u);
  const auto s = estimate::sample_b_row_lengths(m, m, 8, 512);
  EXPECT_EQ(s.stride, 1u);
  EXPECT_TRUE(s.exact);
  EXPECT_EQ(s.sampled, static_cast<std::size_t>(m.nnz()));
  const auto e = estimate::products_from_sample(s);
  EXPECT_DOUBLE_EQ(e.expected,
                   static_cast<double>(intermediate_products(m, m)));
  EXPECT_DOUBLE_EQ(e.lower, e.upper);
}

TEST(EstimateSample, EmptyMatrixIsExactZero) {
  Csr<double> z;
  z.rows = 16;
  z.cols = 16;
  z.row_ptr.assign(17, 0);
  const auto s = estimate::sample_b_row_lengths(z, z, 8, 512);
  EXPECT_TRUE(s.exact);
  EXPECT_EQ(s.sampled, 0u);
  const auto e = estimate::products_from_sample(s);
  EXPECT_DOUBLE_EQ(e.expected, 0.0);
  EXPECT_DOUBLE_EQ(e.upper, 0.0);
}

TEST(EstimateSample, QuantileReadsSortedSample) {
  const auto m = gen_powerlaw<double>(500, 500, 4.0, 1.7, 150, 33);
  const auto s = estimate::sample_b_row_lengths(m, m, 4, 0);
  ASSERT_GT(s.sampled, 1u);
  EXPECT_EQ(s.quantile(0.0), s.b_lens.front());
  EXPECT_EQ(s.quantile(1.0), s.b_lens.back());
  EXPECT_GE(s.quantile(0.9), s.quantile(0.5));
  EXPECT_EQ(s.quantile(-3.0), s.b_lens.front());  // clamped
  EXPECT_EQ(s.quantile(7.0), s.b_lens.back());
}

TEST(EstimateSaturate, BoundaryValues) {
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  EXPECT_EQ(estimate::saturate_bytes(0.0), 0u);
  EXPECT_EQ(estimate::saturate_bytes(-1.0), 0u);
  EXPECT_EQ(estimate::saturate_bytes(std::nan("")), 0u);
  EXPECT_EQ(estimate::saturate_bytes(4096.5), 4096u);
  EXPECT_EQ(estimate::saturate_bytes(1e30), kMax);
  EXPECT_EQ(estimate::saturate_bytes(std::numeric_limits<double>::infinity()),
            kMax);
  EXPECT_EQ(estimate::saturate_bytes(static_cast<double>(kMax) * 2.0), kMax);
}

TEST(EstimateLayout, ChunkLayoutChargesHeadersPerCapacity) {
  estimate::PoolSizingParams p;
  p.entry_bytes = 16;
  p.chunk_header_bytes = 32;
  p.chunk_entry_capacity = 100;
  EXPECT_EQ(estimate::chunk_layout_bytes(0.0, p), 0u);
  // 50 entries: one partial chunk.
  EXPECT_EQ(estimate::chunk_layout_bytes(50.0, p), 50u * 16u + 32u);
  // 250 entries: three chunks (two full, one partial).
  EXPECT_EQ(estimate::chunk_layout_bytes(250.0, p), 250u * 16u + 3u * 32u);
  EXPECT_LE(estimate::chunk_layout_bytes(100.0, p),
            estimate::chunk_layout_bytes(101.0, p));
}

TEST(EstimateLayout, EntryCostMatchesChunkConstants) {
  // Satellite 2: one constexpr per-entry cost shared by the estimator's
  // default, the closed-form path, and the ESC-global baseline.
  EXPECT_EQ(estimate::PoolSizingParams{}.entry_bytes, kChunkEntryBytes<double>);
  static_assert(kChunkEntryBytes<double> == 2 * sizeof(index_t) + sizeof(double));
  static_assert(kChunkEntryBytes<float> == 2 * sizeof(index_t) + sizeof(float));
}

TEST(EstimatePlan, RecommendationBracketsAndFloors) {
  const auto m = gen_uniform_random<double>(800, 800, 7.0, 2.0, 41);
  estimate::PoolSizingParams p;
  p.lower_bound_bytes = 1 << 20;
  const auto plan = estimate::plan_pool_bytes(m, m, p);
  EXPECT_GE(plan.recommended_bytes, p.lower_bound_bytes);
  EXPECT_LE(plan.expected_bytes, plan.upper_bytes);
  EXPECT_GT(plan.upper_bytes, 0u);
}

// The tentpole acceptance gate in miniature: a mixed-pattern workload whose
// tight closed-form guess restarts on most cold jobs runs restart-free (or
// nearly so) when the sampled planner sizes the pool — with bit-identical
// output. The full 24-job version gates CI via bench_runtime_throughput
// --smoke.
TEST(EstimatePlan, SampledSizingCutsColdRestarts) {
  std::vector<Csr<double>> mats;
  mats.push_back(gen_stencil_2d<double>(32, 32, 11));
  mats.push_back(gen_powerlaw<double>(700, 700, 6.0, 1.6, 200, 12));
  mats.push_back(gen_uniform_random<double>(600, 600, 8.0, 2.0, 13));
  mats.push_back(gen_block_dense<double>(300, 300, 16, 3, 14));

  Config closed;  // deliberately tight, as in bench_runtime_throughput
  closed.pool_lower_bound_bytes = 8 << 10;
  closed.pool_estimate_factor = 0.02;
  Config sampled = closed;
  sampled.pool_sizing = PoolSizing::kSampled;

  int restarts_closed = 0, restarts_sampled = 0;
  for (const auto& m : mats) {
    SpgemmStats sc, ss;
    const auto c1 = multiply(m, m, closed, &sc);
    const auto c2 = multiply(m, m, sampled, &ss);
    restarts_closed += sc.restarts;
    restarts_sampled += ss.restarts;
    EXPECT_TRUE(c1.equals_exact(c2));
    EXPECT_EQ(ss.pool_estimate_bytes,
              estimate_chunk_pool_bytes(m, m, sampled));
  }
  EXPECT_GE(restarts_closed, 4);   // the tight guess really restarts
  EXPECT_LE(restarts_sampled, 1);  // the sampled plan essentially does not
}

TEST(EstimatePlan, SampledEstimateIsPureFunctionOfInput) {
  const auto m = gen_powerlaw<double>(900, 900, 5.0, 1.6, 250, 51);
  Config cfg;
  cfg.pool_sizing = PoolSizing::kSampled;
  const std::size_t first = estimate_chunk_pool_bytes(m, m, cfg);
  SpgemmStats stats;
  (void)multiply(m, m, cfg, &stats);  // running jobs must not perturb it
  EXPECT_EQ(estimate_chunk_pool_bytes(m, m, cfg), first);
  // Override and lower bound keep precedence over the sampled plan.
  cfg.pool_override_bytes = 4242;
  EXPECT_EQ(estimate_chunk_pool_bytes(m, m, cfg), 4242u);
  cfg.pool_override_bytes = 0;
  cfg.pool_lower_bound_bytes = first * 2;
  EXPECT_EQ(estimate_chunk_pool_bytes(m, m, cfg), first * 2);
}

}  // namespace
}  // namespace acs
